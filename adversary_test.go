package repro

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

// adversarySystem opens an n-node system in the given mode with values
// i%10 (honest mean ≈ 4.5) and a fast cycle, plus any extra options.
func adversarySystem(t *testing.T, mode RuntimeMode, n int, extra ...Option) *System {
	t.Helper()
	opts := append([]Option{
		WithSize(n),
		WithMode(mode),
		WithValues(func(i int) float64 { return float64(i % 10) }),
		WithCycleLength(2 * time.Millisecond),
		WithSeed(19),
	}, extra...)
	sys, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

// corruption measures the live estimate-corruption |mean − true mean|
// over the honest population.
func corruption(t *testing.T, sys *System) float64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	est, err := sys.Query(ctx, "avg")
	if err != nil {
		t.Fatal(err)
	}
	tel := sys.Telemetry()
	if math.IsNaN(tel.TrueMean) {
		t.Fatal("telemetry true mean is NaN on an in-memory shape")
	}
	return math.Abs(est.Mean - tel.TrueMean)
}

// TestAdversaryCorruptionBothRuntimes is the live-runtime half of the
// PR's acceptance criterion (the kernel half lives in the scenario
// package): 5% extreme-value adversaries corrupt the unprotected
// aggregate far beyond the honest noise floor, while the same attack
// against the robust-merge countermeasures (value clamp + trimmed
// merge) stays bounded near it — in both the goroutine and the heap
// scheduler.
func TestAdversaryCorruptionBothRuntimes(t *testing.T) {
	const (
		n = 200
		// Honest runs settle within ~0.05 of the true mean at this scale
		// (see TestSetValueRoundTripsBothRuntimes); the acceptance bar is
		// an order of magnitude of corruption beyond that.
		noiseFloor = 0.05
		attackTime = 600 * time.Millisecond // ≈ 300 protocol cycles
	)
	adv := WithAdversaries("extreme-value", 0.05, 1000, 0)
	for _, mode := range []RuntimeMode{ModeGoroutine, ModeHeap} {
		t.Run(mode.String(), func(t *testing.T) {
			t.Run("baseline", func(t *testing.T) {
				sys := adversarySystem(t, mode, n, adv)
				if got := sys.AdversaryCount(); got != 10 {
					t.Fatalf("AdversaryCount = %d, want 10", got)
				}
				time.Sleep(attackTime)
				c := corruption(t, sys)
				if c < 10*noiseFloor {
					t.Fatalf("baseline corruption %.3f under 5%% extreme-value adversaries, want > %.2f (poison did not propagate)",
						c, 10*noiseFloor)
				}
				tel := sys.Telemetry()
				if tel.AdversaryNodes != 10 {
					t.Fatalf("telemetry reports %d adversary nodes, want 10", tel.AdversaryNodes)
				}
				t.Logf("baseline corruption: %.2f", c)
			})
			t.Run("robust", func(t *testing.T) {
				sys := adversarySystem(t, mode, n, adv, WithRobustMerge(RobustConfig{
					Clamp: true, ClampMin: -100, ClampMax: 100,
					Trim: true, TrimK: 8,
				}))
				time.Sleep(attackTime)
				c := corruption(t, sys)
				if c > 10*noiseFloor {
					t.Fatalf("robust corruption %.3f, want ≤ %.2f (countermeasures failed to contain the attack)",
						c, 10*noiseFloor)
				}
				if rej := sys.RobustRejected(); rej == 0 {
					t.Fatal("robust merge rejected nothing while under active attack")
				}
				t.Logf("robust corruption: %.4f, rejected %d halves", c, sys.RobustRejected())
			})
		})
	}
}

// TestAdversaryLiveInjectionAndRestore drives the live reconfiguration
// path (POST /v1/scenario's backend): mark adversaries on a converged
// running system, observe them leave the reduced population, restore
// honesty with fraction 0, and re-converge.
func TestAdversaryLiveInjectionAndRestore(t *testing.T) {
	const n = 64
	for _, mode := range []RuntimeMode{ModeGoroutine, ModeHeap} {
		t.Run(mode.String(), func(t *testing.T) {
			sys := adversarySystem(t, mode, n)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := sys.WaitConverged(ctx, "avg", 1e-6); err != nil {
				t.Fatalf("initial convergence: %v", err)
			}

			if err := sys.SetAdversaries("colluding", 0.1, 0, 42); err != nil {
				t.Fatal(err)
			}
			count := sys.AdversaryCount()
			if count == 0 {
				t.Fatal("no adversaries after injection")
			}
			est, err := sys.Query(ctx, "avg")
			if err != nil {
				t.Fatal(err)
			}
			if est.Nodes != n-count {
				t.Fatalf("estimate folds %d nodes with %d adversaries, want %d (adversaries must not vote)",
					est.Nodes, count, n-count)
			}

			// Validation: unknown behaviors and out-of-range fractions are
			// rejected without touching the running system.
			if err := sys.SetAdversaries("gaslighting", 0.1, 0, 0); err == nil {
				t.Fatal("SetAdversaries accepted an unknown behavior")
			}
			if err := sys.SetAdversaries("extreme-value", 1.0, 0, 0); err == nil {
				t.Fatal("SetAdversaries accepted fraction 1.0 (no honest nodes left)")
			}
			if got := sys.AdversaryCount(); got != count {
				t.Fatalf("failed validation changed the adversary set: %d → %d", count, got)
			}

			// Fraction 0 restores every node to honest operation.
			if err := sys.SetAdversaries("colluding", 0, 0, 0); err != nil {
				t.Fatal(err)
			}
			if got := sys.AdversaryCount(); got != 0 {
				t.Fatalf("AdversaryCount = %d after restore, want 0", got)
			}
			est, err = sys.Query(ctx, "avg")
			if err != nil {
				t.Fatal(err)
			}
			if est.Nodes != n {
				t.Fatalf("estimate folds %d nodes after restore, want %d", est.Nodes, n)
			}
			if _, err := sys.WaitConverged(ctx, "avg", 1e-6); err != nil {
				t.Fatalf("post-restore convergence: %v", err)
			}
		})
	}
}

// TestQueryRobustMedianOfMeans: the robust read path. A population with
// a few wildly corrupted values moves the plain mean but not the
// median-of-means estimate, both as a per-query override (QueryRobust)
// and as the system-wide default (WithMedianOfMeans).
func TestQueryRobustMedianOfMeans(t *testing.T) {
	const n = 60 // multiple of 10 so the i%10 population mean is exactly 4.5
	sys := adversarySystem(t, ModeHeap, n)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := sys.WaitConverged(ctx, "avg", 1e-6); err != nil {
		t.Fatal(err)
	}
	// Corrupt two node states directly (a stand-in for poison the merge
	// layer failed to catch): the plain mean jumps, median-of-means holds.
	for _, i := range []int{3, 40} {
		if err := sys.SetValue(i, "avg", 1e6); err != nil {
			t.Fatal(err)
		}
	}
	plain, err := sys.Query(ctx, "avg")
	if err != nil {
		t.Fatal(err)
	}
	robustEst, err := sys.QueryRobust(ctx, "avg", 8)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Mean < 1000 {
		t.Fatalf("plain mean %.1f did not register the corruption", plain.Mean)
	}
	if math.Abs(robustEst.Mean-4.5) > 1.0 {
		t.Fatalf("median-of-means estimate %.2f moved with the corrupted tail, want ≈ 4.5", robustEst.Mean)
	}
	if robustEst.Nodes != n {
		t.Fatalf("robust estimate folds %d nodes, want %d", robustEst.Nodes, n)
	}
	if _, err := sys.QueryRobust(ctx, "avg", 0); err == nil {
		t.Fatal("QueryRobust accepted 0 buckets")
	}
}

// TestSetValueFailReviveRace hammers the three live mutation paths —
// SetValue, FailNode, ReviveNode — concurrently with each other and
// with running exchanges and reductions, in both runtimes. The assertion
// is the race detector plus liveness: the system still answers queries
// and re-converges once the chaos stops.
func TestSetValueFailReviveRace(t *testing.T) {
	const n = 50 // multiple of 10 so the i%10 population mean is exactly 4.5
	for _, mode := range []RuntimeMode{ModeGoroutine, ModeHeap} {
		t.Run(mode.String(), func(t *testing.T) {
			sys := adversarySystem(t, mode, n)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			worker := func(fn func(i int)) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
							fn(i)
						}
					}
				}()
			}
			worker(func(i int) { _ = sys.SetValue(i%n, "avg", float64(i%10)) })
			worker(func(i int) { _ = sys.FailNode(i % n) })
			worker(func(i int) { _ = sys.ReviveNode(i % n) })
			worker(func(i int) { _, _ = sys.Query(ctx, "avg") })
			time.Sleep(300 * time.Millisecond)
			close(stop)
			wg.Wait()

			// Settle: revive everyone, set a known population, converge.
			for i := 0; i < n; i++ {
				_ = sys.ReviveNode(i)
			}
			if got := sys.FailedNodes(); got != 0 {
				t.Fatalf("FailedNodes = %d after full revival, want 0", got)
			}
			for i := 0; i < n; i++ {
				if err := sys.SetValue(i, "avg", float64(i%10)); err != nil {
					t.Fatal(err)
				}
			}
			est, err := sys.WaitConverged(ctx, "avg", 1e-6)
			if err != nil {
				t.Fatalf("post-chaos convergence: %v (last %+v)", err, est)
			}
			// Crash churn perturbs total mass by design — a node failing
			// mid-exchange takes its in-flight half with it, and a revival
			// rejoins fresh — so this is a sanity bound, not the exact
			// mass-conservation check (that's TestSetValueRoundTripsBothRuntimes,
			// which mutates without concurrent crashes).
			if math.Abs(est.Mean-4.5) > 1.0 {
				t.Fatalf("post-chaos mean %.3f, want ≈ 4.5 (mutation raced an exchange into gross mass leakage)", est.Mean)
			}
		})
	}
}
