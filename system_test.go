package repro

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestOpenValidatesOptions: option errors surface from Open, not from
// a half-started system.
func TestOpenValidatesOptions(t *testing.T) {
	cases := map[string][]Option{
		"zero size":        {WithSize(0)},
		"nil schema":       {WithSchema(nil)},
		"bad cycle":        {WithCycleLength(0)},
		"bad epoch":        {WithEpochLength(-time.Second)},
		"bad view":         {WithMembershipView(0)},
		"empty tcp listen": {WithTCP("")},
		"lonely node":      {WithSize(1)}, // in-memory size-1 has nobody to gossip with
	}
	for name, opts := range cases {
		if _, err := Open(opts...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestOpenWatchReduceGoroutineAndHeap: both schedulers behind Open
// converge and agree between Watch snapshots, Reduce folds and point
// queries.
func TestOpenWatchReduceGoroutineAndHeap(t *testing.T) {
	for _, mode := range []RuntimeMode{ModeGoroutine, ModeHeap} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := Open(
				WithSize(24),
				WithMode(mode),
				WithValues(func(i int) float64 { return float64(i) }), // mean 11.5
				WithCycleLength(2*time.Millisecond),
				WithReplyTimeout(time.Second),
				WithSeed(11),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			est, err := sys.WaitConverged(ctx, "avg", 1e-9)
			if err != nil {
				t.Fatal(err)
			}
			if est.Nodes != 24 || math.Abs(est.Mean-11.5) > 0.1 {
				t.Fatalf("converged snapshot: %+v", est)
			}
			var run Running
			if err := sys.Reduce(ctx, "avg", &run); err != nil {
				t.Fatal(err)
			}
			if run.N() != 24 || math.Abs(run.Mean()-est.Mean) > 0.05 {
				t.Fatalf("Reduce disagrees with Watch: n=%d mean=%g vs %g", run.N(), run.Mean(), est.Mean)
			}
			if _, err := sys.Query(ctx, "bogus"); err == nil {
				t.Fatal("unknown field accepted")
			}
		})
	}
}

// TestWatchCancellationWithinOneCycle: cancelling the watch context
// closes the channel promptly (the acceptance bound is one cycle; the
// assertion allows scheduler slack).
func TestWatchCancellationWithinOneCycle(t *testing.T) {
	const cycle = 20 * time.Millisecond
	sys, err := Open(
		WithSize(8),
		WithCycleLength(cycle),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ctx, cancel := context.WithCancel(context.Background())
	ch, err := sys.Watch(ctx, "avg")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch; !ok {
		t.Fatal("watch channel closed before cancellation")
	}
	start := time.Now()
	cancel()
	deadline := time.After(5 * cycle)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				if elapsed := time.Since(start); elapsed > 4*cycle {
					t.Fatalf("channel closed after %v (cycle %v)", elapsed, cycle)
				}
				return
			}
		case <-deadline:
			t.Fatal("watch channel did not close after cancellation")
		}
	}
}

// TestWatchClosesOnSystemClose: Close ends live watches too.
func TestWatchClosesOnSystemClose(t *testing.T) {
	sys, err := Open(WithSize(8), WithCycleLength(5*time.Millisecond), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.Watch(context.Background(), "avg")
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("watch channel survived Close")
		}
	}
}

// TestOpenContextScopesLifetime: cancelling the WithContext context
// stops the system as Close would — exchanges cease AND live watches
// (even ones holding their own still-live context) close, because the
// cancellation closes the whole System, not just the engine under it.
func TestOpenContextScopesLifetime(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sys, err := Open(
		WithContext(ctx),
		WithSize(8),
		WithCycleLength(5*time.Millisecond),
		WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	watch, err := sys.Watch(context.Background(), "avg")
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Stats().Initiated
	cancel()
	deadline := time.After(2 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-watch:
			open = ok
		case <-deadline:
			t.Fatal("watch channel survived the system context's cancellation")
		}
	}
	time.Sleep(100 * time.Millisecond)
	after := sys.Stats().Initiated
	time.Sleep(100 * time.Millisecond)
	if final := sys.Stats().Initiated; final > after+1 {
		t.Fatalf("system kept exchanging after context cancel: %d → %d → %d", before, after, final)
	}
}

// TestWatchFanOutSharesReduces: however many subscribers watch one
// field, its state is reduced once per cycle — the per-field fan-out
// hub decouples observation cost from subscriber count. Each
// subscriber still receives live estimates of the shared sequence.
func TestWatchFanOutSharesReduces(t *testing.T) {
	const cycle = 10 * time.Millisecond
	const subscribers = 16
	sys, err := Open(
		WithSize(12),
		WithCycleLength(cycle),
		WithSeed(21),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chans := make([]<-chan Estimate, subscribers)
	for i := range chans {
		ch, err := sys.Watch(ctx, "avg")
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}

	// Every subscriber must see live estimates (first wait includes the
	// hub's warm-up tick, so give it generous slack).
	for i, ch := range chans {
		select {
		case est, ok := <-ch:
			if !ok || est.Field != "avg" || est.Nodes != 12 {
				t.Fatalf("subscriber %d: estimate %+v ok=%v", i, est, ok)
			}
		case <-time.After(100 * cycle):
			t.Fatalf("subscriber %d starved", i)
		}
	}

	// Measure reductions over a window of W cycles with all subscribers
	// attached: one shared hub must reduce ~W times, not ~W×16. The
	// bound of 3W leaves room for ticker jitter while failing hard on
	// per-subscriber reduction (which would be ≥ 16W).
	const window = 20
	before := sys.reduceCount.Load()
	time.Sleep(window * cycle)
	delta := sys.reduceCount.Load() - before
	if delta == 0 {
		t.Fatal("hub performed no reductions during the window")
	}
	if delta > 3*window {
		t.Fatalf("%d reductions over %d cycles with %d subscribers; fan-out is not shared (want ≤ %d)",
			delta, window, subscribers, 3*window)
	}

	// The shared sequence: two subscribers' next estimates come from the
	// same hub counter (monotone, same field).
	a, b := <-chans[0], <-chans[1]
	if a.Field != b.Field {
		t.Fatalf("subscribers disagree on field: %q vs %q", a.Field, b.Field)
	}

	// Cancelling the shared context closes every subscriber channel
	// within a few cycles, and the hub winds down.
	cancel()
	deadline := time.After(20 * cycle)
	for i, ch := range chans {
		for open := true; open; {
			select {
			case _, ok := <-ch:
				open = ok
			case <-deadline:
				t.Fatalf("subscriber %d channel survived cancellation", i)
			}
		}
	}
}

// TestOpenTCPSingleNodePair: two size-1 TCP systems (the aggnode
// shape) find each other through gossip and converge. Exponential
// waits break the two-node constant-wait pathology where mutual
// busy-nacks phase-lock both initiators (the historical facade test
// used the same policy for the same reason).
func TestOpenTCPSingleNodePair(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP sockets")
	}
	a, err := Open(
		WithTCP("127.0.0.1:0"),
		WithValue(2),
		WithCycleLength(5*time.Millisecond),
		WithReplyTimeout(500*time.Millisecond),
		WithWaitPolicy(ExponentialWait),
		WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(
		WithTCP("127.0.0.1:0", a.Nodes()[0].Addr()),
		WithValue(4),
		WithCycleLength(5*time.Millisecond),
		WithReplyTimeout(500*time.Millisecond),
		WithWaitPolicy(ExponentialWait),
		WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		ea, _ := a.Nodes()[0].Estimate("avg")
		eb, _ := b.Nodes()[0].Estimate("avg")
		if math.Abs(ea-3) < 1e-9 && math.Abs(eb-3) < 1e-9 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("TCP pair stuck at %g / %g", ea, eb)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReduceDoesNotMaterialize is the acceptance gate for the
// streaming observation surface: folding mean/variance over a
// 10⁵-node heap-mode system must not allocate an N-length slice — the
// whole fold stays within a handful of fixed-size allocations.
func TestReduceDoesNotMaterialize(t *testing.T) {
	const n = 100_000
	sys, err := Open(
		WithSize(n),
		WithMode(ModeHeap),
		WithValues(func(i int) float64 { return float64(i % 64) }),
		// One-hour cycles: the workers stay parked, so the measurement
		// sees Reduce itself, not concurrent exchanges.
		WithCycleLength(time.Hour),
		WithSeed(9),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ctx := context.Background()
	var run Running
	allocs := testing.AllocsPerRun(10, func() {
		run = Running{}
		if err := sys.Reduce(ctx, "avg", &run); err != nil {
			t.Fatal(err)
		}
	})
	if run.N() != n {
		t.Fatalf("folded %d nodes, want %d", run.N(), n)
	}
	var want float64
	for i := 0; i < n; i++ {
		want += float64(i % 64)
	}
	want /= n
	if math.Abs(run.Mean()-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", run.Mean(), want)
	}
	// An N-length float64 slice would be 800 kB ≈ one allocation of
	// 100k words; the fold must stay O(1). Allow a few words of slack
	// for the interface call.
	if allocs > 4 {
		t.Fatalf("Reduce allocated %.0f objects per run, want ≤ 4", allocs)
	}
}

// BenchmarkSystemReduce measures the streaming fold at N = 10⁵
// (b.ReportAllocs documents the zero-materialization claim).
func BenchmarkSystemReduce(b *testing.B) {
	sys, err := Open(
		WithSize(100_000),
		WithMode(ModeHeap),
		WithValues(func(i int) float64 { return float64(i) }),
		WithCycleLength(time.Hour),
		WithSeed(10),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var run Running
		if err := sys.Reduce(ctx, "avg", &run); err != nil {
			b.Fatal(err)
		}
	}
}
