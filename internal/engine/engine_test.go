package engine

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/membership"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/xrand"
)

func TestConfigValidation(t *testing.T) {
	fabric := transport.NewFabric()
	ep := fabric.NewEndpoint()
	defer ep.Close()
	sampler, err := membership.NewStatic([]string{"mem-1"})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Schema:      core.AverageSchema(),
		Endpoint:    ep,
		Sampler:     sampler,
		CycleLength: time.Millisecond,
	}
	mutations := []struct {
		name   string
		mutate func(c Config) Config
	}{
		{"nil schema", func(c Config) Config { c.Schema = nil; return c }},
		{"nil endpoint", func(c Config) Config { c.Endpoint = nil; return c }},
		{"nil sampler", func(c Config) Config { c.Sampler = nil; return c }},
		{"zero cycle", func(c Config) Config { c.CycleLength = 0; return c }},
		{"bad wait", func(c Config) Config { c.Wait = WaitPolicy(99); return c }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			if _, err := NewNode(m.mutate(base)); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestNodeStartStopClean(t *testing.T) {
	fabric := transport.NewFabric()
	ep := fabric.NewEndpoint()
	sampler, _ := membership.NewStatic([]string{"nonexistent"})
	n, err := NewNode(Config{
		Schema:      core.AverageSchema(),
		Endpoint:    ep,
		Sampler:     sampler,
		CycleLength: time.Millisecond,
		Value:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Start() // second Start is a no-op
	time.Sleep(10 * time.Millisecond)
	n.Stop()
	n.Stop() // idempotent
}

func TestNodeStopBeforeStart(t *testing.T) {
	fabric := transport.NewFabric()
	ep := fabric.NewEndpoint()
	sampler, _ := membership.NewStatic([]string{"x"})
	n, err := NewNode(Config{
		Schema:      core.AverageSchema(),
		Endpoint:    ep,
		Sampler:     sampler,
		CycleLength: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Stop() // must not hang or panic
}

func TestClusterConvergesToAverage(t *testing.T) {
	const size = 24
	c, err := NewCluster(ClusterConfig{
		Size:         size,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i) },
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 200 * time.Millisecond, // generous: timeouts skew the mean
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	v, converged, err := c.WaitConverged("avg", 1e-6, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !converged {
		t.Fatalf("variance %g after 5s, want ≤ 1e-6", v)
	}
	vals, err := c.Snapshot("avg")
	if err != nil {
		t.Fatal(err)
	}
	want := float64(size-1) / 2 // mean of 0..size-1
	got := stats.Mean(vals)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("converged mean %g, want ≈ %g", got, want)
	}
}

func TestClusterSummarySchemaConverges(t *testing.T) {
	schema := core.SummarySchema()
	sizeIdx, err := schema.Index("size")
	if err != nil {
		t.Fatal(err)
	}
	const size = 16
	c, err := NewCluster(ClusterConfig{
		Size:         size,
		Schema:       schema,
		Value:        func(i int) float64 { return float64(i%4) + 1 },
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 200 * time.Millisecond,
		Seed:         2,
		InitState: func(i int) func(uint64, float64) core.State {
			return func(_ uint64, value float64) core.State {
				st := schema.InitState(value)
				if i == 0 {
					st[sizeIdx] = 1 // node 0 leads the size instance
				}
				return st
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	if _, ok, _ := c.WaitConverged("size", 1e-10, 5*time.Second); !ok {
		t.Fatal("size field did not converge")
	}
	sum, err := core.DecodeSummary(schema, c.Nodes()[7].State())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Size-size) > 0.5 {
		t.Errorf("size estimate %g, want ≈ %d", sum.Size, size)
	}
	if sum.Min != 1 || sum.Max != 4 {
		t.Errorf("min/max = %g/%g, want 1/4", sum.Min, sum.Max)
	}
	if math.Abs(sum.Mean-2.5) > 0.05 {
		t.Errorf("mean = %g, want ≈ 2.5", sum.Mean)
	}
}

func TestClusterMassApproximatelyConserved(t *testing.T) {
	// Concurrent push-pull is not perfectly atomic, but the drift in the
	// total must stay small relative to the spread of the inputs.
	const size = 16
	c, err := NewCluster(ClusterConfig{
		Size:         size,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i * 10) },
		CycleLength:  time.Millisecond,
		ReplyTimeout: 200 * time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	if _, ok, _ := c.WaitConverged("avg", 1e-4, 5*time.Second); !ok {
		t.Fatal("did not converge")
	}
	vals, _ := c.Snapshot("avg")
	want := float64(size-1) * 10 / 2
	if got := stats.Mean(vals); math.Abs(got-want) > 2 {
		t.Fatalf("mean drifted to %g, want ≈ %g", got, want)
	}
}

func TestClusterExponentialWaitConverges(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Size:        12,
		Schema:      core.AverageSchema(),
		Value:       func(i int) float64 { return float64(i) },
		CycleLength: 2 * time.Millisecond,
		Wait:        ExponentialWait,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	if v, ok, _ := c.WaitConverged("avg", 1e-5, 5*time.Second); !ok {
		t.Fatalf("exponential-wait cluster stuck at variance %g", v)
	}
}

func TestClusterPushOnlyStillReducesVariance(t *testing.T) {
	// Push-only is the ablation: it converges toward consensus, just
	// without the initiator-side update and without exact mass
	// conservation.
	c, err := NewCluster(ClusterConfig{
		Size:        12,
		Schema:      core.AverageSchema(),
		Value:       func(i int) float64 { return float64(i) },
		CycleLength: 2 * time.Millisecond,
		PushOnly:    true,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	before, err := c.Variance("avg")
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		after, _ := c.Variance("avg")
		if after < before/10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("push-only variance stuck: %g → %g", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClusterUnderMessageLoss(t *testing.T) {
	fabric := transport.NewFabric(transport.WithDropProbability(0.2), transport.WithSeed(6))
	c, err := NewCluster(ClusterConfig{
		Size:        12,
		Schema:      core.AverageSchema(),
		Value:       func(i int) float64 { return float64(i) },
		CycleLength: 2 * time.Millisecond,
		Fabric:      fabric,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	if v, ok, _ := c.WaitConverged("avg", 1e-4, 8*time.Second); !ok {
		t.Fatalf("lossy cluster stuck at variance %g", v)
	}
	// Timeouts must have been recorded somewhere.
	var timeouts uint64
	for _, n := range c.Nodes() {
		timeouts += n.Stats().Timeouts
	}
	if timeouts == 0 {
		t.Error("20% loss produced zero timeouts; loss path untested")
	}
}

func TestNodeStatsCounters(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Size:        4,
		Schema:      core.AverageSchema(),
		Value:       func(i int) float64 { return float64(i) },
		CycleLength: time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	time.Sleep(100 * time.Millisecond)
	c.Stop()
	var agg Stats
	for _, n := range c.Nodes() {
		s := n.Stats()
		agg.Initiated += s.Initiated
		agg.Replies += s.Replies
		agg.Served += s.Served
	}
	if agg.Initiated < 10 {
		t.Fatalf("only %d exchanges initiated in 100ms at Δt=1ms", agg.Initiated)
	}
	if agg.Served == 0 || agg.Replies == 0 {
		t.Fatalf("served=%d replies=%d; passive path unexercised", agg.Served, agg.Replies)
	}
	if agg.Replies > agg.Initiated {
		t.Fatalf("replies %d exceed initiations %d", agg.Replies, agg.Initiated)
	}
}

func TestEpochRestartAdaptsToNewValues(t *testing.T) {
	// With an epoch clock, changing local values must be reflected after
	// the next restart — the adaptivity of §4.
	fabric := transport.NewFabric()
	schema := core.AverageSchema()
	clock, err := epoch.NewClock(time.Now(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	const size = 8
	endpoints := make([]transport.Endpoint, size)
	addrs := make([]string, size)
	for i := range endpoints {
		endpoints[i] = fabric.NewEndpoint()
		addrs[i] = endpoints[i].Addr()
	}
	nodes := make([]*Node, 0, size)
	for i := 0; i < size; i++ {
		peers := make([]string, 0, size-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		sampler, err := membership.NewStatic(peers)
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(Config{
			Schema:      schema,
			Endpoint:    endpoints[i],
			Sampler:     sampler,
			Value:       1, // everyone starts at 1
			CycleLength: 2 * time.Millisecond,
			Clock:       clock,
			Seed:        uint64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	// Change every node's local value; after a restart the estimates
	// must move from ≈1 to ≈5.
	for _, n := range nodes {
		n.SetValue(5)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		est, err := nodes[3].Estimate("avg")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-5) < 0.01 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("estimate %g never adapted to new value 5", est)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var switches uint64
	for _, n := range nodes {
		switches += n.Stats().EpochSwitches
	}
	if switches == 0 {
		t.Fatal("no epoch switches recorded despite adaptation")
	}
}

func TestEpochIDsMonotone(t *testing.T) {
	clock, err := epoch.NewClock(time.Now(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c := clusterWithClock(t, 6, clock)
	c.Start(context.Background())
	defer c.Stop()
	last := make([]uint64, 6)
	for probe := 0; probe < 20; probe++ {
		for i, n := range c.Nodes() {
			cur := n.Epoch()
			if cur < last[i] {
				t.Fatalf("node %d epoch went backwards: %d → %d", i, last[i], cur)
			}
			last[i] = cur
		}
		time.Sleep(10 * time.Millisecond)
	}
	// After 200ms with 50ms epochs, every node must have advanced.
	for i, n := range c.Nodes() {
		if n.Epoch() == 0 {
			t.Fatalf("node %d never left epoch 0", i)
		}
	}
}

// clusterWithClock builds a small cluster whose nodes share an epoch
// clock (ClusterConfig has no clock field; build nodes directly).
func clusterWithClock(t *testing.T, size int, clock *epoch.Clock) *Cluster {
	t.Helper()
	fabric := transport.NewFabric()
	schema := core.AverageSchema()
	endpoints := make([]transport.Endpoint, size)
	addrs := make([]string, size)
	for i := range endpoints {
		endpoints[i] = fabric.NewEndpoint()
		addrs[i] = endpoints[i].Addr()
	}
	c := &Cluster{fabric: fabric, schema: schema}
	for i := 0; i < size; i++ {
		peers := make([]string, 0, size-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		sampler, err := membership.NewStatic(peers)
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(Config{
			Schema:      schema,
			Endpoint:    endpoints[i],
			Sampler:     sampler,
			Value:       float64(i),
			CycleLength: 2 * time.Millisecond,
			Clock:       clock,
			Seed:        uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, n)
	}
	return c
}

// newTCPTestEndpoint binds a loopback TCP endpoint, retrying with a
// short backoff when the kernel reports the port space busy — loaded CI
// machines churn through ephemeral ports fast enough that a single bind
// attempt flakes.
func newTCPTestEndpoint(t *testing.T) transport.Endpoint {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		ep, err := transport.NewTCPEndpoint("127.0.0.1:0")
		if err == nil {
			return ep
		}
		lastErr = err
		time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
	}
	t.Fatalf("bind loopback TCP endpoint: %v", lastErr)
	return nil
}

// awaitTCPReady proves both accept loops are live before any gossip
// traffic flows: each endpoint sends the other a nack probe (ignored by
// the protocol's reply matching) and the probe must come out of the
// peer's inbox. Once both directions have delivered, node startup
// cannot race the listeners — even on single-core machines where the
// accept goroutines are scheduled late.
func awaitTCPReady(t *testing.T, epA, epB transport.Endpoint) {
	t.Helper()
	probe := func(from, to transport.Endpoint) {
		deadline := time.Now().Add(10 * time.Second)
		msg := transport.Message{Kind: transport.KindNack, Seq: ^uint64(0)}
		for {
			err := from.Send(to.Addr(), msg)
			if err == nil {
				select {
				case m := <-to.Inbox():
					if m.Kind == transport.KindNack && m.Seq == ^uint64(0) {
						return
					}
				case <-time.After(200 * time.Millisecond):
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("TCP readiness probe %s -> %s undelivered: %v", from.Addr(), to.Addr(), err)
			}
		}
	}
	probe(epA, epB)
	probe(epB, epA)
}

func TestTCPNodesExchange(t *testing.T) {
	// Two live nodes over real TCP loopback must converge on the average
	// of their values. Real sockets are slower than the fabric, so the
	// test still honors -short, but it no longer skips on single-core
	// machines: the readiness handshake below waits for both accept
	// loops before the first push, which was the starvation the old
	// GOMAXPROCS gate papered over.
	if testing.Short() {
		t.Skip("real TCP sockets; skipped in -short mode")
	}
	epA := newTCPTestEndpoint(t)
	epB := newTCPTestEndpoint(t)
	awaitTCPReady(t, epA, epB)
	samplerA, err := membership.NewStatic([]string{epB.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	samplerB, err := membership.NewStatic([]string{epA.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	schema := core.AverageSchema()
	a, err := NewNode(Config{
		Schema: schema, Endpoint: epA, Sampler: samplerA,
		Value: 10, CycleLength: 5 * time.Millisecond, ReplyTimeout: 500 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(Config{
		Schema: schema, Endpoint: epB, Sampler: samplerB,
		Value: 20, CycleLength: 5 * time.Millisecond, ReplyTimeout: 500 * time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()

	// Generous deadline: loaded CI machines schedule the two nodes'
	// loops erratically even with multiple cores.
	deadline := time.Now().Add(15 * time.Second)
	for {
		ea, err := a.Estimate("avg")
		if err != nil {
			t.Fatal(err)
		}
		eb, err := b.Estimate("avg")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ea-15) < 1e-9 && math.Abs(eb-15) < 1e-9 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("TCP pair stuck at %g / %g, want 15", ea, eb)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGossipSamplerIntegration(t *testing.T) {
	// Nodes bootstrapped with only one seed peer must still reach
	// everyone through piggybacked membership gossip.
	fabric := transport.NewFabric()
	schema := core.AverageSchema()
	const size = 10
	endpoints := make([]transport.Endpoint, size)
	addrs := make([]string, size)
	for i := range endpoints {
		endpoints[i] = fabric.NewEndpoint()
		addrs[i] = endpoints[i].Addr()
	}
	nodes := make([]*Node, 0, size)
	for i := 0; i < size; i++ {
		seed := addrs[(i+1)%size] // ring bootstrap
		sampler, err := membership.NewGossipSampler(addrs[i], 8, []string{seed})
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(Config{
			Schema:       schema,
			Endpoint:     endpoints[i],
			Sampler:      sampler,
			Value:        float64(i),
			CycleLength:  2 * time.Millisecond,
			ReplyTimeout: 200 * time.Millisecond,
			Seed:         uint64(i + 50),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	want := float64(size-1) / 2
	deadline := time.Now().Add(8 * time.Second)
	for {
		worst := 0.0
		for _, n := range nodes {
			est, err := n.Estimate("avg")
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(est - want); d > worst {
				worst = d
			}
		}
		// Exchanges conserve mass even when a reply outlives the
		// initiator's timeout: the late reply is absorbed as long as no
		// other merge touched the state in between (the stateVer guard
		// in tryAbsorbLate), so the converged average no longer drifts
		// by 0.5/size per glitch as it did before the fix. 0.05 is well
		// inside "every node was reached" (an unreached node sits ≥ 0.5
		// off) and tight enough to catch any conservation regression.
		if worst < 0.05 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossip-sampler cluster stuck, worst error %g", worst)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Size: 1, Schema: core.AverageSchema(), CycleLength: time.Millisecond}); err == nil {
		t.Error("1-node cluster accepted")
	}
	if _, err := NewCluster(ClusterConfig{Size: 4, CycleLength: time.Millisecond}); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestEstimateUnknownField(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Size:        2,
		Schema:      core.AverageSchema(),
		CycleLength: time.Millisecond,
		Seed:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.Nodes()[0].Estimate("bogus"); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := c.Snapshot("bogus"); err == nil {
		t.Fatal("unknown field accepted by Snapshot")
	}
}

func TestWaitPolicyString(t *testing.T) {
	if ConstantWait.String() != "constant" || ExponentialWait.String() != "exponential" {
		t.Error("wait policy names wrong")
	}
	if WaitPolicy(42).String() == "" {
		t.Error("unknown policy produced empty string")
	}
}

func TestSendErrorForgetsDeadPeer(t *testing.T) {
	fabric := transport.NewFabric()
	ep := fabric.NewEndpoint()
	dead := fabric.NewEndpoint()
	deadAddr := dead.Addr()
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}
	sampler, err := membership.NewGossipSampler(ep.Addr(), 4, []string{deadAddr})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{
		Schema:      core.AverageSchema(),
		Endpoint:    ep,
		Sampler:     sampler,
		CycleLength: time.Millisecond,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	time.Sleep(50 * time.Millisecond)
	n.Stop()
	if n.Stats().SendErrors == 0 {
		t.Fatal("no send errors recorded against a dead-only peer set")
	}
	// The dead peer must have been forgotten from the view.
	for _, a := range sampler.ViewAddrs() {
		if a == deadAddr {
			t.Fatal("dead peer still in view after send errors")
		}
	}
}

func TestClusterSnapshotUnknownSchemaError(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Size:        2,
		Schema:      core.AverageSchema(),
		CycleLength: time.Millisecond,
		Seed:        10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, _, err := c.WaitConverged("bogus", 1, time.Millisecond); err == nil {
		t.Fatal("WaitConverged accepted unknown field")
	}
	var wantErr error
	_, wantErr = c.Variance("bogus")
	if wantErr == nil {
		t.Fatal("Variance accepted unknown field")
	}
	if errors.Is(wantErr, transport.ErrClosed) {
		t.Fatal("wrong error kind")
	}
}

// silentSampler never yields a peer: a node using it serves pushes but
// initiates nothing, giving late-reply tests a single deterministic
// initiator.
type silentSampler struct{}

func (silentSampler) Sample(*xrand.Rand) (string, bool)  { return "", false }
func (silentSampler) Observe(string, []string, []uint32) {}
func (silentSampler) AppendDigest(a []string, g []uint32, _ *xrand.Rand, _ int) ([]string, []uint32) {
	return a, g
}
func (silentSampler) Tick()         {}
func (silentSampler) Forget(string) {}

func TestLateReplyAbsorptionConservesMass(t *testing.T) {
	// Regression for the mass glitch behind the old 0.45 threshold in
	// TestGossipSamplerIntegration: with fabric latency above the reply
	// timeout, every pull reply arrives after the initiator has timed
	// out. The passive side has already committed its half of the merge,
	// so dropping the reply loses (S_A−S_B)/2 permanently. Absorption
	// must merge the late reply (the state hasn't moved since the push
	// snapshot) and land both nodes exactly on the mean.
	fabric := transport.NewFabric(transport.WithLatency(20*time.Millisecond, 0), transport.WithSeed(11))
	schema := core.AverageSchema()
	epA, epB := fabric.NewEndpoint(), fabric.NewEndpoint()
	samplerA, err := membership.NewStatic([]string{epB.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewNode(Config{
		Schema: schema, Endpoint: epA, Sampler: samplerA,
		Value: 10, CycleLength: 100 * time.Millisecond, ReplyTimeout: 10 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(Config{
		Schema: schema, Endpoint: epB, Sampler: silentSampler{},
		Value: 20, CycleLength: 100 * time.Millisecond, ReplyTimeout: 10 * time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for {
		ea, _ := a.Estimate("avg")
		eb, _ := b.Estimate("avg")
		st := a.Stats()
		if math.Abs(ea-15) < 1e-9 && math.Abs(eb-15) < 1e-9 && st.LateReplies > 0 {
			if st.Timeouts == 0 {
				t.Fatal("late replies absorbed without any timeout — test setup broken")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("a=%g b=%g lateReplies=%d timeouts=%d; want 15/15 with ≥1 absorbed late reply",
				ea, eb, st.LateReplies, st.Timeouts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLateReplyAbsorptionHeapRuntime(t *testing.T) {
	// Same scenario on the sharded event-heap runtime: the reaper
	// (evTimeout) arms absorption and handleReply's mismatch path must
	// complete the merge when the reply finally lands.
	fabric := transport.NewFabric(transport.WithLatency(20*time.Millisecond, 0), transport.WithSeed(12))
	c, err := NewCluster(ClusterConfig{
		Size:         2,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(10 + 10*i) },
		CycleLength:  100 * time.Millisecond,
		ReplyTimeout: 10 * time.Millisecond,
		Fabric:       fabric,
		Mode:         ModeHeap,
		Workers:      1,
		Seed:         13,
		Samplers: func(i int, self string, local []string) (membership.Sampler, error) {
			if i == 1 {
				return silentSampler{}, nil
			}
			return membership.NewStatic([]string{local[1]})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for {
		vals, err := c.Snapshot("avg")
		if err != nil {
			t.Fatal(err)
		}
		st := c.Runtime().Stats()
		if math.Abs(vals[0]-15) < 1e-9 && math.Abs(vals[1]-15) < 1e-9 && st.LateReplies > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("vals=%v lateReplies=%d timeouts=%d; want 15/15 with ≥1 absorbed late reply",
				vals, st.LateReplies, st.Timeouts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClusterGossipMembershipBothModes(t *testing.T) {
	// The same ring-bootstrapped gossip membership must carry either
	// runtime to the true mean: no static directory anywhere, the view
	// is built entirely from piggybacked digests.
	const size = 16
	want := float64(size-1) / 2
	for _, mode := range []RuntimeMode{ModeGoroutine, ModeHeap} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c, err := NewCluster(ClusterConfig{
				Size:         size,
				Schema:       core.AverageSchema(),
				Value:        func(i int) float64 { return float64(i) },
				CycleLength:  2 * time.Millisecond,
				ReplyTimeout: 200 * time.Millisecond,
				Mode:         mode,
				Workers:      2,
				Seed:         21,
				GossipFanout: 3,
				Samplers: func(i int, self string, local []string) (membership.Sampler, error) {
					return membership.NewGossipSampler(self, 8, []string{local[(i+1)%len(local)]})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			c.Start(context.Background())
			defer c.Stop()
			if v, ok, err := c.WaitConverged("avg", 1e-4, 8*time.Second); err != nil || !ok {
				t.Fatalf("gossip-membership cluster stuck at variance %g (err %v)", v, err)
			}
			vals, err := c.Snapshot("avg")
			if err != nil {
				t.Fatal(err)
			}
			if got := stats.Mean(vals); math.Abs(got-want) > 0.05 {
				t.Fatalf("converged mean %g, want ≈ %g", got, want)
			}
		})
	}
}
