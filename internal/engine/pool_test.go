package engine

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// TestFieldsPoolLengthGuards: only buffers of the pool's schema length
// are recycled; everything else (foreign schema, nil) is dropped, never
// resurfacing from get.
func TestFieldsPoolLengthGuards(t *testing.T) {
	p := newFieldsPool(3)
	p.put(nil)
	p.put([]float64{1, 2}) // wrong length: dropped
	if buf := p.get(); len(buf) != 3 {
		t.Fatalf("get returned length %d, want 3", len(buf))
	}
	l := newLocalFree(p, 4)
	l.put([]float64{1})
	if len(l.free) != 0 {
		t.Fatal("local tier accepted a wrong-length buffer")
	}
	l.put(make([]float64, 3))
	if len(l.free) != 1 {
		t.Fatal("local tier rejected a correct buffer")
	}
	if buf := l.get(); len(buf) != 3 || len(l.free) != 0 {
		t.Fatalf("local get: len(buf)=%d free=%d", len(buf), len(l.free))
	}
	// Overflow spills to the shared pool instead of growing past cap.
	small := localFree{pool: p, cap: 1}
	small.put(make([]float64, 3))
	small.put(make([]float64, 3))
	if len(small.free) != 1 {
		t.Fatalf("local tier grew to %d past its cap of 1", len(small.free))
	}
}

// TestPoolBuffersNotObservedAfterPut hammers one shard with concurrent
// exchange, reply and reap (timeout) traffic — a lossy fabric forces
// all three paths — while observer goroutines read node state through
// every API that touches the shard. Under -race the detector flags any
// access to a buffer whose ownership was mishandled; under the
// pooldebug build tag, put poisons buffers with a signaling NaN
// pattern, get panics if a recycled buffer was written after being
// returned, and the final sweep below fails if poison was ever read
// into node state. The three modes together assert the ownership rule:
// no Fields buffer is observed after it was returned to the pool.
func TestPoolBuffersNotObservedAfterPut(t *testing.T) {
	if poolDebug {
		t.Log("pooldebug build: poison-on-put diagnostics active")
	}
	// 30% loss produces reply timeouts (the reap path) alongside served
	// pushes, busy-nacks and merged replies; Workers=1 concentrates all
	// of it on one shard as the satellite prescribes.
	fabric := transport.NewFabric(transport.WithDropProbability(0.3), transport.WithSeed(123))
	schema := core.SummarySchema()
	c, err := NewCluster(ClusterConfig{
		Size:         96,
		Schema:       schema,
		Value:        func(i int) float64 { return float64(i % 7) },
		CycleLength:  200 * time.Microsecond, // saturating: constant churn of buffers
		ReplyTimeout: 2 * time.Millisecond,
		Fabric:       fabric,
		Mode:         ModeHeap,
		Workers:      1,
		Seed:         99,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	rt := c.Runtime()
	observers := []func(){
		func() { _, _ = c.Snapshot("avg") },
		func() {
			_ = c.ReduceField("max", func(v float64) {
				if math.IsNaN(v) {
					panic("NaN observed in max field mid-run")
				}
			})
		},
		func() { _ = rt.NodeState(13) },
		func() { rt.SetValue(7, 3.5) },
		func() { _ = rt.Stats() },
	}
	for _, obs := range observers {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}(obs)
	}
	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()
	st := rt.Stats()
	c.Stop()

	if st.Timeouts == 0 || st.Served == 0 || st.Replies == 0 {
		t.Fatalf("hammer did not cover exchange/reply/reap: %+v", st)
	}
	// Poison sweep: a use-after-put read would have merged NaN into some
	// node's state (every aggregate propagates NaN).
	for _, field := range schema.FieldNames() {
		if err := c.ReduceField(field, func(v float64) {
			if math.IsNaN(v) {
				t.Fatalf("field %q holds NaN: a recycled buffer was observed after put", field)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
}
