package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/robust"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// ClusterConfig assembles a local in-memory cluster of nodes sharing one
// fabric — the quickest way to run the live protocol at laptop scale
// (examples, integration tests, the quickstart).
type ClusterConfig struct {
	// Size is the number of nodes (≥ 2).
	Size int
	// Schema defines the gossiped fields (required).
	Schema *core.Schema
	// Value supplies node i's local attribute.
	Value func(i int) float64
	// CycleLength is Δt for every node (required).
	CycleLength time.Duration
	// ReplyTimeout bounds the pull-reply wait (default CycleLength/2).
	// Raise it on loaded machines: a timed-out exchange commits only the
	// passive side and perturbs the mean slightly.
	ReplyTimeout time.Duration
	// Wait is the waiting-time policy (default ConstantWait).
	Wait WaitPolicy
	// Fabric carries the messages; nil builds a default lossless,
	// zero-latency fabric.
	Fabric *transport.Fabric
	// PushOnly enables the push-only ablation on every node.
	PushOnly bool
	// InitState, when non-nil, is passed to node i via a closure so the
	// cluster can seed per-node special roles (e.g. the size leader).
	InitState func(i int) func(epochID uint64, value float64) core.State
	// Clock, when non-nil, drives epoch restarts on every node (§4
	// adaptivity); nil runs one endless epoch.
	Clock *epoch.Clock
	// Samplers, when non-nil, builds node i's membership sampler (self
	// is the node's address, local the cluster's full address table).
	// Nil keeps the default: a shared full-membership Directory. This is
	// how a cluster runs on live gossip membership instead of static
	// configuration — it is honored by both runtimes.
	Samplers func(i int, self string, local []string) (membership.Sampler, error)
	// GossipFanout is how many membership addresses to piggyback per
	// message when a sampler observes traffic (default 3; negative
	// disables). Ignored for directory samplers, which gossip nothing.
	GossipFanout int
	// Mode selects the runtime: ModeGoroutine (the default, two
	// goroutines per node) or ModeHeap (a sharded event-heap scheduler
	// on a small worker pool — the 10⁵-node-per-process path).
	Mode RuntimeMode
	// Workers is the heap runtime's worker/shard count (default
	// GOMAXPROCS; ignored in goroutine mode).
	Workers int
	// BatchWindow bounds message coalescing delay in heap mode (0
	// flushes once per scheduler round; ignored in goroutine mode).
	BatchWindow time.Duration
	// Seed makes the cluster deterministic-ish (scheduling still varies).
	Seed uint64
	// Metrics, when non-nil, registers the runtime's instrumentation
	// (heap mode; goroutine-mode clusters are registered by the caller
	// over Stats, which is already atomic per node).
	Metrics *metrics.Registry
	// TraceSample/TraceRing configure heap-mode exchange tracing; see
	// RuntimeConfig.
	TraceSample int
	TraceRing   int
}

// Cluster is a set of locally running nodes plus their shared fabric.
type Cluster struct {
	nodes  []*Node
	fabric *transport.Fabric
	schema *core.Schema
	rt     *Runtime // non-nil in heap mode

	startOnce sync.Once
	stopOnce  sync.Once
	ctxStop   chan struct{} // closed by Stop to release the ctx watcher
}

// NewCluster builds (but does not start) a local cluster. By default
// every node samples peers from a shared full-membership directory,
// matching the paper's complete-overlay assumption in O(N) total
// memory; set Samplers to run on live gossip membership instead.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Size < 2 {
		return nil, fmt.Errorf("engine: cluster needs ≥ 2 nodes, got %d", cfg.Size)
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("engine: cluster needs a Schema")
	}
	if cfg.Value == nil {
		cfg.Value = func(int) float64 { return 0 }
	}
	if cfg.Mode == ModeHeap {
		rt, err := NewRuntime(RuntimeConfig{
			Size:         cfg.Size,
			Schema:       cfg.Schema,
			Value:        cfg.Value,
			CycleLength:  cfg.CycleLength,
			ReplyTimeout: cfg.ReplyTimeout,
			Wait:         cfg.Wait,
			Fabric:       cfg.Fabric,
			PushOnly:     cfg.PushOnly,
			InitState:    cfg.InitState,
			Clock:        cfg.Clock,
			Samplers:     cfg.Samplers,
			GossipFanout: cfg.GossipFanout,
			Workers:      cfg.Workers,
			BatchWindow:  cfg.BatchWindow,
			Seed:         cfg.Seed,
			Metrics:      cfg.Metrics,
			TraceSample:  cfg.TraceSample,
			TraceRing:    cfg.TraceRing,
		})
		if err != nil {
			return nil, err
		}
		return &Cluster{nodes: rt.Nodes(), fabric: rt.Fabric(), schema: cfg.Schema, rt: rt}, nil
	}
	fabric := cfg.Fabric
	if fabric == nil {
		fabric = transport.NewFabric(transport.WithSeed(cfg.Seed))
	}

	endpoints := make([]transport.Endpoint, cfg.Size)
	addrs := make([]string, cfg.Size)
	for i := range endpoints {
		endpoints[i] = fabric.NewEndpoint()
		addrs[i] = endpoints[i].Addr()
	}

	c := &Cluster{fabric: fabric, schema: cfg.Schema, nodes: make([]*Node, 0, cfg.Size)}
	for i := 0; i < cfg.Size; i++ {
		var sampler membership.Sampler
		var err error
		if cfg.Samplers != nil {
			sampler, err = cfg.Samplers(i, addrs[i], addrs)
		} else {
			sampler, err = membership.NewDirectory(addrs, i)
		}
		if err != nil {
			return nil, fmt.Errorf("engine: sampler for node %d: %w", i, err)
		}
		nodeCfg := Config{
			Schema:       cfg.Schema,
			Endpoint:     endpoints[i],
			Sampler:      sampler,
			Value:        cfg.Value(i),
			CycleLength:  cfg.CycleLength,
			ReplyTimeout: cfg.ReplyTimeout,
			Wait:         cfg.Wait,
			PushOnly:     cfg.PushOnly,
			Clock:        cfg.Clock,
			GossipFanout: cfg.GossipFanout,
			Seed:         cfg.Seed + uint64(i)*0x9e3779b97f4a7c15,
		}
		if cfg.InitState != nil {
			nodeCfg.InitState = cfg.InitState(i)
		}
		node, err := NewNode(nodeCfg)
		if err != nil {
			return nil, fmt.Errorf("engine: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Nodes returns the cluster's nodes in index order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Fabric returns the shared in-memory fabric (to inject loss or
// partitions mid-test).
func (c *Cluster) Fabric() *transport.Fabric { return c.fabric }

// Runtime returns the heap-mode runtime backing the cluster, or nil in
// goroutine mode.
func (c *Cluster) Runtime() *Runtime { return c.rt }

// Start launches every node. Cancelling ctx stops the cluster exactly
// as Stop would; context.Background() runs until an explicit Stop.
// Calling Start more than once is a no-op (later contexts are
// ignored).
func (c *Cluster) Start(ctx context.Context) {
	c.startOnce.Do(func() {
		if c.rt != nil {
			c.rt.Start(ctx)
			return
		}
		for _, n := range c.nodes {
			n.Start()
		}
		if ctx != nil && ctx.Done() != nil {
			stop := make(chan struct{})
			c.ctxStop = stop
			go func() {
				select {
				case <-ctx.Done():
					c.Stop()
				case <-stop:
				}
			}()
		}
	})
}

// Stop stops every node (and closes their endpoints). All nodes are
// signalled before any is waited on, so teardown is one scheduler
// round, not nodes-many. Idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		if c.ctxStop != nil {
			close(c.ctxStop)
		}
		if c.rt != nil {
			c.rt.Stop()
			return
		}
		for _, n := range c.nodes {
			n.signalStop()
		}
		for _, n := range c.nodes {
			n.Stop()
		}
	})
}

// Snapshot returns every node's current approximation of the named
// field. It materializes an N-length slice; hot observation paths
// should fold with ReduceField instead.
func (c *Cluster) Snapshot(field string) ([]float64, error) {
	if c.rt != nil {
		return c.rt.Snapshot(field)
	}
	idx, err := c.schema.Index(field)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.fieldAt(idx)
	}
	return out, nil
}

// ReduceField streams every node's current approximation of the named
// field through fn, in node index order, without materializing a
// vector. In heap mode fn runs with the owning shard locked (it must
// be fast and must not call back into the cluster); in goroutine mode
// each node is locked individually, so the fold is per-node atomic,
// not a global snapshot — exactly as Snapshot behaves.
func (c *Cluster) ReduceField(field string, fn func(v float64)) error {
	if c.rt != nil {
		return c.rt.ReduceField(field, fn)
	}
	idx, err := c.schema.Index(field)
	if err != nil {
		return err
	}
	for _, n := range c.nodes {
		if n.failed.Load() || n.isAdversary() {
			continue // crashed and Byzantine nodes are not honest population
		}
		fn(n.fieldAt(idx))
	}
	return nil
}

// ReduceValues streams every node's local input value through fn in
// index order — the truth the aggregate should track. Same locking
// contract as ReduceField.
func (c *Cluster) ReduceValues(fn func(v float64)) {
	if c.rt != nil {
		c.rt.ReduceValues(fn)
		return
	}
	for _, n := range c.nodes {
		if n.failed.Load() || n.isAdversary() {
			continue
		}
		fn(n.Value())
	}
}

// InjectValue updates node i's local attribute and folds the delta into
// its current approximation of field idx — see Node.InjectValue.
func (c *Cluster) InjectValue(i, idx int, v float64) {
	if c.rt != nil {
		c.rt.InjectValue(i, idx, v)
		return
	}
	c.nodes[i].InjectValue(idx, v)
}

// FailNode crashes node i until ReviveNode; see Node.Fail.
func (c *Cluster) FailNode(i int) bool {
	if c.rt != nil {
		return c.rt.FailNode(i)
	}
	return c.nodes[i].Fail()
}

// ReviveNode restores a failed node as a fresh joiner; see Node.Revive.
func (c *Cluster) ReviveNode(i int) bool {
	if c.rt != nil {
		return c.rt.ReviveNode(i)
	}
	return c.nodes[i].Revive()
}

// SetAdversaries turns the given nodes into Byzantine adversaries of
// the given behavior (extreme-value reporters pin magnitude, colluding
// and eclipse reporters pin target, selective droppers ack-then-discard)
// and restores every other node to honest operation. An empty set
// clears all adversaries. At least two honest nodes must remain.
func (c *Cluster) SetAdversaries(behavior sim.AdversaryBehavior, nodes []int, magnitude, target float64) error {
	if c.rt != nil {
		return c.rt.SetAdversaries(behavior, nodes, magnitude, target)
	}
	mark := make([]bool, len(c.nodes))
	count := 0
	for _, i := range nodes {
		if i < 0 || i >= len(c.nodes) {
			return fmt.Errorf("engine: adversary index %d out of range [0,%d)", i, len(c.nodes))
		}
		if !mark[i] {
			mark[i] = true
			count++
		}
	}
	if count > 0 && len(c.nodes)-count < 2 {
		return fmt.Errorf("engine: %d adversaries leave fewer than 2 honest nodes", count)
	}
	// The eclipse flood digest — every adversary address at age 0 — is
	// shared read-only across all adversaries.
	var gossip []string
	var ages []uint32
	if behavior == sim.AdvEclipse && count > 0 {
		gossip = make([]string, 0, count)
		for i, m := range mark {
			if m {
				gossip = append(gossip, c.nodes[i].Addr())
			}
		}
		ages = make([]uint32, len(gossip))
	}
	for i, n := range c.nodes {
		if mark[i] {
			n.setAdversary(behavior, magnitude, target, gossip, ages)
		} else {
			n.clearAdversary()
		}
	}
	return nil
}

// AdversaryCount returns how many nodes are configured as adversaries.
func (c *Cluster) AdversaryCount() int {
	if c.rt != nil {
		return c.rt.AdversaryCount()
	}
	count := 0
	for _, n := range c.nodes {
		if n.isAdversary() {
			count++
		}
	}
	return count
}

// SetRobust installs (or, with a zero Policy, removes) the robust-merge
// countermeasures on every node. Each node's trim acceptance band is
// seeded from the honest population's current field-0 spread — a warmup
// window that accepts everything would itself be a poisoning vector.
func (c *Cluster) SetRobust(p robust.Policy) {
	if c.rt != nil {
		c.rt.SetRobust(p)
		return
	}
	if p.Trim && p.TrimK <= 0 {
		p.TrimK = 8
	}
	var run stats.Running
	for _, n := range c.nodes {
		if n.failed.Load() || n.isAdversary() {
			continue
		}
		run.Add(n.fieldAt(0))
	}
	seed := robust.TrimState{Scale: math.Sqrt(run.Variance())}
	if !(seed.Scale > 1e-12) {
		seed.Scale = 1e-12 // degenerate spread (or NaN): keep the band open a crack
	}
	for _, n := range c.nodes {
		n.setRobust(p, seed)
	}
}

// RobustRejected returns the cumulative number of exchange halves the
// robust trim gate has rejected across all nodes.
func (c *Cluster) RobustRejected() uint64 {
	if c.rt != nil {
		return c.rt.RobustRejected()
	}
	var total uint64
	for _, n := range c.nodes {
		total += n.robustRejected.Load()
	}
	return total
}

// FailedNodes returns how many member nodes are currently failed.
func (c *Cluster) FailedNodes() int {
	if c.rt != nil {
		return c.rt.FailedNodes()
	}
	count := 0
	for _, n := range c.nodes {
		if n.failed.Load() {
			count++
		}
	}
	return count
}

// Variance returns the cross-node empirical variance of the named field —
// the live-engine analogue of the paper's σ². It folds shard-by-shard
// (Welford), allocating nothing per node.
func (c *Cluster) Variance(field string) (float64, error) {
	var run stats.Running
	if err := c.ReduceField(field, run.Add); err != nil {
		return 0, err
	}
	return run.Variance(), nil
}

// WaitConverged polls until the named field's cross-node variance falls
// to at most tol, returning the final variance and whether the deadline
// was met.
func (c *Cluster) WaitConverged(field string, tol float64, timeout time.Duration) (float64, bool, error) {
	deadline := time.Now().Add(timeout)
	interval := 5 * time.Millisecond
	for {
		v, err := c.Variance(field)
		if err != nil {
			return 0, false, err
		}
		if v <= tol {
			return v, true, nil
		}
		if time.Now().After(deadline) {
			return v, false, nil
		}
		time.Sleep(interval)
	}
}
