package engine

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/stats"
	"repro/internal/transport"
)

// ClusterConfig assembles a local in-memory cluster of nodes sharing one
// fabric — the quickest way to run the live protocol at laptop scale
// (examples, integration tests, the quickstart).
type ClusterConfig struct {
	// Size is the number of nodes (≥ 2).
	Size int
	// Schema defines the gossiped fields (required).
	Schema *core.Schema
	// Value supplies node i's local attribute.
	Value func(i int) float64
	// CycleLength is Δt for every node (required).
	CycleLength time.Duration
	// ReplyTimeout bounds the pull-reply wait (default CycleLength/2).
	// Raise it on loaded machines: a timed-out exchange commits only the
	// passive side and perturbs the mean slightly.
	ReplyTimeout time.Duration
	// Wait is the waiting-time policy (default ConstantWait).
	Wait WaitPolicy
	// Fabric carries the messages; nil builds a default lossless,
	// zero-latency fabric.
	Fabric *transport.Fabric
	// PushOnly enables the push-only ablation on every node.
	PushOnly bool
	// InitState, when non-nil, is passed to node i via a closure so the
	// cluster can seed per-node special roles (e.g. the size leader).
	InitState func(i int) func(epochID uint64, value float64) core.State
	// Seed makes the cluster deterministic-ish (scheduling still varies).
	Seed uint64
}

// Cluster is a set of locally running nodes plus their shared fabric.
type Cluster struct {
	nodes  []*Node
	fabric *transport.Fabric
	schema *core.Schema
}

// NewCluster builds (but does not start) a local cluster. Every node gets
// a static full-membership sampler, matching the paper's complete-overlay
// assumption.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Size < 2 {
		return nil, fmt.Errorf("engine: cluster needs ≥ 2 nodes, got %d", cfg.Size)
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("engine: cluster needs a Schema")
	}
	if cfg.Value == nil {
		cfg.Value = func(int) float64 { return 0 }
	}
	fabric := cfg.Fabric
	if fabric == nil {
		fabric = transport.NewFabric(transport.WithSeed(cfg.Seed))
	}

	endpoints := make([]transport.Endpoint, cfg.Size)
	addrs := make([]string, cfg.Size)
	for i := range endpoints {
		endpoints[i] = fabric.NewEndpoint()
		addrs[i] = endpoints[i].Addr()
	}

	c := &Cluster{fabric: fabric, schema: cfg.Schema, nodes: make([]*Node, 0, cfg.Size)}
	for i := 0; i < cfg.Size; i++ {
		peers := make([]string, 0, cfg.Size-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		sampler, err := membership.NewStatic(peers)
		if err != nil {
			return nil, fmt.Errorf("engine: sampler for node %d: %w", i, err)
		}
		nodeCfg := Config{
			Schema:       cfg.Schema,
			Endpoint:     endpoints[i],
			Sampler:      sampler,
			Value:        cfg.Value(i),
			CycleLength:  cfg.CycleLength,
			ReplyTimeout: cfg.ReplyTimeout,
			Wait:         cfg.Wait,
			PushOnly:     cfg.PushOnly,
			Seed:         cfg.Seed + uint64(i)*0x9e3779b97f4a7c15,
		}
		if cfg.InitState != nil {
			nodeCfg.InitState = cfg.InitState(i)
		}
		node, err := NewNode(nodeCfg)
		if err != nil {
			return nil, fmt.Errorf("engine: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Nodes returns the cluster's nodes in index order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Fabric returns the shared in-memory fabric (to inject loss or
// partitions mid-test).
func (c *Cluster) Fabric() *transport.Fabric { return c.fabric }

// Start launches every node.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		n.Start()
	}
}

// Stop stops every node (and closes their endpoints).
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		n.Stop()
	}
}

// Snapshot returns every node's current approximation of the named field.
func (c *Cluster) Snapshot(field string) ([]float64, error) {
	idx, err := c.schema.Index(field)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(c.nodes))
	for i, n := range c.nodes {
		st := n.State()
		out[i] = st[idx]
	}
	return out, nil
}

// Variance returns the cross-node empirical variance of the named field —
// the live-engine analogue of the paper's σ².
func (c *Cluster) Variance(field string) (float64, error) {
	vals, err := c.Snapshot(field)
	if err != nil {
		return 0, err
	}
	return stats.Variance(vals), nil
}

// WaitConverged polls until the named field's cross-node variance falls
// to at most tol, returning the final variance and whether the deadline
// was met.
func (c *Cluster) WaitConverged(field string, tol float64, timeout time.Duration) (float64, bool, error) {
	deadline := time.Now().Add(timeout)
	interval := 5 * time.Millisecond
	for {
		v, err := c.Variance(field)
		if err != nil {
			return 0, false, err
		}
		if v <= tol {
			return v, true, nil
		}
		if time.Now().After(deadline) {
			return v, false, nil
		}
		time.Sleep(interval)
	}
}
