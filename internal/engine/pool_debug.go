//go:build pooldebug

package engine

import (
	"fmt"
	"math"
)

// poolDebug reports whether poison-on-put diagnostics are compiled in
// (the pooldebug build tag).
const poolDebug = true

// poolPoison is a quiet-NaN with a recognizable payload. Any protocol
// math that reads a recycled buffer propagates NaN into node state,
// where the pool race test's finite-state sweep catches it; any write
// into a recycled buffer breaks the poison pattern, which the next get
// catches below.
var poolPoison = math.Float64frombits(0x7FF8_DEAD_BEEF_0001)

// poolPoisonPut fills a buffer with the poison pattern as it enters a
// free list, so stale readers see NaN instead of plausible state.
func poolPoisonPut(buf []float64) {
	for i := range buf {
		buf[i] = poolPoison
	}
}

// poolCheckGet panics if a pooled buffer was written to after it was
// returned — a use-after-put by a stale reference.
func poolCheckGet(buf []float64) {
	for i, v := range buf {
		if math.Float64bits(v) != math.Float64bits(poolPoison) {
			panic(fmt.Sprintf("engine: pooled Fields buffer written after put (index %d holds %x)", i, math.Float64bits(v)))
		}
	}
}
