package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestTraceRingSamplesExchanges runs a traced runtime and checks that
// the ring fills with plausible records: sampled seqs, resolved
// outcomes, non-negative latencies bounded by the reply timeout, and
// recency ordering from Trace.
func TestTraceRingSamplesExchanges(t *testing.T) {
	rt, err := NewRuntime(RuntimeConfig{
		Size:        256,
		Schema:      core.AverageSchema(),
		Value:       func(i int) float64 { return float64(i) },
		CycleLength: 2 * time.Millisecond,
		Workers:     2,
		Seed:        7,
		TraceSample: 4,
		TraceRing:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(context.Background())
	defer rt.Stop()

	deadline := time.Now().Add(5 * time.Second)
	var recs []TraceRecord
	for len(recs) < 32 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		recs = rt.Trace(0)
	}
	if len(recs) < 32 {
		t.Fatalf("only %d trace records after 5s", len(recs))
	}
	timeout := rt.cfg.ReplyTimeout.Seconds()
	for i, r := range recs {
		if r.Seq%4 != 0 {
			t.Errorf("record %d: seq %d off the sampling lattice", i, r.Seq)
		}
		if r.Src < 0 || int(r.Src) >= rt.Size() {
			t.Errorf("record %d: src %d out of range", i, r.Src)
		}
		if r.Dst < 0 || int(r.Dst) >= rt.Size() {
			t.Errorf("record %d: dst %d not a local node", i, r.Dst)
		}
		if lat := r.Latency(); lat < 0 || lat > timeout+0.5 {
			t.Errorf("record %d: latency %.4fs outside [0, timeout]", i, lat)
		}
		if i > 0 && recs[i].End < recs[i-1].End {
			t.Errorf("records %d,%d out of End order", i-1, i)
		}
	}
	if got := rt.Trace(5); len(got) != 5 {
		t.Errorf("Trace(5) returned %d records", len(got))
	}
	if s := recs[0].String(); !strings.Contains(s, "seq=") || !strings.Contains(s, "src=") {
		t.Errorf("TraceRecord.String() = %q", s)
	}
}

// TestTraceDisabledIsNil pins the zero-cost-off contract's visible
// half: no sampling, no records, no ring allocation.
func TestTraceDisabledIsNil(t *testing.T) {
	rt, err := NewRuntime(RuntimeConfig{
		Size:        16,
		Schema:      core.AverageSchema(),
		CycleLength: time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if got := rt.Trace(10); got != nil {
		t.Fatalf("Trace with sampling off = %v, want nil", got)
	}
	for _, s := range rt.shards {
		if s.trace.recs != nil {
			t.Fatal("trace ring allocated with sampling off")
		}
	}
}

// TestRuntimeMetricsRegistration scrapes a live runtime and checks the
// engine's series carry real values: initiated exchanges grow, rounds
// run, and the scrape itself holds no shard lock (it completes while
// workers are saturated).
func TestRuntimeMetricsRegistration(t *testing.T) {
	reg := metrics.New()
	rt, err := NewRuntime(RuntimeConfig{
		Size:        512,
		Schema:      core.AverageSchema(),
		Value:       func(i int) float64 { return float64(i % 10) },
		CycleLength: 2 * time.Millisecond,
		Workers:     2,
		Seed:        3,
		Metrics:     reg,
		TraceSample: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(context.Background())
	defer rt.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for rt.Stats().Replies < 500 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	text := string(reg.AppendPrometheus(nil))
	for _, fam := range []string{
		"repro_engine_exchanges_initiated_total",
		"repro_engine_exchanges_completed_total",
		"repro_engine_rounds_total",
		"repro_engine_inbox_depth",
		"repro_engine_shard_lag_seconds",
		"repro_pool_gets_total",
		"repro_pool_local_free",
		"repro_transport_batch_frames_total",
		"repro_transport_fabric_loss_dropped_total",
		"repro_engine_exchange_latency_seconds_count",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("scrape missing %s", fam)
		}
	}
	if !strings.Contains(text, `repro_engine_exchanges_initiated_total{shard="1"}`) {
		t.Error("per-shard labels missing from scrape")
	}
	// The registry reads the same atomics Stats folds, so the two views
	// must agree to within in-flight skew.
	if rt.Stats().Initiated == 0 {
		t.Fatal("no exchanges initiated")
	}
}
