package engine

import (
	"fmt"
	"sort"
)

// TraceOutcome classifies how a traced exchange ended.
type TraceOutcome uint8

const (
	// TraceCompleted: the pull reply arrived and was merged.
	TraceCompleted TraceOutcome = iota
	// TraceNacked: the peer was busy and declined the push.
	TraceNacked
	// TraceTimedOut: the reply deadline passed; only the passive side
	// (if any) committed the exchange.
	TraceTimedOut
)

// String returns the outcome name.
func (o TraceOutcome) String() string {
	switch o {
	case TraceCompleted:
		return "completed"
	case TraceNacked:
		return "nacked"
	case TraceTimedOut:
		return "timeout"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// TraceRecord is one sampled exchange, observed from its initiator.
// Times are scheduler time: seconds since the runtime started.
type TraceRecord struct {
	// Seq is the initiating shard's exchange sequence number.
	Seq uint64
	// Src is the initiating node's global index; Shard its shard.
	Src   int32
	Shard int32
	// Dst is the sampled peer's global index, or -1 when the peer is
	// not a local sub-address (e.g. a remote process's base address).
	Dst int32
	// Outcome says how the exchange ended.
	Outcome TraceOutcome
	// Start is when the push was sent, End when the reply, nack or
	// timeout resolved it.
	Start, End float64
}

// Latency returns End − Start in seconds.
func (r TraceRecord) Latency() float64 { return r.End - r.Start }

// String renders one record for log output.
func (r TraceRecord) String() string {
	dst := "remote"
	if r.Dst >= 0 {
		dst = fmt.Sprintf("%d", r.Dst)
	}
	return fmt.Sprintf("seq=%d src=%d@%d dst=%s %s %.3fms",
		r.Seq, r.Src, r.Shard, dst, r.Outcome, r.Latency()*1e3)
}

// traceRing is a shard's fixed-size ring of sampled exchange records,
// guarded by the shard's round lock. With sampling off the ring is nil
// and the hot path pays a single predictable branch.
type traceRing struct {
	recs []TraceRecord
	n    uint64 // total records ever written
}

// record appends one record, overwriting the oldest when full.
func (r *traceRing) record(rec TraceRecord) {
	if len(r.recs) == 0 {
		return
	}
	r.recs[r.n%uint64(len(r.recs))] = rec
	r.n++
}

// snapshotInto appends the ring's live records to out, oldest first.
func (r *traceRing) snapshotInto(out []TraceRecord) []TraceRecord {
	size := uint64(len(r.recs))
	if size == 0 {
		return out
	}
	live := r.n
	if live > size {
		live = size
	}
	for i := r.n - live; i < r.n; i++ {
		out = append(out, r.recs[i%size])
	}
	return out
}

// recordTrace stores one resolved exchange in the shard's ring and
// feeds the latency histogram. Caller holds s.mu and has already
// checked the sampling gate.
func (s *rshard) recordTrace(n *rnode, idx int, seq uint64, outcome TraceOutcome, end float64) {
	s.trace.record(TraceRecord{
		Seq:     seq,
		Src:     int32(idx),
		Shard:   int32(s.id),
		Dst:     n.pendingDst,
		Outcome: outcome,
		Start:   n.pendingAt,
		End:     end,
	})
	if s.latency != nil {
		s.latency.Observe(end - n.pendingAt)
	}
}

// traceSampled reports whether exchange seq falls on the sampling
// lattice. traceEvery is a power of two, so the gate is a load, a
// branch and a mask — no division on the exchange hot path; with
// sampling off it is one predictable branch.
func (s *rshard) traceSampled(seq uint64) bool {
	return s.traceEvery != 0 && seq&(s.traceEvery-1) == 0
}

// Trace returns up to max sampled exchange records across all shards,
// most recent last (ordered by resolution time). It locks each shard
// briefly — round-granular, like any observer — and returns nil when
// sampling is off. max ≤ 0 returns everything currently buffered.
func (rt *Runtime) Trace(max int) []TraceRecord {
	if rt.cfg.TraceSample <= 0 {
		return nil
	}
	out := make([]TraceRecord, 0, len(rt.shards)*rt.cfg.TraceRing)
	for _, s := range rt.shards {
		s.mu.Lock()
		out = s.trace.snapshotInto(out)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].End < out[j].End })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}
