package engine

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/membership"
	"repro/internal/transport"
)

// TestLiveSizeEstimationAcrossEpochs runs the §4 counting protocol on
// the live engine with a real epoch clock: node 0 leads every epoch
// (indicator 1), everyone else starts at 0; after convergence every node
// decodes the network size, and the estimate survives epoch restarts.
func TestLiveSizeEstimationAcrossEpochs(t *testing.T) {
	const size = 12
	schema := core.SummarySchema()
	sizeIdx, err := schema.Index("size")
	if err != nil {
		t.Fatal(err)
	}
	clock, err := epoch.NewClock(time.Now(), 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fabric := transport.NewFabric()
	endpoints := make([]transport.Endpoint, size)
	addrs := make([]string, size)
	for i := range endpoints {
		endpoints[i] = fabric.NewEndpoint()
		addrs[i] = endpoints[i].Addr()
	}
	nodes := make([]*Node, 0, size)
	for i := 0; i < size; i++ {
		peers := make([]string, 0, size-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		sampler, err := membership.NewStatic(peers)
		if err != nil {
			t.Fatal(err)
		}
		leader := i == 0
		n, err := NewNode(Config{
			Schema:       schema,
			Endpoint:     endpoints[i],
			Sampler:      sampler,
			Value:        float64(i),
			CycleLength:  3 * time.Millisecond,
			ReplyTimeout: 100 * time.Millisecond,
			Clock:        clock,
			Seed:         uint64(300 + i),
			InitState: func(_ uint64, value float64) core.State {
				st := schema.InitState(value)
				if leader {
					st[sizeIdx] = 1
				}
				return st
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	// Sample size estimates near the end of several consecutive epochs;
	// each must be close to the true size despite the restarts between.
	goodEpochs := 0
	deadline := time.Now().Add(8 * time.Second)
	lastChecked := uint64(0)
	for goodEpochs < 3 && time.Now().Before(deadline) {
		cur := nodes[3].Epoch()
		if _, wait := clock.NextStart(time.Now()); wait > 80*time.Millisecond && cur > lastChecked {
			// Deep enough into epoch cur for ~30+ cycles to have run.
			sum, err := core.DecodeSummary(schema, nodes[3].State())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sum.Size-size) < 1 {
				goodEpochs++
				lastChecked = cur
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if goodEpochs < 3 {
		t.Fatalf("only %d epochs produced an accurate live size estimate", goodEpochs)
	}
}
