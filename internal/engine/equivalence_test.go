package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/stats"
	"repro/internal/transport"
)

// equivCase is one scenario of the cross-runtime equivalence matrix:
// both the goroutine runtime and the heap runtime execute it over a
// deterministic in-memory fabric with fixed seeds, and must converge to
// the same aggregate within tolerance. The runtimes schedule work very
// differently (per-node goroutines and real timers versus a sharded
// event heap with batched transports), so the equivalence is on the
// protocol's fixed point — the aggregate every node agrees on — not on
// trajectories.
type equivCase struct {
	name    string
	size    int
	field   string
	dropP   float64 // fabric-level message loss
	count   bool    // size estimation: leader indicator, field "size"
	churn   bool    // one churn epoch: values change, clock restarts
	want    float64
	tol     float64
	varTol  float64 // convergence threshold on the cross-node variance
	timeout time.Duration
}

func equivMatrix(short bool) []equivCase {
	cases := []equivCase{
		{
			name: "avg-lossless", size: 16, field: "avg",
			want: 7.5, tol: 0.05, timeout: 5 * time.Second,
		},
		{
			name: "avg-loss20", size: 12, field: "avg", dropP: 0.2,
			// Loss breaks exact mass conservation (§2); both runtimes
			// must stay near the true mean, and near each other. The
			// variance threshold is looser because ongoing loss keeps
			// perturbing the consensus, and the mean tolerance is ≈ 4σ
			// of the observed drift (each dropped in-flight push loses
			// mass; scheduling decides which): tighter bounds flake on
			// slow boxes without catching anything a broken runtime
			// wouldn't blow past.
			want: 5.5, tol: 1.2, varTol: 1e-4, timeout: 8 * time.Second,
		},
		{
			// The size field gossips the §4 indicator average 1/N; the
			// decoded estimate is its reciprocal. Equivalence is checked
			// on the raw field (±0.002 here is ≈ ±0.5 on the estimate).
			name: "count-lossless", size: 16, field: "size", count: true,
			want: 1.0 / 16, tol: 0.002, timeout: 5 * time.Second,
		},
	}
	if !short {
		cases = append(cases, equivCase{
			name: "avg-churn-epoch", size: 12, field: "avg", churn: true,
			want: 9, tol: 0.1, timeout: 8 * time.Second,
		})
	}
	return cases
}

// runEquivCase executes one matrix entry on one runtime mode (and, in
// heap mode, a pinned worker count; 0 keeps the GOMAXPROCS default) and
// returns the converged snapshot of the case's field.
func runEquivCase(t *testing.T, tc equivCase, mode RuntimeMode, workers int, seed uint64) []float64 {
	t.Helper()
	schema := core.AverageSchema()
	value := func(i int) float64 { return float64(i) }
	cfg := ClusterConfig{
		Size:         tc.size,
		Schema:       schema,
		Value:        value,
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 30 * time.Millisecond,
		Mode:         mode,
		Workers:      workers,
		Seed:         seed,
	}
	if tc.count {
		schema = core.SummarySchema()
		sizeIdx, err := schema.Index("size")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Schema = schema
		cfg.InitState = func(i int) func(uint64, float64) core.State {
			return func(_ uint64, v float64) core.State {
				st := schema.InitState(v)
				if i == 0 {
					st[sizeIdx] = 1
				}
				return st
			}
		}
	}
	if tc.dropP > 0 {
		cfg.Fabric = transport.NewFabric(
			transport.WithDropProbability(tc.dropP),
			transport.WithSeed(seed),
			transport.WithInboxSize(1<<12),
		)
	}
	if tc.churn {
		clock, err := epoch.NewClock(time.Now(), 120*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Clock = clock
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()

	if tc.churn {
		// One churn epoch: every node's local value jumps mid-run; the
		// epoch restart must carry both runtimes to the new average.
		time.Sleep(30 * time.Millisecond)
		for i, n := range c.Nodes() {
			n.SetValue(float64(i) + 3.5)
		}
	}

	varTol := tc.varTol
	if varTol == 0 {
		varTol = 1e-6
	}
	deadline := time.Now().Add(tc.timeout)
	for {
		vals, err := c.Snapshot(tc.field)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Variance(vals) <= varTol && math.Abs(stats.Mean(vals)-tc.want) <= tc.tol {
			return vals
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s/%s stuck: mean %g (want %g ± %g), variance %g",
				tc.name, mode, stats.Mean(vals), tc.want, tc.tol, stats.Variance(vals))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrossRuntimeEquivalence runs the scenario matrix on every runtime
// variant with the same seeds and checks that they all converge to the
// same aggregate within tolerance — the contract that lets callers
// switch a Cluster to ModeHeap (at any worker count) without
// revalidating the protocol. Heap mode runs twice: workers=1 (one
// shard, fully serialized) and workers=4 (parallel shard workers,
// cross-shard exchanges through batch frames, work stealing armed), so
// the fixed point is pinned independent of GOMAXPROCS. The -race CI
// job runs this test too, which exercises the parallel shards under
// the race detector.
func TestCrossRuntimeEquivalence(t *testing.T) {
	variants := []struct {
		name    string
		mode    RuntimeMode
		workers int
	}{
		{"goroutine", ModeGoroutine, 0},
		{"heap-1w", ModeHeap, 1},
		{"heap-4w", ModeHeap, 4},
	}
	for _, tc := range equivMatrix(testing.Short()) {
		t.Run(tc.name, func(t *testing.T) {
			means := make([]float64, len(variants))
			for i, v := range variants {
				vals := runEquivCase(t, tc, v.mode, v.workers, 1234)
				means[i] = stats.Mean(vals)
				if math.Abs(means[i]-tc.want) > tc.tol {
					t.Errorf("%s mean %g, want %g ± %g", v.name, means[i], tc.want, tc.tol)
				}
			}
			for i := range variants {
				for j := i + 1; j < len(variants); j++ {
					if d := math.Abs(means[i] - means[j]); d > 2*tc.tol {
						t.Errorf("runtimes disagree by %g (%s %g, %s %g), want ≤ %g",
							d, variants[i].name, means[i], variants[j].name, means[j], 2*tc.tol)
					}
				}
			}
		})
	}
}
