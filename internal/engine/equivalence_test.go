package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/stats"
	"repro/internal/transport"
)

// equivCase is one scenario of the cross-runtime equivalence matrix:
// both the goroutine runtime and the heap runtime execute it over a
// deterministic in-memory fabric with fixed seeds, and must converge to
// the same aggregate within tolerance. The runtimes schedule work very
// differently (per-node goroutines and real timers versus a sharded
// event heap with batched transports), so the equivalence is on the
// protocol's fixed point — the aggregate every node agrees on — not on
// trajectories.
type equivCase struct {
	name    string
	size    int
	field   string
	dropP   float64 // fabric-level message loss
	count   bool    // size estimation: leader indicator, field "size"
	churn   bool    // one churn epoch: values change, clock restarts
	want    float64
	tol     float64
	varTol  float64 // convergence threshold on the cross-node variance
	timeout time.Duration
}

func equivMatrix(short bool) []equivCase {
	cases := []equivCase{
		{
			name: "avg-lossless", size: 16, field: "avg",
			want: 7.5, tol: 0.05, timeout: 5 * time.Second,
		},
		{
			name: "avg-loss20", size: 12, field: "avg", dropP: 0.2,
			// Loss breaks exact mass conservation (§2); both runtimes
			// must stay near the true mean, and near each other. The
			// variance threshold is looser because ongoing loss keeps
			// perturbing the consensus.
			want: 5.5, tol: 0.75, varTol: 1e-4, timeout: 8 * time.Second,
		},
		{
			// The size field gossips the §4 indicator average 1/N; the
			// decoded estimate is its reciprocal. Equivalence is checked
			// on the raw field (±0.002 here is ≈ ±0.5 on the estimate).
			name: "count-lossless", size: 16, field: "size", count: true,
			want: 1.0 / 16, tol: 0.002, timeout: 5 * time.Second,
		},
	}
	if !short {
		cases = append(cases, equivCase{
			name: "avg-churn-epoch", size: 12, field: "avg", churn: true,
			want: 9, tol: 0.1, timeout: 8 * time.Second,
		})
	}
	return cases
}

// runEquivCase executes one matrix entry on one runtime mode and
// returns the converged snapshot of the case's field.
func runEquivCase(t *testing.T, tc equivCase, mode RuntimeMode, seed uint64) []float64 {
	t.Helper()
	schema := core.AverageSchema()
	value := func(i int) float64 { return float64(i) }
	cfg := ClusterConfig{
		Size:         tc.size,
		Schema:       schema,
		Value:        value,
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 30 * time.Millisecond,
		Mode:         mode,
		Seed:         seed,
	}
	if tc.count {
		schema = core.SummarySchema()
		sizeIdx, err := schema.Index("size")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Schema = schema
		cfg.InitState = func(i int) func(uint64, float64) core.State {
			return func(_ uint64, v float64) core.State {
				st := schema.InitState(v)
				if i == 0 {
					st[sizeIdx] = 1
				}
				return st
			}
		}
	}
	if tc.dropP > 0 {
		cfg.Fabric = transport.NewFabric(
			transport.WithDropProbability(tc.dropP),
			transport.WithSeed(seed),
			transport.WithInboxSize(1<<12),
		)
	}
	if tc.churn {
		clock, err := epoch.NewClock(time.Now(), 120*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Clock = clock
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()

	if tc.churn {
		// One churn epoch: every node's local value jumps mid-run; the
		// epoch restart must carry both runtimes to the new average.
		time.Sleep(30 * time.Millisecond)
		for i, n := range c.Nodes() {
			n.SetValue(float64(i) + 3.5)
		}
	}

	varTol := tc.varTol
	if varTol == 0 {
		varTol = 1e-6
	}
	deadline := time.Now().Add(tc.timeout)
	for {
		vals, err := c.Snapshot(tc.field)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Variance(vals) <= varTol && math.Abs(stats.Mean(vals)-tc.want) <= tc.tol {
			return vals
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s/%s stuck: mean %g (want %g ± %g), variance %g",
				tc.name, mode, stats.Mean(vals), tc.want, tc.tol, stats.Variance(vals))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrossRuntimeEquivalence runs the scenario matrix on both runtimes
// with the same seeds and checks that they converge to the same
// aggregate within tolerance — the contract that lets callers switch a
// Cluster to ModeHeap without revalidating the protocol.
func TestCrossRuntimeEquivalence(t *testing.T) {
	for _, tc := range equivMatrix(testing.Short()) {
		t.Run(tc.name, func(t *testing.T) {
			goro := runEquivCase(t, tc, ModeGoroutine, 1234)
			heap := runEquivCase(t, tc, ModeHeap, 1234)
			gm, hm := stats.Mean(goro), stats.Mean(heap)
			if math.Abs(gm-tc.want) > tc.tol {
				t.Errorf("goroutine mean %g, want %g ± %g", gm, tc.want, tc.tol)
			}
			if math.Abs(hm-tc.want) > tc.tol {
				t.Errorf("heap mean %g, want %g ± %g", hm, tc.want, tc.tol)
			}
			if d := math.Abs(gm - hm); d > 2*tc.tol {
				t.Errorf("runtimes disagree by %g (goroutine %g, heap %g), want ≤ %g",
					d, gm, hm, 2*tc.tol)
			}
		})
	}
}
