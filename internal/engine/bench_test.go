package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/robust"
	"repro/internal/sim"
)

// BenchmarkRuntimeExchange measures live-runtime exchange throughput —
// goroutine mode versus the heap scheduler — over the in-memory fabric
// at N = 10³, 10⁴ and 10⁵ nodes. Δt = 1 ms oversubscribes every size,
// so the measurement is each runtime's maximum sustainable exchange
// rate. One benchmark iteration is a fixed one-second measurement
// window (never b.N exchanges: a runtime that collapses under load
// would otherwise hang the harness — the collapse is the result);
// throughput is reported as the explicit exchanges/s and ns/exchange
// metrics, not ns/op. Goroutine mode is skipped at N = 10⁵: 2·10⁵
// goroutines plus a timer and a 1024-slot channel inbox per node is
// the blow-up the heap runtime exists to remove.
//
// CI's bench-smoke step runs mode=heap/n=10000 once per PR.
//
// Recorded trajectory on the 1-core dev container (mode=heap/n=10000,
// benchtime=2x): PR 3 baseline ≈ 570–834 k exchanges/s on CI hardware,
// 739 k exchanges/s (1352 ns/exchange) re-measured before PR 5; after
// the pooled zero-allocation hot path: 865 k exchanges/s
// (1156 ns/exchange), +17% on identical hardware.
func BenchmarkRuntimeExchange(b *testing.B) {
	for _, mode := range []RuntimeMode{ModeGoroutine, ModeHeap} {
		for _, n := range []int{1_000, 10_000, 100_000} {
			b.Run(fmt.Sprintf("mode=%s/n=%d", mode, n), func(b *testing.B) {
				if mode == ModeGoroutine && n >= 100_000 {
					b.Skip("2·10⁵ goroutines; the scaling wall this benchmark documents")
				}
				benchmarkRuntimeExchange(b, mode, n)
			})
		}
	}
}

func benchmarkRuntimeExchange(b *testing.B, mode RuntimeMode, size int) {
	c, err := NewCluster(ClusterConfig{
		Size:         size,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i % 2) },
		CycleLength:  time.Millisecond, // saturating for every runtime
		ReplyTimeout: 250 * time.Millisecond,
		Mode:         mode,
		Seed:         uint64(size),
	})
	if err != nil {
		b.Fatal(err)
	}
	c.Start(context.Background())
	// Warm up past construction transients before measuring.
	time.Sleep(100 * time.Millisecond)
	before := clusterStats(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		time.Sleep(time.Second)
	}
	b.StopTimer()
	after := clusterStats(c)
	c.Stop()

	exchanges := after.Initiated - before.Initiated
	elapsed := b.Elapsed().Seconds()
	if exchanges == 0 || elapsed == 0 {
		b.Fatalf("no exchanges during the measurement window (stats %+v)", after)
	}
	b.ReportMetric(float64(exchanges)/elapsed, "exchanges/s")
	b.ReportMetric(elapsed*1e9/float64(exchanges), "ns/exchange")
	b.ReportMetric(float64(after.Replies-before.Replies)/float64(exchanges), "replies/initiated")
}

// BenchmarkRuntimeSustained is the sustained-throughput harness in
// -bench mode: a full 20-cycle saturated run of the heap runtime on the
// in-memory fabric, asserting the same acceptance bounds as the 10⁵
// test (variance down 100×, completion against a size-matched floor —
// 98.9% at n ≥ 10⁵ — and ≈ 0 allocs/exchange) and reporting sustained
// throughput, completion and steady-state allocation rate as benchmark
// metrics. n=1000000 is the 10⁶-node scale gate; n=10000 is the CI
// bench-smoke variant with the alloc assertion enabled on every PR.
func BenchmarkRuntimeSustained(b *testing.B) {
	for _, tc := range []struct {
		n             int
		minCompletion float64
	}{
		// ≈ 1 − eventBudget(n)/n busy-nack geometry, see assertSustained.
		{10_000, 0.85},
		{100_000, 0.989},
		{1_000_000, 0.989},
	} {
		b.Run(fmt.Sprintf("n=%d", tc.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runSustained(b, tc.n, 20, 0, 15*time.Minute)
				assertSustained(b, res, tc.minCompletion)
				b.ReportMetric(res.PerSecond, "exchanges/s")
				b.ReportMetric(res.Completion, "completion")
				b.ReportMetric(res.AllocsPerExchange, "allocs/exchange")
			}
		})
	}
}

// BenchmarkRuntimeSustainedRobust is the robust-merge cost gate: the
// sustained harness with the full countermeasure stack installed —
// value clamp plus trimmed merge — while 5% of the population acts as
// extreme-value adversaries pinned at 1000, feeding the trim gate real
// rejections. The assertion is the same as the baseline harness: the
// honest population (reduces skip adversaries) still converges on 0.5
// at ≈ 0 allocs/exchange, because the countermeasures are pure
// arithmetic on the pooled hot path (the trim state lives inline in the
// node record). The completion floor is looser than the honest
// harness's: every adversary-initiated push is trim-nacked by its
// honest responder, which is the countermeasure working, not collapse.
func BenchmarkRuntimeSustainedRobust(b *testing.B) {
	const n = 10_000
	for i := 0; i < b.N; i++ {
		res := runSustainedWith(b, n, 20, 0, 15*time.Minute, func(c *Cluster) {
			count := n / 20 // 5%
			idx := make([]int, count)
			for j := range idx {
				idx[j] = j * n / count
			}
			if err := c.SetAdversaries(sim.AdvExtreme, idx, 1000, 0); err != nil {
				b.Fatal(err)
			}
			c.SetRobust(robust.Policy{
				Clamp: true, ClampMin: -100, ClampMax: 100,
				Trim: true, TrimK: 8,
			})
		})
		// ≈ 0.85 busy-nack geometry minus the ~5% adversary-initiated
		// pushes the gate refuses (measured 0.81; floor leaves noise room).
		assertSustained(b, res, 0.75)
		if res.RobustRejected == 0 {
			b.Fatal("trim gate rejected nothing during a sustained attack; the countermeasure is not engaged")
		}
		b.ReportMetric(res.PerSecond, "exchanges/s")
		b.ReportMetric(res.Completion, "completion")
		b.ReportMetric(res.AllocsPerExchange, "allocs/exchange")
	}
}

// sustainedFloor is the completion floor matched to a run's busy-nack
// geometry: a saturated shard keeps up to eventBudget(n/workers) nodes
// in flight at once, a push landing on an in-flight peer is nacked, so
// the nack rate tracks the total in-flight fraction. The 2.5× margin
// absorbs run-to-run noise; the 0.7 floor still catches collapse.
func sustainedFloor(n, workers int) float64 {
	per := (n + workers - 1) / workers
	inflight := float64(eventBudget(per)*workers) / float64(n)
	return max(0.7, 1-2.5*inflight)
}

// BenchmarkRuntimeSustainedScaling is the multi-core gate: the
// sustained harness at a fixed size across worker counts 1, 2, 4 (and
// GOMAXPROCS when larger), asserting near-linear scaling of sustained
// exchanges/s whenever the hardware actually has the cores — ≥ 2.5× at
// 4 workers, ≥ 1.4× at 2 — at ≈ 0 allocs/exchange. With fewer cores
// the multi-worker runs still execute (parallel-shard correctness
// under oversubscription) but the speedup assertion is skipped: no
// hardware, no demonstrable speedup. CI's multicore bench-smoke step
// runs this benchmark with GOMAXPROCS ≥ 2 and records the results in
// the BENCH_PR6 perf trajectory.
func BenchmarkRuntimeSustainedScaling(b *testing.B) {
	const n = 100_000
	maxProcs := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for _, w := range []int{2, 4} {
		if w <= maxProcs {
			counts = append(counts, w)
		}
	}
	if maxProcs > 4 {
		counts = append(counts, maxProcs)
	}
	rate := make(map[int]float64, len(counts))
	for _, w := range counts {
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runSustained(b, n, 20, w, 15*time.Minute)
				assertSustained(b, res, sustainedFloor(n, w))
				rate[w] = res.PerSecond
				b.ReportMetric(res.PerSecond, "exchanges/s")
				b.ReportMetric(res.PerSecond/float64(w), "exchanges/s/worker")
				b.ReportMetric(res.Completion, "completion")
				b.ReportMetric(res.AllocsPerExchange, "allocs/exchange")
			}
		})
	}
	base := rate[1]
	if base == 0 {
		return // single-worker run filtered out or failed; nothing to compare
	}
	for w, minSpeedup := range map[int]float64{2: 1.4, 4: 2.5} {
		r, ran := rate[w]
		if !ran || maxProcs < w {
			continue
		}
		if speedup := r / base; speedup < minSpeedup {
			b.Errorf("workers=%d sustained %.0f exchanges/s vs %.0f at workers=1 — %.2f×, want ≥ %.1f× on %d CPUs",
				w, r, base, speedup, minSpeedup, maxProcs)
		}
	}
}

// BenchmarkRuntimeMetricsOverhead is the telemetry-cost gate: the
// sustained harness with a registered metrics registry, trace sampling
// and a live 20 Hz scraper, compared against the bare harness (same
// ≈ 0 allocs/exchange steady state asserted on both). The engine's
// series are scrape-time readers over counters the runtime maintains
// anyway, so the design budget is 2%: six round-granular mirror stores
// plus a masked sampling gate per exchange.
//
// The comparison is built for noisy shared hardware — the dev
// container's whole-machine throughput swings ±10% run to run in
// multi-second bursts. The variants run as tightly-paired A/B runs
// with the order alternated pair to pair, and the ratio is estimated
// two ways: the median of per-pair ratios (robust to outlier pairs)
// and best-of/best-of (robust to slow phases, since each side need
// only land one clean window). A noise burst rarely corrupts both
// estimators at once, but a real hot-path regression slows every
// telemetry run and drags both down, so the gate takes the larger of
// the two, at ≥ 0.95 — the 2% design budget plus the container's
// noise floor — and retries one fresh round before failing. The
// variable-modulo trace gate this benchmark flushed out cost 9% and
// fails both estimators in both rounds; single-burst flukes don't.
// The measured ratio lands in the BENCH_PR7 perf trajectory.
func BenchmarkRuntimeMetricsOverhead(b *testing.B) {
	const n = 10_000
	const pairs = 7
	const floor = 0.95
	run := func(reg *metrics.Registry) float64 {
		var stop chan struct{}
		if reg != nil {
			stop = make(chan struct{})
			go func() { // a Prometheus scraper, aggressive at 20 Hz
				ticker := time.NewTicker(50 * time.Millisecond)
				defer ticker.Stop()
				var buf []byte
				for {
					select {
					case <-stop:
						return
					case <-ticker.C:
						buf = reg.AppendPrometheus(buf[:0])
					}
				}
			}()
		}
		res := runSustained(b, n, 20, 0, 15*time.Minute, func(cfg *ClusterConfig) {
			if reg != nil {
				cfg.Metrics = reg
				cfg.TraceSample = 64
			}
		})
		if stop != nil {
			close(stop)
		}
		assertSustained(b, res, 0.85)
		return res.PerSecond
	}
	round := func() (ratio, meanOff, meanOn float64, ratios []float64) {
		var bestOff, bestOn, sumOff, sumOn float64
		for r := 0; r < pairs; r++ {
			var off, on float64
			if r%2 == 0 {
				off = run(nil)
				on = run(metrics.New())
			} else {
				on = run(metrics.New())
				off = run(nil)
			}
			sumOff += off
			sumOn += on
			bestOff = max(bestOff, off)
			bestOn = max(bestOn, on)
			ratios = append(ratios, on/off)
		}
		sort.Float64s(ratios)
		return max(ratios[len(ratios)/2], bestOn/bestOff), sumOff / pairs, sumOn / pairs, ratios
	}
	for i := 0; i < b.N; i++ {
		ratio, meanOff, meanOn, ratios := round()
		if ratio < floor {
			b.Logf("round 1 below the gate (%.3f, pairs %v); retrying against a fresh round", ratio, ratios)
			ratio, meanOff, meanOn, ratios = round()
		}
		b.ReportMetric(meanOff, "base_exchanges/s")
		b.ReportMetric(meanOn, "telemetry_exchanges/s")
		b.ReportMetric(ratio, "telemetry_ratio")
		if ratio < floor {
			b.Errorf("telemetry costs %.1f%% of sustained throughput (max of pair-median and best-of estimators over %d pairs, %v), want ≈ 0%% within the %.0f%% gate",
				100*(1-ratio), pairs, ratios, 100*(1-floor))
		}
	}
}

// clusterStats aggregates counters across the whole cluster in either
// mode.
func clusterStats(c *Cluster) Stats {
	if rt := c.Runtime(); rt != nil {
		return rt.Stats()
	}
	var agg Stats
	for _, n := range c.Nodes() {
		s := n.Stats()
		agg.Initiated += s.Initiated
		agg.Replies += s.Replies
		agg.Timeouts += s.Timeouts
		agg.Served += s.Served
	}
	return agg
}
