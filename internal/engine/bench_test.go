package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkRuntimeExchange measures live-runtime exchange throughput —
// goroutine mode versus the heap scheduler — over the in-memory fabric
// at N = 10³, 10⁴ and 10⁵ nodes. Δt = 1 ms oversubscribes every size,
// so the measurement is each runtime's maximum sustainable exchange
// rate. One benchmark iteration is a fixed one-second measurement
// window (never b.N exchanges: a runtime that collapses under load
// would otherwise hang the harness — the collapse is the result);
// throughput is reported as the explicit exchanges/s and ns/exchange
// metrics, not ns/op. Goroutine mode is skipped at N = 10⁵: 2·10⁵
// goroutines plus a timer and a 1024-slot channel inbox per node is
// the blow-up the heap runtime exists to remove.
//
// CI's bench-smoke step runs mode=heap/n=10000 once per PR.
//
// Recorded trajectory on the 1-core dev container (mode=heap/n=10000,
// benchtime=2x): PR 3 baseline ≈ 570–834 k exchanges/s on CI hardware,
// 739 k exchanges/s (1352 ns/exchange) re-measured before PR 5; after
// the pooled zero-allocation hot path: 865 k exchanges/s
// (1156 ns/exchange), +17% on identical hardware.
func BenchmarkRuntimeExchange(b *testing.B) {
	for _, mode := range []RuntimeMode{ModeGoroutine, ModeHeap} {
		for _, n := range []int{1_000, 10_000, 100_000} {
			b.Run(fmt.Sprintf("mode=%s/n=%d", mode, n), func(b *testing.B) {
				if mode == ModeGoroutine && n >= 100_000 {
					b.Skip("2·10⁵ goroutines; the scaling wall this benchmark documents")
				}
				benchmarkRuntimeExchange(b, mode, n)
			})
		}
	}
}

func benchmarkRuntimeExchange(b *testing.B, mode RuntimeMode, size int) {
	c, err := NewCluster(ClusterConfig{
		Size:         size,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i % 2) },
		CycleLength:  time.Millisecond, // saturating for every runtime
		ReplyTimeout: 250 * time.Millisecond,
		Mode:         mode,
		Seed:         uint64(size),
	})
	if err != nil {
		b.Fatal(err)
	}
	c.Start(context.Background())
	// Warm up past construction transients before measuring.
	time.Sleep(100 * time.Millisecond)
	before := clusterStats(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		time.Sleep(time.Second)
	}
	b.StopTimer()
	after := clusterStats(c)
	c.Stop()

	exchanges := after.Initiated - before.Initiated
	elapsed := b.Elapsed().Seconds()
	if exchanges == 0 || elapsed == 0 {
		b.Fatalf("no exchanges during the measurement window (stats %+v)", after)
	}
	b.ReportMetric(float64(exchanges)/elapsed, "exchanges/s")
	b.ReportMetric(elapsed*1e9/float64(exchanges), "ns/exchange")
	b.ReportMetric(float64(after.Replies-before.Replies)/float64(exchanges), "replies/initiated")
}

// BenchmarkRuntimeSustained is the sustained-throughput harness in
// -bench mode: a full 20-cycle saturated run of the heap runtime on the
// in-memory fabric, asserting the same acceptance bounds as the 10⁵
// test (variance down 100×, completion against a size-matched floor —
// 98.9% at n ≥ 10⁵ — and ≈ 0 allocs/exchange) and reporting sustained
// throughput, completion and steady-state allocation rate as benchmark
// metrics. n=1000000 is the 10⁶-node scale gate; n=10000 is the CI
// bench-smoke variant with the alloc assertion enabled on every PR.
func BenchmarkRuntimeSustained(b *testing.B) {
	for _, tc := range []struct {
		n             int
		minCompletion float64
	}{
		// ≈ 1 − eventBudget(n)/n busy-nack geometry, see assertSustained.
		{10_000, 0.85},
		{100_000, 0.989},
		{1_000_000, 0.989},
	} {
		b.Run(fmt.Sprintf("n=%d", tc.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runSustained(b, tc.n, 20, 15*time.Minute)
				assertSustained(b, res, tc.minCompletion)
				b.ReportMetric(res.PerSecond, "exchanges/s")
				b.ReportMetric(res.Completion, "completion")
				b.ReportMetric(res.AllocsPerExchange, "allocs/exchange")
			}
		})
	}
}

// clusterStats aggregates counters across the whole cluster in either
// mode.
func clusterStats(c *Cluster) Stats {
	if rt := c.Runtime(); rt != nil {
		return rt.Stats()
	}
	var agg Stats
	for _, n := range c.Nodes() {
		s := n.Stats()
		agg.Initiated += s.Initiated
		agg.Replies += s.Replies
		agg.Timeouts += s.Timeouts
		agg.Served += s.Served
	}
	return agg
}
