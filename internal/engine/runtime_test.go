package engine

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/membership"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/xrand"
)

func TestRuntimeConfigValidation(t *testing.T) {
	base := RuntimeConfig{
		Size:        8,
		Schema:      core.AverageSchema(),
		CycleLength: time.Millisecond,
	}
	mutations := []struct {
		name   string
		mutate func(c RuntimeConfig) RuntimeConfig
	}{
		{"too small", func(c RuntimeConfig) RuntimeConfig { c.Size = 1; return c }},
		{"nil schema", func(c RuntimeConfig) RuntimeConfig { c.Schema = nil; return c }},
		{"zero cycle", func(c RuntimeConfig) RuntimeConfig { c.CycleLength = 0; return c }},
		{"bad wait", func(c RuntimeConfig) RuntimeConfig { c.Wait = WaitPolicy(99); return c }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			if _, err := NewRuntime(m.mutate(base)); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	if _, err := NewRuntime(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Explicit endpoints fix the worker count: up to one per node is
	// accepted, more is an error.
	fabric := transport.NewFabric()
	three := base
	three.Size = 4
	three.Endpoints = []transport.Endpoint{fabric.NewEndpoint(), fabric.NewEndpoint(), fabric.NewEndpoint()}
	if rt, err := NewRuntime(three); err != nil {
		t.Fatalf("3 endpoints for 4 nodes rejected: %v", err)
	} else if rt.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", rt.Workers())
	}
	over := base
	over.Size = 2
	over.Endpoints = []transport.Endpoint{fabric.NewEndpoint(), fabric.NewEndpoint(), fabric.NewEndpoint()}
	if _, err := NewRuntime(over); err == nil {
		t.Fatal("3 endpoints for 2 nodes accepted")
	}
}

func TestRuntimeModeString(t *testing.T) {
	if ModeGoroutine.String() != "goroutine" || ModeHeap.String() != "heap" {
		t.Error("mode names wrong")
	}
	if RuntimeMode(42).String() == "" {
		t.Error("unknown mode produced empty string")
	}
}

func TestRuntimeStopBeforeStart(t *testing.T) {
	rt, err := NewRuntime(RuntimeConfig{
		Size:        4,
		Schema:      core.AverageSchema(),
		CycleLength: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Stop() // must not hang or panic
	rt.Stop() // idempotent
}

func TestRuntimeShardOfCoversAllNodes(t *testing.T) {
	for _, tc := range []struct{ size, workers int }{
		{8, 1}, {8, 3}, {10, 4}, {100, 7}, {64, 8},
	} {
		rt, err := NewRuntime(RuntimeConfig{
			Size:        tc.size,
			Schema:      core.AverageSchema(),
			CycleLength: time.Millisecond,
			Workers:     tc.workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, s := range rt.shards {
			for i := s.lo; i < s.hi; i++ {
				if got := rt.shardOf(i); got != s {
					t.Fatalf("size=%d workers=%d: shardOf(%d) = shard %d, want %d",
						tc.size, tc.workers, i, got.id, s.id)
				}
				covered++
			}
		}
		if covered != tc.size {
			t.Fatalf("size=%d workers=%d: shards cover %d nodes", tc.size, tc.workers, covered)
		}
		rt.Stop()
	}
}

func TestHeapClusterConvergesToAverage(t *testing.T) {
	const size = 24
	c, err := NewCluster(ClusterConfig{
		Size:         size,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i) },
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 200 * time.Millisecond,
		Mode:         ModeHeap,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Runtime() == nil {
		t.Fatal("heap cluster has no runtime")
	}
	c.Start(context.Background())
	defer c.Stop()
	v, converged, err := c.WaitConverged("avg", 1e-6, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !converged {
		t.Fatalf("variance %g after 5s, want ≤ 1e-6", v)
	}
	vals, err := c.Snapshot("avg")
	if err != nil {
		t.Fatal(err)
	}
	want := float64(size-1) / 2
	if got := stats.Mean(vals); math.Abs(got-want) > 0.05 {
		t.Fatalf("converged mean %g, want ≈ %g", got, want)
	}
	// The facade nodes must report through the runtime.
	n := c.Nodes()[7]
	if est, err := n.Estimate("avg"); err != nil || math.Abs(est-want) > 0.05 {
		t.Fatalf("facade Estimate = %g, %v", est, err)
	}
	if n.Addr() == "" {
		t.Fatal("facade Addr empty")
	}
	if s := n.Stats(); s.Initiated == 0 {
		t.Fatal("facade Stats shows no initiations")
	}
}

func TestHeapClusterSummarySchemaConverges(t *testing.T) {
	schema := core.SummarySchema()
	sizeIdx, err := schema.Index("size")
	if err != nil {
		t.Fatal(err)
	}
	const size = 16
	c, err := NewCluster(ClusterConfig{
		Size:         size,
		Schema:       schema,
		Value:        func(i int) float64 { return float64(i%4) + 1 },
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 200 * time.Millisecond,
		Mode:         ModeHeap,
		Workers:      3,                // exercise cross-shard exchanges
		BatchWindow:  time.Millisecond, // and timer-driven batch flushing
		Seed:         2,
		InitState: func(i int) func(uint64, float64) core.State {
			return func(_ uint64, value float64) core.State {
				st := schema.InitState(value)
				if i == 0 {
					st[sizeIdx] = 1 // node 0 leads the size instance
				}
				return st
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	if _, ok, _ := c.WaitConverged("size", 1e-10, 5*time.Second); !ok {
		t.Fatal("size field did not converge")
	}
	sum, err := core.DecodeSummary(schema, c.Nodes()[7].State())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Size-size) > 0.5 {
		t.Errorf("size estimate %g, want ≈ %d", sum.Size, size)
	}
	if sum.Min != 1 || sum.Max != 4 {
		t.Errorf("min/max = %g/%g, want 1/4", sum.Min, sum.Max)
	}
	if math.Abs(sum.Mean-2.5) > 0.05 {
		t.Errorf("mean = %g, want ≈ 2.5", sum.Mean)
	}
}

func TestHeapClusterUnderMessageLoss(t *testing.T) {
	fabric := transport.NewFabric(transport.WithDropProbability(0.2), transport.WithSeed(6))
	c, err := NewCluster(ClusterConfig{
		Size:         12,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i) },
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 20 * time.Millisecond,
		Fabric:       fabric,
		Mode:         ModeHeap,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	if v, ok, _ := c.WaitConverged("avg", 1e-4, 8*time.Second); !ok {
		t.Fatalf("lossy heap cluster stuck at variance %g", v)
	}
	if c.Runtime().Stats().Timeouts == 0 {
		t.Error("20% loss produced zero timeouts; loss path unexercised")
	}
}

func TestHeapEpochRestartAdaptsToNewValues(t *testing.T) {
	clock, err := epoch.NewClock(time.Now(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		Size:         8,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return 1 },
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 200 * time.Millisecond,
		Clock:        clock,
		Mode:         ModeHeap,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	for _, n := range c.Nodes() {
		n.SetValue(5)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		est, err := c.Nodes()[3].Estimate("avg")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-5) < 0.01 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("estimate %g never adapted to new value 5", est)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.Runtime().Stats().EpochSwitches == 0 {
		t.Fatal("no epoch switches recorded despite adaptation")
	}
	// Epoch identifiers spread epidemically; give node 0 a moment in
	// case the boundary was crossed just before the adaptation check.
	for c.Nodes()[0].Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("facade Epoch never advanced")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHeapClusterPushOnlyStillReducesVariance(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Size:        12,
		Schema:      core.AverageSchema(),
		Value:       func(i int) float64 { return float64(i) },
		CycleLength: 2 * time.Millisecond,
		PushOnly:    true,
		Mode:        ModeHeap,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	before, err := c.Variance("avg")
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		after, _ := c.Variance("avg")
		if after < before/10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("push-only variance stuck: %g → %g", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHeapRuntimesBootstrapAcrossProcesses covers the deployable
// multi-process shape: two runtimes ("processes") that know each other
// only by bare endpoint address (aggnode -peers host:port) must
// bootstrap — first-contact pushes to the base address are served by
// the shard's first node, whose reply From teaches the remote gossip
// sampler real sub-addresses — and converge on the combined average.
func TestHeapRuntimesBootstrapAcrossProcesses(t *testing.T) {
	fabric := transport.NewFabric(transport.WithSeed(99))
	const perRuntime = 8
	build := func(value float64, seed uint64) *Runtime {
		ep := fabric.NewEndpoint()
		peerBase := "mem-0"
		if ep.Addr() == "mem-0" {
			peerBase = "mem-1" // the other runtime's endpoint
		}
		rt, err := NewRuntime(RuntimeConfig{
			Size:         perRuntime,
			Schema:       core.AverageSchema(),
			Value:        func(int) float64 { return value },
			CycleLength:  2 * time.Millisecond,
			ReplyTimeout: 100 * time.Millisecond,
			Endpoints:    []transport.Endpoint{ep},
			Seed:         seed,
			Samplers: func(i int, self string, local []string) (membership.Sampler, error) {
				boot := []string{peerBase}
				if sib := local[(i+1)%len(local)]; sib != self {
					boot = append(boot, sib)
				}
				return membership.NewGossipSampler(self, 8, boot)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a := build(10, 1)
	b := build(20, 2)
	a.Start(context.Background())
	b.Start(context.Background())
	defer a.Stop()
	defer b.Stop()

	// Both populations must reach the cross-process average 15.
	deadline := time.Now().Add(10 * time.Second)
	for {
		va, _ := a.Snapshot("avg")
		vb, _ := b.Snapshot("avg")
		if math.Abs(stats.Mean(va)-15) < 0.5 && math.Abs(stats.Mean(vb)-15) < 0.5 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("runtimes never mixed: a=%g b=%g, want ≈ 15 each",
				stats.Mean(va), stats.Mean(vb))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTryStealRunsBehindShard pins the work-stealing mechanics without
// relying on scheduler timing: a runtime is built but not started, one
// shard's heap is stocked with events that are a full second overdue,
// and a sibling's trySteal must find it behind, take its round lock,
// fire those events and advance its published deadline. A shard that
// is on schedule must not be stolen from.
func TestTryStealRunsBehindShard(t *testing.T) {
	rt, err := NewRuntime(RuntimeConfig{
		Size:        8,
		Schema:      core.AverageSchema(),
		CycleLength: 10 * time.Millisecond,
		Workers:     2,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	victim, helper := rt.shards[0], rt.shards[1]

	// On schedule (next events at +Inf): nothing to steal.
	rt.epochStart = time.Now()
	victim.publishNextDue(math.Inf(1))
	helper.publishNextDue(math.Inf(1))
	if rt.trySteal(helper.id) {
		t.Fatal("stole a round from a shard that is on schedule")
	}

	// A second behind schedule: the helper must run the victim's round.
	rt.epochStart = time.Now().Add(-time.Second)
	victim.mu.Lock()
	for i := victim.lo; i < victim.hi; i++ {
		victim.heap.Push(sim.Event{At: 0, Node: int32(i), Kind: evWake})
	}
	victim.publishNextDue(0)
	victim.mu.Unlock()
	if !rt.trySteal(helper.id) {
		t.Fatal("idle worker did not steal a round from the behind shard")
	}
	if got := rt.Steals(); got != 1 {
		t.Fatalf("Steals() = %d after one stolen round, want 1", got)
	}
	if agg := rt.Stats(); agg.Initiated == 0 {
		t.Fatal("the stolen round fired no due wakes")
	}
	if due := victim.loadNextDue(); due == 0 {
		t.Fatal("the stolen round did not advance the victim's published deadline")
	}
}

// hubSampler drives a deliberately skewed workload: with probability
// 0.9 every push is aimed at one of the first hub sub-addresses (all
// owned by shard 0), otherwise at a uniform peer — the scalefree-hub
// load shape that makes one shard run permanently behind while its
// siblings idle.
type hubSampler struct {
	self string
	all  []string
	hubs int
}

var _ membership.Sampler = (*hubSampler)(nil)

func (h *hubSampler) Sample(rng *xrand.Rand) (string, bool) {
	pool := h.all
	if rng.Float64() < 0.9 {
		pool = h.all[:h.hubs]
	}
	for try := 0; try < 4; try++ {
		if a := pool[rng.Intn(len(pool))]; a != h.self {
			return a, true
		}
	}
	return "", false
}

func (h *hubSampler) Observe(string, []string, []uint32) {}
func (h *hubSampler) AppendDigest(addrs []string, ages []uint32, _ *xrand.Rand, _ int) ([]string, []uint32) {
	return addrs, ages
}
func (h *hubSampler) Tick()         {}
func (h *hubSampler) Forget(string) {}

// TestRuntimeSkewedLoadStealRace hammers the cross-shard path under
// hub skew: four parallel shard workers, 90% of all pushes aimed at
// shard 0's four hub nodes, saturating Δt — the regime work stealing
// exists for — while two observer goroutines spin on the lock-free
// Stats fold and the shard-locked ReduceField. The assertions are
// progress and mass conservation; under the race CI job's -race run
// this doubles as the data-race gate for round stealing, batcher
// handoff at shard boundaries and the atomic stats counters.
func TestRuntimeSkewedLoadStealRace(t *testing.T) {
	const size, workers = 64, 4
	rt, err := NewRuntime(RuntimeConfig{
		Size:         size,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i % 2) },
		CycleLength:  500 * time.Microsecond,
		ReplyTimeout: 100 * time.Millisecond,
		Workers:      workers,
		Seed:         99,
		Samplers: func(i int, self string, local []string) (membership.Sampler, error) {
			return &hubSampler{self: self, all: local, hubs: 4}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(context.Background())

	stopObs := make(chan struct{})
	var obs sync.WaitGroup
	for o := 0; o < 2; o++ {
		obs.Add(1)
		go func() {
			defer obs.Done()
			for {
				select {
				case <-stopObs:
					return
				default:
				}
				_ = rt.Stats()
				var run stats.Running
				_ = rt.ReduceField("avg", run.Add)
			}
		}()
	}
	time.Sleep(400 * time.Millisecond)
	close(stopObs)
	obs.Wait()
	rt.Stop()

	agg := rt.Stats()
	if agg.Initiated == 0 || agg.Served == 0 {
		t.Fatalf("no progress under skewed load: %+v", agg)
	}
	var run stats.Running
	if err := rt.ReduceField("avg", run.Add); err != nil {
		t.Fatal(err)
	}
	if mean := run.Mean(); math.Abs(mean-0.5) > 0.15 {
		t.Fatalf("mean drifted to %g under skewed load, want ≈ 0.5", mean)
	}
	t.Logf("skewed run: %d initiated, %d served, %d busy-nacked, %d rounds stolen",
		agg.Initiated, agg.Served, agg.BusyDropped, rt.Steals())
}

// sustainedResult summarizes one sustained-throughput harness run.
type sustainedResult struct {
	Stats             Stats
	Exchanges         uint64  // initiations inside the measured window
	PerSecond         float64 // sustained initiations per wall second
	Completion        float64 // replies/initiated over the whole run
	AllocsPerExchange float64 // heap mallocs per initiation, steady state
	Variance          float64 // final cross-node variance of "avg"
	Mean              float64 // final cross-node mean of "avg"
	RobustRejected    uint64  // exchange halves refused by the trim gate
}

// runSustained is the parameterized sustained-throughput harness behind
// TestHeapRuntimeSustains100k and BenchmarkRuntimeSustained: one process
// hosts size live heap-mode nodes on the in-memory fabric with a
// saturating Δt = 1 ms and runs until every node has initiated `cycles`
// exchanges on average. workers pins the shard/worker count (0 keeps
// the GOMAXPROCS default). The first two cycles' worth of exchanges are
// a warm-up (pools filling, batch queues growing to steady state); the
// rest is the measured window, over which steady-state heap mallocs per
// exchange are accounted with runtime.ReadMemStats. opts mutate the
// cluster config before construction (e.g. attaching a metrics
// registry for the overhead gate).
func runSustained(tb testing.TB, size, cycles, workers int, deadline time.Duration, opts ...func(*ClusterConfig)) sustainedResult {
	tb.Helper()
	return runSustainedWith(tb, size, cycles, workers, deadline, nil, opts...)
}

// runSustainedWith is runSustained plus a post-Start hook — the robust
// variant uses it to install adversaries and countermeasures on the
// live cluster before the measured window.
func runSustainedWith(tb testing.TB, size, cycles, workers int, deadline time.Duration, postStart func(*Cluster), opts ...func(*ClusterConfig)) sustainedResult {
	tb.Helper()
	cfg := ClusterConfig{
		Size:   size,
		Schema: core.AverageSchema(),
		// Values ±0/1: true average 0.5, initial variance 0.25.
		Value:        func(i int) float64 { return float64(i % 2) },
		CycleLength:  time.Millisecond, // saturating: workers run flat out
		ReplyTimeout: 300 * time.Millisecond,
		Mode:         ModeHeap,
		Workers:      workers,
		Seed:         42,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	if postStart != nil {
		postStart(c)
	}
	rt := c.Runtime()
	giveUp := time.Now().Add(deadline)
	// Stats() folds O(workers) atomic counters lock-free, so a tight
	// constant poll never stalls the workers it measures, regardless of
	// size.
	poll := 2 * time.Millisecond
	waitInitiated := func(target uint64) Stats {
		for {
			agg := rt.Stats()
			if agg.Initiated >= target {
				return agg
			}
			if time.Now().After(giveUp) {
				tb.Fatalf("only %d exchanges initiated (want ≥ %d) before deadline", agg.Initiated, target)
			}
			time.Sleep(poll)
		}
	}

	warm := waitInitiated(uint64(2 * size))
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	agg := waitInitiated(uint64(cycles * size))
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	window := time.Since(t0)

	if agg.Initiated == warm.Initiated {
		tb.Fatalf("degenerate measurement window: the run outpaced the %v poll; raise cycles (%d) for size %d", poll, cycles, size)
	}
	res := sustainedResult{
		Stats:      agg,
		Exchanges:  agg.Initiated - warm.Initiated,
		Completion: float64(agg.Replies) / float64(agg.Initiated),
	}
	res.PerSecond = float64(res.Exchanges) / window.Seconds()
	res.AllocsPerExchange = float64(m1.Mallocs-m0.Mallocs) / float64(res.Exchanges)

	var run stats.Running
	if err := c.ReduceField("avg", run.Add); err != nil {
		tb.Fatal(err)
	}
	res.Variance = run.Variance()
	res.Mean = run.Mean()
	res.RobustRejected = c.RobustRejected()
	return res
}

// assertSustained applies the harness's acceptance bounds: the variance
// must have fallen two orders of magnitude from the initial 0.25, the
// mean must hold at 0.5 (mass conservation), the run must complete at
// least minCompletion of initiated exchanges and the measured
// steady-state exchange path must be allocation-free — the ≤ 0.05
// bound leaves room only for the rare cross-shard pool spill and
// scheduler noise, two orders of magnitude below the pre-pool cost of
// several allocations per exchange.
//
// minCompletion is size-dependent: a saturated shard keeps up to
// eventBudget(n) nodes in flight at once, and a push landing on an
// in-flight peer is busy-nacked, so the nack rate tracks the in-flight
// fraction — ≈ 1024/n for large shards. At n ≥ 10⁵ that is ≤ 1% and
// the historical 98.9% bar applies; smaller smoke runs use a floor
// matching their geometry.
func assertSustained(tb testing.TB, res sustainedResult, minCompletion float64) {
	tb.Helper()
	if res.Variance > 0.25/100 {
		tb.Fatalf("variance %g after the sustained run, want ≤ %g", res.Variance, 0.25/100)
	}
	if math.Abs(res.Mean-0.5) > 0.05 {
		tb.Fatalf("mean drifted to %g, want ≈ 0.5", res.Mean)
	}
	if res.Completion < minCompletion {
		tb.Fatalf("completion %.4f, want ≥ %.4f (stats %+v)", res.Completion, minCompletion, res.Stats)
	}
	if res.AllocsPerExchange > 0.05 {
		tb.Fatalf("steady-state exchange path allocates %.4f objects/exchange, want ≈ 0 (≤ 0.05)", res.AllocsPerExchange)
	}
}

// TestHeapRuntimeSustains100k is the scale acceptance test: one process
// hosts N = 10⁵ live nodes on the in-memory fabric and completes a full
// 20-cycle average run (every node initiates ≥ 20 exchanges) while
// driving the variance down two orders of magnitude, completing ≥
// 98.9% of exchanges with an allocation-free steady state. The
// goroutine runtime cannot even construct at this size in comparable
// memory; the heap runtime runs it with a handful of workers. The
// 10⁶-node variant of the same harness runs in -bench mode
// (BenchmarkRuntimeSustained).
func TestHeapRuntimeSustains100k(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-node scale run; skipped in -short mode")
	}
	res := runSustained(t, 100_000, 20, 0, 3*time.Minute)
	assertSustained(t, res, 0.989)
	t.Logf("100k-node run: %.0f exchanges/s, completion %.4f, %.4f allocs/exchange, stats %+v",
		res.PerSecond, res.Completion, res.AllocsPerExchange, res.Stats)
}

// TestHeapRuntimeSteadyStateAllocs pins the zero-allocation claim on
// every regular (non-short) test run at a size small enough for the
// slowest CI runner: after warm-up, the heap runtime's exchange path
// over the fabric transport — push construction, batch coalescing and
// framing, delivery, merge, reply, merge-back — must run out of
// recycled buffers.
func TestHeapRuntimeSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second saturated run; skipped in -short mode")
	}
	// eventBudget(4096) = 512 keeps 12.5% of the shard in flight, so
	// busy-nacks cap completion well below the large-N bar; 0.75 guards
	// against collapse without over-fitting the geometry. 100 cycles ≈
	// half a second of saturated running — enough wall time for a
	// meaningful steady-state window at this size.
	res := runSustained(t, 4096, 100, 0, time.Minute)
	assertSustained(t, res, 0.75)
	t.Logf("4096-node run: %.0f exchanges/s, completion %.4f, %.4f allocs/exchange",
		res.PerSecond, res.Completion, res.AllocsPerExchange)
}
