// Package engine is the deployable, asynchronous realization of the
// Figure 1 protocol: every node runs an active goroutine that wakes up
// once per cycle (constant or exponentially distributed waiting time,
// §1.1), samples a neighbor from its membership layer and performs a
// push-pull exchange over a transport; a dispatcher goroutine serves the
// passive side. Epoch restarts (§4) make the aggregates adaptive.
//
// The paper's analysis assumes zero-latency, perfectly synchronized
// exchanges; the engine relaxes both and is validated empirically against
// the same convergence targets in its tests.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/membership"
	"repro/internal/robust"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xrand"
)

// WaitPolicy selects how a node draws its inter-exchange waiting time.
type WaitPolicy int

// Waiting-time policies from §1.1 and §3.3: constant Δt makes the node
// initiate exactly once per cycle (GETPAIR_SEQ dynamics), exponential
// waiting with mean Δt approximates GETPAIR_RAND.
const (
	ConstantWait WaitPolicy = iota + 1
	ExponentialWait
)

// String returns the policy name.
func (p WaitPolicy) String() string {
	switch p {
	case ConstantWait:
		return "constant"
	case ExponentialWait:
		return "exponential"
	default:
		return fmt.Sprintf("waitpolicy(%d)", int(p))
	}
}

// Config assembles a node. Schema, Endpoint and Sampler are required.
type Config struct {
	// Schema defines the gossiped fields and their merges.
	Schema *core.Schema
	// Endpoint is the node's transport attachment. The node takes
	// ownership: Stop closes it.
	Endpoint transport.Endpoint
	// Sampler supplies random neighbors and absorbs piggybacked
	// membership gossip.
	Sampler membership.Sampler
	// Value is the node's initial local attribute a_i.
	Value float64
	// CycleLength is Δt, the (mean) waiting time between initiated
	// exchanges. Must be positive.
	CycleLength time.Duration
	// Wait selects the waiting-time distribution (default ConstantWait).
	Wait WaitPolicy
	// ReplyTimeout bounds how long the active side waits for the pull
	// reply; defaults to CycleLength/2. A timed-out exchange is simply
	// skipped — the loss tolerance of E6.
	ReplyTimeout time.Duration
	// Clock, when non-nil, drives epoch restarts: at every epoch
	// boundary the node reinitializes its state from its local value.
	// Nil runs one endless epoch.
	Clock *epoch.Clock
	// InitState overrides state initialization at (re)start; nil uses
	// Schema.InitState(value). Size-estimation leaders use this to seed
	// their indicator field with 1 for epochs they lead.
	InitState func(epochID uint64, value float64) core.State
	// PushOnly disables the pull half of the exchange (ablation:
	// passive peers merge, the initiator never learns anything back).
	PushOnly bool
	// GossipFanout is how many membership addresses to piggyback per
	// message (default 3; negative disables).
	GossipFanout int
	// Seed makes the node's randomness reproducible.
	Seed uint64
}

// withDefaults validates and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Schema == nil {
		return c, fmt.Errorf("engine: config needs a Schema")
	}
	if c.Endpoint == nil {
		return c, fmt.Errorf("engine: config needs an Endpoint")
	}
	if c.Sampler == nil {
		return c, fmt.Errorf("engine: config needs a Sampler")
	}
	if c.CycleLength <= 0 {
		return c, fmt.Errorf("engine: CycleLength must be positive, got %v", c.CycleLength)
	}
	if c.Wait == 0 {
		c.Wait = ConstantWait
	}
	if c.Wait != ConstantWait && c.Wait != ExponentialWait {
		return c, fmt.Errorf("engine: unknown wait policy %v", c.Wait)
	}
	if c.ReplyTimeout <= 0 {
		c.ReplyTimeout = c.CycleLength / 2
	}
	if c.GossipFanout == 0 {
		c.GossipFanout = 3
	}
	if c.GossipFanout < 0 {
		c.GossipFanout = 0
	}
	return c, nil
}

// Stats is a snapshot of a node's protocol counters.
type Stats struct {
	Initiated     uint64 // exchanges started by the active loop
	Replies       uint64 // pull replies received and merged
	Timeouts      uint64 // exchanges abandoned waiting for the reply
	LateReplies   uint64 // post-timeout replies absorbed to conserve mass
	Served        uint64 // pushes answered on the passive side
	EpochSwitches uint64 // restarts (local timer or observed id)
	StaleDropped  uint64 // messages discarded for carrying an old epoch
	SendErrors    uint64 // transport send failures
	BusyDropped   uint64 // pushes declined while an own exchange was in flight
	PeerBusy      uint64 // own pushes nacked by a busy peer
}

// Node is one protocol participant. Create with NewNode, then Start; Stop
// tears down both goroutines and the endpoint.
//
// A Node handed out by a heap-mode Runtime (or a ModeHeap Cluster) is a
// facade onto the runtime's shared worker pool: the read/write API
// (State, Estimate, Epoch, Stats, SetValue, Addr) addresses that one
// hosted node, while Start and Stop act on the whole runtime.
type Node struct {
	// hrt/hidx route a heap-runtime facade; nil for a real node.
	hrt  *Runtime
	hidx int

	cfg      Config
	addr     string
	pool     *fieldsPool // Fields buffer recycler (shared tier only)
	observes bool        // sampler wants Observe feedback (non-directory)

	mu      sync.Mutex
	state   core.State
	value   float64
	tracker epoch.Tracker
	rngAct  *xrand.Rand // active-loop RNG
	rngDisp *xrand.Rand // dispatcher RNG (digests on replies)

	// replyCh carries the in-flight exchange's pull reply from the
	// dispatcher to the active loop. One persistent one-slot channel
	// serves every exchange: pendingSeq gates which replies are current,
	// and the active loop drains any stale leftover before arming the
	// next exchange — no per-exchange channel or pending-map allocation.
	replyCh    chan transport.Message
	pendingSeq atomic.Uint64
	seq        atomic.Uint64

	replyTimer *time.Timer // reply-deadline timer, reused across exchanges (active loop only)

	// Late-reply absorption (all guarded by mu): when an exchange times
	// out, the passive peer has already committed its half of the merge,
	// so dropping the reply loses (S_A−S_B)/2 of total mass. stateVer
	// counts state mutations; a reply arriving after its deadline is
	// still merged iff the state is untouched since the push snapshot
	// (stateVer == lateVer) and no new exchange is in flight.
	stateVer uint64
	lateSeq  uint64
	lateVer  uint64

	initiated, replies, timeouts atomic.Uint64
	lateReplies                  atomic.Uint64
	served, epochSwitches        atomic.Uint64
	staleDropped, sendErrors     atomic.Uint64
	busyDropped, peerBusy        atomic.Uint64

	// busy marks an exchange in flight on the active side. While set,
	// incoming pushes are declined (no reply), so the node's state cannot
	// change between sending its push and merging the pull reply — the
	// serialization that keeps the push-pull step atomic and the total
	// mass conserved (§3.2).
	busy atomic.Bool

	// failed marks a scenario-injected crash: the node stops initiating
	// and drops all inbound traffic until revived. Peers observe only
	// silence (their exchanges time out), like a real process crash.
	failed atomic.Bool

	// Adversary and robust-merge state (guarded by mu). adv is 0 for an
	// honest node, else 1+behavior; an adversary reports its pinned
	// state and never adopts a merge. robustCfg gates inbound merges
	// when robustOn; trim is the node's running acceptance band.
	// advGossip/advAges are the eclipse flood digest, shared read-only
	// across the cluster's adversaries.
	adv       uint8
	trim      robust.TrimState
	robustCfg robust.Policy
	robustOn  bool
	advGossip []string
	advAges   []uint32

	robustRejected atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
}

// NewNode builds a node from the configuration; the protocol does not run
// until Start is called.
func NewNode(cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	master := xrand.New(cfg.Seed)
	_, isDir := cfg.Sampler.(*membership.Directory)
	n := &Node{
		cfg:      cfg,
		addr:     cfg.Endpoint.Addr(),
		pool:     newFieldsPool(cfg.Schema.Len()),
		observes: !isDir,
		value:    cfg.Value,
		rngAct:   master.Split(),
		rngDisp:  master.Split(),
		replyCh:  make(chan transport.Message, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	startEpoch := uint64(0)
	if cfg.Clock != nil {
		startEpoch = cfg.Clock.Current(time.Now())
	}
	n.tracker = epoch.NewTracker(startEpoch)
	n.state = n.initState(startEpoch, cfg.Value)
	return n, nil
}

// initState builds the node's state for an epoch.
func (n *Node) initState(epochID uint64, value float64) core.State {
	if n.cfg.InitState != nil {
		return n.cfg.InitState(epochID, value)
	}
	return n.cfg.Schema.InitState(value)
}

// Addr returns the node's transport address.
func (n *Node) Addr() string {
	if n.hrt != nil {
		return n.hrt.Addr(n.hidx)
	}
	return n.addr
}

// Start launches the active loop and the dispatcher. Calling Start more
// than once is a no-op. On a heap-runtime facade it starts the whole
// runtime (idempotently, without context — use Runtime.Start or the
// repro.Open front door for context-scoped lifetimes).
func (n *Node) Start() {
	if n.hrt != nil {
		n.hrt.Start(context.Background())
		return
	}
	if n.started.Swap(true) {
		return
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); n.activeLoop() }()
	go func() { defer wg.Done(); n.dispatch() }()
	go func() { wg.Wait(); close(n.done) }()
}

// signalStop begins shutdown — stop channel closed, endpoint closed —
// without waiting for the goroutines to exit. Cluster.Stop signals
// every node before waiting on any: sequential signal-and-wait is
// O(nodes × scheduler latency) when thousands of sibling goroutines
// are runnable, which turns teardown of a 10⁴-node cluster into
// minutes on a loaded host.
func (n *Node) signalStop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		_ = n.cfg.Endpoint.Close() // unblocks the dispatcher
	})
}

// Stop signals both goroutines, closes the endpoint and waits for
// shutdown. It is idempotent and safe to call before Start. On a
// heap-runtime facade it stops the whole runtime.
func (n *Node) Stop() {
	if n.hrt != nil {
		n.hrt.Stop()
		return
	}
	n.signalStop()
	if n.started.Load() {
		<-n.done
	}
}

// SetValue updates the node's local attribute a_i. With epoch restarts
// enabled the new value enters the aggregate at the next epoch (§4's
// adaptivity); without epochs it only affects future restarts.
func (n *Node) SetValue(v float64) {
	if n.hrt != nil {
		n.hrt.SetValue(n.hidx, v)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.value = v
}

// InjectValue updates the node's local attribute to v and folds the
// difference into its current approximation of field idx, so the new
// value enters the aggregate immediately instead of waiting for an
// epoch restart — the live feed behind System.SetValue.
//
// The delta apply is only mass-conserving while no own exchange is in
// flight: mutating state between the push snapshot and the reply merge
// loses δ/2 of the injected mass (§3.2). InjectValue waits (bounded)
// for the busy flag to clear before applying; the stateVer bump also
// invalidates any armed late-reply absorption, which no longer
// commutes with the injection.
func (n *Node) InjectValue(idx int, v float64) {
	if n.hrt != nil {
		n.hrt.InjectValue(n.hidx, idx, v)
		return
	}
	deadline := time.Now().Add(injectWait)
	for {
		n.mu.Lock()
		if !n.busy.Load() || n.failed.Load() || !time.Now().Before(deadline) {
			delta := v - n.value
			n.value = v
			if !n.failed.Load() {
				n.state[idx] += delta
				n.stateVer++
			}
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		time.Sleep(50 * time.Microsecond)
	}
}

// Fail silently crashes the node until Revive: it stops initiating and
// drops all inbound traffic, so peers see only missed reply deadlines.
// Reports whether the call changed the node's status.
func (n *Node) Fail() bool {
	if n.hrt != nil {
		return n.hrt.FailNode(n.hidx)
	}
	if n.failed.Swap(true) {
		return false
	}
	n.mu.Lock()
	n.lateSeq = 0 // no late absorption may fire into a dead node
	n.mu.Unlock()
	return true
}

// Revive brings a failed node back as a fresh joiner: its state is
// reinitialized from its current local value (stale pre-crash mass is
// discarded). Reports whether the call changed the node's status.
func (n *Node) Revive() bool {
	if n.hrt != nil {
		return n.hrt.ReviveNode(n.hidx)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.failed.Load() {
		return false
	}
	n.state = n.initState(n.tracker.Current(), n.value)
	n.stateVer++
	n.failed.Store(false)
	return true
}

// setAdversary turns the node into a Byzantine adversary (cluster
// internal; semantics in DESIGN.md "Adversary model"). Extreme-value
// reporters pin their value to magnitude, colluding and eclipse
// reporters to target; selective droppers keep their honest draw and
// merely stop adopting merges. gossip/ages is the shared eclipse flood
// digest (nil for other behaviors).
func (n *Node) setAdversary(behavior sim.AdversaryBehavior, magnitude, target float64, gossip []string, ages []uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.adv = 1 + uint8(behavior)
	switch behavior {
	case sim.AdvExtreme:
		n.value = magnitude
	case sim.AdvColluding, sim.AdvEclipse:
		n.value = target
	}
	if behavior != sim.AdvSelectiveDrop {
		n.state = n.initState(n.tracker.Current(), n.value)
		n.stateVer++
	}
	n.advGossip, n.advAges = gossip, ages
}

// clearAdversary restores honest behavior. The pinned value sticks (the
// node rejoins the average as whatever it last reported), mirroring the
// kernel's SetAdversaries(nil) semantics.
func (n *Node) clearAdversary() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.adv = 0
	n.advGossip, n.advAges = nil, nil
}

// setRobust installs the robust-merge policy with a pre-seeded trim
// acceptance band (cluster internal; the cluster seeds from the honest
// population's spread).
func (n *Node) setRobust(p robust.Policy, seed robust.TrimState) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.robustCfg = p
	n.robustOn = p.Enabled()
	n.trim = seed
}

// isAdversary reports whether the node is configured as an adversary.
func (n *Node) isAdversary() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.adv != 0
}

// Failed reports whether the node is currently failed.
func (n *Node) Failed() bool {
	if n.hrt != nil {
		s := n.hrt.shardOf(n.hidx)
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.nodes[n.hidx-s.lo].failed
	}
	return n.failed.Load()
}

// Value returns the node's current local attribute a_i.
func (n *Node) Value() float64 {
	if n.hrt != nil {
		s := n.hrt.shardOf(n.hidx)
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.nodes[n.hidx-s.lo].value
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.value
}

// State returns a copy of the node's current approximation vector.
func (n *Node) State() core.State {
	if n.hrt != nil {
		return n.hrt.NodeState(n.hidx)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(core.State, len(n.state))
	copy(out, n.state)
	return out
}

// fieldAt returns the node's current approximation of field idx
// without copying the state vector (the cluster's ReduceField hot
// path). Only valid on real goroutine-mode nodes.
func (n *Node) fieldAt(idx int) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state[idx]
}

// Estimate returns the node's current approximation of the named field.
func (n *Node) Estimate(field string) (float64, error) {
	if n.hrt != nil {
		idx, err := n.hrt.schema.Index(field)
		if err != nil {
			return 0, err
		}
		return n.hrt.NodeState(n.hidx)[idx], nil
	}
	idx, err := n.cfg.Schema.Index(field)
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state[idx], nil
}

// Epoch returns the node's current epoch identifier.
func (n *Node) Epoch() uint64 {
	if n.hrt != nil {
		return n.hrt.NodeEpoch(n.hidx)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tracker.Current()
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	if n.hrt != nil {
		return n.hrt.NodeStats(n.hidx)
	}
	return Stats{
		Initiated:     n.initiated.Load(),
		Replies:       n.replies.Load(),
		Timeouts:      n.timeouts.Load(),
		LateReplies:   n.lateReplies.Load(),
		Served:        n.served.Load(),
		EpochSwitches: n.epochSwitches.Load(),
		StaleDropped:  n.staleDropped.Load(),
		SendErrors:    n.sendErrors.Load(),
		BusyDropped:   n.busyDropped.Load(),
		PeerBusy:      n.peerBusy.Load(),
	}
}

// waitDuration draws one inter-exchange waiting time.
func (n *Node) waitDuration() time.Duration {
	if n.cfg.Wait == ExponentialWait {
		return time.Duration(n.rngAct.ExpFloat64() * float64(n.cfg.CycleLength))
	}
	return n.cfg.CycleLength
}

// activeLoop is the protocol's active thread (Figure 1, top half).
func (n *Node) activeLoop() {
	// Random initial phase in [0, Δt): nodes are autonomous (§1.1), and
	// desynchronized ticks avoid lockstep collisions where every push
	// finds its peer busy.
	timer := time.NewTimer(time.Duration(n.rngAct.Float64() * float64(n.cfg.CycleLength)))
	defer timer.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-timer.C:
		}
		if n.failed.Load() {
			// Crashed: keep the cadence ticking so a revive resumes
			// seamlessly, but skip epochs, view aging and initiation.
			timer.Reset(n.waitDuration())
			continue
		}
		n.checkLocalEpoch()
		if n.observes {
			// One gossip round has passed: age the membership view here,
			// not per message, so view lifetimes are measured in cycles
			// regardless of traffic volume.
			n.cfg.Sampler.Tick()
		}
		n.initiateExchange()
		timer.Reset(n.waitDuration())
	}
}

// checkLocalEpoch performs the node's own scheduled restart when the
// epoch clock has moved past the node's current epoch.
func (n *Node) checkLocalEpoch() {
	if n.cfg.Clock == nil {
		return
	}
	now := n.cfg.Clock.Current(time.Now())
	n.mu.Lock()
	if n.tracker.Observe(now) {
		n.state = n.initState(n.tracker.Current(), n.value)
		n.stateVer++
		n.epochSwitches.Add(1)
	}
	n.mu.Unlock()
}

// initiateExchange performs one push(-pull) exchange with a random peer.
// The push's Fields buffer is drawn from the node's pool; ownership
// passes to the transport with the Send, and the inbound reply's buffer
// is recycled after the merge.
func (n *Node) initiateExchange() {
	peer, ok := n.cfg.Sampler.Sample(n.rngAct)
	if !ok || peer == n.addr {
		return
	}
	if !n.cfg.PushOnly {
		// Retire any reply a timed-out exchange left in the slot (its
		// pendingSeq load raced the timeout's reset). Done before busy is
		// set so a conserving late merge is still admissible.
		select {
		case stale := <-n.replyCh:
			n.tryAbsorbLate(stale)
		default:
		}
	}
	fields := n.pool.get()
	n.mu.Lock()
	if !n.cfg.PushOnly {
		// Set under the lock so the snapshot below and the busy flag are
		// atomic with respect to servePush's check.
		n.busy.Store(true)
		defer n.busy.Store(false)
	}
	ep := n.tracker.Current()
	copy(fields, n.state)
	adv, advGossip, advAges := n.adv, n.advGossip, n.advAges
	n.mu.Unlock()

	msg := transport.Message{
		Kind:   transport.KindPush,
		Epoch:  ep,
		Seq:    n.seq.Add(1),
		Fields: fields,
	}
	if adv == 1+uint8(sim.AdvEclipse) {
		// Eclipse push: flood the victim's view with adversary addresses
		// at age 0 (the shared digest is immutable, so the
		// receiver-must-not-retain contract is moot).
		msg.Gossip, msg.GossipAges = advGossip, advAges
	} else if n.observes && n.cfg.GossipFanout > 0 {
		// The digest slices must be owned by the message: transports and
		// batchers retain messages by reference, so sender-side scratch
		// reuse is not possible here (see DESIGN.md "Membership").
		msg.Gossip, msg.GossipAges = n.cfg.Sampler.AppendDigest(nil, nil, n.rngAct, n.cfg.GossipFanout)
	}

	if !n.cfg.PushOnly {
		// Publish the new exchange's sequence number — from here on
		// routeReply admits only this exchange's reply.
		n.mu.Lock()
		n.lateSeq = 0 // a new exchange supersedes any absorbable late reply
		n.mu.Unlock()
		n.pendingSeq.Store(msg.Seq)
		defer n.pendingSeq.Store(0)
	}

	n.initiated.Add(1)
	if err := n.cfg.Endpoint.Send(peer, msg); err != nil {
		n.sendErrors.Add(1)
		n.cfg.Sampler.Forget(peer)
		return
	}
	if n.cfg.PushOnly {
		return
	}

	if n.replyTimer == nil {
		n.replyTimer = time.NewTimer(n.cfg.ReplyTimeout)
	} else {
		n.replyTimer.Reset(n.cfg.ReplyTimeout)
	}
	defer n.replyTimer.Stop()
	for {
		select {
		case reply := <-n.replyCh:
			if reply.Seq != msg.Seq {
				// A previous exchange's reply slipped past routeReply's
				// gate (its pendingSeq load raced our re-arming) and was
				// deposited after the drain above. Absorbing it would
				// merge the wrong exchange; discard and keep waiting.
				n.pool.put(reply.Fields)
				continue
			}
			if reply.Kind == transport.KindNack {
				n.peerBusy.Add(1)
				n.pool.put(reply.Fields)
				return // peer declined; abort this exchange cleanly
			}
			n.absorb(reply)
			n.replies.Add(1)
			return
		case <-n.replyTimer.C:
			n.timeouts.Add(1)
			if n.observes {
				// Treat the missed deadline as a failure signal: drop the
				// peer from the view. A live-but-slow peer re-enters the
				// moment its next message is observed.
				n.cfg.Sampler.Forget(peer)
			}
			// The peer may have committed its half of the merge and the
			// reply may merely be late. Arm absorption: routeReply will
			// still merge it as long as our state hasn't moved since the
			// push snapshot (busy blocked all merges, so stateVer is
			// still the snapshot's version here).
			n.mu.Lock()
			n.lateSeq, n.lateVer = msg.Seq, n.stateVer
			n.mu.Unlock()
			return
		case <-n.stop:
			return
		}
	}
}

// absorb merges a reply (the passive peer's pre-merge state) into the
// node's state, honoring epoch tags, and recycles the reply's buffer.
func (n *Node) absorb(m transport.Message) {
	defer n.pool.put(m.Fields)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.adv != 0 {
		return // adversaries never adopt merges
	}
	if n.tracker.Observe(m.Epoch) {
		n.state = n.initState(n.tracker.Current(), n.value)
		n.stateVer++
		n.epochSwitches.Add(1)
		// The reply belongs to the new epoch we just joined; merge it.
	} else if !n.tracker.InSync(m.Epoch) {
		n.staleDropped.Add(1)
		return
	}
	if len(m.Fields) != len(n.state) {
		return // schema mismatch; drop defensively
	}
	if n.robustOn {
		rep := n.robustCfg.ClampValue(m.Fields[0])
		m.Fields[0] = rep
		if n.robustCfg.Trim && !n.trim.Admit(rep-n.state[0], n.robustCfg.TrimK) {
			// Active-side reject: the responder already committed its
			// half, so we can only drop our own (§3.2 asymmetry).
			n.robustRejected.Add(1)
			return
		}
	}
	n.cfg.Schema.MergeInto(n.state, core.State(m.Fields))
	n.stateVer++
}

// dispatch is the protocol's passive thread: it serves pushes and routes
// replies until the endpoint closes.
func (n *Node) dispatch() {
	for m := range n.cfg.Endpoint.Inbox() {
		if n.failed.Load() {
			// A crashed node neither serves nor absorbs: the sender's
			// exchange times out, as with a real process crash.
			n.pool.put(m.Fields)
			continue
		}
		switch m.Kind {
		case transport.KindPush:
			n.servePush(m)
		case transport.KindReply, transport.KindNack:
			n.routeReply(m)
		}
	}
}

// observe feeds a message's sender and piggybacked gossip to the
// sampler. Skipped entirely for directory samplers (global knowledge).
func (n *Node) observe(m *transport.Message) {
	if !n.observes || m.From == "" {
		return
	}
	n.cfg.Sampler.Observe(m.From, m.Gossip, m.GossipAges)
}

// servePush implements the passive half (Figure 1, bottom): reply with
// the pre-merge state, then adopt the merge. The node owns m.Fields
// (receiver-owns rule): the happy path rewrites it in place into the
// reply payload, every other path recycles it.
func (n *Node) servePush(m transport.Message) {
	n.observe(&m)
	n.mu.Lock()
	if n.busy.Load() {
		// An own exchange is in flight; merging now would change the
		// state between our push and its reply and break the atomicity
		// of the elementary step. Decline with a nack so the initiator
		// aborts immediately rather than burning its reply timeout.
		ep := n.tracker.Current()
		n.mu.Unlock()
		n.busyDropped.Add(1)
		n.pool.put(m.Fields)
		if !n.cfg.PushOnly {
			nack := transport.Message{Kind: transport.KindNack, Epoch: ep, Seq: m.Seq}
			if err := n.cfg.Endpoint.Send(m.From, nack); err != nil {
				n.sendErrors.Add(1)
			}
		}
		return
	}
	if n.tracker.Observe(m.Epoch) {
		n.state = n.initState(n.tracker.Current(), n.value)
		n.stateVer++
		n.epochSwitches.Add(1)
	} else if !n.tracker.InSync(m.Epoch) {
		n.mu.Unlock()
		n.staleDropped.Add(1)
		n.pool.put(m.Fields)
		return
	}
	if len(m.Fields) != len(n.state) {
		n.mu.Unlock()
		n.pool.put(m.Fields)
		return
	}
	if n.adv != 0 {
		// Byzantine responder: reply with the pinned state, never adopt
		// the merge (the ack-then-discard of a selective dropper; the
		// other behaviors additionally pin the reported value).
		if n.cfg.PushOnly {
			n.mu.Unlock()
			n.served.Add(1)
			n.pool.put(m.Fields)
			return
		}
		copy(m.Fields, n.state)
		ep := n.tracker.Current()
		eclipse := n.adv == 1+uint8(sim.AdvEclipse)
		advGossip, advAges := n.advGossip, n.advAges
		n.mu.Unlock()
		n.served.Add(1)
		reply := transport.Message{
			Kind:   transport.KindReply,
			Epoch:  ep,
			Seq:    m.Seq,
			Fields: m.Fields,
		}
		if eclipse {
			reply.Gossip, reply.GossipAges = advGossip, advAges
		}
		if err := n.cfg.Endpoint.Send(m.From, reply); err != nil {
			n.sendErrors.Add(1)
		}
		return
	}
	if n.robustOn {
		rep := n.robustCfg.ClampValue(m.Fields[0])
		m.Fields[0] = rep
		if n.robustCfg.Trim && !n.trim.Admit(rep-n.state[0], n.robustCfg.TrimK) {
			// Passive-side reject nacks the initiator so neither side
			// merges — the exchange never happened and mass is conserved.
			ep := n.tracker.Current()
			n.mu.Unlock()
			n.robustRejected.Add(1)
			n.pool.put(m.Fields)
			if !n.cfg.PushOnly {
				nack := transport.Message{Kind: transport.KindNack, Epoch: ep, Seq: m.Seq}
				if err := n.cfg.Endpoint.Send(m.From, nack); err != nil {
					n.sendErrors.Add(1)
				}
			}
			return
		}
	}
	if n.cfg.PushOnly {
		n.cfg.Schema.MergeInto(n.state, core.State(m.Fields))
		n.stateVer++
		n.mu.Unlock()
		n.served.Add(1)
		n.pool.put(m.Fields)
		return
	}
	// One pass, zero copies: the state adopts the merge and the inbound
	// push buffer becomes the pre-merge reply payload.
	n.cfg.Schema.MergeExchange(n.state, core.State(m.Fields))
	n.stateVer++
	ep := n.tracker.Current()
	n.mu.Unlock()
	n.served.Add(1)

	reply := transport.Message{
		Kind:   transport.KindReply,
		Epoch:  ep,
		Seq:    m.Seq,
		Fields: m.Fields,
	}
	if n.observes && n.cfg.GossipFanout > 0 {
		reply.Gossip, reply.GossipAges = n.cfg.Sampler.AppendDigest(nil, nil, n.rngDisp, n.cfg.GossipFanout)
	}
	if err := n.cfg.Endpoint.Send(m.From, reply); err != nil {
		n.sendErrors.Add(1)
	}
}

// routeReply hands a reply to the waiting exchange, if still current;
// replies whose exchange already timed out go through late absorption,
// and everything else is retired into the pool.
func (n *Node) routeReply(m transport.Message) {
	n.observe(&m)
	if m.Seq == 0 || m.Seq != n.pendingSeq.Load() {
		n.tryAbsorbLate(m) // exchange already timed out (seq 0 is never in flight)
		return
	}
	select {
	case n.replyCh <- m:
	default:
		n.pool.put(m.Fields)
	}
}

// tryAbsorbLate merges a pull reply that arrived after its exchange's
// deadline. The passive peer committed its half of the merge when it
// served the push, so dropping the reply would lose (S_A−S_B)/2 of the
// total mass (§3.2) — the root cause of the converged-mean glitches the
// gossip-membership integration test used to tolerate. The merge is
// only admissible while it still commutes with the abandoned exchange:
// our state must be untouched since the push snapshot (stateVer ==
// lateVer; busy blocked merges during the wait) and no new exchange may
// be in flight (busy false, lateSeq not superseded).
func (n *Node) tryAbsorbLate(m transport.Message) {
	if m.Kind != transport.KindReply || m.Seq == 0 {
		n.pool.put(m.Fields)
		return
	}
	n.mu.Lock()
	if n.adv != 0 || m.Seq != n.lateSeq || n.stateVer != n.lateVer || n.busy.Load() {
		n.mu.Unlock()
		n.pool.put(m.Fields)
		return
	}
	n.lateSeq = 0
	if n.tracker.Observe(m.Epoch) {
		n.state = n.initState(n.tracker.Current(), n.value)
		n.stateVer++
		n.epochSwitches.Add(1)
	} else if !n.tracker.InSync(m.Epoch) {
		n.mu.Unlock()
		n.staleDropped.Add(1)
		n.pool.put(m.Fields)
		return
	}
	if len(m.Fields) != len(n.state) {
		n.mu.Unlock()
		n.pool.put(m.Fields)
		return
	}
	if n.robustOn {
		rep := n.robustCfg.ClampValue(m.Fields[0])
		m.Fields[0] = rep
		if n.robustCfg.Trim && !n.trim.Admit(rep-n.state[0], n.robustCfg.TrimK) {
			n.robustRejected.Add(1)
			n.mu.Unlock()
			n.pool.put(m.Fields)
			return
		}
	}
	n.cfg.Schema.MergeInto(n.state, core.State(m.Fields))
	n.stateVer++
	n.mu.Unlock()
	n.lateReplies.Add(1)
	n.pool.put(m.Fields)
}
