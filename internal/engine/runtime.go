package engine

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/robust"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/xrand"
)

// RuntimeMode selects how a cluster's nodes are scheduled.
type RuntimeMode uint8

const (
	// ModeGoroutine is the legacy runtime: one active goroutine and
	// one dispatcher goroutine per node. Simple and maximally
	// asynchronous, but two goroutines, a timer and a channel-backed
	// inbox per node stop scaling around 10⁴ nodes per process. It
	// remains the zero value at this layer for compatibility; the
	// public repro.Open front door defaults to ModeHeap.
	ModeGoroutine RuntimeMode = iota
	// ModeHeap multiplexes every local node onto a small worker pool:
	// each worker owns a contiguous shard of nodes, drives their
	// exchange timers from a per-shard event min-heap (the kernel's
	// scheduling model, sim.EventHeap) and coalesces same-destination
	// messages through a transport.Batcher. One endpoint per worker —
	// nodes are addressed with "endpoint#index" sub-addresses — so a
	// single process sustains 10⁵–10⁶ nodes, and the workers run
	// genuinely in parallel: one goroutine per shard, a round-granular
	// lock per shard, and work stealing between shards (see DESIGN.md,
	// "Concurrency model & shard ownership").
	ModeHeap
)

// String returns the mode name.
func (m RuntimeMode) String() string {
	switch m {
	case ModeGoroutine:
		return "goroutine"
	case ModeHeap:
		return "heap"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Event kinds scheduled on a shard's heap.
const (
	evWake    uint8 = iota // a node's next exchange initiation
	evTimeout              // the reply deadline of an in-flight exchange
)

// eventBudget returns how many due events one scheduler round of a
// shard with n nodes may fire before serving the inbox again. When a
// shard runs behind schedule (saturation), every node's wake is due at
// once; firing them all in one go would put the whole shard into the
// pending (busy) state simultaneously and nack every push — a
// livelock. Chunking at ≤ 1/8 of the shard keeps only a small fraction
// of nodes in flight at a time, so pushes almost always find a
// serviceable peer, while the floor still amortizes batch frames over
// dozens of messages.
func eventBudget(n int) int {
	return min(1024, max(64, n/8))
}

// RuntimeConfig assembles a heap-mode runtime hosting Size nodes.
type RuntimeConfig struct {
	// Size is the number of hosted nodes (≥ 2).
	Size int
	// Schema defines the gossiped fields (required).
	Schema *core.Schema
	// Value supplies node i's local attribute.
	Value func(i int) float64
	// CycleLength is Δt for every node (required).
	CycleLength time.Duration
	// ReplyTimeout bounds the pull-reply wait (default CycleLength/2).
	ReplyTimeout time.Duration
	// Wait is the waiting-time policy (default ConstantWait).
	Wait WaitPolicy
	// Fabric carries the messages when Endpoints is nil; nil builds a
	// lossless fabric with deep per-worker inboxes.
	Fabric *transport.Fabric
	// Endpoints, when non-nil, supplies one pre-built endpoint per
	// worker (e.g. TCP listeners for a deployable multi-node process)
	// and overrides Fabric. len(Endpoints) fixes the worker count.
	Endpoints []transport.Endpoint
	// PushOnly enables the push-only ablation on every node.
	PushOnly bool
	// InitState, when non-nil, overrides state initialization for node
	// i (e.g. to seed the size-estimation leader).
	InitState func(i int) func(epochID uint64, value float64) core.State
	// Clock, when non-nil, drives epoch restarts on every node.
	Clock *epoch.Clock
	// Samplers, when non-nil, builds node i's membership sampler; self
	// is the node's sub-address and local the full table of hosted-node
	// sub-addresses (shared, read-only) for bootstrapping. Nil uses a
	// shared directory over all hosted nodes — the complete local
	// overlay in O(N) total memory.
	Samplers func(i int, self string, local []string) (membership.Sampler, error)
	// GossipFanout is how many membership addresses to piggyback per
	// message (default 3; negative disables; moot for the directory).
	GossipFanout int
	// Workers is the worker/shard count (default GOMAXPROCS, clamped so
	// every shard owns at least two nodes).
	Workers int
	// BatchWindow bounds how long a coalesced message may wait before
	// the batcher flushes on its own. 0 (the default) flushes once per
	// scheduler round — lowest latency, still batch-framed.
	BatchWindow time.Duration
	// MaxBatch caps messages per batch frame (default 256).
	MaxBatch int
	// Seed makes node randomness reproducible.
	Seed uint64
	// Metrics, when non-nil, registers the runtime's instrumentation
	// (per-shard exchange counters, rounds, steals, inbox depth, shard
	// lag, pool and batcher traffic) as scrape-time readers over the
	// counters the runtime already maintains — attaching a registry
	// adds no work to the exchange hot path.
	Metrics *metrics.Registry
	// TraceSample records every TraceSample-th initiated exchange into
	// a per-shard trace ring (drained via Trace), rounded up to the
	// next power of two so the per-exchange sampling gate is a mask,
	// not a division. 0 — the default — disables tracing; the hot path
	// then pays one predictable branch.
	TraceSample int
	// TraceRing is the per-shard ring capacity (default 256 when
	// sampling is enabled).
	TraceRing int
}

// withDefaults validates and fills defaults.
func (c RuntimeConfig) withDefaults() (RuntimeConfig, error) {
	if c.Size < 2 {
		return c, fmt.Errorf("engine: runtime needs ≥ 2 nodes, got %d", c.Size)
	}
	if c.Schema == nil {
		return c, fmt.Errorf("engine: runtime needs a Schema")
	}
	if c.CycleLength <= 0 {
		return c, fmt.Errorf("engine: CycleLength must be positive, got %v", c.CycleLength)
	}
	if c.Wait == 0 {
		c.Wait = ConstantWait
	}
	if c.Wait != ConstantWait && c.Wait != ExponentialWait {
		return c, fmt.Errorf("engine: unknown wait policy %v", c.Wait)
	}
	if c.ReplyTimeout <= 0 {
		c.ReplyTimeout = c.CycleLength / 2
	}
	if c.Value == nil {
		c.Value = func(int) float64 { return 0 }
	}
	if c.GossipFanout == 0 {
		c.GossipFanout = 3
	}
	if c.GossipFanout < 0 {
		c.GossipFanout = 0
	}
	if len(c.Endpoints) > 0 {
		// Explicit endpoints fix the worker count; the caller already
		// paid for the listeners, so only require one node per shard.
		c.Workers = len(c.Endpoints)
		if c.Workers > c.Size {
			return c, fmt.Errorf("engine: %d endpoints exceed %d nodes (each worker endpoint needs ≥ 1 node)", c.Workers, c.Size)
		}
	} else {
		if c.Workers <= 0 {
			c.Workers = runtime.GOMAXPROCS(0)
		}
		if c.Workers > c.Size/2 {
			c.Workers = max(c.Size/2, 1)
		}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.TraceSample < 0 {
		c.TraceSample = 0
	}
	if c.TraceSample > 0 {
		// Round the sampling interval up to a power of two: the gate
		// runs twice per exchange, and a mask is ~an order of magnitude
		// cheaper than a 64-bit division on common hardware.
		p := 1
		for p < c.TraceSample {
			p <<= 1
		}
		c.TraceSample = p
		if c.TraceRing <= 0 {
			c.TraceRing = 256
		}
	}
	return c, nil
}

// Runtime is the heap-mode live runtime: a worker pool multiplexing all
// hosted nodes, per-shard event heaps for exchange timers and reply
// deadlines, and batched transports. Construct with NewRuntime, then
// Start; Stop tears down the workers and endpoints.
type Runtime struct {
	cfg    RuntimeConfig
	schema *core.Schema
	fabric *transport.Fabric // nil when explicit endpoints were supplied
	pool   *fieldsPool       // shared tier of the Fields buffer recycler
	shards []*rshard
	addrs  []string // node i's sub-address, shared by every directory
	nodes  []*Node  // facade handles, one per hosted node

	epochStart time.Time // reference point for the runtime clock
	stop       chan struct{}
	startOnce  sync.Once
	stopOnce   sync.Once
	started    atomic.Bool
	stopped    atomic.Bool
	steals     atomic.Uint64 // rounds run by a non-owner worker

	// failedNodes mirrors the number of currently-failed (crashed,
	// not-yet-revived) hosted nodes for lock-free scraping; maintained
	// by FailNode/ReviveNode under the owning shard's lock.
	failedNodes atomic.Int64
	// advNodes mirrors the number of currently-Byzantine hosted nodes
	// for lock-free scraping; maintained by SetAdversaries under the
	// shard locks.
	advNodes atomic.Int64
}

// rnode is one hosted node's protocol state, guarded by its shard's mu.
type rnode struct {
	state      []float64 // view into the shard's backing column
	value      float64
	tracker    epoch.Tracker
	rng        *xrand.Rand
	sampler    membership.Sampler
	observes   bool // sampler wants Observe/Forget feedback (non-directory)
	initState  func(epochID uint64, value float64) core.State
	failed     bool    // scenario-injected crash: silent until revived
	pendingSeq uint64  // nonzero while an exchange is in flight (the busy flag)
	pendingAt  float64 // when the in-flight exchange's push was sent
	pendingDst int32   // traced peer index (-1 remote); only set while tracing
	// pendingPeer is the in-flight exchange's destination, kept so a
	// missed reply deadline can Forget it (failure detection from
	// traffic); only maintained when the sampler observes.
	pendingPeer string
	// Late-reply absorption state (see rshard.absorbLate): stateVer
	// counts state mutations; lateSeq/lateVer arm the merge of a reply
	// that outlived its deadline.
	stateVer uint64
	lateSeq  uint64
	lateVer  uint64
	// adv is 0 for an honest node, else 1 + the sim.AdversaryBehavior:
	// the node answers exchanges with its (pinned) state but never
	// adopts a merge. Set by SetAdversaries under the shard's mu.
	adv uint8
	// trim is the node's robust-merge acceptance band, live while the
	// shard's robust policy has Trim set (see Runtime.SetRobust).
	trim  robust.TrimState
	stats Stats
}

// failure records one undeliverable batch destination for a sender.
type failure struct {
	to   string
	from string
}

// shardCounters is one shard's slice of the runtime-wide Stats,
// maintained as atomics so observers aggregate them lock-free (see
// Runtime.Stats). Only the owning round-holder writes them (a plain
// Add under the shard's round lock), so the atomicity is purely for
// the cross-goroutine reads. The trailing pad keeps one shard's
// counters from false-sharing a cache line with whatever the allocator
// places after the rshard.
type shardCounters struct {
	initiated      atomic.Uint64
	replies        atomic.Uint64
	timeouts       atomic.Uint64
	lateReplies    atomic.Uint64
	served         atomic.Uint64
	epochSwitches  atomic.Uint64
	staleDropped   atomic.Uint64
	sendErrors     atomic.Uint64
	busyDropped    atomic.Uint64
	peerBusy       atomic.Uint64
	robustRejected atomic.Uint64
	_              [40]byte // pad 11×8 B of counters to two full cache lines
}

// rshard is one worker's slice of the runtime: a contiguous node range,
// an endpoint, a batcher and an event heap.
//
// Everything under mu is owned by whichever goroutine holds the round
// lock — normally the shard's own worker, occasionally a sibling
// stealing a round (see Runtime.trySteal). The lock is taken once per
// scheduler round, not per message, so the hot path pays one
// uncontended Lock/Unlock per eventBudget of work.
type rshard struct {
	rt     *Runtime
	id     int
	lo, hi int
	ep     transport.Endpoint
	out    *transport.Batcher

	mu      sync.Mutex
	nodes   []rnode
	backing []float64
	heap    *sim.EventHeap
	free    localFree // Fields buffer free list, guarded by mu
	seq     uint64

	// Adversary/robust state, guarded by mu like the nodes it applies
	// to. robustOn caches robust.Enabled() so the per-message gate is
	// one byte load; advGossip/advAges are the shared (read-only)
	// eclipse flooding digest — every adversary address at age 0.
	robust    robust.Policy
	robustOn  bool
	advGossip []string
	advAges   []uint32

	ctr shardCounters

	// trace is the shard's sampled exchange ring (empty when sampling
	// is off); traceEvery caches the power-of-two sampling interval (0
	// off) so the twice-per-exchange gate is a load and a mask;
	// latency, when non-nil, mirrors sampled exchange latencies into a
	// registry histogram.
	trace      traceRing
	traceEvery uint64
	latency    *metrics.Histogram

	// recv counts inbound messages handled; maintained as a plain
	// increment under mu and published to pub once per round, so the
	// per-message cost is an ordinary add, not an atomic.
	recv uint64

	// pub mirrors round-granular counters (rounds run, messages
	// received, pool traffic, free-list occupancy) as atomics for
	// lock-free scraping. Stored once at the end of every round.
	pub struct {
		rounds   atomic.Uint64
		received atomic.Uint64
		poolGets atomic.Uint64
		poolPuts atomic.Uint64
		poolMiss atomic.Uint64
		poolFree atomic.Int64
	}

	// nextDue is the float64 bit pattern of the shard's earliest
	// scheduled event time (+Inf when the heap is empty), published at
	// the end of every round so idle siblings can spot a shard that has
	// fallen behind schedule without touching its lock.
	nextDue atomic.Uint64

	failMu   sync.Mutex
	failures []failure

	done chan struct{}
}

// publishNextDue records the shard's earliest pending event time for
// the benefit of would-be stealers.
func (s *rshard) publishNextDue(at float64) { s.nextDue.Store(math.Float64bits(at)) }

// loadNextDue returns the shard's last published earliest event time.
func (s *rshard) loadNextDue() float64 { return math.Float64frombits(s.nextDue.Load()) }

// NewRuntime builds (but does not start) a heap-mode runtime.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		cfg:    cfg,
		schema: cfg.Schema,
		pool:   newFieldsPool(cfg.Schema.Len()),
		stop:   make(chan struct{}),
	}
	endpoints := cfg.Endpoints
	if endpoints == nil {
		rt.fabric = cfg.Fabric
		if rt.fabric == nil {
			rt.fabric = transport.NewFabric(
				transport.WithSeed(cfg.Seed),
				transport.WithInboxSize(1<<14),
			)
		}
		endpoints = make([]transport.Endpoint, cfg.Workers)
		for w := range endpoints {
			endpoints[w] = rt.fabric.NewEndpoint()
		}
	}

	// Contiguous equal split: the first rem shards get one extra node.
	base, rem := cfg.Size/cfg.Workers, cfg.Size%cfg.Workers
	rt.addrs = make([]string, cfg.Size)
	rt.nodes = make([]*Node, cfg.Size)
	rt.shards = make([]*rshard, cfg.Workers)
	fieldN := cfg.Schema.Len()
	startEpoch := uint64(0)
	if cfg.Clock != nil {
		startEpoch = cfg.Clock.Current(time.Now())
	}
	lo := 0
	for w := range cfg.Workers {
		hi := lo + base
		if w < rem {
			hi++
		}
		s := &rshard{
			rt:      rt,
			id:      w,
			lo:      lo,
			hi:      hi,
			ep:      endpoints[w],
			nodes:   make([]rnode, hi-lo),
			backing: make([]float64, (hi-lo)*fieldN),
			heap:    sim.NewEventHeap(2 * (hi - lo)),
			free:    newLocalFree(rt.pool, hi-lo),
			done:    make(chan struct{}),
		}
		if cfg.TraceSample > 0 {
			s.trace.recs = make([]TraceRecord, cfg.TraceRing)
			s.traceEvery = uint64(cfg.TraceSample)
		}
		s.out = transport.NewBatcher(endpoints[w],
			transport.WithBatchWindow(cfg.BatchWindow),
			transport.WithMaxBatch(cfg.MaxBatch),
			transport.WithSendErrorHandler(s.noteFailures),
		)
		for i := lo; i < hi; i++ {
			rt.addrs[i] = transport.SubAddr(endpoints[w].Addr(), i)
		}
		rt.shards[w] = s
		lo = hi
	}

	for _, s := range rt.shards {
		for i := s.lo; i < s.hi; i++ {
			n := &s.nodes[i-s.lo]
			n.value = cfg.Value(i)
			n.rng = xrand.New(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
			n.tracker = epoch.NewTracker(startEpoch)
			if cfg.InitState != nil {
				n.initState = cfg.InitState(i)
			}
			if cfg.Samplers != nil {
				sampler, err := cfg.Samplers(i, rt.addrs[i], rt.addrs)
				if err != nil {
					return nil, fmt.Errorf("engine: sampler for node %d: %w", i, err)
				}
				n.sampler = sampler
				_, isDir := sampler.(*membership.Directory)
				n.observes = !isDir
			} else {
				sampler, err := membership.NewDirectory(rt.addrs, i)
				if err != nil {
					return nil, fmt.Errorf("engine: directory for node %d: %w", i, err)
				}
				n.sampler = sampler
			}
			n.state = s.backing[(i-s.lo)*fieldN : (i-s.lo+1)*fieldN]
			copy(n.state, rt.initStateFor(n, startEpoch))
			rt.nodes[i] = &Node{hrt: rt, hidx: i}
		}
	}
	rt.registerMetrics(cfg.Metrics)
	return rt, nil
}

// registerMetrics exposes the runtime through a registry. Every series
// is a scrape-time reader over state the runtime maintains anyway
// (shardCounters, published round mirrors, channel lengths), so the
// exchange hot path is identical with and without a registry; only the
// sampled-exchange latency histogram is an owned instrument, and it is
// written solely on the trace-sampling lattice. No-op on nil.
func (rt *Runtime) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("repro_engine_nodes", "Hosted nodes.",
		func() float64 { return float64(len(rt.addrs)) })
	reg.GaugeFunc("repro_engine_workers", "Shard workers.",
		func() float64 { return float64(len(rt.shards)) })
	reg.GaugeFunc("repro_engine_failed_nodes", "Hosted nodes currently failed by scenario injection.",
		func() float64 { return float64(rt.failedNodes.Load()) })
	reg.GaugeFunc("repro_adversary_nodes", "Hosted nodes currently acting as Byzantine adversaries.",
		func() float64 { return float64(rt.advNodes.Load()) })
	reg.CounterFunc("repro_engine_rounds_stolen_total",
		"Scheduler rounds run by a non-owner worker.", rt.steals.Load)
	for _, s := range rt.shards {
		s := s
		lbl := metrics.Label{Key: "shard", Value: strconv.Itoa(s.id)}
		for _, c := range []struct {
			name, help string
			v          *atomic.Uint64
		}{
			{"repro_engine_exchanges_initiated_total", "Exchanges started by hosted nodes.", &s.ctr.initiated},
			{"repro_engine_exchanges_completed_total", "Exchanges whose pull reply was merged.", &s.ctr.replies},
			{"repro_engine_exchange_deadline_missed_total", "Exchanges reaped by the reply deadline.", &s.ctr.timeouts},
			{"repro_engine_late_replies_absorbed_total", "Post-deadline replies still merged to conserve mass.", &s.ctr.lateReplies},
			{"repro_engine_exchanges_nacked_total", "Exchanges declined by a busy peer.", &s.ctr.peerBusy},
			{"repro_engine_pushes_served_total", "Inbound pushes merged and replied to.", &s.ctr.served},
			{"repro_engine_pushes_declined_total", "Inbound pushes nacked while busy.", &s.ctr.busyDropped},
			{"repro_robust_rejected_total", "Exchange halves rejected by the robust trim gate.", &s.ctr.robustRejected},
			{"repro_engine_messages_stale_dropped_total", "Messages dropped for an out-of-sync epoch.", &s.ctr.staleDropped},
			{"repro_engine_epoch_restarts_total", "Node state reinitializations at epoch boundaries.", &s.ctr.epochSwitches},
			{"repro_engine_send_errors_total", "Sends that failed synchronously or via batch feedback.", &s.ctr.sendErrors},
			{"repro_engine_rounds_total", "Scheduler rounds run.", &s.pub.rounds},
			{"repro_engine_messages_received_total", "Inbound messages handled.", &s.pub.received},
			{"repro_pool_gets_total", "Fields buffers drawn from the shard free list.", &s.pub.poolGets},
			{"repro_pool_puts_total", "Fields buffers recycled into the shard free list.", &s.pub.poolPuts},
			{"repro_pool_misses_total", "Buffer draws that fell through to the shared pool.", &s.pub.poolMiss},
		} {
			reg.CounterFunc(c.name, c.help, c.v.Load, lbl)
		}
		reg.GaugeFunc("repro_pool_local_free", "Buffers resident in the shard free list.",
			func() float64 { return float64(s.pub.poolFree.Load()) }, lbl)
		reg.GaugeFunc("repro_engine_inbox_depth", "Messages queued in the shard endpoint inbox.",
			func() float64 { return float64(len(s.ep.Inbox())) }, lbl)
		reg.GaugeFunc("repro_engine_shard_lag_seconds",
			"How far the shard's earliest pending event lies behind the runtime clock (0 when ahead or idle).",
			func() float64 {
				lag := rt.now() - s.loadNextDue()
				if lag < 0 || math.IsInf(lag, 0) || math.IsNaN(lag) {
					return 0
				}
				return lag
			}, lbl)
		s.latency = reg.Histogram("repro_engine_exchange_latency_seconds",
			"Initiate-to-resolution latency of trace-sampled exchanges (empty until trace sampling is enabled).",
			nil, lbl)
		reg.CounterFunc("repro_transport_batch_frames_total", "Batch frames flushed to the endpoint.",
			s.out.FramesSent, lbl)
		reg.CounterFunc("repro_transport_batch_messages_total", "Messages carried inside batch frames.",
			s.out.MessagesSent, lbl)
		reg.CounterFunc("repro_transport_send_failures_total", "Messages whose batch delivery failed.",
			s.out.SendFailures, lbl)
		var gossips []*membership.GossipSampler
		for i := range s.nodes {
			if g, ok := s.nodes[i].sampler.(*membership.GossipSampler); ok {
				gossips = append(gossips, g)
			}
		}
		if len(gossips) > 0 {
			// The sampler mirrors are atomics, so scrapes stay lock-free
			// like every other series here.
			gossips := gossips
			reg.GaugeFunc("repro_membership_view_entries",
				"Peer entries across the shard's gossip membership views.",
				func() float64 {
					var t float64
					for _, g := range gossips {
						t += float64(g.ViewSize())
					}
					return t
				}, lbl)
			reg.CounterFunc("repro_membership_observed_total",
				"Messages whose sender and digest fed a membership view.",
				func() uint64 {
					var t uint64
					for _, g := range gossips {
						t += g.ObservedTotal()
					}
					return t
				}, lbl)
			reg.CounterFunc("repro_membership_forgotten_total",
				"Peers dropped from membership views as dead (send failures and missed deadlines).",
				func() uint64 {
					var t uint64
					for _, g := range gossips {
						t += g.ForgottenTotal()
					}
					return t
				}, lbl)
			reg.CounterFunc("repro_membership_digest_dropped_total",
				"Digest entries refused by the per-sender insertion budget (eclipse hardening).",
				func() uint64 {
					var t uint64
					for _, g := range gossips {
						t += g.InsertsDroppedTotal()
					}
					return t
				}, lbl)
		}
		if tcp, ok := s.ep.(*transport.TCPEndpoint); ok {
			reg.CounterFunc("repro_transport_tcp_dials_total", "Outbound TCP connections established.", tcp.Dials, lbl)
			reg.CounterFunc("repro_transport_tcp_bytes_sent_total", "Bytes written to TCP peers.", tcp.BytesSent, lbl)
			reg.CounterFunc("repro_transport_tcp_bytes_received_total", "Bytes read from TCP peers.", tcp.BytesReceived, lbl)
			reg.CounterFunc("repro_transport_tcp_inbox_dropped_total", "Inbound frames dropped on a full inbox.", tcp.InboxDropped, lbl)
		}
	}
	if rt.fabric != nil {
		reg.CounterFunc("repro_transport_fabric_loss_dropped_total",
			"Messages dropped by the fabric loss model or a partition filter.", rt.fabric.LossDropped)
		reg.CounterFunc("repro_transport_fabric_inbox_dropped_total",
			"Messages dropped on a full in-memory inbox.", rt.fabric.InboxDropped)
	}
}

// initStateFor builds a node's state vector for an epoch.
func (rt *Runtime) initStateFor(n *rnode, epochID uint64) core.State {
	if n.initState != nil {
		return n.initState(epochID, n.value)
	}
	return rt.schema.InitState(n.value)
}

// Size returns the number of hosted nodes.
func (rt *Runtime) Size() int { return len(rt.addrs) }

// Workers returns the worker/shard count.
func (rt *Runtime) Workers() int { return len(rt.shards) }

// Nodes returns per-node facade handles in index order. The handles
// support the full Node API (State, Estimate, Epoch, Stats, SetValue);
// Start and Stop act on the whole runtime.
func (rt *Runtime) Nodes() []*Node { return rt.nodes }

// Addr returns node i's sub-address.
func (rt *Runtime) Addr(i int) string { return rt.addrs[i] }

// Fabric returns the runtime-owned in-memory fabric (nil when explicit
// endpoints were supplied).
func (rt *Runtime) Fabric() *transport.Fabric { return rt.fabric }

// now returns seconds since Start on the runtime clock.
func (rt *Runtime) now() float64 {
	return time.Since(rt.epochStart).Seconds()
}

// Start launches the worker pool. Calling Start more than once is a
// no-op. Cancelling ctx stops the runtime exactly as Stop would;
// context.Background() runs until an explicit Stop.
func (rt *Runtime) Start(ctx context.Context) {
	rt.startOnce.Do(func() {
		rt.epochStart = time.Now()
		rt.started.Store(true)
		cycle := rt.cfg.CycleLength.Seconds()
		for _, s := range rt.shards {
			s.mu.Lock()
			for i := s.lo; i < s.hi; i++ {
				// Random initial phase in [0, Δt): desynchronized ticks
				// avoid lockstep collisions (§1.1 autonomy), exactly as
				// the goroutine runtime does.
				phase := s.nodes[i-s.lo].rng.Float64() * cycle
				s.heap.Push(sim.Event{At: phase, Node: int32(i), Kind: evWake})
			}
			if ev, ok := s.heap.Peek(); ok {
				s.publishNextDue(ev.At)
			} else {
				s.publishNextDue(math.Inf(1))
			}
			s.mu.Unlock()
			go s.run()
		}
		if ctx != nil && ctx.Done() != nil {
			go func() {
				select {
				case <-ctx.Done():
					rt.Stop()
				case <-rt.stop:
				}
			}()
		}
	})
}

// Stop terminates the workers, flushes and closes every endpoint, and
// waits for shutdown. Idempotent and safe to call before Start.
func (rt *Runtime) Stop() {
	rt.stopOnce.Do(func() {
		rt.stopped.Store(true)
		close(rt.stop)
		if rt.started.Load() {
			for _, s := range rt.shards {
				<-s.done
			}
		}
		for _, s := range rt.shards {
			_ = s.out.Close()
		}
	})
}

// shardOf returns the shard owning global node index i.
func (rt *Runtime) shardOf(i int) *rshard {
	w := len(rt.shards)
	n := len(rt.addrs)
	base, rem := n/w, n%w
	cut := rem * (base + 1)
	if i < cut {
		return rt.shards[i/(base+1)]
	}
	return rt.shards[rem+(i-cut)/base]
}

// Snapshot returns every node's current approximation of the named
// field, locking one shard at a time. It materializes an N-length
// slice; hot paths at 10⁵⁺ nodes should fold with ReduceField instead.
func (rt *Runtime) Snapshot(field string) ([]float64, error) {
	idx, err := rt.schema.Index(field)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rt.addrs))
	for _, s := range rt.shards {
		s.mu.Lock()
		for i := s.lo; i < s.hi; i++ {
			out[i] = s.nodes[i-s.lo].state[idx]
		}
		s.mu.Unlock()
	}
	return out, nil
}

// ReduceField streams every node's current approximation of the named
// field through fn, shard by shard, without materializing a vector —
// the observation primitive for 10⁵–10⁶-node runtimes. fn runs with
// the owning shard locked: it must be fast and must not call back into
// the runtime. Nodes are visited in index order.
func (rt *Runtime) ReduceField(field string, fn func(v float64)) error {
	idx, err := rt.schema.Index(field)
	if err != nil {
		return err
	}
	for _, s := range rt.shards {
		s.mu.Lock()
		for i := range s.nodes {
			if s.nodes[i].failed || s.nodes[i].adv != 0 {
				// Crashed nodes are not part of the live population, and
				// adversaries' pinned columns are exactly the poison the
				// observation layer measures the influence of — folding
				// them in would hide the corruption.
				continue
			}
			fn(s.nodes[i].state[idx])
		}
		s.mu.Unlock()
	}
	return nil
}

// ReduceValues streams every node's local input value (the attribute
// the aggregate is computed over) through fn, shard by shard. Same
// contract as ReduceField: fn runs with the owning shard locked. The
// telemetry layer folds this into the live true mean so tracking error
// reflects SetValue drift, not just the values at start.
func (rt *Runtime) ReduceValues(fn func(v float64)) {
	for _, s := range rt.shards {
		s.mu.Lock()
		for i := range s.nodes {
			if s.nodes[i].failed || s.nodes[i].adv != 0 {
				continue
			}
			fn(s.nodes[i].value)
		}
		s.mu.Unlock()
	}
}

// NodeState returns a copy of node i's state vector.
func (rt *Runtime) NodeState(i int) core.State {
	s := rt.shardOf(i)
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(core.State, len(s.nodes[i-s.lo].state))
	copy(out, s.nodes[i-s.lo].state)
	return out
}

// NodeEpoch returns node i's current epoch identifier.
func (rt *Runtime) NodeEpoch(i int) uint64 {
	s := rt.shardOf(i)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes[i-s.lo].tracker.Current()
}

// NodeStats returns a snapshot of node i's counters.
func (rt *Runtime) NodeStats(i int) Stats {
	s := rt.shardOf(i)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes[i-s.lo].stats
}

// SetValue updates node i's local attribute (visible at the next epoch
// restart, §4 adaptivity).
func (rt *Runtime) SetValue(i int, v float64) {
	s := rt.shardOf(i)
	s.mu.Lock()
	s.nodes[i-s.lo].value = v
	s.mu.Unlock()
}

// injectWait bounds how long InjectValue spins for a node's in-flight
// exchange to resolve before force-applying the delta anyway. The
// pending window is normally microseconds (one fabric delivery), so the
// bound only bites when the sampled peer is dead and the exchange must
// burn its full reply timeout.
const injectWait = 10 * time.Millisecond

// InjectValue updates node i's local attribute to v and folds the
// difference into its current approximation of field idx, so the new
// value enters the aggregate immediately rather than at the next epoch
// restart — the dynamic-signals feed behind System.SetValue.
//
// The delta apply is only mass-conserving while no exchange is in
// flight on the node: a push-then-mutate-then-merge interleaving loses
// δ/2 of the injected mass (§3.2's atomicity argument). InjectValue
// therefore waits (bounded by injectWait) for pendingSeq to clear
// before applying; the stateVer bump also invalidates any armed
// late-reply absorption, which would no longer commute with the
// injection. Shard-local: one lock acquisition per attempt, no
// allocations.
func (rt *Runtime) InjectValue(i, idx int, v float64) {
	s := rt.shardOf(i)
	deadline := time.Now().Add(injectWait)
	for {
		s.mu.Lock()
		n := &s.nodes[i-s.lo]
		if n.pendingSeq == 0 || n.failed || !time.Now().Before(deadline) {
			delta := v - n.value
			n.value = v
			if !n.failed {
				n.state[idx] += delta
				n.stateVer++
			}
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		time.Sleep(50 * time.Microsecond)
	}
}

// FailNode silently crashes hosted node i: it stops initiating, drops
// all inbound traffic, and leaves every reduce (peers observe only a
// missing reply and time out). Reports whether the call changed the
// node's status. The node's share of the aggregate mass dies with it,
// exactly as in the paper's crash model (§3.2): already-merged
// contributions persist in surviving nodes' states.
func (rt *Runtime) FailNode(i int) bool {
	s := rt.shardOf(i)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := &s.nodes[i-s.lo]
	if n.failed {
		return false
	}
	n.failed = true
	// Retire any in-flight exchange: its evTimeout and reply become
	// no-ops, and no late absorption may fire into a dead node.
	n.pendingSeq = 0
	n.lateSeq = 0
	rt.failedNodes.Add(1)
	return true
}

// ReviveNode brings a failed node back as a fresh joiner: its state is
// reinitialized from its current local value (stale pre-crash mass is
// discarded) and it resumes initiating on its existing wake cadence.
// Reports whether the call changed the node's status.
func (rt *Runtime) ReviveNode(i int) bool {
	s := rt.shardOf(i)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := &s.nodes[i-s.lo]
	if !n.failed {
		return false
	}
	n.failed = false
	copy(n.state, rt.initStateFor(n, n.tracker.Current()))
	n.stateVer++
	rt.failedNodes.Add(-1)
	return true
}

// FailedNodes returns how many hosted nodes are currently failed.
func (rt *Runtime) FailedNodes() int { return int(rt.failedNodes.Load()) }

// SetAdversaries marks hosted nodes as Byzantine with the given
// behavior, mirroring the kernel's semantics (sim.Kernel.SetAdversaries):
// extreme-value adversaries pin their local value to magnitude,
// colluding and eclipse adversaries to target, selective droppers keep
// their honestly drawn value — and none of them ever adopts a merge.
// Eclipse adversaries additionally answer every exchange with a
// membership digest listing only adversary addresses at age 0, so
// gossip-sampled victims' views are captured. Passing no nodes clears
// the axis. Safe to call on a running runtime (live injection): each
// shard is updated under its round lock.
func (rt *Runtime) SetAdversaries(behavior sim.AdversaryBehavior, nodes []int, magnitude, target float64) error {
	for _, i := range nodes {
		if i < 0 || i >= len(rt.addrs) {
			return fmt.Errorf("engine: adversary node %d out of range [0,%d)", i, len(rt.addrs))
		}
	}
	mark := make([]bool, len(rt.addrs))
	count := 0
	for _, i := range nodes {
		if !mark[i] {
			mark[i] = true
			count++
		}
	}
	if count > 0 && len(rt.addrs)-count < 2 {
		return fmt.Errorf("engine: %d adversaries leave fewer than two honest nodes (n=%d)", count, len(rt.addrs))
	}
	var gossip []string
	var ages []uint32
	if count > 0 && behavior == sim.AdvEclipse {
		gossip = make([]string, 0, count)
		for i, m := range mark {
			if m {
				gossip = append(gossip, rt.addrs[i])
			}
		}
		ages = make([]uint32, len(gossip))
	}
	for _, s := range rt.shards {
		s.mu.Lock()
		s.advGossip, s.advAges = gossip, ages
		for i := s.lo; i < s.hi; i++ {
			n := &s.nodes[i-s.lo]
			n.adv = 0
			if !mark[i] {
				continue
			}
			n.adv = 1 + uint8(behavior)
			switch behavior {
			case sim.AdvExtreme:
				n.value = magnitude
			case sim.AdvColluding, sim.AdvEclipse:
				n.value = target
			}
			if behavior != sim.AdvSelectiveDrop {
				copy(n.state, rt.initStateFor(n, n.tracker.Current()))
				n.stateVer++
			}
		}
		s.mu.Unlock()
	}
	rt.advNodes.Store(int64(count))
	return nil
}

// AdversaryCount returns how many hosted nodes are currently Byzantine.
func (rt *Runtime) AdversaryCount() int { return int(rt.advNodes.Load()) }

// SetRobust installs the robust-merge countermeasures on every hosted
// node (a zero policy disables them). When trimming is enabled, each
// node's acceptance band is seeded from the honest population's current
// primary-field spread — center 0, scale max(σ, ε) — exactly as the
// kernel does, so an adversary gets no free warmup window. Call after
// SetAdversaries; safe on a running runtime.
func (rt *Runtime) SetRobust(p robust.Policy) {
	if p.Trim && p.TrimK <= 0 {
		p.TrimK = 8
	}
	var seed robust.TrimState
	if p.Enabled() && p.Trim {
		var run stats.Running
		for _, s := range rt.shards {
			s.mu.Lock()
			for i := range s.nodes {
				n := &s.nodes[i]
				if n.adv == 0 && !n.failed {
					run.Add(n.state[0])
				}
			}
			s.mu.Unlock()
		}
		scale := run.StdDev()
		if scale < 1e-12 {
			scale = 1e-12
		}
		seed = robust.TrimState{Center: 0, Scale: scale}
	}
	for _, s := range rt.shards {
		s.mu.Lock()
		if p.Enabled() {
			s.robust, s.robustOn = p, true
		} else {
			s.robust, s.robustOn = robust.Policy{}, false
		}
		for i := range s.nodes {
			s.nodes[i].trim = seed
		}
		s.mu.Unlock()
	}
}

// RobustRejected returns how many exchange halves the robust trim gate
// has rejected (cumulative across the runtime's lifetime, like every
// other counter).
func (rt *Runtime) RobustRejected() uint64 {
	var t uint64
	for _, s := range rt.shards {
		t += s.ctr.robustRejected.Load()
	}
	return t
}

// Stats returns the element-wise sum of every hosted node's counters.
// The fold reads the per-shard atomic counter blocks — O(workers), no
// locks — so Watch-style polling never stalls the workers it measures.
// Counters within one shard are read without a snapshot barrier, so a
// momentarily in-progress exchange may show as initiated but not yet
// replied; every counter is individually exact.
func (rt *Runtime) Stats() Stats {
	var agg Stats
	for _, s := range rt.shards {
		agg.Initiated += s.ctr.initiated.Load()
		agg.Replies += s.ctr.replies.Load()
		agg.Timeouts += s.ctr.timeouts.Load()
		agg.LateReplies += s.ctr.lateReplies.Load()
		agg.Served += s.ctr.served.Load()
		agg.EpochSwitches += s.ctr.epochSwitches.Load()
		agg.StaleDropped += s.ctr.staleDropped.Load()
		agg.SendErrors += s.ctr.sendErrors.Load()
		agg.BusyDropped += s.ctr.busyDropped.Load()
		agg.PeerBusy += s.ctr.peerBusy.Load()
	}
	return agg
}

// ShardInitiated returns each shard's initiated-exchange counter in
// shard order — the per-worker balance view (lock-free, like Stats).
func (rt *Runtime) ShardInitiated() []uint64 {
	out := make([]uint64, len(rt.shards))
	for i, s := range rt.shards {
		out[i] = s.ctr.initiated.Load()
	}
	return out
}

// nodeIndex parses the node index out of a sub-address ("ep#17" → 17).
func nodeIndex(addr string) (int, bool) {
	h := strings.IndexByte(addr, '#')
	if h < 0 {
		return 0, false
	}
	idx, err := strconv.Atoi(addr[h+1:])
	if err != nil || idx < 0 {
		return 0, false
	}
	return idx, true
}

// noteFailures records a failed batch destination; the worker applies
// the feedback (SendErrors, sampler Forget) at its next round. Deferred
// because the batcher may invoke this while the worker holds mu. Each
// message's own To (the full sub-address the sampler handed out) is
// recorded, not the batch's base address — Forget must match what
// Sample returned.
func (s *rshard) noteFailures(to string, ms []transport.Message, err error) {
	s.failMu.Lock()
	for _, m := range ms {
		dest := m.To
		if dest == "" {
			dest = to
		}
		s.failures = append(s.failures, failure{to: dest, from: m.From})
	}
	s.failMu.Unlock()
}

// applyFailuresLocked charges recorded send failures to their sender
// nodes. The caller holds s.mu.
func (s *rshard) applyFailuresLocked() {
	s.failMu.Lock()
	fails := s.failures
	s.failures = nil
	s.failMu.Unlock()
	for _, f := range fails {
		idx, ok := nodeIndex(f.from)
		if !ok || idx < s.lo || idx >= s.hi {
			continue
		}
		n := &s.nodes[idx-s.lo]
		n.stats.SendErrors++
		s.ctr.sendErrors.Add(1)
		if n.observes {
			n.sampler.Forget(f.to)
		}
		// If the failed message was the in-flight exchange's push, the
		// reply timeout reaps it; nothing more to do here.
	}
}

// run is the worker loop: run one scheduler round (drain inbound
// messages, fire due events — one lock acquisition for the whole
// round), flush coalesced sends, then sleep until the next deadline or
// message. An idle worker first offers a round of help to the most
// behind sibling shard (work stealing) before sleeping.
func (s *rshard) run() {
	defer close(s.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	inbox := s.ep.Inbox()
	for {
		s.mu.Lock()
		s.applyFailuresLocked()
		sleep, ok := s.roundLocked(inbox)
		s.mu.Unlock()
		if !ok {
			return
		}
		// With no batch window, everything generated this round leaves
		// as batch frames now; with one, the batcher's own timer (or
		// the size cap) flushes, trading up to BatchWindow of latency
		// for coalescing across scheduler rounds.
		if s.rt.cfg.BatchWindow == 0 {
			s.out.Flush()
		}
		if sleep <= 0 {
			// Behind schedule: keep processing without sleeping, but
			// yield so inbound deliveries and other workers progress.
			select {
			case <-s.rt.stop:
				return
			default:
			}
			continue
		}
		// Idle until the next deadline. Spend the slack helping a shard
		// that has fallen behind schedule, if there is one.
		if s.rt.trySteal(s.id) {
			continue
		}
		timer.Reset(sleep)
		select {
		case <-s.rt.stop:
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			s.mu.Lock()
			s.handleMessage(m)
			s.mu.Unlock()
		case <-timer.C:
		}
	}
}

// roundLocked runs one scheduler round: drain queued inbound messages
// (bounded, so observers are never locked out for a full inbox), fire
// due events up to the event budget, and publish the shard's next
// deadline. The caller holds s.mu. It returns how long the shard may
// sleep before its next event (≤ 0 when it should run again
// immediately) and ok=false when the inbox has been closed.
func (s *rshard) roundLocked(inbox <-chan transport.Message) (sleep time.Duration, ok bool) {
	budget := eventBudget(s.hi - s.lo)
	drained := 0
drain:
	for drained < 4*budget {
		select {
		case m, mok := <-inbox:
			if !mok {
				return 0, false
			}
			drained++
			s.handleMessage(m)
		default:
			break drain
		}
	}
	now := s.rt.now()
	for fired := 0; fired < budget; fired++ {
		ev, ok := s.heap.Peek()
		if !ok || ev.At > now {
			break
		}
		s.heap.Pop()
		s.handleEvent(ev, now)
	}
	sleep = time.Hour
	if ev, ok := s.heap.Peek(); ok {
		s.publishNextDue(ev.At)
		sleep = time.Duration((ev.At - s.rt.now()) * float64(time.Second))
	} else {
		s.publishNextDue(math.Inf(1))
	}
	if drained == 4*budget {
		sleep = 0 // inbox may still hold messages; come straight back
	}
	// Publish the round-granular counter mirrors: six stores per round,
	// amortized over the whole event budget, keep scrapes lock-free.
	s.pub.rounds.Add(1)
	s.pub.received.Store(s.recv)
	s.pub.poolGets.Store(s.free.gets)
	s.pub.poolPuts.Store(s.free.puts)
	s.pub.poolMiss.Store(s.free.misses)
	s.pub.poolFree.Store(int64(len(s.free.free)))
	return sleep, true
}

// stealLagFraction is how far behind schedule (as a fraction of the
// cycle length Δt) a shard's earliest event must be before an idle
// sibling steals a round for it. Small enough that help arrives well
// within a cycle, large enough that ordinary scheduling jitter never
// triggers cross-shard lock traffic.
const stealLagFraction = 0.25

// trySteal lets an idle worker run one scheduler round for the most
// behind sibling shard. Shard state stays single-writer per round: the
// stealer takes the victim's round lock (TryLock — if the owner is
// mid-round, help isn't needed), so owner and stealer alternate whole
// rounds rather than interleaving. The win is for skewed load (e.g.
// scalefree hubs concentrated in one shard): an otherwise idle core
// runs the hub shard's rounds and flushes its batches while the owner
// is descheduled or busy flushing. Reports whether a round was stolen.
func (rt *Runtime) trySteal(self int) bool {
	if len(rt.shards) < 2 {
		return false
	}
	now := rt.now()
	worst := stealLagFraction * rt.cfg.CycleLength.Seconds()
	var victim *rshard
	for _, s := range rt.shards {
		if s.id == self {
			continue
		}
		if behind := now - s.loadNextDue(); behind > worst {
			worst, victim = behind, s
		}
	}
	if victim == nil {
		return false
	}
	return victim.stealRound()
}

// stealRound runs one round on s from a non-owner goroutine.
func (s *rshard) stealRound() bool {
	if !s.mu.TryLock() {
		return false
	}
	s.applyFailuresLocked()
	_, ok := s.roundLocked(s.ep.Inbox())
	s.mu.Unlock()
	if !ok {
		return false // inbox closed; the owner handles shutdown
	}
	s.rt.steals.Add(1)
	if s.rt.cfg.BatchWindow == 0 {
		s.out.Flush()
	}
	return true
}

// Steals reports how many scheduler rounds were run by a worker other
// than the shard's owner (work stealing under skewed load).
func (rt *Runtime) Steals() uint64 { return rt.steals.Load() }

// handleEvent processes one due event. Caller holds s.mu.
func (s *rshard) handleEvent(ev sim.Event, now float64) {
	idx := int(ev.Node)
	n := &s.nodes[idx-s.lo]
	switch ev.Kind {
	case evTimeout:
		if n.pendingSeq == ev.Seq {
			n.pendingSeq = 0
			n.stats.Timeouts++
			s.ctr.timeouts.Add(1)
			if n.observes && n.pendingPeer != "" {
				// Failure detection from traffic: a missed deadline drops
				// the peer from the view. A live-but-slow peer re-enters
				// the moment its next message is observed.
				n.sampler.Forget(n.pendingPeer)
			}
			// The peer may have committed its half of the merge; arm
			// absorption so a merely-late reply still conserves mass
			// (see absorbLate).
			n.lateSeq, n.lateVer = ev.Seq, n.stateVer
			if s.traceSampled(ev.Seq) {
				s.recordTrace(n, idx, ev.Seq, TraceTimedOut, now)
			}
		}
	case evWake:
		if n.failed {
			// A crashed node keeps its wake cadence ticking (so a revive
			// resumes seamlessly) but is otherwise silent: no epoch
			// observation, no view aging, no initiation.
			wait := s.waitSeconds(n)
			at := ev.At + wait
			if at <= now {
				at += math.Floor((now-at)/wait+1) * wait
			}
			s.heap.Push(sim.Event{At: at, Node: ev.Node, Kind: evWake})
			return
		}
		s.checkClock(n)
		if n.observes {
			// One gossip round per wake: view entries age per cycle, not
			// per message, so lifetimes are independent of traffic rate.
			n.sampler.Tick()
		}
		wait := s.waitSeconds(n)
		at := ev.At + wait
		if n.pendingSeq == 0 {
			s.initiate(n, idx, now)
		} else if at <= now {
			// A wake that finds an exchange still in flight initiates
			// nothing: the goroutine runtime blocks its active loop until
			// reply-or-timeout, and reaping the exchange here instead
			// would drop a reply whose passive side already merged — an
			// asymmetric merge that leaks aggregate mass. The evTimeout
			// event is the only reaper. A backlogged no-op wake skips
			// ahead to its first slot past real time: when the shard runs
			// L behind schedule, re-pushing at ev.At+Δt would be a
			// treadmill — N·L/Δt no-op wakes ground through in stale
			// virtual time before the due timeouts behind them ever
			// surface, wedging every node in pending. The skip must
			// preserve the node's phase (whole multiples of its wait, not
			// a clamp to now): clamping re-pins every backlogged node to
			// the same instant, and a constant-wait shard whose phases
			// collapse livelocks — every node initiates in the same round
			// and busy-nacks every push forever after.
			at += math.Floor((now-at)/wait+1) * wait
		}
		s.heap.Push(sim.Event{At: at, Node: ev.Node, Kind: evWake})
	}
}

// waitSeconds draws one inter-exchange waiting time in seconds.
func (s *rshard) waitSeconds(n *rnode) float64 {
	cycle := s.rt.cfg.CycleLength.Seconds()
	if s.rt.cfg.Wait == ExponentialWait {
		return n.rng.ExpFloat64() * cycle
	}
	return cycle
}

// checkClock performs the node's own scheduled epoch restart.
func (s *rshard) checkClock(n *rnode) {
	if s.rt.cfg.Clock == nil {
		return
	}
	if n.tracker.Observe(s.rt.cfg.Clock.Current(time.Now())) {
		s.restart(n)
	}
}

// restart reinitializes a node's state for its (already advanced)
// current epoch. Caller holds s.mu.
func (s *rshard) restart(n *rnode) {
	copy(n.state, s.rt.initStateFor(n, n.tracker.Current()))
	n.stateVer++
	n.stats.EpochSwitches++
	s.ctr.epochSwitches.Add(1)
}

// initiate performs the active half of one exchange: sample a peer,
// send the push, arm the reply deadline. Caller holds s.mu and has
// checked that no exchange is in flight. The push's Fields buffer is
// drawn from the shard's free list; ownership passes to the transport
// with the Send (and on a lossless fabric the same buffer eventually
// returns via the pull reply).
func (s *rshard) initiate(n *rnode, idx int, now float64) {
	self := s.rt.addrs[idx]
	peer, ok := n.sampler.Sample(n.rng)
	if !ok || peer == self {
		return
	}
	fields := s.free.get()
	copy(fields, n.state)
	s.seq++
	msg := transport.Message{
		Kind:   transport.KindPush,
		Epoch:  n.tracker.Current(),
		Seq:    s.seq,
		From:   self,
		Fields: fields,
	}
	if n.adv == 1+uint8(sim.AdvEclipse) {
		// Eclipse push: flood the victim's view with adversary
		// addresses at age 0 (the shared digest is immutable, so the
		// receiver-must-not-retain contract is moot).
		msg.Gossip, msg.GossipAges = s.advGossip, s.advAges
	} else if s.rt.cfg.GossipFanout > 0 && n.observes {
		// The digest slices must be owned by the message: the batcher
		// retains it until flush and the fabric delivers by reference, so
		// sender-side scratch reuse is not possible here (DESIGN.md
		// "Membership").
		msg.Gossip, msg.GossipAges = n.sampler.AppendDigest(nil, nil, n.rng, s.rt.cfg.GossipFanout)
	}
	n.stats.Initiated++
	s.ctr.initiated.Add(1)
	if !s.rt.cfg.PushOnly {
		n.pendingSeq = s.seq
		n.pendingAt = now
		n.lateSeq = 0 // a new exchange supersedes any absorbable late reply
		if n.observes {
			n.pendingPeer = peer
		}
		if s.traceSampled(s.seq) {
			// The peer index is parsed only on the sampling lattice; with
			// tracing off initiate does no extra work beyond two stores.
			n.pendingDst = -1
			if di, ok := nodeIndex(peer); ok {
				n.pendingDst = int32(di)
			}
		}
		s.heap.Push(sim.Event{
			At:   now + s.rt.cfg.ReplyTimeout.Seconds(),
			Node: int32(idx),
			Kind: evTimeout,
			Seq:  s.seq,
		})
	}
	if err := s.out.Send(peer, msg); err != nil {
		n.stats.SendErrors++
		s.ctr.sendErrors.Add(1)
	}
}

// handleMessage routes one inbound message to its hosted node. The
// caller holds s.mu (messages are handled in round-sized batches under
// one lock acquisition, not one acquisition per message). A message
// addressed to the endpoint's bare base address (no '#' sub-address)
// is first-contact traffic from a peer that only knows this process's
// listen address (aggnode -peers host:port); the shard's first node
// serves it, and the reply's From carries that node's full
// sub-address, which bootstraps the remote sampler onto proper
// sub-addresses.
func (s *rshard) handleMessage(m transport.Message) {
	s.recv++
	idx, ok := nodeIndex(m.To)
	if !ok {
		idx = s.lo
	} else if idx < s.lo || idx >= s.hi {
		return // misrouted sub-address; drop
	}
	n := &s.nodes[idx-s.lo]
	if n.failed {
		// A crashed node neither serves nor absorbs: peers see pure
		// silence (their exchanges time out), exactly like a process
		// crash on a real network.
		s.free.put(m.Fields)
		return
	}
	if n.observes && m.From != "" {
		n.sampler.Observe(m.From, m.Gossip, m.GossipAges)
	}
	switch m.Kind {
	case transport.KindPush:
		s.servePush(n, idx, m)
	case transport.KindReply, transport.KindNack:
		s.handleReply(n, idx, m)
	}
}

// servePush implements the passive half (Figure 1, bottom): reply with
// the pre-merge state, then adopt the merge. Caller holds s.mu and owns
// m.Fields (receiver-owns rule); the happy path rewrites that buffer in
// place into the reply payload (MergeExchange), every other path
// recycles it.
func (s *rshard) servePush(n *rnode, idx int, m transport.Message) {
	if !s.rt.cfg.PushOnly && n.pendingSeq != 0 {
		// An own exchange is in flight; merging now would break the
		// atomicity of the elementary step. Decline with a nack, as the
		// goroutine runtime does.
		n.stats.BusyDropped++
		s.ctr.busyDropped.Add(1)
		s.free.put(m.Fields)
		nack := transport.Message{
			Kind:  transport.KindNack,
			Epoch: n.tracker.Current(),
			Seq:   m.Seq,
			From:  s.rt.addrs[idx],
		}
		if err := s.out.Send(m.From, nack); err != nil {
			n.stats.SendErrors++
			s.ctr.sendErrors.Add(1)
		}
		return
	}
	if n.tracker.Observe(m.Epoch) {
		s.restart(n)
	} else if !n.tracker.InSync(m.Epoch) {
		n.stats.StaleDropped++
		s.ctr.staleDropped.Add(1)
		s.free.put(m.Fields)
		return
	}
	if len(m.Fields) != len(n.state) {
		s.free.put(m.Fields) // wrong length: put drops it, GC reclaims
		return               // schema mismatch; drop defensively
	}
	if n.adv != 0 {
		// Byzantine responder: answer with the (pinned) state so the
		// initiator faithfully averages the poison in, but never adopt
		// the merge. Eclipse adversaries flood the reply's membership
		// digest with adversary addresses at age 0, capturing
		// gossip-sampled victims' views.
		if s.rt.cfg.PushOnly {
			s.free.put(m.Fields)
			return
		}
		copy(m.Fields, n.state)
		reply := transport.Message{
			Kind:   transport.KindReply,
			Epoch:  n.tracker.Current(),
			Seq:    m.Seq,
			From:   s.rt.addrs[idx],
			Fields: m.Fields,
		}
		if n.adv == 1+uint8(sim.AdvEclipse) {
			reply.Gossip, reply.GossipAges = s.advGossip, s.advAges
		}
		n.stats.Served++
		s.ctr.served.Add(1)
		if err := s.out.Send(m.From, reply); err != nil {
			n.stats.SendErrors++
			s.ctr.sendErrors.Add(1)
		}
		return
	}
	if s.robustOn {
		// Clamp the peer's primary-field report before it can enter the
		// merge, then run the trimmed-merge gate: a rejected exchange is
		// nacked so the initiator keeps its half too — neither side
		// merges and mass is conserved, exactly the kernel's
		// passive-side semantics.
		rep := s.robust.ClampValue(m.Fields[0])
		m.Fields[0] = rep
		if s.robust.Trim && !n.trim.Admit(rep-n.state[0], s.robust.TrimK) {
			s.ctr.robustRejected.Add(1)
			s.free.put(m.Fields)
			if !s.rt.cfg.PushOnly {
				nack := transport.Message{
					Kind:  transport.KindNack,
					Epoch: n.tracker.Current(),
					Seq:   m.Seq,
					From:  s.rt.addrs[idx],
				}
				if err := s.out.Send(m.From, nack); err != nil {
					n.stats.SendErrors++
					s.ctr.sendErrors.Add(1)
				}
			}
			return
		}
	}
	if s.rt.cfg.PushOnly {
		// No reply to build: merge in place and retire the buffer.
		s.rt.schema.MergeInto(core.State(n.state), core.State(m.Fields))
		n.stateVer++
		n.stats.Served++
		s.ctr.served.Add(1)
		s.free.put(m.Fields)
		return
	}
	// One pass, zero copies: the state adopts the merge and the inbound
	// push buffer becomes the pre-merge reply payload.
	s.rt.schema.MergeExchange(core.State(n.state), core.State(m.Fields))
	n.stateVer++
	n.stats.Served++
	s.ctr.served.Add(1)
	reply := transport.Message{
		Kind:   transport.KindReply,
		Epoch:  n.tracker.Current(),
		Seq:    m.Seq,
		From:   s.rt.addrs[idx],
		Fields: m.Fields,
	}
	if s.rt.cfg.GossipFanout > 0 && n.observes {
		reply.Gossip, reply.GossipAges = n.sampler.AppendDigest(nil, nil, n.rng, s.rt.cfg.GossipFanout)
	}
	if err := s.out.Send(m.From, reply); err != nil {
		n.stats.SendErrors++
		s.ctr.sendErrors.Add(1)
	}
}

// handleReply completes (or aborts, on nack) the node's in-flight
// exchange. Caller holds s.mu and owns m.Fields, which is recycled on
// every path once the merge (if any) is done.
func (s *rshard) handleReply(n *rnode, idx int, m transport.Message) {
	defer s.free.put(m.Fields)
	if n.pendingSeq == 0 || m.Seq != n.pendingSeq {
		// The exchange already timed out; the reply may still be
		// absorbable (mass conservation — see absorbLate).
		s.absorbLate(n, m)
		return
	}
	n.pendingSeq = 0
	if m.Kind == transport.KindNack {
		n.stats.PeerBusy++
		s.ctr.peerBusy.Add(1)
		if s.traceSampled(m.Seq) {
			s.recordTrace(n, idx, m.Seq, TraceNacked, s.rt.now())
		}
		return
	}
	if s.traceSampled(m.Seq) {
		s.recordTrace(n, idx, m.Seq, TraceCompleted, s.rt.now())
	}
	if n.tracker.Observe(m.Epoch) {
		s.restart(n)
		// The reply belongs to the new epoch we just joined; merge it.
	} else if !n.tracker.InSync(m.Epoch) {
		n.stats.StaleDropped++
		s.ctr.staleDropped.Add(1)
		return
	}
	if len(m.Fields) != len(n.state) {
		return
	}
	if n.adv != 0 {
		// Byzantine initiator: the exchange completed, but the merge is
		// silently discarded — the node's report stays pinned.
		n.stats.Replies++
		s.ctr.replies.Add(1)
		return
	}
	if s.robustOn {
		rep := s.robust.ClampValue(m.Fields[0])
		m.Fields[0] = rep
		if s.robust.Trim && !n.trim.Admit(rep-n.state[0], s.robust.TrimK) {
			// Active-side reject: the responder already committed its
			// half when it served the push, so only this node's half is
			// dropped — the kernel's initiator-reject semantics.
			s.ctr.robustRejected.Add(1)
			return
		}
	}
	s.rt.schema.MergeInto(core.State(n.state), core.State(m.Fields))
	n.stateVer++
	n.stats.Replies++
	s.ctr.replies.Add(1)
}

// absorbLate merges a pull reply that arrived after its exchange's
// deadline. The passive peer committed its half of the merge when it
// served the push, so dropping the reply would lose (S_A−S_B)/2 of the
// total aggregate mass (§3.2). The merge is only admissible while it
// still commutes with the abandoned exchange: the node's state must be
// untouched since the deadline armed it (stateVer == lateVer) and no
// new exchange may be in flight (pendingSeq 0, lateSeq not
// superseded). Caller holds s.mu; m.Fields is recycled by the caller.
func (s *rshard) absorbLate(n *rnode, m transport.Message) {
	if m.Kind != transport.KindReply || m.Seq == 0 ||
		m.Seq != n.lateSeq || n.stateVer != n.lateVer || n.pendingSeq != 0 {
		return
	}
	n.lateSeq = 0
	if n.tracker.Observe(m.Epoch) {
		s.restart(n)
		// The reply belongs to the new epoch we just joined; merge it.
	} else if !n.tracker.InSync(m.Epoch) {
		n.stats.StaleDropped++
		s.ctr.staleDropped.Add(1)
		return
	}
	if len(m.Fields) != len(n.state) {
		return
	}
	if n.adv != 0 {
		return
	}
	if s.robustOn {
		rep := s.robust.ClampValue(m.Fields[0])
		m.Fields[0] = rep
		if s.robust.Trim && !n.trim.Admit(rep-n.state[0], s.robust.TrimK) {
			s.ctr.robustRejected.Add(1)
			return
		}
	}
	s.rt.schema.MergeInto(core.State(n.state), core.State(m.Fields))
	n.stateVer++
	n.stats.LateReplies++
	s.ctr.lateReplies.Add(1)
}
