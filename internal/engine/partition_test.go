package engine

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/transport"
)

// memIndex parses the numeric suffix of an in-memory fabric address
// ("mem-7" → 7) so partition filters can split by node index.
func memIndex(addr string) int {
	i, err := strconv.Atoi(strings.TrimPrefix(addr, "mem-"))
	if err != nil {
		return -1
	}
	return i
}

func TestPartitionHeal(t *testing.T) {
	// Split a cluster into two halves, let each converge to its own
	// average, then heal and verify the halves re-merge to the global
	// average — the failure-injection scenario the anti-entropy design
	// exists to survive.
	const size = 16
	c, err := NewCluster(ClusterConfig{
		Size:         size,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i) }, // global mean 7.5
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 15 * time.Millisecond, // cross-cut sends must fail fast
		Seed:         77,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := func(addr string) int { return memIndex(addr) % 2 } // split even/odd endpoints
	c.Fabric().SetFilter(func(from, to string) bool {
		return half(from) == half(to)
	})
	c.Start(context.Background())
	defer c.Stop()

	// Each half converges to its own mean: evens hold values 0,2,..,14
	// (mean 7), odds hold 1,3,..,15 (mean 8). Wait until within-half
	// disagreement vanishes while the global variance stays up.
	deadline := time.Now().Add(8 * time.Second)
	for {
		vals, err := c.Snapshot("avg")
		if err != nil {
			t.Fatal(err)
		}
		var even, odd []float64
		for i, n := range c.Nodes() {
			if memIndex(n.Addr())%2 == 0 {
				even = append(even, vals[i])
			} else {
				odd = append(odd, vals[i])
			}
		}
		if stats.Variance(even) < 1e-6 && stats.Variance(odd) < 1e-6 {
			if math.Abs(stats.Mean(even)-stats.Mean(odd)) < 0.5 {
				t.Fatalf("halves agree (%g vs %g) despite partition",
					stats.Mean(even), stats.Mean(odd))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("halves did not converge under partition: even=%g odd=%g",
				stats.Variance(even), stats.Variance(odd))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Heal and verify global convergence to the average of the two
	// halves' consensuses (mass was conserved inside each half).
	c.Fabric().SetFilter(nil)
	deadline = time.Now().Add(8 * time.Second)
	for {
		v, err := c.Variance("avg")
		if err != nil {
			t.Fatal(err)
		}
		if v < 1e-6 {
			vals, _ := c.Snapshot("avg")
			if got := stats.Mean(vals); math.Abs(got-7.5) > 0.1 {
				t.Fatalf("post-heal mean %g, want ≈ 7.5", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not re-converge after heal (variance %g)", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTotalPartitionThenHeal(t *testing.T) {
	// Cut ALL traffic: estimates freeze, timeouts accumulate, and no
	// goroutine leaks or panics occur; healing resumes convergence.
	c, err := NewCluster(ClusterConfig{
		Size:         8,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i) },
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 10 * time.Millisecond,
		Seed:         78,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Fabric().SetFilter(func(string, string) bool { return false })
	c.Start(context.Background())
	defer c.Stop()

	time.Sleep(100 * time.Millisecond)
	v, err := c.Variance("avg")
	if err != nil {
		t.Fatal(err)
	}
	if v < 1 {
		t.Fatalf("variance %g dropped during total blackout", v)
	}
	var timeouts uint64
	for _, n := range c.Nodes() {
		timeouts += n.Stats().Timeouts
	}
	if timeouts == 0 {
		t.Fatal("no timeouts recorded during blackout")
	}

	c.Fabric().SetFilter(nil)
	if v, ok, _ := c.WaitConverged("avg", 1e-6, 8*time.Second); !ok {
		t.Fatalf("did not converge after heal (variance %g)", v)
	}
}

func TestFabricLatencyClusterStillConverges(t *testing.T) {
	// Nonzero delivery latency violates the paper's zero-time
	// communication assumption; the engine must still converge.
	fabric := transport.NewFabric(
		transport.WithLatency(time.Millisecond, 2*time.Millisecond),
		transport.WithSeed(79),
	)
	c, err := NewCluster(ClusterConfig{
		Size:         10,
		Schema:       core.AverageSchema(),
		Value:        func(i int) float64 { return float64(i) },
		CycleLength:  10 * time.Millisecond,
		ReplyTimeout: 100 * time.Millisecond,
		Fabric:       fabric,
		Seed:         79,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	defer c.Stop()
	if v, ok, _ := c.WaitConverged("avg", 1e-5, 10*time.Second); !ok {
		t.Fatalf("latency cluster stuck at variance %g", v)
	}
}
