//go:build !pooldebug

package engine

// poolDebug reports whether poison-on-put diagnostics are compiled in
// (the pooldebug build tag).
const poolDebug = false

// poolPoisonPut is a no-op in release builds.
func poolPoisonPut([]float64) {}

// poolCheckGet is a no-op in release builds.
func poolCheckGet([]float64) {}
