package engine

import "sync"

// fieldsPool recycles the []float64 Fields buffers that every push and
// reply carries, so the steady-state exchange path allocates nothing.
//
// Ownership protocol (see DESIGN.md, "Allocation budget & buffer
// ownership"):
//
//   - A sender draws a buffer from its pool, fills it and hands it to
//     transport.Endpoint.Send (usually via a Batcher). From that moment
//     the buffer belongs to the transport and, after delivery, to the
//     receiver; the sender must not touch it again.
//   - A receiver owns every Message.Fields it reads from an Inbox. It
//     may mutate the buffer (Schema.MergeExchange turns an inbound push
//     buffer into the outbound reply buffer in place) and must either
//     forward it in another message or return it with put.
//   - A buffer handed to a lossy link (fabric drop, inbox overflow,
//     dead TCP peer) is simply abandoned to the garbage collector; the
//     pool tolerates leaks by construction.
//
// Buffers are fixed-length (the schema's field count). put drops
// buffers of any other length, so frames from a foreign schema can
// never poison the pool.
//
// The shared tier is a sync.Pool so idle buffers are reclaimed across
// GC cycles; each shard (or goroutine-mode node) additionally keeps a
// small lock-free local free list in front of it — see rshard.free —
// because sync.Pool.Put boxes the slice header on every call, which
// would itself be a per-exchange allocation.
type fieldsPool struct {
	n      int
	shared sync.Pool
}

// newFieldsPool returns a pool of length-n buffers.
func newFieldsPool(n int) *fieldsPool {
	return &fieldsPool{n: n}
}

// get returns a length-n buffer with undefined contents.
func (p *fieldsPool) get() []float64 {
	if v := p.shared.Get(); v != nil {
		buf := *(v.(*[]float64))
		poolCheckGet(buf)
		return buf
	}
	return make([]float64, p.n)
}

// put recycles a buffer. Buffers of the wrong length (foreign schema,
// malformed frame) and nil are dropped.
func (p *fieldsPool) put(buf []float64) {
	if len(buf) != p.n {
		return
	}
	poolPoisonPut(buf)
	p.shared.Put(&buf)
}

// localFree is the shard-local tier: a plain stack of free buffers used
// without any synchronization beyond the owner's own lock. It absorbs
// the common case (a shard's own get/put traffic) with zero allocations
// and spills to / refills from the shared pool only when cross-shard
// message flow imbalances it. Spilling is not free — sync.Pool.Put
// boxes the slice header — so cap must exceed the shard's in-flight
// buffer working set (pending exchanges up to the event budget, queued
// batches, inbox backlog) or every exchange pays the box.
type localFree struct {
	pool *fieldsPool
	cap  int
	free [][]float64

	// Traffic counters, plain uint64s bumped under the owner's lock and
	// published to atomic mirrors once per scheduler round (rshard.pub)
	// — the metrics layer never adds an atomic to the per-buffer path.
	gets   uint64 // successful draws from the local tier
	puts   uint64 // recycles into the local tier
	misses uint64 // draws that fell through to the shared pool
}

// newLocalFree sizes a shard-local tier for a shard of n nodes: every
// node can have at most one exchange in flight, so n outstanding
// buffers (plus slack for batch queues and the inbox) bounds what the
// shard can usefully hold; the hard ceiling keeps a 10⁶-node shard's
// list at ~400 kB of headers.
func newLocalFree(pool *fieldsPool, n int) localFree {
	return localFree{pool: pool, cap: min(max(2*n, 1024), 16384)}
}

// get returns a buffer from the local tier, falling back to the shared
// pool.
func (l *localFree) get() []float64 {
	if n := len(l.free); n > 0 {
		l.gets++
		buf := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		poolCheckGet(buf)
		return buf
	}
	l.misses++
	return l.pool.get()
}

// put recycles a buffer into the local tier, spilling to the shared
// pool when full.
func (l *localFree) put(buf []float64) {
	if len(buf) != l.pool.n {
		return
	}
	if len(l.free) < l.cap {
		l.puts++
		poolPoisonPut(buf)
		l.free = append(l.free, buf)
		return
	}
	l.pool.put(buf)
}
