// Package metrics is a dependency-free metrics registry built for the
// engine's hot path: instruments are cache-line-padded atomics (the
// shardCounters pattern), updates never allocate or take locks, and a
// scrape reads only atomics — it can run concurrently with a hundred
// shard workers without stalling any of them.
//
// Two instrument families exist:
//
//   - Owned instruments (Counter, Gauge, Histogram) hold their own
//     padded atomic state. Writers call Inc/Add/Set/Observe directly.
//   - Func instruments (CounterFunc, GaugeFunc) read a value the code
//     already maintains — a shardCounters field, an atomic mirror, a
//     channel length — at scrape time. They add zero work to the hot
//     path, which is how the engine exposes its per-shard counters
//     without double-writing them.
//
// Registration is get-or-create: asking for a series (name + label set)
// that already exists returns the existing instrument, so dynamically
// created components (watch hubs, reopened subsystems) can re-register
// idempotently. A kind conflict on an existing name panics — that is a
// programming error, not an operational condition.
//
// A nil *Registry is valid everywhere: owned constructors return a
// working unregistered instrument and func constructors do nothing, so
// instrumented code runs identically whether or not a registry is
// attached.
package metrics

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a series.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing uint64. The value and its pad
// fill one cache line so independent counters never false-share.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
	_    [56]byte
}

// Set stores x.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Value returns the current value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observe is lock-free: one atomic add for the bucket, one for the
// count, and a CAS loop for the sum (single-writer shards succeed on
// the first try).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records x.
func (h *Histogram) Observe(x float64) {
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets is a latency-flavoured default bucket ladder (seconds),
// spanning 100µs to ~10s in roughly 3× steps.
var DefBuckets = []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// sample is one series inside a family. Exactly one of the value
// sources is set, per the family kind.
type sample struct {
	labels string // pre-rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	cf     func() uint64
	gf     func() float64
	h      *Histogram
	// Pre-rendered per-bucket label strings for histograms, including
	// the le label, so a scrape never formats labels.
	bucketLabels []string
}

type family struct {
	name    string
	help    string
	kind    kind
	samples []*sample
	index   map[string]*sample // labels → sample
}

// Registry holds families of series. All methods are safe for
// concurrent use; scraping holds only a read lock and performs no
// allocation when the caller's buffer has capacity.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup returns (family, sample) for name+labels, creating either as
// needed. Panics on a kind conflict.
func (r *Registry) lookup(name, help string, k kind, labels []Label) (*family, *sample, bool) {
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, index: make(map[string]*sample)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		panic("metrics: " + name + " re-registered with a different kind")
	}
	if s, ok := f.index[rendered]; ok {
		return f, s, false
	}
	s := &sample{labels: rendered}
	f.index[rendered] = s
	f.samples = append(f.samples, s)
	return f, s, true
}

// Counter returns the counter for name+labels, creating it on first
// use. On a nil registry it returns a working unregistered counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return new(Counter)
	}
	_, s, fresh := r.lookup(name, help, kindCounter, labels)
	if fresh {
		s.c = new(Counter)
	}
	if s.c == nil {
		panic("metrics: " + name + " already registered as a counter func")
	}
	return s.c
}

// CounterFunc registers a series whose value is read by fn at scrape
// time. fn must be safe to call concurrently with writers and must not
// block — typically an atomic load. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	_, s, _ := r.lookup(name, help, kindCounter, labels)
	s.cf = fn
}

// Gauge returns the gauge for name+labels, creating it on first use.
// On a nil registry it returns a working unregistered gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	_, s, fresh := r.lookup(name, help, kindGauge, labels)
	if fresh {
		s.g = new(Gauge)
	}
	if s.g == nil {
		panic("metrics: " + name + " already registered as a gauge func")
	}
	return s.g
}

// GaugeFunc registers a gauge series read from fn at scrape time.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	_, s, _ := r.lookup(name, help, kindGauge, labels)
	s.gf = fn
}

// Histogram returns the histogram for name+labels with the given
// bucket bounds (DefBuckets when nil), creating it on first use. On a
// nil registry it returns a working unregistered histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	if r == nil {
		return h
	}
	_, s, fresh := r.lookup(name, help, kindHistogram, labels)
	if fresh {
		s.h = h
		s.bucketLabels = renderBucketLabels(s.labels, bounds)
	}
	return s.h
}

// Names returns the registered family names in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}

// AppendPrometheus appends the registry in Prometheus text exposition
// format (version 0.0.4) and returns the extended buffer. When buf has
// enough capacity the scrape performs zero allocations.
func (r *Registry) AppendPrometheus(buf []byte) []byte {
	if r == nil {
		return buf
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		switch f.kind {
		case kindCounter:
			buf = append(buf, " counter\n"...)
		case kindGauge:
			buf = append(buf, " gauge\n"...)
		case kindHistogram:
			buf = append(buf, " histogram\n"...)
		}
		for _, s := range f.samples {
			switch f.kind {
			case kindCounter:
				buf = append(buf, f.name...)
				buf = append(buf, s.labels...)
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, s.counterValue(), 10)
				buf = append(buf, '\n')
			case kindGauge:
				buf = append(buf, f.name...)
				buf = append(buf, s.labels...)
				buf = append(buf, ' ')
				buf = appendFloat(buf, s.gaugeValue())
				buf = append(buf, '\n')
			case kindHistogram:
				buf = s.h.appendPrometheus(buf, f.name, s.labels, s.bucketLabels)
			}
		}
	}
	return buf
}

// AppendJSON appends the registry as a flat JSON object mapping
// "name{labels}" to its numeric value (histograms contribute _count and
// _sum entries). NaN and ±Inf become null — JSON has no encoding for
// them. Like AppendPrometheus, it allocates nothing when buf has
// capacity.
func (r *Registry) AppendJSON(buf []byte) []byte {
	if r == nil {
		return append(buf, "{}"...)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	buf = append(buf, '{')
	first := true
	comma := func() {
		if !first {
			buf = append(buf, ',')
		}
		first = false
	}
	for _, f := range r.families {
		for _, s := range f.samples {
			switch f.kind {
			case kindCounter:
				comma()
				buf = appendJSONKey(buf, f.name, s.labels, "")
				buf = strconv.AppendUint(buf, s.counterValue(), 10)
			case kindGauge:
				comma()
				buf = appendJSONKey(buf, f.name, s.labels, "")
				buf = appendJSONFloat(buf, s.gaugeValue())
			case kindHistogram:
				comma()
				buf = appendJSONKey(buf, f.name, s.labels, "_count")
				buf = strconv.AppendUint(buf, s.h.Count(), 10)
				comma()
				buf = appendJSONKey(buf, f.name, s.labels, "_sum")
				buf = appendJSONFloat(buf, s.h.Sum())
			}
		}
	}
	buf = append(buf, '}')
	return buf
}

func (s *sample) counterValue() uint64 {
	if s.cf != nil {
		return s.cf()
	}
	return s.c.Value()
}

func (s *sample) gaugeValue() float64 {
	if s.gf != nil {
		return s.gf()
	}
	return s.g.Value()
}

// appendPrometheus renders one histogram series: cumulative buckets,
// then _sum and _count.
func (h *Histogram) appendPrometheus(buf []byte, name, labels string, bucketLabels []string) []byte {
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		buf = append(buf, name...)
		buf = append(buf, "_bucket"...)
		buf = append(buf, bucketLabels[i]...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = appendFloat(buf, h.Sum())
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, h.Count(), 10)
	buf = append(buf, '\n')
	return buf
}

func appendFloat(buf []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func appendJSONFloat(buf []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func appendJSONKey(buf []byte, name, labels, suffix string) []byte {
	buf = append(buf, '"')
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	// Labels contain double quotes; JSON keys escape them.
	for i := 0; i < len(labels); i++ {
		if labels[i] == '"' {
			buf = append(buf, '\\', '"')
		} else {
			buf = append(buf, labels[i])
		}
	}
	buf = append(buf, '"', ':')
	return buf
}

// renderLabels renders a label set as `{k="v",k2="v2"}`, sorted by key
// so equivalent sets are one series. Empty sets render as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := make([]byte, 0, 32)
	out = append(out, '{')
	for i, l := range ls {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, l.Key...)
		out = append(out, '=', '"')
		out = appendEscaped(out, l.Value)
		out = append(out, '"')
	}
	out = append(out, '}')
	return string(out)
}

// renderBucketLabels precomputes the per-bucket label strings for a
// histogram series, merging the series labels with le="bound".
func renderBucketLabels(labels string, bounds []float64) []string {
	out := make([]string, len(bounds)+1)
	for i := 0; i <= len(bounds); i++ {
		le := "+Inf"
		if i < len(bounds) {
			le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
		}
		if labels == "" {
			out[i] = `{le="` + le + `"}`
		} else {
			// `{a="b"}` → `{a="b",le="..."}`
			out[i] = labels[:len(labels)-1] + `,le="` + le + `"}`
		}
	}
	return out
}

func appendEscaped(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\', '"':
			buf = append(buf, '\\', s[i])
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}
