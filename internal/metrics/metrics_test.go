package metrics

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}

	h := r.Histogram("test_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if math.Abs(h.Sum()-5.55) > 1e-12 {
		t.Fatalf("hist sum = %g, want 5.55", h.Sum())
	}

	text := string(r.AppendPrometheus(nil))
	for _, want := range []string{
		"# TYPE test_total counter\ntest_total 5\n",
		"# TYPE test_gauge gauge\ntest_gauge 2.5\n",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		"test_seconds_sum 5.55",
		"test_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestGetOrCreateAndFuncSeries(t *testing.T) {
	r := New()
	a := r.Counter("dup_total", "dup", Label{"shard", "0"})
	b := r.Counter("dup_total", "dup", Label{"shard", "0"})
	if a != b {
		t.Fatal("same series returned distinct counters")
	}
	c := r.Counter("dup_total", "dup", Label{"shard", "1"})
	if a == c {
		t.Fatal("distinct labels shared a counter")
	}

	var src atomic.Uint64
	src.Store(42)
	r.CounterFunc("fn_total", "func counter", src.Load)
	r.GaugeFunc("fn_gauge", "func gauge", func() float64 { return 1.25 })
	text := string(r.AppendPrometheus(nil))
	if !strings.Contains(text, "fn_total 42\n") || !strings.Contains(text, "fn_gauge 1.25\n") {
		t.Fatalf("func series not rendered:\n%s", text)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("dup_total", "now a gauge")
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter does not count")
	}
	g := r.Gauge("x_gauge", "")
	g.Set(3)
	if g.Value() != 3 {
		t.Fatal("nil-registry gauge does not hold")
	}
	h := r.Histogram("x_seconds", "", nil)
	h.Observe(1)
	if h.Count() != 1 {
		t.Fatal("nil-registry histogram does not observe")
	}
	r.CounterFunc("x_fn", "", func() uint64 { return 0 })
	r.GaugeFunc("x_gfn", "", func() float64 { return 0 })
	if got := r.AppendPrometheus(nil); len(got) != 0 {
		t.Fatalf("nil registry rendered %q", got)
	}
	if got := r.Names(); got != nil {
		t.Fatalf("nil registry Names = %v", got)
	}
}

func TestLabelsSortedAndEscaped(t *testing.T) {
	r := New()
	r.Counter("l_total", "", Label{"z", "1"}, Label{"a", `q"uo\te`})
	text := string(r.AppendPrometheus(nil))
	if !strings.Contains(text, `l_total{a="q\"uo\\te",z="1"} 0`) {
		t.Fatalf("label rendering wrong:\n%s", text)
	}
}

func TestNamesSorted(t *testing.T) {
	r := New()
	r.Counter("b_total", "")
	r.Gauge("a_gauge", "")
	r.Histogram("c_seconds", "", nil)
	got := r.Names()
	want := []string{"a_gauge", "b_total", "c_seconds"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestAppendJSON(t *testing.T) {
	r := New()
	r.Counter("j_total", "", Label{"shard", "0"}).Add(7)
	r.Gauge("j_gauge", "").Set(math.NaN())
	h := r.Histogram("j_seconds", "", []float64{1})
	h.Observe(0.5)
	got := string(r.AppendJSON(nil))
	for _, want := range []string{
		`"j_total{shard=\"0\"}":7`,
		`"j_gauge":null`,
		`"j_seconds_count":1`,
		`"j_seconds_sum":0.5`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("JSON missing %q: %s", want, got)
		}
	}
}

// TestMetricsSteadyStateAllocs pins the hot-path contract: instrument
// updates and a warm scrape perform zero allocations. The engine leans
// on this — counters fire per exchange and the ops server scrapes a
// running system.
func TestMetricsSteadyStateAllocs(t *testing.T) {
	r := New()
	c := r.Counter("alloc_total", "", Label{"shard", "0"})
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_seconds", "", nil)
	var src atomic.Uint64
	r.CounterFunc("alloc_fn_total", "", src.Load)
	r.GaugeFunc("alloc_fn_gauge", "", func() float64 { return float64(src.Load()) })

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.01) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op", n)
	}

	buf := make([]byte, 0, 64<<10)
	if n := testing.AllocsPerRun(100, func() { buf = r.AppendPrometheus(buf[:0]) }); n != 0 {
		t.Errorf("AppendPrometheus allocates %.1f/op with warm buffer", n)
	}
	if n := testing.AllocsPerRun(100, func() { buf = r.AppendJSON(buf[:0]) }); n != 0 {
		t.Errorf("AppendJSON allocates %.1f/op with warm buffer", n)
	}
}

// TestConcurrentWritersAndScraper is the -race hammer: shard-like
// writers pound owned instruments while a scraper renders the registry
// and a latecomer re-registers existing series. Run under the CI race
// job (go test -race -short ./...).
func TestConcurrentWritersAndScraper(t *testing.T) {
	r := New()
	const shards = 8
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		lbl := Label{"shard", string(rune('0' + i))}
		c := r.Counter("hammer_total", "", lbl)
		g := r.Gauge("hammer_gauge", "", lbl)
		h := r.Histogram("hammer_seconds", "", nil, lbl)
		var mirror atomic.Uint64
		r.CounterFunc("hammer_fn_total", "", mirror.Load, lbl)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; !stop.Load(); j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j%100) / 1000)
				mirror.Add(1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 0, 64<<10)
		for i := 0; i < 200; i++ {
			buf = r.AppendPrometheus(buf[:0])
			buf = r.AppendJSON(buf[:0])
			// Idempotent re-registration racing the scrape.
			r.Counter("hammer_total", "", Label{"shard", "0"}).Inc()
		}
		stop.Store(true)
	}()
	wg.Wait()
	text := string(r.AppendPrometheus(nil))
	if !strings.Contains(text, "hammer_total{") {
		t.Fatalf("hammer series missing:\n%s", text)
	}
}
