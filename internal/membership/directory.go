package membership

import (
	"fmt"

	"repro/internal/xrand"
)

// Directory samples uniformly from a shared, immutable address table,
// excluding the owner's own slot. Every node of a full-membership
// cluster holds the same table, so N nodes cost one O(N) slice instead
// of the O(N²) of per-node Static peer lists — the difference between a
// 10³-node and a 10⁵-node cluster fitting in memory. The table is
// global knowledge, so Observe/Forget are no-ops and Digest gossips
// nothing; it matches the paper's complete-overlay assumption exactly.
type Directory struct {
	addrs []string
	self  int
}

var _ Sampler = (*Directory)(nil)

// NewDirectory returns node self's view onto the shared table. The
// slice is NOT copied: every node of a cluster shares one backing
// array, which is the point. Callers must not mutate it afterwards.
func NewDirectory(addrs []string, self int) (*Directory, error) {
	if len(addrs) < 2 {
		return nil, fmt.Errorf("membership: directory needs ≥ 2 addresses, got %d", len(addrs))
	}
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("membership: directory self %d out of range [0, %d)", self, len(addrs))
	}
	return &Directory{addrs: addrs, self: self}, nil
}

// Sample implements Sampler: a uniform peer that is never the owner.
func (d *Directory) Sample(rng *xrand.Rand) (string, bool) {
	j := rng.Intn(len(d.addrs) - 1)
	if j >= d.self {
		j++
	}
	return d.addrs[j], true
}

// Observe implements Sampler (no-op: the table is global knowledge).
func (d *Directory) Observe(string, []string, []uint32) {}

// AppendDigest implements Sampler (nothing to gossip: every peer
// already holds the full table).
func (d *Directory) AppendDigest(addrs []string, ages []uint32, _ *xrand.Rand, _ int) ([]string, []uint32) {
	return addrs, ages
}

// Tick implements Sampler (no-op: directory entries do not age).
func (d *Directory) Tick() {}

// Forget implements Sampler (no-op: the table is the configuration).
func (d *Directory) Forget(string) {}
