package membership

import (
	"testing"

	"repro/internal/xrand"
)

func TestDirectoryValidation(t *testing.T) {
	if _, err := NewDirectory([]string{"a"}, 0); err == nil {
		t.Error("1-entry directory accepted")
	}
	if _, err := NewDirectory([]string{"a", "b"}, 2); err == nil {
		t.Error("out-of-range self accepted")
	}
	if _, err := NewDirectory([]string{"a", "b"}, -1); err == nil {
		t.Error("negative self accepted")
	}
}

func TestDirectoryNeverSamplesSelfAndCoversPeers(t *testing.T) {
	addrs := []string{"a", "b", "c", "d", "e"}
	for self := range addrs {
		d, err := NewDirectory(addrs, self)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(uint64(self + 1))
		seen := make(map[string]int)
		for i := 0; i < 2000; i++ {
			addr, ok := d.Sample(rng)
			if !ok {
				t.Fatal("sample failed")
			}
			if addr == addrs[self] {
				t.Fatalf("self %q sampled", addr)
			}
			seen[addr]++
		}
		if len(seen) != len(addrs)-1 {
			t.Fatalf("self=%d: sampled %d distinct peers, want %d", self, len(seen), len(addrs)-1)
		}
		for addr, n := range seen {
			// 2000 draws over 4 peers: expect 500 each; 5σ ≈ 97.
			if n < 300 || n > 700 {
				t.Errorf("self=%d: peer %q drawn %d times, want ≈ 500", self, addr, n)
			}
		}
	}
}

func TestDirectoryNoopHooks(t *testing.T) {
	d, err := NewDirectory([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Observe("x", []string{"y"}, nil)
	d.Tick()
	d.Forget("b")
	if got, gotAges := d.AppendDigest(nil, nil, xrand.New(1), 3); got != nil || gotAges != nil {
		t.Fatalf("AppendDigest = %v / %v, want nil", got, gotAges)
	}
	if addr, ok := d.Sample(xrand.New(2)); !ok || addr != "b" {
		t.Fatalf("Sample = %q/%v after no-op hooks", addr, ok)
	}
}
