package membership

import (
	"fmt"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestViewCapacityClamped(t *testing.T) {
	v := NewView(0)
	if v.Capacity() != 1 {
		t.Fatalf("capacity = %d, want clamped 1", v.Capacity())
	}
}

func TestViewMergeDedupKeepsFresher(t *testing.T) {
	v := NewView(10)
	v.Merge("self", []Entry{{Addr: "a", Age: 5}})
	v.Merge("self", []Entry{{Addr: "a", Age: 2}})
	entries := v.Entries()
	if len(entries) != 1 || entries[0].Age != 2 {
		t.Fatalf("entries = %v, want single a@2", entries)
	}
	// Staler duplicate must not regress the age.
	v.Merge("self", []Entry{{Addr: "a", Age: 9}})
	if got := v.Entries()[0].Age; got != 2 {
		t.Fatalf("age regressed to %d", got)
	}
}

func TestViewMergeExcludesSelfAndEmpty(t *testing.T) {
	v := NewView(10)
	v.Merge("self", []Entry{{Addr: "self", Age: 0}, {Addr: "", Age: 0}, {Addr: "x", Age: 0}})
	if v.Len() != 1 || !v.Contains("x") {
		t.Fatalf("view = %v", v.Entries())
	}
}

func TestViewCapacityEvictsOldest(t *testing.T) {
	v := NewView(3)
	v.Merge("self", []Entry{
		{Addr: "a", Age: 4}, {Addr: "b", Age: 1},
		{Addr: "c", Age: 3}, {Addr: "d", Age: 2},
	})
	if v.Len() != 3 {
		t.Fatalf("len = %d, want 3", v.Len())
	}
	if v.Contains("a") {
		t.Fatal("oldest entry survived capacity eviction")
	}
	addrs := v.Addrs()
	if addrs[0] != "b" {
		t.Fatalf("freshest-first order broken: %v", addrs)
	}
}

func TestViewAgeAll(t *testing.T) {
	v := NewView(5)
	v.Merge("self", []Entry{{Addr: "a", Age: 0}})
	v.AgeAll()
	v.AgeAll()
	if got := v.Entries()[0].Age; got != 2 {
		t.Fatalf("age = %d, want 2", got)
	}
}

func TestViewSampleAndRemove(t *testing.T) {
	rng := xrand.New(1)
	v := NewView(5)
	if _, ok := v.Sample(rng); ok {
		t.Fatal("empty view sampled")
	}
	v.Merge("self", []Entry{{Addr: "a", Age: 0}, {Addr: "b", Age: 0}})
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		addr, ok := v.Sample(rng)
		if !ok {
			t.Fatal("sample failed")
		}
		seen[addr] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("sampling missed entries: %v", seen)
	}
	if !v.Remove("a") || v.Contains("a") {
		t.Fatal("Remove(a) failed")
	}
	if v.Remove("zzz") {
		t.Fatal("Remove of absent address returned true")
	}
}

func TestViewDigest(t *testing.T) {
	rng := xrand.New(2)
	v := NewView(10)
	v.Merge("self", []Entry{{Addr: "a", Age: 0}, {Addr: "b", Age: 1}, {Addr: "c", Age: 2}})
	d := v.Digest(rng, 2)
	if len(d) != 2 {
		t.Fatalf("digest len = %d", len(d))
	}
	if d[0].Addr == d[1].Addr {
		t.Fatal("digest returned duplicates")
	}
	if got := v.Digest(rng, 99); len(got) != 3 {
		t.Fatalf("oversize digest len = %d, want clamped 3", len(got))
	}
	if got := v.Digest(rng, 0); got != nil {
		t.Fatalf("zero digest = %v, want nil", got)
	}
}

func TestStaticSampler(t *testing.T) {
	if _, err := NewStatic(nil); err != ErrNoPeers {
		t.Fatalf("empty peers err = %v", err)
	}
	s, err := NewStatic([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		addr, ok := s.Sample(rng)
		if !ok {
			t.Fatal("sample failed")
		}
		counts[addr]++
	}
	for _, a := range []string{"a", "b", "c"} {
		if counts[a] < 800 {
			t.Fatalf("address %s sampled %d/3000; not uniform", a, counts[a])
		}
	}
	s.Observe("zzz", nil, nil) // no-op
	s.Tick()                   // no-op
	s.Forget("a")              // no-op
	d, dAges := s.AppendDigest(nil, nil, rng, 2)
	if len(d) != 2 || len(dAges) != 2 {
		t.Fatalf("digest = %v / %v", d, dAges)
	}
	if d[0] == d[1] {
		t.Fatal("digest returned duplicates")
	}
	if all, _ := s.AppendDigest(nil, nil, rng, 99); len(all) != 3 {
		t.Fatalf("oversize digest len = %d, want clamped 3", len(all))
	}
}

func TestStaticAppendDigestAllocs(t *testing.T) {
	s, err := NewStatic([]string{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	addrs := make([]string, 0, 8)
	ages := make([]uint32, 0, 8)
	if n := testing.AllocsPerRun(1000, func() {
		addrs, ages = s.AppendDigest(addrs[:0], ages[:0], rng, 3)
	}); n != 0 {
		t.Fatalf("AppendDigest allocs = %v, want 0", n)
	}
}

func TestStaticSamplerCopiesInput(t *testing.T) {
	peers := []string{"a", "b"}
	s, err := NewStatic(peers)
	if err != nil {
		t.Fatal(err)
	}
	peers[0] = "mutated"
	rng := xrand.New(4)
	for i := 0; i < 50; i++ {
		if addr, _ := s.Sample(rng); addr == "mutated" {
			t.Fatal("sampler aliased the caller's slice")
		}
	}
}

func TestGossipSamplerBootstrap(t *testing.T) {
	if _, err := NewGossipSampler("self", 5, nil); err != ErrNoPeers {
		t.Fatalf("err = %v, want ErrNoPeers", err)
	}
	if _, err := NewGossipSampler("self", 5, []string{"self"}); err != ErrNoPeers {
		t.Fatalf("self-only seed err = %v, want ErrNoPeers", err)
	}
	g, err := NewGossipSampler("self", 5, []string{"seed1"})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	addr, ok := g.Sample(rng)
	if !ok || addr != "seed1" {
		t.Fatalf("sample = %q, %v", addr, ok)
	}
}

func TestGossipSamplerObserveAndForget(t *testing.T) {
	g, err := NewGossipSampler("self", 4, []string{"seed"})
	if err != nil {
		t.Fatal(err)
	}
	g.Tick() // a round passes before any traffic arrives
	g.Observe("p1", []string{"p2", "p3"}, nil)
	view := g.ViewAddrs()
	if len(view) != 4 {
		t.Fatalf("view = %v, want 4 entries", view)
	}
	// Sender p1 entered at age 0, so it must be freshest.
	if view[0] != "p1" {
		t.Fatalf("freshest = %q, want p1", view[0])
	}
	g.Forget("p2")
	for _, a := range g.ViewAddrs() {
		if a == "p2" {
			t.Fatal("forgotten peer still present")
		}
	}
}

func TestGossipSamplerEvictsStaleUnderChurn(t *testing.T) {
	g, err := NewGossipSampler("self", 3, []string{"dead"})
	if err != nil {
		t.Fatal(err)
	}
	// One gossip round per fresh arrival: the dead seed is never
	// refreshed, so it ages every Tick and must lose to the younger
	// entries once the view fills.
	for i := 0; i < 10; i++ {
		g.Tick()
		g.Observe(fmt.Sprintf("live%d", i), nil, nil)
	}
	for _, a := range g.ViewAddrs() {
		if a == "dead" {
			t.Fatal("stale seed survived 10 rounds of fresh observations with capacity 3")
		}
	}
	if g.ForgottenTotal() != 0 {
		t.Fatalf("capacity eviction counted as Forget: %d", g.ForgottenTotal())
	}
}

func TestGossipSamplerAgesPerRoundNotPerMessage(t *testing.T) {
	// Regression for the sampler-lifecycle bug: Observe used to call
	// view.AgeAll() per incoming message, so at heap-runtime rates
	// (10⁵+ msgs/s) a live peer not mentioned in the last handful of
	// digests aged out of a capacity-8 view within milliseconds. Aging
	// is now driven by Tick, once per gossip round.
	g, err := NewGossipSampler("self", 8, []string{"stable"})
	if err != nil {
		t.Fatal(err)
	}
	senders := []string{"p0", "p1", "p2"}
	for i := 0; i < 100000; i++ {
		g.Observe(senders[i%len(senders)], nil, nil)
	}
	// "stable" was seeded at age 0 and never re-observed; with zero
	// ticks it must still be present at age 0 despite 10⁵ messages.
	age, found := uint32(0), false
	for _, e := range g.view.Entries() {
		if e.Addr == "stable" {
			age, found = e.Age, true
		}
	}
	if !found {
		t.Fatal("unrefreshed live peer evicted by message volume alone")
	}
	if age != 0 {
		t.Fatalf("age = %d after 0 ticks, want 0", age)
	}
	g.Tick()
	g.Tick()
	g.Tick()
	for _, e := range g.view.Entries() {
		if e.Addr == "stable" && e.Age != 3 {
			t.Fatalf("age = %d after 3 ticks, want 3", e.Age)
		}
	}
}

func TestGossipSamplerEclipseFloodBounded(t *testing.T) {
	// Regression for the eclipse-hardening budget, at the message rates
	// of the heap runtime (cf. the per-round aging regression above):
	// before the per-sender insertion cap, one adversary digest of age-0
	// colluding addresses replaced the whole capacity-8 view, and 10⁵
	// such messages between ticks kept it replaced. Now a single sender
	// may insert at most capacity/2 unknown addresses per round, however
	// many messages it sends.
	g, err := NewGossipSampler("self", 8, []string{"h0"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		g.Observe(fmt.Sprintf("h%d", i), nil, nil)
	}
	g.Tick()
	evil := make([]string, 20)
	zero := make([]uint32, 20)
	for i := range evil {
		evil[i] = fmt.Sprintf("evil-%d", i)
	}
	for i := 0; i < 100000; i++ {
		g.Observe("evil-sender", evil, zero)
	}
	evilCount, honestCount := 0, 0
	for _, a := range g.ViewAddrs() {
		if len(a) >= 4 && a[:4] == "evil" {
			evilCount++
		} else {
			honestCount++
		}
	}
	// Sender (first-hand, unbudgeted) + capacity/2 digest insertions.
	if evilCount > 1+4 {
		t.Fatalf("eclipse flood captured %d of %d view slots, want ≤ 5", evilCount, 8)
	}
	if honestCount < 3 {
		t.Fatalf("only %d honest entries survived the flood, want ≥ 3", honestCount)
	}
	if g.InsertsDroppedTotal() == 0 {
		t.Fatal("flood rejected no digest entries")
	}
	// A new round replenishes the budget — but only one round's worth.
	g.Tick()
	g.Observe("evil-sender", evil, zero)
	evilCount = 0
	for _, a := range g.ViewAddrs() {
		if len(a) >= 4 && a[:4] == "evil" {
			evilCount++
		}
	}
	if evilCount > 1+4+4 {
		t.Fatalf("second-round flood captured %d slots, want ≤ 9-capped-at-capacity", evilCount)
	}
}

func TestGossipSamplerAppendDigest(t *testing.T) {
	g, err := NewGossipSampler("self", 8, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(6)
	d, dAges := g.AppendDigest(nil, nil, rng, 3)
	if len(d) != 3 || len(dAges) != 3 {
		t.Fatalf("digest len = %d/%d", len(d), len(dAges))
	}
	seen := map[string]bool{}
	for _, a := range d {
		if seen[a] {
			t.Fatal("digest contains duplicates")
		}
		seen[a] = true
	}
	// Append semantics: existing contents are preserved.
	d2, ages2 := g.AppendDigest([]string{"keep"}, []uint32{9}, rng, 2)
	if d2[0] != "keep" || ages2[0] != 9 || len(d2) != 3 {
		t.Fatalf("append clobbered prefix: %v %v", d2, ages2)
	}
}

func TestGossipSamplerHotPathAllocs(t *testing.T) {
	g, err := NewGossipSampler("self", 8, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	senders := []string{"p0", "p1", "p2", "p3"}
	inAddrs := []string{"x", "y"}
	inAges := []uint32{0, 2}
	dAddrs := make([]string, 0, 8)
	dAges := make([]uint32, 0, 8)
	i := 0
	step := func() {
		g.Observe(senders[i%len(senders)], inAddrs, inAges)
		dAddrs, dAges = g.AppendDigest(dAddrs[:0], dAges[:0], rng, 3)
		g.Tick()
		i++
	}
	for w := 0; w < 16; w++ {
		step() // fill the view and grow merge scratch to steady state
	}
	if n := testing.AllocsPerRun(1000, step); n != 0 {
		t.Fatalf("Observe/AppendDigest/Tick allocs = %v, want 0", n)
	}
}

func TestSimValidation(t *testing.T) {
	rng := xrand.New(7)
	if _, err := NewSim(2, 5, rng); err == nil {
		t.Error("n = 2 accepted")
	}
	if _, err := NewSim(10, 1, rng); err == nil {
		t.Error("capacity = 1 accepted")
	}
}

func TestSimStaysConnected(t *testing.T) {
	rng := xrand.New(8)
	s, err := NewSim(200, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 30; c++ {
		s.Cycle()
		if !s.Connected() {
			t.Fatalf("overlay disconnected at cycle %d", c)
		}
	}
}

func TestSimViewsFill(t *testing.T) {
	rng := xrand.New(9)
	s, err := NewSim(100, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 20; c++ {
		s.Cycle()
	}
	for i := 0; i < 100; i++ {
		if got := s.View(i).Len(); got < 8 {
			t.Fatalf("node %d view has %d entries after 20 cycles, want ≥ 8", i, got)
		}
	}
}

func TestSimInDegreeBalanced(t *testing.T) {
	// Newscast keeps in-degrees concentrated: no node should be absent
	// from every view and no node should dominate.
	rng := xrand.New(10)
	s, err := NewSim(300, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 40; c++ {
		s.Cycle()
	}
	deg := s.InDegrees()
	vals := make([]float64, len(deg))
	for i, d := range deg {
		vals[i] = float64(d)
		if d == 0 {
			t.Fatalf("node %d vanished from every view", i)
		}
	}
	mean := stats.Mean(vals)
	_, maxDeg := stats.MinMax(vals)
	if maxDeg > 6*mean {
		t.Fatalf("hotspot: max in-degree %.0f vs mean %.1f", maxDeg, mean)
	}
}

func TestSimDeadNodeEvicted(t *testing.T) {
	rng := xrand.New(11)
	s, err := NewSim(100, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 10; c++ {
		s.Cycle()
	}
	s.Kill(42)
	for c := 0; c < 60; c++ {
		s.Cycle()
	}
	deg := s.InDegrees()
	if deg[42] > 3 {
		t.Fatalf("dead node still referenced by %d views after 60 cycles", deg[42])
	}
	if !s.Connected() {
		t.Fatal("overlay lost connectivity after a single death")
	}
}
