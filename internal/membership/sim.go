package membership

import (
	"fmt"

	"repro/internal/xrand"
)

// Sim is a cycle-driven peer-sampling simulation over n logical nodes,
// used to verify the properties anti-entropy aggregation needs from its
// membership layer: the overlay stays connected, in-degrees stay
// balanced (no hotspots), and entries of departed nodes are evicted.
//
// The exchange is a CYCLON-style shuffle: each node contacts the oldest
// entry of its view and the two swap a bounded random sample of
// references, handing entries over rather than replicating them. Unlike
// naive full-view merging (which lets popular descriptors replicate until
// a few hubs dominate every view), the shuffle conserves the reference
// count per node, so the in-degree distribution stays concentrated around
// the view capacity.
type Sim struct {
	rng     *xrand.Rand
	views   []*View
	alive   []bool
	shuffle int // sample size per exchange
}

// NewSim builds a simulation of n nodes with the given view capacity,
// bootstrapped on a ring so the initial overlay is minimally connected
// (the interesting question is whether gossip randomizes it).
func NewSim(n, capacity int, rng *xrand.Rand) (*Sim, error) {
	if n < 3 {
		return nil, fmt.Errorf("membership: sim needs n ≥ 3, got %d", n)
	}
	if capacity < 2 {
		return nil, fmt.Errorf("membership: sim needs capacity ≥ 2, got %d", capacity)
	}
	s := &Sim{
		rng:     rng,
		views:   make([]*View, n),
		alive:   make([]bool, n),
		shuffle: max(1, capacity/2),
	}
	for i := 0; i < n; i++ {
		v := NewView(capacity)
		v.Merge(addrOf(i), []Entry{
			{Addr: addrOf((i + 1) % n), Age: 0},
			{Addr: addrOf((i + n - 1) % n), Age: 0},
		})
		s.views[i] = v
		s.alive[i] = true
	}
	return s, nil
}

// addrOf renders node index i as its simulated address.
func addrOf(i int) string { return fmt.Sprintf("n%d", i) }

// indexOf parses a simulated address back to a node index.
func indexOf(addr string) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(addr, "n%d", &i); err != nil {
		return 0, false
	}
	return i, true
}

// Cycle performs one shuffle round: every live node ages its view,
// contacts its oldest reference and swaps a bounded sample with it. Dead
// partners are simply dropped from the view — the self-healing path.
func (s *Sim) Cycle() {
	for i, v := range s.views {
		if !s.alive[i] {
			continue
		}
		v.AgeAll()
		partner, ok := v.Oldest()
		if !ok {
			continue
		}
		j, parsed := indexOf(partner.Addr)
		if !parsed || j == i {
			v.Remove(partner.Addr)
			continue
		}
		if !s.alive[j] {
			v.Remove(partner.Addr) // contact failed: evict the dead peer
			continue
		}
		s.exchange(i, j, partner.Addr)
	}
}

// exchange swaps samples between initiator i and partner j. The initiator
// spends its reference to j (replaced by a fresh self-descriptor heading
// the sample), so references move instead of multiplying.
func (s *Sim) exchange(i, j int, partnerAddr string) {
	vi, vj := s.views[i], s.views[j]

	// Initiator's sample: fresh self-descriptor plus up to shuffle-1
	// random other entries; the entry for the partner itself is spent.
	vi.Remove(partnerAddr)
	sampleI := []Entry{{Addr: addrOf(i), Age: 0}}
	sampleI = append(sampleI, vi.Digest(s.rng, s.shuffle-1)...)

	// Partner's sample: up to shuffle random entries of its view.
	sampleJ := vj.Digest(s.rng, s.shuffle)

	s.absorb(j, sampleI, sampleJ)
	s.absorb(i, sampleJ, sampleI)
}

// absorb folds the received sample into node idx's view: new addresses
// fill free slots first, then overwrite entries the node just shipped out
// (the hand-over that conserves reference counts). Entries for the node
// itself or for addresses already present are skipped.
func (s *Sim) absorb(idx int, received, sent []Entry) {
	v := s.views[idx]
	self := addrOf(idx)
	spend := 0
	for _, e := range received {
		if e.Addr == self || v.Contains(e.Addr) {
			continue
		}
		if v.Add(e) {
			continue
		}
		// View full: hand over a slot that held an entry we sent.
		for spend < len(sent) {
			victim := sent[spend].Addr
			spend++
			if victim != e.Addr && v.Replace(victim, e) {
				break
			}
		}
	}
}

// Kill marks a node dead; its view stops participating and its entries
// should be evicted from the others' views as contacts fail.
func (s *Sim) Kill(i int) { s.alive[i] = false }

// InDegrees returns, for every node, how many live views contain it — the
// balance statistic peer-sampling literature tracks.
func (s *Sim) InDegrees() []int {
	deg := make([]int, len(s.views))
	for i, v := range s.views {
		if !s.alive[i] {
			continue
		}
		for _, e := range v.Entries() {
			if j, ok := indexOf(e.Addr); ok {
				deg[j]++
			}
		}
	}
	return deg
}

// View returns node i's view (for inspection in tests).
func (s *Sim) View(i int) *View { return s.views[i] }

// Connected reports whether the overlay induced by live views is weakly
// connected across live nodes.
func (s *Sim) Connected() bool {
	n := len(s.views)
	adj := make([][]int, n)
	for i, v := range s.views {
		if !s.alive[i] {
			continue
		}
		for _, e := range v.Entries() {
			if j, ok := indexOf(e.Addr); ok && s.alive[j] {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i) // weak connectivity
			}
		}
	}
	start := -1
	total := 0
	for i, a := range s.alive {
		if a {
			total++
			if start < 0 {
				start = i
			}
		}
	}
	if total == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == total
}
