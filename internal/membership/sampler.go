package membership

import (
	"errors"
	"sync"

	"repro/internal/xrand"
)

// Sampler is the neighbor-selection interface the asynchronous engine
// consumes: one random peer per exchange, plus hooks to learn addresses
// from observed traffic and to emit a digest for piggybacked membership
// gossip. Implementations must be safe for concurrent use.
type Sampler interface {
	// Sample returns a uniformly random known peer; ok is false when no
	// peer is known yet.
	Sample(rng *xrand.Rand) (addr string, ok bool)
	// Observe feeds peer addresses learned from incoming messages (the
	// sender plus its piggybacked digest).
	Observe(addrs ...string)
	// Digest returns up to k addresses to piggyback on an outgoing
	// message.
	Digest(rng *xrand.Rand, k int) []string
	// Forget drops an address observed to be dead.
	Forget(addr string)
}

// ErrNoPeers is returned by constructors handed an empty peer set.
var ErrNoPeers = errors.New("membership: no peers")

// Static samples from a fixed peer list — the engine's equivalent of a
// fixed overlay topology. Observe and Forget are no-ops: the list is the
// configuration.
type Static struct {
	mu    sync.RWMutex
	addrs []string
}

var _ Sampler = (*Static)(nil)

// NewStatic returns a sampler over a copy of addrs.
func NewStatic(addrs []string) (*Static, error) {
	if len(addrs) == 0 {
		return nil, ErrNoPeers
	}
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return &Static{addrs: cp}, nil
}

// Sample implements Sampler.
func (s *Static) Sample(rng *xrand.Rand) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.addrs) == 0 {
		return "", false
	}
	return s.addrs[rng.Intn(len(s.addrs))], true
}

// Observe implements Sampler (no-op for a static peer list).
func (s *Static) Observe(...string) {}

// Digest implements Sampler.
func (s *Static) Digest(rng *xrand.Rand, k int) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.addrs)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	idx := rng.SampleDistinct(n, k, -1)
	out := make([]string, 0, k)
	for _, i := range idx {
		out = append(out, s.addrs[i])
	}
	return out
}

// Forget implements Sampler (no-op: static configuration is never pruned).
func (s *Static) Forget(string) {}

// GossipSampler maintains a Newscast-style view fed by piggybacked
// membership gossip: every observed sender enters at age 0, digests enter
// at age 1, and each observation round ages existing entries so dead
// peers wash out of the view.
type GossipSampler struct {
	self string

	mu   sync.Mutex
	view *View
}

var _ Sampler = (*GossipSampler)(nil)

// NewGossipSampler returns a sampler for the node at self, bootstrapped
// from seeds (at least one seed is required so the node can reach the
// network).
func NewGossipSampler(self string, capacity int, seeds []string) (*GossipSampler, error) {
	v := NewView(capacity)
	incoming := make([]Entry, 0, len(seeds))
	for _, s := range seeds {
		incoming = append(incoming, Entry{Addr: s, Age: 0})
	}
	v.Merge(self, incoming)
	if v.Len() == 0 {
		return nil, ErrNoPeers
	}
	return &GossipSampler{self: self, view: v}, nil
}

// Sample implements Sampler.
func (g *GossipSampler) Sample(rng *xrand.Rand) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view.Sample(rng)
}

// Observe implements Sampler: the first address (the message sender) is
// inserted fresh, the rest (its digest) one exchange old, and the whole
// view ages by one round.
func (g *GossipSampler) Observe(addrs ...string) {
	if len(addrs) == 0 {
		return
	}
	incoming := make([]Entry, 0, len(addrs))
	for i, a := range addrs {
		age := uint32(1)
		if i == 0 {
			age = 0
		}
		incoming = append(incoming, Entry{Addr: a, Age: age})
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.view.AgeAll()
	g.view.Merge(g.self, incoming)
}

// Digest implements Sampler.
func (g *GossipSampler) Digest(rng *xrand.Rand, k int) []string {
	g.mu.Lock()
	entries := g.view.Digest(rng, k)
	g.mu.Unlock()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Addr
	}
	return out
}

// Forget implements Sampler.
func (g *GossipSampler) Forget(addr string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.view.Remove(addr)
}

// ViewAddrs returns the current view contents (diagnostics and tests).
func (g *GossipSampler) ViewAddrs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view.Addrs()
}
