package membership

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/xrand"
)

// Sampler is the neighbor-selection interface the asynchronous engine
// consumes: one random peer per exchange, plus hooks to learn addresses
// from observed traffic and to emit a digest for piggybacked membership
// gossip. Implementations must be safe for concurrent use.
type Sampler interface {
	// Sample returns a uniformly random known peer; ok is false when no
	// peer is known yet.
	Sample(rng *xrand.Rand) (addr string, ok bool)
	// Observe feeds addresses learned from one incoming message: from is
	// the sender (freshest possible information, age 0) and addrs/ages
	// its piggybacked digest. ages may be nil or shorter than addrs, in
	// which case missing entries count as one exchange old. Observe must
	// not retain addrs or ages and must not allocate in steady state —
	// it sits on the per-message hot path.
	Observe(from string, addrs []string, ages []uint32)
	// AppendDigest appends up to k peers (with their ages) to addrs/ages
	// and returns the extended slices, in the append-style of the
	// transport codecs so callers can reuse buffers across exchanges.
	AppendDigest(addrs []string, ages []uint32, rng *xrand.Rand, k int) ([]string, []uint32)
	// Tick advances the sampler's notion of time by one gossip round
	// (one Δt cycle). Entry aging happens here — NOT per message — so
	// view lifetimes are measured in rounds regardless of message rate.
	Tick()
	// Forget drops an address observed to be dead (send failure or
	// exchange timeout).
	Forget(addr string)
}

// ErrNoPeers is returned by constructors handed an empty peer set.
var ErrNoPeers = errors.New("membership: no peers")

// Static samples from a fixed peer list — the engine's equivalent of a
// fixed overlay topology. Observe, Tick and Forget are no-ops: the list
// is the configuration.
type Static struct {
	mu    sync.RWMutex
	addrs []string
}

var _ Sampler = (*Static)(nil)

// NewStatic returns a sampler over a copy of addrs.
func NewStatic(addrs []string) (*Static, error) {
	if len(addrs) == 0 {
		return nil, ErrNoPeers
	}
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return &Static{addrs: cp}, nil
}

// Sample implements Sampler.
func (s *Static) Sample(rng *xrand.Rand) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.addrs) == 0 {
		return "", false
	}
	return s.addrs[rng.Intn(len(s.addrs))], true
}

// Observe implements Sampler (no-op for a static peer list).
func (s *Static) Observe(string, []string, []uint32) {}

// AppendDigest implements Sampler. Static entries carry no age
// information, so every appended age is 0.
func (s *Static) AppendDigest(addrs []string, ages []uint32, rng *xrand.Rand, k int) ([]string, []uint32) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.addrs)
	if k > n {
		k = n
	}
	if k <= 0 {
		return addrs, ages
	}
	if k == n {
		for _, a := range s.addrs {
			addrs = append(addrs, a)
			ages = append(ages, 0)
		}
		return addrs, ages
	}
	if n <= 64 {
		// Rejection sampling over a bitmask: alloc-free for the small
		// peer lists that ride the hot path (cf. xrand.SampleDistinct,
		// which allocates its bookkeeping).
		var picked uint64
		for c := 0; c < k; {
			i := rng.Intn(n)
			if picked&(1<<uint(i)) != 0 {
				continue
			}
			picked |= 1 << uint(i)
			addrs = append(addrs, s.addrs[i])
			ages = append(ages, 0)
			c++
		}
		return addrs, ages
	}
	for _, i := range rng.SampleDistinct(n, k, -1) {
		addrs = append(addrs, s.addrs[i])
		ages = append(ages, 0)
	}
	return addrs, ages
}

// Tick implements Sampler (no-op: static entries do not age).
func (s *Static) Tick() {}

// Forget implements Sampler (no-op: static configuration is never pruned).
func (s *Static) Forget(string) {}

// maxRoundSenders bounds the per-round sender-budget table. Honest
// nodes hear from a handful of distinct senders per gossip round;
// a flood from more addresses than this lands in a shared overflow
// budget, which is exactly the conservative treatment a spray deserves.
const maxRoundSenders = 64

// senderBudget tracks how many previously-unknown addresses one sender
// has inserted into the view this round. Senders are identified by
// address hash; a collision merely shares a budget (conservative).
type senderBudget struct {
	hash uint64
	used int
}

// GossipSampler maintains a Newscast-style view fed by piggybacked
// membership gossip: every observed sender enters at age 0, digest
// entries enter one hop older than the sender knew them, and Tick ages
// the whole view once per gossip round so dead peers wash out while live
// peers are continually refreshed by traffic.
//
// Eclipse hardening: a single sender may insert at most capacity/2
// previously-unknown addresses per gossip round. An attacker flooding
// age-0 digests of colluding addresses can therefore replace at most
// half a victim's view per round and per adversary contact, instead of
// wiping it with one message — honest traffic keeps re-inserting real
// peers in the meantime. The sender's own address is first-hand
// evidence and is never budgeted; neither are age refreshes of
// addresses already in the view.
type GossipSampler struct {
	self string

	mu        sync.Mutex
	view      *View
	scratch   []Entry
	insertCap int
	round     []senderBudget // per-sender budgets, reset by Tick
	overflow  senderBudget   // shared budget once round is full

	// Lock-free mirrors for telemetry scrapes (see engine metrics
	// registration): the gauge/counter readers must not contend with the
	// per-message Observe path.
	viewLen    atomic.Int64
	observed   atomic.Uint64
	forgotten  atomic.Uint64
	ticks      atomic.Uint64
	overBudget atomic.Uint64
}

var _ Sampler = (*GossipSampler)(nil)

// NewGossipSampler returns a sampler for the node at self, bootstrapped
// from seeds (at least one seed is required so the node can reach the
// network).
func NewGossipSampler(self string, capacity int, seeds []string) (*GossipSampler, error) {
	v := NewView(capacity)
	incoming := make([]Entry, 0, len(seeds))
	for _, s := range seeds {
		incoming = append(incoming, Entry{Addr: s, Age: 0})
	}
	v.Merge(self, incoming)
	if v.Len() == 0 {
		return nil, ErrNoPeers
	}
	insertCap := capacity / 2
	if insertCap < 1 {
		insertCap = 1
	}
	g := &GossipSampler{self: self, view: v, insertCap: insertCap}
	g.viewLen.Store(int64(v.Len()))
	return g, nil
}

// budgetFor returns the round budget for a sender, creating it on first
// use. Must be called with mu held.
func (g *GossipSampler) budgetFor(from string) *senderBudget {
	h := addrHash(from)
	for i := range g.round {
		if g.round[i].hash == h {
			return &g.round[i]
		}
	}
	if len(g.round) < maxRoundSenders {
		g.round = append(g.round, senderBudget{hash: h})
		return &g.round[len(g.round)-1]
	}
	return &g.overflow
}

// Sample implements Sampler.
func (g *GossipSampler) Sample(rng *xrand.Rand) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view.Sample(rng)
}

// Observe implements Sampler: the sender is inserted fresh (age 0) and
// each digest entry one hop older than the peer advertised it. Aging is
// Tick's job, not Observe's — at heap-runtime rates (10⁵+ msgs/s) aging
// per message would push live peers past any capacity-8 view within
// milliseconds.
func (g *GossipSampler) Observe(from string, addrs []string, ages []uint32) {
	if from == "" && len(addrs) == 0 {
		return
	}
	g.mu.Lock()
	inc := g.scratch[:0]
	if from != "" {
		inc = append(inc, Entry{Addr: from, Age: 0}) // first-hand; never budgeted
	}
	var budget *senderBudget
	dropped := uint64(0)
	for i, a := range addrs {
		if a == "" || a == g.self {
			continue
		}
		if g.view.indexOf(a) < 0 {
			// Previously unknown: charge the sender's round budget. The
			// lookup is lazy so digests that only refresh known peers
			// (the steady state) never touch the budget table.
			if budget == nil {
				budget = g.budgetFor(from)
			}
			if budget.used >= g.insertCap {
				dropped++
				continue
			}
			budget.used++
		}
		age := uint32(1)
		if i < len(ages) && ages[i] < ^uint32(0) {
			age = ages[i] + 1
		}
		inc = append(inc, Entry{Addr: a, Age: age})
	}
	g.view.Merge(g.self, inc)
	g.scratch = inc[:0]
	g.viewLen.Store(int64(g.view.Len()))
	g.mu.Unlock()
	g.observed.Add(1)
	if dropped != 0 {
		g.overBudget.Add(dropped)
	}
}

// AppendDigest implements Sampler.
func (g *GossipSampler) AppendDigest(addrs []string, ages []uint32, rng *xrand.Rand, k int) ([]string, []uint32) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view.AppendDigest(addrs, ages, rng, k)
}

// Tick implements Sampler: ages every entry by one gossip round and
// resets the per-sender insertion budgets.
func (g *GossipSampler) Tick() {
	g.mu.Lock()
	g.view.AgeAll()
	g.round = g.round[:0]
	g.overflow.used = 0
	g.mu.Unlock()
	g.ticks.Add(1)
}

// Forget implements Sampler.
func (g *GossipSampler) Forget(addr string) {
	g.mu.Lock()
	removed := g.view.Remove(addr)
	if removed {
		g.viewLen.Store(int64(g.view.Len()))
	}
	g.mu.Unlock()
	if removed {
		g.forgotten.Add(1)
	}
}

// ViewSize returns the current view occupancy without taking the view
// lock — safe to call from telemetry scrape paths.
func (g *GossipSampler) ViewSize() int { return int(g.viewLen.Load()) }

// ObservedTotal returns the number of Observe calls that fed the view
// (one per incoming message carrying membership information).
func (g *GossipSampler) ObservedTotal() uint64 { return g.observed.Load() }

// ForgottenTotal returns the number of addresses dropped as dead.
func (g *GossipSampler) ForgottenTotal() uint64 { return g.forgotten.Load() }

// InsertsDroppedTotal returns the number of digest entries refused
// because their sender exhausted its per-round insertion budget — a
// sustained non-zero rate is the signature of a digest-flooding
// eclipse attempt.
func (g *GossipSampler) InsertsDroppedTotal() uint64 { return g.overBudget.Load() }

// ViewAddrs returns the current view contents (diagnostics and tests).
func (g *GossipSampler) ViewAddrs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view.Addrs()
}
