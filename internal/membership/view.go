// Package membership provides the peer-sampling substrate the paper
// assumes: "each node has a neighbor set … the protocol can be used along
// with any membership management protocol" (§1.2), citing Newscast-style
// protocols that maintain approximately random views. This package
// implements a Newscast-flavored partial view (fixed capacity, freshest
// entries win), thread-safe samplers for the asynchronous engine, and a
// cycle-driven simulation used to property-test the randomness and
// self-healing of the resulting overlay.
package membership

import (
	"cmp"
	"slices"

	"repro/internal/xrand"
)

// Entry is one view slot: a peer address and a logical age (0 = freshest).
type Entry struct {
	// Addr is the peer's transport address.
	Addr string
	// Age counts exchanges since the entry was created by its subject;
	// older entries are evicted first, which is how dead peers wash out.
	Age uint32
}

// View is a fixed-capacity partial view of the network, ordered freshest
// first. The zero value is not valid; use NewView. View is not
// goroutine-safe; see GossipSampler for the locked wrapper.
type View struct {
	capacity int
	entries  []Entry
	// nonce varies the age tie-break across merges; see Merge.
	nonce uint64
}

// NewView returns an empty view holding at most capacity entries
// (capacity ≥ 1; smaller values are clamped to 1).
func NewView(capacity int) *View {
	if capacity < 1 {
		capacity = 1
	}
	return &View{capacity: capacity, entries: make([]Entry, 0, capacity)}
}

// Capacity returns the view's maximum size.
func (v *View) Capacity() int { return v.capacity }

// Len returns the number of entries currently held.
func (v *View) Len() int { return len(v.entries) }

// Entries returns a copy of the view, freshest first.
func (v *View) Entries() []Entry {
	out := make([]Entry, len(v.entries))
	copy(out, v.entries)
	return out
}

// Addrs returns the addresses currently in the view, freshest first.
func (v *View) Addrs() []string {
	out := make([]string, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.Addr
	}
	return out
}

// Contains reports whether addr is in the view.
func (v *View) Contains(addr string) bool {
	for _, e := range v.entries {
		if e.Addr == addr {
			return true
		}
	}
	return false
}

// AgeAll increments every entry's age by one; called once per exchange
// round so stale information loses to fresh information in merges.
func (v *View) AgeAll() {
	for i := range v.entries {
		v.entries[i].Age++
	}
}

// Merge folds incoming entries into the view: duplicates keep the lower
// age, then the freshest capacity entries survive. self is excluded so a
// node never gossips with itself. Merge does not allocate in steady
// state (the backing array is grown once and reused), which is what lets
// digests ride the engine's per-message hot path.
func (v *View) Merge(self string, incoming []Entry) {
	for _, e := range incoming {
		if e.Addr == self || e.Addr == "" {
			continue
		}
		if i := v.indexOf(e.Addr); i >= 0 {
			if e.Age < v.entries[i].Age {
				v.entries[i].Age = e.Age
			}
		} else {
			// May temporarily exceed capacity; trimmed after the sort.
			v.entries = append(v.entries, e)
		}
	}
	// Tie-break equal ages by a hash salted with a per-merge nonce: any
	// fixed order (alphabetic, or even a fixed hash) would evict the same
	// addresses from every view under capacity pressure, starving those
	// nodes out of the overlay.
	v.nonce += 0x9e3779b97f4a7c15
	salt := v.nonce
	slices.SortFunc(v.entries, func(a, b Entry) int {
		if a.Age != b.Age {
			return cmp.Compare(a.Age, b.Age)
		}
		return cmp.Compare(addrHash(a.Addr)^salt, addrHash(b.Addr)^salt)
	})
	if len(v.entries) > v.capacity {
		tail := v.entries[v.capacity:]
		clear(tail) // release the evicted address strings
		v.entries = v.entries[:v.capacity]
	}
}

// indexOf returns addr's position in the view, or -1. Views are small
// (capacity is typically ≤ 32), so a linear scan beats a map — and
// unlike a map it costs no allocation.
func (v *View) indexOf(addr string) int {
	for i := range v.entries {
		if v.entries[i].Addr == addr {
			return i
		}
	}
	return -1
}

// addrHash is FNV-1a over the address, used only for unbiased age
// tie-breaking in Merge.
func addrHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Sample returns a uniformly random entry's address; ok is false when the
// view is empty.
func (v *View) Sample(rng *xrand.Rand) (addr string, ok bool) {
	if len(v.entries) == 0 {
		return "", false
	}
	return v.entries[rng.Intn(len(v.entries))].Addr, true
}

// Digest returns up to k random entries (for piggybacking on protocol
// messages). The returned slice is freshly allocated; hot paths should
// use AppendDigest instead.
func (v *View) Digest(rng *xrand.Rand, k int) []Entry {
	n := len(v.entries)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	idx := rng.SampleDistinct(n, k, -1)
	out := make([]Entry, 0, k)
	for _, i := range idx {
		out = append(out, v.entries[i])
	}
	return out
}

// AppendDigest appends up to k distinct random entries to addrs/ages and
// returns the extended slices. It does not allocate beyond growing the
// destination slices, so callers reusing buffers run alloc-free.
func (v *View) AppendDigest(addrs []string, ages []uint32, rng *xrand.Rand, k int) ([]string, []uint32) {
	n := len(v.entries)
	if k > n {
		k = n
	}
	if k <= 0 {
		return addrs, ages
	}
	if k == n {
		for i := range v.entries {
			addrs = append(addrs, v.entries[i].Addr)
			ages = append(ages, v.entries[i].Age)
		}
		return addrs, ages
	}
	if n <= 64 {
		// Rejection sampling over a bitmask: distinct without the map or
		// scratch slice xrand.SampleDistinct would allocate. Views are
		// capacity-bounded, so n ≤ 64 is the only case that matters.
		var picked uint64
		for c := 0; c < k; {
			i := rng.Intn(n)
			if picked&(1<<uint(i)) != 0 {
				continue
			}
			picked |= 1 << uint(i)
			addrs = append(addrs, v.entries[i].Addr)
			ages = append(ages, v.entries[i].Age)
			c++
		}
		return addrs, ages
	}
	for _, i := range rng.SampleDistinct(n, k, -1) {
		addrs = append(addrs, v.entries[i].Addr)
		ages = append(ages, v.entries[i].Age)
	}
	return addrs, ages
}

// Oldest returns the entry with the highest age (the CYCLON-style gossip
// partner choice: contacting the most stale reference is what detects
// dead peers fastest); ok is false when the view is empty.
func (v *View) Oldest() (e Entry, ok bool) {
	if len(v.entries) == 0 {
		return Entry{}, false
	}
	oldest := v.entries[0]
	for _, cand := range v.entries[1:] {
		if cand.Age > oldest.Age {
			oldest = cand
		}
	}
	return oldest, true
}

// Add inserts an entry if the address is absent and capacity allows,
// reporting whether it was inserted. Unlike Merge it never evicts.
func (v *View) Add(e Entry) bool {
	if e.Addr == "" || v.Contains(e.Addr) || len(v.entries) >= v.capacity {
		return false
	}
	v.entries = append(v.entries, e)
	return true
}

// Replace swaps the entry holding oldAddr for e, reporting whether
// oldAddr was present. Used by shuffle-style exchanges that hand
// references over to the peer.
func (v *View) Replace(oldAddr string, e Entry) bool {
	for i, cur := range v.entries {
		if cur.Addr == oldAddr {
			v.entries[i] = e
			return true
		}
	}
	return false
}

// Remove deletes addr from the view if present, returning whether it was
// found — used when a peer is observed dead (connection refused).
func (v *View) Remove(addr string) bool {
	for i, e := range v.entries {
		if e.Addr == addr {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			return true
		}
	}
	return false
}
