// Package transport carries the aggregation protocol's messages between
// nodes. Two interchangeable implementations are provided: an in-memory
// Fabric with configurable latency, loss and partitions (for simulation
// and tests) and a TCP transport over the loopback or a real network
// (stdlib net only). Both speak the same binary wire format, so the
// asynchronous engine is transport-agnostic.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
)

// Kind discriminates protocol messages.
type Kind uint8

// Message kinds of the push-pull exchange (Figure 1): the active node
// sends a push carrying its approximation, the passive node answers with
// a reply carrying its pre-merge approximation.
const (
	KindPush Kind = iota + 1
	KindReply
	// KindNack tells the initiator its push was declined (the peer had
	// its own exchange in flight) so it can abort immediately instead of
	// waiting out the reply timeout.
	KindNack
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case KindPush:
		return "push"
	case KindReply:
		return "reply"
	case KindNack:
		return "nack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one protocol datagram.
type Message struct {
	// Kind is push or reply.
	Kind Kind
	// Epoch tags the message with the sender's epoch identifier (§4);
	// receivers in an older epoch jump forward, stale messages are
	// dropped.
	Epoch uint64
	// Seq pairs a reply with the push that solicited it.
	Seq uint64
	// From is the sender's transport address. Multiplexed runtimes use
	// sub-addresses of the form "endpoint#node", so From may be finer
	// grained than the endpoint that carried the message.
	From string
	// To is the destination address the sender used. Endpoints hosting
	// many nodes behind one address (the heap runtime) demultiplex
	// inbound messages on it; single-node endpoints can ignore it.
	To string
	// Fields is the sender's state vector (one entry per schema field).
	Fields []float64
	// Gossip piggybacks a few peer addresses for lightweight membership
	// dissemination (Newscast-style).
	Gossip []string
	// GossipAges carries one logical age per Gossip entry (0 = the
	// sender heard from that peer this round). Encoded as a single byte,
	// saturating at MaxGossipAge; a missing or short slice encodes as
	// age 0.
	GossipAges []uint32
}

// MaxGossipAge is the largest age the wire format can carry; older
// entries saturate. Views evict long before this in practice.
const MaxGossipAge = 255

// Wire format limits; generous for the protocol's tiny messages while
// bounding what a malformed frame can make us allocate.
const (
	maxAddrLen   = 1 << 10
	maxFields    = 1 << 12
	maxGossip    = 1 << 10
	maxFrameSize = 1 << 20
)

// Errors reported by the codec and transports.
var (
	// ErrMalformedMessage reports an undecodable or oversized frame.
	ErrMalformedMessage = errors.New("transport: malformed message")
	// ErrPeerUnreachable reports a send to an unknown or closed address.
	ErrPeerUnreachable = errors.New("transport: peer unreachable")
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
)

// wireSize returns the encoded frame length, validating the variable
// parts against the wire limits.
func (m *Message) wireSize() (int, error) {
	if len(m.From) > maxAddrLen {
		return 0, fmt.Errorf("%w: from address %d bytes", ErrMalformedMessage, len(m.From))
	}
	if len(m.To) > maxAddrLen {
		return 0, fmt.Errorf("%w: to address %d bytes", ErrMalformedMessage, len(m.To))
	}
	if len(m.Fields) > maxFields {
		return 0, fmt.Errorf("%w: %d fields", ErrMalformedMessage, len(m.Fields))
	}
	if len(m.Gossip) > maxGossip {
		return 0, fmt.Errorf("%w: %d gossip entries", ErrMalformedMessage, len(m.Gossip))
	}
	size := 1 + 8 + 8 + 2 + len(m.From) + 2 + len(m.To) + 2 + 8*len(m.Fields) + 2
	for _, g := range m.Gossip {
		if len(g) > maxAddrLen {
			return 0, fmt.Errorf("%w: gossip address %d bytes", ErrMalformedMessage, len(g))
		}
		size += 2 + len(g) + 1
	}
	return size, nil
}

// AppendBinary appends the message's frame to buf and returns the
// extended slice, in the layout
//
//	kind u8 | epoch u64 | seq u64 | from u16+bytes | to u16+bytes |
//	nfields u16 + f64s | ngossip u16 + (u16+bytes + age u8)*
//
// using big-endian integers and IEEE-754 bits for floats. Passing a
// reused buffer (buf[:0] of a previous call) makes encoding
// allocation-free once the buffer has grown to its steady-state size.
func (m *Message) AppendBinary(buf []byte) ([]byte, error) {
	if _, err := m.wireSize(); err != nil {
		return buf, err
	}
	buf = append(buf, byte(m.Kind))
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.From)))
	buf = append(buf, m.From...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.To)))
	buf = append(buf, m.To...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Fields)))
	for _, f := range m.Fields {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Gossip)))
	for i, g := range m.Gossip {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(g)))
		buf = append(buf, g...)
		age := uint32(0)
		if i < len(m.GossipAges) {
			age = m.GossipAges[i]
		}
		if age > MaxGossipAge {
			age = MaxGossipAge
		}
		buf = append(buf, byte(age))
	}
	return buf, nil
}

// MarshalBinary encodes the message into a freshly allocated,
// exactly-sized frame. Hot paths reuse a caller-owned buffer with
// AppendBinary instead.
func (m *Message) MarshalBinary() ([]byte, error) {
	size, err := m.wireSize()
	if err != nil {
		return nil, err
	}
	return m.AppendBinary(make([]byte, 0, size))
}

// UnmarshalBinary decodes a frame produced by MarshalBinary or
// AppendBinary. The decoded Fields and Gossip reuse m's existing
// backing arrays when they have capacity (append-into semantics), so a
// caller that recycles its Message values decodes without allocating
// new vectors; pass a zero Message for fully fresh slices. Decoded
// strings always allocate.
func (m *Message) UnmarshalBinary(b []byte) error {
	r := reader{buf: b}
	kind := r.u8()
	m.Epoch = r.u64()
	m.Seq = r.u64()
	fromLen := int(r.u16())
	if fromLen > maxAddrLen {
		return fmt.Errorf("%w: from length %d", ErrMalformedMessage, fromLen)
	}
	m.From = string(r.bytes(fromLen))
	toLen := int(r.u16())
	if toLen > maxAddrLen {
		return fmt.Errorf("%w: to length %d", ErrMalformedMessage, toLen)
	}
	m.To = string(r.bytes(toLen))
	nf := int(r.u16())
	if nf > maxFields {
		return fmt.Errorf("%w: field count %d", ErrMalformedMessage, nf)
	}
	m.Fields = m.Fields[:0]
	for i := 0; i < nf; i++ {
		m.Fields = append(m.Fields, math.Float64frombits(r.u64()))
	}
	ng := int(r.u16())
	if ng > maxGossip {
		return fmt.Errorf("%w: gossip count %d", ErrMalformedMessage, ng)
	}
	m.Gossip = m.Gossip[:0]
	m.GossipAges = m.GossipAges[:0]
	for i := 0; i < ng; i++ {
		gl := int(r.u16())
		if gl > maxAddrLen {
			return fmt.Errorf("%w: gossip length %d", ErrMalformedMessage, gl)
		}
		m.Gossip = append(m.Gossip, string(r.bytes(gl)))
		m.GossipAges = append(m.GossipAges, uint32(r.u8()))
	}
	if r.failed || r.pos != len(b) {
		return fmt.Errorf("%w: %d bytes, consumed %d", ErrMalformedMessage, len(b), r.pos)
	}
	switch kind := Kind(kind); kind {
	case KindPush, KindReply, KindNack:
		m.Kind = kind
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrMalformedMessage, kind)
	}
	return nil
}

// reader is a bounds-checked cursor; failed latches on the first
// out-of-bounds read so the caller checks once at the end.
type reader struct {
	buf    []byte
	pos    int
	failed bool
}

func (r *reader) bytes(n int) []byte {
	if r.failed || n < 0 || r.pos+n > len(r.buf) {
		r.failed = true
		return nil
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// BaseAddr strips a sub-address suffix ("endpoint#node" → "endpoint"),
// returning the routable endpoint address. Multiplexed runtimes host many
// protocol nodes behind one endpoint and address them with such suffixes;
// transports route on the base address and receivers demultiplex on
// Message.To. Addresses without a '#' are returned unchanged.
func BaseAddr(addr string) string {
	if i := strings.IndexByte(addr, '#'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// SubAddr joins an endpoint address with a node index into a sub-address
// ("endpoint#node"), the inverse of BaseAddr.
func SubAddr(addr string, node int) string {
	return fmt.Sprintf("%s#%d", addr, node)
}

// Endpoint is one node's attachment to a transport: an address, a way to
// send to other addresses and an inbox of received messages. The inbox
// channel is closed when the endpoint is closed.
type Endpoint interface {
	// Addr returns the endpoint's routable address.
	Addr() string
	// Send delivers (or drops, per the transport's loss model) a message
	// to the given address. Send never blocks on the receiver.
	Send(to string, m Message) error
	// Inbox returns the channel of received messages.
	Inbox() <-chan Message
	// Close releases the endpoint and closes the inbox.
	Close() error
}
