package transport

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/xrand"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	in := []Message{
		{Kind: KindPush, Epoch: 1, Seq: 10, From: "a#0", To: "b#3", Fields: []float64{1, 2}},
		{Kind: KindReply, Epoch: 1, Seq: 10, From: "b#3", To: "a#0", Fields: []float64{3}},
		{Kind: KindNack, Epoch: 2, Seq: 11, From: "b#4", To: "a#0", Gossip: []string{"c#1"}},
	}
	buf, err := MarshalBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBatchFrame(buf) {
		t.Fatal("batch frame not recognized")
	}
	out, err := UnmarshalBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip count %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Kind != in[i].Kind || out[i].Seq != in[i].Seq ||
			out[i].From != in[i].From || out[i].To != in[i].To {
			t.Fatalf("message %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestBatchCodecRejectsMalformed(t *testing.T) {
	good, err := MarshalBatch([]Message{{Kind: KindPush, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"not batch":  {0x01, 0x02},
		"zero count": {batchMarker, 0, 0},
		"truncated":  good[:len(good)-3],
		"trailing":   append(append([]byte{}, good...), 0xAB),
	}
	for name, buf := range cases {
		if _, err := UnmarshalBatch(buf); !errors.Is(err, ErrMalformedMessage) {
			t.Errorf("%s: err = %v, want ErrMalformedMessage", name, err)
		}
	}
	if _, err := MarshalBatch(nil); !errors.Is(err, ErrMalformedMessage) {
		t.Errorf("empty MarshalBatch err = %v, want ErrMalformedMessage", err)
	}
	// A batch frame must not decode as a single message.
	var m Message
	if err := m.UnmarshalBinary(good); !errors.Is(err, ErrMalformedMessage) {
		t.Errorf("batch frame decoded as single message: %v", err)
	}
}

// recordingEndpoint captures every delivered message in arrival order,
// optionally via SendBatch, for the exactly-once/ordering properties.
type recordingEndpoint struct {
	mu       sync.Mutex
	byDest   map[string][]Message
	batches  int
	maxBatch int
}

type recordingBatchEndpoint struct{ *recordingEndpoint }

func newRecordingEndpoint() *recordingEndpoint {
	return &recordingEndpoint{byDest: make(map[string][]Message)}
}

func (r *recordingEndpoint) Addr() string          { return "rec" }
func (r *recordingEndpoint) Inbox() <-chan Message { return nil }
func (r *recordingEndpoint) Close() error          { return nil }
func (r *recordingEndpoint) Send(to string, m Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byDest[to] = append(r.byDest[to], m)
	return nil
}

func (r *recordingBatchEndpoint) SendBatch(to string, ms []Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byDest[to] = append(r.byDest[to], ms...)
	r.batches++
	if len(ms) > r.maxBatch {
		r.maxBatch = len(ms)
	}
	return nil
}

// TestBatcherExactlyOnceInOrderQuick is the batching layer's core
// property: under a randomized interleaving of enqueues and flushes,
// with randomized batch windows and size caps, every message is
// delivered exactly once and per-destination order is preserved.
func TestBatcherExactlyOnceInOrderQuick(t *testing.T) {
	check := func(seed uint64, useBatch bool, windowMs uint8, maxBatch uint8) bool {
		rng := xrand.New(seed)
		rec := newRecordingEndpoint()
		var ep Endpoint = rec
		if useBatch {
			ep = &recordingBatchEndpoint{rec}
		}
		opts := []BatcherOption{WithMaxBatch(int(maxBatch%32) + 1)}
		if windowMs > 0 {
			opts = append(opts, WithBatchWindow(time.Duration(windowMs%4)*time.Millisecond))
		}
		b := NewBatcher(ep, opts...)

		dests := []string{"d0", "d1", "d2#7", "d2#9"}
		const total = 200
		var wg sync.WaitGroup
		// Concurrent flusher hammering the batcher mid-enqueue.
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Flush()
				}
			}
		}()
		for i := 0; i < total; i++ {
			to := dests[rng.Intn(len(dests))]
			if err := b.Send(to, Message{Kind: KindPush, Seq: uint64(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return false
			}
			if rng.Bool(0.1) {
				b.Flush()
			}
		}
		close(stop)
		wg.Wait()
		b.Flush()
		if got := b.Pending(); got != 0 {
			t.Errorf("pending %d after final flush", got)
			return false
		}

		// Exactly once: each Seq appears once across all destinations.
		// In order: Seqs are increasing per destination queue (sub
		// addresses share a base queue but keep their own To).
		rec.mu.Lock()
		defer rec.mu.Unlock()
		seen := make(map[uint64]int)
		delivered := 0
		for base, ms := range rec.byDest {
			lastPerTo := make(map[string]uint64)
			for _, m := range ms {
				seen[m.Seq]++
				delivered++
				if last, ok := lastPerTo[m.To]; ok && m.Seq <= last {
					t.Errorf("dest %s: out of order: %d after %d", base, m.Seq, last)
					return false
				}
				lastPerTo[m.To] = m.Seq
			}
		}
		if delivered != total {
			t.Errorf("delivered %d, want %d", delivered, total)
			return false
		}
		for seq, n := range seen {
			if n != 1 {
				t.Errorf("seq %d delivered %d times", seq, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherCoalescesIntoBatchFrames(t *testing.T) {
	rec := &recordingBatchEndpoint{newRecordingEndpoint()}
	b := NewBatcher(rec, WithMaxBatch(1000))
	for i := 0; i < 10; i++ {
		// Two sub-addresses of one endpoint share a batch.
		if err := b.Send(fmt.Sprintf("ep#%d", i%2), Message{Kind: KindPush, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != 10 {
		t.Fatalf("pending %d before flush, want 10", got)
	}
	b.Flush()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.batches != 1 || rec.maxBatch != 10 {
		t.Fatalf("batches=%d maxBatch=%d, want one batch of 10", rec.batches, rec.maxBatch)
	}
	if len(rec.byDest["ep"]) != 10 {
		t.Fatalf("base queue got %d messages", len(rec.byDest["ep"]))
	}
	for i, m := range rec.byDest["ep"] {
		if want := fmt.Sprintf("ep#%d", i%2); m.To != want {
			t.Fatalf("message %d To = %q, want %q", i, m.To, want)
		}
	}
}

func TestBatcherMaxBatchFlushesInline(t *testing.T) {
	rec := &recordingBatchEndpoint{newRecordingEndpoint()}
	b := NewBatcher(rec, WithMaxBatch(4))
	for i := 0; i < 4; i++ {
		if err := b.Send("x", Message{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("pending %d after hitting the cap, want 0", got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.byDest["x"]) != 4 {
		t.Fatalf("delivered %d, want 4", len(rec.byDest["x"]))
	}
}

func TestBatcherWindowFlushes(t *testing.T) {
	rec := &recordingBatchEndpoint{newRecordingEndpoint()}
	b := NewBatcher(rec, WithBatchWindow(5*time.Millisecond))
	if err := b.Send("x", Message{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("window flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherSendErrorHandler(t *testing.T) {
	fabric := NewFabric()
	ep := fabric.NewEndpoint()
	var mu sync.Mutex
	var failedTo string
	var failedCount int
	b := NewBatcher(ep, WithSendErrorHandler(func(to string, ms []Message, err error) {
		mu.Lock()
		failedTo, failedCount = to, len(ms)
		mu.Unlock()
	}))
	if err := b.Send("mem-999#3", Message{Kind: KindPush, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("mem-999#4", Message{Kind: KindPush, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	b.Flush()
	mu.Lock()
	defer mu.Unlock()
	if failedTo != "mem-999" || failedCount != 2 {
		t.Fatalf("error handler got to=%q count=%d, want mem-999/2", failedTo, failedCount)
	}
}

func TestBatcherCloseRejectsSends(t *testing.T) {
	fabric := NewFabric()
	b := NewBatcher(fabric.NewEndpoint())
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := b.Send("x", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
}

// discardBatchEndpoint accepts batches without recording them, so alloc
// measurements see only the Batcher's own work.
type discardBatchEndpoint struct{ batches, messages int }

func (d *discardBatchEndpoint) Addr() string               { return "discard" }
func (d *discardBatchEndpoint) Inbox() <-chan Message      { return nil }
func (d *discardBatchEndpoint) Close() error               { return nil }
func (d *discardBatchEndpoint) Send(string, Message) error { return nil }
func (d *discardBatchEndpoint) SendBatch(to string, ms []Message) error {
	d.batches++
	d.messages += len(ms)
	return nil
}

// TestBatcherSteadyStateAllocs pins the batching layer's allocation
// budget: once the destination index, queue slices and flush scratch
// have grown to steady state, a full enqueue-and-flush cycle allocates
// nothing — the map is cleared in place and every slice is recycled.
func TestBatcherSteadyStateAllocs(t *testing.T) {
	d := &discardBatchEndpoint{}
	b := NewBatcher(d, WithMaxBatch(1024))
	dests := []string{"a#0", "a#1", "b#7", "c#2"}
	cycle := func() {
		for i, to := range dests {
			if err := b.Send(to, Message{Kind: KindPush, Seq: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		b.Flush()
	}
	cycle() // warm up: build the index, queues and scratch
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("steady-state enqueue+flush cycle allocates %.1f objects, want 0", allocs)
	}
	if d.messages == 0 {
		t.Fatal("discard endpoint saw no messages")
	}
}

// TestAppendCodecSteadyStateAllocs pins the append-style codecs: with a
// reused encode buffer and decode scratch, marshalling a batch and
// unmarshalling it back allocates nothing once buffers have grown
// (address-less messages: decoded strings are the one part of the wire
// format that always allocates).
func TestAppendCodecSteadyStateAllocs(t *testing.T) {
	ms := []Message{
		{Kind: KindPush, Epoch: 3, Seq: 10, Fields: []float64{1, 2, 3}},
		{Kind: KindReply, Epoch: 3, Seq: 10, Fields: []float64{4, 5, 6}},
	}
	var buf []byte
	var scratch []Message
	cycle := func() {
		var err error
		buf, err = AppendBatch(buf[:0], ms)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err = UnmarshalBatchInto(buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if len(scratch) != 2 || scratch[1].Fields[2] != 6 {
			t.Fatalf("round trip corrupted: %+v", scratch)
		}
	}
	cycle() // warm up: grow buf and scratch to steady state
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("steady-state append-encode/decode cycle allocates %.1f objects, want 0", allocs)
	}
}

// TestAppendBatchMatchesMarshalBatch: the append-style encoder and the
// allocating wrapper produce identical frames, including when appending
// after existing bytes.
func TestAppendBatchMatchesMarshalBatch(t *testing.T) {
	ms := []Message{
		{Kind: KindPush, Epoch: 1, Seq: 2, From: "a#1", To: "b#2", Fields: []float64{1.5}, Gossip: []string{"c#3"}},
		{Kind: KindNack, Epoch: 1, Seq: 2, From: "b#2", To: "a#1"},
	}
	classic, err := MarshalBatch(ms)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte{0xAA, 0xBB}
	appended, err := AppendBatch(append([]byte{}, prefix...), ms)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(appended[:2], prefix) || !reflect.DeepEqual(appended[2:], classic) {
		t.Fatalf("append encoding diverges:\nclassic: %x\nappend:  %x", classic, appended)
	}
}

// TestUnmarshalBatchIntoReusesScratch: decoded messages land in the
// caller's scratch storage (same backing array, Fields capacity kept),
// and errors return an empty slice over that storage.
func TestUnmarshalBatchIntoReusesScratch(t *testing.T) {
	frame, err := MarshalBatch([]Message{{Kind: KindPush, Seq: 1, Fields: []float64{7, 8}}})
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]Message, 4, 8)
	scratch[0].Fields = make([]float64, 0, 16)
	out, err := UnmarshalBatchInto(frame, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || cap(out) != cap(scratch) {
		t.Fatalf("scratch not reused: len=%d cap=%d, want 1/%d", len(out), cap(out), cap(scratch))
	}
	if cap(out[0].Fields) != 16 || out[0].Fields[1] != 8 {
		t.Fatalf("fields scratch not reused: %+v (cap %d)", out[0].Fields, cap(out[0].Fields))
	}
	if bad, err := UnmarshalBatchInto([]byte{batchMarker, 0, 0}, scratch); err == nil || len(bad) != 0 {
		t.Fatalf("malformed frame: out=%v err=%v", bad, err)
	}
}

func TestBatcherOverFabricDelivers(t *testing.T) {
	fabric := NewFabric()
	src := fabric.NewEndpoint()
	dst := fabric.NewEndpoint()
	b := NewBatcher(src)
	for i := 0; i < 5; i++ {
		if err := b.Send(dst.Addr()+"#2", Message{Kind: KindPush, Seq: uint64(i), From: src.Addr() + "#0"}); err != nil {
			t.Fatal(err)
		}
	}
	b.Flush()
	for i := 0; i < 5; i++ {
		select {
		case m := <-dst.Inbox():
			if m.Seq != uint64(i) || m.To != dst.Addr()+"#2" || m.From != src.Addr()+"#0" {
				t.Fatalf("message %d = %+v", i, m)
			}
		case <-time.After(time.Second):
			t.Fatalf("message %d not delivered", i)
		}
	}
}

func TestBatcherOverTCPDelivers(t *testing.T) {
	a, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bEp, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bEp.Close()
	batcher := NewBatcher(a)
	const n = 8
	for i := 0; i < n; i++ {
		if err := batcher.Send(SubAddr(bEp.Addr(), i), Message{Kind: KindPush, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	batcher.Flush()
	for i := 0; i < n; i++ {
		select {
		case m := <-bEp.Inbox():
			if m.Seq != uint64(i) || m.To != SubAddr(bEp.Addr(), i) {
				t.Fatalf("message %d = %+v", i, m)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("batched TCP message %d not delivered", i)
		}
	}
}
