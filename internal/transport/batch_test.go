package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/xrand"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	in := []Message{
		{Kind: KindPush, Epoch: 1, Seq: 10, From: "a#0", To: "b#3", Fields: []float64{1, 2}},
		{Kind: KindReply, Epoch: 1, Seq: 10, From: "b#3", To: "a#0", Fields: []float64{3}},
		{Kind: KindNack, Epoch: 2, Seq: 11, From: "b#4", To: "a#0", Gossip: []string{"c#1"}},
	}
	buf, err := MarshalBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBatchFrame(buf) {
		t.Fatal("batch frame not recognized")
	}
	out, err := UnmarshalBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip count %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Kind != in[i].Kind || out[i].Seq != in[i].Seq ||
			out[i].From != in[i].From || out[i].To != in[i].To {
			t.Fatalf("message %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestBatchCodecRejectsMalformed(t *testing.T) {
	good, err := MarshalBatch([]Message{{Kind: KindPush, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"not batch":  {0x01, 0x02},
		"zero count": {batchMarker, 0, 0},
		"truncated":  good[:len(good)-3],
		"trailing":   append(append([]byte{}, good...), 0xAB),
	}
	for name, buf := range cases {
		if _, err := UnmarshalBatch(buf); !errors.Is(err, ErrMalformedMessage) {
			t.Errorf("%s: err = %v, want ErrMalformedMessage", name, err)
		}
	}
	if _, err := MarshalBatch(nil); !errors.Is(err, ErrMalformedMessage) {
		t.Errorf("empty MarshalBatch err = %v, want ErrMalformedMessage", err)
	}
	// A batch frame must not decode as a single message.
	var m Message
	if err := m.UnmarshalBinary(good); !errors.Is(err, ErrMalformedMessage) {
		t.Errorf("batch frame decoded as single message: %v", err)
	}
}

// recordingEndpoint captures every delivered message in arrival order,
// optionally via SendBatch, for the exactly-once/ordering properties.
type recordingEndpoint struct {
	mu       sync.Mutex
	byDest   map[string][]Message
	batches  int
	maxBatch int
}

type recordingBatchEndpoint struct{ *recordingEndpoint }

func newRecordingEndpoint() *recordingEndpoint {
	return &recordingEndpoint{byDest: make(map[string][]Message)}
}

func (r *recordingEndpoint) Addr() string          { return "rec" }
func (r *recordingEndpoint) Inbox() <-chan Message { return nil }
func (r *recordingEndpoint) Close() error          { return nil }
func (r *recordingEndpoint) Send(to string, m Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byDest[to] = append(r.byDest[to], m)
	return nil
}

func (r *recordingBatchEndpoint) SendBatch(to string, ms []Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byDest[to] = append(r.byDest[to], ms...)
	r.batches++
	if len(ms) > r.maxBatch {
		r.maxBatch = len(ms)
	}
	return nil
}

// TestBatcherExactlyOnceInOrderQuick is the batching layer's core
// property: under a randomized interleaving of enqueues and flushes,
// with randomized batch windows and size caps, every message is
// delivered exactly once and per-destination order is preserved.
func TestBatcherExactlyOnceInOrderQuick(t *testing.T) {
	check := func(seed uint64, useBatch bool, windowMs uint8, maxBatch uint8) bool {
		rng := xrand.New(seed)
		rec := newRecordingEndpoint()
		var ep Endpoint = rec
		if useBatch {
			ep = &recordingBatchEndpoint{rec}
		}
		opts := []BatcherOption{WithMaxBatch(int(maxBatch%32) + 1)}
		if windowMs > 0 {
			opts = append(opts, WithBatchWindow(time.Duration(windowMs%4)*time.Millisecond))
		}
		b := NewBatcher(ep, opts...)

		dests := []string{"d0", "d1", "d2#7", "d2#9"}
		const total = 200
		var wg sync.WaitGroup
		// Concurrent flusher hammering the batcher mid-enqueue.
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Flush()
				}
			}
		}()
		for i := 0; i < total; i++ {
			to := dests[rng.Intn(len(dests))]
			if err := b.Send(to, Message{Kind: KindPush, Seq: uint64(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return false
			}
			if rng.Bool(0.1) {
				b.Flush()
			}
		}
		close(stop)
		wg.Wait()
		b.Flush()
		if got := b.Pending(); got != 0 {
			t.Errorf("pending %d after final flush", got)
			return false
		}

		// Exactly once: each Seq appears once across all destinations.
		// In order: Seqs are increasing per destination queue (sub
		// addresses share a base queue but keep their own To).
		rec.mu.Lock()
		defer rec.mu.Unlock()
		seen := make(map[uint64]int)
		delivered := 0
		for base, ms := range rec.byDest {
			lastPerTo := make(map[string]uint64)
			for _, m := range ms {
				seen[m.Seq]++
				delivered++
				if last, ok := lastPerTo[m.To]; ok && m.Seq <= last {
					t.Errorf("dest %s: out of order: %d after %d", base, m.Seq, last)
					return false
				}
				lastPerTo[m.To] = m.Seq
			}
		}
		if delivered != total {
			t.Errorf("delivered %d, want %d", delivered, total)
			return false
		}
		for seq, n := range seen {
			if n != 1 {
				t.Errorf("seq %d delivered %d times", seq, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherCoalescesIntoBatchFrames(t *testing.T) {
	rec := &recordingBatchEndpoint{newRecordingEndpoint()}
	b := NewBatcher(rec, WithMaxBatch(1000))
	for i := 0; i < 10; i++ {
		// Two sub-addresses of one endpoint share a batch.
		if err := b.Send(fmt.Sprintf("ep#%d", i%2), Message{Kind: KindPush, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != 10 {
		t.Fatalf("pending %d before flush, want 10", got)
	}
	b.Flush()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.batches != 1 || rec.maxBatch != 10 {
		t.Fatalf("batches=%d maxBatch=%d, want one batch of 10", rec.batches, rec.maxBatch)
	}
	if len(rec.byDest["ep"]) != 10 {
		t.Fatalf("base queue got %d messages", len(rec.byDest["ep"]))
	}
	for i, m := range rec.byDest["ep"] {
		if want := fmt.Sprintf("ep#%d", i%2); m.To != want {
			t.Fatalf("message %d To = %q, want %q", i, m.To, want)
		}
	}
}

func TestBatcherMaxBatchFlushesInline(t *testing.T) {
	rec := &recordingBatchEndpoint{newRecordingEndpoint()}
	b := NewBatcher(rec, WithMaxBatch(4))
	for i := 0; i < 4; i++ {
		if err := b.Send("x", Message{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("pending %d after hitting the cap, want 0", got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.byDest["x"]) != 4 {
		t.Fatalf("delivered %d, want 4", len(rec.byDest["x"]))
	}
}

func TestBatcherWindowFlushes(t *testing.T) {
	rec := &recordingBatchEndpoint{newRecordingEndpoint()}
	b := NewBatcher(rec, WithBatchWindow(5*time.Millisecond))
	if err := b.Send("x", Message{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("window flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherSendErrorHandler(t *testing.T) {
	fabric := NewFabric()
	ep := fabric.NewEndpoint()
	var mu sync.Mutex
	var failedTo string
	var failedCount int
	b := NewBatcher(ep, WithSendErrorHandler(func(to string, ms []Message, err error) {
		mu.Lock()
		failedTo, failedCount = to, len(ms)
		mu.Unlock()
	}))
	if err := b.Send("mem-999#3", Message{Kind: KindPush, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("mem-999#4", Message{Kind: KindPush, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	b.Flush()
	mu.Lock()
	defer mu.Unlock()
	if failedTo != "mem-999" || failedCount != 2 {
		t.Fatalf("error handler got to=%q count=%d, want mem-999/2", failedTo, failedCount)
	}
}

func TestBatcherCloseRejectsSends(t *testing.T) {
	fabric := NewFabric()
	b := NewBatcher(fabric.NewEndpoint())
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := b.Send("x", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
}

func TestBatcherOverFabricDelivers(t *testing.T) {
	fabric := NewFabric()
	src := fabric.NewEndpoint()
	dst := fabric.NewEndpoint()
	b := NewBatcher(src)
	for i := 0; i < 5; i++ {
		if err := b.Send(dst.Addr()+"#2", Message{Kind: KindPush, Seq: uint64(i), From: src.Addr() + "#0"}); err != nil {
			t.Fatal(err)
		}
	}
	b.Flush()
	for i := 0; i < 5; i++ {
		select {
		case m := <-dst.Inbox():
			if m.Seq != uint64(i) || m.To != dst.Addr()+"#2" || m.From != src.Addr()+"#0" {
				t.Fatalf("message %d = %+v", i, m)
			}
		case <-time.After(time.Second):
			t.Fatalf("message %d not delivered", i)
		}
	}
}

func TestBatcherOverTCPDelivers(t *testing.T) {
	a, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bEp, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bEp.Close()
	batcher := NewBatcher(a)
	const n = 8
	for i := 0; i < n; i++ {
		if err := batcher.Send(SubAddr(bEp.Addr(), i), Message{Kind: KindPush, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	batcher.Flush()
	for i := 0; i < n; i++ {
		select {
		case m := <-bEp.Inbox():
			if m.Seq != uint64(i) || m.To != SubAddr(bEp.Addr(), i) {
				t.Fatalf("message %d = %+v", i, m)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("batched TCP message %d not delivered", i)
		}
	}
}
