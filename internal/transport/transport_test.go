package transport

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleMessage() Message {
	return Message{
		Kind:       KindPush,
		Epoch:      42,
		Seq:        7,
		From:       "node-a",
		Fields:     []float64{1.5, -2.25, math.Pi},
		Gossip:     []string{"node-b", "node-c"},
		GossipAges: []uint32{0, 3},
	}
}

func TestCodecGossipAges(t *testing.T) {
	// Ages saturate at MaxGossipAge on the wire, and a short or missing
	// GossipAges slice encodes as zeroes.
	in := Message{
		Kind: KindPush, From: "a",
		Gossip:     []string{"p", "q", "r"},
		GossipAges: []uint32{1000, 2},
	}
	buf, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := out.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	want := []uint32{MaxGossipAge, 2, 0}
	if !reflect.DeepEqual(out.GossipAges, want) {
		t.Fatalf("ages = %v, want %v", out.GossipAges, want)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := sampleMessage()
	buf, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := out.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestCodecRoundTripEmptyOptionalParts(t *testing.T) {
	in := Message{Kind: KindReply, Epoch: 0, Seq: 1, From: "x"}
	buf, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := out.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindReply || out.From != "x" || len(out.Fields) != 0 || len(out.Gossip) != 0 {
		t.Fatalf("out = %+v", out)
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	check := func(epoch, seq uint64, from string, fields []float64, gossip []string) bool {
		if len(from) > 64 {
			from = from[:64]
		}
		if len(fields) > 32 {
			fields = fields[:32]
		}
		if len(gossip) > 8 {
			gossip = gossip[:8]
		}
		for i, g := range gossip {
			if len(g) > 64 {
				gossip[i] = g[:64]
			}
		}
		for _, f := range fields {
			if math.IsNaN(f) {
				return true // NaN != NaN breaks DeepEqual, not the codec
			}
		}
		in := Message{Kind: KindPush, Epoch: epoch, Seq: seq, From: from, Fields: fields, Gossip: gossip}
		buf, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out Message
		if err := out.UnmarshalBinary(buf); err != nil {
			return false
		}
		if out.Epoch != in.Epoch || out.Seq != in.Seq || out.From != in.From {
			return false
		}
		if len(out.Fields) != len(in.Fields) || len(out.Gossip) != len(in.Gossip) {
			return false
		}
		for i := range in.Fields {
			if out.Fields[i] != in.Fields[i] {
				return false
			}
		}
		for i := range in.Gossip {
			if out.Gossip[i] != in.Gossip[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	src := sampleMessage()
	good, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"truncated":    good[:len(good)/2],
		"trailing":     append(append([]byte{}, good...), 0xFF),
		"unknown kind": append([]byte{0xEE}, good[1:]...),
	}
	for name, buf := range cases {
		var m Message
		if err := m.UnmarshalBinary(buf); !errors.Is(err, ErrMalformedMessage) {
			t.Errorf("%s: err = %v, want ErrMalformedMessage", name, err)
		}
	}
}

func TestCodecRejectsOversize(t *testing.T) {
	m := sampleMessage()
	m.Fields = make([]float64, maxFields+1)
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrMalformedMessage) {
		t.Errorf("oversize fields: err = %v", err)
	}
	m = sampleMessage()
	m.Gossip = make([]string, maxGossip+1)
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrMalformedMessage) {
		t.Errorf("oversize gossip: err = %v", err)
	}
}

func TestFabricDelivery(t *testing.T) {
	f := NewFabric()
	a, b := f.NewEndpoint(), f.NewEndpoint()
	defer a.Close()
	defer b.Close()
	if err := a.Send(b.Addr(), Message{Kind: KindPush, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Inbox():
		if m.Seq != 1 || m.From != a.Addr() {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestFabricUnknownDestination(t *testing.T) {
	f := NewFabric()
	a := f.NewEndpoint()
	defer a.Close()
	if err := a.Send("mem-999", Message{Kind: KindPush}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable", err)
	}
}

func TestFabricDropProbability(t *testing.T) {
	f := NewFabric(WithDropProbability(1), WithSeed(1))
	a, b := f.NewEndpoint(), f.NewEndpoint()
	defer a.Close()
	defer b.Close()
	for i := 0; i < 50; i++ {
		if err := a.Send(b.Addr(), Message{Kind: KindPush}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-b.Inbox():
		t.Fatal("message delivered despite p=1 drop")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestFabricFilterPartition(t *testing.T) {
	f := NewFabric()
	a, b := f.NewEndpoint(), f.NewEndpoint()
	defer a.Close()
	defer b.Close()
	f.SetFilter(func(from, to string) bool { return false })
	if err := a.Send(b.Addr(), Message{Kind: KindPush}); err != nil {
		t.Fatal(err) // filtered drops are silent, like the network
	}
	select {
	case <-b.Inbox():
		t.Fatal("message crossed the partition")
	case <-time.After(50 * time.Millisecond):
	}
	f.SetFilter(nil) // heal
	if err := a.Send(b.Addr(), Message{Kind: KindPush, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Inbox():
		if m.Seq != 9 {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered after heal")
	}
}

func TestFabricLatency(t *testing.T) {
	f := NewFabric(WithLatency(30*time.Millisecond, 0))
	a, b := f.NewEndpoint(), f.NewEndpoint()
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.Send(b.Addr(), Message{Kind: KindPush}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Inbox():
		if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
			t.Fatalf("delivered after %v, want ≥ 30ms", elapsed)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestFabricCloseIsIdempotentAndDetaches(t *testing.T) {
	f := NewFabric()
	a, b := f.NewEndpoint(), f.NewEndpoint()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-b.Inbox(); open {
		t.Fatal("inbox not closed")
	}
	if err := a.Send(b.Addr(), Message{Kind: KindPush}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("send to closed endpoint: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("anywhere", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send from closed endpoint: %v", err)
	}
}

func TestFabricEndpointsListing(t *testing.T) {
	f := NewFabric()
	a, b := f.NewEndpoint(), f.NewEndpoint()
	defer a.Close()
	defer b.Close()
	addrs := f.Endpoints()
	if len(addrs) != 2 {
		t.Fatalf("endpoints = %v", addrs)
	}
}

func TestFabricInboxOverflowDrops(t *testing.T) {
	f := NewFabric(WithInboxSize(2))
	a, b := f.NewEndpoint(), f.NewEndpoint()
	defer a.Close()
	defer b.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send(b.Addr(), Message{Kind: KindPush, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly the first two fit; the rest were dropped silently.
	received := 0
	for {
		select {
		case <-b.Inbox():
			received++
		case <-time.After(50 * time.Millisecond):
			if received != 2 {
				t.Fatalf("received %d, want 2 (capacity)", received)
			}
			return
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	in := sampleMessage()
	in.From = "" // a plain endpoint stamps its own address
	if err := a.Send(b.Addr(), in); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.Inbox():
		if got.Epoch != in.Epoch || got.Seq != in.Seq || got.From != a.Addr() {
			t.Fatalf("got %+v", got)
		}
		if got.To != b.Addr() {
			t.Fatalf("To = %q, want %q", got.To, b.Addr())
		}
		if len(got.Fields) != 3 || got.Fields[2] != math.Pi {
			t.Fatalf("fields = %v", got.Fields)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP message not delivered")
	}

	// A caller-set From (a multiplexed node's sub-address) is preserved,
	// and a sub-addressed destination rides the same base connection.
	sub := Message{Kind: KindPush, Seq: 8, From: a.Addr() + "#3"}
	if err := a.Send(b.Addr()+"#5", sub); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.Inbox():
		if got.From != a.Addr()+"#3" || got.To != b.Addr()+"#5" {
			t.Fatalf("sub-addressed message got From=%q To=%q", got.From, got.To)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sub-addressed TCP message not delivered")
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), Message{Kind: KindPush, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Inbox():
		// Reply to the advertised listen address, as the protocol does.
		if err := b.Send(m.From, Message{Kind: KindReply, Seq: m.Seq}); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("push not delivered")
	}
	select {
	case m := <-a.Inbox():
		if m.Kind != KindReply || m.Seq != 1 {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reply not delivered")
	}
}

func TestTCPSendToDeadPeer(t *testing.T) {
	a, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Grab a port then release it so the dial fails fast.
	tmp, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := tmp.Addr()
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(dead, Message{Kind: KindPush}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable", err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-a.Inbox(); open {
		t.Fatal("inbox not closed")
	}
	if err := a.Send("127.0.0.1:1", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindPush.String() != "push" || KindReply.String() != "reply" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestFabricConcurrentSenders(t *testing.T) {
	// Many goroutines hammering one inbox: no race, no deadlock, no
	// message corruption (checked by the race detector + seq integrity).
	f := NewFabric(WithInboxSize(4096))
	dst := f.NewEndpoint()
	defer dst.Close()
	const senders, perSender = 8, 200
	done := make(chan struct{})
	for s := 0; s < senders; s++ {
		src := f.NewEndpoint()
		go func(src Endpoint) {
			defer func() { done <- struct{}{} }()
			defer src.Close()
			for i := 0; i < perSender; i++ {
				if err := src.Send(dst.Addr(), Message{Kind: KindPush, Seq: uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(src)
	}
	for s := 0; s < senders; s++ {
		<-done
	}
	received := 0
	for {
		select {
		case <-dst.Inbox():
			received++
		default:
			if received != senders*perSender {
				t.Fatalf("received %d, want %d", received, senders*perSender)
			}
			return
		}
	}
}

func TestTCPLargeMessage(t *testing.T) {
	// A full-size field vector survives the wire.
	a, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	fields := make([]float64, maxFields)
	for i := range fields {
		fields[i] = float64(i) * 0.5
	}
	if err := a.Send(b.Addr(), Message{Kind: KindPush, Seq: 1, Fields: fields}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Inbox():
		if len(m.Fields) != maxFields || m.Fields[100] != 50 {
			t.Fatalf("large message corrupted: %d fields", len(m.Fields))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("large message not delivered")
	}
}
