package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPEndpoint carries protocol messages over TCP with length-prefixed
// frames. Outbound connections are cached per destination; each accepted
// connection gets a reader goroutine feeding the inbox. The protocol is
// datagram-shaped (fire-and-forget pushes and replies), so a broken
// connection simply surfaces as message loss — which the protocol
// tolerates by design.
type TCPEndpoint struct {
	listener net.Listener
	inbox    chan Message

	mu      sync.Mutex
	conns   map[string]net.Conn // outbound, keyed by destination
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup

	// dialTimeout bounds connection establishment so a dead peer costs
	// one timeout, not a hung exchange loop.
	dialTimeout time.Duration
}

var _ Endpoint = (*TCPEndpoint)(nil)

// NewTCPEndpoint listens on the given address ("127.0.0.1:0" for an
// ephemeral loopback port) and starts accepting peers.
func NewTCPEndpoint(listen string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	e := &TCPEndpoint{
		listener:    ln,
		inbox:       make(chan Message, 1024),
		conns:       make(map[string]net.Conn),
		inbound:     make(map[net.Conn]struct{}),
		dialTimeout: 2 * time.Second,
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr implements Endpoint; it returns the bound listen address, which is
// what peers must dial.
func (e *TCPEndpoint) Addr() string { return e.listener.Addr().String() }

// Inbox implements Endpoint.
func (e *TCPEndpoint) Inbox() <-chan Message { return e.inbox }

// Send implements Endpoint. The first send to a destination dials and
// caches the connection; send errors evict the cached connection so the
// next attempt redials.
func (e *TCPEndpoint) Send(to string, m Message) error {
	m.From = e.Addr()
	frame, err := m.MarshalBinary()
	if err != nil {
		return err
	}
	conn, err := e.conn(to)
	if errors.Is(err, ErrClosed) {
		return err
	}
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, to, err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	e.mu.Lock()
	_, err = conn.Write(hdr[:])
	if err == nil {
		_, err = conn.Write(frame)
	}
	e.mu.Unlock()
	if err != nil {
		e.evict(to, conn)
		return fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, to, err)
	}
	return nil
}

// conn returns a cached or freshly dialed connection to the destination.
func (e *TCPEndpoint) conn(to string) (net.Conn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	c, err := net.DialTimeout("tcp", to, e.dialTimeout)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		_ = c.Close()
		return nil, ErrClosed
	}
	if prev, ok := e.conns[to]; ok {
		// Lost the dial race; keep the existing connection.
		_ = c.Close()
		return prev, nil
	}
	e.conns[to] = c
	return c, nil
}

// evict drops a broken cached connection.
func (e *TCPEndpoint) evict(to string, conn net.Conn) {
	e.mu.Lock()
	if cur, ok := e.conns[to]; ok && cur == conn {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	_ = conn.Close()
}

// acceptLoop admits inbound peers until the listener closes.
func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection into the inbox.
func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		_ = conn.Close()
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size == 0 || size > maxFrameSize {
			return // protocol violation; drop the connection
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		var m Message
		if err := m.UnmarshalBinary(frame); err != nil {
			return
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		select {
		case e.inbox <- m:
		default: // inbox overflow: drop, like a saturated socket buffer
		}
	}
}

// Close implements Endpoint: it stops the listener, closes every cached
// connection, waits for reader goroutines and closes the inbox. It is
// idempotent.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns)+len(e.inbound))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	for c := range e.inbound {
		conns = append(conns, c)
	}
	e.conns = make(map[string]net.Conn)
	e.mu.Unlock()

	err := e.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	e.wg.Wait()
	close(e.inbox)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("transport: close listener: %w", err)
	}
	return nil
}
