package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPEndpoint carries protocol messages over TCP with length-prefixed
// frames. Outbound connections are cached per destination; each accepted
// connection gets a reader goroutine feeding the inbox. The protocol is
// datagram-shaped (fire-and-forget pushes and replies), so a broken
// connection simply surfaces as message loss — which the protocol
// tolerates by design.
type TCPEndpoint struct {
	listener net.Listener
	inbox    chan Message

	mu      sync.Mutex
	conns   map[string]*tcpConn // outbound, keyed by destination
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup

	// dialTimeout bounds connection establishment so a dead peer costs
	// one timeout, not a hung exchange loop; writeTimeout bounds each
	// frame write so a stalled peer (accepting but never reading) costs
	// one evicted connection, not a wedged sender. The heap runtime
	// multiplexes a whole shard behind one endpoint, so a single
	// unbounded write would stall every node of the shard.
	dialTimeout  time.Duration
	writeTimeout time.Duration

	// Traffic counters, one atomic add per frame or per rare event,
	// read lock-free by the metrics layer. dials counts completed
	// outbound connections, so dials beyond the peer count are
	// reconnects after evictions.
	dials     atomic.Uint64
	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64
	inboxDrop atomic.Uint64
}

// tcpConn is one outbound connection with its own write lock, so a
// slow destination only serializes writes to itself, not the whole
// endpoint. enc is the connection's reusable encode buffer (guarded by
// wmu): each frame is assembled in it — length header included, so one
// kernel write ships the whole packet — and its capacity persists
// across sends, making steady-state encoding allocation-free.
type tcpConn struct {
	net.Conn
	wmu sync.Mutex
	enc []byte
}

var (
	_ Endpoint    = (*TCPEndpoint)(nil)
	_ BatchSender = (*TCPEndpoint)(nil)
)

// NewTCPEndpoint listens on the given address ("127.0.0.1:0" for an
// ephemeral loopback port) and starts accepting peers.
func NewTCPEndpoint(listen string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	e := &TCPEndpoint{
		listener:     ln,
		inbox:        make(chan Message, 1024),
		conns:        make(map[string]*tcpConn),
		inbound:      make(map[net.Conn]struct{}),
		dialTimeout:  2 * time.Second,
		writeTimeout: 5 * time.Second,
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr implements Endpoint; it returns the bound listen address, which is
// what peers must dial.
func (e *TCPEndpoint) Addr() string { return e.listener.Addr().String() }

// Inbox implements Endpoint.
func (e *TCPEndpoint) Inbox() <-chan Message { return e.inbox }

// Send implements Endpoint. The first send to a destination dials and
// caches the connection; send errors evict the cached connection so the
// next attempt redials. Sub-addresses ("host:port#node") dial the base
// host:port and share its connection; To carries the full destination so
// a multiplexed receiver can demultiplex.
func (e *TCPEndpoint) Send(to string, m Message) error {
	if m.From == "" {
		m.From = e.Addr()
	}
	if m.To == "" {
		m.To = to
	}
	conn, err := e.conn(to)
	if err != nil {
		return e.connErr(to, err)
	}
	conn.wmu.Lock()
	buf, encErr := m.AppendBinary(append(conn.enc[:0], 0, 0, 0, 0))
	return e.writeFramed(to, conn, buf, encErr)
}

// SendBatch implements BatchSender: the whole batch travels as one
// framed multi-message packet, amortizing the header, the connection
// lookup, the encode buffer and the kernel write across every coalesced
// message. The slice ms is not retained past the call; the messages are
// serialized, so the caller keeps ownership of their buffers.
func (e *TCPEndpoint) SendBatch(to string, ms []Message) error {
	for i := range ms {
		if ms[i].From == "" {
			ms[i].From = e.Addr()
		}
		if ms[i].To == "" {
			ms[i].To = to
		}
	}
	conn, err := e.conn(to)
	if err != nil {
		return e.connErr(to, err)
	}
	conn.wmu.Lock()
	buf, encErr := AppendBatch(append(conn.enc[:0], 0, 0, 0, 0), ms)
	return e.writeFramed(to, conn, buf, encErr)
}

// connErr normalizes a connection-establishment failure.
func (e *TCPEndpoint) connErr(to string, err error) error {
	if errors.Is(err, ErrClosed) {
		return err
	}
	return fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, to, err)
}

// writeFramed backfills the 4-byte length header reserved at the front
// of buf and ships the packet with one kernel write. The caller holds
// conn.wmu and has encoded the payload into buf (which starts at
// conn.enc's storage); writeFramed banks the grown buffer for reuse and
// releases the lock.
func (e *TCPEndpoint) writeFramed(to string, conn *tcpConn, buf []byte, encErr error) error {
	payload := len(buf) - 4
	if encErr == nil && payload > maxFrameSize {
		encErr = fmt.Errorf("%w: frame of %d bytes", ErrMalformedMessage, payload)
	}
	if encErr != nil {
		conn.enc = buf[:0]
		conn.wmu.Unlock()
		return encErr
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(payload))
	err := conn.SetWriteDeadline(time.Now().Add(e.writeTimeout))
	if err == nil {
		var n int
		n, err = conn.Write(buf)
		e.bytesSent.Add(uint64(n))
	}
	conn.enc = buf[:0]
	conn.wmu.Unlock()
	if err != nil {
		e.evict(BaseAddr(to), conn)
		return fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, to, err)
	}
	return nil
}

// conn returns a cached or freshly dialed connection to the destination.
// Sub-addresses share the base address's connection.
func (e *TCPEndpoint) conn(addr string) (*tcpConn, error) {
	to := BaseAddr(addr)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	c, err := net.DialTimeout("tcp", to, e.dialTimeout)
	if err != nil {
		return nil, err
	}
	e.dials.Add(1)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		_ = c.Close()
		return nil, ErrClosed
	}
	if prev, ok := e.conns[to]; ok {
		// Lost the dial race; keep the existing connection.
		_ = c.Close()
		return prev, nil
	}
	wrapped := &tcpConn{Conn: c}
	e.conns[to] = wrapped
	return wrapped, nil
}

// evict drops a broken cached connection.
func (e *TCPEndpoint) evict(to string, conn *tcpConn) {
	e.mu.Lock()
	if cur, ok := e.conns[to]; ok && cur == conn {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	_ = conn.Close()
}

// acceptLoop admits inbound peers until the listener closes.
func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection into the inbox.
func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		_ = conn.Close()
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
	}()
	var hdr [4]byte
	var rbuf []byte            // reusable frame read buffer (strings/fields are copied out by the decoder)
	var scratch, one []Message // reusable decode targets
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := int(binary.BigEndian.Uint32(hdr[:]))
		if size == 0 || size > maxFrameSize {
			return // protocol violation; drop the connection
		}
		if cap(rbuf) < size {
			rbuf = make([]byte, size)
		}
		frame := rbuf[:size]
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		e.bytesRecv.Add(uint64(size + 4))
		var ms []Message
		if IsBatchFrame(frame) {
			batch, err := UnmarshalBatchInto(frame, scratch)
			if err != nil {
				return
			}
			ms, scratch = batch, batch
		} else {
			if one == nil {
				one = make([]Message, 1)
			}
			one[0] = Message{}
			if err := one[0].UnmarshalBinary(frame); err != nil {
				return
			}
			ms = one[:1]
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		for i := range ms {
			select {
			case e.inbox <- ms[i]:
			default: // inbox overflow: drop, like a saturated socket buffer
				e.inboxDrop.Add(1)
			}
		}
		// Delivered messages now belong to the inbox's consumer; zero the
		// scratch entries so the next decode cannot overwrite their
		// Fields/Gossip buffers.
		clear(ms)
	}
}

// Dials returns how many outbound connections have been established;
// growth beyond the peer count means reconnects after broken links.
func (e *TCPEndpoint) Dials() uint64 { return e.dials.Load() }

// BytesSent returns the total bytes written, framing included.
func (e *TCPEndpoint) BytesSent() uint64 { return e.bytesSent.Load() }

// BytesReceived returns the total bytes read, framing included.
func (e *TCPEndpoint) BytesReceived() uint64 { return e.bytesRecv.Load() }

// InboxDropped returns how many decoded inbound messages were dropped
// on a full inbox.
func (e *TCPEndpoint) InboxDropped() uint64 { return e.inboxDrop.Load() }

// Close implements Endpoint: it stops the listener, closes every cached
// connection, waits for reader goroutines and closes the inbox. It is
// idempotent.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns)+len(e.inbound))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	for c := range e.inbound {
		conns = append(conns, c)
	}
	e.conns = make(map[string]*tcpConn)
	e.mu.Unlock()

	err := e.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	e.wg.Wait()
	close(e.inbox)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("transport: close listener: %w", err)
	}
	return nil
}
