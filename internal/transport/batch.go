package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// batchMarker is the first byte of a multi-message container frame. It is
// deliberately outside the Kind range so a batch frame can never be
// mistaken for a single message (UnmarshalBinary rejects it as an unknown
// kind, and readers check IsBatchFrame first).
const batchMarker byte = 0x7F

// maxBatchCount bounds what a malformed batch frame can make us allocate.
const maxBatchCount = 1 << 14

// BatchSender is implemented by endpoints that can deliver several
// messages to one destination in a single operation — one framed packet
// over TCP, one routing-table lookup on the in-memory fabric. The Batcher
// uses it when available and falls back to message-at-a-time Send
// otherwise. Delivery order within the batch must be preserved. The
// callee must not retain ms (the slice) after returning; it may retain
// the messages' Fields/Gossip, whose ownership travels with the message.
type BatchSender interface {
	SendBatch(to string, ms []Message) error
}

// AppendBatch appends a container frame holding every message to buf
// and returns the extended slice:
//
//	0x7F | u16 count | (u32 len | frame)*
//
// where each sub-frame is an AppendBinary message frame. Sub-frame
// lengths are backfilled in place, so no per-message staging buffers
// are allocated; with a reused buf the encode is allocation-free at
// steady state.
func AppendBatch(buf []byte, ms []Message) ([]byte, error) {
	if len(ms) == 0 || len(ms) > maxBatchCount {
		return buf, fmt.Errorf("%w: batch of %d messages", ErrMalformedMessage, len(ms))
	}
	start := len(buf)
	buf = append(buf, batchMarker)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ms)))
	for i := range ms {
		lenAt := len(buf)
		buf = append(buf, 0, 0, 0, 0) // length placeholder, backfilled below
		var err error
		if buf, err = ms[i].AppendBinary(buf); err != nil {
			return buf[:start], err
		}
		binary.BigEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	}
	return buf, nil
}

// MarshalBatch encodes messages into one freshly allocated container
// frame. Hot paths reuse a caller-owned buffer with AppendBatch
// instead.
func MarshalBatch(ms []Message) ([]byte, error) {
	return AppendBatch(nil, ms)
}

// UnmarshalBatchInto decodes a container frame produced by MarshalBatch
// or AppendBatch into the caller-owned scratch slice, preserving
// message order, and returns the decoded messages (scratch resliced and
// grown as needed). Reused scratch entries keep their Fields/Gossip
// backing arrays across calls, so a caller that retains ownership of
// the results decodes without allocating vectors. A caller that hands a
// decoded Message to another owner (e.g. an endpoint inbox) must zero
// that entry before the next call — the next decode would otherwise
// overwrite the new owner's buffers.
func UnmarshalBatchInto(b []byte, scratch []Message) ([]Message, error) {
	r := reader{buf: b}
	if r.u8() != batchMarker {
		return scratch[:0], fmt.Errorf("%w: not a batch frame", ErrMalformedMessage)
	}
	count := int(r.u16())
	if count == 0 || count > maxBatchCount {
		return scratch[:0], fmt.Errorf("%w: batch count %d", ErrMalformedMessage, count)
	}
	out := scratch[:0]
	for i := 0; i < count; i++ {
		size := int(r.u64from32())
		sub := r.bytes(size)
		if r.failed {
			return out[:0], fmt.Errorf("%w: truncated batch frame", ErrMalformedMessage)
		}
		if i < len(scratch) {
			out = out[:i+1]
		} else {
			out = append(out, Message{})
		}
		if err := out[i].UnmarshalBinary(sub); err != nil {
			return out[:0], err
		}
	}
	if r.pos != len(b) {
		return out[:0], fmt.Errorf("%w: %d trailing bytes in batch frame", ErrMalformedMessage, len(b)-r.pos)
	}
	return out, nil
}

// UnmarshalBatch decodes a container frame into freshly allocated
// messages, preserving message order.
func UnmarshalBatch(b []byte) ([]Message, error) {
	ms, err := UnmarshalBatchInto(b, nil)
	if err != nil {
		return nil, err
	}
	return ms, nil
}

// IsBatchFrame reports whether a wire frame is a multi-message container.
func IsBatchFrame(b []byte) bool { return len(b) > 0 && b[0] == batchMarker }

// u64from32 reads a big-endian u32 as an int-sized value.
func (r *reader) u64from32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// BatcherOption configures a Batcher.
type BatcherOption func(*Batcher)

// WithBatchWindow bounds how long an enqueued message may wait before an
// automatic flush (0, the default, disables the timer: the owner flushes
// explicitly, e.g. once per scheduler round).
func WithBatchWindow(d time.Duration) BatcherOption {
	return func(b *Batcher) { b.window = d }
}

// WithMaxBatch caps per-destination queue length; reaching it flushes
// immediately (default 64).
func WithMaxBatch(n int) BatcherOption {
	return func(b *Batcher) {
		if n > 0 {
			b.maxBatch = n
		}
	}
}

// WithSendErrorHandler installs a callback invoked for each destination
// whose flush failed (dead peer, closed endpoint), with the undelivered
// messages. Those messages are dropped — the protocol treats send
// failure as message loss, which it tolerates by design. The callback
// may run while a sender holds its own locks, so it must not call back
// into the Batcher; defer heavy work. It must not retain ms after
// returning: the Batcher recycles the slice for later batches.
func WithSendErrorHandler(fn func(to string, ms []Message, err error)) BatcherOption {
	return func(b *Batcher) { b.onErr = fn }
}

// destQueue is one destination's pending batch.
type destQueue struct {
	to string
	ms []Message
}

// Batcher coalesces same-destination messages in front of an Endpoint:
// Send enqueues, and a later Flush (explicit, size-triggered or
// window-timed) delivers each destination's queue as one batch. It
// guarantees that under any interleaving of Send and Flush calls every
// accepted message is handed to the underlying endpoint exactly once and
// that per-destination order is preserved. Batcher itself implements
// Endpoint, so it can be dropped in front of any transport.
//
// All queue storage — the destination index, the per-destination
// message slices and the flush scratch — is recycled across flush
// cycles, so a Batcher in steady state allocates nothing per message or
// per flush.
type Batcher struct {
	ep       Endpoint
	bs       BatchSender // non-nil when ep supports batch delivery
	window   time.Duration
	maxBatch int
	onErr    func(to string, ms []Message, err error)

	// mu guards the queues; flushMu serializes deliveries so concurrent
	// flushes cannot reorder one destination's batches.
	mu      sync.Mutex
	index   map[string]int // destination → position in batches
	batches []destQueue    // pending queues in first-enqueue order
	spare   [][]Message    // cleared message slices, ready for reuse
	pending int
	timer   *time.Timer
	closed  bool

	flushMu  sync.Mutex
	flushing []destQueue // scratch swapped with batches during a flush

	// Traffic counters, maintained at frame granularity (one atomic add
	// per delivered batch, not per message) and read lock-free by the
	// metrics layer.
	frames   atomic.Uint64
	messages atomic.Uint64
	failures atomic.Uint64
}

var _ Endpoint = (*Batcher)(nil)

// NewBatcher wraps an endpoint with a coalescing send queue.
func NewBatcher(ep Endpoint, opts ...BatcherOption) *Batcher {
	b := &Batcher{
		ep:       ep,
		maxBatch: 64,
		index:    make(map[string]int),
	}
	if bs, ok := ep.(BatchSender); ok {
		b.bs = bs
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Addr implements Endpoint.
func (b *Batcher) Addr() string { return b.ep.Addr() }

// Inbox implements Endpoint.
func (b *Batcher) Inbox() <-chan Message { return b.ep.Inbox() }

// Send implements Endpoint: it enqueues the message for its destination.
// Messages are coalesced per base endpoint address, so sub-addressed
// nodes multiplexed behind one endpoint ("ep#0", "ep#1", …) share a
// batch; each message's own To keeps the full destination for receiver
// demultiplexing. A queue reaching the batch-size cap is flushed inline;
// with a batch window configured, the first message into an empty
// batcher arms a timer that flushes everything when the window closes.
//
// Ownership of m.Fields and m.Gossip passes to the Batcher (and onward
// to the endpoint and receiver); the caller must not reuse them after
// Send.
func (b *Batcher) Send(to string, m Message) error {
	m.To = to
	base := BaseAddr(to)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	qi, known := b.index[base]
	if !known {
		qi = len(b.batches)
		var ms []Message
		if n := len(b.spare); n > 0 {
			ms = b.spare[n-1]
			b.spare[n-1] = nil
			b.spare = b.spare[:n-1]
		}
		b.batches = append(b.batches, destQueue{to: base, ms: ms})
		b.index[base] = qi
	}
	b.batches[qi].ms = append(b.batches[qi].ms, m)
	b.pending++
	full := len(b.batches[qi].ms) >= b.maxBatch
	if b.window > 0 && b.timer == nil && !full {
		b.timer = time.AfterFunc(b.window, func() { b.Flush() })
	}
	b.mu.Unlock()
	if full {
		b.Flush()
	}
	return nil
}

// Flush delivers every queued message now, one batch per destination in
// first-enqueue destination order. Safe for concurrent use.
func (b *Batcher) Flush() {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	if b.pending == 0 {
		b.mu.Unlock()
		return
	}
	// Swap the pending queues out against the (empty) flush scratch and
	// clear the index in place: the map's storage, both destQueue
	// slices and every message slice live on to the next cycle.
	b.batches, b.flushing = b.flushing[:0], b.batches
	clear(b.index)
	b.pending = 0
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()

	for i := range b.flushing {
		b.deliver(b.flushing[i].to, b.flushing[i].ms)
	}

	// Retire the delivered queues: drop the Message values (they hold
	// Fields and address references now owned by the receiver) and bank
	// the slices for reuse.
	b.mu.Lock()
	for i := range b.flushing {
		ms := b.flushing[i].ms
		clear(ms)
		b.spare = append(b.spare, ms[:0])
		b.flushing[i] = destQueue{}
	}
	b.flushing = b.flushing[:0]
	b.mu.Unlock()
}

// deliver hands one base destination's queue to the endpoint.
func (b *Batcher) deliver(to string, ms []Message) {
	var err error
	undelivered := ms
	if b.bs != nil {
		err = b.bs.SendBatch(to, ms)
	} else {
		for i := range ms {
			if err = b.ep.Send(ms[i].To, ms[i]); err != nil {
				undelivered = ms[i:]
				break
			}
		}
	}
	b.frames.Add(1)
	b.messages.Add(uint64(len(ms)))
	if err != nil {
		b.failures.Add(uint64(len(undelivered)))
		if b.onErr != nil {
			b.onErr(to, undelivered, err)
		}
	}
}

// FramesSent returns how many batch frames have been delivered.
func (b *Batcher) FramesSent() uint64 { return b.frames.Load() }

// MessagesSent returns how many messages those frames carried.
func (b *Batcher) MessagesSent() uint64 { return b.messages.Load() }

// SendFailures returns how many messages failed delivery (dead peer,
// closed endpoint); the protocol treats them as message loss.
func (b *Batcher) SendFailures() uint64 { return b.failures.Load() }

// Pending returns the number of queued, not yet flushed messages.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// Close implements Endpoint: it flushes the queues, rejects further
// sends and closes the underlying endpoint. Idempotent.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	b.Flush()
	return b.ep.Close()
}
