package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// batchMarker is the first byte of a multi-message container frame. It is
// deliberately outside the Kind range so a batch frame can never be
// mistaken for a single message (UnmarshalBinary rejects it as an unknown
// kind, and readers check IsBatchFrame first).
const batchMarker byte = 0x7F

// maxBatchCount bounds what a malformed batch frame can make us allocate.
const maxBatchCount = 1 << 14

// BatchSender is implemented by endpoints that can deliver several
// messages to one destination in a single operation — one framed packet
// over TCP, one routing-table lookup on the in-memory fabric. The Batcher
// uses it when available and falls back to message-at-a-time Send
// otherwise. Delivery order within the batch must be preserved.
type BatchSender interface {
	SendBatch(to string, ms []Message) error
}

// MarshalBatch encodes messages into one container frame:
//
//	0x7F | u16 count | (u32 len | frame)*
//
// where each sub-frame is a MarshalBinary message frame.
func MarshalBatch(ms []Message) ([]byte, error) {
	if len(ms) == 0 || len(ms) > maxBatchCount {
		return nil, fmt.Errorf("%w: batch of %d messages", ErrMalformedMessage, len(ms))
	}
	frames := make([][]byte, len(ms))
	size := 1 + 2
	for i := range ms {
		f, err := ms[i].MarshalBinary()
		if err != nil {
			return nil, err
		}
		frames[i] = f
		size += 4 + len(f)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, batchMarker)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ms)))
	for _, f := range frames {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f)))
		buf = append(buf, f...)
	}
	return buf, nil
}

// UnmarshalBatch decodes a container frame produced by MarshalBatch,
// preserving message order.
func UnmarshalBatch(b []byte) ([]Message, error) {
	r := reader{buf: b}
	if r.u8() != batchMarker {
		return nil, fmt.Errorf("%w: not a batch frame", ErrMalformedMessage)
	}
	count := int(r.u16())
	if count == 0 || count > maxBatchCount {
		return nil, fmt.Errorf("%w: batch count %d", ErrMalformedMessage, count)
	}
	out := make([]Message, 0, count)
	for i := 0; i < count; i++ {
		size := int(r.u64from32())
		sub := r.bytes(size)
		if r.failed {
			return nil, fmt.Errorf("%w: truncated batch frame", ErrMalformedMessage)
		}
		var m Message
		if err := m.UnmarshalBinary(sub); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes in batch frame", ErrMalformedMessage, len(b)-r.pos)
	}
	return out, nil
}

// IsBatchFrame reports whether a wire frame is a multi-message container.
func IsBatchFrame(b []byte) bool { return len(b) > 0 && b[0] == batchMarker }

// u64from32 reads a big-endian u32 as an int-sized value.
func (r *reader) u64from32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// BatcherOption configures a Batcher.
type BatcherOption func(*Batcher)

// WithBatchWindow bounds how long an enqueued message may wait before an
// automatic flush (0, the default, disables the timer: the owner flushes
// explicitly, e.g. once per scheduler round).
func WithBatchWindow(d time.Duration) BatcherOption {
	return func(b *Batcher) { b.window = d }
}

// WithMaxBatch caps per-destination queue length; reaching it flushes
// immediately (default 64).
func WithMaxBatch(n int) BatcherOption {
	return func(b *Batcher) {
		if n > 0 {
			b.maxBatch = n
		}
	}
}

// WithSendErrorHandler installs a callback invoked for each destination
// whose flush failed (dead peer, closed endpoint), with the undelivered
// messages. Those messages are dropped — the protocol treats send
// failure as message loss, which it tolerates by design. The callback
// may run while a sender holds its own locks, so it must not call back
// into the Batcher; defer heavy work.
func WithSendErrorHandler(fn func(to string, ms []Message, err error)) BatcherOption {
	return func(b *Batcher) { b.onErr = fn }
}

// Batcher coalesces same-destination messages in front of an Endpoint:
// Send enqueues, and a later Flush (explicit, size-triggered or
// window-timed) delivers each destination's queue as one batch. It
// guarantees that under any interleaving of Send and Flush calls every
// accepted message is handed to the underlying endpoint exactly once and
// that per-destination order is preserved. Batcher itself implements
// Endpoint, so it can be dropped in front of any transport.
type Batcher struct {
	ep       Endpoint
	bs       BatchSender // non-nil when ep supports batch delivery
	window   time.Duration
	maxBatch int
	onErr    func(to string, ms []Message, err error)

	// mu guards the queues; flushMu serializes deliveries so concurrent
	// flushes cannot reorder one destination's batches.
	mu      sync.Mutex
	queues  map[string][]Message
	order   []string
	pending int
	timer   *time.Timer
	closed  bool

	flushMu sync.Mutex
}

var _ Endpoint = (*Batcher)(nil)

// NewBatcher wraps an endpoint with a coalescing send queue.
func NewBatcher(ep Endpoint, opts ...BatcherOption) *Batcher {
	b := &Batcher{
		ep:       ep,
		maxBatch: 64,
		queues:   make(map[string][]Message),
	}
	if bs, ok := ep.(BatchSender); ok {
		b.bs = bs
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Addr implements Endpoint.
func (b *Batcher) Addr() string { return b.ep.Addr() }

// Inbox implements Endpoint.
func (b *Batcher) Inbox() <-chan Message { return b.ep.Inbox() }

// Send implements Endpoint: it enqueues the message for its destination.
// Messages are coalesced per base endpoint address, so sub-addressed
// nodes multiplexed behind one endpoint ("ep#0", "ep#1", …) share a
// batch; each message's own To keeps the full destination for receiver
// demultiplexing. A queue reaching the batch-size cap is flushed inline;
// with a batch window configured, the first message into an empty
// batcher arms a timer that flushes everything when the window closes.
func (b *Batcher) Send(to string, m Message) error {
	m.To = to
	base := BaseAddr(to)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	q, known := b.queues[base]
	if !known {
		b.order = append(b.order, base)
	}
	b.queues[base] = append(q, m)
	b.pending++
	full := len(b.queues[base]) >= b.maxBatch
	if b.window > 0 && b.timer == nil && !full {
		b.timer = time.AfterFunc(b.window, func() { b.Flush() })
	}
	b.mu.Unlock()
	if full {
		b.Flush()
	}
	return nil
}

// Flush delivers every queued message now, one batch per destination in
// first-enqueue destination order. Safe for concurrent use.
func (b *Batcher) Flush() {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	if b.pending == 0 {
		b.mu.Unlock()
		return
	}
	queues, order := b.queues, b.order
	b.queues = make(map[string][]Message, len(queues))
	b.order = nil
	b.pending = 0
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()

	for _, to := range order {
		b.deliver(to, queues[to])
	}
}

// deliver hands one base destination's queue to the endpoint.
func (b *Batcher) deliver(to string, ms []Message) {
	var err error
	undelivered := ms
	if b.bs != nil {
		err = b.bs.SendBatch(to, ms)
	} else {
		for i := range ms {
			if err = b.ep.Send(ms[i].To, ms[i]); err != nil {
				undelivered = ms[i:]
				break
			}
		}
	}
	if err != nil && b.onErr != nil {
		b.onErr(to, undelivered, err)
	}
}

// Pending returns the number of queued, not yet flushed messages.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// Close implements Endpoint: it flushes the queues, rejects further
// sends and closes the underlying endpoint. Idempotent.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	b.Flush()
	return b.ep.Close()
}
