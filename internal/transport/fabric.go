package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// FabricOption configures an in-memory Fabric.
type FabricOption func(*Fabric)

// WithLatency delays every delivery by base plus a uniform jitter in
// [0, jitter). Zero/zero (the default) delivers synchronously.
func WithLatency(base, jitter time.Duration) FabricOption {
	return func(f *Fabric) { f.latBase, f.latJitter = base, jitter }
}

// WithDropProbability makes the fabric lose each message independently
// with probability p — the message-loss model of experiment E6 applied to
// the live engine.
func WithDropProbability(p float64) FabricOption {
	return func(f *Fabric) { f.dropProb = p }
}

// WithInboxSize sets the per-endpoint inbox capacity. A full inbox drops
// the incoming message (UDP semantics), which keeps senders non-blocking;
// the default of 1024 is far above what the protocol's one-exchange-per-Δt
// rhythm can queue.
func WithInboxSize(n int) FabricOption {
	return func(f *Fabric) {
		if n > 0 {
			f.inboxSize = n
		}
	}
}

// WithSeed seeds the fabric's internal RNG (latency jitter and drops).
func WithSeed(seed uint64) FabricOption {
	return func(f *Fabric) { f.rng = xrand.New(seed) }
}

// Fabric is an in-memory message network. It is safe for concurrent use.
type Fabric struct {
	mu        sync.Mutex
	endpoints map[string]*memEndpoint
	filter    func(from, to string) bool
	rng       *xrand.Rand
	latBase   time.Duration
	latJitter time.Duration
	dropProb  float64
	inboxSize int
	nextAddr  int

	// Drop counters, read lock-free by the metrics layer. Both count
	// rare paths (loss model, partition filter, saturated inbox), so an
	// atomic add per drop costs nothing on the healthy path.
	lossDropped  atomic.Uint64
	inboxDropped atomic.Uint64
}

// NewFabric returns an empty in-memory network.
func NewFabric(opts ...FabricOption) *Fabric {
	f := &Fabric{
		endpoints: make(map[string]*memEndpoint),
		rng:       xrand.New(0x0ddba11),
		inboxSize: 1024,
	}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// SetFilter installs a reachability predicate evaluated on every send;
// a false return drops the message. Pass nil to clear. Partition tests
// use this to cut groups of nodes apart and heal them again.
func (f *Fabric) SetFilter(filter func(from, to string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.filter = filter
}

// SetDropProbability changes the loss model on a live fabric — the
// scenario-injection hook behind the serve layer's POST /v1/scenario.
// Safe to call while traffic flows; takes effect on the next delivery.
func (f *Fabric) SetDropProbability(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropProb = p
}

// DropProbability returns the loss probability currently in force.
func (f *Fabric) DropProbability() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropProb
}

// NewEndpoint attaches a new endpoint with a fabric-assigned address.
func (f *Fabric) NewEndpoint() Endpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	addr := fmt.Sprintf("mem-%d", f.nextAddr)
	f.nextAddr++
	ep := &memEndpoint{
		fabric: f,
		addr:   addr,
		inbox:  make(chan Message, f.inboxSize),
	}
	f.endpoints[addr] = ep
	return ep
}

// Endpoints returns the addresses currently attached, in no particular
// order — handy for bootstrapping samplers in tests and examples.
func (f *Fabric) Endpoints() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.endpoints))
	for addr := range f.endpoints {
		out = append(out, addr)
	}
	return out
}

// deliver routes one message, applying filter, loss and latency. It
// returns ErrPeerUnreachable when the destination does not exist (so the
// caller can treat it like a timeout), and nil when the message was
// dropped by the loss model — real networks don't report drops either.
func (f *Fabric) deliver(from, to string, m Message) error {
	f.mu.Lock()
	if f.filter != nil && !f.filter(from, to) {
		f.mu.Unlock()
		f.lossDropped.Add(1)
		return nil
	}
	if f.dropProb > 0 && f.rng.Bool(f.dropProb) {
		f.mu.Unlock()
		f.lossDropped.Add(1)
		return nil
	}
	dst, ok := f.lookup(to)
	var delay time.Duration
	if ok && (f.latBase > 0 || f.latJitter > 0) {
		delay = f.latBase
		if f.latJitter > 0 {
			delay += time.Duration(f.rng.Float64() * float64(f.latJitter))
		}
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrPeerUnreachable, to)
	}
	if delay > 0 {
		time.AfterFunc(delay, func() { dst.enqueue(m) })
		return nil
	}
	dst.enqueue(m)
	return nil
}

// deliverBatch routes several messages to one destination, applying the
// filter once and the loss model per message (batching must not change
// loss semantics). All survivors share one drawn latency so the batch
// arrives in order, like one framed packet on a real network.
//
// The slice ms is never retained past the call (BatchSender contract:
// callers recycle it), but the messages themselves — including their
// Fields/Gossip backing arrays — are handed to the receiver by
// reference: the fabric is a zero-copy transport, and buffer ownership
// passes from sender to receiver. A dropped message's buffers are
// simply abandoned to the garbage collector.
func (f *Fabric) deliverBatch(from, to string, ms []Message) error {
	f.mu.Lock()
	if f.filter != nil && !f.filter(from, to) {
		f.mu.Unlock()
		f.lossDropped.Add(uint64(len(ms)))
		return nil
	}
	dst, ok := f.lookup(to)
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrPeerUnreachable, to)
	}
	survivors := ms
	detached := false // survivors no longer aliases the caller's ms
	if f.dropProb > 0 {
		survivors = make([]Message, 0, len(ms))
		detached = true
		for _, m := range ms {
			if !f.rng.Bool(f.dropProb) {
				survivors = append(survivors, m)
			}
		}
		f.lossDropped.Add(uint64(len(ms) - len(survivors)))
	}
	var delay time.Duration
	if f.latBase > 0 || f.latJitter > 0 {
		delay = f.latBase
		if f.latJitter > 0 {
			delay += time.Duration(f.rng.Float64() * float64(f.latJitter))
		}
	}
	f.mu.Unlock()
	if len(survivors) == 0 {
		return nil
	}
	if delay > 0 {
		batch := survivors
		if !detached {
			// The caller recycles ms as soon as we return; a delayed
			// delivery must hold its own copy of the message values.
			batch = append([]Message(nil), survivors...)
		}
		time.AfterFunc(delay, func() { dst.enqueueAll(batch) })
		return nil
	}
	dst.enqueueAll(survivors)
	return nil
}

// lookup resolves an address to its endpoint, falling back to the base
// address for multiplexed sub-addresses ("mem-0#17" → "mem-0"). The
// caller must hold f.mu.
func (f *Fabric) lookup(to string) (*memEndpoint, bool) {
	if dst, ok := f.endpoints[to]; ok {
		return dst, true
	}
	if base := BaseAddr(to); base != to {
		dst, ok := f.endpoints[base]
		return dst, ok
	}
	return nil, false
}

// LossDropped returns how many messages the loss model or a partition
// filter swallowed.
func (f *Fabric) LossDropped() uint64 { return f.lossDropped.Load() }

// InboxDropped returns how many messages were dropped on a full
// endpoint inbox (UDP semantics under saturation).
func (f *Fabric) InboxDropped() uint64 { return f.inboxDropped.Load() }

// detach removes an endpoint from the routing table.
func (f *Fabric) detach(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.endpoints, addr)
}

// memEndpoint is one attachment to a Fabric.
type memEndpoint struct {
	fabric *Fabric
	addr   string

	mu     sync.Mutex
	closed bool
	inbox  chan Message
}

var (
	_ Endpoint    = (*memEndpoint)(nil)
	_ BatchSender = (*memEndpoint)(nil)
)

// Addr implements Endpoint.
func (e *memEndpoint) Addr() string { return e.addr }

// Send implements Endpoint. From is stamped with the endpoint address
// unless the caller already set a finer-grained sub-address (multiplexed
// runtimes address individual nodes behind one endpoint); To records the
// caller's destination so such runtimes can demultiplex.
func (e *memEndpoint) Send(to string, m Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	if m.From == "" {
		m.From = e.addr
	}
	if m.To == "" {
		m.To = to
	}
	return e.fabric.deliver(e.addr, to, m)
}

// SendBatch implements BatchSender: one routing decision, per-message
// loss, in-order delivery.
func (e *memEndpoint) SendBatch(to string, ms []Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	for i := range ms {
		if ms[i].From == "" {
			ms[i].From = e.addr
		}
		if ms[i].To == "" {
			ms[i].To = to
		}
	}
	return e.fabric.deliverBatch(e.addr, to, ms)
}

// Inbox implements Endpoint.
func (e *memEndpoint) Inbox() <-chan Message { return e.inbox }

// enqueue appends to the inbox, dropping when full or closed.
func (e *memEndpoint) enqueue(m Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	select {
	case e.inbox <- m:
	default: // inbox overflow: drop, like a saturated socket buffer
		e.fabric.inboxDropped.Add(1)
	}
}

// enqueueAll appends a whole batch under one lock acquisition — the
// receiving endpoint's cost of a cross-shard batch frame is one mutex
// round-trip, not one per message. Per-message drop semantics (full
// inbox, closed endpoint) are identical to enqueue.
func (e *memEndpoint) enqueueAll(ms []Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	for _, m := range ms {
		select {
		case e.inbox <- m:
		default: // inbox overflow: drop, like a saturated socket buffer
			e.fabric.inboxDropped.Add(1)
		}
	}
}

// Close implements Endpoint. It is idempotent.
func (e *memEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.inbox)
	e.mu.Unlock()
	e.fabric.detach(e.addr)
	return nil
}
