package churn

import (
	"testing"
	"testing/quick"
)

func TestConstantModel(t *testing.T) {
	m := Constant{N: 500}
	for _, c := range []int{0, 1, 99, 100000} {
		if got := m.TargetSize(c); got != 500 {
			t.Fatalf("TargetSize(%d) = %d", c, got)
		}
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestOscillatingBounds(t *testing.T) {
	m := Oscillating{Min: 90000, Max: 110000, Period: 400}
	lo, hi := 1<<30, 0
	for c := 0; c < 2000; c++ {
		s := m.TargetSize(c)
		if s < 90000 || s > 110000 {
			t.Fatalf("cycle %d: size %d out of [90000, 110000]", c, s)
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	// Full swing must actually be explored.
	if lo > 90100 || hi < 109900 {
		t.Fatalf("swing [%d, %d] does not cover the configured range", lo, hi)
	}
}

func TestOscillatingStartsAtMidpoint(t *testing.T) {
	m := Oscillating{Min: 100, Max: 200, Period: 100}
	if got := m.TargetSize(0); got != 150 {
		t.Fatalf("TargetSize(0) = %d, want midpoint 150", got)
	}
}

func TestOscillatingPeriodicity(t *testing.T) {
	m := Oscillating{Min: 10, Max: 20, Period: 60}
	for c := 0; c < 120; c++ {
		a, b := m.TargetSize(c), m.TargetSize(c+60)
		// Floating-point rounding of the sinusoid can flip the rounded
		// size by one between periods.
		if a-b > 1 || b-a > 1 {
			t.Fatalf("not periodic at cycle %d: %d vs %d", c, a, b)
		}
	}
}

func TestOscillatingDegeneratePeriod(t *testing.T) {
	m := Oscillating{Min: 10, Max: 20, Period: 0}
	if got := m.TargetSize(5); got != 10 {
		t.Fatalf("zero period TargetSize = %d, want Min", got)
	}
}

func TestSchedulePlansTrackTarget(t *testing.T) {
	s := Schedule{Model: Constant{N: 1000}, Fluctuation: 100}
	p := s.At(0, 1000)
	if p.Remove != 100 || p.Add != 100 {
		t.Fatalf("steady plan = %+v, want ±100", p)
	}
	p = s.At(0, 900) // below target: net +100
	if p.Remove != 100 || p.Add != 200 {
		t.Fatalf("growth plan = %+v", p)
	}
	p = s.At(0, 1100) // above target: net −100
	if p.Remove != 200 || p.Add != 100 {
		t.Fatalf("shrink plan = %+v", p)
	}
}

func TestScheduleNeverRemovesBelowTwo(t *testing.T) {
	s := Schedule{Model: Constant{N: 0}, Fluctuation: 1000}
	p := s.At(0, 5)
	if p.Remove > 3 {
		t.Fatalf("plan removes %d of 5 nodes; floor of 2 violated", p.Remove)
	}
	p = s.At(0, 2)
	if p.Remove != 0 {
		t.Fatalf("plan removes %d of 2 nodes", p.Remove)
	}
}

func TestSchedulePlanConvergesQuick(t *testing.T) {
	// Property: applying the plan moves the size exactly to the target
	// (when the floor doesn't bind), regardless of start.
	check := func(startRaw, targetRaw uint16) bool {
		start := int(startRaw%10000) + 10
		target := int(targetRaw%10000) + 10
		s := Schedule{Model: Constant{N: target}, Fluctuation: 7}
		p := s.At(0, start)
		next := start - p.Remove + p.Add
		return next == target
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
