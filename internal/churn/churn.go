// Package churn models the network dynamism of the paper's Figure 4
// scenario: the network size oscillates between a minimum and a maximum
// ("for example on a day/night alternation basis") while a constant
// per-cycle fluctuation removes and adds a fixed number of nodes.
package churn

import (
	"fmt"
	"math"
)

// SizeModel prescribes the target network size at each protocol cycle.
type SizeModel interface {
	// TargetSize returns the intended number of live nodes at the given
	// cycle (cycle 0 is the start of the experiment).
	TargetSize(cycle int) int
	// Name labels the model in experiment output.
	Name() string
}

// Constant keeps the network at a fixed size.
type Constant struct {
	// N is the constant target size.
	N int
}

var _ SizeModel = Constant{}

// TargetSize implements SizeModel.
func (c Constant) TargetSize(int) int { return c.N }

// Name implements SizeModel.
func (c Constant) Name() string { return fmt.Sprintf("constant-%d", c.N) }

// Oscillating moves the target size sinusoidally between Min and Max with
// the given period in cycles — the day/night alternation of Figure 4
// (90 000 to 110 000 in the paper).
type Oscillating struct {
	// Min and Max bound the size swing; Min ≤ size ≤ Max at all cycles.
	Min, Max int
	// Period is the full oscillation period in cycles.
	Period int
	// Phase shifts the sinusoid (radians); zero starts at the midpoint
	// moving upward.
	Phase float64
}

var _ SizeModel = Oscillating{}

// TargetSize implements SizeModel.
func (o Oscillating) TargetSize(cycle int) int {
	if o.Period <= 0 {
		return o.Min
	}
	mid := float64(o.Min+o.Max) / 2
	amp := float64(o.Max-o.Min) / 2
	t := 2 * math.Pi * float64(cycle) / float64(o.Period)
	return int(math.Round(mid + amp*math.Sin(t+o.Phase)))
}

// Name implements SizeModel.
func (o Oscillating) Name() string {
	return fmt.Sprintf("oscillating-%d-%d-p%d", o.Min, o.Max, o.Period)
}

// Plan is the per-cycle churn decision: how many nodes to remove and how
// many to add, combining the size-model drift with symmetric fluctuation.
type Plan struct {
	// Remove is the number of nodes to take out of the network.
	Remove int
	// Add is the number of fresh nodes to introduce.
	Add int
}

// Schedule derives per-cycle churn plans from a size model plus a
// constant fluctuation ("100 nodes are removed ... and 100 nodes are
// added" per cycle in the paper's experiment).
type Schedule struct {
	// Model drives the target size.
	Model SizeModel
	// Fluctuation is the number of nodes both removed and added every
	// cycle on top of the drift.
	Fluctuation int
}

// At returns the churn plan transitioning from the current size to the
// model's target at the given cycle. The plan never removes the network
// below two nodes.
func (s Schedule) At(cycle, currentSize int) Plan {
	target := s.Model.TargetSize(cycle)
	p := Plan{Remove: s.Fluctuation, Add: s.Fluctuation}
	switch {
	case target > currentSize:
		p.Add += target - currentSize
	case target < currentSize:
		p.Remove += currentSize - target
	}
	if max := currentSize - 2; p.Remove > max {
		p.Remove = max
		if p.Remove < 0 {
			p.Remove = 0
		}
	}
	return p
}
