package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestMomentsSchemaValidation(t *testing.T) {
	for _, order := range []int{0, 1, 9} {
		if _, err := MomentsSchema(order); err == nil {
			t.Errorf("order %d accepted", order)
		}
	}
	s, err := MomentsSchema(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("schema has %d fields", s.Len())
	}
}

func TestMomentsInitPowers(t *testing.T) {
	s, err := MomentsSchema(3)
	if err != nil {
		t.Fatal(err)
	}
	st := s.InitState(2)
	want := State{2, 4, 8}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("init = %v, want %v", st, want)
		}
	}
}

func TestDecodeMomentsGaussian(t *testing.T) {
	// Gossip the moments of iid N(5, 2²) values across a network; the
	// decoded skewness must be ≈ 0 and kurtosis ≈ 3.
	rng := xrand.New(400)
	schema, err := MomentsSchema(4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(schema, 4000, func(int) float64 {
		return 5 + 2*rng.NormFloat64()
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 40; c++ {
		nw.Cycle()
	}
	m, err := DecodeMoments(schema, nw.Nodes()[0].State)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean-5) > 0.15 {
		t.Errorf("mean = %g, want ≈ 5", m.Mean)
	}
	if math.Abs(m.Variance-4) > 0.4 {
		t.Errorf("variance = %g, want ≈ 4", m.Variance)
	}
	if math.Abs(m.Skewness) > 0.2 {
		t.Errorf("skewness = %g, want ≈ 0", m.Skewness)
	}
	if math.Abs(m.Kurtosis-3) > 0.5 {
		t.Errorf("kurtosis = %g, want ≈ 3", m.Kurtosis)
	}
}

func TestDecodeMomentsSkewedDistribution(t *testing.T) {
	// Exponential(1): mean 1, variance 1, skewness 2, kurtosis 9.
	rng := xrand.New(401)
	schema, err := MomentsSchema(4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(schema, 8000, func(int) float64 {
		return rng.ExpFloat64()
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 40; c++ {
		nw.Cycle()
	}
	m, err := DecodeMoments(schema, nw.Nodes()[0].State)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean-1) > 0.05 {
		t.Errorf("mean = %g, want ≈ 1", m.Mean)
	}
	if math.Abs(m.Skewness-2) > 0.5 {
		t.Errorf("skewness = %g, want ≈ 2", m.Skewness)
	}
	if math.Abs(m.Kurtosis-9) > 3 {
		t.Errorf("kurtosis = %g, want ≈ 9", m.Kurtosis)
	}
}

func TestDecodeMomentsErrors(t *testing.T) {
	schema, err := MomentsSchema(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMoments(schema, State{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := DecodeMoments(SummarySchema(), SummarySchema().InitState(1)); err == nil {
		t.Error("non-moments schema accepted")
	}
}

func TestDecodeMomentsDegenerateVariance(t *testing.T) {
	schema, err := MomentsSchema(4)
	if err != nil {
		t.Fatal(err)
	}
	// All values identical: variance 0, skew/kurtosis defined as 0.
	st := schema.InitState(7)
	m, err := DecodeMoments(schema, st)
	if err != nil {
		t.Fatal(err)
	}
	if m.Variance != 0 || m.Skewness != 0 || m.Kurtosis != 0 {
		t.Fatalf("degenerate moments = %+v", m)
	}
}

func TestGeometricMeanConverges(t *testing.T) {
	rng := xrand.New(402)
	schema := GeometricSchema()
	// Values 1, 2, 4, 8 repeated: geometric mean = (1·2·4·8)^{1/4} = 2√2.
	nw, err := NewNetwork(schema, 400, func(i int) float64 {
		return float64(int(1) << (i % 4))
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 30; c++ {
		nw.Cycle()
	}
	gm, err := DecodeGeometricMean(schema, nw.Nodes()[5].State)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Sqrt2
	if math.Abs(gm-want) > 1e-6 {
		t.Fatalf("geometric mean = %g, want %g", gm, want)
	}
}

func TestGeometricSchemaRejectsNonPositive(t *testing.T) {
	schema := GeometricSchema()
	st := schema.InitState(-1)
	if !math.IsNaN(st[0]) {
		t.Fatal("negative value did not poison the instance")
	}
	gm, err := DecodeGeometricMean(schema, st)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(gm) {
		t.Fatalf("decoded %g from poisoned state, want NaN", gm)
	}
}

func TestDecodeGeometricMeanErrors(t *testing.T) {
	if _, err := DecodeGeometricMean(AverageSchema(), State{1}); err == nil {
		t.Error("non-geometric schema accepted")
	}
	if _, err := DecodeGeometricMean(GeometricSchema(), State{}); err == nil {
		t.Error("empty state accepted")
	}
}
