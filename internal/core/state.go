package core

import (
	"fmt"
	"math"
)

// Field describes one gossiped quantity: how it is initialized from a
// node's local value and how it is merged during an exchange. Gossiping
// several fields in one exchange is how the protocol computes composite
// aggregates (variance needs the average of a and of a²; size estimation
// needs the average of an indicator) without extra rounds.
type Field struct {
	// Name labels the field in diagnostics.
	Name string
	// Agg is the elementary aggregation applied to this field.
	Agg Aggregate
	// Init maps a node's local value to the field's initial
	// approximation at protocol (or epoch) start.
	Init func(localValue float64) float64
}

// State is a node's vector of field approximations, merged field-wise.
type State []float64

// Schema is an ordered set of fields gossiped together. A Schema is
// immutable after construction and safe for concurrent use.
type Schema struct {
	fields []Field
}

// NewSchema builds a schema from the given fields. At least one field is
// required and names must be unique so that lookups are unambiguous.
func NewSchema(fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("core: schema needs at least one field")
	}
	seen := make(map[string]struct{}, len(fields))
	for _, f := range fields {
		if f.Init == nil {
			return nil, fmt.Errorf("core: field %q has nil Init", f.Name)
		}
		if _, dup := seen[f.Name]; dup {
			return nil, fmt.Errorf("core: duplicate field name %q", f.Name)
		}
		seen[f.Name] = struct{}{}
	}
	cp := make([]Field, len(fields))
	copy(cp, fields)
	return &Schema{fields: cp}, nil
}

// MustSchema is NewSchema for statically known field sets; it panics on
// error and is intended for package-level construction of the stock
// schemas below.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// FieldNames returns the field names in schema order.
func (s *Schema) FieldNames() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Name
	}
	return out
}

// Index returns the position of the named field, or an error naming the
// available fields.
func (s *Schema) Index(name string) (int, error) {
	for i, f := range s.fields {
		if f.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: schema has no field %q (have %v)", name, s.FieldNames())
}

// InitState builds a node's initial state from its local value.
func (s *Schema) InitState(localValue float64) State {
	st := make(State, len(s.fields))
	for i, f := range s.fields {
		st[i] = f.Init(localValue)
	}
	return st
}

// Merge returns the field-wise merge of two states. Both peers of an
// exchange adopt the identical result, preserving the paper's symmetry.
func (s *Schema) Merge(a, b State) State {
	out := make(State, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Agg.Merge(a[i], b[i])
	}
	return out
}

// MergeInto writes the field-wise merge of a and b into both slices,
// avoiding allocation on the simulation hot path.
func (s *Schema) MergeInto(a, b State) {
	for i, f := range s.fields {
		m := f.Agg.Merge(a[i], b[i])
		a[i] = m
		b[i] = m
	}
}

// MergeExchange performs the passive half of one push-pull exchange in
// place: state becomes the field-wise merge of state and inbound, and
// inbound becomes the pre-merge state — exactly the payload the pull
// reply must carry (Figure 1, bottom). Rewriting the inbound buffer
// instead of snapshotting the pre-merge state lets the engine turn a
// received push's Fields buffer directly into the reply's Fields buffer
// with zero allocation.
func (s *Schema) MergeExchange(state, inbound State) {
	for i, f := range s.fields {
		pre := state[i]
		state[i] = f.Agg.Merge(pre, inbound[i])
		inbound[i] = pre
	}
}

// identity passes the local value through unchanged.
func identity(v float64) float64 { return v }

// AverageSchema gossips the plain average of the local values.
func AverageSchema() *Schema {
	return MustSchema(Field{Name: "avg", Agg: Average, Init: identity})
}

// SummarySchema gossips five fields at once — mean, mean of squares, min,
// max and a size indicator — so one protocol instance yields the full
// summary the paper's introduction motivates (average and extremal load,
// node count, totals).
//
// leader marks the single node whose size-indicator field starts at 1;
// everyone else starts at 0 (§4).
func SummarySchema() *Schema {
	return MustSchema(
		Field{Name: "avg", Agg: Average, Init: identity},
		Field{Name: "avgsq", Agg: Average, Init: func(v float64) float64 { return v * v }},
		Field{Name: "min", Agg: Min, Init: identity},
		Field{Name: "max", Agg: Max, Init: identity},
		Field{Name: "size", Agg: Average, Init: func(float64) float64 { return 0 }},
	)
}

// Summary is the decoded result of a SummarySchema state.
type Summary struct {
	Mean     float64 // average of local values
	Variance float64 // E[a²] − E[a]², clamped at 0
	Min      float64 // global minimum
	Max      float64 // global maximum
	Size     float64 // network size estimate (NaN until the indicator mixes)
	Sum      float64 // Mean · Size
}

// DecodeSummary interprets a SummarySchema state. The size estimate is
// 1/x_size per §4; a zero indicator (leaderless instance or unconverged
// state) decodes to NaN rather than +Inf so downstream statistics can
// filter it.
func DecodeSummary(schema *Schema, st State) (Summary, error) {
	if schema.Len() != len(st) {
		return Summary{}, fmt.Errorf("core: state has %d fields, schema wants %d", len(st), schema.Len())
	}
	idx := func(name string) int {
		i, err := schema.Index(name)
		if err != nil {
			i = -1
		}
		return i
	}
	avgI, sqI, minI, maxI, sizeI := idx("avg"), idx("avgsq"), idx("min"), idx("max"), idx("size")
	if avgI < 0 || sqI < 0 || minI < 0 || maxI < 0 || sizeI < 0 {
		return Summary{}, fmt.Errorf("core: schema %v is not a summary schema", schema.FieldNames())
	}
	sum := Summary{Mean: st[avgI], Min: st[minI], Max: st[maxI]}
	if v := st[sqI] - st[avgI]*st[avgI]; v > 0 {
		sum.Variance = v
	}
	if st[sizeI] > 0 {
		sum.Size = 1 / st[sizeI]
		sum.Sum = sum.Mean * sum.Size
	} else {
		sum.Size = math.NaN()
		sum.Sum = math.NaN()
	}
	return sum, nil
}

// SizeEstimate converts a converged size-indicator approximation x to the
// network size estimate 1/x (§4: exactly one node starts at 1, the rest
// at 0, so the true average is 1/N). Non-positive x returns NaN.
func SizeEstimate(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	return 1 / x
}
