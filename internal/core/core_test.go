package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestAggregateMerge(t *testing.T) {
	cases := []struct {
		agg  Aggregate
		x, y float64
		want float64
	}{
		{Average, 1, 3, 2},
		{Average, -2, 2, 0},
		{Max, 1, 3, 3},
		{Max, -5, -7, -5},
		{Min, 1, 3, 1},
		{Min, -5, -7, -7},
	}
	for _, tc := range cases {
		if got := tc.agg.Merge(tc.x, tc.y); got != tc.want {
			t.Errorf("%v.Merge(%g, %g) = %g, want %g", tc.agg, tc.x, tc.y, got, tc.want)
		}
	}
}

func TestAggregateMergeCommutative(t *testing.T) {
	check := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		for _, agg := range []Aggregate{Average, Max, Min} {
			if agg.Merge(x, y) != agg.Merge(y, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinIdempotent(t *testing.T) {
	check := func(x float64) bool {
		// (x+x)/2 overflows for |x| > MaxFloat64/2; that extreme is out
		// of the protocol's numeric contract.
		if math.IsNaN(x) || math.Abs(x) > math.MaxFloat64/2 {
			return true
		}
		return Max.Merge(x, x) == x && Min.Merge(x, x) == x && Average.Merge(x, x) == x
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseAggregate(t *testing.T) {
	for name, want := range map[string]Aggregate{
		"average": Average, "avg": Average, "max": Max, "min": Min,
	} {
		got, err := ParseAggregate(name)
		if err != nil || got != want {
			t.Errorf("ParseAggregate(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseAggregate("median"); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

func TestAggregateString(t *testing.T) {
	if Average.String() != "average" || Max.String() != "max" || Min.String() != "min" {
		t.Error("Aggregate String labels wrong")
	}
	if Aggregate(99).String() == "" {
		t.Error("invalid aggregate produced empty string")
	}
}

func TestMergeInvalidAggregatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge on invalid Aggregate did not panic")
		}
	}()
	Aggregate(99).Merge(1, 2)
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Field{Name: "a", Agg: Average}); err == nil {
		t.Error("nil Init accepted")
	}
	f := Field{Name: "a", Agg: Average, Init: func(v float64) float64 { return v }}
	if _, err := NewSchema(f, f); err == nil {
		t.Error("duplicate field names accepted")
	}
}

func TestSchemaIndexAndNames(t *testing.T) {
	s := SummarySchema()
	names := s.FieldNames()
	want := []string{"avg", "avgsq", "min", "max", "size"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, want)
		}
		idx, err := s.Index(n)
		if err != nil || idx != i {
			t.Fatalf("Index(%q) = %d, %v", n, idx, err)
		}
	}
	if _, err := s.Index("nope"); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestSchemaInitAndMerge(t *testing.T) {
	s := SummarySchema()
	a := s.InitState(4) // avg=4, avgsq=16, min=4, max=4, size=0
	b := s.InitState(2) // avg=2, avgsq=4,  min=2, max=2, size=0
	m := s.Merge(a, b)
	want := State{3, 10, 2, 4, 0}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("merge = %v, want %v", m, want)
		}
	}
	// MergeInto must write the same result into both states.
	s.MergeInto(a, b)
	for i := range want {
		if a[i] != want[i] || b[i] != want[i] {
			t.Fatalf("MergeInto: a=%v b=%v, want both %v", a, b, want)
		}
	}
}

func TestSchemaMergeExchange(t *testing.T) {
	s := SummarySchema()
	state := s.InitState(4)   // the passive node's state
	inbound := s.InitState(2) // the received push payload
	pre := append(State(nil), state...)
	merged := s.Merge(state, inbound)
	s.MergeExchange(state, inbound)
	for i := range merged {
		if state[i] != merged[i] {
			t.Fatalf("MergeExchange state = %v, want merge %v", state, merged)
		}
		if inbound[i] != pre[i] {
			t.Fatalf("MergeExchange inbound = %v, want pre-merge state %v", inbound, pre)
		}
	}
}

func TestDecodeSummary(t *testing.T) {
	s := SummarySchema()
	st := State{3, 10, 2, 4, 0.001} // 1/0.001 = 1000 nodes
	sum, err := DecodeSummary(s, st)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean != 3 {
		t.Errorf("mean = %g", sum.Mean)
	}
	if want := 10.0 - 9.0; math.Abs(sum.Variance-want) > 1e-12 {
		t.Errorf("variance = %g, want %g", sum.Variance, want)
	}
	if sum.Min != 2 || sum.Max != 4 {
		t.Errorf("min/max = %g/%g", sum.Min, sum.Max)
	}
	if math.Abs(sum.Size-1000) > 1e-9 {
		t.Errorf("size = %g, want 1000", sum.Size)
	}
	if math.Abs(sum.Sum-3000) > 1e-6 {
		t.Errorf("sum = %g, want 3000", sum.Sum)
	}
}

func TestDecodeSummaryZeroIndicator(t *testing.T) {
	s := SummarySchema()
	sum, err := DecodeSummary(s, State{1, 1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(sum.Size) || !math.IsNaN(sum.Sum) {
		t.Errorf("leaderless decode: size=%g sum=%g, want NaN", sum.Size, sum.Sum)
	}
}

func TestDecodeSummaryVarianceClamped(t *testing.T) {
	s := SummarySchema()
	// Rounding can push E[a²] − E[a]² slightly negative; must clamp.
	sum, err := DecodeSummary(s, State{2, 3.999999999, 2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Variance < 0 {
		t.Errorf("variance = %g, want clamped ≥ 0", sum.Variance)
	}
}

func TestDecodeSummaryErrors(t *testing.T) {
	s := SummarySchema()
	if _, err := DecodeSummary(s, State{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := DecodeSummary(AverageSchema(), State{1}); err == nil {
		t.Error("non-summary schema accepted")
	}
}

func TestSizeEstimate(t *testing.T) {
	if got := SizeEstimate(0.01); math.Abs(got-100) > 1e-9 {
		t.Errorf("SizeEstimate(0.01) = %g", got)
	}
	if !math.IsNaN(SizeEstimate(0)) || !math.IsNaN(SizeEstimate(-1)) {
		t.Error("non-positive indicator should estimate NaN")
	}
}

func TestNetworkConvergesToTrueMean(t *testing.T) {
	rng := xrand.New(300)
	nw, err := NewNetwork(AverageSchema(), 500, func(i int) float64 { return float64(i) }, rng)
	if err != nil {
		t.Fatal(err)
	}
	trueMean := nw.TrueMean()
	for c := 0; c < 30; c++ {
		nw.Cycle()
	}
	vals, err := nw.FieldValues("avg")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.Abs(v-trueMean) > 1e-6*math.Max(1, math.Abs(trueMean)) {
			t.Fatalf("node %d estimate %g, want %g", i, v, trueMean)
		}
	}
}

func TestNetworkSummaryConverges(t *testing.T) {
	rng := xrand.New(301)
	schema := SummarySchema()
	nw, err := NewNetwork(schema, 256, func(i int) float64 { return float64(i%7) + 1 }, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Elect node 0 as the size leader.
	idx, err := schema.Index("size")
	if err != nil {
		t.Fatal(err)
	}
	nw.Nodes()[0].State[idx] = 1
	for c := 0; c < 40; c++ {
		nw.Cycle()
	}
	sum, err := DecodeSummary(schema, nw.Nodes()[17].State)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Mean-nw.TrueMean()) > 1e-6 {
		t.Errorf("mean = %g, want %g", sum.Mean, nw.TrueMean())
	}
	if sum.Min != 1 || sum.Max != 7 {
		t.Errorf("min/max = %g/%g, want 1/7", sum.Min, sum.Max)
	}
	if math.Abs(sum.Size-256) > 1 {
		t.Errorf("size estimate = %g, want ≈ 256", sum.Size)
	}
}

func TestNetworkVarianceReductionRate(t *testing.T) {
	// The cycle-driven network implements GETPAIR_SEQ dynamics; its
	// per-cycle variance reduction must sit near 1/(2√e).
	rng := xrand.New(302)
	var acc stats.Running
	for run := 0; run < 10; run++ {
		nw, err := NewNetwork(AverageSchema(), 2000, func(int) float64 { return rng.NormFloat64() }, rng)
		if err != nil {
			t.Fatal(err)
		}
		before, err := nw.FieldVariance("avg")
		if err != nil {
			t.Fatal(err)
		}
		nw.Cycle()
		after, _ := nw.FieldVariance("avg")
		acc.Add(after / before)
	}
	if got := acc.Mean(); got < 0.27 || got > 0.33 {
		t.Fatalf("network one-cycle reduction = %.4f, want ≈ 0.30", got)
	}
}

func TestNetworkMassConservation(t *testing.T) {
	rng := xrand.New(303)
	nw, err := NewNetwork(AverageSchema(), 200, func(int) float64 { return rng.NormFloat64() }, rng)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := nw.FieldValues("avg")
	sumBefore := stats.Sum(before)
	for c := 0; c < 10; c++ {
		nw.Cycle()
	}
	after, _ := nw.FieldValues("avg")
	if diff := math.Abs(stats.Sum(after) - sumBefore); diff > 1e-9 {
		t.Fatalf("sum drifted by %g", diff)
	}
}

func TestNetworkJoinAndRemove(t *testing.T) {
	rng := xrand.New(304)
	nw, err := NewNetwork(AverageSchema(), 10, func(int) float64 { return 1 }, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := nw.Join(5)
	if nw.Size() != 11 {
		t.Fatalf("size = %d after join", nw.Size())
	}
	if n.State[0] != 5 {
		t.Fatalf("joiner state = %v", n.State)
	}
	removed := nw.RemoveRandom(4)
	if removed != 4 || nw.Size() != 7 {
		t.Fatalf("removed %d, size %d", removed, nw.Size())
	}
	// Never shrinks below 2.
	removed = nw.RemoveRandom(100)
	if nw.Size() != 2 {
		t.Fatalf("size = %d, want floor of 2", nw.Size())
	}
	if removed != 5 {
		t.Fatalf("removed = %d, want 5", removed)
	}
}

func TestNetworkIDsNeverReused(t *testing.T) {
	rng := xrand.New(305)
	nw, err := NewNetwork(AverageSchema(), 5, func(int) float64 { return 0 }, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, n := range nw.Nodes() {
		seen[n.ID] = true
	}
	nw.RemoveRandom(3)
	for i := 0; i < 10; i++ {
		n := nw.Join(0)
		if seen[n.ID] {
			t.Fatalf("ID %d reused", n.ID)
		}
		seen[n.ID] = true
	}
}

func TestNetworkRestart(t *testing.T) {
	rng := xrand.New(306)
	nw, err := NewNetwork(AverageSchema(), 50, func(i int) float64 { return float64(i) }, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 20; c++ {
		nw.Cycle()
	}
	// Change local values, restart, converge to the new mean.
	for _, n := range nw.Nodes() {
		n.Value = 42
	}
	nw.Restart()
	for c := 0; c < 20; c++ {
		nw.Cycle()
	}
	vals, _ := nw.FieldValues("avg")
	for _, v := range vals {
		if math.Abs(v-42) > 1e-9 {
			t.Fatalf("after restart estimate = %g, want 42", v)
		}
	}
}

func TestNetworkRejectsTiny(t *testing.T) {
	rng := xrand.New(307)
	if _, err := NewNetwork(AverageSchema(), 1, func(int) float64 { return 0 }, rng); err == nil {
		t.Fatal("1-node network accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema with no fields did not panic")
		}
	}()
	MustSchema()
}
