package core

import (
	"fmt"
	"math"
)

// The paper (§1.1) notes that being able to average makes it possible to
// compute "any moments (using averages of different powers of the value
// set)". This file provides the ready-made schemas for that: raw moments
// up to order k (decoding to variance, skewness and kurtosis) and the
// geometric mean via averaged logarithms.

// MomentsSchema gossips the averages of v, v², … v^order in one
// instance. order must be between 2 and 8 (order 1 is AverageSchema;
// beyond 8 float64 powers of typical values overflow or drown in
// rounding before they are statistically useful).
func MomentsSchema(order int) (*Schema, error) {
	if order < 2 || order > 8 {
		return nil, fmt.Errorf("core: moments order must be in [2, 8], got %d", order)
	}
	fields := make([]Field, 0, order)
	for p := 1; p <= order; p++ {
		power := p
		fields = append(fields, Field{
			Name: fmt.Sprintf("m%d", power),
			Agg:  Average,
			Init: func(v float64) float64 { return math.Pow(v, float64(power)) },
		})
	}
	return NewSchema(fields...)
}

// Moments is the decoded result of a MomentsSchema state.
type Moments struct {
	// Raw holds the raw moments E[v^p], index 0 = E[v].
	Raw []float64
	// Mean is E[v].
	Mean float64
	// Variance is the central second moment (clamped at 0).
	Variance float64
	// Skewness is the standardized third central moment (0 when the
	// variance vanishes or order < 3).
	Skewness float64
	// Kurtosis is the standardized fourth central moment, NOT excess
	// (3 for a Gaussian; 0 when variance vanishes or order < 4).
	Kurtosis float64
}

// DecodeMoments interprets a MomentsSchema state.
func DecodeMoments(schema *Schema, st State) (Moments, error) {
	if schema.Len() != len(st) {
		return Moments{}, fmt.Errorf("core: state has %d fields, schema wants %d", len(st), schema.Len())
	}
	if schema.Len() < 2 {
		return Moments{}, fmt.Errorf("core: schema %v is not a moments schema", schema.FieldNames())
	}
	for p := 1; p <= schema.Len(); p++ {
		if _, err := schema.Index(fmt.Sprintf("m%d", p)); err != nil {
			return Moments{}, fmt.Errorf("core: schema %v is not a moments schema", schema.FieldNames())
		}
	}
	m := Moments{Raw: append([]float64(nil), st...)}
	m.Mean = st[0]
	if v := st[1] - st[0]*st[0]; v > 0 {
		m.Variance = v
	}
	if len(st) >= 3 && m.Variance > 0 {
		mu, v := m.Mean, m.Variance
		third := st[2] - 3*mu*st[1] + 2*mu*mu*mu
		m.Skewness = third / math.Pow(v, 1.5)
	}
	if len(st) >= 4 && m.Variance > 0 {
		mu, v := m.Mean, m.Variance
		fourth := st[3] - 4*mu*st[2] + 6*mu*mu*st[1] - 3*mu*mu*mu*mu
		m.Kurtosis = fourth / (v * v)
	}
	return m, nil
}

// GeometricSchema gossips the average of log(v), so the decoded result
// is the geometric mean of the (strictly positive) local values — the
// standard trick for averaging rates and multiplicative quantities.
// Non-positive local values initialize to NaN and poison the instance,
// surfacing the contract violation instead of silently corrupting it.
func GeometricSchema() *Schema {
	return MustSchema(Field{
		Name: "logavg",
		Agg:  Average,
		Init: func(v float64) float64 {
			if v <= 0 {
				return math.NaN()
			}
			return math.Log(v)
		},
	})
}

// DecodeGeometricMean interprets a GeometricSchema state.
func DecodeGeometricMean(schema *Schema, st State) (float64, error) {
	idx, err := schema.Index("logavg")
	if err != nil {
		return 0, fmt.Errorf("core: schema %v is not a geometric schema", schema.FieldNames())
	}
	if idx >= len(st) {
		return 0, fmt.Errorf("core: state has %d fields, need %d", len(st), idx+1)
	}
	return math.Exp(st[idx]), nil
}
