// Package core implements the anti-entropy aggregation protocol of the
// paper's Figure 1 at node granularity: every node holds a local value
// a_i and an approximation x_i of the global aggregate; an elementary
// exchange between nodes i and j replaces both approximations with
// AGGREGATE(x_i, x_j).
//
// The package provides the AGGREGATE implementations (average — the
// paper's analytical focus — plus max, min and the derived aggregates
// built from averages: counting/size, sum and variance via second
// moments), multi-field states that gossip several aggregates in one
// exchange, and a cycle-driven Network that supports the churn scenarios
// of Section 4.
package core

import "fmt"

// Aggregate identifies an elementary aggregation function. Aggregates
// must be commutative and idempotent-safe in the sense of the paper: the
// same function is applied at both peers so that both adopt the identical
// merged approximation.
type Aggregate int

// Supported elementary aggregation functions.
const (
	// Average replaces both approximations with their mean — the
	// variance-reduction step of Figure 2 and the basis of every derived
	// aggregate (counting, sums, moments).
	Average Aggregate = iota + 1
	// Max spreads the maximum epidemically (equivalent to push-pull
	// broadcast of the extremum, §1.1).
	Max
	// Min spreads the minimum epidemically.
	Min
)

// String returns the lowercase name of the aggregate.
func (a Aggregate) String() string {
	switch a {
	case Average:
		return "average"
	case Max:
		return "max"
	case Min:
		return "min"
	default:
		return fmt.Sprintf("aggregate(%d)", int(a))
	}
}

// Merge applies the elementary aggregation function to a pair of
// approximations and returns the value both peers adopt.
func (a Aggregate) Merge(x, y float64) float64 {
	switch a {
	case Average:
		return (x + y) / 2
	case Max:
		if x > y {
			return x
		}
		return y
	case Min:
		if x < y {
			return x
		}
		return y
	default:
		panic("core: Merge on invalid Aggregate " + a.String())
	}
}

// ParseAggregate maps a name ("average", "max", "min") to its Aggregate.
func ParseAggregate(name string) (Aggregate, error) {
	switch name {
	case "average", "avg":
		return Average, nil
	case "max":
		return Max, nil
	case "min":
		return Min, nil
	default:
		return 0, fmt.Errorf("core: unknown aggregate %q (want average, max or min)", name)
	}
}
