package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Node is one participant of a cycle-driven aggregation network.
type Node struct {
	// ID is a stable identifier assigned at join time; IDs are never
	// reused within one Network.
	ID int64
	// Value is the node's local attribute a_i (read by Init at protocol
	// restart; changing it models a dynamically varying attribute).
	Value float64
	// State is the node's current vector of approximations x_i.
	State State
}

// Network is a cycle-driven simulation of the Figure 1 protocol under the
// complete-overlay (or ideal peer-sampling) assumption: at every cycle
// each node initiates one exchange with a uniformly random other live
// node, mirroring GETPAIR_SEQ. Nodes can join and leave between cycles,
// which is the churn model behind Figure 4.
//
// The exchange loop itself is delegated to the unified kernel
// (internal/sim): each Cycle scatters the node states into the kernel's
// structure-of-arrays columns, runs one kernel cycle and gathers the
// results back, consuming the RNG exactly as the historical loop did so
// fixed seeds reproduce the pre-kernel trajectories bit for bit. The
// per-node State slices remain the source of truth between cycles, so
// callers may keep mutating them directly.
//
// Network is not safe for concurrent use; the asynchronous runtime lives
// in internal/engine.
type Network struct {
	schema *Schema
	rng    *xrand.Rand
	nodes  []*Node
	nextID int64
	kern   *sim.Kernel
}

// NewNetwork builds a network of n nodes whose local values are produced
// by value(i) and whose states are initialized from the schema.
func NewNetwork(schema *Schema, n int, value func(i int) float64, rng *xrand.Rand) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: network needs at least 2 nodes, got %d", n)
	}
	kern, err := sim.New(sim.Config{
		Size: n,
		Ops:  schemaOps(schema),
		RNG:  rng,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build kernel: %w", err)
	}
	nw := &Network{schema: schema, rng: rng, nodes: make([]*Node, 0, n), kern: kern}
	for i := 0; i < n; i++ {
		nw.Join(value(i))
	}
	return nw, nil
}

// schemaOps maps the schema's per-field aggregation functions onto the
// kernel's merge operators.
func schemaOps(schema *Schema) []sim.Op {
	ops := make([]sim.Op, len(schema.fields))
	for i, f := range schema.fields {
		switch f.Agg {
		case Min:
			ops[i] = sim.OpMin
		case Max:
			ops[i] = sim.OpMax
		case Average:
			ops[i] = sim.OpAvg
		default:
			panic("core: schema field " + f.Name + " has invalid Aggregate " + f.Agg.String())
		}
	}
	return ops
}

// Schema returns the gossip schema shared by all nodes.
func (nw *Network) Schema() *Schema { return nw.schema }

// Size returns the current number of live nodes.
func (nw *Network) Size() int { return len(nw.nodes) }

// Nodes returns the live node slice (shared; treat as read-only).
func (nw *Network) Nodes() []*Node { return nw.nodes }

// Join adds a node with the given local value and a freshly initialized
// state, returning it. In epoch-based deployments joiners wait for the
// next restart; that policy lives in internal/epoch, which calls Join at
// the right boundary.
func (nw *Network) Join(value float64) *Node {
	n := &Node{ID: nw.nextID, Value: value, State: nw.schema.InitState(value)}
	nw.nextID++
	nw.nodes = append(nw.nodes, n)
	return n
}

// RemoveRandom removes k uniformly random nodes (crash model: their state
// mass disappears, which is exactly the perturbation Figure 4 tolerates).
// It removes at most Size()-2 nodes so the network stays exchangeable,
// and returns how many were removed.
func (nw *Network) RemoveRandom(k int) int {
	removed := 0
	for removed < k && len(nw.nodes) > 2 {
		i := nw.rng.Intn(len(nw.nodes))
		last := len(nw.nodes) - 1
		nw.nodes[i] = nw.nodes[last]
		nw.nodes[last] = nil
		nw.nodes = nw.nodes[:last]
		removed++
	}
	return removed
}

// Restart re-initializes every node's state from its current local value
// — the start of a new epoch (§4).
func (nw *Network) Restart() {
	for _, n := range nw.nodes {
		n.State = nw.schema.InitState(n.Value)
	}
}

// Cycle runs one protocol cycle: every node, in slice order, initiates a
// push-pull exchange with a uniformly random other node and both adopt
// the merged state (GETPAIR_SEQ dynamics). The elementary steps execute
// inside the unified kernel.
func (nw *Network) Cycle() {
	n := len(nw.nodes)
	if n < 2 {
		return
	}
	if nw.kern.Size() != n {
		nw.kern.Resize(n)
	}
	fields := nw.schema.Len()
	for f := 0; f < fields; f++ {
		col := nw.kern.Column(f)
		for i, node := range nw.nodes {
			col[i] = node.State[f]
		}
	}
	nw.kern.Cycle()
	for f := 0; f < fields; f++ {
		col := nw.kern.Column(f)
		for i, node := range nw.nodes {
			node.State[f] = col[i]
		}
	}
}

// FieldValues returns every live node's approximation of the named field,
// in node order — the vector the empirical statistics of §3 are computed
// over.
func (nw *Network) FieldValues(name string) ([]float64, error) {
	idx, err := nw.schema.Index(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(nw.nodes))
	for i, node := range nw.nodes {
		out[i] = node.State[idx]
	}
	return out, nil
}

// FieldVariance returns the empirical variance (paper eq. 3) of the named
// field's approximations across live nodes.
func (nw *Network) FieldVariance(name string) (float64, error) {
	vals, err := nw.FieldValues(name)
	if err != nil {
		return 0, err
	}
	return stats.Variance(vals), nil
}

// TrueMean returns the current mean of the nodes' local values — the
// target the "avg" field converges to within an epoch.
func (nw *Network) TrueMean() float64 {
	vals := make([]float64, len(nw.nodes))
	for i, n := range nw.nodes {
		vals[i] = n.Value
	}
	return stats.Mean(vals)
}
