package core
