package stats

import "fmt"

// Series accumulates one named curve across repeated simulation runs:
// each x-position (network size, cycle index, …) gets its own Running
// accumulator, so after R runs every point carries a mean, a standard
// error and min/max envelope — exactly what the paper's figures plot
// ("values are averages over 50 independent runs", error bars on Fig. 4).
type Series struct {
	name   string
	xs     []float64
	points map[float64]*Running
}

// NewSeries returns an empty series with the given display name.
func NewSeries(name string) *Series {
	return &Series{name: name, points: make(map[float64]*Running)}
}

// Name returns the display name given at construction.
func (s *Series) Name() string { return s.name }

// Observe folds one observation for x-position x into the series.
// X-positions are remembered in first-seen order.
func (s *Series) Observe(x, y float64) {
	acc, seen := s.points[x]
	if !seen {
		acc = &Running{}
		s.points[x] = acc
		s.xs = append(s.xs, x)
	}
	acc.Add(y)
}

// Point is one aggregated sample of a series.
type Point struct {
	X      float64 // x-position (network size, cycle, …)
	Mean   float64 // mean across runs
	StdErr float64 // standard error of the mean
	Min    float64 // smallest observation
	Max    float64 // largest observation
	N      int     // number of runs folded in
}

// Points returns the aggregated points in first-observed x order.
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.xs))
	for _, x := range s.xs {
		acc := s.points[x]
		out = append(out, Point{
			X:      x,
			Mean:   acc.Mean(),
			StdErr: acc.StdErr(),
			Min:    acc.Min(),
			Max:    acc.Max(),
			N:      acc.N(),
		})
	}
	return out
}

// TSV renders the series as tab-separated rows
// (x, mean, stderr, min, max, runs) with a header comment, the format the
// cmd/figures tool emits for gnuplot-style consumption.
func (s *Series) TSV() string {
	out := fmt.Sprintf("# series: %s\n# x\tmean\tstderr\tmin\tmax\truns\n", s.name)
	for _, p := range s.Points() {
		out += fmt.Sprintf("%g\t%.6g\t%.3g\t%.6g\t%.6g\t%d\n",
			p.X, p.Mean, p.StdErr, p.Min, p.Max, p.N)
	}
	return out
}
