package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanKnownValues(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, 2, -4, 4}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); got != tc.want {
				t.Fatalf("Mean(%v) = %g, want %g", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceKnownValues(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"constant", []float64{2, 2, 2, 2}, 0},
		{"simple", []float64{1, 2, 3, 4, 5}, 2.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Variance(tc.in); !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("Variance(%v) = %g, want %g", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceShiftInvariant(t *testing.T) {
	check := func(raw []float64, shift float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return true
			}
			xs = append(xs, v)
		}
		if math.IsNaN(shift) || math.Abs(shift) > 1e6 {
			return true
		}
		v1 := Variance(xs)
		shifted := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + shift
		}
		v2 := Variance(shifted)
		scale := math.Max(1, math.Abs(v1))
		return almostEqual(v1, v2, 1e-6*scale+1e-6)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSumKahanAccuracy(t *testing.T) {
	// 1 + many tiny values: naive summation loses them, Kahan keeps them.
	xs := make([]float64, 1+1<<20)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + float64(1<<20)*1e-16
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("Kahan Sum = %.18g, want %.18g", got, want)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = (%g, %g), want (-1, 5)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsInf(lo, 1) || !math.IsInf(hi, -1) {
		t.Fatalf("empty MinMax = (%g, %g), want (+Inf, -Inf)", lo, hi)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true
			}
			xs = append(xs, v)
		}
		var r Running
		for _, v := range xs {
			r.Add(v)
		}
		if r.N() != len(xs) {
			return false
		}
		wantMean, wantVar := Mean(xs), Variance(xs)
		scale := math.Max(1, math.Abs(wantVar))
		return almostEqual(r.Mean(), wantMean, 1e-9*math.Max(1, math.Abs(wantMean))) &&
			almostEqual(r.Variance(), wantVar, 1e-8*scale)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	check := func(rawA, rawB []float64) bool {
		clean := func(raw []float64) []float64 {
			xs := make([]float64, 0, len(raw))
			for _, v := range raw {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
					continue
				}
				xs = append(xs, v)
			}
			return xs
		}
		a, b := clean(rawA), clean(rawB)
		var ra, rb, whole Running
		for _, v := range a {
			ra.Add(v)
			whole.Add(v)
		}
		for _, v := range b {
			rb.Add(v)
			whole.Add(v)
		}
		ra.Merge(rb)
		if ra.N() != whole.N() {
			return false
		}
		if ra.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(whole.Variance()))
		return almostEqual(ra.Mean(), whole.Mean(), 1e-8*math.Max(1, math.Abs(whole.Mean()))) &&
			almostEqual(ra.Variance(), whole.Variance(), 1e-7*scale) &&
			ra.Min() == whole.Min() && ra.Max() == whole.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMinMaxStdErr(t *testing.T) {
	var r Running
	for _, v := range []float64{4, 2, 8, 6} {
		r.Add(v)
	}
	if r.Min() != 2 || r.Max() != 8 {
		t.Fatalf("min/max = %g/%g, want 2/8", r.Min(), r.Max())
	}
	wantSE := r.StdDev() / 2 // sqrt(4) = 2 observations
	if !almostEqual(r.StdErr(), wantSE, 1e-12) {
		t.Fatalf("stderr = %g, want %g", r.StdErr(), wantSE)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty slice should be NaN")
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 3, 5, 7, 9, -2, 15} {
		h.Add(v)
	}
	counts := h.Counts()
	if h.N() != 8 {
		t.Fatalf("N = %d, want 8", h.N())
	}
	// -2 clamps to bin 0, 15 clamps to bin 4.
	want := []int{3, 1, 1, 1, 2}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %g, want 1", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(10, 0, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestSeriesAggregation(t *testing.T) {
	s := NewSeries("test")
	s.Observe(100, 0.30)
	s.Observe(100, 0.40)
	s.Observe(200, 0.25)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].X != 100 || !almostEqual(pts[0].Mean, 0.35, 1e-12) || pts[0].N != 2 {
		t.Fatalf("point 0 = %+v", pts[0])
	}
	if pts[0].Min != 0.30 || pts[0].Max != 0.40 {
		t.Fatalf("point 0 min/max = %g/%g", pts[0].Min, pts[0].Max)
	}
	if pts[1].X != 200 || pts[1].N != 1 {
		t.Fatalf("point 1 = %+v", pts[1])
	}
}

func TestSeriesPreservesOrder(t *testing.T) {
	s := NewSeries("order")
	for _, x := range []float64{5, 1, 3} {
		s.Observe(x, 0)
	}
	pts := s.Points()
	if pts[0].X != 5 || pts[1].X != 1 || pts[2].X != 3 {
		t.Fatalf("x order = %v %v %v, want first-seen order 5 1 3", pts[0].X, pts[1].X, pts[2].X)
	}
}

func TestSeriesTSV(t *testing.T) {
	s := NewSeries("curve")
	s.Observe(1, 0.5)
	out := s.TSV()
	if !strings.Contains(out, "# series: curve") {
		t.Errorf("TSV missing header: %q", out)
	}
	if !strings.Contains(out, "1\t0.5") {
		t.Errorf("TSV missing data row: %q", out)
	}
}
