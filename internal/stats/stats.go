// Package stats provides the statistical primitives the paper's analysis
// relies on: empirical mean and (unbiased) empirical variance of a value
// vector (paper equations 2 and 3), Welford-style running moments for
// streaming data, histograms and series accumulation across repeated
// simulation runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the empirical mean of xs (paper eq. 2). It returns 0 for an
// empty slice so callers don't need a special case when a network empties
// out mid-experiment.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased empirical variance of xs with the 1/(N-1)
// normalization used in paper eq. 3. Slices with fewer than two elements
// have zero variance by convention.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Sum returns the sum of xs using Kahan compensated summation so that the
// mass-conservation invariant can be checked at N = 100000 without the
// check itself drowning in rounding error.
func Sum(xs []float64) float64 {
	sum, comp := 0.0, 0.0
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// MinMax returns the smallest and largest element of xs. It returns
// (+Inf, -Inf) for an empty slice, which composes neatly with further
// min/max reductions.
func MinMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Running accumulates streaming first and second moments with Welford's
// numerically stable update. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations folded in so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased running variance (0 when n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased running standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean (0 when n < 2).
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Merge combines another accumulator into r (parallel Welford merge), so
// per-goroutine accumulators can be reduced after a parallel sweep.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	total := n1 + n2
	r.m2 += o.m2 + delta*delta*n1*n2/total
	r.mean += delta * n2 / total
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// MedianOfMeans is a robust streaming location estimator: observations
// are dealt round-robin into B bucket accumulators and the estimate is
// the median of the bucket means. With an adversary fraction f < 1/(2B)
// of the stream, a majority of buckets stay uncontaminated, so the
// median ignores the poisoned ones — the classical median-of-means
// bound. The zero value is unusable; construct with NewMedianOfMeans.
//
// Assignment by stream position makes the estimator order-dependent but
// deterministic for a fixed fold order (System.Reduce folds nodes in
// index order), and AddAt allows explicit index-based assignment so
// parallel shards can fold disjoint node ranges and Merge the results.
type MedianOfMeans struct {
	buckets []Running
	next    int
}

// NewMedianOfMeans returns an estimator with b buckets (b ≥ 1; even
// counts are rounded up to odd so the median is a single bucket mean).
func NewMedianOfMeans(b int) *MedianOfMeans {
	if b < 1 {
		b = 1
	}
	if b%2 == 0 {
		b++
	}
	return &MedianOfMeans{buckets: make([]Running, b)}
}

// Buckets returns the bucket count.
func (m *MedianOfMeans) Buckets() int { return len(m.buckets) }

// Add deals one observation into the next bucket (round-robin).
func (m *MedianOfMeans) Add(x float64) {
	m.buckets[m.next].Add(x)
	m.next++
	if m.next == len(m.buckets) {
		m.next = 0
	}
}

// AddAt folds one observation into the bucket of stream index i (i mod
// B) — the parallel-shard form of Add, stable under any fold order.
func (m *MedianOfMeans) AddAt(i int, x float64) {
	m.buckets[i%len(m.buckets)].Add(x)
}

// N returns the number of observations folded in so far.
func (m *MedianOfMeans) N() int {
	n := 0
	for i := range m.buckets {
		n += m.buckets[i].N()
	}
	return n
}

// Merge combines another estimator into m bucket-wise (both must have
// the same bucket count; mismatches fold o's buckets round-robin).
func (m *MedianOfMeans) Merge(o *MedianOfMeans) {
	for i := range o.buckets {
		m.buckets[i%len(m.buckets)].Merge(o.buckets[i])
	}
}

// Estimate returns the median of the non-empty bucket means (NaN when
// every bucket is empty).
func (m *MedianOfMeans) Estimate() float64 {
	means := make([]float64, 0, len(m.buckets))
	for i := range m.buckets {
		if m.buckets[i].N() > 0 {
			means = append(means, m.buckets[i].Mean())
		}
	}
	if len(means) == 0 {
		return math.NaN()
	}
	sort.Float64s(means)
	return QuantileSorted(means, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted returns the q-quantile (0 ≤ q ≤ 1) of an already
// sorted slice using linear interpolation between closest ranks. It is
// the allocation-free core of Quantile for callers that need several
// quantiles of one vector (sort once, sample many).
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts observations into equal-width bins over [lo, hi].
// Out-of-range observations clamp to the boundary bins, which keeps every
// observation visible when an experiment misbehaves.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
}

// NewHistogram returns a histogram with the given number of bins over
// [lo, hi]. It returns an error (rather than panicking) on a degenerate
// range so experiment code can surface configuration bugs cleanly.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) is empty", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.n++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// N returns the number of recorded observations.
func (h *Histogram) N() int { return h.n }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + w*(float64(i)+0.5)
}
