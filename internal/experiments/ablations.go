package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/scenario"
)

// CyclesToAccuracyConfig parameterizes experiment E5: how many AVG cycles
// it takes to cut the variance by a target factor (the paper's §5 claim:
// 99.9 % in ln(1000) ≈ 7 cycles even with getPair_rand).
type CyclesToAccuracyConfig struct {
	// Size is the network size.
	Size int
	// Target is the variance ratio to reach (e.g. 1e-3 for 99.9 %).
	Target float64
	// Runs is the number of repetitions.
	Runs int
	// Selectors are the pair selectors to compare.
	Selectors []string
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultCyclesToAccuracy returns the §5 scenario on the complete graph.
func DefaultCyclesToAccuracy() CyclesToAccuracyConfig {
	return CyclesToAccuracyConfig{
		Size:      10000,
		Target:    1e-3,
		Runs:      20,
		Selectors: []string{"pm", "rand", "seq"},
		Seed:      5,
	}
}

// maxAccuracyCycles bounds the E5 search horizon.
const maxAccuracyCycles = 200

// CyclesToAccuracy returns one series per selector with a single point:
// x = 0, y = cycles needed for σ²/σ₀² ≤ Target on the complete graph.
// Each selector is one Spec with the engine's early-stop target ratio;
// the cycle count is read off the last emitted row.
func CyclesToAccuracy(ctx context.Context, cfg CyclesToAccuracyConfig) ([]*stats.Series, error) {
	if cfg.Target <= 0 || cfg.Target >= 1 {
		return nil, fmt.Errorf("experiments: target ratio must be in (0,1), got %g", cfg.Target)
	}
	// One batched Run for the whole sweep: the engine keeps its worker
	// kernels warm across cells, and rows carry the cell index.
	specs := make([]scenario.Spec, len(cfg.Selectors))
	out := make([]*stats.Series, len(cfg.Selectors))
	for i, sel := range cfg.Selectors {
		selector, err := scenario.ParseSelector(sel)
		if err != nil {
			return nil, err
		}
		specs[i] = scenario.Spec{
			Name:        "cycles-to-accuracy",
			Size:        cfg.Size,
			Cycles:      maxAccuracyCycles,
			Selector:    selector,
			TargetRatio: cfg.Target,
			Repeats:     cfg.Runs,
			Seed:        cfg.Seed ^ hashLabel(sel, "ctacc", cfg.Size),
		}
		out[i] = stats.NewSeries(fmt.Sprintf("cycles_to_%.0e_%s", cfg.Target, sel))
	}
	var col scenario.Collector
	if err := scenario.Run(ctx, specs, &col); err != nil {
		return nil, err
	}
	rows := col.Results()
	var initial float64
	for i, r := range rows {
		if r.Cycle == 0 {
			initial = r.Variance
		}
		if last := i+1 == len(rows) || rows[i+1].Cycle == 0; !last {
			continue
		}
		if r.Variance > cfg.Target*initial {
			return nil, fmt.Errorf("experiments: %s did not reach %g in %d cycles", cfg.Selectors[r.Cell], cfg.Target, maxAccuracyCycles)
		}
		out[r.Cell].Observe(0, float64(r.Cycle))
	}
	return out, nil
}

// LossAblationConfig parameterizes experiment E6 (message loss): run AVG
// with lossy exchanges and measure both the convergence slowdown and the
// error the asymmetric losses introduce into the estimated mean.
type LossAblationConfig struct {
	// Size is the network size.
	Size int
	// Cycles is how long to run.
	Cycles int
	// LossProbs are the per-message drop probabilities to sweep.
	LossProbs []float64
	// Runs is the number of repetitions per probability.
	Runs int
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultLossAblation returns the E6 loss sweep.
func DefaultLossAblation() LossAblationConfig {
	return LossAblationConfig{
		Size:      10000,
		Cycles:    20,
		LossProbs: []float64{0, 0.05, 0.1, 0.2, 0.4},
		Runs:      20,
		Seed:      6,
	}
}

// LossResult summarizes the loss sweep at one probability.
type LossResult struct {
	// LossProb is the per-message drop probability.
	LossProb float64
	// ReductionRate is the mean per-cycle variance reduction observed.
	ReductionRate float64
	// MeanDrift is the mean absolute deviation of the final vector mean
	// from the true initial mean, in units of the initial standard
	// deviation — the error mass-violating losses introduce.
	MeanDrift float64
}

// LossAblation sweeps message-loss probabilities with getPair_seq on the
// complete graph (the deployed protocol's asymmetric reply-loss model).
func LossAblation(ctx context.Context, cfg LossAblationConfig) ([]LossResult, error) {
	specs := make([]scenario.Spec, len(cfg.LossProbs))
	for i, p := range cfg.LossProbs {
		specs[i] = scenario.Spec{
			Name:     "loss-ablation",
			Size:     cfg.Size,
			Cycles:   cfg.Cycles,
			Loss:     scenario.LossReply,
			LossProb: p,
			Repeats:  cfg.Runs,
			Seed:     cfg.Seed ^ hashLabel("seq", "loss", int(p*1e6)),
		}
	}
	var col scenario.Collector
	if err := scenario.Run(ctx, specs, &col); err != nil {
		return nil, err
	}
	rates := make([][]float64, len(specs))
	drifts := make([][]float64, len(specs))
	var trueMean, initialSD, first float64
	for _, r := range col.Results() {
		if r.Cycle == 0 {
			trueMean, first = r.Mean, r.Variance
			initialSD = math.Sqrt(r.Variance)
			continue
		}
		if r.Cycle < cfg.Cycles {
			continue
		}
		rate := 0.0
		if first > 0 && r.Variance > 0 {
			rate = math.Pow(r.Variance/first, 1/float64(cfg.Cycles))
		}
		rates[r.Cell] = append(rates[r.Cell], rate)
		drifts[r.Cell] = append(drifts[r.Cell], math.Abs(r.Mean-trueMean)/initialSD)
	}
	out := make([]LossResult, 0, len(cfg.LossProbs))
	for i, p := range cfg.LossProbs {
		out = append(out, LossResult{
			LossProb:      p,
			ReductionRate: stats.Mean(rates[i]),
			MeanDrift:     stats.Mean(drifts[i]),
		})
	}
	return out, nil
}

// CrashAblationConfig parameterizes experiment E6 (crashes): a fraction
// of nodes fails right after initialization, taking their value mass with
// them; the survivors converge to the surviving mean, and we measure how
// far that lands from the original target.
type CrashAblationConfig struct {
	// Size is the initial network size.
	Size int
	// CrashFractions are the fractions of nodes to kill at cycle 0.
	CrashFractions []float64
	// Cycles is how long survivors run.
	Cycles int
	// Runs is the number of repetitions per fraction.
	Runs int
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultCrashAblation returns the E6 crash sweep.
func DefaultCrashAblation() CrashAblationConfig {
	return CrashAblationConfig{
		Size:           10000,
		CrashFractions: []float64{0, 0.01, 0.05, 0.1, 0.2, 0.5},
		Cycles:         20,
		Runs:           20,
		Seed:           7,
	}
}

// CrashResult summarizes the crash sweep at one fraction.
type CrashResult struct {
	// Fraction of nodes crashed at cycle 0.
	Fraction float64
	// MeanError is the mean absolute deviation of the survivors'
	// converged estimate from the pre-crash true mean, in units of the
	// initial standard deviation.
	MeanError float64
	// FinalVarianceRatio is σ²_final/σ²₀ among survivors (convergence
	// is unharmed; only the target shifts).
	FinalVarianceRatio float64
}

// CrashAblation sweeps crash fractions with getPair_seq on the complete
// graph over the survivors.
func CrashAblation(ctx context.Context, cfg CrashAblationConfig) ([]CrashResult, error) {
	specs := make([]scenario.Spec, len(cfg.CrashFractions))
	for i, f := range cfg.CrashFractions {
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("experiments: crash fraction must be in [0,1), got %g", f)
		}
		crash := f
		if crash == 0 {
			// The historical driver drew the crash permutation even at
			// fraction 0; a fraction too small to remove anyone keeps the
			// random stream — and therefore the emitted numbers —
			// byte-identical to it.
			crash = math.SmallestNonzeroFloat64
		}
		specs[i] = scenario.Spec{
			Name:          "crash-ablation",
			Size:          cfg.Size,
			Cycles:        cfg.Cycles,
			CrashFraction: crash,
			Repeats:       cfg.Runs,
			Seed:          cfg.Seed ^ hashLabel("seq", "crash", int(f*1e6)),
		}
	}
	var col scenario.Collector
	if err := scenario.Run(ctx, specs, &col); err != nil {
		return nil, err
	}
	errs := make([][]float64, len(specs))
	ratios := make([][]float64, len(specs))
	var trueMean, initialSD, survivorVar0 float64
	for _, r := range col.Results() {
		switch {
		case r.Cycle == -1:
			trueMean = r.Mean
			initialSD = math.Sqrt(r.Variance)
		case r.Cycle == 0:
			survivorVar0 = r.Variance
		case r.Cycle == cfg.Cycles:
			errs[r.Cell] = append(errs[r.Cell], math.Abs(r.Mean-trueMean)/initialSD)
			ratio := 0.0
			if survivorVar0 > 0 {
				ratio = r.Variance / survivorVar0
			}
			ratios[r.Cell] = append(ratios[r.Cell], ratio)
		}
	}
	out := make([]CrashResult, 0, len(cfg.CrashFractions))
	for i, f := range cfg.CrashFractions {
		out = append(out, CrashResult{
			Fraction:           f,
			MeanError:          stats.Mean(errs[i]),
			FinalVarianceRatio: stats.Mean(ratios[i]),
		})
	}
	return out, nil
}

// TopologySweepConfig parameterizes the overlay-sensitivity ablation: the
// same one-cycle reduction measurement as Figure 3(a), across structured
// topologies the paper's theory does not cover.
type TopologySweepConfig struct {
	// Size is the network size.
	Size int
	// ViewSize is the degree parameter.
	ViewSize int
	// Cycles is how many AVG iterations the per-cycle rate is averaged
	// over; structured topologies (ring, small world) look fine for one
	// cycle and only reveal their diffusive mixing over many.
	Cycles int
	// Runs is the number of repetitions per topology.
	Runs int
	// Topologies to sweep.
	Topologies []TopologyKind
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultTopologySweep returns the overlay ablation.
func DefaultTopologySweep() TopologySweepConfig {
	return TopologySweepConfig{
		Size:       10000,
		ViewSize:   20,
		Cycles:     15,
		Runs:       20,
		Topologies: []TopologyKind{Complete, KRegular, RandomView, SmallWorld, ScaleFree, Ring},
		Seed:       8,
	}
}

// TopologySweep returns one series per topology: x = 0, y = the
// geometric-mean per-cycle variance reduction over Cycles iterations with
// getPair_seq. Lower is faster; the complete graph's ≈ 0.30 is the
// baseline the structured overlays degrade from.
func TopologySweep(ctx context.Context, cfg TopologySweepConfig) ([]*stats.Series, error) {
	if cfg.Cycles < 1 {
		cfg.Cycles = 15
	}
	specs := make([]scenario.Spec, len(cfg.Topologies))
	out := make([]*stats.Series, len(cfg.Topologies))
	for i, topo := range cfg.Topologies {
		overlay, err := scenario.ParseTopology(string(topo))
		if err != nil {
			return nil, err
		}
		specs[i] = scenario.Spec{
			Name:     "topology-sweep",
			Size:     cfg.Size,
			Cycles:   cfg.Cycles,
			Topology: overlay,
			ViewSize: cfg.ViewSize,
			Repeats:  cfg.Runs,
			Seed:     cfg.Seed ^ hashLabel("seq", string(topo), cfg.Size),
		}
		out[i] = stats.NewSeries(fmt.Sprintf("seq, %s", topo))
	}
	var col scenario.Collector
	if err := scenario.Run(ctx, specs, &col); err != nil {
		return nil, err
	}
	for cell, rates := range geometricRatesByCell(col.Results(), cfg.Cycles, len(specs)) {
		for _, rate := range rates {
			if rate > 0 {
				out[cell].Observe(0, rate)
			}
		}
	}
	return out, nil
}

// ViewSizeSweepConfig parameterizes the k-sweep ablation on the k-regular
// random overlay: how small can the paper's fixed view get before the
// convergence rate degrades?
type ViewSizeSweepConfig struct {
	// Size is the network size.
	Size int
	// ViewSizes are the degrees to sweep.
	ViewSizes []int
	// Cycles is how many AVG iterations to average the rate over.
	Cycles int
	// Runs is the number of repetitions per degree.
	Runs int
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultViewSizeSweep returns the k-sweep ablation.
func DefaultViewSizeSweep() ViewSizeSweepConfig {
	return ViewSizeSweepConfig{
		Size:      10000,
		ViewSizes: []int{2, 4, 8, 20, 40},
		Cycles:    15,
		Runs:      10,
		Seed:      9,
	}
}

// ViewSizeSweep returns one series with x = view size k and y = the
// geometric-mean per-cycle variance reduction with getPair_seq on the
// k-regular overlay.
func ViewSizeSweep(ctx context.Context, cfg ViewSizeSweepConfig) (*stats.Series, error) {
	series := stats.NewSeries("seq rate vs view size")
	specs := make([]scenario.Spec, len(cfg.ViewSizes))
	for i, k := range cfg.ViewSizes {
		specs[i] = scenario.Spec{
			Name:     "viewsize-sweep",
			Size:     cfg.Size,
			Cycles:   cfg.Cycles,
			Topology: scenario.TopologyKRegular,
			ViewSize: k,
			Repeats:  cfg.Runs,
			Seed:     cfg.Seed ^ hashLabel("seq", "ksweep", k),
		}
	}
	var col scenario.Collector
	if err := scenario.Run(ctx, specs, &col); err != nil {
		return nil, err
	}
	for cell, rates := range geometricRatesByCell(col.Results(), cfg.Cycles, len(specs)) {
		for _, rate := range rates {
			if rate > 0 {
				series.Observe(float64(cfg.ViewSizes[cell]), rate)
			}
		}
	}
	return series, nil
}

// geometricRatesByCell extracts one geometric-mean per-cycle reduction
// rate per repeat from a batched result stream, grouped by cell:
// (σ²_C/σ²₀)^(1/C), or 0 when either endpoint has converged past float
// precision (the historical drivers skip those runs).
func geometricRatesByCell(rows []scenario.Result, cycles, cells int) [][]float64 {
	rates := make([][]float64, cells)
	var first float64
	for _, r := range rows {
		switch r.Cycle {
		case 0:
			first = r.Variance
		case cycles:
			rate := 0.0
			if first > 0 && r.Variance > 0 {
				rate = math.Pow(r.Variance/first, 1/float64(cycles))
			}
			rates[r.Cell] = append(rates[r.Cell], rate)
		}
	}
	return rates
}
