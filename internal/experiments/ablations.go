package experiments

import (
	"fmt"
	"math"

	"repro/internal/avg"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// CyclesToAccuracyConfig parameterizes experiment E5: how many AVG cycles
// it takes to cut the variance by a target factor (the paper's §5 claim:
// 99.9 % in ln(1000) ≈ 7 cycles even with getPair_rand).
type CyclesToAccuracyConfig struct {
	// Size is the network size.
	Size int
	// Target is the variance ratio to reach (e.g. 1e-3 for 99.9 %).
	Target float64
	// Runs is the number of repetitions.
	Runs int
	// Selectors are the pair selectors to compare.
	Selectors []string
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultCyclesToAccuracy returns the §5 scenario on the complete graph.
func DefaultCyclesToAccuracy() CyclesToAccuracyConfig {
	return CyclesToAccuracyConfig{
		Size:      10000,
		Target:    1e-3,
		Runs:      20,
		Selectors: []string{"pm", "rand", "seq"},
		Seed:      5,
	}
}

// CyclesToAccuracy returns one series per selector with a single point:
// x = 0, y = cycles needed for σ²/σ₀² ≤ Target on the complete graph.
func CyclesToAccuracy(cfg CyclesToAccuracyConfig) ([]*stats.Series, error) {
	if cfg.Target <= 0 || cfg.Target >= 1 {
		return nil, fmt.Errorf("experiments: target ratio must be in (0,1), got %g", cfg.Target)
	}
	var out []*stats.Series
	for _, sel := range cfg.Selectors {
		series := stats.NewSeries(fmt.Sprintf("cycles_to_%.0e_%s", cfg.Target, sel))
		counts := make([]float64, cfg.Runs)
		err := forEachRun(cfg.Runs, cfg.Seed^hashLabel(sel, "ctacc", cfg.Size), func(run int, rng *xrand.Rand) error {
			g, err := BuildTopology(Complete, cfg.Size, 0, rng)
			if err != nil {
				return err
			}
			selector, err := avg.NewSelector(sel)
			if err != nil {
				return err
			}
			runner, err := avg.NewRunner(g, selector, gaussianVector(cfg.Size, rng), rng)
			if err != nil {
				return err
			}
			initial := runner.Variance()
			const maxCycles = 200
			for c := 1; c <= maxCycles; c++ {
				if runner.Cycle() <= cfg.Target*initial {
					counts[run] = float64(c)
					return nil
				}
			}
			return fmt.Errorf("experiments: %s did not reach %g in %d cycles", sel, cfg.Target, maxCycles)
		})
		if err != nil {
			return nil, err
		}
		for _, c := range counts {
			series.Observe(0, c)
		}
		out = append(out, series)
	}
	return out, nil
}

// LossAblationConfig parameterizes experiment E6 (message loss): run AVG
// with lossy exchanges and measure both the convergence slowdown and the
// error the asymmetric losses introduce into the estimated mean.
type LossAblationConfig struct {
	// Size is the network size.
	Size int
	// Cycles is how long to run.
	Cycles int
	// LossProbs are the per-message drop probabilities to sweep.
	LossProbs []float64
	// Runs is the number of repetitions per probability.
	Runs int
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultLossAblation returns the E6 loss sweep.
func DefaultLossAblation() LossAblationConfig {
	return LossAblationConfig{
		Size:      10000,
		Cycles:    20,
		LossProbs: []float64{0, 0.05, 0.1, 0.2, 0.4},
		Runs:      20,
		Seed:      6,
	}
}

// LossResult summarizes the loss sweep at one probability.
type LossResult struct {
	// LossProb is the per-message drop probability.
	LossProb float64
	// ReductionRate is the mean per-cycle variance reduction observed.
	ReductionRate float64
	// MeanDrift is the mean absolute deviation of the final vector mean
	// from the true initial mean, in units of the initial standard
	// deviation — the error mass-violating losses introduce.
	MeanDrift float64
}

// LossAblation sweeps message-loss probabilities with getPair_seq on the
// complete graph.
func LossAblation(cfg LossAblationConfig) ([]LossResult, error) {
	out := make([]LossResult, 0, len(cfg.LossProbs))
	for _, p := range cfg.LossProbs {
		rates := make([]float64, cfg.Runs)
		drifts := make([]float64, cfg.Runs)
		seed := cfg.Seed ^ hashLabel("seq", "loss", int(p*1e6))
		err := forEachRun(cfg.Runs, seed, func(run int, rng *xrand.Rand) error {
			g, err := BuildTopology(Complete, cfg.Size, 0, rng)
			if err != nil {
				return err
			}
			values := gaussianVector(cfg.Size, rng)
			trueMean := stats.Mean(values)
			initialSD := math.Sqrt(stats.Variance(values))
			runner, err := avg.NewRunner(g, avg.NewSeq(), values, rng, avg.WithLossProbability(p))
			if err != nil {
				return err
			}
			variances := runner.Run(cfg.Cycles)
			first, last := variances[0], variances[len(variances)-1]
			if first > 0 && last > 0 {
				rates[run] = math.Pow(last/first, 1/float64(cfg.Cycles))
			}
			drifts[run] = math.Abs(runner.Mean()-trueMean) / initialSD
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, LossResult{
			LossProb:      p,
			ReductionRate: stats.Mean(rates),
			MeanDrift:     stats.Mean(drifts),
		})
	}
	return out, nil
}

// CrashAblationConfig parameterizes experiment E6 (crashes): a fraction
// of nodes fails right after initialization, taking their value mass with
// them; the survivors converge to the surviving mean, and we measure how
// far that lands from the original target.
type CrashAblationConfig struct {
	// Size is the initial network size.
	Size int
	// CrashFractions are the fractions of nodes to kill at cycle 0.
	CrashFractions []float64
	// Cycles is how long survivors run.
	Cycles int
	// Runs is the number of repetitions per fraction.
	Runs int
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultCrashAblation returns the E6 crash sweep.
func DefaultCrashAblation() CrashAblationConfig {
	return CrashAblationConfig{
		Size:           10000,
		CrashFractions: []float64{0, 0.01, 0.05, 0.1, 0.2, 0.5},
		Cycles:         20,
		Runs:           20,
		Seed:           7,
	}
}

// CrashResult summarizes the crash sweep at one fraction.
type CrashResult struct {
	// Fraction of nodes crashed at cycle 0.
	Fraction float64
	// MeanError is the mean absolute deviation of the survivors'
	// converged estimate from the pre-crash true mean, in units of the
	// initial standard deviation.
	MeanError float64
	// FinalVarianceRatio is σ²_final/σ²₀ among survivors (convergence
	// is unharmed; only the target shifts).
	FinalVarianceRatio float64
}

// CrashAblation sweeps crash fractions with getPair_seq on the complete
// graph over the survivors.
func CrashAblation(cfg CrashAblationConfig) ([]CrashResult, error) {
	out := make([]CrashResult, 0, len(cfg.CrashFractions))
	for _, f := range cfg.CrashFractions {
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("experiments: crash fraction must be in [0,1), got %g", f)
		}
		errs := make([]float64, cfg.Runs)
		ratios := make([]float64, cfg.Runs)
		seed := cfg.Seed ^ hashLabel("seq", "crash", int(f*1e6))
		err := forEachRun(cfg.Runs, seed, func(run int, rng *xrand.Rand) error {
			values := gaussianVector(cfg.Size, rng)
			trueMean := stats.Mean(values)
			initialSD := math.Sqrt(stats.Variance(values))
			// Crash: drop the first f·N entries of a random permutation.
			survivors := cfg.Size - int(f*float64(cfg.Size))
			if survivors < 2 {
				return fmt.Errorf("experiments: crash fraction %g leaves < 2 survivors", f)
			}
			perm := rng.Perm(cfg.Size)
			kept := make([]float64, survivors)
			for i := 0; i < survivors; i++ {
				kept[i] = values[perm[i]]
			}
			g, err := BuildTopology(Complete, survivors, 0, rng)
			if err != nil {
				return err
			}
			runner, err := avg.NewRunner(g, avg.NewSeq(), kept, rng)
			if err != nil {
				return err
			}
			variances := runner.Run(cfg.Cycles)
			errs[run] = math.Abs(runner.Mean()-trueMean) / initialSD
			if variances[0] > 0 {
				ratios[run] = variances[len(variances)-1] / variances[0]
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, CrashResult{
			Fraction:           f,
			MeanError:          stats.Mean(errs),
			FinalVarianceRatio: stats.Mean(ratios),
		})
	}
	return out, nil
}

// TopologySweepConfig parameterizes the overlay-sensitivity ablation: the
// same one-cycle reduction measurement as Figure 3(a), across structured
// topologies the paper's theory does not cover.
type TopologySweepConfig struct {
	// Size is the network size.
	Size int
	// ViewSize is the degree parameter.
	ViewSize int
	// Cycles is how many AVG iterations the per-cycle rate is averaged
	// over; structured topologies (ring, small world) look fine for one
	// cycle and only reveal their diffusive mixing over many.
	Cycles int
	// Runs is the number of repetitions per topology.
	Runs int
	// Topologies to sweep.
	Topologies []TopologyKind
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultTopologySweep returns the overlay ablation.
func DefaultTopologySweep() TopologySweepConfig {
	return TopologySweepConfig{
		Size:       10000,
		ViewSize:   20,
		Cycles:     15,
		Runs:       20,
		Topologies: []TopologyKind{Complete, KRegular, RandomView, SmallWorld, ScaleFree, Ring},
		Seed:       8,
	}
}

// TopologySweep returns one series per topology: x = 0, y = the
// geometric-mean per-cycle variance reduction over Cycles iterations with
// getPair_seq. Lower is faster; the complete graph's ≈ 0.30 is the
// baseline the structured overlays degrade from.
func TopologySweep(cfg TopologySweepConfig) ([]*stats.Series, error) {
	if cfg.Cycles < 1 {
		cfg.Cycles = 15
	}
	var out []*stats.Series
	for _, topo := range cfg.Topologies {
		series := stats.NewSeries(fmt.Sprintf("seq, %s", topo))
		ratios := make([]float64, cfg.Runs)
		seed := cfg.Seed ^ hashLabel("seq", string(topo), cfg.Size)
		err := forEachRun(cfg.Runs, seed, func(run int, rng *xrand.Rand) error {
			g, err := BuildTopology(topo, cfg.Size, cfg.ViewSize, rng)
			if err != nil {
				return err
			}
			runner, err := avg.NewRunner(g, avg.NewSeq(), gaussianVector(cfg.Size, rng), rng)
			if err != nil {
				return err
			}
			variances := runner.Run(cfg.Cycles)
			first, last := variances[0], variances[len(variances)-1]
			if first <= 0 || last <= 0 {
				return nil // converged past float precision
			}
			ratios[run] = math.Pow(last/first, 1/float64(cfg.Cycles))
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, r := range ratios {
			if r > 0 {
				series.Observe(0, r)
			}
		}
		out = append(out, series)
	}
	return out, nil
}

// ViewSizeSweepConfig parameterizes the k-sweep ablation on the k-regular
// random overlay: how small can the paper's fixed view get before the
// convergence rate degrades?
type ViewSizeSweepConfig struct {
	// Size is the network size.
	Size int
	// ViewSizes are the degrees to sweep.
	ViewSizes []int
	// Cycles is how many AVG iterations to average the rate over.
	Cycles int
	// Runs is the number of repetitions per degree.
	Runs int
	// Seed seeds the experiment.
	Seed uint64
}

// DefaultViewSizeSweep returns the k-sweep ablation.
func DefaultViewSizeSweep() ViewSizeSweepConfig {
	return ViewSizeSweepConfig{
		Size:      10000,
		ViewSizes: []int{2, 4, 8, 20, 40},
		Cycles:    15,
		Runs:      10,
		Seed:      9,
	}
}

// ViewSizeSweep returns one series with x = view size k and y = the
// geometric-mean per-cycle variance reduction with getPair_seq on the
// k-regular overlay.
func ViewSizeSweep(cfg ViewSizeSweepConfig) (*stats.Series, error) {
	series := stats.NewSeries("seq rate vs view size")
	for _, k := range cfg.ViewSizes {
		rates := make([]float64, cfg.Runs)
		seed := cfg.Seed ^ hashLabel("seq", "ksweep", k)
		err := forEachRun(cfg.Runs, seed, func(run int, rng *xrand.Rand) error {
			g, err := BuildTopology(KRegular, cfg.Size, k, rng)
			if err != nil {
				return err
			}
			runner, err := avg.NewRunner(g, avg.NewSeq(), gaussianVector(cfg.Size, rng), rng)
			if err != nil {
				return err
			}
			variances := runner.Run(cfg.Cycles)
			first, last := variances[0], variances[len(variances)-1]
			if first <= 0 || last <= 0 {
				return nil // converged past float precision; skip rate
			}
			rates[run] = math.Pow(last/first, 1/float64(cfg.Cycles))
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, r := range rates {
			if r > 0 {
				series.Observe(float64(k), r)
			}
		}
	}
	return series, nil
}
