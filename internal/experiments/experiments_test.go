package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/avg"
	"repro/internal/xrand"
	"repro/scenario"
)

func TestBuildTopologyAllKinds(t *testing.T) {
	rng := xrand.New(1)
	kinds := []TopologyKind{Complete, KRegular, RandomView, Ring, SmallWorld, ScaleFree}
	for _, k := range kinds {
		g, err := BuildTopology(k, 100, 10, rng)
		if err != nil {
			t.Errorf("BuildTopology(%s): %v", k, err)
			continue
		}
		if g.Size() != 100 {
			t.Errorf("%s: size = %d", k, g.Size())
		}
	}
	if _, err := BuildTopology("bogus", 100, 10, rng); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestFig3aSmallScale(t *testing.T) {
	cfg := Fig3aConfig{
		Sizes:      []int{100, 1000},
		Runs:       10,
		Selectors:  []string{"rand", "seq"},
		Topologies: []TopologyKind{Complete, KRegular},
		ViewSize:   20,
		Seed:       1,
	}
	series, err := Fig3a(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4 (2 selectors × 2 topologies)", len(series))
	}
	for _, s := range series {
		pts := s.Points()
		if len(pts) != 2 {
			t.Fatalf("%s: %d points, want 2", s.Name(), len(pts))
		}
		wantRate := 1 / math.E
		if strings.Contains(s.Name(), "seq") {
			wantRate = 1 / (2 * math.Sqrt(math.E))
		}
		for _, p := range pts {
			if p.N != cfg.Runs {
				t.Errorf("%s at N=%g: %d runs folded, want %d", s.Name(), p.X, p.N, cfg.Runs)
			}
			if math.Abs(p.Mean-wantRate) > 0.05 {
				t.Errorf("%s at N=%g: reduction %.4f, want ≈ %.4f", s.Name(), p.X, p.Mean, wantRate)
			}
		}
	}
}

func TestFig3aDeterministicForSeed(t *testing.T) {
	cfg := Fig3aConfig{
		Sizes:      []int{200},
		Runs:       5,
		Selectors:  []string{"seq"},
		Topologies: []TopologyKind{Complete},
		ViewSize:   20,
		Seed:       7,
	}
	s1, err := Fig3a(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Fig3a(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := s1[0].Points(), s2[0].Points()
	if p1[0].Mean != p2[0].Mean {
		t.Fatalf("same seed gave %g and %g", p1[0].Mean, p2[0].Mean)
	}
}

func TestFig3aValidation(t *testing.T) {
	if _, err := Fig3a(context.Background(), Fig3aConfig{Runs: 0}); err == nil {
		t.Fatal("zero runs accepted")
	}
}

func TestFig3bSmallScale(t *testing.T) {
	cfg := Fig3bConfig{
		Size:       2000,
		Cycles:     10,
		Runs:       5,
		Selectors:  []string{"seq"},
		Topologies: []TopologyKind{Complete},
		ViewSize:   20,
		Seed:       2,
	}
	series, err := Fig3b(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("got %d series", len(series))
	}
	pts := series[0].Points()
	if len(pts) != 10 {
		t.Fatalf("got %d cycle points, want 10", len(pts))
	}
	// Per-cycle ratios hover around the theoretical rate; later cycles
	// drift slightly but must stay within a broad physical band.
	for _, p := range pts {
		if p.Mean < 0.2 || p.Mean > 0.45 {
			t.Errorf("cycle %g: ratio %.4f outside [0.2, 0.45]", p.X, p.Mean)
		}
	}
}

func TestFig4SmallScale(t *testing.T) {
	cfg := Fig4Config{
		MinSize:           900,
		MaxSize:           1100,
		OscillationPeriod: 100,
		Fluctuation:       10,
		EpochCycles:       30,
		TotalCycles:       300,
		Instances:         1,
		Seed:              3,
	}
	reports, err := Fig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 10 {
		t.Fatalf("got %d epochs, want 10", len(reports))
	}
	for _, r := range reports {
		if r.SizeAtStart < 850 || r.SizeAtStart > 1150 {
			t.Errorf("epoch %d: size %d escaped the oscillation band", r.Epoch, r.SizeAtStart)
		}
		relErr := math.Abs(r.EstimateMean-float64(r.SizeAtStart)) / float64(r.SizeAtStart)
		if relErr > 0.2 {
			t.Errorf("epoch %d: estimate %.0f vs %d (%.0f%% off)",
				r.Epoch, r.EstimateMean, r.SizeAtStart, 100*relErr)
		}
	}
	tsv := Fig4TSV(reports)
	if !strings.Contains(tsv, "# cycle\testimate") {
		t.Error("TSV header missing")
	}
	if got := strings.Count(tsv, "\n"); got != 12 { // 2 header + 10 rows
		t.Errorf("TSV has %d lines, want 12", got)
	}
}

func TestFig4Validation(t *testing.T) {
	if _, err := Fig4(context.Background(), Fig4Config{MinSize: 2, MaxSize: 1}); err == nil {
		t.Fatal("inverted size band accepted")
	}
}

func TestCyclesToAccuracySmall(t *testing.T) {
	cfg := CyclesToAccuracyConfig{
		Size:      1000,
		Target:    1e-3,
		Runs:      5,
		Selectors: []string{"pm", "rand", "seq"},
		Seed:      4,
	}
	series, err := CyclesToAccuracy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, s := range series {
		byName[s.Name()] = s.Points()[0].Mean
	}
	// Theory: cycles ≈ ln(1000)/ln(1/rate) → pm 5, rand 7, seq 6.
	checks := []struct {
		key      string
		lo, hi   float64
		selector string
	}{
		{"pm", 4, 7, "pm"},
		{"rand", 6, 9, "rand"},
		{"seq", 5, 8, "seq"},
	}
	for _, c := range checks {
		var got float64
		found := false
		for name, v := range byName {
			if strings.HasSuffix(name, "_"+c.selector) {
				got, found = v, true
			}
		}
		if !found {
			t.Fatalf("series for %s missing (have %v)", c.selector, byName)
		}
		if got < c.lo || got > c.hi {
			t.Errorf("%s: %.1f cycles to 1e-3, want within [%g, %g]", c.selector, got, c.lo, c.hi)
		}
	}
}

func TestCyclesToAccuracyValidation(t *testing.T) {
	if _, err := CyclesToAccuracy(context.Background(), CyclesToAccuracyConfig{Target: 2}); err == nil {
		t.Fatal("target ≥ 1 accepted")
	}
}

func TestLossAblationMonotone(t *testing.T) {
	res, err := LossAblation(context.Background(), LossAblationConfig{
		Size:      1000,
		Cycles:    15,
		LossProbs: []float64{0, 0.2, 0.4},
		Runs:      8,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	// More loss → slower convergence (higher per-cycle rate) and more
	// mean drift.
	if !(res[0].ReductionRate < res[1].ReductionRate && res[1].ReductionRate < res[2].ReductionRate) {
		t.Errorf("reduction rates not monotone in loss: %+v", res)
	}
	if res[0].MeanDrift > 1e-9 {
		t.Errorf("lossless drift = %g, want ~0", res[0].MeanDrift)
	}
	if res[2].MeanDrift <= res[0].MeanDrift {
		t.Errorf("drift not increasing with loss: %+v", res)
	}
}

func TestCrashAblationErrorGrowsWithFraction(t *testing.T) {
	res, err := CrashAblation(context.Background(), CrashAblationConfig{
		Size:           2000,
		CrashFractions: []float64{0, 0.2, 0.5},
		Cycles:         15,
		Runs:           8,
		Seed:           6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].MeanError > 1e-9 {
		t.Errorf("no-crash error = %g", res[0].MeanError)
	}
	if res[2].MeanError <= res[1].MeanError || res[1].MeanError <= res[0].MeanError {
		t.Errorf("crash error not monotone: %+v", res)
	}
	// Convergence itself is unharmed among survivors.
	for _, r := range res {
		if r.FinalVarianceRatio > 1e-4 {
			t.Errorf("fraction %g: survivors failed to converge (ratio %g)",
				r.Fraction, r.FinalVarianceRatio)
		}
	}
}

func TestCrashAblationValidation(t *testing.T) {
	if _, err := CrashAblation(context.Background(), CrashAblationConfig{
		Size: 100, CrashFractions: []float64{1.5}, Cycles: 5, Runs: 2,
	}); err == nil {
		t.Fatal("fraction ≥ 1 accepted")
	}
}

func TestTopologySweepOrdering(t *testing.T) {
	series, err := TopologySweep(context.Background(), TopologySweepConfig{
		Size:       2000,
		ViewSize:   20,
		Cycles:     15,
		Runs:       5,
		Topologies: []TopologyKind{Complete, Ring},
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, s := range series {
		rates[s.Name()] = s.Points()[0].Mean
	}
	complete := rates["seq, complete"]
	ring := rates["seq, ring"]
	// Ring mixing is diffusive: variance reduction per cycle is far
	// worse than on the complete graph.
	if !(complete < 0.35 && ring > complete+0.2) {
		t.Errorf("complete=%.3f ring=%.3f; ring should be much slower", complete, ring)
	}
}

func TestViewSizeSweepImprovesWithK(t *testing.T) {
	series, err := ViewSizeSweep(context.Background(), ViewSizeSweepConfig{
		Size:      2000,
		ViewSizes: []int{2, 20},
		Cycles:    10,
		Runs:      5,
		Seed:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := series.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	// k = 2 is a union of cycles: much slower than k = 20.
	if !(pts[1].Mean < pts[0].Mean) {
		t.Errorf("rate at k=20 (%.3f) not better than k=2 (%.3f)", pts[1].Mean, pts[0].Mean)
	}
}

func TestDefaultsAreSane(t *testing.T) {
	a := DefaultFig3a()
	if a.Runs != 50 || len(a.Sizes) == 0 || a.ViewSize != 20 {
		t.Errorf("fig3a defaults: %+v", a)
	}
	b := DefaultFig3b()
	if b.Size != 100000 || b.Cycles != 30 || b.Runs != 50 {
		t.Errorf("fig3b defaults: %+v", b)
	}
	f := DefaultFig4()
	if f.MinSize != 90000 || f.MaxSize != 110000 || f.EpochCycles != 30 || f.TotalCycles != 1000 {
		t.Errorf("fig4 defaults: %+v", f)
	}
}

func TestScenarioOneCycleReductionMatchesTheory(t *testing.T) {
	// Sanity link between the scenario engine and the §3.3 theory: pm
	// one-cycle reduction on the complete graph averages ≈ 1/4.
	var col scenario.Collector
	err := scenario.Run(context.Background(), []scenario.Spec{{
		Size: 1000, Cycles: 1, Selector: scenario.SelectorPM, Repeats: 8, Seed: 9,
	}}, &col)
	if err != nil {
		t.Fatal(err)
	}
	var acc, before float64
	n := 0
	for _, r := range col.Results() {
		if r.Cycle == 0 {
			before = r.Variance
			continue
		}
		acc += r.Variance / before
		n++
	}
	want, ok := avg.TheoreticalRate("pm")
	if got := acc / float64(n); !ok || math.Abs(got-want) > 0.05 {
		t.Fatalf("pm one-cycle = %.4f, want ≈ %.4f", got, want)
	}
}
