// Package experiments contains one driver per evaluation artifact of the
// paper (Figures 3(a), 3(b) and 4) plus the ablation studies DESIGN.md
// calls out. Each driver is deterministic given its seed and emits the
// same series the paper plots, aggregated over repeated runs with the
// statistics of internal/stats.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// TopologyKind names the overlays the drivers can run on.
type TopologyKind string

// Supported overlay kinds. Complete and KRegular are the two the paper
// evaluates; the rest quantify sensitivity to less random overlays.
const (
	Complete   TopologyKind = "complete"
	KRegular   TopologyKind = "kregular"
	RandomView TopologyKind = "view"
	Ring       TopologyKind = "ring"
	SmallWorld TopologyKind = "smallworld"
	ScaleFree  TopologyKind = "scalefree"
)

// BuildTopology constructs the named overlay on n nodes. view is the
// degree/view-size parameter where applicable (the paper uses 20).
func BuildTopology(kind TopologyKind, n, view int, rng *xrand.Rand) (topology.Graph, error) {
	switch kind {
	case Complete:
		return topology.NewComplete(n)
	case KRegular:
		return topology.NewKRegular(n, view, rng)
	case RandomView:
		return topology.NewRandomView(n, view, rng)
	case Ring:
		return topology.NewRing(n)
	case SmallWorld:
		return topology.NewWattsStrogatz(n, view, 0.1, rng)
	case ScaleFree:
		return topology.NewBarabasiAlbert(n, max(1, view/2), rng)
	default:
		return nil, fmt.Errorf("experiments: unknown topology %q", kind)
	}
}

// gaussianVector returns n iid standard normal values — the "vector of
// uncorrelated values" with zero mean the paper's simulations start from.
func gaussianVector(n int, rng *xrand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// forEachRun executes fn for run indices 0..runs-1 across a bounded
// worker pool, handing each run a generator derived deterministically
// from seed and the run index, so results are independent of scheduling.
// The first error encountered is returned (remaining runs still execute).
func forEachRun(runs int, seed uint64, fn func(run int, rng *xrand.Rand) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		result error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range idx {
				rng := xrand.New(seed + 0x9e3779b97f4a7c15*uint64(run+1))
				if err := fn(run, rng); err != nil {
					mu.Lock()
					if result == nil {
						result = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for run := 0; run < runs; run++ {
		idx <- run
	}
	close(idx)
	wg.Wait()
	return result
}
