// Package experiments contains one driver per evaluation artifact of the
// paper (Figures 3(a), 3(b) and 4) plus the ablation studies DESIGN.md
// calls out. Each driver is a thin Spec builder over the declarative
// scenario engine (internal/scenario): it renders its configuration as
// scenario specs, runs them on the engine's worker pool, and reduces
// the streamed rows into the series the paper plots. Every driver is
// deterministic given its seed; the spec seeds and per-repeat stream
// derivation reproduce the historical nested-loop drivers byte for
// byte.
package experiments

import (
	"repro/internal/topology"
	"repro/internal/xrand"
)

// TopologyKind names the overlays the drivers can run on. It aliases
// topology.Kind, the shared vocabulary of experiment drivers, scenario
// specs and CLI flags.
type TopologyKind = topology.Kind

// Supported overlay kinds. Complete and KRegular are the two the paper
// evaluates; the rest quantify sensitivity to less random overlays.
const (
	Complete   = topology.KindComplete
	KRegular   = topology.KindKRegular
	RandomView = topology.KindRandomView
	Ring       = topology.KindRing
	SmallWorld = topology.KindSmallWorld
	ScaleFree  = topology.KindScaleFree
)

// BuildTopology constructs the named overlay on n nodes. view is the
// degree/view-size parameter where applicable (the paper uses 20).
func BuildTopology(kind TopologyKind, n, view int, rng *xrand.Rand) (topology.Graph, error) {
	return topology.Build(kind, n, view, rng)
}
