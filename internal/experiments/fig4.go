package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/epoch"
	"repro/scenario"
)

// Fig4Config parameterizes the Figure 4 reproduction: network size
// estimation by anti-entropy counting under oscillation and fluctuation
// churn, with epoch restarts.
type Fig4Config struct {
	// MinSize and MaxSize bound the oscillation (90000 and 110000 in the
	// paper).
	MinSize, MaxSize int
	// OscillationPeriod is the day/night period in cycles.
	OscillationPeriod int
	// Fluctuation is the per-cycle node turnover on top of the
	// oscillation (100 in the paper).
	Fluctuation int
	// EpochCycles is the epoch length (30 in the paper).
	EpochCycles int
	// TotalCycles is the horizon (1000 in the paper).
	TotalCycles int
	// Instances is the number of concurrent estimation instances per
	// epoch (1 reproduces the paper's basic mechanism).
	Instances int
	// Seed seeds the simulation.
	Seed uint64
}

// DefaultFig4 returns the paper-faithful configuration (90k–110k sweep).
// The oscillation period is not stated in the paper; 400 cycles yields
// the same multi-swing shape over the 1000-cycle horizon.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		MinSize:           90000,
		MaxSize:           110000,
		OscillationPeriod: 400,
		Fluctuation:       100,
		EpochCycles:       30,
		TotalCycles:       1000,
		Instances:         1,
		Seed:              4,
	}
}

// Spec renders the Figure 4 scenario as a declarative scenario spec —
// the same description a user could feed to cmd/aggsim -scenario.
func (cfg Fig4Config) Spec() scenario.Spec {
	mid := (cfg.MinSize + cfg.MaxSize) / 2
	return scenario.Spec{
		Name:   "fig4",
		Size:   mid,
		Cycles: cfg.TotalCycles,
		Churn: &scenario.ChurnSpec{
			Model:       "oscillating",
			Min:         cfg.MinSize,
			Max:         cfg.MaxSize,
			Period:      cfg.OscillationPeriod,
			Fluctuation: cfg.Fluctuation,
		},
		SizeEstimation: &scenario.SizeEstimationSpec{
			EpochCycles: cfg.EpochCycles,
			Instances:   cfg.Instances,
		},
		Seed: cfg.Seed,
	}
}

// Fig4 runs the scenario and returns the per-epoch reports (one point of
// the figure per epoch: converged estimate with min/max range vs actual
// size). The executed spec carries scenario.RawSeed(cfg.Seed), so the
// epoch simulator consumes exactly the stream xrand.New(cfg.Seed) — the
// historical driver's derivation — and output stays byte-compatible
// with the pre-scenario driver.
func Fig4(ctx context.Context, cfg Fig4Config) ([]epoch.EpochReport, error) {
	if cfg.MinSize < 4 || cfg.MaxSize < cfg.MinSize {
		return nil, fmt.Errorf("experiments: fig4 needs 4 ≤ MinSize ≤ MaxSize, got %d..%d", cfg.MinSize, cfg.MaxSize)
	}
	spec := cfg.Spec()
	spec.Seed = scenario.RawSeed(cfg.Seed)
	res, err := scenario.RunSpec(ctx, spec)
	if err != nil {
		return nil, err
	}
	return res.Epochs, nil
}

// Fig4TSV renders the reports as tab-separated rows matching the figure's
// two curves (estimate with min/max error bars, and actual size).
func Fig4TSV(reports []epoch.EpochReport) string {
	var b strings.Builder
	b.WriteString("# fig4: network size estimation by anti-entropy counting\n")
	b.WriteString("# cycle\testimate\test_min\test_max\tactual_at_start\tactual_at_end\tparticipants\n")
	for _, r := range reports {
		fmt.Fprintf(&b, "%d\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\n",
			r.EndCycle, r.EstimateMean, r.EstimateMin, r.EstimateMax,
			r.SizeAtStart, r.SizeAtEnd, r.Participants)
	}
	return b.String()
}
