package experiments

import (
	"fmt"

	"repro/internal/avg"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Fig3aConfig parameterizes the Figure 3(a) reproduction: the average
// variance reduction σ₁²/σ₀² after one execution of AVG on a vector of
// uncorrelated values, as a function of network size.
type Fig3aConfig struct {
	// Sizes are the network sizes to sweep (the paper's x-axis spans
	// 100 … 100000 on a log scale).
	Sizes []int
	// Runs is the number of independent repetitions per point (50 in
	// the paper).
	Runs int
	// Selectors are the pair selectors to plot (paper: rand and seq).
	Selectors []string
	// Topologies are the overlays to plot (paper: complete and
	// 20-regular random).
	Topologies []TopologyKind
	// ViewSize is the degree of the non-complete overlays (20).
	ViewSize int
	// Seed seeds the whole experiment.
	Seed uint64
}

// DefaultFig3a returns the paper-faithful configuration (full 100k sweep).
func DefaultFig3a() Fig3aConfig {
	return Fig3aConfig{
		Sizes:      []int{100, 300, 1000, 3000, 10000, 30000, 100000},
		Runs:       50,
		Selectors:  []string{"rand", "seq"},
		Topologies: []TopologyKind{Complete, KRegular},
		ViewSize:   20,
		Seed:       1,
	}
}

// Fig3a runs the experiment and returns one series per selector×topology
// combination, labeled "getPair_<sel>, <topo>" as in the paper's legend,
// with x = network size and y = σ₁²/σ₀².
func Fig3a(cfg Fig3aConfig) ([]*stats.Series, error) {
	if cfg.Runs < 1 {
		return nil, fmt.Errorf("experiments: fig3a needs Runs ≥ 1")
	}
	var out []*stats.Series
	for _, sel := range cfg.Selectors {
		for _, topo := range cfg.Topologies {
			series := stats.NewSeries(fmt.Sprintf("getPair_%s, %s", sel, topo))
			for _, n := range cfg.Sizes {
				ratios := make([]float64, cfg.Runs)
				comboSeed := cfg.Seed ^ hashLabel(sel, string(topo), n)
				err := forEachRun(cfg.Runs, comboSeed, func(run int, rng *xrand.Rand) error {
					ratio, err := oneCycleReduction(sel, topo, n, cfg.ViewSize, rng)
					if err != nil {
						return err
					}
					ratios[run] = ratio
					return nil
				})
				if err != nil {
					return nil, err
				}
				for _, r := range ratios {
					series.Observe(float64(n), r)
				}
			}
			out = append(out, series)
		}
	}
	return out, nil
}

// oneCycleReduction builds a fresh overlay and value vector, runs one AVG
// cycle and returns σ₁²/σ₀².
func oneCycleReduction(sel string, topo TopologyKind, n, view int, rng *xrand.Rand) (float64, error) {
	g, err := BuildTopology(topo, n, view, rng)
	if err != nil {
		return 0, err
	}
	selector, err := avg.NewSelector(sel)
	if err != nil {
		return 0, err
	}
	values := gaussianVector(n, rng)
	runner, err := avg.NewRunner(g, selector, values, rng)
	if err != nil {
		return 0, err
	}
	before := runner.Variance()
	after := runner.Cycle()
	if before == 0 {
		return 0, fmt.Errorf("experiments: degenerate zero initial variance (n=%d)", n)
	}
	return after / before, nil
}

// Fig3bConfig parameterizes the Figure 3(b) reproduction: the per-cycle
// variance reduction σᵢ²/σᵢ₋₁² while iterating AVG at fixed network size.
type Fig3bConfig struct {
	// Size is the network size (100000 in the paper).
	Size int
	// Cycles is how many AVG iterations to track (30 in the paper).
	Cycles int
	// Runs is the number of repetitions (50 in the paper).
	Runs int
	// Selectors and Topologies mirror Fig3aConfig.
	Selectors  []string
	Topologies []TopologyKind
	// ViewSize is the degree of the non-complete overlays (20).
	ViewSize int
	// Seed seeds the whole experiment.
	Seed uint64
}

// DefaultFig3b returns the paper-faithful configuration (N = 100000).
func DefaultFig3b() Fig3bConfig {
	return Fig3bConfig{
		Size:       100000,
		Cycles:     30,
		Runs:       50,
		Selectors:  []string{"rand", "seq"},
		Topologies: []TopologyKind{Complete, KRegular},
		ViewSize:   20,
		Seed:       2,
	}
}

// Fig3b runs the experiment and returns one series per selector×topology
// combination with x = cycle index (1-based) and y = σᵢ²/σᵢ₋₁².
func Fig3b(cfg Fig3bConfig) ([]*stats.Series, error) {
	if cfg.Runs < 1 || cfg.Cycles < 1 {
		return nil, fmt.Errorf("experiments: fig3b needs Runs ≥ 1 and Cycles ≥ 1")
	}
	var out []*stats.Series
	for _, sel := range cfg.Selectors {
		for _, topo := range cfg.Topologies {
			series := stats.NewSeries(fmt.Sprintf("getPair_%s, %s", sel, topo))
			perRun := make([][]float64, cfg.Runs)
			comboSeed := cfg.Seed ^ hashLabel(sel, string(topo), cfg.Size)
			err := forEachRun(cfg.Runs, comboSeed, func(run int, rng *xrand.Rand) error {
				ratios, err := cycleRatios(sel, topo, cfg.Size, cfg.ViewSize, cfg.Cycles, rng)
				if err != nil {
					return err
				}
				perRun[run] = ratios
				return nil
			})
			if err != nil {
				return nil, err
			}
			for _, ratios := range perRun {
				for c, r := range ratios {
					series.Observe(float64(c+1), r)
				}
			}
			out = append(out, series)
		}
	}
	return out, nil
}

// cycleRatios runs `cycles` AVG iterations and returns the consecutive
// variance ratios σᵢ²/σᵢ₋₁².
func cycleRatios(sel string, topo TopologyKind, n, view, cycles int, rng *xrand.Rand) ([]float64, error) {
	g, err := BuildTopology(topo, n, view, rng)
	if err != nil {
		return nil, err
	}
	selector, err := avg.NewSelector(sel)
	if err != nil {
		return nil, err
	}
	values := gaussianVector(n, rng)
	runner, err := avg.NewRunner(g, selector, values, rng)
	if err != nil {
		return nil, err
	}
	variances := runner.Run(cycles)
	ratios := make([]float64, 0, cycles)
	for i := 1; i < len(variances); i++ {
		if variances[i-1] <= 0 {
			break // numerically converged; further ratios are noise
		}
		ratios = append(ratios, variances[i]/variances[i-1])
	}
	return ratios, nil
}

// hashLabel mixes experiment coordinates into a seed offset so that every
// selector×topology×size combination draws an independent random stream.
func hashLabel(sel, topo string, n int) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(sel)
	mix("|")
	mix(topo)
	mix("|")
	mix(fmt.Sprintf("%d", n))
	return h
}
