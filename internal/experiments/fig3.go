package experiments

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/stats"
	"repro/scenario"
)

// Fig3aConfig parameterizes the Figure 3(a) reproduction: the average
// variance reduction σ₁²/σ₀² after one execution of AVG on a vector of
// uncorrelated values, as a function of network size.
type Fig3aConfig struct {
	// Sizes are the network sizes to sweep (the paper's x-axis spans
	// 100 … 100000 on a log scale).
	Sizes []int
	// Runs is the number of independent repetitions per point (50 in
	// the paper).
	Runs int
	// Selectors are the pair selectors to plot (paper: rand and seq).
	Selectors []string
	// Topologies are the overlays to plot (paper: complete and
	// 20-regular random).
	Topologies []TopologyKind
	// ViewSize is the degree of the non-complete overlays (20).
	ViewSize int
	// Shards routes shardable combinations (any built-in selector on
	// the complete overlay; pm and pmrand need an even size) through
	// the sharded executor: 0 keeps the exact sequential path, -1
	// selects one shard per core. Non-shardable combinations fall back
	// to sequential execution.
	Shards int
	// Seed seeds the whole experiment.
	Seed uint64
}

// DefaultFig3a returns the paper-faithful configuration (full 100k sweep).
func DefaultFig3a() Fig3aConfig {
	return Fig3aConfig{
		Sizes:      []int{100, 300, 1000, 3000, 10000, 30000, 100000},
		Runs:       50,
		Selectors:  []string{"rand", "seq"},
		Topologies: []TopologyKind{Complete, KRegular},
		ViewSize:   20,
		Seed:       1,
	}
}

// Fig3a runs the experiment and returns one series per selector×topology
// combination, labeled "getPair_<sel>, <topo>" as in the paper's legend,
// with x = network size and y = σ₁²/σ₀².
func Fig3a(ctx context.Context, cfg Fig3aConfig) ([]*stats.Series, error) {
	if cfg.Runs < 1 {
		return nil, fmt.Errorf("experiments: fig3a needs Runs ≥ 1")
	}
	var out []*stats.Series
	for _, sel := range cfg.Selectors {
		selector, err := scenario.ParseSelector(sel)
		if err != nil {
			return nil, err
		}
		for _, topo := range cfg.Topologies {
			overlay, err := scenario.ParseTopology(string(topo))
			if err != nil {
				return nil, err
			}
			shards := shardsFor(cfg.Shards, sel, topo)
			specs := make([]scenario.Spec, len(cfg.Sizes))
			for i, n := range cfg.Sizes {
				specs[i] = scenario.Spec{
					Name:     "fig3a",
					Size:     n,
					Cycles:   1,
					Selector: selector,
					Topology: overlay,
					ViewSize: cfg.ViewSize,
					Shards:   shards,
					Repeats:  cfg.Runs,
					Seed:     cfg.Seed ^ hashLabel(sel, string(topo), n),
				}
			}
			var col scenario.Collector
			if err := specRunner(shards).Run(ctx, specs, &col); err != nil {
				return nil, err
			}
			series := stats.NewSeries(fmt.Sprintf("getPair_%s, %s", sel, topo))
			var before float64
			for _, r := range col.Results() {
				switch r.Cycle {
				case 0:
					before = r.Variance
					if before == 0 {
						return nil, fmt.Errorf("experiments: degenerate zero initial variance (n=%d)", r.Size)
					}
				case 1:
					series.Observe(float64(cfg.Sizes[r.Cell]), r.Variance/before)
				}
			}
			out = append(out, series)
		}
	}
	return out, nil
}

// Fig3bConfig parameterizes the Figure 3(b) reproduction: the per-cycle
// variance reduction σᵢ²/σᵢ₋₁² while iterating AVG at fixed network size.
type Fig3bConfig struct {
	// Size is the network size (100000 in the paper).
	Size int
	// Cycles is how many AVG iterations to track (30 in the paper).
	Cycles int
	// Runs is the number of repetitions (50 in the paper).
	Runs int
	// Selectors and Topologies mirror Fig3aConfig.
	Selectors  []string
	Topologies []TopologyKind
	// ViewSize is the degree of the non-complete overlays (20).
	ViewSize int
	// Shards mirrors Fig3aConfig: sharded execution for shardable
	// combinations (0 = sequential, -1 = one shard per core).
	Shards int
	// Seed seeds the whole experiment.
	Seed uint64
}

// DefaultFig3b returns the paper-faithful configuration (N = 100000).
func DefaultFig3b() Fig3bConfig {
	return Fig3bConfig{
		Size:       100000,
		Cycles:     30,
		Runs:       50,
		Selectors:  []string{"rand", "seq"},
		Topologies: []TopologyKind{Complete, KRegular},
		ViewSize:   20,
		Seed:       2,
	}
}

// Fig3b runs the experiment and returns one series per selector×topology
// combination with x = cycle index (1-based) and y = σᵢ²/σᵢ₋₁².
func Fig3b(ctx context.Context, cfg Fig3bConfig) ([]*stats.Series, error) {
	if cfg.Runs < 1 || cfg.Cycles < 1 {
		return nil, fmt.Errorf("experiments: fig3b needs Runs ≥ 1 and Cycles ≥ 1")
	}
	var out []*stats.Series
	for _, sel := range cfg.Selectors {
		selector, err := scenario.ParseSelector(sel)
		if err != nil {
			return nil, err
		}
		for _, topo := range cfg.Topologies {
			overlay, err := scenario.ParseTopology(string(topo))
			if err != nil {
				return nil, err
			}
			shards := shardsFor(cfg.Shards, sel, topo)
			spec := scenario.Spec{
				Name:     "fig3b",
				Size:     cfg.Size,
				Cycles:   cfg.Cycles,
				Selector: selector,
				Topology: overlay,
				ViewSize: cfg.ViewSize,
				Shards:   shards,
				Repeats:  cfg.Runs,
				Seed:     cfg.Seed ^ hashLabel(sel, string(topo), cfg.Size),
			}
			var col scenario.Collector
			if err := specRunner(shards).Run(ctx, []scenario.Spec{spec}, &col); err != nil {
				return nil, err
			}
			series := stats.NewSeries(fmt.Sprintf("getPair_%s, %s", sel, topo))
			prev, converged := 0.0, false
			for _, r := range col.Results() {
				if r.Cycle == 0 {
					prev, converged = r.Variance, false
					continue
				}
				if converged || prev <= 0 {
					converged = true // numerically converged; further ratios are noise
					continue
				}
				series.Observe(float64(r.Cycle), r.Variance/prev)
				prev = r.Variance
			}
			out = append(out, series)
		}
	}
	return out, nil
}

// hashLabel mixes experiment coordinates into a seed offset so that every
// selector×topology×size combination draws an independent random stream.
// It delegates to the scenario engine's SeedTag, which implements the
// identical FNV mix — that identity is what keeps the rewritten drivers'
// output byte-compatible with the historical nested loops.
func hashLabel(sel, topo string, n int) uint64 {
	return scenario.SeedTag(sel, topo, strconv.Itoa(n))
}

// shardsFor returns the shard count for one selector×topology
// combination: the requested count when the combination can run on the
// sharded executor (any built-in pairing on the complete overlay; pm
// and pmrand additionally need the even sizes the scenario layer
// enforces), else 0 (exact sequential execution).
func shardsFor(shards int, sel string, topo TopologyKind) int {
	if shards == 0 || topo != Complete {
		return 0
	}
	switch sel {
	case "seq", "pm", "rand", "pmrand":
		return shards
	}
	return 0
}

// specRunner returns the scenario runner for a sweep: the default
// worker pool for sequential sweeps, a single worker when sharded
// execution is requested (the shards get the cores instead).
func specRunner(shards int) scenario.Runner {
	if shards != 0 {
		return scenario.Runner{Workers: 1}
	}
	return scenario.Runner{}
}
