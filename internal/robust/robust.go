package robust

// Robust aggregation primitives: the per-exchange countermeasures that
// bound how far a Byzantine reporter can drag the push-pull average.
// Plain averaging is maximally fragile — mass conservation (§3.2)
// faithfully spreads whatever a peer reports — so the engines and the
// simulation kernel gate each inbound exchange through a Policy
// before merging. Two mechanisms compose:
//
//   - Value-bound clamps: inbound field-0 estimates are clamped into
//     [ClampMin, ClampMax] before the merge, bounding the worst-case
//     per-exchange displacement regardless of what a peer claims.
//   - Trimmed merge: each node keeps a running (center, scale) of the
//     field-0 deltas it has accepted and rejects any exchange whose
//     delta falls outside center ± TrimK·scale — a streaming,
//     allocation-free stand-in for a MAD test that needs no history
//     buffer.
//
// Both act on field 0 (the tracked aggregate) and gate the exchange as
// a whole, so multi-field schemas stay internally consistent: either
// every field merges or none does.

// trimAlpha is the EWMA weight of the trim gate's running center and
// scale. 1/16 remembers ≈ 16 accepted exchanges — long enough that a
// burst of adversarial deltas cannot quickly re-center the gate onto
// itself, short enough to track the shrinking honest deltas as the
// network converges.
const trimAlpha = 1.0 / 16

// Policy configures the countermeasures. The zero value disables
// everything (plain merge).
type Policy struct {
	// Clamp enables value-bound clamping of inbound field-0 estimates
	// into [ClampMin, ClampMax].
	Clamp              bool
	ClampMin, ClampMax float64
	// Trim enables the trimmed merge; TrimK is the acceptance band's
	// half-width in scale units (≈ standard deviations; 8 is a safe
	// default — honest deltas concentrate well inside it while an
	// extreme-value report sits orders of magnitude outside).
	Trim  bool
	TrimK float64
}

// Enabled reports whether any countermeasure is active.
func (p Policy) Enabled() bool { return p.Clamp || p.Trim }

// ClampValue bounds one inbound field-0 estimate. NaN passes through
// (the schema's merge semantics own NaN handling).
func (p Policy) ClampValue(v float64) float64 {
	if !p.Clamp {
		return v
	}
	if v < p.ClampMin {
		return p.ClampMin
	}
	if v > p.ClampMax {
		return p.ClampMax
	}
	return v
}

// TrimState is one node's running acceptance band for the trimmed
// merge: an EWMA center of accepted field-0 deltas and an EWMA scale of
// their absolute deviation. Seed at enable time from the honest
// population's spread (center 0, scale ≈ σ) — a warmup window that
// accepts everything would itself be a poisoning vector.
type TrimState struct {
	Center, Scale float64
}

// Admit decides whether an exchange whose field-0 delta (inbound − own,
// after clamping) is delta may merge, and on acceptance folds the delta
// into the running band. The scale update tracks mean absolute
// deviation, which lags the geometric shrink of honest deltas during
// convergence — so the band tightens as the network agrees, and late
// poison that would have passed at start-up is still rejected.
func (t *TrimState) Admit(delta, k float64) bool {
	d := delta - t.Center
	if d < 0 {
		d = -d
	}
	if d > k*t.Scale {
		return false
	}
	t.Center += (delta - t.Center) * trimAlpha
	ad := delta - t.Center
	if ad < 0 {
		ad = -ad
	}
	t.Scale += (ad - t.Scale) * trimAlpha
	return true
}
