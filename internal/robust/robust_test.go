package robust

import (
	"math"
	"testing"
)

func TestPolicyEnabled(t *testing.T) {
	if (Policy{}).Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	if !(Policy{Clamp: true}).Enabled() || !(Policy{Trim: true}).Enabled() {
		t.Fatal("single-mechanism policy reports disabled")
	}
}

func TestClampValue(t *testing.T) {
	p := Policy{Clamp: true, ClampMin: -10, ClampMax: 10}
	for _, tc := range []struct{ in, want float64 }{
		{0, 0}, {9.5, 9.5}, {-10, -10}, {10, 10},
		{11, 10}, {-1e9, -10}, {math.Inf(1), 10}, {math.Inf(-1), -10},
	} {
		if got := p.ClampValue(tc.in); got != tc.want {
			t.Errorf("ClampValue(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// NaN passes through: the schema's merge semantics own NaN handling.
	if got := p.ClampValue(math.NaN()); !math.IsNaN(got) {
		t.Errorf("ClampValue(NaN) = %v, want NaN", got)
	}
	// Disabled clamp is the identity.
	if got := (Policy{}).ClampValue(1e9); got != 1e9 {
		t.Errorf("disabled ClampValue(1e9) = %v", got)
	}
}

// TestTrimAdmit: honest-scale deltas pass and fold into the band;
// deltas far outside center ± k·scale are rejected without moving the
// band, so a rejected burst cannot re-center the gate onto itself.
func TestTrimAdmit(t *testing.T) {
	ts := TrimState{Center: 0, Scale: 1}
	if !ts.Admit(0.5, 8) {
		t.Fatal("honest delta rejected")
	}
	if ts.Center == 0 || ts.Scale == 1 {
		t.Fatal("accepted delta did not fold into the running band")
	}
	before := ts
	if ts.Admit(1000, 8) {
		t.Fatal("extreme delta admitted")
	}
	if ts != before {
		t.Fatal("rejected delta mutated the band")
	}
}

// TestTrimBandTightens: the band tracks the shrinking honest deltas
// during convergence, so late poison that would have passed against the
// start-up scale is still rejected.
func TestTrimBandTightens(t *testing.T) {
	ts := TrimState{Center: 0, Scale: 1}
	const k = 8
	late := 0.9 * k // would pass against the seed scale of 1
	for i := 0; i < 200; i++ {
		if !ts.Admit(0.001, k) {
			t.Fatalf("converged honest delta rejected at step %d (scale %v)", i, ts.Scale)
		}
	}
	if ts.Admit(late, k) {
		t.Fatalf("late poison %v admitted after band tightened to scale %v", late, ts.Scale)
	}
}

func TestTrimAdmitAllocs(t *testing.T) {
	ts := TrimState{Scale: 1}
	p := Policy{Clamp: true, ClampMin: -100, ClampMax: 100}
	allocs := testing.AllocsPerRun(1000, func() {
		ts.Admit(p.ClampValue(0.25), 8)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates: %v allocs/op", allocs)
	}
}
