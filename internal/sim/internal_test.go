package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrderingQuick(t *testing.T) {
	// Property: popping the heap yields events in nondecreasing time.
	check := func(times []float64) bool {
		h := NewEventHeap(len(times))
		clean := times[:0]
		for _, at := range times {
			if !math.IsNaN(at) {
				clean = append(clean, at)
			}
		}
		for i, at := range clean {
			h.Push(Event{At: at, Node: int32(i)})
		}
		popped := make([]float64, 0, len(clean))
		for h.Len() > 0 {
			popped = append(popped, h.Pop().At)
		}
		if len(popped) != len(clean) {
			return false
		}
		return sort.Float64sAreSorted(popped)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRoundsCoversAllPairsDisjointly(t *testing.T) {
	// The tournament schedule is what makes the sharded executor both
	// race-free and complete: every unordered shard pair must appear
	// exactly once, every shard must get exactly one self-match, and
	// within a round no shard may appear in two matches.
	for s := 1; s <= 9; s++ {
		rounds := buildRounds(s)
		type pair [2]int
		seen := make(map[pair]int)
		for r, round := range rounds {
			inRound := make(map[int]bool)
			for _, m := range round {
				a, b := m[0], m[1]
				if a > b {
					a, b = b, a
				}
				seen[pair{a, b}]++
				if inRound[m[0]] || (m[0] != m[1] && inRound[m[1]]) {
					t.Fatalf("s=%d round %d: shard reused within round: %v", s, r, round)
				}
				inRound[m[0]], inRound[m[1]] = true, true
			}
		}
		for a := 0; a < s; a++ {
			for b := a; b < s; b++ {
				if seen[pair{a, b}] != 1 {
					t.Fatalf("s=%d: pair (%d,%d) scheduled %d times, want 1", s, a, b, seen[pair{a, b}])
				}
			}
		}
	}
}

func TestShardOfMatchesBounds(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{10, 3}, {100, 7}, {16, 4}, {5, 2}, {1000, 9}} {
		k, err := New(Config{Size: tc.n, Shards: tc.s})
		if err != nil {
			t.Fatal(err)
		}
		if k.sh == nil {
			t.Fatalf("n=%d s=%d: sharder not built", tc.n, tc.s)
		}
		k.sh.reset()
		for w := 0; w < len(k.sh.rngs); w++ {
			for j := k.sh.bounds[w]; j < k.sh.bounds[w+1]; j++ {
				if got := k.sh.shardOf(j); got != w {
					t.Fatalf("n=%d s=%d: shardOf(%d) = %d, want %d", tc.n, tc.s, j, got, w)
				}
			}
		}
		if k.sh.bounds[len(k.sh.rngs)] != int32(tc.n) {
			t.Fatalf("bounds do not cover all nodes: %v", k.sh.bounds)
		}
	}
}
