package sim

import (
	"fmt"

	"repro/internal/xrand"
)

// Outcome is the fate of one elementary exchange under a loss model.
type Outcome uint8

// Exchange outcomes.
const (
	// Full applies the merge at both peers — the lossless push-pull
	// exchange of Figure 1.
	Full Outcome = iota
	// ResponderOnly applies the merge at the responder j only: the
	// initiating push arrived but the reply was lost, the asymmetric
	// failure that violates mass conservation (§2, experiment E6).
	ResponderOnly
	// Dropped skips the exchange entirely: the initiating message was
	// lost and neither peer changes state.
	Dropped
)

// LossModel decides each exchange's outcome. Draw is called exactly
// once per elementary step, before the merge; implementations must
// consume the RNG deterministically so that runs stay reproducible.
type LossModel interface {
	Draw(rng *xrand.Rand) Outcome
	// Name labels the model in experiment output.
	Name() string
}

// NoLoss is the paper's lossless communication assumption. It never
// touches the RNG.
type NoLoss struct{}

var _ LossModel = NoLoss{}

// Draw implements LossModel.
func (NoLoss) Draw(*xrand.Rand) Outcome { return Full }

// Name implements LossModel.
func (NoLoss) Name() string { return "none" }

// SymmetricLoss drops a whole exchange with probability P — the
// zero-time event model's loss, which cannot lose only half an
// exchange. With P ≤ 0 it consumes no randomness.
type SymmetricLoss struct {
	P float64
}

var _ LossModel = SymmetricLoss{}

// Draw implements LossModel (one Bool draw when P > 0).
func (l SymmetricLoss) Draw(rng *xrand.Rand) Outcome {
	if rng.Bool(l.P) {
		return Dropped
	}
	return Full
}

// Name implements LossModel.
func (l SymmetricLoss) Name() string { return fmt.Sprintf("symmetric-%.3f", l.P) }

// ReplyLoss is the deployed protocol's asymmetric push-pull loss: with
// probability P the initiating message is dropped (the step is a
// no-op), otherwise with probability P the reply is dropped, in which
// case only the responder applies the merge. With P ≤ 0 it consumes
// no randomness.
type ReplyLoss struct {
	P float64
}

var _ LossModel = ReplyLoss{}

// Draw implements LossModel (up to two Bool draws when P > 0, in the
// historical order of avg.Runner: request first, then reply).
func (l ReplyLoss) Draw(rng *xrand.Rand) Outcome {
	if rng.Bool(l.P) {
		return Dropped
	}
	if rng.Bool(l.P) {
		return ResponderOnly
	}
	return Full
}

// Name implements LossModel.
func (l ReplyLoss) Name() string { return fmt.Sprintf("reply-%.3f", l.P) }
