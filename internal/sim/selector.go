package sim

import (
	"errors"
	"fmt"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// Selector is the GETPAIR abstraction of Figure 2. A cycle consists of
// exactly g.Size() calls to NextPair, preceded by one BeginCycle call.
// This package provides the four selectors analyzed in Section 3.3:
//
//   - PM      — two disjoint perfect matchings per cycle (optimal, rate 1/4)
//   - Rand    — uniformly random edge per step (rate 1/e)
//   - Seq     — fixed node order, random neighbor each (rate ≈ 1/(2√e))
//   - PMRand  — one perfect matching then N/2 random edges (the analytical
//     proxy the paper substitutes for Seq, exact rate 1/(2√e))
//
// Selectors are stateful and bound to one graph at a time via Bind;
// they are not safe for concurrent use.
type Selector interface {
	// Bind attaches the selector to a graph and RNG, resetting all state.
	// Selectors that need global structure (perfect matchings) may reject
	// graphs they cannot support.
	Bind(g topology.Graph, rng *xrand.Rand) error
	// BeginCycle prepares per-cycle state (e.g. fresh matchings).
	BeginCycle()
	// NextPair returns the next pair (i, j), i ≠ j, to average.
	NextPair() (i, j int)
	// Name returns the selector's label used in experiment output.
	Name() string
}

// ErrNeedsCompleteGraph is returned by Bind when a selector requiring
// global knowledge (PM, PMRand) is bound to a non-complete topology. The
// paper defines perfect-matching selection only as a reference point on
// the complete graph, where disjoint matchings always exist.
var ErrNeedsCompleteGraph = errors.New("sim: selector requires the complete graph")

// ErrOddSize is returned when a perfect-matching selector is bound to a
// graph with an odd number of nodes.
var ErrOddSize = errors.New("sim: perfect matching requires an even node count")

// NewSelector returns a fresh selector by name: "pm", "rand", "seq" or
// "pmrand". Unknown names return an error listing the options, so CLI
// flag handling stays in one place.
func NewSelector(name string) (Selector, error) {
	switch name {
	case "pm":
		return NewPM(), nil
	case "rand":
		return NewRand(), nil
	case "seq":
		return NewSeq(), nil
	case "pmrand":
		return NewPMRand(), nil
	default:
		return nil, fmt.Errorf("sim: unknown selector %q (want pm, rand, seq or pmrand)", name)
	}
}

// Rand selects a uniformly random edge of the overlay each step
// (GETPAIR_RAND, §3.3.2). On the complete graph every unordered pair is
// equally likely; on a regular graph, sampling a random node and then a
// random neighbor is uniform over directed edges, hence uniform over
// undirected edges as well.
type Rand struct {
	g   topology.Graph
	rng *xrand.Rand
}

var _ Selector = (*Rand)(nil)

// NewRand returns an unbound random-edge selector.
func NewRand() *Rand { return &Rand{} }

// Bind implements Selector.
func (s *Rand) Bind(g topology.Graph, rng *xrand.Rand) error {
	s.g, s.rng = g, rng
	return nil
}

// BeginCycle implements Selector (no per-cycle state).
func (s *Rand) BeginCycle() {}

// NextPair implements Selector.
func (s *Rand) NextPair() (int, int) {
	for {
		i := s.rng.Intn(s.g.Size())
		if j, ok := s.g.RandomNeighbor(i, s.rng); ok {
			return i, j
		}
	}
}

// Name implements Selector.
func (s *Rand) Name() string { return "rand" }

// Seq iterates over the node set in a fixed order, pairing each node with
// one of its random neighbors (GETPAIR_SEQ, §3.3.3). This is the pair
// sequence the practical distributed protocol induces: every node
// initiates exactly once per cycle.
type Seq struct {
	g    topology.Graph
	rng  *xrand.Rand
	next int
}

var _ Selector = (*Seq)(nil)

// NewSeq returns an unbound sequential selector.
func NewSeq() *Seq { return &Seq{} }

// Bind implements Selector.
func (s *Seq) Bind(g topology.Graph, rng *xrand.Rand) error {
	s.g, s.rng, s.next = g, rng, 0
	return nil
}

// BeginCycle restarts the fixed iteration order.
func (s *Seq) BeginCycle() { s.next = 0 }

// NextPair implements Selector.
func (s *Seq) NextPair() (int, int) {
	n := s.g.Size()
	for {
		i := s.next % n
		s.next++
		if j, ok := s.g.RandomNeighbor(i, s.rng); ok {
			return i, j
		}
	}
}

// Name implements Selector.
func (s *Seq) Name() string { return "seq" }

// PM returns pairs from two disjoint perfect matchings per cycle
// (GETPAIR_PM, §3.3.1): the first N/2 calls enumerate matching one, the
// next N/2 calls enumerate a second matching sharing no pair with the
// first, so every node is selected exactly twice per cycle (φ ≡ 2) — the
// optimum of Lemma 2.
type PM struct {
	g    topology.Graph
	rng  *xrand.Rand
	pos  int     // next pair index within the current double matching
	both []int32 // first ++ second, rebuilt each cycle
}

var _ Selector = (*PM)(nil)

// NewPM returns an unbound perfect-matching selector.
func NewPM() *PM { return &PM{} }

// Bind implements Selector. PM requires the complete graph with an
// even node count.
func (s *PM) Bind(g topology.Graph, rng *xrand.Rand) error {
	if _, ok := g.(*topology.Complete); !ok {
		return fmt.Errorf("%w (got %q)", ErrNeedsCompleteGraph, g.Name())
	}
	if g.Size()%2 != 0 {
		return fmt.Errorf("%w (n=%d)", ErrOddSize, g.Size())
	}
	s.g, s.rng = g, rng
	s.both = nil
	return nil
}

// BeginCycle draws two disjoint random perfect matchings.
func (s *PM) BeginCycle() {
	n := s.g.Size()
	if cap(s.both) < 2*n {
		s.both = make([]int32, 2*n)
	}
	s.both = s.both[:2*n]
	first := s.both[:n]
	second := s.both[n:]
	randomMatching(first, s.rng)
	drawDisjointMatching(second, first, s.rng)
	s.pos = 0
}

// NextPair implements Selector.
func (s *PM) NextPair() (int, int) {
	p := s.pos % len(s.both)
	s.pos += 2
	return int(s.both[p]), int(s.both[p+1])
}

// Name implements Selector.
func (s *PM) Name() string { return "pm" }

// PMRand behaves like PM for the first N/2 calls of a cycle and like Rand
// for the remaining N/2 (GETPAIR_PMRAND, §3.3.3). Its per-cycle selection
// count is φ = 1 + Poisson(1), the distribution the paper uses to derive
// the 1/(2√e) rate it then attributes to Seq.
type PMRand struct {
	g        topology.Graph
	rng      *xrand.Rand
	matching []int32
	pos      int
	calls    int
}

var _ Selector = (*PMRand)(nil)

// NewPMRand returns an unbound PM-then-random selector.
func NewPMRand() *PMRand { return &PMRand{} }

// Bind implements Selector. PMRand requires the complete graph with
// an even node count (for its matching half).
func (s *PMRand) Bind(g topology.Graph, rng *xrand.Rand) error {
	if _, ok := g.(*topology.Complete); !ok {
		return fmt.Errorf("%w (got %q)", ErrNeedsCompleteGraph, g.Name())
	}
	if g.Size()%2 != 0 {
		return fmt.Errorf("%w (n=%d)", ErrOddSize, g.Size())
	}
	s.g, s.rng = g, rng
	s.matching = nil
	return nil
}

// BeginCycle draws a fresh perfect matching and resets the call counter.
func (s *PMRand) BeginCycle() {
	n := s.g.Size()
	if cap(s.matching) < n {
		s.matching = make([]int32, n)
	}
	s.matching = s.matching[:n]
	randomMatching(s.matching, s.rng)
	s.pos, s.calls = 0, 0
}

// NextPair implements Selector.
func (s *PMRand) NextPair() (int, int) {
	n := s.g.Size()
	s.calls++
	if s.calls <= n/2 {
		p := s.pos
		s.pos += 2
		return int(s.matching[p]), int(s.matching[p+1])
	}
	i := s.rng.Intn(n)
	j, _ := s.g.RandomNeighbor(i, s.rng)
	return i, j
}

// Name implements Selector.
func (s *PMRand) Name() string { return "pmrand" }

// randomMatching fills out with a random permutation of 0..len(out)-1;
// consecutive entries (2t, 2t+1) form the matched pairs.
func randomMatching(out []int32, rng *xrand.Rand) {
	for i := range out {
		out[i] = int32(i)
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
}

// drawDisjointMatching fills out with a random perfect matching sharing
// no pair with avoid (both flattened as consecutive pairs). It draws a
// random matching and repairs collisions with random pair swaps, which
// terminates quickly because the expected number of collisions between
// two random matchings is ~1/2 regardless of n.
func drawDisjointMatching(out, avoid []int32, rng *xrand.Rand) {
	n := len(out)
	avoidKey := make(map[int64]struct{}, n/2)
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	for p := 0; p < n; p += 2 {
		avoidKey[key(avoid[p], avoid[p+1])] = struct{}{}
	}
	randomMatching(out, rng)
	for {
		collision := -1
		for p := 0; p < n; p += 2 {
			if _, hit := avoidKey[key(out[p], out[p+1])]; hit {
				collision = p
				break
			}
		}
		if collision < 0 {
			return
		}
		// Swap the collision's second element with another random pair's
		// second element; both pairs change so the collision dissolves
		// with probability close to 1.
		other := 2 * rng.Intn(n/2)
		if other == collision {
			continue
		}
		out[collision+1], out[other+1] = out[other+1], out[collision+1]
	}
}
