// Package sim is the unified simulation kernel behind every exchange
// loop in this repository. The paper's entire contribution is one
// elementary step — replace (x_i, x_j) with AGGREGATE(x_i, x_j) — and
// this package implements that step exactly once, over a flat
// structure-of-arrays state (one []float64 column per gossiped field,
// no per-node heap objects), composed with five orthogonal axes:
//
//   - Selector — the GETPAIR abstraction of Figure 2 (pm, rand, seq,
//     pmrand; §3.3), driving cycle-based execution.
//   - WaitPolicy — the GETWAITINGTIME abstraction of Figure 1
//     (constant or exponential Δt; §1.1), driving event-based
//     execution via RunEvents.
//   - LossModel — lossless, symmetric whole-exchange loss, or the
//     deployed protocol's asymmetric reply loss (§2, experiment E6).
//   - ChurnSchedule — per-cycle node removal/addition adapting
//     internal/churn (§4's dynamic membership).
//   - topology.Graph — the overlay; nil means the dynamic complete
//     graph over the current live node set (ideal peer sampling),
//     which is the only topology that composes with churn.
//
// The historical entry points — avg.Runner, eventsim.Run,
// core.Network and epoch's size simulation — are thin adapters over
// this kernel. In single-shard mode the kernel consumes its RNG in
// exactly the order those layers historically did, so fixed seeds
// reproduce the pre-refactor trajectories bit for bit.
//
// For throughput, Config.Shards > 1 switches Cycle to a sharded
// executor that partitions the N elementary steps of a cycle across
// workers with per-shard RNG streams (see shard.go). Sharded runs are
// deterministic for a fixed seed and shard count, and statistically
// indistinguishable from — but not bit-identical to — sequential runs.
// The exception is the pm selector, whose matching-based parallel
// generator reproduces the single-shard trajectory bit for bit.
package sim

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Op is an elementary merge operator applied field-wise during an
// exchange. Both peers adopt the merged value (the paper's symmetric
// AGGREGATE), so every Op must be commutative.
type Op uint8

// Supported elementary merge operators.
const (
	// OpAvg replaces both approximations with their mean — the
	// variance-reduction step of Figure 2 and the basis of every
	// derived aggregate (counting, sums, variance via moments).
	OpAvg Op = iota
	// OpMin spreads the minimum epidemically.
	OpMin
	// OpMax spreads the maximum epidemically.
	OpMax
)

// String returns the operator's lowercase name.
func (o Op) String() string {
	switch o {
	case OpAvg:
		return "avg"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// merge applies the operator to one pair of field values.
func (o Op) merge(x, y float64) float64 {
	switch o {
	case OpMin:
		if x < y {
			return x
		}
		return y
	case OpMax:
		if x > y {
			return x
		}
		return y
	default:
		return (x + y) / 2
	}
}

// AutoShards selects one shard per GOMAXPROCS worker.
const AutoShards = -1

// Config assembles a Kernel from the orthogonal axes. The zero value
// of every field selects the paper's defaults: complete overlay, seq
// pairing, lossless exchanges, no churn, exact sequential execution.
type Config struct {
	// Graph is the overlay. nil selects the dynamic complete graph
	// over the current live node set, the only overlay that supports
	// Resize/RemoveNode churn.
	Graph topology.Graph
	// Size is the node count when Graph is nil (ignored otherwise).
	Size int
	// Ops lists the per-field merge operators; nil means a single
	// average field (the protocol the paper analyzes).
	Ops []Op
	// Selector is the GETPAIR implementation for cycle-based runs;
	// nil selects GETPAIR_SEQ, the practical protocol's pair stream.
	Selector Selector
	// Wait enables event-based execution via RunEvents.
	Wait WaitPolicy
	// Loss is the message-loss model; nil means lossless.
	Loss LossModel
	// Churn, when non-nil, is applied by Run before every cycle.
	Churn ChurnSchedule
	// Join supplies field f's initial value for nodes added by churn
	// (nil initializes joiners to zero, the §4 indicator convention).
	Join func(f int) float64
	// Shards selects the executor: ≤1 runs the exact sequential path,
	// >1 the sharded structure-of-arrays executor, AutoShards one
	// shard per GOMAXPROCS worker.
	Shards int
	// CountPhi tallies per-node selection counts each cycle (the
	// random variable φ of Theorem 1), retrievable via PhiCounts.
	CountPhi bool
	// RNG is the master random stream; nil derives one from Seed.
	RNG *xrand.Rand
	// Seed seeds a fresh stream when RNG is nil.
	Seed uint64
}

// Kernel is the simulation engine: a flat structure-of-arrays state
// (cols[f][i] is node i's approximation of field f) plus the composed
// axes. Kernels are not safe for concurrent use; the sharded executor
// manages its own worker parallelism internally.
type Kernel struct {
	graph topology.Graph
	dyn   bool // graph is the dynamic complete overlay
	n     int
	ops   []Op
	cols  [][]float64

	sel   Selector
	wait  WaitPolicy
	loss  LossModel
	churn ChurnSchedule
	join  func(f int) float64
	rng   *xrand.Rand

	phi   []int
	cycle int

	evh *EventHeap // RunEvents schedule, reused across runs

	shards int
	sh     *sharder
}

// dynComplete is the complete graph over a kernel's current live node
// set: Size tracks churn, sampling matches topology.Complete exactly.
type dynComplete struct {
	k *Kernel
}

var _ topology.Graph = dynComplete{}

// Size implements topology.Graph.
func (g dynComplete) Size() int { return g.k.n }

// Degree implements topology.Graph.
func (g dynComplete) Degree(int) int { return g.k.n - 1 }

// Neighbor implements topology.Graph.
func (g dynComplete) Neighbor(i, k int) int {
	if k < i {
		return k
	}
	return k + 1
}

// RandomNeighbor implements topology.Graph with the same draw sequence
// as topology.Complete: one Intn(n-1) per sample.
func (g dynComplete) RandomNeighbor(i int, rng *xrand.Rand) (int, bool) {
	n := g.k.n
	if n < 2 {
		return 0, false
	}
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return j, true
}

// Name implements topology.Graph.
func (g dynComplete) Name() string { return "dynamic-complete" }

// New builds a Kernel. All columns start at zero; load initial values
// with SetValues (or Column) before running.
func New(cfg Config) (*Kernel, error) {
	k := &Kernel{
		wait:  cfg.Wait,
		loss:  cfg.Loss,
		churn: cfg.Churn,
		join:  cfg.Join,
		rng:   cfg.RNG,
	}
	if k.rng == nil {
		k.rng = xrand.New(cfg.Seed)
	}
	if cfg.Graph != nil {
		k.graph = cfg.Graph
		k.n = cfg.Graph.Size()
	} else {
		if cfg.Size < 2 {
			return nil, fmt.Errorf("sim: dynamic complete overlay needs Size ≥ 2, got %d", cfg.Size)
		}
		k.graph = dynComplete{k}
		k.dyn = true
		k.n = cfg.Size
	}
	if k.loss == nil {
		k.loss = NoLoss{}
	}
	k.ops = []Op{OpAvg}
	if len(cfg.Ops) > 0 {
		k.ops = append([]Op(nil), cfg.Ops...)
	}
	k.cols = make([][]float64, len(k.ops))
	for f := range k.cols {
		k.cols[f] = make([]float64, k.n)
	}
	k.shards = ResolveShards(cfg.Shards, k.n)
	if k.shards > 1 {
		if cfg.Wait != nil {
			return nil, fmt.Errorf("sim: event-based execution (Wait) is single-shard only")
		}
		mode := shSeq
		switch cfg.Selector.(type) {
		case nil:
			// Built-in seq pairing with per-shard RNG streams.
		case *PM:
			// Matching-based parallel pairing: both perfect matchings are
			// drawn on the master stream and executed through the
			// tournament, bit-identical to single-shard PM (see shard.go).
			mode = shPM
			if k.n%2 != 0 {
				return nil, fmt.Errorf("%w (n=%d)", ErrOddSize, k.n)
			}
			if cfg.Churn != nil {
				return nil, fmt.Errorf("sim: sharded pm pairing does not compose with churn (node count must stay even)")
			}
		case *Rand:
			// Independent uniform edge draws parallelize freely across
			// the shard streams; no parity or churn constraints.
			mode = shRand
		case *PMRand:
			// The matching half needs the same parity guarantee as pm.
			mode = shPMRand
			if k.n%2 != 0 {
				return nil, fmt.Errorf("%w (n=%d)", ErrOddSize, k.n)
			}
			if cfg.Churn != nil {
				return nil, fmt.Errorf("sim: sharded pmrand pairing does not compose with churn (node count must stay even)")
			}
		default:
			return nil, fmt.Errorf("sim: sharded execution supports the built-in selectors (Selector nil for seq, pm, rand, pmrand), not %q", cfg.Selector.Name())
		}
		k.sh = newSharder(k, mode)
	} else {
		k.sel = cfg.Selector
		if k.sel == nil {
			k.sel = NewSeq()
		}
		if err := k.sel.Bind(k.graph, k.rng); err != nil {
			return nil, fmt.Errorf("sim: bind selector %q: %w", k.sel.Name(), err)
		}
	}
	if cfg.CountPhi {
		k.phi = make([]int, k.n)
	}
	return k, nil
}

// Size returns the current live node count.
func (k *Kernel) Size() int { return k.n }

// Shards returns the executor's shard count (1 for the exact
// sequential path).
func (k *Kernel) Shards() int { return k.shards }

// ResolveShards returns the effective shard count New runs with for a
// requested Config.Shards at node count n: AutoShards becomes one
// shard per GOMAXPROCS worker, non-positive counts the sequential
// path, and the count is clamped so every shard owns at least two
// nodes. Exposed so kernel pools can tell whether an existing kernel
// is interchangeable with a fresh build.
func ResolveShards(requested, n int) int {
	if requested == AutoShards {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested < 1 {
		requested = 1
	}
	if requested > n/2 {
		requested = max(n/2, 1)
	}
	return requested
}

// Reseed replaces the kernel's master random stream and resets the
// cycle counter, rebinding the selector (single-shard) or re-deriving
// the per-shard streams (sharded) exactly as New would. Together with
// Resize/ReshapeAvg and SetValues this lets one kernel be reused across
// independent runs with allocations staying flat: after Reseed the
// kernel behaves as if freshly constructed with this RNG.
func (k *Kernel) Reseed(rng *xrand.Rand) error {
	if rng == nil {
		return fmt.Errorf("sim: Reseed needs a non-nil RNG")
	}
	k.rng = rng
	k.cycle = 0
	if k.sh != nil {
		k.sh.reseed(rng)
		return nil
	}
	if err := k.sel.Bind(k.graph, rng); err != nil {
		return fmt.Errorf("sim: rebind selector %q: %w", k.sel.Name(), err)
	}
	return nil
}

// SetLoss swaps the message-loss model between runs (nil restores the
// lossless default). The next Draw happens on the next cycle.
func (k *Kernel) SetLoss(l LossModel) {
	if l == nil {
		l = NoLoss{}
	}
	k.loss = l
}

// Fields returns the number of gossiped fields.
func (k *Kernel) Fields() int { return len(k.ops) }

// Ops returns the per-field merge operators (shared; treat as
// read-only).
func (k *Kernel) Ops() []Op { return k.ops }

// Column returns field f's live value column, indexed by node. Callers
// may read and write it between cycles; the kernel operates on the
// same backing array (mutating it models externally changing local
// values, which the protocol tracks by design).
func (k *Kernel) Column(f int) []float64 { return k.cols[f][:k.n] }

// SetValues copies vals into field f's column. The length must match
// the current node count.
func (k *Kernel) SetValues(f int, vals []float64) error {
	if len(vals) != k.n {
		return fmt.Errorf("sim: vector length %d does not match node count %d", len(vals), k.n)
	}
	copy(k.cols[f], vals)
	return nil
}

// PhiCounts returns the per-node selection counts of the most recent
// cycle (one entry per live node), or nil unless the kernel was built
// with CountPhi. The slice is reused across cycles; copy it to retain.
func (k *Kernel) PhiCounts() []int {
	if k.phi == nil {
		return nil
	}
	return k.phi[:k.n]
}

// CycleCount returns the number of completed cycles.
func (k *Kernel) CycleCount() int { return k.cycle }

// Cycle performs one full cycle — exactly Size() elementary steps —
// with the configured selector, loss model and executor.
func (k *Kernel) Cycle() {
	if k.n >= 2 {
		if k.shards > 1 {
			k.shardCycle()
		} else {
			k.seqCycle()
		}
	}
	k.cycle++
}

// seqCycle is the exact sequential path: selector-driven, one RNG,
// the historical draw order of avg.Runner and core.Network.
func (k *Kernel) seqCycle() {
	k.sel.BeginCycle()
	if k.phi != nil {
		clear(k.phi[:k.n])
	}
	n := k.n
	for s := 0; s < n; s++ {
		i, j := k.sel.NextPair()
		if k.phi != nil {
			k.phi[i]++
			k.phi[j]++
		}
		switch k.loss.Draw(k.rng) {
		case Dropped:
		case ResponderOnly:
			k.mergeResponder(i, j)
		default:
			k.mergeFull(i, j)
		}
	}
}

// mergeFull applies the elementary step to nodes i and j: both adopt
// the field-wise merge.
func (k *Kernel) mergeFull(i, j int) {
	for f, op := range k.ops {
		col := k.cols[f]
		m := op.merge(col[i], col[j])
		col[i] = m
		col[j] = m
	}
}

// mergeResponder applies the merge at the responder j only — the
// deployed protocol's reply-loss outcome, which violates mass
// conservation (§2).
func (k *Kernel) mergeResponder(i, j int) {
	for f, op := range k.ops {
		col := k.cols[f]
		col[j] = op.merge(col[i], col[j])
	}
}

// Run performs the given number of cycles, applying the configured
// churn schedule (if any) before each one, and returns field 0's
// empirical variance after every cycle, with index 0 holding the
// initial variance — the raw series behind Figures 3(a) and 3(b).
func (k *Kernel) Run(cycles int) []float64 {
	out, _ := k.RunContext(context.Background(), cycles)
	return out
}

// RunContext is Run with cooperative cancellation: the context is
// checked once per cycle, so even a 10⁶-node run stops within tens of
// milliseconds of a cancel. The variances accumulated so far are
// returned alongside the context's error.
func (k *Kernel) RunContext(ctx context.Context, cycles int) ([]float64, error) {
	out := make([]float64, 0, cycles+1)
	out = append(out, stats.Variance(k.Column(0)))
	for c := 0; c < cycles; c++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if k.churn != nil {
			k.applyChurn()
		}
		k.Cycle()
		out = append(out, stats.Variance(k.Column(0)))
	}
	return out, nil
}

// applyChurn executes one cycle's churn plan: uniform removals (never
// below two live nodes) followed by additions initialized via the
// Join hook.
func (k *Kernel) applyChurn() {
	remove, add := k.churn.Plan(k.cycle, k.n)
	k.RemoveRandom(remove)
	k.Grow(add)
}

// RemoveRandom removes up to m uniformly random live nodes (crash
// model: their state mass disappears), keeping at least two so the
// network stays exchangeable. It returns how many were removed.
func (k *Kernel) RemoveRandom(m int) int {
	removed := 0
	for removed < m && k.n > 2 {
		k.RemoveNode(k.rng.Intn(k.n))
		removed++
	}
	return removed
}

// RemoveNode removes node i by swapping in the last live node across
// every field column. Only dynamic-overlay kernels support removal.
func (k *Kernel) RemoveNode(i int) {
	if !k.dyn {
		panic("sim: RemoveNode needs the dynamic complete overlay (Config.Graph == nil)")
	}
	last := k.n - 1
	for f := range k.cols {
		col := k.cols[f]
		col[i] = col[last]
	}
	k.n = last
}

// Grow adds m fresh nodes whose field values come from the Join hook
// (zero without one). Only dynamic-overlay kernels support growth.
func (k *Kernel) Grow(m int) {
	if m <= 0 {
		return
	}
	if !k.dyn {
		panic("sim: Grow needs the dynamic complete overlay (Config.Graph == nil)")
	}
	k.Resize(k.n + m)
	if k.join != nil {
		for f := range k.cols {
			v := k.join(f)
			col := k.cols[f]
			for i := k.n - m; i < k.n; i++ {
				col[i] = v
			}
		}
	}
}

// Resize sets the live node count to n, zero-filling any growth and
// reusing column storage. Only dynamic-overlay kernels may resize.
func (k *Kernel) Resize(n int) {
	if !k.dyn {
		panic("sim: Resize needs the dynamic complete overlay (Config.Graph == nil)")
	}
	for f := range k.cols {
		k.cols[f] = resizeZero(k.cols[f], k.n, n)
	}
	if k.phi != nil && n > len(k.phi) {
		k.phi = append(k.phi, make([]int, n-len(k.phi))...)
	}
	k.n = n
}

// ReshapeAvg reconfigures the kernel to fields average columns over n
// nodes, all zero — the epoch-restart primitive of the §4 size
// estimator (each instance is one indicator column). Storage is
// reused across epochs.
func (k *Kernel) ReshapeAvg(fields, n int) {
	if !k.dyn {
		panic("sim: ReshapeAvg needs the dynamic complete overlay (Config.Graph == nil)")
	}
	if fields < 1 {
		fields = 1
	}
	if len(k.ops) != fields {
		k.ops = make([]Op, fields)
		for len(k.cols) < fields {
			k.cols = append(k.cols, nil)
		}
		k.cols = k.cols[:fields]
	}
	for f := range k.ops {
		k.ops[f] = OpAvg
	}
	for f := range k.cols {
		k.cols[f] = resizeZero(k.cols[f], 0, n)
	}
	if k.phi != nil && n > len(k.phi) {
		k.phi = append(k.phi, make([]int, n-len(k.phi))...)
	}
	k.n = n
}

// resizeZero returns col resized from oldN to n live entries, growing
// the backing array as needed and zeroing any newly exposed tail.
func resizeZero(col []float64, oldN, n int) []float64 {
	if cap(col) < n {
		grown := make([]float64, n)
		copy(grown, col[:oldN])
		return grown
	}
	col = col[:n]
	if n > oldN {
		clear(col[oldN:n])
	}
	return col
}
