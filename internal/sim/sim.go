// Package sim is the unified simulation kernel behind every exchange
// loop in this repository. The paper's entire contribution is one
// elementary step — replace (x_i, x_j) with AGGREGATE(x_i, x_j) — and
// this package implements that step exactly once, over a flat
// structure-of-arrays state (one []float64 column per gossiped field,
// no per-node heap objects), composed with five orthogonal axes:
//
//   - Selector — the GETPAIR abstraction of Figure 2 (pm, rand, seq,
//     pmrand; §3.3), driving cycle-based execution.
//   - WaitPolicy — the GETWAITINGTIME abstraction of Figure 1
//     (constant or exponential Δt; §1.1), driving event-based
//     execution via RunEvents.
//   - LossModel — lossless, symmetric whole-exchange loss, or the
//     deployed protocol's asymmetric reply loss (§2, experiment E6).
//   - ChurnSchedule — per-cycle node removal/addition adapting
//     internal/churn (§4's dynamic membership).
//   - topology.Graph — the overlay; nil means the dynamic complete
//     graph over the current live node set (ideal peer sampling),
//     which is the only topology that composes with churn.
//
// The historical entry points — avg.Runner, eventsim.Run,
// core.Network and epoch's size simulation — are thin adapters over
// this kernel. In single-shard mode the kernel consumes its RNG in
// exactly the order those layers historically did, so fixed seeds
// reproduce the pre-refactor trajectories bit for bit.
//
// For throughput, Config.Shards > 1 switches Cycle to a sharded
// executor that partitions the N elementary steps of a cycle across
// workers with per-shard RNG streams (see shard.go). Sharded runs are
// deterministic for a fixed seed and shard count, and statistically
// indistinguishable from — but not bit-identical to — sequential runs.
// The exception is the pm selector, whose matching-based parallel
// generator reproduces the single-shard trajectory bit for bit.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/robust"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Op is an elementary merge operator applied field-wise during an
// exchange. Both peers adopt the merged value (the paper's symmetric
// AGGREGATE), so every Op must be commutative.
type Op uint8

// Supported elementary merge operators.
const (
	// OpAvg replaces both approximations with their mean — the
	// variance-reduction step of Figure 2 and the basis of every
	// derived aggregate (counting, sums, variance via moments).
	OpAvg Op = iota
	// OpMin spreads the minimum epidemically.
	OpMin
	// OpMax spreads the maximum epidemically.
	OpMax
)

// String returns the operator's lowercase name.
func (o Op) String() string {
	switch o {
	case OpAvg:
		return "avg"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// merge applies the operator to one pair of field values.
func (o Op) merge(x, y float64) float64 {
	switch o {
	case OpMin:
		if x < y {
			return x
		}
		return y
	case OpMax:
		if x > y {
			return x
		}
		return y
	default:
		return (x + y) / 2
	}
}

// AutoShards selects one shard per GOMAXPROCS worker.
const AutoShards = -1

// Config assembles a Kernel from the orthogonal axes. The zero value
// of every field selects the paper's defaults: complete overlay, seq
// pairing, lossless exchanges, no churn, exact sequential execution.
type Config struct {
	// Graph is the overlay. nil selects the dynamic complete graph
	// over the current live node set, the only overlay that supports
	// Resize/RemoveNode churn.
	Graph topology.Graph
	// Size is the node count when Graph is nil (ignored otherwise).
	Size int
	// Ops lists the per-field merge operators; nil means a single
	// average field (the protocol the paper analyzes).
	Ops []Op
	// Selector is the GETPAIR implementation for cycle-based runs;
	// nil selects GETPAIR_SEQ, the practical protocol's pair stream.
	Selector Selector
	// Wait enables event-based execution via RunEvents.
	Wait WaitPolicy
	// Loss is the message-loss model; nil means lossless.
	Loss LossModel
	// Churn, when non-nil, is applied by Run before every cycle.
	Churn ChurnSchedule
	// Join supplies field f's initial value for nodes added by churn
	// (nil initializes joiners to zero, the §4 indicator convention).
	Join func(f int) float64
	// Shards selects the executor: ≤1 runs the exact sequential path,
	// >1 the sharded structure-of-arrays executor, AutoShards one
	// shard per GOMAXPROCS worker.
	Shards int
	// CountPhi tallies per-node selection counts each cycle (the
	// random variable φ of Theorem 1), retrievable via PhiCounts.
	CountPhi bool
	// RNG is the master random stream; nil derives one from Seed.
	RNG *xrand.Rand
	// Seed seeds a fresh stream when RNG is nil.
	Seed uint64
}

// Kernel is the simulation engine: a flat structure-of-arrays state
// (cols[f][i] is node i's approximation of field f) plus the composed
// axes. Kernels are not safe for concurrent use; the sharded executor
// manages its own worker parallelism internally.
type Kernel struct {
	graph topology.Graph
	dyn   bool // graph is the dynamic complete overlay
	n     int
	ops   []Op
	cols  [][]float64

	sel   Selector
	wait  WaitPolicy
	loss  LossModel
	churn ChurnSchedule
	join  func(f int) float64
	rng   *xrand.Rand

	phi   []int
	cycle int

	evh *EventHeap // RunEvents schedule, reused across runs

	shards int
	sh     *sharder

	// Adversary axis (SetAdversaries): adv marks Byzantine nodes, which
	// never adopt a merge and always report their current (pinned)
	// column values; advNodes lists their indices for eclipse
	// redirection; eclipsed marks honest victims whose partner draws an
	// eclipse adversary has captured.
	adv        []uint8
	advNodes   []int32
	advEclipse bool
	eclipsed   []uint8

	// Robust countermeasures (SetRobust): clamp/trim policy, per-node
	// trim acceptance bands, and the rejected-exchange counter (atomic:
	// the sharded executor's workers increment it concurrently).
	robust   robust.Policy
	robustOn bool
	trim     []robust.TrimState
	rejected atomic.Uint64
}

// AdversaryBehavior selects what a Byzantine node does with the
// protocol. All behaviors share one mechanic — the adversary never
// adopts a merge and always reports its current column values — and
// differ in what those values are pinned to (and, for eclipse, in the
// membership poison layered on top).
type AdversaryBehavior uint8

const (
	// AdvExtreme pins the adversary's field-0 report to an extreme
	// magnitude — the classical poisoning attack on mass conservation.
	AdvExtreme AdversaryBehavior = iota
	// AdvColluding pins every adversary to one shared target value,
	// dragging the converged estimate toward it without obvious
	// outliers.
	AdvColluding
	// AdvSelectiveDrop keeps the honestly drawn value but acks and
	// discards every merge: the node looks alive and serves plausible
	// state, yet leaks mass asymmetry into every exchange it serves.
	AdvSelectiveDrop
	// AdvEclipse pins like colluding and additionally captures honest
	// partners: once a victim exchanges with an eclipse node, the
	// victim's subsequent partner draws are redirected to uniformly
	// random adversaries — the kernel model of a flooded gossip view.
	AdvEclipse
)

// dynComplete is the complete graph over a kernel's current live node
// set: Size tracks churn, sampling matches topology.Complete exactly.
type dynComplete struct {
	k *Kernel
}

var _ topology.Graph = dynComplete{}

// Size implements topology.Graph.
func (g dynComplete) Size() int { return g.k.n }

// Degree implements topology.Graph.
func (g dynComplete) Degree(int) int { return g.k.n - 1 }

// Neighbor implements topology.Graph.
func (g dynComplete) Neighbor(i, k int) int {
	if k < i {
		return k
	}
	return k + 1
}

// RandomNeighbor implements topology.Graph with the same draw sequence
// as topology.Complete: one Intn(n-1) per sample.
func (g dynComplete) RandomNeighbor(i int, rng *xrand.Rand) (int, bool) {
	n := g.k.n
	if n < 2 {
		return 0, false
	}
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return j, true
}

// Name implements topology.Graph.
func (g dynComplete) Name() string { return "dynamic-complete" }

// New builds a Kernel. All columns start at zero; load initial values
// with SetValues (or Column) before running.
func New(cfg Config) (*Kernel, error) {
	k := &Kernel{
		wait:  cfg.Wait,
		loss:  cfg.Loss,
		churn: cfg.Churn,
		join:  cfg.Join,
		rng:   cfg.RNG,
	}
	if k.rng == nil {
		k.rng = xrand.New(cfg.Seed)
	}
	if cfg.Graph != nil {
		k.graph = cfg.Graph
		k.n = cfg.Graph.Size()
	} else {
		if cfg.Size < 2 {
			return nil, fmt.Errorf("sim: dynamic complete overlay needs Size ≥ 2, got %d", cfg.Size)
		}
		k.graph = dynComplete{k}
		k.dyn = true
		k.n = cfg.Size
	}
	if k.loss == nil {
		k.loss = NoLoss{}
	}
	k.ops = []Op{OpAvg}
	if len(cfg.Ops) > 0 {
		k.ops = append([]Op(nil), cfg.Ops...)
	}
	k.cols = make([][]float64, len(k.ops))
	for f := range k.cols {
		k.cols[f] = make([]float64, k.n)
	}
	k.shards = ResolveShards(cfg.Shards, k.n)
	if k.shards > 1 {
		if cfg.Wait != nil {
			return nil, fmt.Errorf("sim: event-based execution (Wait) is single-shard only")
		}
		mode := shSeq
		switch cfg.Selector.(type) {
		case nil:
			// Built-in seq pairing with per-shard RNG streams.
		case *PM:
			// Matching-based parallel pairing: both perfect matchings are
			// drawn on the master stream and executed through the
			// tournament, bit-identical to single-shard PM (see shard.go).
			mode = shPM
			if k.n%2 != 0 {
				return nil, fmt.Errorf("%w (n=%d)", ErrOddSize, k.n)
			}
			if cfg.Churn != nil {
				return nil, fmt.Errorf("sim: sharded pm pairing does not compose with churn (node count must stay even)")
			}
		case *Rand:
			// Independent uniform edge draws parallelize freely across
			// the shard streams; no parity or churn constraints.
			mode = shRand
		case *PMRand:
			// The matching half needs the same parity guarantee as pm.
			mode = shPMRand
			if k.n%2 != 0 {
				return nil, fmt.Errorf("%w (n=%d)", ErrOddSize, k.n)
			}
			if cfg.Churn != nil {
				return nil, fmt.Errorf("sim: sharded pmrand pairing does not compose with churn (node count must stay even)")
			}
		default:
			return nil, fmt.Errorf("sim: sharded execution supports the built-in selectors (Selector nil for seq, pm, rand, pmrand), not %q", cfg.Selector.Name())
		}
		k.sh = newSharder(k, mode)
	} else {
		k.sel = cfg.Selector
		if k.sel == nil {
			k.sel = NewSeq()
		}
		if err := k.sel.Bind(k.graph, k.rng); err != nil {
			return nil, fmt.Errorf("sim: bind selector %q: %w", k.sel.Name(), err)
		}
	}
	if cfg.CountPhi {
		k.phi = make([]int, k.n)
	}
	return k, nil
}

// Size returns the current live node count.
func (k *Kernel) Size() int { return k.n }

// Shards returns the executor's shard count (1 for the exact
// sequential path).
func (k *Kernel) Shards() int { return k.shards }

// ResolveShards returns the effective shard count New runs with for a
// requested Config.Shards at node count n: AutoShards becomes one
// shard per GOMAXPROCS worker, non-positive counts the sequential
// path, and the count is clamped so every shard owns at least two
// nodes. Exposed so kernel pools can tell whether an existing kernel
// is interchangeable with a fresh build.
func ResolveShards(requested, n int) int {
	if requested == AutoShards {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested < 1 {
		requested = 1
	}
	if requested > n/2 {
		requested = max(n/2, 1)
	}
	return requested
}

// Reseed replaces the kernel's master random stream and resets the
// cycle counter, rebinding the selector (single-shard) or re-deriving
// the per-shard streams (sharded) exactly as New would. Together with
// Resize/ReshapeAvg and SetValues this lets one kernel be reused across
// independent runs with allocations staying flat: after Reseed the
// kernel behaves as if freshly constructed with this RNG.
func (k *Kernel) Reseed(rng *xrand.Rand) error {
	if rng == nil {
		return fmt.Errorf("sim: Reseed needs a non-nil RNG")
	}
	k.rng = rng
	k.cycle = 0
	if k.sh != nil {
		k.sh.reseed(rng)
		return nil
	}
	if err := k.sel.Bind(k.graph, rng); err != nil {
		return fmt.Errorf("sim: rebind selector %q: %w", k.sel.Name(), err)
	}
	return nil
}

// SetLoss swaps the message-loss model between runs (nil restores the
// lossless default). The next Draw happens on the next cycle.
func (k *Kernel) SetLoss(l LossModel) {
	if l == nil {
		l = NoLoss{}
	}
	k.loss = l
}

// Fields returns the number of gossiped fields.
func (k *Kernel) Fields() int { return len(k.ops) }

// Ops returns the per-field merge operators (shared; treat as
// read-only).
func (k *Kernel) Ops() []Op { return k.ops }

// Column returns field f's live value column, indexed by node. Callers
// may read and write it between cycles; the kernel operates on the
// same backing array (mutating it models externally changing local
// values, which the protocol tracks by design).
func (k *Kernel) Column(f int) []float64 { return k.cols[f][:k.n] }

// SetValues copies vals into field f's column. The length must match
// the current node count.
func (k *Kernel) SetValues(f int, vals []float64) error {
	if len(vals) != k.n {
		return fmt.Errorf("sim: vector length %d does not match node count %d", len(vals), k.n)
	}
	copy(k.cols[f], vals)
	return nil
}

// SetAdversaries marks nodes as Byzantine with the given behavior.
// Extreme-value adversaries pin their field-0 report to magnitude;
// colluding and eclipse adversaries pin it to target; selective-drop
// adversaries keep their current (honestly drawn) values. Call after
// loading values with SetValues and before SetRobust (the trim seed
// must exclude adversarial values). Passing no nodes clears the axis.
func (k *Kernel) SetAdversaries(behavior AdversaryBehavior, nodes []int, magnitude, target float64) error {
	k.adv = nil
	k.advNodes = k.advNodes[:0]
	k.advEclipse = false
	k.eclipsed = nil
	if len(nodes) == 0 {
		return nil
	}
	k.adv = resizeZeroU8(k.adv, 0, k.n)
	for _, i := range nodes {
		if i < 0 || i >= k.n {
			return fmt.Errorf("sim: adversary node %d out of range [0,%d)", i, k.n)
		}
		if k.adv[i] != 0 {
			continue
		}
		k.adv[i] = 1
		k.advNodes = append(k.advNodes, int32(i))
	}
	if len(k.advNodes) >= k.n-1 {
		return fmt.Errorf("sim: %d adversaries leave fewer than two honest nodes (n=%d)", len(k.advNodes), k.n)
	}
	col0 := k.cols[0]
	switch behavior {
	case AdvExtreme:
		for _, i := range k.advNodes {
			col0[i] = magnitude
		}
	case AdvColluding:
		for _, i := range k.advNodes {
			col0[i] = target
		}
	case AdvEclipse:
		for _, i := range k.advNodes {
			col0[i] = target
		}
		k.advEclipse = true
		k.eclipsed = resizeZeroU8(nil, 0, k.n)
	case AdvSelectiveDrop:
		// Values stay as drawn: the node is indistinguishable by state,
		// only by its refusal to converge.
	default:
		return fmt.Errorf("sim: unknown adversary behavior %d", behavior)
	}
	return nil
}

// Adversaries returns the Byzantine node indices (nil without an
// adversary axis; shared — treat as read-only).
func (k *Kernel) Adversaries() []int32 { return k.advNodes }

// SetRobust installs the robust-merge countermeasures (a zero policy
// disables them). When trimming is enabled, each node's acceptance band
// is seeded from the honest population's current field-0 spread —
// center 0, scale max(σ, ε) — so a converged-looking network starts
// strict and an adversary gets no free warmup window. Call after
// SetValues and SetAdversaries.
func (k *Kernel) SetRobust(p robust.Policy) {
	k.rejected.Store(0)
	if !p.Enabled() {
		k.robust = robust.Policy{}
		k.robustOn = false
		k.trim = nil
		return
	}
	if p.Trim && p.TrimK <= 0 {
		p.TrimK = 8
	}
	k.robust = p
	k.robustOn = true
	k.trim = nil
	if p.Trim {
		var run stats.Running
		col0 := k.cols[0]
		for i := 0; i < k.n; i++ {
			if k.adv == nil || k.adv[i] == 0 {
				run.Add(col0[i])
			}
		}
		scale := run.StdDev()
		if scale < 1e-12 {
			scale = 1e-12
		}
		k.trim = make([]robust.TrimState, k.n)
		for i := range k.trim {
			k.trim[i] = robust.TrimState{Center: 0, Scale: scale}
		}
	}
}

// RobustRejected returns how many exchange halves the robust trim gate
// has rejected since SetRobust.
func (k *Kernel) RobustRejected() uint64 { return k.rejected.Load() }

// PhiCounts returns the per-node selection counts of the most recent
// cycle (one entry per live node), or nil unless the kernel was built
// with CountPhi. The slice is reused across cycles; copy it to retain.
func (k *Kernel) PhiCounts() []int {
	if k.phi == nil {
		return nil
	}
	return k.phi[:k.n]
}

// CycleCount returns the number of completed cycles.
func (k *Kernel) CycleCount() int { return k.cycle }

// Cycle performs one full cycle — exactly Size() elementary steps —
// with the configured selector, loss model and executor.
func (k *Kernel) Cycle() {
	if k.n >= 2 {
		if k.shards > 1 {
			k.shardCycle()
		} else {
			k.seqCycle()
		}
	}
	k.cycle++
}

// seqCycle is the exact sequential path: selector-driven, one RNG,
// the historical draw order of avg.Runner and core.Network.
func (k *Kernel) seqCycle() {
	k.sel.BeginCycle()
	if k.phi != nil {
		clear(k.phi[:k.n])
	}
	n := k.n
	for s := 0; s < n; s++ {
		i, j := k.sel.NextPair()
		j = k.redirectEclipsed(i, j, k.rng)
		if k.phi != nil {
			k.phi[i]++
			k.phi[j]++
		}
		switch k.loss.Draw(k.rng) {
		case Dropped:
		case ResponderOnly:
			k.mergeResponder(i, j)
		default:
			k.mergeFull(i, j)
		}
	}
}

// redirectEclipsed maps initiator i's drawn partner j to a uniformly
// random adversary when i's view has been captured by an eclipse node —
// the kernel model of a gossip view flooded with adversary addresses.
// Identity without an eclipse axis.
func (k *Kernel) redirectEclipsed(i, j int, rng *xrand.Rand) int {
	if !k.advEclipse || k.eclipsed[i] == 0 {
		return j
	}
	return int(k.advNodes[rng.Intn(len(k.advNodes))])
}

// mergeFull applies the elementary step to nodes i and j: both adopt
// the field-wise merge.
func (k *Kernel) mergeFull(i, j int) {
	if k.adv != nil || k.robustOn {
		k.mergeFullGuarded(i, j)
		return
	}
	for f, op := range k.ops {
		col := k.cols[f]
		m := op.merge(col[i], col[j])
		col[i] = m
		col[j] = m
	}
}

// mergeFullGuarded is mergeFull with the adversary and robust-merge
// semantics of the live runtimes: i is the initiator, j the responder.
// Adversaries never adopt the merge and report their pinned values; an
// honest responder's trim rejection aborts the whole exchange (the
// engine's nack), an honest initiator's rejection of the reply drops
// only its own half (the responder has already committed, exactly as
// in the live protocol). Safe under the sharded executor: each pair's
// nodes are worker-disjoint within a round, and the rejected counter is
// atomic.
func (k *Kernel) mergeFullGuarded(i, j int) {
	advI := k.adv != nil && k.adv[i] != 0
	advJ := k.adv != nil && k.adv[j] != 0
	if k.advEclipse {
		if advJ && !advI {
			k.eclipsed[i] = 1
		}
		if advI && !advJ {
			k.eclipsed[j] = 1
		}
	}
	if advI && advJ {
		return
	}
	col0 := k.cols[0]
	pre0i, pre0j := col0[i], col0[j]
	repI, repJ := pre0i, pre0j // field-0 values as received (post clamp)
	if k.robustOn {
		repI = k.robust.ClampValue(repI)
		repJ = k.robust.ClampValue(repJ)
		if k.robust.Trim {
			if !advJ && !k.trim[j].Admit(repI-pre0j, k.robust.TrimK) {
				k.rejected.Add(1)
				return // passive-side reject: neither half merges
			}
		}
	}
	mergeI := !advI
	if mergeI && k.robustOn && k.robust.Trim &&
		!k.trim[i].Admit(repJ-pre0i, k.robust.TrimK) {
		k.rejected.Add(1)
		mergeI = false // active-side reject: responder already committed
	}
	for f, op := range k.ops {
		col := k.cols[f]
		if f == 0 {
			if mergeI {
				col[i] = op.merge(pre0i, repJ)
			}
			if !advJ {
				col[j] = op.merge(repI, pre0j)
			}
			continue
		}
		m := op.merge(col[i], col[j])
		if mergeI {
			col[i] = m
		}
		if !advJ {
			col[j] = m
		}
	}
}

// mergeResponder applies the merge at the responder j only — the
// deployed protocol's reply-loss outcome, which violates mass
// conservation (§2).
func (k *Kernel) mergeResponder(i, j int) {
	if k.adv != nil || k.robustOn {
		k.mergeResponderGuarded(i, j)
		return
	}
	for f, op := range k.ops {
		col := k.cols[f]
		col[j] = op.merge(col[i], col[j])
	}
}

// mergeResponderGuarded is mergeResponder under the adversary and
// robust axes: the responder's eclipse capture, adversary no-merge and
// trim gate all apply; the initiator is untouched by construction.
func (k *Kernel) mergeResponderGuarded(i, j int) {
	advI := k.adv != nil && k.adv[i] != 0
	advJ := k.adv != nil && k.adv[j] != 0
	if k.advEclipse && advI && !advJ {
		k.eclipsed[j] = 1
	}
	if advJ {
		return
	}
	col0 := k.cols[0]
	rep := col0[i]
	if k.robustOn {
		rep = k.robust.ClampValue(rep)
		if k.robust.Trim && !k.trim[j].Admit(rep-col0[j], k.robust.TrimK) {
			k.rejected.Add(1)
			return
		}
	}
	for f, op := range k.ops {
		col := k.cols[f]
		in := col[i]
		if f == 0 {
			in = rep
		}
		col[j] = op.merge(in, col[j])
	}
}

// Run performs the given number of cycles, applying the configured
// churn schedule (if any) before each one, and returns field 0's
// empirical variance after every cycle, with index 0 holding the
// initial variance — the raw series behind Figures 3(a) and 3(b).
func (k *Kernel) Run(cycles int) []float64 {
	out, _ := k.RunContext(context.Background(), cycles)
	return out
}

// RunContext is Run with cooperative cancellation: the context is
// checked once per cycle, so even a 10⁶-node run stops within tens of
// milliseconds of a cancel. The variances accumulated so far are
// returned alongside the context's error.
func (k *Kernel) RunContext(ctx context.Context, cycles int) ([]float64, error) {
	out := make([]float64, 0, cycles+1)
	out = append(out, stats.Variance(k.Column(0)))
	for c := 0; c < cycles; c++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if k.churn != nil {
			k.applyChurn()
		}
		k.Cycle()
		out = append(out, stats.Variance(k.Column(0)))
	}
	return out, nil
}

// applyChurn executes one cycle's churn plan: uniform removals (never
// below two live nodes) followed by additions initialized via the
// Join hook.
func (k *Kernel) applyChurn() {
	remove, add := k.churn.Plan(k.cycle, k.n)
	k.RemoveRandom(remove)
	k.Grow(add)
}

// RemoveRandom removes up to m uniformly random live nodes (crash
// model: their state mass disappears), keeping at least two so the
// network stays exchangeable. It returns how many were removed.
func (k *Kernel) RemoveRandom(m int) int {
	removed := 0
	for removed < m && k.n > 2 {
		k.RemoveNode(k.rng.Intn(k.n))
		removed++
	}
	return removed
}

// RemoveNode removes node i by swapping in the last live node across
// every field column. Only dynamic-overlay kernels support removal.
func (k *Kernel) RemoveNode(i int) {
	if !k.dyn {
		panic("sim: RemoveNode needs the dynamic complete overlay (Config.Graph == nil)")
	}
	last := k.n - 1
	for f := range k.cols {
		col := k.cols[f]
		col[i] = col[last]
	}
	if k.adv != nil {
		k.adv[i] = k.adv[last]
		// Swapping can move adversary indices; rebuild the list (churn
		// and adversaries rarely compose — the scenario layer forbids
		// it — so the O(n) scan is off every hot path).
		k.advNodes = k.advNodes[:0]
		for idx := 0; idx < last; idx++ {
			if k.adv[idx] != 0 {
				k.advNodes = append(k.advNodes, int32(idx))
			}
		}
	}
	if k.eclipsed != nil {
		k.eclipsed[i] = k.eclipsed[last]
	}
	if k.trim != nil {
		k.trim[i] = k.trim[last]
	}
	k.n = last
}

// Grow adds m fresh nodes whose field values come from the Join hook
// (zero without one). Only dynamic-overlay kernels support growth.
func (k *Kernel) Grow(m int) {
	if m <= 0 {
		return
	}
	if !k.dyn {
		panic("sim: Grow needs the dynamic complete overlay (Config.Graph == nil)")
	}
	k.Resize(k.n + m)
	if k.join != nil {
		for f := range k.cols {
			v := k.join(f)
			col := k.cols[f]
			for i := k.n - m; i < k.n; i++ {
				col[i] = v
			}
		}
	}
}

// Resize sets the live node count to n, zero-filling any growth and
// reusing column storage. Only dynamic-overlay kernels may resize.
func (k *Kernel) Resize(n int) {
	if !k.dyn {
		panic("sim: Resize needs the dynamic complete overlay (Config.Graph == nil)")
	}
	for f := range k.cols {
		k.cols[f] = resizeZero(k.cols[f], k.n, n)
	}
	if k.adv != nil {
		k.adv = resizeZeroU8(k.adv, k.n, n)
	}
	if k.eclipsed != nil {
		k.eclipsed = resizeZeroU8(k.eclipsed, k.n, n)
	}
	if k.trim != nil && n > len(k.trim) {
		// Joiners inherit a fresh band at the seeded scale of node 0
		// (all bands start identical; accepted traffic specializes them).
		seed := robust.TrimState{Scale: 1e-12}
		if len(k.trim) > 0 {
			seed = robust.TrimState{Center: 0, Scale: k.trim[0].Scale}
		}
		for len(k.trim) < n {
			k.trim = append(k.trim, seed)
		}
	}
	if k.phi != nil && n > len(k.phi) {
		k.phi = append(k.phi, make([]int, n-len(k.phi))...)
	}
	k.n = n
}

// ReshapeAvg reconfigures the kernel to fields average columns over n
// nodes, all zero — the epoch-restart primitive of the §4 size
// estimator (each instance is one indicator column). Storage is
// reused across epochs. Any adversary or robust configuration is
// dropped with the columns it referred to.
func (k *Kernel) ReshapeAvg(fields, n int) {
	if !k.dyn {
		panic("sim: ReshapeAvg needs the dynamic complete overlay (Config.Graph == nil)")
	}
	k.adv = nil
	k.advNodes = k.advNodes[:0]
	k.advEclipse = false
	k.eclipsed = nil
	k.robust = robust.Policy{}
	k.robustOn = false
	k.trim = nil
	if fields < 1 {
		fields = 1
	}
	if len(k.ops) != fields {
		k.ops = make([]Op, fields)
		for len(k.cols) < fields {
			k.cols = append(k.cols, nil)
		}
		k.cols = k.cols[:fields]
	}
	for f := range k.ops {
		k.ops[f] = OpAvg
	}
	for f := range k.cols {
		k.cols[f] = resizeZero(k.cols[f], 0, n)
	}
	if k.phi != nil && n > len(k.phi) {
		k.phi = append(k.phi, make([]int, n-len(k.phi))...)
	}
	k.n = n
}

// resizeZero returns col resized from oldN to n live entries, growing
// the backing array as needed and zeroing any newly exposed tail.
func resizeZero(col []float64, oldN, n int) []float64 {
	if cap(col) < n {
		grown := make([]float64, n)
		copy(grown, col[:oldN])
		return grown
	}
	col = col[:n]
	if n > oldN {
		clear(col[oldN:n])
	}
	return col
}

// resizeZeroU8 is resizeZero for byte flag columns.
func resizeZeroU8(col []uint8, oldN, n int) []uint8 {
	if cap(col) < n {
		grown := make([]uint8, n)
		copy(grown, col[:oldN])
		return grown
	}
	col = col[:n]
	if n > oldN {
		clear(col[oldN:n])
	}
	return col
}
