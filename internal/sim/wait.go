package sim

import (
	"context"
	"fmt"

	"repro/internal/xrand"
)

// WaitPolicy is the GETWAITINGTIME abstraction of Figure 1 (§1.1):
// every node wakes after a waiting time drawn from this distribution,
// measured in units of Δt (the cycle length). Setting Config.Wait
// switches the kernel to event-based execution via RunEvents, where
// nodes are autonomous and no global cycle structure exists.
type WaitPolicy interface {
	// Phase returns a node's initial wake offset, chosen so that the
	// initiation process is stationary from t = 0 (autonomous nodes
	// have no common starting gun).
	Phase(rng *xrand.Rand) float64
	// Wait returns the next waiting time after a wake-up.
	Wait(rng *xrand.Rand) float64
	// Name labels the policy in experiment output.
	Name() string
}

// ConstantWait waits exactly Δt between initiations; the induced pair
// stream is GETPAIR_SEQ-like (rate 1/(2√e) per Δt).
type ConstantWait struct{}

var _ WaitPolicy = ConstantWait{}

// Phase draws a uniform offset in [0, Δt).
func (ConstantWait) Phase(rng *xrand.Rand) float64 { return rng.Float64() }

// Wait returns Δt without consuming randomness.
func (ConstantWait) Wait(*xrand.Rand) float64 { return 1 }

// Name implements WaitPolicy.
func (ConstantWait) Name() string { return "constant" }

// ExponentialWait draws Exp(mean Δt) waits; the induced pair stream is
// GETPAIR_RAND-like (Poisson exchange arrivals, rate 1/e per Δt) —
// §3.3.2: "a given node can approximate this behavior by waiting for a
// time interval randomly drawn from this distribution".
type ExponentialWait struct{}

var _ WaitPolicy = ExponentialWait{}

// Phase draws the memoryless process's stationary residual wait.
func (ExponentialWait) Phase(rng *xrand.Rand) float64 { return rng.ExpFloat64() }

// Wait draws Exp(mean Δt).
func (ExponentialWait) Wait(rng *xrand.Rand) float64 { return rng.ExpFloat64() }

// Name implements WaitPolicy.
func (ExponentialWait) Name() string { return "exponential" }

// RunEvents drives the kernel event by event until the horizon (in
// units of Δt): each node wakes per the configured WaitPolicy, samples
// a random neighbor and performs the elementary exchange as a
// zero-time event on the simulated clock (the paper's §2 communication
// model). sample is invoked at every integer time 1, 2, …, horizon —
// the per-Δt snapshot behind the asynchronous variance trajectories.
// It returns the number of performed exchanges. Cancelling ctx stops
// the run at the next Δt boundary and returns the context's error.
func (k *Kernel) RunEvents(ctx context.Context, horizon int, sample func()) (int, error) {
	if k.wait == nil {
		return 0, fmt.Errorf("sim: RunEvents needs Config.Wait")
	}
	if k.shards > 1 {
		return 0, fmt.Errorf("sim: RunEvents is single-shard only")
	}
	n := k.n
	// Reuse the kernel-owned heap across runs: scenario workers drive
	// many RunEvents calls through one Kernel (Reseed between runs), and
	// rebuilding the heap's storage each time is a per-run allocation of
	// N events for nothing.
	if k.evh == nil {
		k.evh = NewEventHeap(n)
	} else {
		k.evh.Reset()
	}
	h := k.evh
	for i := 0; i < n; i++ {
		h.Push(Event{At: k.wait.Phase(k.rng), Node: int32(i)})
	}
	exchanges := 0
	hz := float64(horizon)
	nextSample := 1.0
	for {
		ev := h.Pop()
		for nextSample <= ev.At && nextSample <= hz {
			if err := ctx.Err(); err != nil {
				return exchanges, err
			}
			sample()
			nextSample++
		}
		if ev.At >= hz {
			break
		}
		i := int(ev.Node)
		if j, ok := k.graph.RandomNeighbor(i, k.rng); ok {
			switch k.loss.Draw(k.rng) {
			case Dropped:
			case ResponderOnly:
				k.mergeResponder(i, j)
				exchanges++
			default:
				k.mergeFull(i, j)
				exchanges++
			}
		}
		h.Push(Event{At: ev.At + k.wait.Wait(k.rng), Node: ev.Node})
	}
	for nextSample <= hz {
		sample()
		nextSample++
	}
	return exchanges, nil
}
