package sim

import (
	"fmt"

	"repro/internal/xrand"
)

// WaitPolicy is the GETWAITINGTIME abstraction of Figure 1 (§1.1):
// every node wakes after a waiting time drawn from this distribution,
// measured in units of Δt (the cycle length). Setting Config.Wait
// switches the kernel to event-based execution via RunEvents, where
// nodes are autonomous and no global cycle structure exists.
type WaitPolicy interface {
	// Phase returns a node's initial wake offset, chosen so that the
	// initiation process is stationary from t = 0 (autonomous nodes
	// have no common starting gun).
	Phase(rng *xrand.Rand) float64
	// Wait returns the next waiting time after a wake-up.
	Wait(rng *xrand.Rand) float64
	// Name labels the policy in experiment output.
	Name() string
}

// ConstantWait waits exactly Δt between initiations; the induced pair
// stream is GETPAIR_SEQ-like (rate 1/(2√e) per Δt).
type ConstantWait struct{}

var _ WaitPolicy = ConstantWait{}

// Phase draws a uniform offset in [0, Δt).
func (ConstantWait) Phase(rng *xrand.Rand) float64 { return rng.Float64() }

// Wait returns Δt without consuming randomness.
func (ConstantWait) Wait(*xrand.Rand) float64 { return 1 }

// Name implements WaitPolicy.
func (ConstantWait) Name() string { return "constant" }

// ExponentialWait draws Exp(mean Δt) waits; the induced pair stream is
// GETPAIR_RAND-like (Poisson exchange arrivals, rate 1/e per Δt) —
// §3.3.2: "a given node can approximate this behavior by waiting for a
// time interval randomly drawn from this distribution".
type ExponentialWait struct{}

var _ WaitPolicy = ExponentialWait{}

// Phase draws the memoryless process's stationary residual wait.
func (ExponentialWait) Phase(rng *xrand.Rand) float64 { return rng.ExpFloat64() }

// Wait draws Exp(mean Δt).
func (ExponentialWait) Wait(rng *xrand.Rand) float64 { return rng.ExpFloat64() }

// Name implements WaitPolicy.
func (ExponentialWait) Name() string { return "exponential" }

// RunEvents drives the kernel event by event until the horizon (in
// units of Δt): each node wakes per the configured WaitPolicy, samples
// a random neighbor and performs the elementary exchange as a
// zero-time event on the simulated clock (the paper's §2 communication
// model). sample is invoked at every integer time 1, 2, …, horizon —
// the per-Δt snapshot behind the asynchronous variance trajectories.
// It returns the number of performed exchanges.
func (k *Kernel) RunEvents(horizon int, sample func()) (int, error) {
	if k.wait == nil {
		return 0, fmt.Errorf("sim: RunEvents needs Config.Wait")
	}
	if k.shards > 1 {
		return 0, fmt.Errorf("sim: RunEvents is single-shard only")
	}
	n := k.n
	h := newEventHeap(n)
	for i := 0; i < n; i++ {
		h.push(event{at: k.wait.Phase(k.rng), node: int32(i)})
	}
	exchanges := 0
	hz := float64(horizon)
	nextSample := 1.0
	for {
		ev := h.pop()
		for nextSample <= ev.at && nextSample <= hz {
			sample()
			nextSample++
		}
		if ev.at >= hz {
			break
		}
		i := int(ev.node)
		if j, ok := k.graph.RandomNeighbor(i, k.rng); ok {
			switch k.loss.Draw(k.rng) {
			case Dropped:
			case ResponderOnly:
				k.mergeResponder(i, j)
				exchanges++
			default:
				k.mergeFull(i, j)
				exchanges++
			}
		}
		h.push(event{at: ev.at + k.wait.Wait(k.rng), node: ev.node})
	}
	for nextSample <= hz {
		sample()
		nextSample++
	}
	return exchanges, nil
}

// event is one scheduled node wake-up.
type event struct {
	at   float64
	node int32
}

// eventHeap is a binary min-heap on event.at. Hand-rolled rather than
// container/heap to keep the hot loop free of interface allocations.
type eventHeap struct {
	items []event
}

func newEventHeap(capacity int) *eventHeap {
	return &eventHeap{items: make([]event, 0, capacity)}
}

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].at <= h.items[i].at {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < last && h.items[left].at < h.items[smallest].at {
			smallest = left
		}
		if right < last && h.items[right].at < h.items[smallest].at {
			smallest = right
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// len reports the heap size (used by tests).
func (h *eventHeap) len() int { return len(h.items) }
