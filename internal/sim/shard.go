package sim

import (
	"sync"

	"repro/internal/xrand"
)

// The sharded executor parallelizes one cycle's N elementary steps
// while staying deterministic for a fixed seed and shard count, and
// race-free without a single atomic or lock on the value columns.
//
// Nodes are partitioned into S contiguous shards. A cycle runs in two
// phases (illustrated for the default seq pairing; pm, rand and pmrand
// vary the generate phase — see pmCycle, randCycle and pmrandCycle):
//
//  1. Generate: worker w walks its own shard's initiators in order
//     (every node initiates once per cycle — the practical protocol's
//     GETPAIR_SEQ stream), draws each partner and loss outcome from
//     its private RNG stream, and buckets the resulting step by the
//     partner's shard. Workers touch disjoint buckets, so this phase
//     is embarrassingly parallel and deterministic.
//
//  2. Execute: steps are applied in rounds of a round-robin
//     tournament on the shards. In each round the active matches
//     pair up disjoint shard sets, and one worker per match applies
//     both directions' buckets sequentially. A step (i, j) only ever
//     touches nodes in the two shards of its match, so no two
//     concurrent workers write the same column entry, and the fixed
//     tournament order makes the whole cycle deterministic.
//
// The reordering of steps relative to a sequential cycle changes the
// exact trajectory (later steps see different intermediate values)
// but not the statistics: every node still initiates once per cycle
// with a uniformly random partner, so the per-cycle variance
// reduction remains the §3.3 seq rate. TestShardedStatisticallyEquivalent
// asserts exactly that.
//
// All buckets are reused across cycles, so steady-state execution
// performs zero per-exchange heap allocations.

// step is one generated elementary exchange: initiator i, partner j,
// and the pre-drawn loss outcome.
type step struct {
	i, j int32
	out  uint8 // Outcome
}

// shardMode selects the sharded pairing generator. Each mirrors one of
// the §3.3 GETPAIR selectors (seq is the Selector-nil default).
type shardMode uint8

const (
	shSeq    shardMode = iota // per-shard seq streams, one initiation per node
	shPM                      // matchings on the master stream, bit-identical to PM
	shRand                    // N random edges, drawn in parallel on shard streams
	shPMRand                  // one matching (master) + N/2 random edges (streams)
)

// sharder holds the sharded executor's reusable state.
type sharder struct {
	k        *Kernel
	s        int // shard count
	mode     shardMode
	rngs     []*xrand.Rand // per-shard RNG streams, split once from the master (nil in pm mode)
	bounds   []int32       // shard s owns nodes [bounds[s], bounds[s+1])
	buckets  [][][]step    // [initiatorShard][partnerShard]: steps whose initiator the generator owns
	rbuckets [][][][]step  // [generator][initiatorShard][partnerShard]: steps with random initiators
	rounds   [][][2]int
	sizedFor int     // node count the bounds were computed for
	both     []int32 // pm/pmrand: matching scratch, reused across cycles
}

// newSharder builds the executor for k.shards shards. Modes that draw
// steps in parallel (seq, rand, and pmrand's random half) derive one
// deterministic RNG stream per shard from the kernel's master RNG; in
// pm mode all draws stay on the master stream (so the sharded
// trajectory is bit-identical to single-shard PM) and nothing is
// split.
func newSharder(k *Kernel, mode shardMode) *sharder {
	s := k.shards
	sh := &sharder{
		k:       k,
		s:       s,
		mode:    mode,
		bounds:  make([]int32, s+1),
		buckets: make([][][]step, s),
		rounds:  buildRounds(s),
	}
	if mode != shPM {
		sh.rngs = make([]*xrand.Rand, s)
		for w := 0; w < s; w++ {
			sh.rngs[w] = k.rng.Split()
		}
	}
	for w := 0; w < s; w++ {
		sh.buckets[w] = make([][]step, s)
	}
	if mode == shRand || mode == shPMRand {
		// Random-edge steps have a random initiator, so a generating
		// worker can produce steps for any (initiator, partner) shard
		// pair; each worker buckets into its own S×S grid and the
		// tournament drains all workers' grids in a fixed order.
		sh.rbuckets = make([][][][]step, s)
		for w := 0; w < s; w++ {
			sh.rbuckets[w] = make([][][]step, s)
			for a := 0; a < s; a++ {
				sh.rbuckets[w][a] = make([][]step, s)
			}
		}
	}
	return sh
}

// reseed re-derives the per-shard RNG streams from a fresh master in
// the exact order newSharder would, supporting Kernel.Reseed. In pm
// mode there are no per-shard streams and this is a no-op.
func (sh *sharder) reseed(rng *xrand.Rand) {
	for w := range sh.rngs {
		sh.rngs[w] = rng.Split()
	}
}

// reset recomputes the shard bounds for the current node count and
// empties every bucket, keeping their capacity.
func (sh *sharder) reset() {
	s := sh.s
	n := sh.k.n
	if sh.sizedFor != n {
		base, rem := n/s, n%s
		off := int32(0)
		for w := 0; w < s; w++ {
			sh.bounds[w] = off
			off += int32(base)
			if w < rem {
				off++
			}
		}
		sh.bounds[s] = off
		sh.sizedFor = n
	}
	for w := range sh.buckets {
		for t := range sh.buckets[w] {
			sh.buckets[w][t] = sh.buckets[w][t][:0]
		}
	}
	for w := range sh.rbuckets {
		for a := range sh.rbuckets[w] {
			for b := range sh.rbuckets[w][a] {
				sh.rbuckets[w][a][b] = sh.rbuckets[w][a][b][:0]
			}
		}
	}
}

// shardOf returns the shard owning node j under the current bounds.
func (sh *sharder) shardOf(j int32) int {
	s := sh.s
	n := sh.sizedFor
	base, rem := n/s, n%s
	wide := int32(rem) * int32(base+1)
	if j < wide {
		return int(j) / (base + 1)
	}
	if base == 0 {
		return s - 1
	}
	return rem + int(j-wide)/base
}

// generate draws shard w's steps: one initiation per owned node, each
// bucketed by the partner's shard.
func (sh *sharder) generate(w int) {
	k := sh.k
	rng := sh.rngs[w]
	lo, hi := sh.bounds[w], sh.bounds[w+1]
	for i := lo; i < hi; i++ {
		j, ok := k.graph.RandomNeighbor(int(i), rng)
		if !ok {
			continue // isolated node: no partner this cycle
		}
		j = k.redirectEclipsed(int(i), j, rng)
		out := uint8(k.loss.Draw(rng))
		t := sh.shardOf(int32(j))
		sh.buckets[w][t] = append(sh.buckets[w][t], step{i: i, j: int32(j), out: out})
	}
}

// generateRand draws `count` uniformly random edges on worker w's
// private stream (GETPAIR_RAND: random node, then random neighbor —
// uniform over directed edges), bucketing each by both endpoints'
// shards, since a random initiator lands in any shard.
func (sh *sharder) generateRand(w, count int) {
	k := sh.k
	rng := sh.rngs[w]
	for t := 0; t < count; t++ {
		var i, j int
		for {
			i = rng.Intn(k.n)
			if nb, ok := k.graph.RandomNeighbor(i, rng); ok {
				j = nb
				break
			}
		}
		j = k.redirectEclipsed(i, j, rng)
		out := uint8(k.loss.Draw(rng))
		a, b := sh.shardOf(int32(i)), sh.shardOf(int32(j))
		sh.rbuckets[w][a][b] = append(sh.rbuckets[w][a][b], step{i: int32(i), j: int32(j), out: out})
	}
}

// execute applies both directions of one tournament match: first the
// steps initiated in shard a toward shard b, then the reverse. The
// caller guarantees exclusive ownership of both shards' columns for
// the duration of the call.
func (sh *sharder) execute(a, b int) {
	sh.applyBucket(sh.buckets[a][b])
	if a != b {
		sh.applyBucket(sh.buckets[b][a])
	}
}

// executeR is execute for the random-initiator grids: one tournament
// match drains every generating worker's (a,b) and (b,a) buckets in
// fixed worker order, which keeps the trajectory deterministic for a
// given (seed, shard count).
func (sh *sharder) executeR(a, b int) {
	for w := 0; w < sh.s; w++ {
		sh.applyBucket(sh.rbuckets[w][a][b])
		if a != b {
			sh.applyBucket(sh.rbuckets[w][b][a])
		}
	}
}

// applyBucket applies one bucket's steps in generation order.
func (sh *sharder) applyBucket(steps []step) {
	k := sh.k
	phi := k.phi
	for _, st := range steps {
		i, j := int(st.i), int(st.j)
		if phi != nil {
			phi[i]++
			phi[j]++
		}
		switch Outcome(st.out) {
		case Dropped:
		case ResponderOnly:
			k.mergeResponder(i, j)
		default:
			k.mergeFull(i, j)
		}
	}
}

// shardCycle runs one full cycle on the sharded executor.
func (k *Kernel) shardCycle() {
	sh := k.sh
	if k.phi != nil {
		clear(k.phi[:k.n])
	}
	switch sh.mode {
	case shPM:
		sh.pmCycle()
		return
	case shRand:
		sh.randCycle()
		return
	case shPMRand:
		sh.pmrandCycle()
		return
	}
	sh.reset()
	var wg sync.WaitGroup
	for w := range sh.rngs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh.generate(w)
		}(w)
	}
	wg.Wait()
	sh.runTournament(sh.execute)
}

// runTournament applies every generated bucket through the fixed
// round-robin schedule: one worker per match, all matches of a round
// concurrent, a barrier between rounds. exec is the per-match drain —
// execute for initiator-owned buckets, executeR for the
// random-initiator grids.
func (sh *sharder) runTournament(exec func(a, b int)) {
	var wg sync.WaitGroup
	for _, round := range sh.rounds {
		for _, m := range round {
			wg.Add(1)
			go func(a, b int) {
				defer wg.Done()
				exec(a, b)
			}(m[0], m[1])
		}
		wg.Wait()
	}
}

// randCycle is the parallel random-edge pairing (GETPAIR_RAND): the
// cycle's N independent edge draws are split contiguously across the
// shard streams, generated concurrently, and executed through the
// tournament on the random-initiator grids. Reordering independent
// uniform draws changes nothing statistically, so the 1/e rate of
// §3.3.2 is preserved (TestShardedRates).
func (sh *sharder) randCycle() {
	sh.reset()
	sh.randPhase(sh.k.n)
}

// randPhase generates `total` random-edge steps split contiguously
// across the shard streams and executes them through the tournament.
// The caller has reset the buckets.
func (sh *sharder) randPhase(total int) {
	base, rem := total/sh.s, total%sh.s
	var wg sync.WaitGroup
	for w := 0; w < sh.s; w++ {
		count := base
		if w < rem {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			sh.generateRand(w, count)
		}(w, count)
	}
	wg.Wait()
	sh.runTournament(sh.executeR)
}

// pmrandCycle is the parallel PM-then-random pairing (GETPAIR_PMRAND):
// one perfect matching drawn on the master stream and executed as a
// bucketed tournament phase (pairs are disjoint, so the phase is
// order-free), then N/2 random edges generated in parallel on the
// shard streams exactly like randCycle. The per-cycle selection count
// stays φ = 1 + Poisson(1), the distribution behind the paper's
// 1/(2√e) rate.
func (sh *sharder) pmrandCycle() {
	k := sh.k
	n := k.n
	if n%2 != 0 {
		panic("sim: sharded pmrand pairing needs an even node count")
	}
	if cap(sh.both) < n {
		sh.both = make([]int32, n)
	}
	matching := sh.both[:n]
	randomMatching(matching, k.rng)
	sh.reset()
	for p := 0; p < n; p += 2 {
		u, v := matching[p], matching[p+1]
		out := uint8(k.loss.Draw(k.rng))
		sh.buckets[sh.shardOf(u)][sh.shardOf(v)] = append(sh.buckets[sh.shardOf(u)][sh.shardOf(v)], step{i: u, j: v, out: out})
	}
	sh.runTournament(sh.execute)

	sh.reset()
	sh.randPhase(n / 2)
}

// pmCycle is the matching-based parallel pairing (GETPAIR_PM): draw two
// disjoint perfect matchings and the per-step loss outcomes on the
// master stream — the exact draw order of the single-shard PM selector —
// then execute each matching as its own bucketed tournament phase.
// Pairs within one matching are disjoint, so the merges of a phase
// commute and the resulting columns are bit-identical to single-shard
// PM for the same seed; only the wall-clock parallelism differs.
func (sh *sharder) pmCycle() {
	k := sh.k
	n := k.n
	if n%2 != 0 {
		panic("sim: sharded pm pairing needs an even node count")
	}
	if cap(sh.both) < 2*n {
		sh.both = make([]int32, 2*n)
	}
	sh.both = sh.both[:2*n]
	first, second := sh.both[:n], sh.both[n:]
	randomMatching(first, k.rng)
	drawDisjointMatching(second, first, k.rng)
	for _, m := range [2][]int32{first, second} {
		sh.reset()
		for p := 0; p < n; p += 2 {
			u, v := m[p], m[p+1]
			out := uint8(k.loss.Draw(k.rng))
			t := sh.shardOf(v)
			w := sh.shardOf(u)
			sh.buckets[w][t] = append(sh.buckets[w][t], step{i: u, j: v, out: out})
		}
		sh.runTournament(sh.execute)
	}
}

// buildRounds returns a tournament schedule for s shards: a list of
// rounds, each holding matches over pairwise-disjoint shard sets, such
// that every unordered shard pair (a, b), a ≠ b, appears exactly once
// and every shard gets exactly one self-match (a, a) for its
// intra-shard steps. Disjointness within a round is what lets all of a
// round's matches execute concurrently without locks.
func buildRounds(s int) [][][2]int {
	if s == 1 {
		return [][][2]int{{{0, 0}}}
	}
	m := s
	dummy := -1
	if m%2 == 1 {
		dummy = m // odd: add a phantom shard; its opponent gets a bye
		m++
	}
	var rounds [][][2]int
	for r := 0; r < m-1; r++ {
		var round [][2]int
		// Circle method: fix team m-1, rotate the rest.
		pair := func(a, b int) {
			if a == dummy {
				round = append(round, [2]int{b, b}) // bye → intra-shard match
				return
			}
			if b == dummy {
				round = append(round, [2]int{a, a})
				return
			}
			round = append(round, [2]int{a, b})
		}
		pair(m-1, r)
		for t := 1; t < m/2; t++ {
			pair((r+t)%(m-1), (r-t+m-1)%(m-1))
		}
		rounds = append(rounds, round)
	}
	if dummy < 0 {
		// Even shard count: no byes occurred, so the intra-shard
		// matches get their own fully parallel round.
		intra := make([][2]int, s)
		for w := 0; w < s; w++ {
			intra[w] = [2]int{w, w}
		}
		rounds = append(rounds, intra)
	}
	return rounds
}
