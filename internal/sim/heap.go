package sim

// Event is one scheduled wake-up in an event-driven execution: a node
// and the time it fires, in whatever unit the owner uses (the kernel's
// RunEvents counts in Δt units, the live heap runtime in seconds).
// Kind and Seq are opaque to the heap; the live runtime uses them to
// distinguish exchange wake-ups from reply timeouts and to match a
// timeout to the exchange that armed it.
type Event struct {
	At   float64
	Node int32
	Kind uint8
	Seq  uint64
}

// EventHeap is a binary min-heap on Event.At — the scheduling core
// shared by the kernel's event-based executor (RunEvents) and the live
// heap runtime in internal/engine. Hand-rolled rather than
// container/heap to keep hot loops free of interface allocations. Not
// safe for concurrent use; each shard owns its own heap.
type EventHeap struct {
	items []Event
}

// NewEventHeap returns an empty heap with room for capacity events.
func NewEventHeap(capacity int) *EventHeap {
	return &EventHeap{items: make([]Event, 0, capacity)}
}

// Push inserts an event.
func (h *EventHeap) Push(e Event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].At <= h.items[i].At {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

// Pop removes and returns the earliest event. It panics on an empty
// heap; callers gate on Len or Peek.
func (h *EventHeap) Pop() Event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < last && h.items[left].At < h.items[smallest].At {
			smallest = left
		}
		if right < last && h.items[right].At < h.items[smallest].At {
			smallest = right
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// Peek returns the earliest event without removing it; ok is false on
// an empty heap.
func (h *EventHeap) Peek() (Event, bool) {
	if len(h.items) == 0 {
		return Event{}, false
	}
	return h.items[0], true
}

// Len reports the number of scheduled events.
func (h *EventHeap) Len() int { return len(h.items) }

// Reset empties the heap while keeping its backing storage, so a
// long-lived owner (the kernel's event executor, a scenario worker
// reusing one Kernel per run) schedules the next run without
// reallocating.
func (h *EventHeap) Reset() { h.items = h.items[:0] }
