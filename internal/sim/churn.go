package sim

import "repro/internal/churn"

// ChurnSchedule prescribes per-cycle membership churn for Run: how
// many uniformly random nodes to remove and how many fresh nodes to
// add before the given cycle. Churn requires the dynamic complete
// overlay (Config.Graph == nil) — the paper's §4 scenarios all assume
// ideal peer sampling while the membership changes underneath.
type ChurnSchedule interface {
	Plan(cycle, currentSize int) (remove, add int)
	// Name labels the schedule in experiment output.
	Name() string
}

// scheduleAdapter bridges internal/churn's size-model schedules onto
// the kernel's ChurnSchedule axis.
type scheduleAdapter struct {
	s churn.Schedule
}

var _ ChurnSchedule = scheduleAdapter{}

// Churn adapts a churn.Schedule (size model + constant fluctuation)
// to the kernel's ChurnSchedule interface.
func Churn(s churn.Schedule) ChurnSchedule { return scheduleAdapter{s} }

// Plan implements ChurnSchedule.
func (a scheduleAdapter) Plan(cycle, currentSize int) (remove, add int) {
	p := a.s.At(cycle, currentSize)
	return p.Remove, p.Add
}

// Name implements ChurnSchedule.
func (a scheduleAdapter) Name() string {
	if a.s.Model == nil {
		return "none"
	}
	return a.s.Model.Name()
}
