package sim_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/avg"
	"repro/internal/churn"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

func gaussian(n int, rng *xrand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func mustComplete(t testing.TB, n int) topology.Graph {
	t.Helper()
	g, err := topology.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newKernel builds a single-average-field kernel over the complete
// graph with the given selector and loads a fresh gaussian vector.
func newKernel(t testing.TB, n int, sel sim.Selector, shards int, seed uint64) *sim.Kernel {
	t.Helper()
	rng := xrand.New(seed)
	cfg := sim.Config{Selector: sel, Shards: shards, RNG: rng}
	if shards > 1 {
		cfg.Size = n // sharded mode: dynamic complete overlay, built-in seq pairing
	} else {
		cfg.Graph = mustComplete(t, n)
	}
	k, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetValues(0, gaussian(n, rng)); err != nil {
		t.Fatal(err)
	}
	return k
}

// TestKernelReproducesTheoreticalRates is the cross-backend anchor: the
// unified kernel must show the paper's closed-form one-cycle variance
// reduction E(2^{-φ}) for every §3.3 selector — ≈1/4 for pm, ≈1/e for
// rand, ≈1/(2√e) for seq and pmrand (avg.TheoreticalRate) — exactly as
// the historical avg.Runner did.
func TestKernelReproducesTheoreticalRates(t *testing.T) {
	for _, name := range []string{"pm", "rand", "seq", "pmrand"} {
		t.Run(name, func(t *testing.T) {
			want, ok := avg.TheoreticalRate(name)
			if !ok {
				t.Fatalf("no theoretical rate for %q", name)
			}
			var acc stats.Running
			for run := 0; run < 10; run++ {
				sel, err := sim.NewSelector(name)
				if err != nil {
					t.Fatal(err)
				}
				k := newKernel(t, 10000, sel, 1, 300+uint64(run)*7919)
				before := stats.Variance(k.Column(0))
				k.Cycle()
				acc.Add(stats.Variance(k.Column(0)) / before)
			}
			tol := 0.015
			if name == "seq" {
				// The paper observes seq slightly better than its pmrand
				// proxy predicts; match avg_test's wider band.
				tol = 0.035
			}
			if got := acc.Mean(); math.Abs(got-want) > tol {
				t.Fatalf("%s one-cycle reduction = %.4f, want %.4f ± %.3f", name, got, want, tol)
			}
		})
	}
}

// TestKernelMatchesRunnerBitForBit pins the adapter seam: avg.Runner is
// a veneer over the kernel, so driving the kernel directly with the
// same seed must give the identical trajectory.
func TestKernelMatchesRunnerBitForBit(t *testing.T) {
	const n, cycles, seed = 300, 8, 777

	rng := xrand.New(seed)
	runner, err := avg.NewRunner(mustComplete(t, n), avg.NewSeq(), gaussian(n, rng), rng)
	if err != nil {
		t.Fatal(err)
	}
	fromRunner := runner.Run(cycles)

	k := newKernel(t, n, sim.NewSeq(), 1, seed)
	fromKernel := k.Run(cycles)

	for i := range fromRunner {
		if fromRunner[i] != fromKernel[i] {
			t.Fatalf("trajectories diverge at cycle %d: runner %g vs kernel %g", i, fromRunner[i], fromKernel[i])
		}
	}
}

// TestShardedDeterministicForSeedAndShards: the sharded executor must
// be bit-reproducible for a fixed (seed, shard count) pair despite its
// worker parallelism.
func TestShardedDeterministicForSeedAndShards(t *testing.T) {
	run := func() []float64 {
		k := newKernel(t, 4000, nil, 4, 901)
		return k.Run(10)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sharded trajectories diverge at cycle %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestShardedMassConservation: reordering steps across shards must not
// break the §3.2 invariant — lossless exchanges never change the sum.
func TestShardedMassConservation(t *testing.T) {
	for _, shards := range []int{2, 3, 5, 8} {
		k := newKernel(t, 3001, nil, shards, 902+uint64(shards))
		before := stats.Sum(k.Column(0))
		k.Run(10)
		if after := stats.Sum(k.Column(0)); math.Abs(after-before) > 1e-8 {
			t.Fatalf("shards=%d: sum drifted %.15g → %.15g", shards, before, after)
		}
	}
}

// TestShardedStatisticallyEquivalent is the acceptance gate of the
// sharded executor: its variance-decay series must be statistically
// indistinguishable from single-shard execution — same per-cycle
// reduction rate (the seq rate 1/(2√e)), within the run-to-run noise
// band — even though the step interleaving differs.
func TestShardedStatisticallyEquivalent(t *testing.T) {
	const n, cycles, runs = 10000, 10, 6
	rate := func(shards int, seed uint64) float64 {
		k := newKernel(t, n, nil, shards, seed)
		v := k.Run(cycles)
		return math.Pow(v[len(v)-1]/v[0], 1/float64(cycles))
	}
	var seqAcc, shardAcc stats.Running
	for r := 0; r < runs; r++ {
		seqAcc.Add(rate(1, 1000+uint64(r)*104729))
		shardAcc.Add(rate(4, 2000+uint64(r)*104729))
	}
	want, _ := avg.TheoreticalRate("seq")
	if got := seqAcc.Mean(); math.Abs(got-want) > 0.02 {
		t.Fatalf("single-shard rate %.4f strayed from theory %.4f", got, want)
	}
	if got := shardAcc.Mean(); math.Abs(got-want) > 0.02 {
		t.Fatalf("sharded rate %.4f strayed from theory %.4f", got, want)
	}
	if diff := math.Abs(seqAcc.Mean() - shardAcc.Mean()); diff > 0.02 {
		t.Fatalf("sharded vs single-shard rates differ by %.4f: %.4f vs %.4f",
			diff, shardAcc.Mean(), seqAcc.Mean())
	}
}

// TestShardedRates extends the statistical acceptance gate to the
// random-initiator generators: sharded rand and pmrand must reproduce
// their §3.3 closed-form one-cycle reduction rates (1/e and 1/(2√e))
// within the same noise band as the sequential selectors, even though
// the steps are drawn on parallel shard streams and executed in
// tournament order.
func TestShardedRates(t *testing.T) {
	const n, cycles, runs = 10000, 10, 6
	for _, tc := range []struct {
		name string
		sel  func() sim.Selector
	}{
		{"rand", func() sim.Selector { return sim.NewRand() }},
		{"pmrand", func() sim.Selector { return sim.NewPMRand() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var acc stats.Running
			for r := 0; r < runs; r++ {
				k := newKernel(t, n, tc.sel(), 4, 3000+uint64(r)*104729)
				v := k.Run(cycles)
				acc.Add(math.Pow(v[len(v)-1]/v[0], 1/float64(cycles)))
			}
			want, _ := avg.TheoreticalRate(tc.name)
			if got := acc.Mean(); math.Abs(got-want) > 0.02 {
				t.Fatalf("sharded %s rate %.4f strayed from theory %.4f", tc.name, got, want)
			}
		})
	}
}

// TestShardedRandDeterministicForSeedAndShards: the random-initiator
// generators bucket into per-worker grids drained in fixed order, so
// they too must be bit-reproducible for a fixed (seed, shard count).
func TestShardedRandDeterministicForSeedAndShards(t *testing.T) {
	for _, name := range []string{"rand", "pmrand"} {
		t.Run(name, func(t *testing.T) {
			run := func() []float64 {
				sel, err := sim.NewSelector(name)
				if err != nil {
					t.Fatal(err)
				}
				k := newKernel(t, 4000, sel, 4, 903)
				return k.Run(10)
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("sharded %s trajectories diverge at cycle %d: %g vs %g", name, i, a[i], b[i])
				}
			}
		})
	}
}

// TestShardedPMBitIdenticalToSequential: the matching-based parallel
// pm generator draws its matchings and loss outcomes on the master
// stream, and pairs within one matching are disjoint (their merges
// commute), so sharded pm must reproduce single-shard pm bit for bit —
// a stronger guarantee than the seq stream's statistical equivalence.
func TestShardedPMBitIdenticalToSequential(t *testing.T) {
	const n, cycles, seed = 2048, 12, 911
	for _, loss := range []sim.LossModel{nil, sim.ReplyLoss{P: 0.3}} {
		run := func(shards int) []float64 {
			rng := xrand.New(seed)
			cfg := sim.Config{Selector: sim.NewPM(), Loss: loss, Shards: shards, RNG: rng}
			if shards > 1 {
				cfg.Size = n
			} else {
				cfg.Graph = mustComplete(t, n)
			}
			k, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := k.SetValues(0, gaussian(n, rng)); err != nil {
				t.Fatal(err)
			}
			k.Run(cycles)
			return append([]float64(nil), k.Column(0)...)
		}
		want := run(1)
		for _, shards := range []int{2, 4, 7} {
			got := run(shards)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("loss=%v shards=%d: node %d diverged: %g vs %g", loss, shards, i, got[i], want[i])
				}
			}
		}
	}
}

// TestKernelReseedReusesAsFresh: Resize + Reseed + SetValues must make
// a reused kernel reproduce a freshly built one bit for bit, for both
// executors — the contract the scenario runner's kernel pool relies on.
func TestKernelReseedReusesAsFresh(t *testing.T) {
	for _, shards := range []int{1, 4} {
		fresh := func(n int, seed uint64) []float64 {
			rng := xrand.New(seed)
			k, err := sim.New(sim.Config{Size: n, Shards: shards, RNG: rng})
			if err != nil {
				t.Fatal(err)
			}
			if err := k.SetValues(0, gaussian(n, rng)); err != nil {
				t.Fatal(err)
			}
			return k.Run(6)
		}
		warm := xrand.New(1)
		k, err := sim.New(sim.Config{Size: 500, Shards: shards, RNG: warm})
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetValues(0, gaussian(500, warm)); err != nil {
			t.Fatal(err)
		}
		k.Run(3) // dirty the kernel state before reuse
		for _, tc := range []struct {
			n    int
			seed uint64
		}{{300, 7}, {800, 8}, {500, 9}} {
			rng := xrand.New(tc.seed)
			k.Resize(tc.n)
			if err := k.Reseed(rng); err != nil {
				t.Fatal(err)
			}
			if err := k.SetValues(0, gaussian(tc.n, rng)); err != nil {
				t.Fatal(err)
			}
			got := k.Run(6)
			want := fresh(tc.n, tc.seed)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d n=%d: reused kernel diverged at cycle %d: %g vs %g", shards, tc.n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardedPhiCountsSeqInvariant: sharded execution keeps the seq
// pair-stream structure — every node initiates exactly once per cycle,
// so φ ≥ 1 everywhere and Σφ = 2N.
func TestShardedPhiCountsSeqInvariant(t *testing.T) {
	const n = 2000
	rng := xrand.New(903)
	k, err := sim.New(sim.Config{Size: n, Shards: 4, CountPhi: true, RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetValues(0, gaussian(n, rng)); err != nil {
		t.Fatal(err)
	}
	k.Cycle()
	total := 0
	for i, phi := range k.PhiCounts() {
		if phi < 1 {
			t.Fatalf("φ(%d) = %d, want ≥ 1", i, phi)
		}
		total += phi
	}
	if total != 2*n {
		t.Fatalf("Σφ = %d, want %d", total, 2*n)
	}
}

// TestKernelFullSchema: every execution mode now has the full schema —
// here avg, min and max columns gossip in one kernel: the average
// column conserves the mean while the extremum columns flood to the
// true extrema epidemically.
func TestKernelFullSchema(t *testing.T) {
	const n = 1024
	for _, shards := range []int{1, 4} {
		rng := xrand.New(904)
		k, err := sim.New(sim.Config{
			Size:   n,
			Ops:    []sim.Op{sim.OpAvg, sim.OpMin, sim.OpMax},
			Shards: shards,
			RNG:    rng,
		})
		if err != nil {
			t.Fatal(err)
		}
		values := gaussian(n, rng)
		for f := 0; f < 3; f++ {
			if err := k.SetValues(f, values); err != nil {
				t.Fatal(err)
			}
		}
		wantMean := stats.Mean(values)
		wantMin, wantMax := values[0], values[0]
		for _, v := range values {
			wantMin = math.Min(wantMin, v)
			wantMax = math.Max(wantMax, v)
		}
		k.Run(15)
		if got := stats.Mean(k.Column(0)); math.Abs(got-wantMean) > 1e-9 {
			t.Fatalf("shards=%d: mean drifted %.12g → %.12g", shards, wantMean, got)
		}
		for i := 0; i < n; i++ {
			if k.Column(1)[i] != wantMin {
				t.Fatalf("shards=%d: node %d min = %g, want %g", shards, i, k.Column(1)[i], wantMin)
			}
			if k.Column(2)[i] != wantMax {
				t.Fatalf("shards=%d: node %d max = %g, want %g", shards, i, k.Column(2)[i], wantMax)
			}
		}
	}
}

// TestKernelChurnSchedule: the kernel's churn axis adapts
// internal/churn and keeps the live population on the model's target.
func TestKernelChurnSchedule(t *testing.T) {
	rng := xrand.New(905)
	k, err := sim.New(sim.Config{
		Size: 500,
		Churn: sim.Churn(churn.Schedule{
			Model:       churn.Oscillating{Min: 400, Max: 600, Period: 40},
			Fluctuation: 5,
		}),
		RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetValues(0, gaussian(500, rng)); err != nil {
		t.Fatal(err)
	}
	k.Run(40)
	model := churn.Oscillating{Min: 400, Max: 600, Period: 40}
	want := model.TargetSize(39)
	if got := k.Size(); got != want {
		t.Fatalf("size after churned run = %d, want %d", got, want)
	}
}

// TestKernelWaitPoliciesMatchSelectorRegimes: the event-driven mode
// reproduces §3.3.2's correspondence — constant waits behave like seq
// (rate 1/(2√e) per Δt), exponential waits like rand (rate 1/e).
func TestKernelWaitPoliciesMatchSelectorRegimes(t *testing.T) {
	rate := func(wait sim.WaitPolicy, seed uint64) float64 {
		const n, cycles = 5000, 8
		rng := xrand.New(seed)
		k, err := sim.New(sim.Config{Graph: mustComplete(t, n), Wait: wait, RNG: rng})
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetValues(0, gaussian(n, rng)); err != nil {
			t.Fatal(err)
		}
		first := stats.Variance(k.Column(0))
		if _, err := k.RunEvents(context.Background(), cycles, func() {}); err != nil {
			t.Fatal(err)
		}
		last := stats.Variance(k.Column(0))
		return math.Pow(last/first, 1/float64(cycles))
	}
	var constAcc, expAcc stats.Running
	for r := 0; r < 5; r++ {
		constAcc.Add(rate(sim.ConstantWait{}, 30+uint64(r)*7919))
		expAcc.Add(rate(sim.ExponentialWait{}, 60+uint64(r)*7919))
	}
	seqRate, _ := avg.TheoreticalRate("seq")
	randRate, _ := avg.TheoreticalRate("rand")
	if got := constAcc.Mean(); math.Abs(got-seqRate) > 0.03 {
		t.Fatalf("constant-wait rate %.4f, want ≈ %.4f", got, seqRate)
	}
	if got := expAcc.Mean(); math.Abs(got-randRate) > 0.03 {
		t.Fatalf("exponential-wait rate %.4f, want ≈ %.4f", got, randRate)
	}
}

// TestKernelLossModels: the two loss models keep their defining
// invariants inside the kernel — symmetric loss conserves mass while
// slowing convergence, reply loss breaks mass conservation.
func TestKernelLossModels(t *testing.T) {
	const n, cycles = 2000, 8
	run := func(loss sim.LossModel, shards int) (rate, drift float64) {
		rng := xrand.New(906)
		cfg := sim.Config{Size: n, Loss: loss, Shards: shards, RNG: rng}
		k, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		values := gaussian(n, rng)
		if err := k.SetValues(0, values); err != nil {
			t.Fatal(err)
		}
		before := stats.Sum(values)
		v := k.Run(cycles)
		drift = math.Abs(stats.Sum(k.Column(0)) - before)
		return math.Pow(v[len(v)-1]/v[0], 1/float64(cycles)), drift
	}
	for _, shards := range []int{1, 4} {
		lossless, losslessDrift := run(nil, shards)
		symRate, symDrift := run(sim.SymmetricLoss{P: 0.4}, shards)
		_, replyDrift := run(sim.ReplyLoss{P: 0.5}, shards)
		if losslessDrift > 1e-8 || symDrift > 1e-8 {
			t.Fatalf("shards=%d: mass not conserved: lossless %g, symmetric %g", shards, losslessDrift, symDrift)
		}
		if symRate <= lossless {
			t.Fatalf("shards=%d: symmetric loss did not slow convergence: %.4f vs %.4f", shards, symRate, lossless)
		}
		if replyDrift < 1e-9 {
			t.Fatalf("shards=%d: reply loss conserved mass; loss model not applied", shards)
		}
	}
}
