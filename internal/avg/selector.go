// Package avg implements the paper's theoretical model of anti-entropy
// averaging (Figure 2): algorithm AVG runs N elementary variance-reduction
// steps per cycle on a vector of values, where each step replaces both
// elements of a selected pair with their average. The choice of GETPAIR
// fully determines the dynamics; the four selectors analyzed in Section
// 3.3 are provided:
//
//   - PM      — two disjoint perfect matchings per cycle (optimal, rate 1/4)
//   - Rand    — uniformly random edge per step (rate 1/e)
//   - Seq     — fixed node order, random neighbor each (rate ≈ 1/(2√e))
//   - PMRand  — one perfect matching then N/2 random edges (the analytical
//     proxy the paper substitutes for Seq, exact rate 1/(2√e))
//
// plus the Runner that iterates cycles, records the empirical statistics
// of paper equations (2)–(3), counts per-node selections φ for validating
// Theorem 1, and optionally injects message loss.
//
// Since the unification of the exchange loops, this package is a thin
// veneer over internal/sim: the selector implementations live in the
// kernel (shared with every other execution mode) and the Runner drives
// a single-field average kernel in its exact sequential mode, which
// reproduces the historical trajectories bit for bit for a fixed seed.
package avg

import "repro/internal/sim"

// PairSelector is the GETPAIR abstraction of Figure 2, now defined by
// the simulation kernel (sim.Selector). A cycle consists of exactly
// g.Size() calls to NextPair, preceded by one BeginCycle call.
type PairSelector = sim.Selector

// The four §3.3 selectors, canonically implemented in internal/sim.
type (
	// PM returns pairs from two disjoint perfect matchings per cycle
	// (GETPAIR_PM, §3.3.1).
	PM = sim.PM
	// Rand selects a uniformly random overlay edge each step
	// (GETPAIR_RAND, §3.3.2).
	Rand = sim.Rand
	// Seq pairs each node, in fixed order, with a random neighbor
	// (GETPAIR_SEQ, §3.3.3).
	Seq = sim.Seq
	// PMRand runs one perfect matching then N/2 random edges
	// (GETPAIR_PMRAND, §3.3.3).
	PMRand = sim.PMRand
)

// ErrNeedsCompleteGraph is returned by Bind when a selector requiring
// global knowledge (PM, PMRand) is bound to a non-complete topology.
var ErrNeedsCompleteGraph = sim.ErrNeedsCompleteGraph

// ErrOddSize is returned when a perfect-matching selector is bound to a
// graph with an odd number of nodes.
var ErrOddSize = sim.ErrOddSize

// NewPM returns an unbound perfect-matching selector.
func NewPM() *PM { return sim.NewPM() }

// NewRand returns an unbound random-edge selector.
func NewRand() *Rand { return sim.NewRand() }

// NewSeq returns an unbound sequential selector.
func NewSeq() *Seq { return sim.NewSeq() }

// NewPMRand returns an unbound PM-then-random selector.
func NewPMRand() *PMRand { return sim.NewPMRand() }
