package avg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// mustComplete returns the complete graph on n nodes.
func mustComplete(t *testing.T, n int) topology.Graph {
	t.Helper()
	g, err := topology.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mustKRegular returns a k-regular random graph.
func mustKRegular(t *testing.T, n, k int, rng *xrand.Rand) topology.Graph {
	t.Helper()
	g, err := topology.NewKRegular(n, k, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// gaussian returns n iid standard normal values.
func gaussian(n int, rng *xrand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func allSelectors() []PairSelector {
	return []PairSelector{NewPM(), NewRand(), NewSeq(), NewPMRand()}
}

func TestNewSelectorNames(t *testing.T) {
	for _, name := range []string{"pm", "rand", "seq", "pmrand"} {
		sel, err := NewSelector(name)
		if err != nil {
			t.Fatalf("NewSelector(%q): %v", name, err)
		}
		if sel.Name() != name {
			t.Fatalf("selector name = %q, want %q", sel.Name(), name)
		}
	}
	if _, err := NewSelector("bogus"); err == nil {
		t.Fatal("unknown selector accepted")
	}
}

func TestMassConservationAllSelectors(t *testing.T) {
	// Paper §3.2: the elementary step never changes the vector sum, so
	// the algorithm "does not introduce any errors into the
	// approximation". Checked per selector over several cycles.
	rng := xrand.New(100)
	for _, sel := range allSelectors() {
		t.Run(sel.Name(), func(t *testing.T) {
			g := mustComplete(t, 200)
			values := gaussian(200, rng)
			before := stats.Sum(values)
			runner, err := NewRunner(g, sel, values, rng)
			if err != nil {
				t.Fatal(err)
			}
			runner.Run(10)
			after := stats.Sum(runner.Values())
			if math.Abs(after-before) > 1e-9 {
				t.Fatalf("sum drifted: %.15g → %.15g", before, after)
			}
		})
	}
}

func TestMassConservationOnRandomGraph(t *testing.T) {
	rng := xrand.New(101)
	g := mustKRegular(t, 200, 20, rng)
	for _, name := range []string{"rand", "seq"} {
		sel, _ := NewSelector(name)
		values := gaussian(200, rng)
		before := stats.Sum(values)
		runner, err := NewRunner(g, sel, values, rng)
		if err != nil {
			t.Fatal(err)
		}
		runner.Run(10)
		if after := stats.Sum(runner.Values()); math.Abs(after-before) > 1e-9 {
			t.Fatalf("%s: sum drifted %.15g → %.15g", name, before, after)
		}
	}
}

func TestVarianceMonotonicallyNonIncreasing(t *testing.T) {
	rng := xrand.New(102)
	for _, sel := range allSelectors() {
		t.Run(sel.Name(), func(t *testing.T) {
			g := mustComplete(t, 100)
			runner, err := NewRunner(g, sel, gaussian(100, rng), rng)
			if err != nil {
				t.Fatal(err)
			}
			variances := runner.Run(15)
			for i := 1; i < len(variances); i++ {
				if variances[i] > variances[i-1]*(1+1e-12) {
					t.Fatalf("variance increased at cycle %d: %g → %g",
						i, variances[i-1], variances[i])
				}
			}
		})
	}
}

func TestExponentialConvergence(t *testing.T) {
	// All selectors must reach a 1e-6 variance ratio within 30 cycles on
	// the complete graph — far slower than any of them actually is.
	rng := xrand.New(103)
	for _, sel := range allSelectors() {
		g := mustComplete(t, 1000)
		runner, err := NewRunner(g, sel, gaussian(1000, rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		variances := runner.Run(30)
		ratio := variances[len(variances)-1] / variances[0]
		if ratio > 1e-6 {
			t.Errorf("%s: σ²₃₀/σ²₀ = %g, want ≤ 1e-6", sel.Name(), ratio)
		}
	}
}

func TestElementaryStepExactness(t *testing.T) {
	// A single controlled exchange must set both entries to the exact
	// average (checked via a 2-node complete graph where every pair is
	// (0,1)).
	rng := xrand.New(104)
	g := mustComplete(t, 2)
	runner, err := NewRunner(g, NewSeq(), []float64{1, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	runner.Cycle()
	vals := runner.Values()
	if vals[0] != 2 || vals[1] != 2 {
		t.Fatalf("values = %v, want [2 2]", vals)
	}
}

// measureRate returns the mean one-cycle variance reduction over runs
// independent trials.
func measureRate(t *testing.T, name string, n, runs int, seed uint64) float64 {
	t.Helper()
	var acc stats.Running
	for run := 0; run < runs; run++ {
		rng := xrand.New(seed + uint64(run)*7919)
		sel, err := NewSelector(name)
		if err != nil {
			t.Fatal(err)
		}
		g := mustComplete(t, n)
		runner, err := NewRunner(g, sel, gaussian(n, rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		before := runner.Variance()
		after := runner.Cycle()
		acc.Add(after / before)
	}
	return acc.Mean()
}

func TestTheorem1RatePM(t *testing.T) {
	// GETPAIR_PM is exact: E(2^{-φ}) = 1/4 (eq. 8).
	got := measureRate(t, "pm", 10000, 10, 200)
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("pm one-cycle reduction = %.4f, want 0.25 ± 0.01", got)
	}
}

func TestTheorem1RateRand(t *testing.T) {
	// GETPAIR_RAND: E(2^{-φ}) = 1/e ≈ 0.3679 (eq. 10).
	got := measureRate(t, "rand", 10000, 10, 201)
	if math.Abs(got-1/math.E) > 0.015 {
		t.Fatalf("rand one-cycle reduction = %.4f, want %.4f ± 0.015", got, 1/math.E)
	}
}

func TestTheorem1RateSeq(t *testing.T) {
	// GETPAIR_SEQ ≈ 1/(2√e) ≈ 0.3033 (eq. 12); the paper observes
	// slightly better than predicted, so allow the band [0.27, 0.32].
	got := measureRate(t, "seq", 10000, 10, 202)
	if got < 0.27 || got > 0.32 {
		t.Fatalf("seq one-cycle reduction = %.4f, want within [0.27, 0.32]", got)
	}
}

func TestTheorem1RatePMRand(t *testing.T) {
	// GETPAIR_PMRAND is the analytical proxy: exactly 1/(2√e).
	got := measureRate(t, "pmrand", 10000, 10, 203)
	want := 1 / (2 * math.Sqrt(math.E))
	if math.Abs(got-want) > 0.015 {
		t.Fatalf("pmrand one-cycle reduction = %.4f, want %.4f ± 0.015", got, want)
	}
}

func TestRateOrderingMatchesTheory(t *testing.T) {
	// pm < seq ≈ pmrand < rand, the paper's comparison of §3.3.
	pm := measureRate(t, "pm", 5000, 8, 210)
	seq := measureRate(t, "seq", 5000, 8, 211)
	rnd := measureRate(t, "rand", 5000, 8, 212)
	if !(pm < seq && seq < rnd) {
		t.Fatalf("rate ordering violated: pm=%.4f seq=%.4f rand=%.4f", pm, seq, rnd)
	}
}

func TestRateIndependentOfNetworkSize(t *testing.T) {
	// Figure 3(a)'s key observation: convergence is independent of N.
	small := measureRate(t, "seq", 1000, 10, 220)
	large := measureRate(t, "seq", 30000, 5, 221)
	if math.Abs(small-large) > 0.03 {
		t.Fatalf("seq rate varies with size: n=1000 → %.4f, n=30000 → %.4f", small, large)
	}
}

func TestSeqOnRandomGraphCloseToComplete(t *testing.T) {
	// Figure 3(a): "no observable difference between the random and
	// fully connected topologies" for seq after one cycle.
	rng := xrand.New(230)
	var acc stats.Running
	for run := 0; run < 8; run++ {
		g := mustKRegular(t, 5000, 20, rng)
		runner, err := NewRunner(g, NewSeq(), gaussian(5000, rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		before := runner.Variance()
		acc.Add(runner.Cycle() / before)
	}
	if got := acc.Mean(); got < 0.27 || got > 0.33 {
		t.Fatalf("seq on 20-regular = %.4f, want within [0.27, 0.33]", got)
	}
}

func TestPhiCountsPM(t *testing.T) {
	// PM must select every index exactly twice per cycle (φ ≡ 2).
	rng := xrand.New(240)
	g := mustComplete(t, 100)
	runner, err := NewRunner(g, NewPM(), gaussian(100, rng), rng, WithPhiCounts())
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 5; c++ {
		runner.Cycle()
		for i, phi := range runner.PhiCounts() {
			if phi != 2 {
				t.Fatalf("cycle %d: φ(%d) = %d, want 2", c, i, phi)
			}
		}
	}
}

func TestPhiCountsSeqAtLeastOne(t *testing.T) {
	// Seq: every node initiates once, so φ ≥ 1 everywhere, and the
	// total is exactly 2N.
	rng := xrand.New(241)
	n := 500
	g := mustComplete(t, n)
	runner, err := NewRunner(g, NewSeq(), gaussian(n, rng), rng, WithPhiCounts())
	if err != nil {
		t.Fatal(err)
	}
	runner.Cycle()
	total := 0
	for i, phi := range runner.PhiCounts() {
		if phi < 1 {
			t.Fatalf("φ(%d) = %d, want ≥ 1", i, phi)
		}
		total += phi
	}
	if total != 2*n {
		t.Fatalf("Σφ = %d, want %d", total, 2*n)
	}
}

func TestPhiDistributionRandIsPoisson2(t *testing.T) {
	// Rand: φ ~ Poisson(2) (eq. 9). Check mean ≈ 2 and E(2^{-φ}) ≈ 1/e.
	rng := xrand.New(242)
	n := 2000
	g := mustComplete(t, n)
	runner, err := NewRunner(g, NewRand(), gaussian(n, rng), rng, WithPhiCounts())
	if err != nil {
		t.Fatal(err)
	}
	var meanAcc, halfAcc stats.Running
	for c := 0; c < 20; c++ {
		runner.Cycle()
		for _, phi := range runner.PhiCounts() {
			meanAcc.Add(float64(phi))
			halfAcc.Add(math.Pow(2, -float64(phi)))
		}
	}
	if m := meanAcc.Mean(); math.Abs(m-2) > 0.05 {
		t.Errorf("E(φ) = %.4f, want ≈ 2", m)
	}
	if h := halfAcc.Mean(); math.Abs(h-1/math.E) > 0.01 {
		t.Errorf("E(2^{-φ}) = %.4f, want ≈ %.4f", h, 1/math.E)
	}
}

func TestPhiDistributionSeqIsOnePlusPoisson1(t *testing.T) {
	// Seq: φ = 1 + Poisson(1) approximately, so E(2^{-φ}) ≈ 1/(2√e).
	rng := xrand.New(243)
	n := 2000
	g := mustComplete(t, n)
	runner, err := NewRunner(g, NewSeq(), gaussian(n, rng), rng, WithPhiCounts())
	if err != nil {
		t.Fatal(err)
	}
	var halfAcc stats.Running
	for c := 0; c < 20; c++ {
		runner.Cycle()
		for _, phi := range runner.PhiCounts() {
			halfAcc.Add(math.Pow(2, -float64(phi)))
		}
	}
	want := 1 / (2 * math.Sqrt(math.E))
	if h := halfAcc.Mean(); math.Abs(h-want) > 0.01 {
		t.Errorf("E(2^{-φ}) = %.4f, want ≈ %.4f", h, want)
	}
}

func TestPMMatchingsDisjoint(t *testing.T) {
	// The two matchings of one PM cycle must share no pair.
	rng := xrand.New(244)
	g := mustComplete(t, 50)
	pm := NewPM()
	if err := pm.Bind(g, rng); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		pm.BeginCycle()
		type pair [2]int
		norm := func(i, j int) pair {
			if i > j {
				i, j = j, i
			}
			return pair{i, j}
		}
		first := make(map[pair]bool)
		for s := 0; s < 25; s++ {
			i, j := pm.NextPair()
			first[norm(i, j)] = true
		}
		for s := 0; s < 25; s++ {
			i, j := pm.NextPair()
			if first[norm(i, j)] {
				t.Fatalf("trial %d: pair (%d,%d) in both matchings", trial, i, j)
			}
		}
	}
}

func TestPMRejectsOddAndNonComplete(t *testing.T) {
	rng := xrand.New(245)
	gOdd := mustComplete(t, 7)
	if err := NewPM().Bind(gOdd, rng); !errors.Is(err, ErrOddSize) {
		t.Errorf("odd size: err = %v, want ErrOddSize", err)
	}
	kreg := mustKRegular(t, 20, 4, rng)
	if err := NewPM().Bind(kreg, rng); !errors.Is(err, ErrNeedsCompleteGraph) {
		t.Errorf("k-regular: err = %v, want ErrNeedsCompleteGraph", err)
	}
	if err := NewPMRand().Bind(kreg, rng); !errors.Is(err, ErrNeedsCompleteGraph) {
		t.Errorf("pmrand on k-regular: err = %v, want ErrNeedsCompleteGraph", err)
	}
}

func TestRunnerRejectsLengthMismatch(t *testing.T) {
	rng := xrand.New(246)
	g := mustComplete(t, 10)
	if _, err := NewRunner(g, NewSeq(), make([]float64, 5), rng); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRunnerCopiesInput(t *testing.T) {
	rng := xrand.New(247)
	g := mustComplete(t, 4)
	input := []float64{1, 2, 3, 4}
	runner, err := NewRunner(g, NewSeq(), input, rng)
	if err != nil {
		t.Fatal(err)
	}
	runner.Cycle()
	if input[0] != 1 || input[3] != 4 {
		t.Fatal("Runner mutated the caller's slice")
	}
}

func TestLossSlowsConvergence(t *testing.T) {
	rng := xrand.New(248)
	rate := func(p float64) float64 {
		g := mustComplete(t, 2000)
		var opts []Option
		if p > 0 {
			opts = append(opts, WithLossProbability(p))
		}
		runner, err := NewRunner(g, NewSeq(), gaussian(2000, rng), rng, opts...)
		if err != nil {
			t.Fatal(err)
		}
		v := runner.Run(10)
		return math.Pow(v[len(v)-1]/v[0], 0.1)
	}
	lossless, lossy := rate(0), rate(0.3)
	if lossy <= lossless {
		t.Fatalf("30%% loss did not slow convergence: %.4f vs %.4f", lossy, lossless)
	}
	// Even heavy loss must not stall convergence entirely.
	if lossy > 0.8 {
		t.Fatalf("30%% loss rate %.4f; protocol should still converge", lossy)
	}
}

func TestLossBreaksMassConservation(t *testing.T) {
	// Reply loss applies the average on one side only, so the sum can
	// drift — the effect E6 quantifies. With p = 0.5 over many steps the
	// drift is detectable with overwhelming probability.
	rng := xrand.New(249)
	g := mustComplete(t, 500)
	values := gaussian(500, rng)
	before := stats.Sum(values)
	runner, err := NewRunner(g, NewSeq(), values, rng, WithLossProbability(0.5))
	if err != nil {
		t.Fatal(err)
	}
	runner.Run(5)
	after := stats.Sum(runner.Values())
	if math.Abs(after-before) < 1e-9 {
		t.Fatal("sum unchanged under heavy loss; loss model not applied")
	}
}

func TestCyclesToTargetMatchesLn1000(t *testing.T) {
	// §5: with rand the variance drops 99.9 % in ln(1000) ≈ 7 cycles.
	rng := xrand.New(250)
	g := mustComplete(t, 5000)
	runner, err := NewRunner(g, NewRand(), gaussian(5000, rng), rng)
	if err != nil {
		t.Fatal(err)
	}
	initial := runner.Variance()
	cycles := 0
	for runner.Variance() > 1e-3*initial {
		runner.Cycle()
		cycles++
		if cycles > 20 {
			break
		}
	}
	if cycles < 5 || cycles > 10 {
		t.Fatalf("99.9%% reduction took %d cycles, want ≈ 7", cycles)
	}
}

func TestTheoreticalRateTable(t *testing.T) {
	cases := []struct {
		name string
		want float64
	}{
		{"pm", 0.25},
		{"rand", 1 / math.E},
		{"seq", 1 / (2 * math.Sqrt(math.E))},
		{"pmrand", 1 / (2 * math.Sqrt(math.E))},
	}
	for _, tc := range cases {
		got, ok := TheoreticalRate(tc.name)
		if !ok {
			t.Errorf("TheoreticalRate(%q) not ok", tc.name)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("TheoreticalRate(%q) = %.10f, want %.10f", tc.name, got, tc.want)
		}
	}
	if _, ok := TheoreticalRate("bogus"); ok {
		t.Error("TheoreticalRate accepted unknown selector")
	}
}

func TestMeanPreservedQuick(t *testing.T) {
	// Property: for any small initial vector, lossless averaging keeps
	// the mean (within rounding) for every selector.
	rng := xrand.New(251)
	check := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw)%2 == 1 {
			raw = raw[:len(raw)-1]
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		for _, sel := range allSelectors() {
			g, err := topology.NewComplete(len(raw))
			if err != nil {
				return false
			}
			runner, err := NewRunner(g, sel, raw, rng)
			if err != nil {
				return false
			}
			before := runner.Mean()
			runner.Run(3)
			if math.Abs(runner.Mean()-before) > 1e-9*math.Max(1, math.Abs(before)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAggregationViaEpidemicSpread(t *testing.T) {
	// §1.1 notes AGGREGATE_MAX behaves like push-pull epidemic
	// broadcast. Emulate it on the runner's pair stream: after O(log N)
	// cycles every node must know the maximum.
	rng := xrand.New(252)
	n := 1024
	g := mustComplete(t, n)
	values := gaussian(n, rng)
	trueMax := values[0]
	for _, v := range values {
		if v > trueMax {
			trueMax = v
		}
	}
	sel := NewSeq()
	if err := sel.Bind(g, rng); err != nil {
		t.Fatal(err)
	}
	vals := append([]float64(nil), values...)
	for cycle := 0; cycle < 12; cycle++ {
		sel.BeginCycle()
		for s := 0; s < n; s++ {
			i, j := sel.NextPair()
			m := math.Max(vals[i], vals[j])
			vals[i], vals[j] = m, m
		}
	}
	for i, v := range vals {
		if v != trueMax {
			t.Fatalf("node %d has %g, want max %g", i, v, trueMax)
		}
	}
}

func TestRunnerDeterministicForSeed(t *testing.T) {
	// Reproducibility is load-bearing for the experiment harness: the
	// same seed must give bit-identical trajectories.
	run := func() []float64 {
		rng := xrand.New(777)
		g := mustComplete(t, 300)
		runner, err := NewRunner(g, NewSeq(), gaussian(300, rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		return runner.Run(8)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at cycle %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRunnerOnRingStillConverges(t *testing.T) {
	// The theory does not cover the ring, but the algorithm must still
	// converge there — just diffusively slowly.
	rng := xrand.New(778)
	g, err := topology.NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(g, NewSeq(), gaussian(64, rng), rng)
	if err != nil {
		t.Fatal(err)
	}
	v := runner.Run(200)
	// Ring mixing is diffusive (O(N²) cycles), so expect slow but real
	// progress: two orders of magnitude in 200 cycles at N = 64.
	if ratio := v[len(v)-1] / v[0]; ratio > 1e-2 {
		t.Fatalf("ring did not converge: ratio %g after 200 cycles", ratio)
	}
}

func TestSelectorReuseAcrossBinds(t *testing.T) {
	// A selector re-bound to a new graph must fully reset its state.
	rng := xrand.New(779)
	sel := NewPM()
	g1 := mustComplete(t, 20)
	if err := sel.Bind(g1, rng); err != nil {
		t.Fatal(err)
	}
	sel.BeginCycle()
	sel.NextPair()
	g2 := mustComplete(t, 10)
	if err := sel.Bind(g2, rng); err != nil {
		t.Fatal(err)
	}
	sel.BeginCycle()
	for s := 0; s < 10; s++ {
		i, j := sel.NextPair()
		if i >= 10 || j >= 10 || i < 0 || j < 0 {
			t.Fatalf("stale pair (%d, %d) after re-bind to smaller graph", i, j)
		}
	}
}
