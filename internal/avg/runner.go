package avg

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Option configures a Runner.
type Option func(*Runner)

// WithLossProbability makes every elementary exchange lossy with the
// push-pull semantics of the deployed protocol: with probability p the
// initiating message is dropped (the step is a no-op), otherwise with
// probability p the reply is dropped, in which case only the responder j
// applies the average — the asymmetric failure that violates mass
// conservation and that experiment E6 quantifies.
func WithLossProbability(p float64) Option {
	return func(r *Runner) { r.lossProb = p }
}

// WithPhiCounts makes the Runner tally, for each cycle, how many times
// each index was a member of a returned pair (the random variable φ of
// Theorem 1). Counts are retrievable via PhiCounts after each cycle.
func WithPhiCounts() Option {
	return func(r *Runner) { r.countPhi = true }
}

// Runner iterates algorithm AVG (Figure 2) over a value vector on a fixed
// overlay, exposing per-cycle empirical statistics.
type Runner struct {
	graph    topology.Graph
	selector PairSelector
	rng      *xrand.Rand
	values   []float64

	lossProb float64
	countPhi bool
	phi      []int
	cycle    int
}

// NewRunner binds selector to graph, installs the initial value vector
// (copied) and returns a Runner ready for Cycle calls. The vector length
// must equal the graph size.
func NewRunner(g topology.Graph, sel PairSelector, values []float64, rng *xrand.Rand, opts ...Option) (*Runner, error) {
	if len(values) != g.Size() {
		return nil, fmt.Errorf("avg: vector length %d does not match graph size %d", len(values), g.Size())
	}
	if err := sel.Bind(g, rng); err != nil {
		return nil, fmt.Errorf("bind selector %q: %w", sel.Name(), err)
	}
	vals := make([]float64, len(values))
	copy(vals, values)
	r := &Runner{graph: g, selector: sel, rng: rng, values: vals}
	for _, opt := range opts {
		opt(r)
	}
	if r.countPhi {
		r.phi = make([]int, len(vals))
	}
	return r, nil
}

// Values returns the live value vector. Callers may read it between
// cycles; mutating it models external value changes (the protocol is
// adaptive by design).
func (r *Runner) Values() []float64 { return r.values }

// Cycle performs one full cycle: exactly N elementary variance-reduction
// steps, N = graph size. It returns the vector's empirical variance after
// the cycle.
func (r *Runner) Cycle() float64 {
	n := r.graph.Size()
	r.selector.BeginCycle()
	if r.countPhi {
		clear(r.phi)
	}
	for step := 0; step < n; step++ {
		i, j := r.selector.NextPair()
		if r.countPhi {
			r.phi[i]++
			r.phi[j]++
		}
		r.exchange(i, j)
	}
	r.cycle++
	return stats.Variance(r.values)
}

// exchange applies one elementary step between indices i and j, honoring
// the configured loss model.
func (r *Runner) exchange(i, j int) {
	if r.lossProb > 0 {
		if r.rng.Bool(r.lossProb) {
			return // request lost: nothing happens
		}
		if r.rng.Bool(r.lossProb) {
			// Reply lost: the responder already averaged, the initiator
			// never learns the result.
			r.values[j] = (r.values[i] + r.values[j]) / 2
			return
		}
	}
	m := (r.values[i] + r.values[j]) / 2
	r.values[i] = m
	r.values[j] = m
}

// Run performs cycles complete cycles and returns the variance after each
// one, with index 0 holding the initial variance σ₀² — the raw series
// behind Figures 3(a) and 3(b).
func (r *Runner) Run(cycles int) []float64 {
	out := make([]float64, 0, cycles+1)
	out = append(out, stats.Variance(r.values))
	for c := 0; c < cycles; c++ {
		out = append(out, r.Cycle())
	}
	return out
}

// PhiCounts returns the per-index selection counts of the most recent
// cycle. It returns nil unless the Runner was built WithPhiCounts. The
// slice is reused across cycles; copy it to retain.
func (r *Runner) PhiCounts() []int { return r.phi }

// CycleCount returns the number of completed cycles.
func (r *Runner) CycleCount() int { return r.cycle }

// Mean returns the current empirical mean of the vector — the quantity
// every node's approximation converges to.
func (r *Runner) Mean() float64 { return stats.Mean(r.values) }

// Variance returns the current empirical variance of the vector.
func (r *Runner) Variance() float64 { return stats.Variance(r.values) }

// NewSelector returns a fresh selector by name: "pm", "rand", "seq" or
// "pmrand". Unknown names return an error listing the options, so CLI
// flag handling stays in one place.
func NewSelector(name string) (PairSelector, error) {
	switch name {
	case "pm":
		return NewPM(), nil
	case "rand":
		return NewRand(), nil
	case "seq":
		return NewSeq(), nil
	case "pmrand":
		return NewPMRand(), nil
	default:
		return nil, fmt.Errorf("avg: unknown selector %q (want pm, rand, seq or pmrand)", name)
	}
}

// TheoreticalRate returns the closed-form per-cycle variance reduction
// rate E(2^{-φ}) the paper derives for each selector on the complete
// graph: 1/4 for pm (eq. 8), 1/e for rand (eq. 10) and 1/(2√e) for seq
// and pmrand (eq. 12). ok is false for selectors without a closed form.
func TheoreticalRate(name string) (rate float64, ok bool) {
	switch name {
	case "pm":
		return 0.25, true
	case "rand":
		return 0.36787944117144233, true // 1/e
	case "seq", "pmrand":
		return 0.3032653298563167, true // 1/(2√e)
	default:
		return 0, false
	}
}
