package avg

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Option configures a Runner.
type Option func(*Runner)

// WithLossProbability makes every elementary exchange lossy with the
// push-pull semantics of the deployed protocol: with probability p the
// initiating message is dropped (the step is a no-op), otherwise with
// probability p the reply is dropped, in which case only the responder j
// applies the average — the asymmetric failure that violates mass
// conservation and that experiment E6 quantifies.
func WithLossProbability(p float64) Option {
	return func(r *Runner) { r.lossProb = p }
}

// WithPhiCounts makes the Runner tally, for each cycle, how many times
// each index was a member of a returned pair (the random variable φ of
// Theorem 1). Counts are retrievable via PhiCounts after each cycle.
func WithPhiCounts() Option {
	return func(r *Runner) { r.countPhi = true }
}

// Runner iterates algorithm AVG (Figure 2) over a value vector on a fixed
// overlay, exposing per-cycle empirical statistics. It is a thin adapter
// over a single-field average kernel (internal/sim) in exact sequential
// mode, so trajectories are bit-identical to the pre-kernel Runner for a
// fixed seed.
type Runner struct {
	kern *sim.Kernel

	lossProb float64
	countPhi bool
}

// NewRunner binds selector to graph, installs the initial value vector
// (copied) and returns a Runner ready for Cycle calls. The vector length
// must equal the graph size.
func NewRunner(g topology.Graph, sel PairSelector, values []float64, rng *xrand.Rand, opts ...Option) (*Runner, error) {
	if len(values) != g.Size() {
		return nil, fmt.Errorf("avg: vector length %d does not match graph size %d", len(values), g.Size())
	}
	r := &Runner{}
	for _, opt := range opts {
		opt(r)
	}
	var loss sim.LossModel
	if r.lossProb > 0 {
		loss = sim.ReplyLoss{P: r.lossProb}
	}
	kern, err := sim.New(sim.Config{
		Graph:    g,
		Selector: sel,
		Loss:     loss,
		CountPhi: r.countPhi,
		RNG:      rng,
	})
	if err != nil {
		return nil, err // already tagged "sim: bind selector ..." by the kernel
	}
	if err := kern.SetValues(0, values); err != nil {
		return nil, err
	}
	r.kern = kern
	return r, nil
}

// Values returns the live value vector. Callers may read it between
// cycles; mutating it models external value changes (the protocol is
// adaptive by design).
func (r *Runner) Values() []float64 { return r.kern.Column(0) }

// Cycle performs one full cycle: exactly N elementary variance-reduction
// steps, N = graph size. It returns the vector's empirical variance after
// the cycle.
func (r *Runner) Cycle() float64 {
	r.kern.Cycle()
	return stats.Variance(r.kern.Column(0))
}

// Run performs cycles complete cycles and returns the variance after each
// one, with index 0 holding the initial variance σ₀² — the raw series
// behind Figures 3(a) and 3(b).
func (r *Runner) Run(cycles int) []float64 { return r.kern.Run(cycles) }

// PhiCounts returns the per-index selection counts of the most recent
// cycle. It returns nil unless the Runner was built WithPhiCounts. The
// slice is reused across cycles; copy it to retain.
func (r *Runner) PhiCounts() []int { return r.kern.PhiCounts() }

// CycleCount returns the number of completed cycles.
func (r *Runner) CycleCount() int { return r.kern.CycleCount() }

// Mean returns the current empirical mean of the vector — the quantity
// every node's approximation converges to.
func (r *Runner) Mean() float64 { return stats.Mean(r.kern.Column(0)) }

// Variance returns the current empirical variance of the vector.
func (r *Runner) Variance() float64 { return stats.Variance(r.kern.Column(0)) }

// NewSelector returns a fresh selector by name: "pm", "rand", "seq" or
// "pmrand". Unknown names return an error listing the options, so CLI
// flag handling stays in one place.
func NewSelector(name string) (PairSelector, error) {
	sel, err := sim.NewSelector(name)
	if err != nil {
		return nil, fmt.Errorf("avg: unknown selector %q (want pm, rand, seq or pmrand)", name)
	}
	return sel, nil
}

// TheoreticalRate returns the closed-form per-cycle variance reduction
// rate E(2^{-φ}) the paper derives for each selector on the complete
// graph: 1/4 for pm (eq. 8), 1/e for rand (eq. 10) and 1/(2√e) for seq
// and pmrand (eq. 12). ok is false for selectors without a closed form.
func TheoreticalRate(name string) (rate float64, ok bool) {
	switch name {
	case "pm":
		return 0.25, true
	case "rand":
		return 0.36787944117144233, true // 1/e
	case "seq", "pmrand":
		return 0.3032653298563167, true // 1/(2√e)
	default:
		return 0, false
	}
}
