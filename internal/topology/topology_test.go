package topology

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestCompleteBasics(t *testing.T) {
	g, err := NewComplete(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 5 {
		t.Fatalf("size = %d", g.Size())
	}
	if g.Name() != "complete" {
		t.Fatalf("name = %q", g.Name())
	}
	for i := 0; i < 5; i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", i, g.Degree(i))
		}
	}
}

func TestCompleteNeighborEnumeration(t *testing.T) {
	g, _ := NewComplete(4)
	// Node 2's neighbors must be {0, 1, 3} in order.
	want := []int{0, 1, 3}
	for k, w := range want {
		if got := g.Neighbor(2, k); got != w {
			t.Fatalf("Neighbor(2, %d) = %d, want %d", k, got, w)
		}
	}
}

func TestCompleteRandomNeighborNeverSelf(t *testing.T) {
	g, _ := NewComplete(10)
	rng := xrand.New(1)
	for trial := 0; trial < 10000; trial++ {
		i := rng.Intn(10)
		j, ok := g.RandomNeighbor(i, rng)
		if !ok {
			t.Fatal("complete graph reported isolated node")
		}
		if j == i || j < 0 || j >= 10 {
			t.Fatalf("RandomNeighbor(%d) = %d", i, j)
		}
	}
}

func TestCompleteRandomNeighborUniform(t *testing.T) {
	g, _ := NewComplete(5)
	rng := xrand.New(2)
	counts := make([]int, 5)
	const draws = 50000
	for trial := 0; trial < draws; trial++ {
		j, _ := g.RandomNeighbor(2, rng)
		counts[j]++
	}
	if counts[2] != 0 {
		t.Fatalf("self selected %d times", counts[2])
	}
	want := float64(draws) / 4
	for j, c := range counts {
		if j == 2 {
			continue
		}
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("neighbor %d drawn %d times, want ≈ %.0f", j, c, want)
		}
	}
}

func TestCompleteRejectsTiny(t *testing.T) {
	if _, err := NewComplete(1); !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("err = %v, want ErrTooFewNodes", err)
	}
}

func TestKRegularDegrees(t *testing.T) {
	rng := xrand.New(3)
	for _, tc := range []struct{ n, k int }{{10, 3}, {100, 20}, {1000, 4}, {50, 7}} {
		if tc.n*tc.k%2 != 0 {
			continue
		}
		g, err := NewKRegular(tc.n, tc.k, rng)
		if err != nil {
			t.Fatalf("NewKRegular(%d, %d): %v", tc.n, tc.k, err)
		}
		for i := 0; i < tc.n; i++ {
			if g.Degree(i) != tc.k {
				t.Fatalf("n=%d k=%d: degree(%d) = %d", tc.n, tc.k, i, g.Degree(i))
			}
		}
	}
}

func TestKRegularSimpleGraph(t *testing.T) {
	rng := xrand.New(4)
	g, err := NewKRegular(200, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Size(); i++ {
		seen := make(map[int]bool)
		for k := 0; k < g.Degree(i); k++ {
			j := g.Neighbor(i, k)
			if j == i {
				t.Fatalf("self-loop at node %d", i)
			}
			if seen[j] {
				t.Fatalf("parallel edge %d-%d", i, j)
			}
			seen[j] = true
		}
	}
}

func TestKRegularSymmetric(t *testing.T) {
	rng := xrand.New(5)
	g, err := NewKRegular(100, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	adj := make(map[[2]int]bool)
	for i := 0; i < g.Size(); i++ {
		for k := 0; k < g.Degree(i); k++ {
			adj[[2]int{i, g.Neighbor(i, k)}] = true
		}
	}
	for e := range adj {
		if !adj[[2]int{e[1], e[0]}] {
			t.Fatalf("edge %v not symmetric", e)
		}
	}
}

func TestKRegularConnectedWHP(t *testing.T) {
	// Random k-regular graphs with k ≥ 3 are connected w.h.p.; with
	// k = 20 a disconnected draw would indicate a generator bug.
	rng := xrand.New(6)
	for trial := 0; trial < 5; trial++ {
		g, err := NewKRegular(500, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !IsConnected(g) {
			t.Fatal("20-regular random graph disconnected")
		}
	}
}

func TestKRegularValidation(t *testing.T) {
	rng := xrand.New(7)
	if _, err := NewKRegular(5, 3, rng); err == nil {
		t.Error("odd n·k accepted")
	}
	if _, err := NewKRegular(5, 5, rng); err == nil {
		t.Error("k ≥ n accepted")
	}
	if _, err := NewKRegular(1, 1, rng); !errors.Is(err, ErrTooFewNodes) {
		t.Errorf("err = %v, want ErrTooFewNodes", err)
	}
}

func TestRandomViewProperties(t *testing.T) {
	rng := xrand.New(8)
	g, err := NewRandomView(300, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Size(); i++ {
		if g.Degree(i) != 20 {
			t.Fatalf("view size at %d = %d", i, g.Degree(i))
		}
		seen := make(map[int]bool)
		for k := 0; k < 20; k++ {
			j := g.Neighbor(i, k)
			if j == i {
				t.Fatalf("node %d in its own view", i)
			}
			if seen[j] {
				t.Fatalf("duplicate view entry at node %d", i)
			}
			seen[j] = true
		}
	}
}

func TestRandomViewValidation(t *testing.T) {
	rng := xrand.New(9)
	if _, err := NewRandomView(10, 10, rng); err == nil {
		t.Error("k = n accepted")
	}
	if _, err := NewRandomView(1, 1, rng); err == nil {
		t.Error("n = 1 accepted")
	}
}

func TestRingStructure(t *testing.T) {
	g, err := NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if g.Degree(i) != 2 {
			t.Fatalf("ring degree(%d) = %d", i, g.Degree(i))
		}
	}
	if !IsConnected(g) {
		t.Fatal("ring disconnected")
	}
	if _, err := NewRing(2); err == nil {
		t.Error("2-node ring accepted")
	}
}

func TestWattsStrogatzDegreesPreserved(t *testing.T) {
	rng := xrand.New(10)
	g, err := NewWattsStrogatz(200, 6, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Rewiring preserves the edge count (each edge moves, never
	// disappears, except rare saturation in small graphs).
	totalDeg := 0
	for i := 0; i < g.Size(); i++ {
		totalDeg += g.Degree(i)
	}
	if want := 200 * 6; totalDeg != want {
		t.Fatalf("total degree %d, want %d", totalDeg, want)
	}
	if !IsConnected(g) {
		t.Fatal("small-world graph disconnected at beta=0.1")
	}
}

func TestWattsStrogatzBetaZeroIsLattice(t *testing.T) {
	rng := xrand.New(11)
	g, err := NewWattsStrogatz(20, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// beta = 0: every node keeps exactly its 4 lattice neighbors.
	for i := 0; i < 20; i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("lattice degree(%d) = %d", i, g.Degree(i))
		}
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	rng := xrand.New(12)
	if _, err := NewWattsStrogatz(10, 3, 0.1, rng); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := NewWattsStrogatz(10, 4, 1.5, rng); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	rng := xrand.New(13)
	g, err := NewBarabasiAlbert(500, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) {
		t.Fatal("scale-free graph disconnected")
	}
	// Minimum degree is m (every node attaches m edges); hubs exist.
	maxDeg := 0
	for i := 0; i < g.Size(); i++ {
		d := g.Degree(i)
		if d < 3 {
			t.Fatalf("degree(%d) = %d < m", i, d)
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 20 {
		t.Errorf("max degree %d; preferential attachment should create hubs", maxDeg)
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	rng := xrand.New(14)
	if _, err := NewBarabasiAlbert(3, 3, rng); err == nil {
		t.Error("n ≤ m accepted")
	}
	if _, err := NewBarabasiAlbert(10, 0, rng); err == nil {
		t.Error("m = 0 accepted")
	}
}

func TestAdjacencyRandomNeighborIsolated(t *testing.T) {
	g := NewAdjacency("test", [][]int32{{}, {0}})
	rng := xrand.New(15)
	if _, ok := g.RandomNeighbor(0, rng); ok {
		t.Fatal("isolated node returned a neighbor")
	}
	if j, ok := g.RandomNeighbor(1, rng); !ok || j != 0 {
		t.Fatalf("RandomNeighbor(1) = %d, %v", j, ok)
	}
}

func TestIsConnectedDetectsSplit(t *testing.T) {
	// Two disjoint edges: 0-1, 2-3.
	g := NewAdjacency("split", [][]int32{{1}, {0}, {3}, {2}})
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestKRegularDeterministicForSeed(t *testing.T) {
	build := func(seed uint64) [][]int32 {
		g, err := NewKRegular(60, 4, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]int32, g.Size())
		for i := range out {
			out[i] = append([]int32(nil), g.Neighbors(i)...)
		}
		return out
	}
	a, b := build(99), build(99)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("node %d degree differs across identical seeds", i)
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatalf("node %d neighbor %d differs across identical seeds", i, k)
			}
		}
	}
}

func TestRandomNeighborInRangeQuick(t *testing.T) {
	rng := xrand.New(16)
	g, err := NewKRegular(40, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	check := func(iRaw uint8) bool {
		i := int(iRaw) % 40
		j, ok := g.RandomNeighbor(i, rng)
		return ok && j >= 0 && j < 40 && j != i
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
