package topology

import (
	"fmt"

	"repro/internal/xrand"
)

// NewKRegular builds an undirected random k-regular graph on n nodes via
// the configuration model: n·k stubs are shuffled and paired, then
// self-loops and parallel edges are repaired with random edge swaps. This
// is the "20-reg. random" topology of Figure 3 when k = 20.
//
// n·k must be even and k < n.
func NewKRegular(n, k int, rng *xrand.Rand) (*Adjacency, error) {
	if n < 2 || k < 1 {
		return nil, fmt.Errorf("%w: k-regular needs n ≥ 2 and k ≥ 1, got n=%d k=%d", ErrTooFewNodes, n, k)
	}
	if k >= n {
		return nil, fmt.Errorf("topology: k-regular needs k < n, got n=%d k=%d", n, k)
	}
	if n*k%2 != 0 {
		return nil, fmt.Errorf("topology: k-regular needs n·k even, got n=%d k=%d", n, k)
	}

	stubs := make([]int32, n*k)
	for i := range stubs {
		stubs[i] = int32(i / k)
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	// Pair consecutive stubs into candidate edges.
	type edge struct{ u, v int32 }
	edges := make([]edge, 0, n*k/2)
	for i := 0; i < len(stubs); i += 2 {
		edges = append(edges, edge{stubs[i], stubs[i+1]})
	}

	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	seen := make(map[int64]struct{}, len(edges))
	bad := func(e edge) bool {
		if e.u == e.v {
			return true
		}
		_, dup := seen[key(e.u, e.v)]
		return dup
	}

	// First pass: register good edges, queue bad ones (self-loops and
	// later copies of duplicate edges).
	var defects []int
	defectSet := make(map[int]struct{})
	for idx, e := range edges {
		if bad(e) {
			defects = append(defects, idx)
			defectSet[idx] = struct{}{}
			continue
		}
		seen[key(e.u, e.v)] = struct{}{}
	}

	// Repair each defective edge by a double-edge swap with a random good
	// edge: (d.u,d.v)+(o.u,o.v) → (d.u,o.u)+(d.v,o.v). The expected
	// defect count is O(k²), independent of n, so this terminates
	// quickly; an attempt cap turns pathological inputs into an error
	// instead of a hang.
	const maxAttempts = 1 << 22
	attempts := 0
	for len(defects) > 0 {
		if attempts++; attempts > maxAttempts {
			return nil, fmt.Errorf("topology: k-regular repair did not converge for n=%d k=%d", n, k)
		}
		di := defects[len(defects)-1]
		d := edges[di]
		oi := rng.Intn(len(edges))
		if oi == di {
			continue
		}
		if _, isDefect := defectSet[oi]; isDefect {
			continue
		}
		o := edges[oi]
		// Temporarily free o's key so the candidates may reuse it.
		delete(seen, key(o.u, o.v))
		n1 := edge{d.u, o.u}
		n2 := edge{d.v, o.v}
		if bad(n1) || bad(n2) || key(n1.u, n1.v) == key(n2.u, n2.v) {
			seen[key(o.u, o.v)] = struct{}{} // restore and retry
			continue
		}
		seen[key(n1.u, n1.v)] = struct{}{}
		seen[key(n2.u, n2.v)] = struct{}{}
		edges[di] = n1
		edges[oi] = n2
		defects = defects[:len(defects)-1]
		delete(defectSet, di)
	}

	adj := make([][]int32, n)
	for i := range adj {
		adj[i] = make([]int32, 0, k)
	}
	for _, e := range edges {
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
	}
	return NewAdjacency(fmt.Sprintf("%d-regular", k), adj), nil
}

// NewRandomView builds a directed overlay where every node's view is k
// distinct uniformly random other nodes — the idealized output of a
// peer-sampling service such as Newscast. Sampling a neighbor reads the
// node's own view only, exactly like the deployed protocol.
func NewRandomView(n, k int, rng *xrand.Rand) (*Adjacency, error) {
	if n < 2 || k < 1 {
		return nil, fmt.Errorf("%w: random view needs n ≥ 2 and k ≥ 1, got n=%d k=%d", ErrTooFewNodes, n, k)
	}
	if k >= n {
		return nil, fmt.Errorf("topology: random view needs k < n, got n=%d k=%d", n, k)
	}
	adj := make([][]int32, n)
	for i := range adj {
		view := rng.SampleDistinct(n, k, i)
		lst := make([]int32, k)
		for vi, v := range view {
			lst[vi] = int32(v)
		}
		adj[i] = lst
	}
	return NewAdjacency(fmt.Sprintf("view-%d", k), adj), nil
}

// NewRing builds the cycle graph on n nodes (each node linked to its two
// ring neighbors) — the worst realistic case for gossip averaging, with
// diffusive rather than exponential mixing.
func NewRing(n int) (*Adjacency, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: ring needs n ≥ 3, got %d", ErrTooFewNodes, n)
	}
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		prev := int32((i + n - 1) % n)
		next := int32((i + 1) % n)
		adj[i] = []int32{prev, next}
	}
	return NewAdjacency("ring", adj), nil
}

// NewWattsStrogatz builds a small-world graph: a ring lattice where each
// node connects to its k nearest neighbors (k even), with every edge
// rewired to a random target with probability beta. beta = 0 is a regular
// lattice, beta = 1 is close to a random graph.
func NewWattsStrogatz(n, k int, beta float64, rng *xrand.Rand) (*Adjacency, error) {
	if n < 4 || k < 2 {
		return nil, fmt.Errorf("%w: watts-strogatz needs n ≥ 4 and k ≥ 2, got n=%d k=%d", ErrTooFewNodes, n, k)
	}
	if k%2 != 0 || k >= n {
		return nil, fmt.Errorf("topology: watts-strogatz needs even k < n, got n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("topology: watts-strogatz beta must be in [0,1], got %g", beta)
	}

	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	seen := make(map[int64]struct{}, n*k/2)
	type edge struct{ u, v int32 }
	edges := make([]edge, 0, n*k/2)
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			u, v := int32(i), int32((i+d)%n)
			if _, dup := seen[key(u, v)]; dup {
				continue
			}
			seen[key(u, v)] = struct{}{}
			edges = append(edges, edge{u, v})
		}
	}
	for ei := range edges {
		if !rng.Bool(beta) {
			continue
		}
		e := edges[ei]
		// Rewire the far endpoint to a random target, keeping the graph
		// simple. A handful of retries suffices except in tiny graphs,
		// where we keep the original edge rather than loop forever.
		for attempt := 0; attempt < 16; attempt++ {
			t := int32(rng.Intn(n))
			if t == e.u || t == e.v {
				continue
			}
			if _, dup := seen[key(e.u, t)]; dup {
				continue
			}
			delete(seen, key(e.u, e.v))
			seen[key(e.u, t)] = struct{}{}
			edges[ei] = edge{e.u, t}
			break
		}
	}
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
	}
	return NewAdjacency(fmt.Sprintf("smallworld-%d-%.2f", k, beta), adj), nil
}

// NewBarabasiAlbert builds a scale-free graph by preferential attachment:
// starting from a small clique, each new node attaches m edges to existing
// nodes with probability proportional to their degree.
func NewBarabasiAlbert(n, m int, rng *xrand.Rand) (*Adjacency, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("%w: barabasi-albert needs n ≥ m+1 and m ≥ 1, got n=%d m=%d", ErrTooFewNodes, n, m)
	}
	adj := make([][]int32, n)
	// Preferential attachment via the repeated-endpoint trick: targets is
	// a multiset holding every edge endpoint, so uniform sampling from it
	// is degree-proportional sampling.
	targets := make([]int32, 0, 2*n*m)
	// Seed clique on m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			adj[u] = append(adj[u], int32(v))
			adj[v] = append(adj[v], int32(u))
			targets = append(targets, int32(u), int32(v))
		}
	}
	// chosen keeps draw order (a map's iteration order would make the
	// adjacency — and every downstream experiment — nondeterministic
	// across runs, violating the package's reproducibility contract).
	chosen := make([]int32, 0, m)
	seen := make(map[int32]struct{}, m)
	for u := m + 1; u < n; u++ {
		chosen = chosen[:0]
		clear(seen)
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			adj[u] = append(adj[u], t)
			adj[t] = append(adj[t], int32(u))
			targets = append(targets, int32(u), t)
		}
	}
	return NewAdjacency(fmt.Sprintf("scalefree-%d", m), adj), nil
}

// IsConnected reports whether every node is reachable from node 0,
// treating edges as bidirectional (for the directed random-view graph this
// checks weak connectivity, which is what gossip dissemination needs when
// exchanges are push-pull).
func IsConnected(g Graph) bool {
	n := g.Size()
	if n == 0 {
		return true
	}
	// Build a reverse-edge map only for directed graphs; for the complete
	// graph connectivity is immediate.
	if _, complete := g.(*Complete); complete {
		return true
	}
	rev := make([][]int32, n)
	for i := 0; i < n; i++ {
		deg := g.Degree(i)
		for k := 0; k < deg; k++ {
			j := g.Neighbor(i, k)
			rev[j] = append(rev[j], int32(i))
		}
	}
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	queue = append(queue, 0)
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		deg := g.Degree(u)
		for k := 0; k < deg; k++ {
			v := g.Neighbor(u, k)
			if !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
		for _, v32 := range rev[u] {
			v := int(v32)
			if !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == n
}
