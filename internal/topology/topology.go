// Package topology builds the overlay networks the paper evaluates on —
// the complete graph and the random graph with a fixed view size
// ("20-reg. random" in Figure 3) — plus the structured topologies the
// paper's future-work section points at (ring, small world, scale free)
// so that the sensitivity of the protocol to non-random overlays can be
// measured.
//
// A Graph exposes exactly the operation the protocol needs: sample a
// uniformly random neighbor of a node. The complete graph is represented
// implicitly (O(1) memory at any size); all other graphs store adjacency
// lists.
package topology

import (
	"errors"
	"fmt"

	"repro/internal/xrand"
)

// Graph is a node-count plus neighbor-sampling view of an overlay.
// Implementations must be safe for concurrent readers after construction;
// mutation during sampling is not supported.
type Graph interface {
	// Size returns the number of nodes, labeled 0..Size()-1.
	Size() int
	// Degree returns the number of neighbors of node i.
	Degree(i int) int
	// Neighbor returns the k-th neighbor of node i, 0 ≤ k < Degree(i).
	Neighbor(i, k int) int
	// RandomNeighbor returns a uniformly random neighbor of node i.
	// ok is false when the node is isolated.
	RandomNeighbor(i int, rng *xrand.Rand) (j int, ok bool)
	// Name returns a short label used in experiment output.
	Name() string
}

// ErrTooFewNodes is returned when a generator is asked for a graph
// smaller than its structure can support.
var ErrTooFewNodes = errors.New("topology: too few nodes")

// Complete is the fully connected overlay used by the paper's theory: any
// node can sample any other node. It stores no adjacency.
type Complete struct {
	n int
}

var _ Graph = (*Complete)(nil)

// NewComplete returns the complete graph on n nodes (n ≥ 2).
func NewComplete(n int) (*Complete, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: complete graph needs n ≥ 2, got %d", ErrTooFewNodes, n)
	}
	return &Complete{n: n}, nil
}

// Size returns the number of nodes.
func (g *Complete) Size() int { return g.n }

// Degree returns n-1 for every node.
func (g *Complete) Degree(i int) int { return g.n - 1 }

// Neighbor enumerates all nodes except i in increasing order.
func (g *Complete) Neighbor(i, k int) int {
	if k < i {
		return k
	}
	return k + 1
}

// RandomNeighbor samples any node other than i uniformly.
func (g *Complete) RandomNeighbor(i int, rng *xrand.Rand) (int, bool) {
	j := rng.Intn(g.n - 1)
	if j >= i {
		j++
	}
	return j, true
}

// Name implements Graph.
func (g *Complete) Name() string { return "complete" }

// Adjacency is an explicit adjacency-list graph; the shared representation
// for every non-complete topology in this package.
type Adjacency struct {
	name string
	adj  [][]int32
}

var _ Graph = (*Adjacency)(nil)

// NewAdjacency wraps pre-built adjacency lists. The lists are used
// directly (not copied); callers hand over ownership.
func NewAdjacency(name string, adj [][]int32) *Adjacency {
	return &Adjacency{name: name, adj: adj}
}

// Size returns the number of nodes.
func (g *Adjacency) Size() int { return len(g.adj) }

// Degree returns the number of neighbors of node i.
func (g *Adjacency) Degree(i int) int { return len(g.adj[i]) }

// Neighbor returns the k-th neighbor of node i.
func (g *Adjacency) Neighbor(i, k int) int { return int(g.adj[i][k]) }

// RandomNeighbor samples a uniformly random entry of node i's list.
func (g *Adjacency) RandomNeighbor(i int, rng *xrand.Rand) (int, bool) {
	lst := g.adj[i]
	if len(lst) == 0 {
		return 0, false
	}
	return int(lst[rng.Intn(len(lst))]), true
}

// Name implements Graph.
func (g *Adjacency) Name() string { return g.name }

// Neighbors returns node i's raw neighbor list (shared, do not mutate).
func (g *Adjacency) Neighbors(i int) []int32 { return g.adj[i] }
