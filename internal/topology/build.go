package topology

import (
	"fmt"

	"repro/internal/xrand"
)

// Kind names the overlay families this package can construct by name,
// so experiment drivers, scenario specs and CLI flags share one
// vocabulary.
type Kind string

// Supported overlay kinds. Complete and 20-regular random are the two
// the paper evaluates; the rest quantify sensitivity to less random
// overlays.
const (
	KindComplete   Kind = "complete"
	KindKRegular   Kind = "kregular"
	KindRandomView Kind = "view"
	KindRing       Kind = "ring"
	KindSmallWorld Kind = "smallworld"
	KindScaleFree  Kind = "scalefree"
)

// Kinds lists every supported overlay kind in display order.
func Kinds() []Kind {
	return []Kind{KindComplete, KindKRegular, KindRandomView, KindRing, KindSmallWorld, KindScaleFree}
}

// Build constructs the named overlay on n nodes. view is the
// degree/view-size parameter where applicable (the paper uses 20).
// Generators that need randomness consume it from rng in a fixed order,
// so a Build call is deterministic per seed.
func Build(kind Kind, n, view int, rng *xrand.Rand) (Graph, error) {
	switch kind {
	case KindComplete:
		return NewComplete(n)
	case KindKRegular:
		return NewKRegular(n, view, rng)
	case KindRandomView:
		return NewRandomView(n, view, rng)
	case KindRing:
		return NewRing(n)
	case KindSmallWorld:
		return NewWattsStrogatz(n, view, 0.1, rng)
	case KindScaleFree:
		return NewBarabasiAlbert(n, max(1, view/2), rng)
	default:
		return nil, fmt.Errorf("topology: unknown kind %q", kind)
	}
}
