// Package xrand provides small, fast, deterministic random number
// generators and the sampling routines the aggregation experiments need
// (uniform, exponential, normal and Poisson variates, shuffles and
// subset sampling).
//
// Everything in this package is seedable and reproducible: two generators
// created with the same seed produce identical streams on every platform.
// The experiment harness relies on that property so that every figure can
// be regenerated bit-for-bit.
//
// The generators are NOT safe for concurrent use; give each goroutine its
// own stream (see Split).
package xrand

import "math"

// splitmix64 advances the 64-bit SplitMix64 state and returns the next
// output. It is used both as a standalone seeder and to initialize
// xoshiro256** state from a single word.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** pseudo random number generator.
// The zero value is NOT valid; construct with New.
type Rand struct {
	s [4]uint64

	// cached normal variate produced by the Box-Muller pair.
	haveGauss bool
	gauss     float64
}

// New returns a generator seeded from the given seed. Any seed value,
// including zero, yields a well-mixed internal state.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return &r
}

// Split derives an independent generator from r in a deterministic way.
// It is the supported way to hand one RNG per goroutine or per node while
// keeping the whole experiment reproducible from a single master seed.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0,
// mirroring math/rand, because a non-positive bound is always a caller bug.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn bound must be positive")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method (no modulo bias).
func (r *Rand) boundedUint64(n uint64) uint64 {
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed variate with rate 1
// (mean 1), via inverse transform sampling.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the Box-Muller transform; pairs are cached so the cost is one transform
// per two variates.
func (r *Rand) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.haveGauss = true
	return radius * math.Cos(theta)
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product-of-uniforms method; for large lambda the PTRS
// transformed-rejection method would be faster but lambda stays tiny
// (≤ 2) in this codebase, so simplicity wins.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		limit := math.Exp(-lambda)
		product := r.Float64()
		n := 0
		for product > limit {
			product *= r.Float64()
			n++
		}
		return n
	}
	// Normal approximation with continuity correction for large lambda;
	// adequate for the rare large-lambda uses in tests.
	v := lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Shuffle pseudo-randomizes the order of n elements using Fisher-Yates,
// calling swap(i, j) for each exchange.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// SampleDistinct returns k distinct uniform values from [0, n), excluding
// the value excl (pass a negative excl to exclude nothing). It panics if
// fewer than k candidates exist. For k much smaller than n it uses
// rejection sampling; otherwise it falls back to a partial Fisher-Yates.
func (r *Rand) SampleDistinct(n, k, excl int) []int {
	avail := n
	if excl >= 0 && excl < n {
		avail--
	}
	if k > avail {
		panic("xrand: SampleDistinct k exceeds candidate count")
	}
	if k*3 < n {
		out := make([]int, 0, k)
		seen := make(map[int]struct{}, k)
		for len(out) < k {
			v := r.Intn(n)
			if v == excl {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	pool := make([]int, 0, avail)
	for v := 0; v < n; v++ {
		if v != excl {
			pool = append(pool, v)
		}
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:k:k]
}
