package xrand

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("zero seed produced %d zero outputs; state not mixed", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split()
	s2 := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical outputs", same)
	}
}

func TestMul64MatchesBits(t *testing.T) {
	check := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		wantHi, wantLo := bits.Mul64(x, y)
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	check := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ≈ %.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		sum += f
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f, want ≈ 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(6)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	trues := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	if frac := float64(trues) / 100000; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %.4f", frac)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(8)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %g", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %.4f, want ≈ 1", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("exponential variance %.4f, want ≈ 1", variance)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %.4f, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %.4f, want ≈ 1", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(10)
	for _, lambda := range []float64{0.5, 1, 2, 5} {
		const draws = 100000
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.02 {
			t.Errorf("Poisson(%g) mean %.4f", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.05 {
			t.Errorf("Poisson(%g) variance %.4f", lambda, variance)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := New(12)
	if v := r.Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %d, want 0", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", v)
	}
	// Large-lambda branch sanity: mean within 5%.
	const draws = 20000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Poisson(100))
	}
	if mean := sum / draws; math.Abs(mean-100) > 5 {
		t.Errorf("Poisson(100) mean %.2f", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	check := func(nRaw uint8) bool {
		n := int(nRaw%100) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	r := New(14)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for d := 0; d < draws; d++ {
		vals := []int{0, 1, 2, 3, 4}
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		counts[vals[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d first %d times, want ≈ %.0f", v, c, want)
		}
	}
}

func TestSampleDistinctProperties(t *testing.T) {
	r := New(15)
	check := func(nRaw, kRaw uint8, exclRaw int8) bool {
		n := int(nRaw%50) + 2
		excl := int(exclRaw) % n
		avail := n
		if excl >= 0 {
			avail--
		}
		k := int(kRaw) % (avail + 1)
		out := r.SampleDistinct(n, k, excl)
		if len(out) != k {
			return false
		}
		seen := make(map[int]struct{}, k)
		for _, v := range out {
			if v < 0 || v >= n || v == excl {
				return false
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinctPanicsWhenImpossible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleDistinct did not panic when k > candidates")
		}
	}()
	New(1).SampleDistinct(3, 3, 0)
}

func TestSampleDistinctFullPool(t *testing.T) {
	r := New(16)
	out := r.SampleDistinct(5, 4, 2) // forces the Fisher-Yates branch
	if len(out) != 4 {
		t.Fatalf("got %d samples, want 4", len(out))
	}
	for _, v := range out {
		if v == 2 {
			t.Fatal("excluded value sampled")
		}
	}
}
