package eventsim

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

func gaussian(n int, rng *xrand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func mustComplete(t testing.TB, n int) topology.Graph {
	t.Helper()
	g, err := topology.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidation(t *testing.T) {
	rng := xrand.New(1)
	g := mustComplete(t, 10)
	if _, err := Run(Config{Values: gaussian(10, rng)}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(Config{Graph: g, Values: gaussian(5, rng)}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Run(Config{Graph: g, Values: gaussian(10, rng), Wait: WaitKind(9)}); err == nil {
		t.Error("unknown wait kind accepted")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	rng := xrand.New(2)
	g := mustComplete(t, 100)
	values := gaussian(100, rng)
	run := func() *Result {
		r, err := Run(Config{Graph: g, Values: values, Cycles: 10, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Exchanges != b.Exchanges {
		t.Fatalf("exchange counts differ: %d vs %d", a.Exchanges, b.Exchanges)
	}
	for i := range a.Variances {
		if a.Variances[i] != b.Variances[i] {
			t.Fatalf("variance trajectories differ at %d", i)
		}
	}
}

func TestMassConservation(t *testing.T) {
	rng := xrand.New(3)
	g := mustComplete(t, 500)
	values := gaussian(500, rng)
	wantMean := stats.Mean(values)
	for _, wait := range []WaitKind{ConstantWait, ExponentialWait} {
		res, err := Run(Config{Graph: g, Values: values, Wait: wait, Cycles: 15, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.FinalMean-wantMean) > 1e-12*math.Max(1, math.Abs(wantMean))+1e-12 {
			t.Errorf("%v: mean drifted %.15g → %.15g", wait, wantMean, res.FinalMean)
		}
	}
}

func TestVarianceSnapshotCount(t *testing.T) {
	rng := xrand.New(5)
	g := mustComplete(t, 50)
	res, err := Run(Config{Graph: g, Values: gaussian(50, rng), Cycles: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variances) != 13 {
		t.Fatalf("got %d snapshots, want 13", len(res.Variances))
	}
}

// measureRate returns the mean per-Δt variance reduction over the first
// cycles of repeated runs.
func measureRate(t *testing.T, wait WaitKind, n, runs int, seed uint64) float64 {
	t.Helper()
	var acc stats.Running
	for run := 0; run < runs; run++ {
		rng := xrand.New(seed + uint64(run)*104729)
		g := mustComplete(t, n)
		res, err := Run(Config{
			Graph:  g,
			Values: gaussian(n, rng),
			Wait:   wait,
			Cycles: 8,
			Seed:   seed + uint64(run)*7919,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Geometric mean over the sampled trajectory.
		first, last := res.Variances[0], res.Variances[len(res.Variances)-1]
		if first > 0 && last > 0 {
			acc.Add(math.Pow(last/first, 1.0/8))
		}
	}
	return acc.Mean()
}

func TestConstantWaitMatchesSeqRate(t *testing.T) {
	// §1.1: constant Δt ⇒ every node initiates exactly once per unit
	// time ⇒ GETPAIR_SEQ dynamics ⇒ rate ≈ 1/(2√e).
	got := measureRate(t, ConstantWait, 5000, 8, 10)
	if got < 0.28 || got > 0.33 {
		t.Fatalf("constant-wait rate %.4f, want ≈ 0.30", got)
	}
}

func TestExponentialWaitMatchesRandRate(t *testing.T) {
	// §3.3.2: exponential waiting times reproduce GETPAIR_RAND ⇒ rate
	// ≈ 1/e.
	got := measureRate(t, ExponentialWait, 5000, 8, 11)
	if math.Abs(got-1/math.E) > 0.02 {
		t.Fatalf("exponential-wait rate %.4f, want ≈ %.4f", got, 1/math.E)
	}
}

func TestWaitingPolicyOrdering(t *testing.T) {
	// Constant waits must beat exponential waits — the practical
	// protocol's advantage over fully random activation.
	constant := measureRate(t, ConstantWait, 3000, 6, 12)
	exponential := measureRate(t, ExponentialWait, 3000, 6, 13)
	if constant >= exponential {
		t.Fatalf("constant %.4f not faster than exponential %.4f", constant, exponential)
	}
}

func TestExchangeCountMatchesRate(t *testing.T) {
	// Constant wait: each node initiates once per Δt ⇒ ≈ n·cycles
	// exchanges total.
	rng := xrand.New(14)
	n, cycles := 1000, 10
	g := mustComplete(t, n)
	res, err := Run(Config{Graph: g, Values: gaussian(n, rng), Cycles: cycles, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	want := n * cycles
	if res.Exchanges < want*9/10 || res.Exchanges > want*11/10 {
		t.Fatalf("exchanges = %d, want ≈ %d", res.Exchanges, want)
	}
}

func TestLossReducesExchangesAndSlows(t *testing.T) {
	rng := xrand.New(16)
	n := 2000
	g := mustComplete(t, n)
	values := gaussian(n, rng)
	lossless, err := Run(Config{Graph: g, Values: values, Cycles: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Run(Config{Graph: g, Values: values, Cycles: 10, LossProb: 0.5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Exchanges >= lossless.Exchanges {
		t.Fatalf("loss did not reduce exchanges: %d vs %d", lossy.Exchanges, lossless.Exchanges)
	}
	llRatio := lossless.Variances[10] / lossless.Variances[0]
	lsRatio := lossy.Variances[10] / lossy.Variances[0]
	if lsRatio <= llRatio {
		t.Fatalf("loss did not slow convergence: %g vs %g", lsRatio, llRatio)
	}
	// Symmetric loss conserves mass exactly.
	if math.Abs(lossy.FinalMean-stats.Mean(values)) > 1e-12 {
		t.Fatal("symmetric loss violated mass conservation")
	}
}

func TestRunsOnRandomGraph(t *testing.T) {
	rng := xrand.New(18)
	g, err := topology.NewKRegular(2000, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Graph: g, Values: gaussian(2000, rng), Cycles: 10, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := res.Variances[10] / res.Variances[0]; ratio > 1e-4 {
		t.Fatalf("20-regular event sim stuck: ratio %g", ratio)
	}
}
