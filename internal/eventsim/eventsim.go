// Package eventsim is a discrete-event simulator of the asynchronous
// protocol (Figure 1): every node wakes after a waiting time drawn from
// GETWAITINGTIME, samples a random neighbor and performs the elementary
// exchange. Unlike internal/avg (which iterates the synchronized AVG
// abstraction) the event simulator has no global cycles — nodes are
// autonomous, exactly as §1.1 describes — yet it still runs at
// 100 000-node scale because exchanges are zero-time events on a
// simulated clock (the paper's §2 communication model).
//
// Its purpose is to validate the paper's waiting-time claims: constant
// waits make the pair sequence behave like GETPAIR_SEQ (rate 1/(2√e)
// per Δt), exponential waits with mean Δt make it behave like
// GETPAIR_RAND (rate 1/e per Δt) — §3.3.2: "a given node can approximate
// this behavior by waiting for a time interval randomly drawn from this
// distribution".
package eventsim

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// WaitKind selects the GETWAITINGTIME distribution.
type WaitKind int

// Waiting-time distributions of §1.1.
const (
	// ConstantWait returns Δt always; the induced pair stream is
	// GETPAIR_SEQ-like.
	ConstantWait WaitKind = iota + 1
	// ExponentialWait draws Exp(mean Δt); the induced pair stream is
	// GETPAIR_RAND-like (Poisson exchange arrivals).
	ExponentialWait
)

// String returns the kind's name.
func (k WaitKind) String() string {
	switch k {
	case ConstantWait:
		return "constant"
	case ExponentialWait:
		return "exponential"
	default:
		return fmt.Sprintf("waitkind(%d)", int(k))
	}
}

// Config parameterizes one event-driven run. Time is measured in units
// of Δt (the cycle length), so variance snapshots land at integer times.
type Config struct {
	// Graph is the overlay (required).
	Graph topology.Graph
	// Values is the initial vector; length must equal the graph size.
	Values []float64
	// Wait selects the waiting-time distribution (default ConstantWait).
	Wait WaitKind
	// Cycles is the simulated horizon in units of Δt (default 30).
	Cycles int
	// LossProb drops an exchange entirely with this probability — the
	// zero-time event model cannot lose only half an exchange, so this
	// is the symmetric-loss model (compare internal/avg's asymmetric
	// reply loss).
	LossProb float64
	// Seed makes the run reproducible.
	Seed uint64
}

// Result reports one event-driven run.
type Result struct {
	// Variances holds σ² sampled at t = 0, Δt, 2Δt, … (length Cycles+1).
	Variances []float64
	// Exchanges is the total number of performed exchanges.
	Exchanges int
	// FinalMean is the vector mean at the horizon (conserved under
	// lossless execution).
	FinalMean float64
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("eventsim: config needs a Graph")
	}
	n := cfg.Graph.Size()
	if len(cfg.Values) != n {
		return nil, fmt.Errorf("eventsim: vector length %d does not match graph size %d", len(cfg.Values), n)
	}
	if cfg.Wait == 0 {
		cfg.Wait = ConstantWait
	}
	if cfg.Wait != ConstantWait && cfg.Wait != ExponentialWait {
		return nil, fmt.Errorf("eventsim: unknown wait kind %v", cfg.Wait)
	}
	if cfg.Cycles <= 0 {
		cfg.Cycles = 30
	}

	rng := xrand.New(cfg.Seed)
	values := make([]float64, n)
	copy(values, cfg.Values)

	wait := func() float64 {
		if cfg.Wait == ExponentialWait {
			return rng.ExpFloat64()
		}
		return 1
	}

	// Wake events, one per node, kept in a binary min-heap on time.
	// Initial phases make each node's initiation process stationary from
	// t = 0: uniform in [0, Δt) for constant waits (§1.1: autonomous
	// nodes have no common starting gun), exponential for exponential
	// waits (the memoryless process's stationary first-arrival time).
	h := newEventHeap(n)
	for i := 0; i < n; i++ {
		var phase float64
		if cfg.Wait == ExponentialWait {
			phase = rng.ExpFloat64() // memoryless: residual wait is Exp
		} else {
			phase = rng.Float64() // uniform phase within the cycle
		}
		h.push(event{at: phase, node: int32(i)})
	}

	res := &Result{Variances: make([]float64, 0, cfg.Cycles+1)}
	res.Variances = append(res.Variances, stats.Variance(values))
	horizon := float64(cfg.Cycles)
	nextSample := 1.0

	for {
		ev := h.pop()
		for nextSample <= ev.at && nextSample <= horizon {
			res.Variances = append(res.Variances, stats.Variance(values))
			nextSample++
		}
		if ev.at >= horizon {
			break
		}
		i := int(ev.node)
		if j, ok := cfg.Graph.RandomNeighbor(i, rng); ok {
			if cfg.LossProb == 0 || !rng.Bool(cfg.LossProb) {
				m := (values[i] + values[j]) / 2
				values[i] = m
				values[j] = m
				res.Exchanges++
			}
		}
		h.push(event{at: ev.at + wait(), node: ev.node})
	}
	for nextSample <= horizon {
		res.Variances = append(res.Variances, stats.Variance(values))
		nextSample++
	}
	res.FinalMean = stats.Mean(values)
	return res, nil
}

// event is one scheduled node wake-up.
type event struct {
	at   float64
	node int32
}

// eventHeap is a binary min-heap on event.at. Hand-rolled rather than
// container/heap to keep the hot loop free of interface allocations.
type eventHeap struct {
	items []event
}

func newEventHeap(capacity int) *eventHeap {
	return &eventHeap{items: make([]event, 0, capacity)}
}

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].at <= h.items[i].at {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < last && h.items[left].at < h.items[smallest].at {
			smallest = left
		}
		if right < last && h.items[right].at < h.items[smallest].at {
			smallest = right
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// len reports the heap size (used by tests).
func (h *eventHeap) len() int { return len(h.items) }
