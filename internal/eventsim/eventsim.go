// Package eventsim is a discrete-event simulator of the asynchronous
// protocol (Figure 1): every node wakes after a waiting time drawn from
// GETWAITINGTIME, samples a random neighbor and performs the elementary
// exchange. Unlike internal/avg (which iterates the synchronized AVG
// abstraction) the event simulator has no global cycles — nodes are
// autonomous, exactly as §1.1 describes — yet it still runs at
// 100 000-node scale because exchanges are zero-time events on a
// simulated clock (the paper's §2 communication model).
//
// Its purpose is to validate the paper's waiting-time claims: constant
// waits make the pair sequence behave like GETPAIR_SEQ (rate 1/(2√e)
// per Δt), exponential waits with mean Δt make it behave like
// GETPAIR_RAND (rate 1/e per Δt) — §3.3.2: "a given node can approximate
// this behavior by waiting for a time interval randomly drawn from this
// distribution".
//
// The event loop itself — wake heap, waiting-time policies and the
// elementary exchange — lives in the unified kernel (internal/sim,
// Kernel.RunEvents); this package is the configuration adapter and
// keeps the historical draw order, so fixed seeds reproduce the
// pre-kernel trajectories bit for bit.
package eventsim

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// WaitKind selects the GETWAITINGTIME distribution.
type WaitKind int

// Waiting-time distributions of §1.1.
const (
	// ConstantWait returns Δt always; the induced pair stream is
	// GETPAIR_SEQ-like.
	ConstantWait WaitKind = iota + 1
	// ExponentialWait draws Exp(mean Δt); the induced pair stream is
	// GETPAIR_RAND-like (Poisson exchange arrivals).
	ExponentialWait
)

// String returns the kind's name.
func (k WaitKind) String() string {
	switch k {
	case ConstantWait:
		return "constant"
	case ExponentialWait:
		return "exponential"
	default:
		return fmt.Sprintf("waitkind(%d)", int(k))
	}
}

// Config parameterizes one event-driven run. Time is measured in units
// of Δt (the cycle length), so variance snapshots land at integer times.
type Config struct {
	// Graph is the overlay (required).
	Graph topology.Graph
	// Values is the initial vector; length must equal the graph size.
	Values []float64
	// Wait selects the waiting-time distribution (default ConstantWait).
	Wait WaitKind
	// Cycles is the simulated horizon in units of Δt (default 30).
	Cycles int
	// LossProb drops an exchange entirely with this probability — the
	// zero-time event model cannot lose only half an exchange, so this
	// is the symmetric-loss model (compare internal/avg's asymmetric
	// reply loss).
	LossProb float64
	// Seed makes the run reproducible.
	Seed uint64
}

// Result reports one event-driven run.
type Result struct {
	// Variances holds σ² sampled at t = 0, Δt, 2Δt, … (length Cycles+1).
	Variances []float64
	// Exchanges is the total number of performed exchanges.
	Exchanges int
	// FinalMean is the vector mean at the horizon (conserved under
	// lossless execution).
	FinalMean float64
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("eventsim: config needs a Graph")
	}
	n := cfg.Graph.Size()
	if len(cfg.Values) != n {
		return nil, fmt.Errorf("eventsim: vector length %d does not match graph size %d", len(cfg.Values), n)
	}
	if cfg.Wait == 0 {
		cfg.Wait = ConstantWait
	}
	var wait sim.WaitPolicy
	switch cfg.Wait {
	case ConstantWait:
		wait = sim.ConstantWait{}
	case ExponentialWait:
		wait = sim.ExponentialWait{}
	default:
		return nil, fmt.Errorf("eventsim: unknown wait kind %v", cfg.Wait)
	}
	if cfg.Cycles <= 0 {
		cfg.Cycles = 30
	}

	kern, err := sim.New(sim.Config{
		Graph: cfg.Graph,
		Wait:  wait,
		Loss:  sim.SymmetricLoss{P: cfg.LossProb},
		RNG:   xrand.New(cfg.Seed),
	})
	if err != nil {
		return nil, fmt.Errorf("eventsim: %w", err)
	}
	if err := kern.SetValues(0, cfg.Values); err != nil {
		return nil, fmt.Errorf("eventsim: %w", err)
	}

	res := &Result{Variances: make([]float64, 0, cfg.Cycles+1)}
	res.Variances = append(res.Variances, stats.Variance(kern.Column(0)))
	exchanges, err := kern.RunEvents(context.Background(), cfg.Cycles, func() {
		res.Variances = append(res.Variances, stats.Variance(kern.Column(0)))
	})
	if err != nil {
		return nil, fmt.Errorf("eventsim: %w", err)
	}
	res.Exchanges = exchanges
	res.FinalMean = stats.Mean(kern.Column(0))
	return res, nil
}
