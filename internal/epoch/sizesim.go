package epoch

import (
	"context"
	"fmt"
	"math"

	"repro/internal/churn"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// SizeSimConfig parameterizes the cycle-driven reproduction of the
// paper's Figure 4 experiment: anti-entropy counting under churn with
// epoch restarts.
type SizeSimConfig struct {
	// InitialSize is the number of nodes at cycle 0.
	InitialSize int
	// EpochCycles is the epoch length k in cycles (30 in the paper).
	EpochCycles int
	// TotalCycles is the experiment horizon (1000 in the paper).
	TotalCycles int
	// Instances is the number of concurrent size-estimation instances
	// per epoch, each led by a distinct leader node whose indicator
	// starts at 1 (§4 allows several to bound estimator variance).
	// A node's estimate combines its instances: N̂ = Instances / Σ_t x_t.
	Instances int
	// Leader, when non-nil, replaces the exact Instances count with the
	// paper's probabilistic election: at each epoch start every node
	// leads its own instance per the policy (fed the previous epoch's
	// mean estimate). An epoch that elects nobody falls back to one
	// random leader so the estimate stream never stalls.
	Leader LeaderPolicy
	// Churn prescribes per-cycle node removal and addition. Nodes added
	// mid-epoch wait for the next epoch before participating, per §4.
	Churn churn.Schedule
	// Seed makes the run reproducible.
	Seed uint64
}

// validate normalizes and checks the configuration.
func (c *SizeSimConfig) validate() error {
	if c.InitialSize < 4 {
		return fmt.Errorf("epoch: size sim needs InitialSize ≥ 4, got %d", c.InitialSize)
	}
	if c.EpochCycles < 1 {
		return fmt.Errorf("epoch: size sim needs EpochCycles ≥ 1, got %d", c.EpochCycles)
	}
	if c.TotalCycles < c.EpochCycles {
		return fmt.Errorf("epoch: TotalCycles %d shorter than one epoch (%d)", c.TotalCycles, c.EpochCycles)
	}
	if c.Instances < 1 {
		c.Instances = 1
	}
	if c.Churn.Model == nil {
		c.Churn.Model = churn.Constant{N: c.InitialSize}
	}
	return nil
}

// EpochReport is the converged output of one epoch, the data behind one
// x-position of Figure 4.
type EpochReport struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// EndCycle is the cycle at which the epoch's estimates were read.
	EndCycle int
	// SizeAtStart is the actual network size (participants + waiting
	// joiners) when the epoch began — the quantity the epoch's estimate
	// describes, since joiners are excluded from the running epoch.
	SizeAtStart int
	// SizeAtEnd is the actual network size when the epoch ended.
	SizeAtEnd int
	// Participants is how many nodes survived the full epoch and
	// therefore report an estimate.
	Participants int
	// EstimateMean, EstimateMin and EstimateMax summarize the size
	// estimates across participants (the error bars of Figure 4).
	EstimateMean, EstimateMin, EstimateMax float64
}

// RunSizeSim executes the Figure 4 scenario and returns one report per
// completed epoch.
//
// The gossip itself runs inside the unified kernel (internal/sim):
// participants are kernel nodes, each estimation instance is one
// average column of the kernel's structure-of-arrays state, and
// epoch restarts reshape the columns in place. The RNG is consumed in
// the historical order, so fixed seeds reproduce the pre-kernel
// reports bit for bit.
func RunSizeSim(cfg SizeSimConfig) ([]EpochReport, error) {
	return RunSizeSimContext(context.Background(), cfg)
}

// RunSizeSimContext is RunSizeSim with cooperative cancellation: the
// context is checked once per gossip cycle, so long churned horizons
// stop within one cycle of a cancel. Reports from completed epochs are
// discarded; the context's error is returned.
func RunSizeSimContext(ctx context.Context, cfg SizeSimConfig) ([]EpochReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	kern, err := sim.New(sim.Config{Size: cfg.InitialSize, RNG: rng})
	if err != nil {
		return nil, fmt.Errorf("epoch: build kernel: %w", err)
	}
	s := &sizeSim{cfg: cfg, rng: rng, kern: kern, prevEstimate: math.NaN()}

	var reports []EpochReport
	epochs := cfg.TotalCycles / cfg.EpochCycles
	cycle := 0
	for e := 0; e < epochs; e++ {
		s.startEpoch()
		startSize := s.kern.Size() + s.pending
		for k := 0; k < cfg.EpochCycles; k++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s.applyChurn(cycle)
			s.kern.Cycle() // one GETPAIR_SEQ gossip cycle over participants
			cycle++
		}
		mean, lo, hi, n := s.estimates()
		s.prevEstimate = mean
		reports = append(reports, EpochReport{
			Epoch:        e,
			EndCycle:     cycle,
			SizeAtStart:  startSize,
			SizeAtEnd:    s.kern.Size() + s.pending,
			Participants: n,
			EstimateMean: mean,
			EstimateMin:  lo,
			EstimateMax:  hi,
		})
	}
	return reports, nil
}

// sizeSim is the mutable simulation state. Participants live in the
// kernel (one indicator column per instance); waiting joiners carry no
// state and are tracked as a count.
type sizeSim struct {
	cfg          SizeSimConfig
	rng          *xrand.Rand
	kern         *sim.Kernel
	pending      int
	prevEstimate float64
}

// startEpoch admits waiting joiners, resets every indicator to 0 and
// elects the epoch's leaders: one distinct leader per instance in exact
// mode, or per the probabilistic policy when one is configured.
func (s *sizeSim) startEpoch() {
	instances := s.cfg.Instances
	if s.cfg.Leader != nil {
		leaders := 0
		population := s.kern.Size() + s.pending
		for i := 0; i < population; i++ {
			if s.cfg.Leader.Lead(s.rng, s.prevEstimate) {
				leaders++
			}
		}
		if leaders == 0 {
			leaders = 1
		}
		instances = leaders
	}

	n := s.kern.Size() + s.pending
	s.pending = 0
	s.kern.ReshapeAvg(instances, n)
	chosen := s.rng.SampleDistinct(n, min(instances, n), -1)
	for t, leader := range chosen {
		s.kern.Column(t)[leader] = 1
	}
}

// applyChurn removes and adds nodes per the schedule. Removals hit the
// whole population (participants and waiting joiners) uniformly; removed
// participants take their indicator mass with them — the perturbation
// the restart mechanism exists to absorb. Additions enter the waiting
// pool.
func (s *sizeSim) applyChurn(cycle int) {
	plan := s.cfg.Churn.At(cycle, s.kern.Size()+s.pending)
	for r := 0; r < plan.Remove; r++ {
		total := s.kern.Size() + s.pending
		if total <= 2 {
			break
		}
		pick := s.rng.Intn(total)
		if pick < s.kern.Size() {
			if s.kern.Size() <= 2 {
				// Keep at least two participants so exchanges remain
				// possible; shed a waiting joiner instead if any.
				if s.pending > 0 {
					s.pending--
				}
				continue
			}
			s.kern.RemoveNode(pick)
		} else {
			s.pending--
		}
	}
	s.pending += plan.Add
}

// estimates decodes each participant's size estimate
// N̂ = Instances / Σ_t x_t and summarizes across participants.
func (s *sizeSim) estimates() (mean, lo, hi float64, n int) {
	var acc stats.Running
	instances := s.kern.Fields()
	cols := make([][]float64, instances)
	for t := range cols {
		cols[t] = s.kern.Column(t)
	}
	for i := 0; i < s.kern.Size(); i++ {
		sum := 0.0
		for t := 0; t < instances; t++ {
			sum += cols[t][i]
		}
		if sum <= 0 {
			continue // instance mass lost entirely; no estimate
		}
		est := float64(instances) / sum
		if math.IsInf(est, 0) || math.IsNaN(est) {
			continue
		}
		acc.Add(est)
	}
	if acc.N() == 0 {
		return math.NaN(), math.NaN(), math.NaN(), 0
	}
	return acc.Mean(), acc.Min(), acc.Max(), acc.N()
}
