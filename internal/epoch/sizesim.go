package epoch

import (
	"fmt"
	"math"

	"repro/internal/churn"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// SizeSimConfig parameterizes the cycle-driven reproduction of the
// paper's Figure 4 experiment: anti-entropy counting under churn with
// epoch restarts.
type SizeSimConfig struct {
	// InitialSize is the number of nodes at cycle 0.
	InitialSize int
	// EpochCycles is the epoch length k in cycles (30 in the paper).
	EpochCycles int
	// TotalCycles is the experiment horizon (1000 in the paper).
	TotalCycles int
	// Instances is the number of concurrent size-estimation instances
	// per epoch, each led by a distinct leader node whose indicator
	// starts at 1 (§4 allows several to bound estimator variance).
	// A node's estimate combines its instances: N̂ = Instances / Σ_t x_t.
	Instances int
	// Leader, when non-nil, replaces the exact Instances count with the
	// paper's probabilistic election: at each epoch start every node
	// leads its own instance per the policy (fed the previous epoch's
	// mean estimate). An epoch that elects nobody falls back to one
	// random leader so the estimate stream never stalls.
	Leader LeaderPolicy
	// Churn prescribes per-cycle node removal and addition. Nodes added
	// mid-epoch wait for the next epoch before participating, per §4.
	Churn churn.Schedule
	// Seed makes the run reproducible.
	Seed uint64
}

// validate normalizes and checks the configuration.
func (c *SizeSimConfig) validate() error {
	if c.InitialSize < 4 {
		return fmt.Errorf("epoch: size sim needs InitialSize ≥ 4, got %d", c.InitialSize)
	}
	if c.EpochCycles < 1 {
		return fmt.Errorf("epoch: size sim needs EpochCycles ≥ 1, got %d", c.EpochCycles)
	}
	if c.TotalCycles < c.EpochCycles {
		return fmt.Errorf("epoch: TotalCycles %d shorter than one epoch (%d)", c.TotalCycles, c.EpochCycles)
	}
	if c.Instances < 1 {
		c.Instances = 1
	}
	if c.Churn.Model == nil {
		c.Churn.Model = churn.Constant{N: c.InitialSize}
	}
	return nil
}

// EpochReport is the converged output of one epoch, the data behind one
// x-position of Figure 4.
type EpochReport struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// EndCycle is the cycle at which the epoch's estimates were read.
	EndCycle int
	// SizeAtStart is the actual network size (participants + waiting
	// joiners) when the epoch began — the quantity the epoch's estimate
	// describes, since joiners are excluded from the running epoch.
	SizeAtStart int
	// SizeAtEnd is the actual network size when the epoch ended.
	SizeAtEnd int
	// Participants is how many nodes survived the full epoch and
	// therefore report an estimate.
	Participants int
	// EstimateMean, EstimateMin and EstimateMax summarize the size
	// estimates across participants (the error bars of Figure 4).
	EstimateMean, EstimateMin, EstimateMax float64
}

// RunSizeSim executes the Figure 4 scenario and returns one report per
// completed epoch.
func RunSizeSim(cfg SizeSimConfig) ([]EpochReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	sim := &sizeSim{cfg: cfg, rng: rng, pending: 0, prevEstimate: math.NaN()}
	sim.states = make([][]float64, cfg.InitialSize)
	for i := range sim.states {
		sim.states[i] = make([]float64, cfg.Instances)
	}

	var reports []EpochReport
	epochs := cfg.TotalCycles / cfg.EpochCycles
	cycle := 0
	for e := 0; e < epochs; e++ {
		sim.startEpoch()
		startSize := len(sim.states) + sim.pending
		for k := 0; k < cfg.EpochCycles; k++ {
			sim.applyChurn(cycle)
			sim.gossipCycle()
			cycle++
		}
		mean, lo, hi, n := sim.estimates()
		sim.prevEstimate = mean
		reports = append(reports, EpochReport{
			Epoch:        e,
			EndCycle:     cycle,
			SizeAtStart:  startSize,
			SizeAtEnd:    len(sim.states) + sim.pending,
			Participants: n,
			EstimateMean: mean,
			EstimateMin:  lo,
			EstimateMax:  hi,
		})
	}
	return reports, nil
}

// sizeSim is the mutable simulation state. Participants carry one
// indicator value per instance; waiting joiners carry no state and are
// tracked as a count.
type sizeSim struct {
	cfg          SizeSimConfig
	rng          *xrand.Rand
	states       [][]float64
	pending      int
	prevEstimate float64
}

// startEpoch admits waiting joiners, resets every indicator to 0 and
// elects the epoch's leaders: one distinct leader per instance in exact
// mode, or per the probabilistic policy when one is configured.
func (s *sizeSim) startEpoch() {
	instances := s.cfg.Instances
	var leaders []int
	if s.cfg.Leader != nil {
		for i := 0; i < len(s.states)+s.pending; i++ {
			if s.cfg.Leader.Lead(s.rng, s.prevEstimate) {
				leaders = append(leaders, len(leaders))
			}
		}
		if len(leaders) == 0 {
			leaders = []int{0}
		}
		instances = len(leaders)
	}

	for ; s.pending > 0; s.pending-- {
		s.states = append(s.states, make([]float64, instances))
	}
	n := len(s.states)
	for i, st := range s.states {
		if len(st) != instances {
			s.states[i] = make([]float64, instances)
		} else {
			clear(st)
		}
	}
	chosen := s.rng.SampleDistinct(n, min(instances, n), -1)
	for t, leader := range chosen {
		s.states[leader][t] = 1
	}
}

// applyChurn removes and adds nodes per the schedule. Removals hit the
// whole population (participants and waiting joiners) uniformly; removed
// participants take their indicator mass with them — the perturbation
// the restart mechanism exists to absorb. Additions enter the waiting
// pool.
func (s *sizeSim) applyChurn(cycle int) {
	plan := s.cfg.Churn.At(cycle, len(s.states)+s.pending)
	for r := 0; r < plan.Remove; r++ {
		total := len(s.states) + s.pending
		if total <= 2 {
			break
		}
		pick := s.rng.Intn(total)
		if pick < len(s.states) {
			if len(s.states) <= 2 {
				// Keep at least two participants so exchanges remain
				// possible; shed a waiting joiner instead if any.
				if s.pending > 0 {
					s.pending--
				}
				continue
			}
			last := len(s.states) - 1
			s.states[pick] = s.states[last]
			s.states[last] = nil
			s.states = s.states[:last]
		} else {
			s.pending--
		}
	}
	s.pending += plan.Add
}

// gossipCycle performs one GETPAIR_SEQ-style cycle over participants:
// each node initiates one exchange with a uniformly random other
// participant and both adopt the per-instance averages.
func (s *sizeSim) gossipCycle() {
	n := len(s.states)
	if n < 2 {
		return
	}
	for i := 0; i < n; i++ {
		j := s.rng.Intn(n - 1)
		if j >= i {
			j++
		}
		a, b := s.states[i], s.states[j]
		for t := range a {
			m := (a[t] + b[t]) / 2
			a[t] = m
			b[t] = m
		}
	}
}

// estimates decodes each participant's size estimate
// N̂ = Instances / Σ_t x_t and summarizes across participants.
func (s *sizeSim) estimates() (mean, lo, hi float64, n int) {
	var acc stats.Running
	for _, st := range s.states {
		sum := 0.0
		for _, x := range st {
			sum += x
		}
		if sum <= 0 {
			continue // instance mass lost entirely; no estimate
		}
		est := float64(len(st)) / sum
		if math.IsInf(est, 0) || math.IsNaN(est) {
			continue
		}
		acc.Add(est)
	}
	if acc.N() == 0 {
		return math.NaN(), math.NaN(), math.NaN(), 0
	}
	return acc.Mean(), acc.Min(), acc.Max(), acc.N()
}
