package epoch

import (
	"math"
	"testing"
	"time"

	"repro/internal/churn"
)

func TestClockValidation(t *testing.T) {
	if _, err := NewClock(time.Now(), 0); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := NewClock(time.Now(), -time.Second); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestClockCurrent(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c, err := NewClock(start, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Time
		want uint64
	}{
		{start, 0},
		{start.Add(-time.Hour), 0}, // before start clamps to 0
		{start.Add(30 * time.Second), 0},
		{start.Add(time.Minute), 1},
		{start.Add(10*time.Minute + time.Second), 10},
	}
	for _, tc := range cases {
		if got := c.Current(tc.at); got != tc.want {
			t.Errorf("Current(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

func TestClockNextStart(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c, _ := NewClock(start, time.Minute)
	now := start.Add(90 * time.Second) // inside epoch 1
	id, wait := c.NextStart(now)
	if id != 2 {
		t.Fatalf("next id = %d, want 2", id)
	}
	if wait != 30*time.Second {
		t.Fatalf("wait = %v, want 30s", wait)
	}
	if c.Length() != time.Minute {
		t.Fatalf("length = %v", c.Length())
	}
}

func TestTrackerLocalRestart(t *testing.T) {
	tr := NewTracker(5)
	if tr.Current() != 5 {
		t.Fatalf("current = %d", tr.Current())
	}
	if got := tr.LocalRestart(); got != 6 || tr.Current() != 6 {
		t.Fatalf("LocalRestart → %d, current %d", got, tr.Current())
	}
}

func TestTrackerObserve(t *testing.T) {
	tr := NewTracker(3)
	if tr.Observe(2) {
		t.Fatal("older id switched the tracker")
	}
	if tr.Observe(3) {
		t.Fatal("same id switched the tracker")
	}
	if !tr.InSync(3) {
		t.Fatal("InSync(3) false")
	}
	if !tr.Observe(7) {
		t.Fatal("newer id did not switch")
	}
	if tr.Current() != 7 {
		t.Fatalf("current = %d, want 7", tr.Current())
	}
	if tr.InSync(3) {
		t.Fatal("stale id reported in sync")
	}
}

func TestSizeSimValidation(t *testing.T) {
	bad := []SizeSimConfig{
		{InitialSize: 2, EpochCycles: 10, TotalCycles: 100},
		{InitialSize: 100, EpochCycles: 0, TotalCycles: 100},
		{InitialSize: 100, EpochCycles: 50, TotalCycles: 10},
	}
	for i, cfg := range bad {
		if _, err := RunSizeSim(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSizeSimStableNetworkAccurate(t *testing.T) {
	// No churn: every epoch's estimate must be very close to N after 30
	// cycles of convergence (variance down by 0.30³⁰).
	reports, err := RunSizeSim(SizeSimConfig{
		InitialSize: 1000,
		EpochCycles: 30,
		TotalCycles: 150,
		Instances:   1,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(reports))
	}
	for _, r := range reports {
		if r.SizeAtStart != 1000 || r.SizeAtEnd != 1000 {
			t.Fatalf("epoch %d: size drifted to %d/%d", r.Epoch, r.SizeAtStart, r.SizeAtEnd)
		}
		if r.Participants != 1000 {
			t.Fatalf("epoch %d: %d participants", r.Epoch, r.Participants)
		}
		if math.Abs(r.EstimateMean-1000) > 5 {
			t.Errorf("epoch %d: estimate %.1f, want ≈ 1000", r.Epoch, r.EstimateMean)
		}
		if r.EstimateMin > r.EstimateMean || r.EstimateMax < r.EstimateMean {
			t.Errorf("epoch %d: min/mean/max ordering broken: %g/%g/%g",
				r.Epoch, r.EstimateMin, r.EstimateMean, r.EstimateMax)
		}
	}
}

func TestSizeSimMultipleInstancesTightens(t *testing.T) {
	run := func(instances int) float64 {
		reports, err := RunSizeSim(SizeSimConfig{
			InitialSize: 500,
			EpochCycles: 30,
			TotalCycles: 300,
			Instances:   instances,
			Seed:        2,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Mean absolute relative error across epochs.
		sum := 0.0
		for _, r := range reports {
			sum += math.Abs(r.EstimateMean-500) / 500
		}
		return sum / float64(len(reports))
	}
	one, eight := run(1), run(8)
	// Averaging eight instances should not be worse; allow noise slack.
	if eight > one+0.02 {
		t.Errorf("8 instances error %.4f vs 1 instance %.4f", eight, one)
	}
}

func TestSizeSimTracksOscillation(t *testing.T) {
	reports, err := RunSizeSim(SizeSimConfig{
		InitialSize: 1000,
		EpochCycles: 30,
		TotalCycles: 600,
		Instances:   1,
		Churn: churn.Schedule{
			Model:       churn.Oscillating{Min: 900, Max: 1100, Period: 200},
			Fluctuation: 10,
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The estimate at each epoch end should be within ~15 % of the size
	// at the epoch's start (the paper's one-epoch lag), not of its end.
	for _, r := range reports {
		if math.IsNaN(r.EstimateMean) {
			t.Fatalf("epoch %d produced NaN estimate", r.Epoch)
		}
		relErr := math.Abs(r.EstimateMean-float64(r.SizeAtStart)) / float64(r.SizeAtStart)
		if relErr > 0.15 {
			t.Errorf("epoch %d: estimate %.0f vs start size %d (err %.1f%%)",
				r.Epoch, r.EstimateMean, r.SizeAtStart, 100*relErr)
		}
	}
}

func TestSizeSimJoinersWaitForNextEpoch(t *testing.T) {
	// Pure growth: 50 joiners per cycle, no removals. Participants in
	// epoch e must equal the size at that epoch's start (the joiners
	// accumulated during the epoch wait), confirming the §4 join rule.
	reports, err := RunSizeSim(SizeSimConfig{
		InitialSize: 200,
		EpochCycles: 10,
		TotalCycles: 50,
		Instances:   1,
		Churn: churn.Schedule{
			Model: growthModel{start: 200, perCycle: 50},
		},
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Participants != r.SizeAtStart {
			t.Fatalf("epoch %d: %d participants, expected %d (size at start)",
				r.Epoch, r.Participants, r.SizeAtStart)
		}
		if r.SizeAtEnd != r.SizeAtStart+500 {
			t.Fatalf("epoch %d: end size %d, want %d", r.Epoch, r.SizeAtEnd, r.SizeAtStart+500)
		}
	}
}

// growthModel adds perCycle nodes every cycle, removing none.
type growthModel struct {
	start, perCycle int
}

func (g growthModel) TargetSize(cycle int) int { return g.start + g.perCycle*(cycle+1) }
func (g growthModel) Name() string             { return "growth" }

func TestSizeSimDefaultsChurnModel(t *testing.T) {
	// Nil churn model must default to constant size.
	reports, err := RunSizeSim(SizeSimConfig{
		InitialSize: 100,
		EpochCycles: 10,
		TotalCycles: 20,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.SizeAtEnd != 100 {
			t.Fatalf("size drifted with nil model: %d", r.SizeAtEnd)
		}
	}
}
