package epoch

import (
	"fmt"

	"repro/internal/xrand"
)

// LeaderPolicy decides, at the beginning of each epoch, whether a node
// starts its own size-estimation instance. §4: "we allow each node to
// become a leader at the beginning of each epoch with a sufficiently
// small probability that can also depend on the previous approximation
// of network size".
type LeaderPolicy interface {
	// Lead reports whether this node leads an instance this epoch.
	// prevEstimate is the node's size estimate from the previous epoch
	// (NaN or non-positive when none exists yet, e.g. the first epoch).
	Lead(rng *xrand.Rand, prevEstimate float64) bool
	// Name labels the policy in experiment output.
	Name() string
}

// FixedProbability leads with a constant per-epoch probability.
type FixedProbability struct {
	// P is the per-node leading probability per epoch.
	P float64
}

var _ LeaderPolicy = FixedProbability{}

// Lead implements LeaderPolicy.
func (f FixedProbability) Lead(rng *xrand.Rand, _ float64) bool { return rng.Bool(f.P) }

// Name implements LeaderPolicy.
func (f FixedProbability) Name() string { return fmt.Sprintf("fixed-%g", f.P) }

// TargetInstances adapts the leading probability to the previous size
// estimate so that the expected number of concurrent instances stays
// near Target regardless of network size: p = Target / N̂. Before any
// estimate exists, it falls back to Bootstrap.
type TargetInstances struct {
	// Target is the desired expected number of instances per epoch.
	Target float64
	// Bootstrap is the probability used while no estimate exists yet.
	Bootstrap float64
}

var _ LeaderPolicy = TargetInstances{}

// Lead implements LeaderPolicy.
func (t TargetInstances) Lead(rng *xrand.Rand, prevEstimate float64) bool {
	p := t.Bootstrap
	if prevEstimate > 0 && prevEstimate == prevEstimate { // not NaN
		p = t.Target / prevEstimate
	}
	return rng.Bool(p)
}

// Name implements LeaderPolicy.
func (t TargetInstances) Name() string {
	return fmt.Sprintf("target-%g", t.Target)
}
