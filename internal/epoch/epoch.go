// Package epoch implements the restart mechanism of Section 4: the
// protocol runs in consecutive epochs of fixed length; every epoch is a
// fresh instance of the aggregation protocol; joining nodes receive the
// next epoch identifier and wait for it; a message carrying a higher
// epoch identifier moves the receiver to the new epoch immediately, so a
// new epoch start spreads like an epidemic broadcast.
//
// The package also implements the paper's size-estimation application:
// within an epoch exactly one node per instance holds the initial value 1
// and all others hold 0, so the average converges to 1/N.
package epoch

import (
	"fmt"
	"time"
)

// Clock tracks epoch progression in real time for the asynchronous
// runtime. Epoch i spans [start + i·Length, start + (i+1)·Length).
// The zero value is not valid; use NewClock.
type Clock struct {
	start  time.Time
	length time.Duration
}

// NewClock returns a clock whose epoch 0 begins at start and whose epochs
// last length (must be positive).
func NewClock(start time.Time, length time.Duration) (*Clock, error) {
	if length <= 0 {
		return nil, fmt.Errorf("epoch: length must be positive, got %v", length)
	}
	return &Clock{start: start, length: length}, nil
}

// Current returns the epoch identifier containing now. Times before the
// clock's start map to epoch 0.
func (c *Clock) Current(now time.Time) uint64 {
	if !now.After(c.start) {
		return 0
	}
	return uint64(now.Sub(c.start) / c.length)
}

// NextStart returns the identifier of the next epoch and the remaining
// time until it begins — exactly the pair an existing node hands to a
// joiner ("the next epoch identifier and the amount of time left until
// the next run starts", §4).
func (c *Clock) NextStart(now time.Time) (id uint64, wait time.Duration) {
	cur := c.Current(now)
	startOfNext := c.start.Add(time.Duration(cur+1) * c.length)
	return cur + 1, startOfNext.Sub(now)
}

// Length returns the epoch length.
func (c *Clock) Length() time.Duration { return c.length }

// Tracker maintains a node's current epoch identifier with the paper's
// anti-drift rule: a locally scheduled restart advances by one, but a
// message tagged with a larger identifier jumps the node forward
// immediately. Tracker is a small value type; the engine embeds one per
// node under the node's own lock.
type Tracker struct {
	current uint64
}

// NewTracker starts at the given epoch identifier.
func NewTracker(id uint64) Tracker { return Tracker{current: id} }

// Current returns the node's epoch identifier.
func (t *Tracker) Current() uint64 { return t.current }

// LocalRestart advances to the next epoch due to the node's own timer and
// returns the new identifier.
func (t *Tracker) LocalRestart() uint64 {
	t.current++
	return t.current
}

// Observe processes an identifier seen on an incoming message. It returns
// true when the identifier is newer, in which case the node has switched
// epochs and must reset its protocol state. Messages from older epochs
// return false and must be ignored by the caller.
func (t *Tracker) Observe(id uint64) (switched bool) {
	if id > t.current {
		t.current = id
		return true
	}
	return false
}

// InSync reports whether a message identifier belongs to the node's
// current epoch.
func (t *Tracker) InSync(id uint64) bool { return id == t.current }
