package epoch

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestFixedProbabilityFrequency(t *testing.T) {
	rng := xrand.New(500)
	p := FixedProbability{P: 0.1}
	leads := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if p.Lead(rng, math.NaN()) {
			leads++
		}
	}
	if freq := float64(leads) / trials; math.Abs(freq-0.1) > 0.01 {
		t.Fatalf("lead frequency %.4f, want ≈ 0.1", freq)
	}
	if p.Name() == "" {
		t.Error("empty policy name")
	}
}

func TestTargetInstancesAdapts(t *testing.T) {
	rng := xrand.New(501)
	p := TargetInstances{Target: 4, Bootstrap: 0.01}
	count := func(estimate float64, population int) int {
		leads := 0
		for i := 0; i < population; i++ {
			if p.Lead(rng, estimate) {
				leads++
			}
		}
		return leads
	}
	// With a correct estimate, expected leaders ≈ Target for any size.
	const reps = 200
	totalSmall, totalLarge := 0, 0
	for r := 0; r < reps; r++ {
		totalSmall += count(1000, 1000)
		totalLarge += count(100000, 100000)
	}
	small := float64(totalSmall) / reps
	large := float64(totalLarge) / reps
	if math.Abs(small-4) > 0.5 || math.Abs(large-4) > 0.5 {
		t.Fatalf("expected leaders ≈ 4 at both sizes, got %.2f and %.2f", small, large)
	}
}

func TestTargetInstancesBootstrap(t *testing.T) {
	rng := xrand.New(502)
	p := TargetInstances{Target: 4, Bootstrap: 1}
	if !p.Lead(rng, math.NaN()) {
		t.Fatal("bootstrap probability 1 did not lead with NaN estimate")
	}
	if !p.Lead(rng, -5) {
		t.Fatal("bootstrap probability 1 did not lead with invalid estimate")
	}
}

func TestSizeSimWithProbabilisticLeaders(t *testing.T) {
	reports, err := RunSizeSim(SizeSimConfig{
		InitialSize: 1000,
		EpochCycles: 30,
		TotalCycles: 240,
		Leader:      TargetInstances{Target: 4, Bootstrap: 4.0 / 1000},
		Seed:        503,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 8 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if math.IsNaN(r.EstimateMean) {
			t.Fatalf("epoch %d: NaN estimate under probabilistic leaders", r.Epoch)
		}
		if math.Abs(r.EstimateMean-1000) > 20 {
			t.Errorf("epoch %d: estimate %.1f, want ≈ 1000", r.Epoch, r.EstimateMean)
		}
	}
}

func TestSizeSimZeroLeaderFallback(t *testing.T) {
	// A policy that never leads must still produce estimates via the
	// one-random-leader fallback.
	reports, err := RunSizeSim(SizeSimConfig{
		InitialSize: 500,
		EpochCycles: 30,
		TotalCycles: 90,
		Leader:      FixedProbability{P: 0},
		Seed:        504,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if math.IsNaN(r.EstimateMean) {
			t.Fatalf("epoch %d: no estimate despite fallback leader", r.Epoch)
		}
		if math.Abs(r.EstimateMean-500) > 15 {
			t.Errorf("epoch %d: estimate %.1f, want ≈ 500", r.Epoch, r.EstimateMean)
		}
	}
}
