package repro

import (
	"context"
	"math"

	"repro/internal/stats"
	"repro/scenario"
)

// Result is the materialized outcome of Run: the streamed reduction
// rows plus the repeat-0 artifacts the historical one-shot entry
// points returned (variance trajectory, final vector, exchange count,
// epoch reports).
type Result struct {
	// Spec is the executed spec with defaults applied (including any
	// AutoShards fallback to sequential execution).
	Spec scenario.Spec
	// Rows holds every per-cycle (or per-Δt, or per-epoch) reduction
	// row across all repeats, in stream order.
	Rows []scenario.Result
	// Sharded reports whether the sharded executor actually ran; false
	// when AutoShards fell back to the exact sequential path.
	Sharded bool
	// Variances is repeat 0's field-0 variance trajectory, index 0
	// holding the initial variance (nil in size-estimation mode).
	Variances []float64
	// FinalMean is repeat 0's final vector mean; with lossless
	// exchanges it equals the initial mean up to rounding (mass
	// conservation, §3.2).
	FinalMean float64
	// ReductionRate is repeat 0's geometric-mean per-cycle variance
	// reduction — compare with TheoreticalRate.
	ReductionRate float64
	// Values is repeat 0's final vector (every node's approximation);
	// nil in size-estimation mode.
	Values []float64
	// Exchanges counts repeat 0's performed exchanges in wait mode.
	Exchanges int
	// Epochs holds repeat 0's per-epoch reports in size-estimation
	// mode.
	Epochs []EpochReport
}

// Run executes one declarative scenario spec — the single front door to
// the sequential kernel, the sharded executor, the event-driven model
// and the §4 size estimator, routed by the spec's axes — and
// materializes the outcome. Cancelling ctx stops the run within one
// cycle and returns the context's error.
//
// The deprecated one-shot entry points (Simulate, SimulateAsync,
// EstimateSizeUnderChurn) are thin wrappers over Run; their config
// types expose Spec() for migration.
func Run(ctx context.Context, spec scenario.Spec) (*Result, error) {
	res, err := scenario.RunSpec(ctx, spec)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Spec:      res.Spec,
		Rows:      res.Rows,
		Sharded:   res.Sharded,
		Variances: res.Variances,
		Values:    res.FinalValues,
		Exchanges: res.Exchanges,
		Epochs:    res.Epochs,
	}
	if len(out.Values) > 0 {
		out.FinalMean = stats.Mean(out.Values)
	}
	if n := len(out.Variances); n > 1 {
		first, last := out.Variances[0], out.Variances[n-1]
		if first > 0 && last > 0 {
			out.ReductionRate = math.Pow(last/first, 1/float64(n-1))
		}
	}
	return out, nil
}

// SweepOptions tunes RunGrid.
type SweepOptions struct {
	// Workers bounds the scenario worker pool (≤ 0 selects GOMAXPROCS).
	// Sweeps of sharded specs usually want Workers = 1 so the shards
	// get the cores instead of the pool.
	Workers int
	// Out, when non-nil, receives the rows as they stream (CSV, JSONL
	// or any scenario.Writer) and RunGrid returns no rows. Nil collects
	// the rows in memory and returns them.
	Out scenario.Writer
}

// RunGrid expands a grid (a base spec crossed with swept axes) and
// executes every cell on a worker pool, streaming reduction rows in
// deterministic order. Cancelling ctx aborts the sweep within one
// cycle per in-flight run.
func RunGrid(ctx context.Context, grid scenario.Grid, opts SweepOptions) ([]scenario.Result, error) {
	r := scenario.Runner{Workers: opts.Workers}
	if opts.Out != nil {
		return nil, r.RunGrid(ctx, grid, opts.Out)
	}
	var col scenario.Collector
	if err := r.RunGrid(ctx, grid, &col); err != nil {
		return nil, err
	}
	return col.Results(), nil
}
