package repro

import (
	"context"
	"fmt"
	"time"
)

// ClusterGroup is n single-node TCP systems on the loopback wired into
// one gossip mesh: the in-process stand-in for an n-process deployment
// (cmd/aggctl drives the real thing). Every member runs live gossip
// membership — there is no static directory anywhere — so the group
// exercises exactly the discovery, digest-piggybacking and
// failure-detection paths a production deployment would.
type ClusterGroup struct {
	systems []*System
	cycle   time.Duration
}

// OpenCluster opens a ClusterGroup of n members. Member 0 listens on an
// ephemeral loopback port with no seeds (it waits to be contacted);
// members 1..n-1 bootstrap from member 0's address. The options apply
// to every member, with two derived per member j: the local value is
// WithValues' f(j) (each member hosts exactly one node), and the seed
// is offset so members draw independent randomness. WithTCP and
// WithSize are managed by the group and rejected if passed.
func OpenCluster(n int, opts ...Option) (*ClusterGroup, error) {
	if n < 2 {
		return nil, fmt.Errorf("repro: OpenCluster needs n ≥ 2 members, got %d", n)
	}
	// Probe the assembled configuration once to learn the value function
	// and base seed the members derive from.
	probe := sysConfig{
		size:  2,
		cycle: 100 * time.Millisecond,
		seed:  1,
		view:  8,
		ctx:   context.Background(),
		value: func(int) float64 { return 0 },
	}
	for _, opt := range opts {
		if err := opt(&probe); err != nil {
			return nil, err
		}
	}
	if probe.tcp {
		return nil, fmt.Errorf("repro: OpenCluster manages its members' TCP endpoints; drop WithTCP")
	}
	if probe.sizeSet {
		return nil, fmt.Errorf("repro: OpenCluster members host one node each; drop WithSize (n is the cluster size)")
	}

	g := &ClusterGroup{cycle: probe.cycle}
	var seeds []string
	for j := 0; j < n; j++ {
		value := probe.value(j)
		memberOpts := append(append([]Option{}, opts...),
			WithValue(value),
			WithSeed(probe.seed+uint64(j)*0x9e3779b97f4a7c15),
			WithTCP("127.0.0.1:0", seeds...),
		)
		sys, err := Open(memberOpts...)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("repro: cluster member %d: %w", j, err)
		}
		g.systems = append(g.systems, sys)
		if j == 0 {
			seeds = []string{sys.Nodes()[0].Addr()}
		}
	}
	return g, nil
}

// Systems returns the member systems in index order.
func (g *ClusterGroup) Systems() []*System { return g.systems }

// Size returns the member count.
func (g *ClusterGroup) Size() int { return len(g.systems) }

// Query folds every member's current approximation of the named field
// into one typed snapshot — the cross-process analogue of
// System.Query.
func (g *ClusterGroup) Query(ctx context.Context, field string) (Estimate, error) {
	var run Running
	for _, s := range g.systems {
		if err := s.Reduce(ctx, field, &run); err != nil {
			return Estimate{}, err
		}
	}
	return Estimate{
		Field:    field,
		Time:     time.Now(),
		Nodes:    run.N(),
		Mean:     run.Mean(),
		Variance: run.Variance(),
		Min:      run.Min(),
		Max:      run.Max(),
	}, nil
}

// WaitConverged polls once per cycle until the field's cross-member
// variance falls to at most tol, returning the converged snapshot (or
// the last one taken alongside ctx's error).
func (g *ClusterGroup) WaitConverged(ctx context.Context, field string, tol float64) (Estimate, error) {
	ticker := time.NewTicker(g.cycle)
	defer ticker.Stop()
	var last Estimate
	for {
		est, err := g.Query(ctx, field)
		if err != nil {
			return last, err
		}
		last = est
		if est.Variance <= tol {
			return est, nil
		}
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Close shuts every member down. Idempotent.
func (g *ClusterGroup) Close() {
	for _, s := range g.systems {
		s.Close()
	}
}
