package repro

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestOpenClusterValidation(t *testing.T) {
	if _, err := OpenCluster(1); err == nil {
		t.Error("1-member cluster accepted")
	}
	if _, err := OpenCluster(2, WithTCP("127.0.0.1:0")); err == nil {
		t.Error("WithTCP accepted by OpenCluster")
	}
	if _, err := OpenCluster(2, WithSize(3)); err == nil {
		t.Error("WithSize accepted by OpenCluster")
	}
}

func TestOpenClusterMatchesInProcessHeap(t *testing.T) {
	// The tentpole's equivalence claim: a gossip-membership cluster of
	// single-node TCP systems (no static directory anywhere) must reach
	// the same mean fixed point as the in-process heap runtime on the
	// same inputs and seeds.
	if testing.Short() {
		t.Skip("real TCP sockets; skipped in -short mode")
	}
	const n = 4
	values := func(i int) float64 { return float64(3 + 2*i) } // mean 6
	const want = 6.0

	g, err := OpenCluster(n,
		WithValues(values),
		WithCycleLength(5*time.Millisecond),
		WithReplyTimeout(500*time.Millisecond),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	gEst, err := g.WaitConverged(ctx, "avg", 1e-6)
	if err != nil {
		t.Fatalf("cluster group stuck at variance %g: %v", gEst.Variance, err)
	}
	if gEst.Nodes != n {
		t.Fatalf("group snapshot folded %d nodes, want %d", gEst.Nodes, n)
	}

	sys, err := Open(
		WithSize(n),
		WithMode(ModeHeap),
		WithValues(values),
		WithCycleLength(5*time.Millisecond),
		WithReplyTimeout(500*time.Millisecond),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sEst, err := sys.WaitConverged(ctx, "avg", 1e-6)
	if err != nil {
		t.Fatalf("in-process system stuck at variance %g: %v", sEst.Variance, err)
	}

	if math.Abs(gEst.Mean-want) > 0.05 {
		t.Errorf("cluster group mean %g, want ≈ %g", gEst.Mean, want)
	}
	if math.Abs(sEst.Mean-want) > 0.05 {
		t.Errorf("in-process mean %g, want ≈ %g", sEst.Mean, want)
	}
	if math.Abs(gEst.Mean-sEst.Mean) > 0.05 {
		t.Errorf("fixed points diverge: cluster %g vs in-process %g", gEst.Mean, sEst.Mean)
	}
}

func TestOpenWithGossipMembership(t *testing.T) {
	// An in-memory system on live gossip membership (ring bootstrap,
	// view capacity 8, fanout-3 digests) must still converge to the
	// true mean.
	const size = 16
	sys, err := Open(
		WithSize(size),
		WithGossipMembership(),
		WithValues(func(i int) float64 { return float64(i) }),
		WithCycleLength(2*time.Millisecond),
		WithReplyTimeout(200*time.Millisecond),
		WithSeed(9),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	est, err := sys.WaitConverged(ctx, "avg", 1e-4)
	if err != nil {
		t.Fatalf("gossip-membership system stuck at variance %g: %v", est.Variance, err)
	}
	want := float64(size-1) / 2
	if math.Abs(est.Mean-want) > 0.05 {
		t.Errorf("converged mean %g, want ≈ %g", est.Mean, want)
	}
}
