package repro

import (
	"context"
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/epoch"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/robust"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Reducer folds a stream of per-node field values (System.Reduce).
// *Running implements it.
type Reducer interface {
	Add(x float64)
}

// Running is a Welford-style streaming accumulator (count, mean,
// unbiased variance, extrema) that implements Reducer — the standard
// fold for System.Reduce and the type behind every Estimate.
type Running = stats.Running

// Estimate is one typed snapshot of a watched field: the cross-node
// reduction of every locally hosted node's current approximation.
type Estimate struct {
	// Field names the reduced schema field.
	Field string
	// Seq is the snapshot index since the field's watch fan-out started
	// (0-based); all subscribers of one field observe the same sequence,
	// and a gap means the receiver fell behind and skipped snapshots.
	// Zero for one-shot Query snapshots.
	Seq int
	// Time is when the snapshot was taken.
	Time time.Time
	// Nodes is how many hosted node states were folded in.
	Nodes int
	// Mean, Variance, Min and Max reduce the field across nodes. At
	// convergence every node holds ≈ Mean and Variance ≈ 0.
	Mean, Variance, Min, Max float64
	// Dropped counts the snapshots this subscriber has lost to
	// latest-wins delivery since subscribing: each is an undelivered
	// snapshot that was replaced in the channel slot because the
	// receiver lagged a full cycle. Cumulative; a receiver that keeps
	// up sees it stay constant while Seq advances.
	Dropped int
}

// sysConfig is the Option-assembled configuration of Open.
type sysConfig struct {
	size      int
	sizeSet   bool
	schema    *core.Schema
	value     func(i int) float64
	cycle     time.Duration
	timeout   time.Duration
	wait      engine.WaitPolicy
	mode      engine.RuntimeMode
	workers   int
	batch     time.Duration
	seed      uint64
	epochLen  time.Duration
	pushOnly  bool
	view      int
	tcp       bool
	listen    string
	peers     []string
	initState func(i int) func(epochID uint64, value float64) core.State
	ctx       context.Context
	ops       string
	trace     int
	gossip    bool

	advSet       bool
	advBehavior  string
	advFraction  float64
	advMagnitude float64
	advTarget    float64
	robust       *RobustConfig
	momBuckets   int

	// reg is threaded through to the engine layers; assembled by Open,
	// not an option.
	reg *metrics.Registry
}

// replyTimeout resolves the reply deadline: the explicit option when
// given, else zero (the engine's Δt/2 default) — plus, whenever a
// batch window is configured, an allowance of four windows: a batched
// push-pull round trip spends up to one window on the push and one on
// the reply, and without the allowance window batching converts
// latency into spurious timeouts.
func (c sysConfig) replyTimeout() time.Duration {
	if c.timeout > 0 {
		return c.timeout
	}
	if c.batch > 0 {
		return c.cycle/2 + 4*c.batch
	}
	return 0
}

// Option configures Open.
type Option func(*sysConfig) error

// WithSize sets the number of locally hosted nodes (default 2
// in-memory, 1 with WithTCP — the deployable single-node shape).
func WithSize(n int) Option {
	return func(c *sysConfig) error {
		if n < 1 {
			return fmt.Errorf("repro: WithSize needs n ≥ 1, got %d", n)
		}
		c.size, c.sizeSet = n, true
		return nil
	}
}

// WithSchema sets the gossiped field schema (default NewAverageSchema).
func WithSchema(s *Schema) Option {
	return func(c *sysConfig) error {
		if s == nil {
			return fmt.Errorf("repro: WithSchema needs a schema")
		}
		c.schema = s
		return nil
	}
}

// WithValues supplies node i's local attribute a_i.
func WithValues(f func(i int) float64) Option {
	return func(c *sysConfig) error {
		c.value = f
		return nil
	}
}

// WithValue gives every hosted node the same local attribute — the
// usual shape for a single-node TCP system.
func WithValue(v float64) Option {
	return WithValues(func(int) float64 { return v })
}

// WithCycleLength sets Δt, the (mean) time between initiated
// exchanges (default 100ms).
func WithCycleLength(d time.Duration) Option {
	return func(c *sysConfig) error {
		if d <= 0 {
			return fmt.Errorf("repro: WithCycleLength needs a positive duration, got %v", d)
		}
		c.cycle = d
		return nil
	}
}

// WithReplyTimeout bounds the pull-reply wait (default Δt/2, plus a
// batching allowance in heap mode).
func WithReplyTimeout(d time.Duration) Option {
	return func(c *sysConfig) error {
		c.timeout = d
		return nil
	}
}

// WithWaitPolicy selects the §1.1 waiting-time distribution (default
// ConstantWait; ExponentialWait approximates GETPAIR_RAND dynamics).
func WithWaitPolicy(p WaitPolicy) Option {
	return func(c *sysConfig) error {
		c.wait = p
		return nil
	}
}

// WithMode selects the scheduler for in-memory systems: ModeHeap
// (default, a parallel sharded event-heap worker pool — the
// 10⁵-nodes-per-process path) or ModeGoroutine (the legacy two
// goroutines per node, useful as a scheduling cross-check). Multi-node
// TCP systems always run the heap runtime.
func WithMode(m RuntimeMode) Option {
	return func(c *sysConfig) error {
		c.mode = m
		return nil
	}
}

// WithWorkers bounds the heap scheduler's worker/shard pool (default
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *sysConfig) error {
		c.workers = n
		return nil
	}
}

// WithBatchWindow bounds message coalescing delay in heap mode (0
// flushes once per scheduler round).
func WithBatchWindow(d time.Duration) Option {
	return func(c *sysConfig) error {
		c.batch = d
		return nil
	}
}

// WithSeed makes node randomness reproducible (default 1; live
// scheduling still varies).
func WithSeed(seed uint64) Option {
	return func(c *sysConfig) error {
		c.seed = seed
		return nil
	}
}

// WithEpochLength enables periodic epoch restarts (§4 adaptivity):
// every node reinitializes from its current local value each period,
// so SetValue changes enter the aggregate with one-epoch delay.
func WithEpochLength(d time.Duration) Option {
	return func(c *sysConfig) error {
		if d <= 0 {
			return fmt.Errorf("repro: WithEpochLength needs a positive duration, got %v", d)
		}
		c.epochLen = d
		return nil
	}
}

// WithPushOnly enables the push-only ablation on every node.
func WithPushOnly() Option {
	return func(c *sysConfig) error {
		c.pushOnly = true
		return nil
	}
}

// WithGossipMembership runs an in-memory system on live gossip
// membership instead of the default shared full directory: each node
// starts knowing only its ring successor and learns the rest of the
// population from digests piggybacked on protocol traffic, exactly as
// TCP systems always do. Costs O(view) memory per node instead of the
// directory's shared O(N), and exercises join/leave/failure dynamics
// the directory can't. No effect on TCP systems (already gossip).
func WithGossipMembership() Option {
	return func(c *sysConfig) error {
		c.gossip = true
		return nil
	}
}

// WithMembershipView sets the gossip membership view capacity (default
// 8). Applies to TCP systems and to in-memory systems opened with
// WithGossipMembership; directory-backed systems ignore it.
func WithMembershipView(capacity int) Option {
	return func(c *sysConfig) error {
		if capacity < 1 {
			return fmt.Errorf("repro: WithMembershipView needs capacity ≥ 1, got %d", capacity)
		}
		c.view = capacity
		return nil
	}
}

// WithTCP deploys the system over real sockets: listen is the first
// (or only) node's address ("127.0.0.1:0" for an ephemeral port), and
// seedPeers bootstrap membership discovery via piggybacked gossip. A
// size-1 system is one deployable node (the aggnode shape); larger
// sizes host the population on the heap runtime with one TCP endpoint
// per worker and sub-addressed nodes.
func WithTCP(listen string, seedPeers ...string) Option {
	return func(c *sysConfig) error {
		if listen == "" {
			return fmt.Errorf("repro: WithTCP needs a listen address")
		}
		c.tcp = true
		c.listen = listen
		c.peers = append([]string(nil), seedPeers...)
		return nil
	}
}

// WithInitState overrides state initialization for node i (e.g. to
// seed a size-estimation leader's indicator field).
func WithInitState(f func(i int) func(epochID uint64, value float64) State) Option {
	return func(c *sysConfig) error {
		c.initState = f
		return nil
	}
}

// WithContext scopes the system's lifetime: cancelling ctx stops it
// exactly as Close would.
func WithContext(ctx context.Context) Option {
	return func(c *sysConfig) error {
		c.ctx = ctx
		return nil
	}
}

// WithOps starts an operational HTTP server on addr ("127.0.0.1:0"
// for an ephemeral port, see System.OpsAddr) serving /metrics
// (Prometheus text exposition), /healthz (liveness plus convergence
// summary), /varz (flat JSON of telemetry and every metric) and
// net/http/pprof under /debug/pprof/. Scrapes read only atomics — a
// busy 10⁵-node system serves /metrics without stalling a worker.
func WithOps(addr string) Option {
	return func(c *sysConfig) error {
		if addr == "" {
			return fmt.Errorf("repro: WithOps needs a listen address")
		}
		c.ops = addr
		return nil
	}
}

// WithTraceSampling records every n-th initiated exchange per shard
// into a fixed-size trace ring, drained with System.Trace. Sampling
// costs two stores and one integer parse per sampled exchange and
// nothing otherwise; n = 0 (the default) disables tracing entirely.
// Tracing requires the heap runtime (the default mode).
func WithTraceSampling(n int) Option {
	return func(c *sysConfig) error {
		if n < 0 {
			return fmt.Errorf("repro: WithTraceSampling needs n ≥ 0, got %d", n)
		}
		c.trace = n
		return nil
	}
}

// RobustConfig selects the robust-merge countermeasures that bound how
// far a Byzantine reporter can drag the aggregate (see DESIGN.md
// "Adversary model & robust aggregation"). Both act on the schema's
// first field and gate the exchange as a whole.
type RobustConfig struct {
	// Clamp bounds inbound estimates into [ClampMin, ClampMax] before
	// merging. Pick bounds wider than the trim band: a clamp tight
	// enough to sit inside TrimK·σ pulls poison into the trim gate's
	// acceptance band and legitimizes it.
	Clamp              bool
	ClampMin, ClampMax float64
	// Trim rejects exchanges whose delta falls outside each node's
	// running acceptance band of TrimK scale units (default 8).
	Trim  bool
	TrimK float64
}

// policy maps the public config onto the engine-internal policy.
func (c RobustConfig) policy() robust.Policy {
	return robust.Policy{
		Clamp: c.Clamp, ClampMin: c.ClampMin, ClampMax: c.ClampMax,
		Trim: c.Trim, TrimK: c.TrimK,
	}
}

// validate rejects configurations the engines would misapply.
func (c RobustConfig) validate() error {
	if c.Clamp && !(c.ClampMin < c.ClampMax) {
		return fmt.Errorf("repro: robust clamp range [%v,%v] is empty", c.ClampMin, c.ClampMax)
	}
	if c.Trim && c.TrimK < 0 {
		return fmt.Errorf("repro: robust trim K %v must not be negative", c.TrimK)
	}
	return nil
}

// adversaryBehavior parses the wire name of an adversary behavior (the
// same names scenario specs use).
func adversaryBehavior(name string) (sim.AdversaryBehavior, error) {
	switch name {
	case "", "extreme-value":
		return sim.AdvExtreme, nil
	case "colluding":
		return sim.AdvColluding, nil
	case "selective-drop":
		return sim.AdvSelectiveDrop, nil
	case "eclipse":
		return sim.AdvEclipse, nil
	}
	return 0, fmt.Errorf("repro: unknown adversary behavior %q (want extreme-value, colluding, selective-drop or eclipse)", name)
}

// WithAdversaries opens the system with a fraction of its hosted nodes
// acting as Byzantine adversaries of the named behavior ("extreme-value"
// — or empty — reports magnitude; "colluding" and "eclipse" report
// target; "selective-drop" acks exchanges and discards the merge). The
// count rounds up to at least one node when fraction > 0. Fault
// injection for experiments — see System.SetAdversaries for the live
// equivalent.
func WithAdversaries(behavior string, fraction, magnitude, target float64) Option {
	return func(c *sysConfig) error {
		if _, err := adversaryBehavior(behavior); err != nil {
			return err
		}
		if fraction < 0 || fraction >= 1 || math.IsNaN(fraction) {
			return fmt.Errorf("repro: adversary fraction %v outside [0,1)", fraction)
		}
		c.advSet = true
		c.advBehavior, c.advFraction = behavior, fraction
		c.advMagnitude, c.advTarget = magnitude, target
		return nil
	}
}

// WithRobustMerge opens the system with robust-merge countermeasures
// installed on every hosted node (see RobustConfig).
func WithRobustMerge(cfg RobustConfig) Option {
	return func(c *sysConfig) error {
		if err := cfg.validate(); err != nil {
			return err
		}
		c.robust = &cfg
		return nil
	}
}

// WithMedianOfMeans makes every snapshot (Query, Watch, WaitConverged,
// the convergence tracker) report the median-of-means of the reduced
// field instead of the plain mean: values fold round-robin into buckets
// and the estimate is the median of the bucket means, so a minority of
// corrupted node states cannot drag the reported aggregate. Variance,
// min and max still reduce plainly. See also QueryRobust for a
// per-query override.
func WithMedianOfMeans(buckets int) Option {
	return func(c *sysConfig) error {
		if buckets < 1 {
			return fmt.Errorf("repro: WithMedianOfMeans needs ≥ 1 bucket, got %d", buckets)
		}
		c.momBuckets = buckets
		return nil
	}
}

// System is a live aggregation service: a set of locally hosted
// protocol nodes (in-memory cluster, heap runtime, or one deployable
// TCP node) continuously maintaining every node's approximation of the
// global aggregates. Open assembles and starts it; observe it with
// Watch (streaming typed snapshots), Reduce (custom folds without
// materializing state), Query and WaitConverged; Close shuts it down.
type System struct {
	schema *core.Schema
	cycle  time.Duration

	// momBuckets, when > 0, switches every snapshot's mean to the
	// median-of-means estimator (WithMedianOfMeans).
	momBuckets int

	cluster *engine.Cluster // in-memory shapes
	rt      *engine.Runtime // multi-node TCP shape
	node    *engine.Node    // single-node TCP shape
	nodes   []*Node

	// gsampler is the single TCP node's gossip view, kept for the
	// membership gauges (other shapes register theirs in the runtime).
	gsampler *membership.GossipSampler

	// watchMu guards the per-field fan-out hubs; reduceCount counts
	// snapshot reductions (observability for the fan-out sharing tests).
	watchMu     sync.Mutex
	hubs        map[string]*watchHub
	reduceCount atomic.Uint64

	// metrics is the system's registry; every series is a lock-free
	// read over state the layers maintain anyway. Served by the ops
	// endpoint and pinned by the metric-name golden test.
	metrics  *metrics.Registry
	openedAt time.Time

	// tele is the convergence tracker (telemetry.go); ops the HTTP
	// server (ops.go), nil unless WithOps was given.
	tele telemetryState
	ops  *opsServer

	// serveStats, when set, reports the service layer's live stream
	// count and cumulative latest-wins drops for Telemetry stamping
	// (serve.New installs it; see SetServeStats).
	serveStats atomic.Pointer[func() (streams int, dropped uint64)]

	done      chan struct{}
	closeOnce sync.Once
}

// watchSub is one Watch subscriber: a one-slot channel holding the most
// recent snapshot, and the context whose cancellation unsubscribes it.
// dropped is written only by the hub goroutine.
type watchSub struct {
	ch      chan Estimate
	ctx     context.Context
	dropped int
}

// watchHub fans one field's per-cycle snapshot out to every subscriber:
// however many watchers a field has, its state is reduced once per
// cycle. The hub goroutine starts with the first subscriber and exits —
// removing itself from the system's hub table — when the last one
// unsubscribes (or the system closes).
type watchHub struct {
	sys   *System
	field string
	seq   int
	subs  []*watchSub

	// Per-field observability: live subscriber count, snapshots taken,
	// and latest-wins drops summed over subscribers (per-subscriber
	// counts ride on Estimate.Dropped).
	subsGauge *metrics.Gauge
	snaps     *metrics.Counter
	drops     *metrics.Counter
}

// add registers a subscriber. Caller holds sys.watchMu.
func (h *watchHub) add(ctx context.Context) *watchSub {
	sub := &watchSub{ch: make(chan Estimate, 1), ctx: ctx}
	h.subs = append(h.subs, sub)
	h.subsGauge.Set(float64(len(h.subs)))
	return sub
}

// run is the hub goroutine: one snapshot per cycle, delivered
// latest-wins to every live subscriber; cancelled subscribers are
// pruned (their channels closed) at the tick following cancellation —
// within one cycle, like the snapshots themselves.
func (h *watchHub) run() {
	ticker := time.NewTicker(h.sys.cycle)
	defer ticker.Stop()
	for {
		select {
		case <-h.sys.done:
			h.sys.watchMu.Lock()
			for _, sub := range h.subs {
				close(sub.ch)
			}
			h.subs = nil
			h.subsGauge.Set(0)
			delete(h.sys.hubs, h.field)
			h.sys.watchMu.Unlock()
			return
		case <-ticker.C:
		}
		h.sys.watchMu.Lock()
		live := h.subs[:0]
		for _, sub := range h.subs {
			if sub.ctx.Err() != nil {
				close(sub.ch)
				continue
			}
			live = append(live, sub)
		}
		for i := len(live); i < len(h.subs); i++ {
			h.subs[i] = nil
		}
		h.subs = live
		h.subsGauge.Set(float64(len(h.subs)))
		if len(h.subs) == 0 {
			delete(h.sys.hubs, h.field)
			h.sys.watchMu.Unlock()
			return
		}
		subs := h.subs
		h.sys.watchMu.Unlock()

		est, err := h.sys.snapshot(context.Background(), h.field, h.seq)
		if err != nil {
			continue // transient: the system may be mid-close
		}
		h.seq++
		h.snaps.Inc()
		for _, sub := range subs {
			// Latest-wins delivery: replace a stale undelivered snapshot
			// rather than blocking the hub (and every other subscriber)
			// on one slow receiver. Each replacement is a drop, counted
			// per subscriber (stamped on the outgoing snapshot) and per
			// field (the hub counter) so slow-watcher starvation is
			// visible instead of silent.
			est.Dropped = sub.dropped
			select {
			case sub.ch <- est:
			default:
				select {
				case <-sub.ch:
					sub.dropped++
					h.drops.Inc()
					est.Dropped = sub.dropped
				default:
				}
				select {
				case sub.ch <- est:
				default:
				}
			}
		}
	}
}

// Open assembles a live aggregation system from functional options and
// starts it. The zero-option call opens a two-node in-memory system
// gossiping a plain average. See WithSize, WithSchema, WithValues,
// WithCycleLength, WithMode, WithTCP and friends for the axes; Close
// (or a WithContext cancellation) shuts the system down.
func Open(opts ...Option) (*System, error) {
	cfg := sysConfig{
		size:   2,
		cycle:  100 * time.Millisecond,
		seed:   1,
		view:   8,
		mode:   engine.ModeHeap,
		ctx:    context.Background(),
		value:  func(int) float64 { return 0 },
		schema: NewAverageSchema(),
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.tcp && !cfg.sizeSet {
		cfg.size = 1
	}
	if cfg.size == 1 && !cfg.tcp {
		return nil, fmt.Errorf("repro: a size-1 system needs WithTCP (an in-memory node has nobody to gossip with)")
	}

	var clock *epoch.Clock
	if cfg.epochLen > 0 {
		c, err := epoch.NewClock(time.Unix(0, 0), cfg.epochLen)
		if err != nil {
			return nil, err
		}
		clock = c
	}

	reg := metrics.New()
	cfg.reg = reg
	sys := &System{
		schema:     cfg.schema,
		cycle:      cfg.cycle,
		momBuckets: cfg.momBuckets,
		metrics:    reg,
		openedAt:   time.Now(),
		done:       make(chan struct{}),
	}
	var tcpEP *transport.TCPEndpoint // single-node shape's endpoint, for metrics
	switch {
	case cfg.tcp && cfg.size == 1:
		node, ep, sampler, err := openTCPNode(cfg, clock)
		if err != nil {
			return nil, err
		}
		sys.node = node
		sys.nodes = []*Node{node}
		sys.gsampler = sampler
		tcpEP = ep
		node.Start()
	case cfg.tcp:
		rt, err := openTCPRuntime(cfg, clock)
		if err != nil {
			return nil, err
		}
		sys.rt = rt
		sys.nodes = rt.Nodes()
		rt.Start(cfg.ctx)
	default:
		clusterCfg := engine.ClusterConfig{
			Size:         cfg.size,
			Schema:       cfg.schema,
			Value:        cfg.value,
			CycleLength:  cfg.cycle,
			ReplyTimeout: cfg.replyTimeout(),
			Wait:         cfg.wait,
			PushOnly:     cfg.pushOnly,
			InitState:    cfg.initState,
			Clock:        clock,
			Mode:         cfg.mode,
			Workers:      cfg.workers,
			BatchWindow:  cfg.batch,
			Seed:         cfg.seed,
			Metrics:      reg,
			TraceSample:  cfg.trace,
		}
		if cfg.gossip {
			// Live membership: ring bootstrap, every further peer is
			// learned from piggybacked digests.
			clusterCfg.Samplers = func(i int, self string, local []string) (membership.Sampler, error) {
				return membership.NewGossipSampler(self, cfg.view, []string{local[(i+1)%len(local)]})
			}
		}
		cluster, err := engine.NewCluster(clusterCfg)
		if err != nil {
			return nil, err
		}
		sys.cluster = cluster
		sys.nodes = cluster.Nodes()
		cluster.Start(cfg.ctx)
	}
	sys.registerSystemMetrics(tcpEP)
	// Adversaries before robust countermeasures: the trim gate seeds its
	// acceptance band from the honest population, which is only known
	// once the adversaries are marked.
	if cfg.advSet {
		if err := sys.SetAdversaries(cfg.advBehavior, cfg.advFraction, cfg.advMagnitude, cfg.advTarget); err != nil {
			sys.Close()
			return nil, err
		}
	}
	if cfg.robust != nil {
		if err := sys.SetRobust(*cfg.robust); err != nil {
			sys.Close()
			return nil, err
		}
	}
	if cfg.ops != "" {
		if err := sys.startOps(cfg.ops); err != nil {
			sys.Close()
			return nil, err
		}
	}
	if cfg.ctx.Done() != nil {
		// Context cancellation must close the whole System — including
		// sys.done, which ends live Watch channels and WaitConverged
		// polls — not just the engine underneath (Close is idempotent,
		// so doubling up with the engine's own ctx watcher is safe).
		go func() {
			select {
			case <-cfg.ctx.Done():
				sys.Close()
			case <-sys.done:
			}
		}()
	}
	return sys, nil
}

// openTCPNode assembles the deployable single-node shape: one TCP
// endpoint and the gossip sampler (both returned alongside the node so
// the system can register traffic counters and membership gauges),
// membership seeded from the configured peers.
func openTCPNode(cfg sysConfig, clock *epoch.Clock) (*Node, *transport.TCPEndpoint, *membership.GossipSampler, error) {
	endpoint, err := transport.NewTCPEndpoint(cfg.listen)
	if err != nil {
		return nil, nil, nil, err
	}
	self := endpoint.Addr()
	seeds := cfg.peers
	if len(seeds) == 0 {
		// No seeds: wait to be contacted. A single self-seed is
		// rejected, so use a placeholder that is forgotten on first
		// contact failure.
		seeds = []string{self + "#boot"}
	}
	sampler, err := membership.NewGossipSampler(self, cfg.view, seeds)
	if err != nil {
		_ = endpoint.Close()
		return nil, nil, nil, err
	}
	nodeCfg := engine.Config{
		Schema:       cfg.schema,
		Endpoint:     endpoint,
		Sampler:      sampler,
		Value:        cfg.value(0),
		CycleLength:  cfg.cycle,
		ReplyTimeout: cfg.replyTimeout(),
		Wait:         cfg.wait,
		PushOnly:     cfg.pushOnly,
		Clock:        clock,
		Seed:         cfg.seed,
	}
	if cfg.initState != nil {
		nodeCfg.InitState = cfg.initState(0)
	}
	node, err := engine.NewNode(nodeCfg)
	if err != nil {
		_ = endpoint.Close()
		return nil, nil, nil, err
	}
	return node, endpoint, sampler, nil
}

// openTCPRuntime assembles the multi-node TCP shape: the heap runtime
// with one TCP endpoint per worker (the first on the configured listen
// address, the rest on ephemeral ports of the same host) and gossip
// membership bootstrapped from the remote seeds plus a local sibling.
func openTCPRuntime(cfg sysConfig, clock *epoch.Clock) (*engine.Runtime, error) {
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.size/2 {
		workers = max(cfg.size/2, 1)
	}
	first, err := transport.NewTCPEndpoint(cfg.listen)
	if err != nil {
		return nil, err
	}
	endpoints := []transport.Endpoint{first}
	host, _, err := net.SplitHostPort(first.Addr())
	if err != nil {
		_ = first.Close()
		return nil, err
	}
	for len(endpoints) < workers {
		ep, err := transport.NewTCPEndpoint(net.JoinHostPort(host, "0"))
		if err != nil {
			for _, e := range endpoints {
				_ = e.Close()
			}
			return nil, err
		}
		endpoints = append(endpoints, ep)
	}
	seeds := cfg.peers
	return engine.NewRuntime(engine.RuntimeConfig{
		Size:         cfg.size,
		Schema:       cfg.schema,
		Value:        cfg.value,
		CycleLength:  cfg.cycle,
		ReplyTimeout: cfg.replyTimeout(),
		Wait:         cfg.wait,
		Endpoints:    endpoints,
		PushOnly:     cfg.pushOnly,
		InitState:    cfg.initState,
		Clock:        clock,
		BatchWindow:  cfg.batch,
		Seed:         cfg.seed,
		Metrics:      cfg.reg,
		TraceSample:  cfg.trace,
		Samplers: func(i int, self string, local []string) (membership.Sampler, error) {
			// Bootstrap: the remote seeds plus the next local sibling,
			// so the local mesh is connected even before any remote
			// gossip arrives.
			boot := append([]string{}, seeds...)
			if sib := local[(i+1)%len(local)]; sib != self {
				boot = append(boot, sib)
			}
			return membership.NewGossipSampler(self, cfg.view, boot)
		},
	})
}

// Size returns the number of locally hosted nodes.
func (s *System) Size() int { return len(s.nodes) }

// Nodes returns per-node handles in index order (point queries,
// SetValue, Addr).
func (s *System) Nodes() []*Node { return s.nodes }

// Workers returns the heap scheduler's parallel worker (shard) count,
// or 0 when the system runs the legacy goroutine-per-node mode or the
// deployable single-node TCP shape (both schedule without shards).
func (s *System) Workers() int {
	switch {
	case s.rt != nil:
		return s.rt.Workers()
	case s.cluster != nil:
		if rt := s.cluster.Runtime(); rt != nil {
			return rt.Workers()
		}
	}
	return 0
}

// Schema returns the gossiped field schema.
func (s *System) Schema() *Schema { return s.schema }

// Stats returns the element-wise sum of every hosted node's protocol
// counters.
func (s *System) Stats() NodeStats {
	if s.rt != nil {
		return s.rt.Stats()
	}
	var agg NodeStats
	for _, n := range s.nodes {
		st := n.Stats()
		agg.Initiated += st.Initiated
		agg.Replies += st.Replies
		agg.Timeouts += st.Timeouts
		agg.LateReplies += st.LateReplies
		agg.Served += st.Served
		agg.EpochSwitches += st.EpochSwitches
		agg.StaleDropped += st.StaleDropped
		agg.SendErrors += st.SendErrors
		agg.BusyDropped += st.BusyDropped
		agg.PeerBusy += st.PeerBusy
	}
	return agg
}

// Reduce folds every hosted node's current approximation of the named
// field into r, shard by shard, without materializing an N-length
// vector — the observation primitive that scales to 10⁶ in-process
// nodes. r.Add runs under the owning shard's lock (heap mode) or the
// node's lock (goroutine mode): keep it fast and do not call back into
// the system. Returns promptly; ctx is checked once at entry.
func (s *System) Reduce(ctx context.Context, field string, r Reducer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.reduce(field, r.Add)
}

// reduce dispatches the fold to the backend.
func (s *System) reduce(field string, fn func(float64)) error {
	s.reduceCount.Add(1)
	switch {
	case s.cluster != nil:
		return s.cluster.ReduceField(field, fn)
	case s.rt != nil:
		return s.rt.ReduceField(field, fn)
	default:
		v, err := s.node.Estimate(field)
		if err != nil {
			return err
		}
		fn(v)
		return nil
	}
}

// Query takes one typed snapshot of the named field.
func (s *System) Query(ctx context.Context, field string) (Estimate, error) {
	return s.snapshot(ctx, field, 0)
}

// snapshot reduces the field into an Estimate stamped with seq.
func (s *System) snapshot(ctx context.Context, field string, seq int) (Estimate, error) {
	if s.momBuckets > 0 {
		return s.snapshotMoM(ctx, field, seq, s.momBuckets)
	}
	var run Running
	if err := s.Reduce(ctx, field, &run); err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Field:    field,
		Seq:      seq,
		Time:     time.Now(),
		Nodes:    run.N(),
		Mean:     run.Mean(),
		Variance: run.Variance(),
		Min:      run.Min(),
		Max:      run.Max(),
	}, nil
}

// momFold feeds one reduce pass into both the moment accumulator (for
// Nodes/Variance/Min/Max) and a median-of-means sketch (for the robust
// Mean).
type momFold struct {
	run Running
	mom *stats.MedianOfMeans
}

func (m *momFold) Add(x float64) {
	m.run.Add(x)
	m.mom.Add(x)
}

// snapshotMoM is snapshot with the Mean replaced by a median-of-means
// estimate over the requested number of buckets: each of the b buckets
// averages ~N/b node values and the median bucket mean is reported, so
// up to half the buckets can be poisoned by outliers without moving the
// result. Variance/Min/Max stay the raw moments — they describe the
// population, poison included.
func (s *System) snapshotMoM(ctx context.Context, field string, seq, buckets int) (Estimate, error) {
	fold := momFold{mom: stats.NewMedianOfMeans(buckets)}
	if err := s.Reduce(ctx, field, &fold); err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Field:    field,
		Seq:      seq,
		Time:     time.Now(),
		Nodes:    fold.run.N(),
		Mean:     fold.mom.Estimate(),
		Variance: fold.run.Variance(),
		Min:      fold.run.Min(),
		Max:      fold.run.Max(),
	}, nil
}

// QueryRobust takes one typed snapshot of the named field with its Mean
// computed by median-of-means over the given number of buckets,
// regardless of the system-wide WithMedianOfMeans setting (the
// per-query escape hatch behind /v1/query's ?mom= parameter).
func (s *System) QueryRobust(ctx context.Context, field string, buckets int) (Estimate, error) {
	if buckets < 1 {
		return Estimate{}, fmt.Errorf("repro: median-of-means needs at least 1 bucket, got %d", buckets)
	}
	return s.snapshotMoM(ctx, field, 0, buckets)
}

// Watch streams one typed snapshot of the named field per cycle (Δt)
// until ctx is cancelled or the system closes, then closes the
// channel. Cancellation takes effect within one cycle.
//
// All subscribers of one field share a single fan-out hub: the field is
// reduced once per cycle no matter how many watchers it has, and every
// watcher observes the same Seq sequence. Delivery is latest-wins: a
// receiver that falls behind finds the most recent snapshot in its
// channel, with Seq gaps marking the skipped ones.
func (s *System) Watch(ctx context.Context, field string) (<-chan Estimate, error) {
	if _, err := s.schema.Index(field); err != nil {
		return nil, err
	}
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.hubs == nil {
		s.hubs = make(map[string]*watchHub)
	}
	hub, ok := s.hubs[field]
	if !ok {
		lbl := metrics.Label{Key: "field", Value: field}
		hub = &watchHub{
			sys:   s,
			field: field,
			subsGauge: s.metrics.Gauge("repro_watch_subscribers",
				"Live Watch subscribers of the field.", lbl),
			snaps: s.metrics.Counter("repro_watch_snapshots_total",
				"Per-cycle snapshots the field's fan-out hub has taken.", lbl),
			drops: s.metrics.Counter("repro_watch_dropped_total",
				"Snapshots lost to latest-wins delivery, summed over the field's subscribers.", lbl),
		}
		s.hubs[field] = hub
		go hub.run()
	}
	return hub.add(ctx).ch, nil
}

// WaitConverged polls once per cycle until the named field's
// cross-node variance falls to at most tol, returning the converged
// snapshot. It returns the context's error if ctx is cancelled first,
// alongside the last snapshot taken.
func (s *System) WaitConverged(ctx context.Context, field string, tol float64) (Estimate, error) {
	ticker := time.NewTicker(s.cycle)
	defer ticker.Stop()
	var last Estimate
	for {
		est, err := s.snapshot(ctx, field, last.Seq)
		if err != nil {
			return last, err
		}
		last = est
		if est.Variance <= tol {
			return est, nil
		}
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-s.done:
			return last, fmt.Errorf("repro: system closed while waiting for convergence")
		case <-ticker.C:
		}
	}
}

// SetValue updates node i's local attribute to v and folds the
// difference into its current approximation of the named field, so the
// injected value enters the aggregate immediately — the feed API behind
// the service layer's POST /v1/values and the dynamic-signals workload.
//
// The apply is shard-local under the engine's existing round lock and
// mass-conserving: the engine waits (bounded) for the node's in-flight
// exchange to resolve before folding the delta, so the converged mean
// moves to exactly the new population mean (§3.2). Safe to call
// concurrently with exchanges, reduces and other SetValue calls.
func (s *System) SetValue(node int, field string, v float64) error {
	idx, err := s.schema.Index(field)
	if err != nil {
		return err
	}
	if node < 0 || node >= len(s.nodes) {
		return fmt.Errorf("repro: SetValue node %d out of range [0,%d)", node, len(s.nodes))
	}
	s.nodes[node].InjectValue(idx, v)
	return nil
}

// FailNode silently crashes hosted node i until ReviveNode: it stops
// initiating, drops all inbound traffic, and leaves every reduce —
// peers observe only missed reply deadlines, exactly like a process
// crash. Live fault injection for a running system (POST /v1/scenario).
func (s *System) FailNode(node int) error {
	if node < 0 || node >= len(s.nodes) {
		return fmt.Errorf("repro: FailNode node %d out of range [0,%d)", node, len(s.nodes))
	}
	s.nodes[node].Fail()
	return nil
}

// ReviveNode brings a failed node back as a fresh joiner: its state
// reinitializes from its current local value and it resumes gossiping
// on its existing cadence. A no-op for nodes that are not failed.
func (s *System) ReviveNode(node int) error {
	if node < 0 || node >= len(s.nodes) {
		return fmt.Errorf("repro: ReviveNode node %d out of range [0,%d)", node, len(s.nodes))
	}
	s.nodes[node].Revive()
	return nil
}

// FailedNodes returns how many hosted nodes are currently failed via
// FailNode.
func (s *System) FailedNodes() int {
	switch {
	case s.cluster != nil:
		return s.cluster.FailedNodes()
	case s.rt != nil:
		return s.rt.FailedNodes()
	default:
		if s.node.Failed() {
			return 1
		}
		return 0
	}
}

// SetAdversaries reconfigures a fraction of the hosted nodes as
// Byzantine adversaries on the live system (POST /v1/scenario's
// "adversary" section): behavior names match WithAdversaries, fraction
// 0 restores every node to honest operation, and adversaries are spread
// evenly across the node index space (and therefore across shards).
// Magnitude 0 defaults to 1000. Errors on the single-node TCP shape,
// which hosts no local population to corrupt.
func (s *System) SetAdversaries(behavior string, fraction, magnitude, target float64) error {
	b, err := adversaryBehavior(behavior)
	if err != nil {
		return err
	}
	if fraction < 0 || fraction >= 1 || math.IsNaN(fraction) {
		return fmt.Errorf("repro: adversary fraction %v outside [0,1)", fraction)
	}
	if magnitude == 0 {
		magnitude = 1000
	}
	n := len(s.nodes)
	var idx []int
	if fraction > 0 {
		count := int(fraction * float64(n))
		if count < 1 {
			count = 1
		}
		idx = make([]int, count)
		for i := range idx {
			idx[i] = i * n / count
		}
	}
	switch {
	case s.cluster != nil:
		return s.cluster.SetAdversaries(b, idx, magnitude, target)
	case s.rt != nil:
		return s.rt.SetAdversaries(b, idx, magnitude, target)
	default:
		return fmt.Errorf("repro: adversary injection needs locally hosted peers (single-node TCP shape has none)")
	}
}

// AdversaryCount returns how many hosted nodes currently act as
// Byzantine adversaries.
func (s *System) AdversaryCount() int {
	switch {
	case s.cluster != nil:
		return s.cluster.AdversaryCount()
	case s.rt != nil:
		return s.rt.AdversaryCount()
	default:
		return 0
	}
}

// SetRobust installs (or, with a zero config, removes) the robust-merge
// countermeasures on every hosted node of the live system. Each node's
// trim acceptance band seeds from the honest population's current
// spread, so install countermeasures after SetAdversaries, not before.
// Errors on the single-node TCP shape.
func (s *System) SetRobust(cfg RobustConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	switch {
	case s.cluster != nil:
		s.cluster.SetRobust(cfg.policy())
	case s.rt != nil:
		s.rt.SetRobust(cfg.policy())
	default:
		return fmt.Errorf("repro: robust merge needs locally hosted peers (single-node TCP shape has none)")
	}
	return nil
}

// RobustRejected returns the cumulative number of exchange halves the
// robust trim gate has rejected across all hosted nodes.
func (s *System) RobustRejected() uint64 {
	switch {
	case s.cluster != nil:
		return s.cluster.RobustRejected()
	case s.rt != nil:
		return s.rt.RobustRejected()
	default:
		return 0
	}
}

// SetLoss changes the in-memory fabric's message-loss probability on a
// live system (each message dropped independently with probability p —
// experiment E6's loss model, injectable at runtime). Errors on the TCP
// shapes, where the network is real and not simulated.
func (s *System) SetLoss(p float64) error {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return fmt.Errorf("repro: SetLoss probability %v outside [0,1]", p)
	}
	f := s.fabric()
	if f == nil {
		return fmt.Errorf("repro: SetLoss requires an in-memory fabric (TCP shapes carry real traffic)")
	}
	f.SetDropProbability(p)
	return nil
}

// fabric returns the in-memory message fabric, nil on TCP shapes.
func (s *System) fabric() *transport.Fabric {
	switch {
	case s.cluster != nil:
		return s.cluster.Fabric()
	case s.rt != nil:
		return s.rt.Fabric()
	default:
		return nil
	}
}

// Metrics returns the system's metric registry so module-local layers
// (the serve package) can register their own series into the same
// /metrics exposition. The registry accepts registrations at any time.
func (s *System) Metrics() *metrics.Registry { return s.metrics }

// SetServeStats installs the service layer's stream-count and
// drop-total readers, stamped into Telemetry snapshots as ServeStreams
// and ServeDropped. Pass nil to detach.
func (s *System) SetServeStats(fn func() (streams int, dropped uint64)) {
	if fn == nil {
		s.serveStats.Store(nil)
		return
	}
	s.serveStats.Store(&fn)
}

// Close stops the system (idempotently): live Watch channels close,
// nodes stop and endpoints shut down.
func (s *System) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		if s.ops != nil {
			s.ops.stop()
		}
		switch {
		case s.cluster != nil:
			s.cluster.Stop()
		case s.rt != nil:
			s.rt.Stop()
		default:
			s.node.Stop()
		}
	})
}
