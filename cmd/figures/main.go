// Command figures regenerates every evaluation artifact of the paper
// (Figures 3(a), 3(b) and 4) plus the repository's ablation studies,
// printing gnuplot-friendly TSV to stdout.
//
// Usage:
//
//	figures -fig 3a [-scale paper|quick] [-seed N]
//	figures -fig 3b
//	figures -fig 4
//	figures -fig rates          # §3.3 closed-form vs measured rates
//	figures -fig cycles         # §5 cycles-to-99.9% claim
//	figures -fig loss           # E6 message-loss ablation
//	figures -fig crash          # E6 crash ablation
//	figures -fig topology       # overlay-sensitivity ablation
//	figures -fig viewsize       # k-sweep ablation
//
// The paper scale runs the exact parameters of the publication (N up to
// 100 000, 50 runs) and takes minutes; quick scale shrinks sizes ~10× for
// a fast smoke pass with the same shape.
//
// -shards routes the shardable sweep combinations (seq pairing on the
// complete overlay) of figures 3a and 3b through the kernel's sharded
// tournament executor (-shards -1 = one shard per core) — the
// paper-scale path. Sharded runs are statistically equivalent but not
// bit-identical to the default sequential execution, so fixed-seed
// reference output uses -shards 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/avg"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func main() {
	fig := flag.String("fig", "3a", "artifact to regenerate: 3a, 3b, 4, rates, cycles, loss, crash, topology, viewsize")
	scale := flag.String("scale", "paper", "paper (full-size) or quick (~10x smaller)")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	shards := flag.Int("shards", 0, "sharded execution for shardable sweeps: 0 = sequential, -1 = one shard per core")
	flag.Parse()
	// One signal-scoped context for the whole artifact: Ctrl-C aborts a
	// mid-flight sweep within one cycle per in-flight run.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, *fig, *scale, *seed, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, fig, scale string, seed uint64, shards int) error {
	quick := scale == "quick"
	if !quick && scale != "paper" {
		return fmt.Errorf("unknown scale %q (want paper or quick)", scale)
	}
	switch fig {
	case "3a":
		cfg := experiments.DefaultFig3a()
		if quick {
			cfg.Sizes = []int{100, 300, 1000, 3000, 10000}
			cfg.Runs = 10
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		cfg.Shards = shards
		series, err := experiments.Fig3a(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 3(a): variance reduction after one AVG cycle vs network size")
		printRateReferences()
		printSeries(series)
	case "3b":
		cfg := experiments.DefaultFig3b()
		if quick {
			cfg.Size = 10000
			cfg.Runs = 10
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		cfg.Shards = shards
		series, err := experiments.Fig3b(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# Figure 3(b): per-cycle variance reduction while iterating AVG, N = %d\n", cfg.Size)
		printRateReferences()
		printSeries(series)
	case "4":
		cfg := experiments.DefaultFig4()
		if quick {
			cfg.MinSize, cfg.MaxSize = 9000, 11000
			cfg.Fluctuation = 10
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		reports, err := experiments.Fig4(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig4TSV(reports))
	case "rates":
		return printRatesTable(quick, seed)
	case "cycles":
		cfg := experiments.DefaultCyclesToAccuracy()
		if quick {
			cfg.Size = 2000
			cfg.Runs = 10
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		series, err := experiments.CyclesToAccuracy(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# E5: cycles until variance ratio ≤ %g (paper §5: ln(1000) ≈ 7 for rand)\n", cfg.Target)
		printSeries(series)
	case "loss":
		cfg := experiments.DefaultLossAblation()
		if quick {
			cfg.Size = 2000
			cfg.Runs = 8
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		res, err := experiments.LossAblation(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println("# E6 (loss): getPair_seq under message loss")
		fmt.Println("# loss_prob\treduction_rate\tmean_drift_sd_units")
		for _, r := range res {
			fmt.Printf("%.2f\t%.4f\t%.5f\n", r.LossProb, r.ReductionRate, r.MeanDrift)
		}
	case "crash":
		cfg := experiments.DefaultCrashAblation()
		if quick {
			cfg.Size = 2000
			cfg.Runs = 8
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		res, err := experiments.CrashAblation(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println("# E6 (crash): estimate error after crashing a fraction of nodes at cycle 0")
		fmt.Println("# crash_fraction\tmean_error_sd_units\tfinal_variance_ratio")
		for _, r := range res {
			fmt.Printf("%.2f\t%.5f\t%.3g\n", r.Fraction, r.MeanError, r.FinalVarianceRatio)
		}
	case "topology":
		cfg := experiments.DefaultTopologySweep()
		if quick {
			cfg.Size = 2000
			cfg.Runs = 8
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		series, err := experiments.TopologySweep(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("# Overlay ablation: geometric-mean per-cycle rate over %d cycles (lower = faster)\n", cfg.Cycles)
		printSeries(series)
	case "viewsize":
		cfg := experiments.DefaultViewSizeSweep()
		if quick {
			cfg.Size = 2000
			cfg.Runs = 5
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		series, err := experiments.ViewSizeSweep(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println("# View-size ablation: per-cycle rate on k-regular overlays")
		fmt.Print(series.TSV())
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

// printSeries renders each series as a TSV block separated by blank
// lines (gnuplot index-style).
func printSeries(series []*stats.Series) {
	for _, s := range series {
		fmt.Println()
		fmt.Print(s.TSV())
	}
}

// printRateReferences echoes the dotted reference lines of Figure 3.
func printRateReferences() {
	randRate, _ := avg.TheoreticalRate("rand")
	seqRate, _ := avg.TheoreticalRate("seq")
	fmt.Printf("# theory: 1/e = %.4f (rand), 1/(2*sqrt(e)) = %.4f (seq)\n", randRate, seqRate)
}

// printRatesTable measures the one-cycle reduction of every selector on
// the complete graph and prints it against the closed forms of §3.3.
func printRatesTable(quick bool, seed uint64) error {
	n, runs := 20000, 20
	if quick {
		n, runs = 4000, 10
	}
	if seed == 0 {
		seed = 99
	}
	fmt.Println("# E4: measured one-cycle variance reduction vs theory (complete graph)")
	fmt.Printf("# selector\ttheory\tmeasured\tstderr\truns (N=%d)\n", n)
	for _, sel := range []string{"pm", "rand", "seq", "pmrand"} {
		theory, _ := avg.TheoreticalRate(sel)
		var acc stats.Running
		for run := 0; run < runs; run++ {
			rng := xrand.New(seed + uint64(run)*7919)
			ratio, err := measureOnce(sel, n, rng)
			if err != nil {
				return err
			}
			acc.Add(ratio)
		}
		fmt.Printf("%s\t%.4f\t%.4f\t%.4f\t%d\n", sel, theory, acc.Mean(), acc.StdErr(), runs)
	}
	return nil
}

// measureOnce runs one AVG cycle with the named selector on a fresh
// complete graph and Gaussian vector.
func measureOnce(sel string, n int, rng *xrand.Rand) (float64, error) {
	g, err := experiments.BuildTopology(experiments.Complete, n, 0, rng)
	if err != nil {
		return 0, err
	}
	selector, err := avg.NewSelector(sel)
	if err != nil {
		return 0, err
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.NormFloat64()
	}
	runner, err := avg.NewRunner(g, selector, values, rng)
	if err != nil {
		return 0, err
	}
	before := runner.Variance()
	after := runner.Cycle()
	return after / before, nil
}
