// Command aggctl drives a multi-process aggregation cluster on one
// machine: it spawns n aggnode processes on loopback — the first as the
// seed, the rest bootstrapping from the seed's printed endpoint — then
// watches every process's periodic report until each one's average
// estimate agrees with the true mean of the injected values. It exits 0
// on cluster-wide convergence and 1 on timeout, which makes it both a
// demo harness and the CI smoke test for live gossip membership across
// real process and socket boundaries:
//
//	go build -o /tmp/agg ./cmd/aggnode ./cmd/aggctl
//	/tmp/agg/aggctl -bin /tmp/agg/aggnode -n 4 -cycle 100ms -timeout 60s
//
// Process j is given value 10·(j+1), so the cluster must converge to
// 5·(n+1) — a fixed point no single process starts at.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggctl:", err)
		os.Exit(1)
	}
}

func run() error {
	bin := flag.String("bin", "aggnode", "path to the aggnode binary")
	n := flag.Int("n", 4, "number of processes to spawn")
	cycle := flag.Duration("cycle", 100*time.Millisecond, "cycle length Δt passed to every process")
	report := flag.Duration("report", 500*time.Millisecond, "report interval passed to every process")
	tol := flag.Float64("tol", 0.05, "absolute tolerance around the true mean")
	timeout := flag.Duration("timeout", 60*time.Second, "give up after this long")
	flag.Parse()
	if *n < 2 {
		return fmt.Errorf("-n must be ≥ 2, got %d", *n)
	}

	want := 5 * float64(*n+1) // mean of 10·(j+1), j = 0..n-1
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	tracker := &convergence{latest: make([]float64, *n)}
	var procs []*exec.Cmd
	defer func() {
		// SIGTERM lets the children print their shutdown line; the
		// context's kill is the backstop.
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, p := range procs {
			_ = p.Wait()
		}
	}()

	spawn := func(j int, peers string) (*exec.Cmd, *bufio.Scanner, error) {
		args := []string{
			"-listen", "127.0.0.1:0",
			"-value", strconv.FormatFloat(10*float64(j+1), 'g', -1, 64),
			"-cycle", cycle.String(),
			"-report", report.String(),
		}
		if peers != "" {
			args = append(args, "-peers", peers)
		}
		cmd := exec.CommandContext(ctx, *bin, args...)
		cmd.Stderr = os.Stderr
		cmd.WaitDelay = 5 * time.Second
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, nil, fmt.Errorf("spawn process %d: %w", j, err)
		}
		return cmd, bufio.NewScanner(out), nil
	}

	// The seed must print its endpoint before anyone can bootstrap off it.
	seed, seedOut, err := spawn(0, "")
	if err != nil {
		return err
	}
	procs = append(procs, seed)
	seedAddr, err := awaitEndpoint(seedOut)
	if err != nil {
		return fmt.Errorf("seed process: %w", err)
	}
	fmt.Printf("aggctl: seed on %s, spawning %d more, want mean %g ± %g\n", seedAddr, *n-1, want, *tol)
	go tracker.watch(0, seedOut)

	for j := 1; j < *n; j++ {
		p, out, err := spawn(j, seedAddr)
		if err != nil {
			return err
		}
		procs = append(procs, p)
		go tracker.watch(j, out)
	}

	tick := time.NewTicker(*report)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster did not converge within %v: latest estimates %v (want %g ± %g)",
				*timeout, tracker.snapshot(), want, *tol)
		case <-tick.C:
			if est, ok := tracker.converged(want, *tol); ok {
				fmt.Printf("aggctl: converged, estimates %v\n", est)
				return nil
			}
		}
	}
}

// awaitEndpoint reads process stdout until the aggnode banner reveals
// the listening address.
func awaitEndpoint(sc *bufio.Scanner) (string, error) {
	const marker = "first endpoint "
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, marker); i >= 0 {
			addr := line[i+len(marker):]
			if j := strings.IndexByte(addr, ' '); j >= 0 {
				addr = addr[:j]
			}
			// Sub-addressed endpoints ("host:port#node") route on the
			// base address.
			if j := strings.IndexByte(addr, '#'); j >= 0 {
				addr = addr[:j]
			}
			return addr, nil
		}
	}
	return "", fmt.Errorf("stdout closed before the endpoint banner: %v", sc.Err())
}

// convergence tracks the latest reported average per process.
type convergence struct {
	mu     sync.Mutex
	latest []float64
	seen   []bool
}

// watch scans one process's report stream for "avg=..." tokens.
func (c *convergence) watch(j int, sc *bufio.Scanner) {
	for sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "avg=")
		if i < 0 {
			continue
		}
		tok := line[i+len("avg="):]
		if k := strings.IndexByte(tok, ' '); k >= 0 {
			tok = tok[:k]
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			continue
		}
		c.mu.Lock()
		if c.seen == nil {
			c.seen = make([]bool, len(c.latest))
		}
		c.latest[j] = v
		c.seen[j] = true
		c.mu.Unlock()
	}
}

// converged reports whether every process has reported an average
// within tol of want, returning the latest estimates either way.
func (c *convergence) converged(want, tol float64) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	est := append([]float64(nil), c.latest...)
	if c.seen == nil {
		return est, false
	}
	for j, v := range c.latest {
		if !c.seen[j] || v < want-tol || v > want+tol {
			return est, false
		}
	}
	return est, true
}

// snapshot returns the latest estimates for error reporting.
func (c *convergence) snapshot() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.latest...)
}
