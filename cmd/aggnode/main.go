// Command aggnode runs one live aggregation node over TCP — the
// deployable shape of the protocol. Start several on one machine (or
// many) and each continuously prints its approximation of the
// network-wide summary.
//
//	# terminal 1 (seed node)
//	aggnode -listen 127.0.0.1:7001 -value 10
//	# terminal 2..n
//	aggnode -listen 127.0.0.1:7002 -peers 127.0.0.1:7001 -value 20
//	aggnode -listen 127.0.0.1:7003 -peers 127.0.0.1:7001 -value 30
//
// Membership beyond the seed peers is discovered via piggybacked gossip;
// with -epoch the protocol restarts periodically so changing -value
// inputs (or SIGHUP-style reconfiguration in a real deployment) are
// picked up (§4 adaptivity).
//
// With -mode heap one process hosts -local N nodes on a shared worker
// pool (the sharded event-heap runtime): -workers sets the pool size,
// -batch the message coalescing window. This is the shape that scales a
// single process to 10⁵+ protocol participants:
//
//	aggnode -mode heap -local 10000 -workers 4 -batch 2ms \
//	        -listen 127.0.0.1:7001 -peers otherhost:7001
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/epoch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggnode:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	peers := flag.String("peers", "", "comma-separated seed peer addresses (empty: wait to be contacted)")
	value := flag.Float64("value", 0, "this node's local value a_i")
	cycle := flag.Duration("cycle", 500*time.Millisecond, "cycle length Δt")
	epochLen := flag.Duration("epoch", 0, "epoch length for periodic restarts (0 disables)")
	view := flag.Int("view", 8, "membership view capacity")
	report := flag.Duration("report", 2*time.Second, "interval between printed estimates")
	mode := flag.String("mode", "goroutine", "runtime: goroutine (one node per process) or heap (many nodes on a worker pool)")
	local := flag.Int("local", 2, "heap mode: number of nodes hosted by this process")
	workers := flag.Int("workers", 0, "heap mode: worker pool size (0: GOMAXPROCS)")
	batch := flag.Duration("batch", 0, "heap mode: message coalescing window (0: flush every scheduler round)")
	flag.Parse()

	var clock *epoch.Clock
	if *epochLen > 0 {
		c, err := epoch.NewClock(time.Unix(0, 0), *epochLen)
		if err != nil {
			return err
		}
		clock = c
	}

	switch *mode {
	case "goroutine":
	case "heap":
		return runHeap(*listen, splitPeers(*peers), *value, *cycle, clock, *view, *report, *local, *workers, *batch)
	default:
		return fmt.Errorf("unknown -mode %q (want goroutine or heap)", *mode)
	}

	endpoint, err := repro.NewTCPEndpoint(*listen)
	if err != nil {
		return err
	}
	self := endpoint.Addr()

	var sampler repro.Sampler
	seedList := splitPeers(*peers)
	if len(seedList) > 0 {
		sampler, err = repro.NewGossipSampler(self, *view, seedList)
	} else {
		// No seeds: start with an empty-ish view that fills as peers
		// contact us. A single self-seed is rejected, so use a gossip
		// sampler seeded with a placeholder that is forgotten on first
		// contact failure.
		sampler, err = repro.NewGossipSampler(self, *view, []string{self + "#boot"})
	}
	if err != nil {
		return err
	}

	cfg := repro.NodeConfig{
		Schema:      repro.NewSummarySchema(),
		Endpoint:    endpoint,
		Sampler:     sampler,
		Value:       *value,
		CycleLength: *cycle,
		Clock:       clock,
		Seed:        uint64(time.Now().UnixNano()),
	}

	node, err := repro.NewNode(cfg)
	if err != nil {
		return err
	}
	node.Start()
	defer node.Stop()
	fmt.Printf("aggnode listening on %s (value %g, Δt %v)\n", self, *value, *cycle)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	schema := cfg.Schema
	for {
		select {
		case <-sigCh:
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
			summary, err := repro.DecodeSummary(schema, node.State())
			if err != nil {
				return err
			}
			s := node.Stats()
			fmt.Printf("epoch=%d avg=%.4f min=%.4f max=%.4f exchanges=%d/%d timeouts=%d\n",
				node.Epoch(), summary.Mean, summary.Min, summary.Max,
				s.Replies, s.Initiated, s.Timeouts)
		}
	}
}

// runHeap hosts many nodes in one process on the sharded event-heap
// runtime: one TCP endpoint per worker (the first on the -listen
// address, the rest on ephemeral ports of the same host), nodes
// addressed as "host:port#index", same-destination messages coalesced
// into batch frames.
func runHeap(listen string, seeds []string, value float64, cycle time.Duration,
	clock *epoch.Clock, view int, report time.Duration,
	local, workers int, batch time.Duration) error {
	if local < 2 {
		return fmt.Errorf("heap mode hosts a node population: -local must be ≥ 2, got %d", local)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > local/2 {
		workers = max(local/2, 1)
	}
	endpoints := make([]repro.Endpoint, 0, workers)
	first, err := repro.NewTCPEndpoint(listen)
	if err != nil {
		return err
	}
	endpoints = append(endpoints, first)
	host, _, err := net.SplitHostPort(first.Addr())
	if err != nil {
		return err
	}
	for len(endpoints) < workers {
		ep, err := repro.NewTCPEndpoint(net.JoinHostPort(host, "0"))
		if err != nil {
			return err
		}
		endpoints = append(endpoints, ep)
	}

	schema := repro.NewSummarySchema()
	rt, err := repro.NewRuntime(repro.RuntimeConfig{
		Size:        local,
		Schema:      schema,
		Value:       func(int) float64 { return value },
		CycleLength: cycle,
		// A batched push-pull round trip spends up to one window on the
		// push and one on the reply; budget the reply deadline for both
		// or window batching converts latency into spurious timeouts.
		ReplyTimeout: cycle/2 + 4*batch,
		Clock:        clock,
		Endpoints:    endpoints,
		BatchWindow:  batch,
		Seed:         uint64(time.Now().UnixNano()),
		Samplers: func(i int, self string, localAddrs []string) (repro.Sampler, error) {
			// Bootstrap: the remote seeds plus the next local sibling,
			// so the local mesh is connected even before any remote
			// gossip arrives.
			boot := append([]string{}, seeds...)
			if sib := localAddrs[(i+1)%len(localAddrs)]; sib != self {
				boot = append(boot, sib)
			}
			return repro.NewGossipSampler(self, view, boot)
		},
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Stop()
	fmt.Printf("aggnode hosting %d nodes on %d workers, first endpoint %s (value %g, Δt %v, batch window %v)\n",
		local, rt.Workers(), first.Addr(), value, cycle, batch)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(report)
	defer ticker.Stop()
	probe := rt.Nodes()[0]
	for {
		select {
		case <-sigCh:
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
			summary, err := repro.DecodeSummary(schema, probe.State())
			if err != nil {
				return err
			}
			s := rt.Stats()
			fmt.Printf("epoch=%d avg=%.4f min=%.4f max=%.4f exchanges=%d/%d timeouts=%d busy=%d\n",
				probe.Epoch(), summary.Mean, summary.Min, summary.Max,
				s.Replies, s.Initiated, s.Timeouts, s.PeerBusy)
		}
	}
}

// splitPeers parses the -peers flag.
func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
