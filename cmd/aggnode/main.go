// Command aggnode runs one live aggregation node over TCP — the
// deployable shape of the protocol. Start several on one machine (or
// many) and each continuously prints its approximation of the
// network-wide summary.
//
//	# terminal 1 (seed node)
//	aggnode -listen 127.0.0.1:7001 -value 10
//	# terminal 2..n
//	aggnode -listen 127.0.0.1:7002 -peers 127.0.0.1:7001 -value 20
//	aggnode -listen 127.0.0.1:7003 -peers 127.0.0.1:7001 -value 30
//
// Membership beyond the seed peers is discovered via piggybacked gossip;
// with -epoch the protocol restarts periodically so changing -value
// inputs (or SIGHUP-style reconfiguration in a real deployment) are
// picked up (§4 adaptivity).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/epoch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggnode:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	peers := flag.String("peers", "", "comma-separated seed peer addresses (empty: wait to be contacted)")
	value := flag.Float64("value", 0, "this node's local value a_i")
	cycle := flag.Duration("cycle", 500*time.Millisecond, "cycle length Δt")
	epochLen := flag.Duration("epoch", 0, "epoch length for periodic restarts (0 disables)")
	view := flag.Int("view", 8, "membership view capacity")
	report := flag.Duration("report", 2*time.Second, "interval between printed estimates")
	flag.Parse()

	endpoint, err := repro.NewTCPEndpoint(*listen)
	if err != nil {
		return err
	}
	self := endpoint.Addr()

	var sampler repro.Sampler
	seedList := splitPeers(*peers)
	if len(seedList) > 0 {
		sampler, err = repro.NewGossipSampler(self, *view, seedList)
	} else {
		// No seeds: start with an empty-ish view that fills as peers
		// contact us. A single self-seed is rejected, so use a gossip
		// sampler seeded with a placeholder that is forgotten on first
		// contact failure.
		sampler, err = repro.NewGossipSampler(self, *view, []string{self + "#boot"})
	}
	if err != nil {
		return err
	}

	cfg := repro.NodeConfig{
		Schema:      repro.NewSummarySchema(),
		Endpoint:    endpoint,
		Sampler:     sampler,
		Value:       *value,
		CycleLength: *cycle,
		Seed:        uint64(time.Now().UnixNano()),
	}
	if *epochLen > 0 {
		clock, err := epoch.NewClock(time.Unix(0, 0), *epochLen)
		if err != nil {
			return err
		}
		cfg.Clock = clock
	}

	node, err := repro.NewNode(cfg)
	if err != nil {
		return err
	}
	node.Start()
	defer node.Stop()
	fmt.Printf("aggnode listening on %s (value %g, Δt %v)\n", self, *value, *cycle)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	schema := cfg.Schema
	for {
		select {
		case <-sigCh:
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
			summary, err := repro.DecodeSummary(schema, node.State())
			if err != nil {
				return err
			}
			s := node.Stats()
			fmt.Printf("epoch=%d avg=%.4f min=%.4f max=%.4f exchanges=%d/%d timeouts=%d\n",
				node.Epoch(), summary.Mean, summary.Min, summary.Max,
				s.Replies, s.Initiated, s.Timeouts)
		}
	}
}

// splitPeers parses the -peers flag.
func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
