// Command aggnode runs live aggregation nodes over TCP — the
// deployable shape of the protocol, assembled through the library's
// front door, repro.Open. Start several processes on one machine (or
// many) and each continuously prints its approximation of the
// network-wide summary.
//
//	# terminal 1 (seed node)
//	aggnode -listen 127.0.0.1:7001 -value 10
//	# terminal 2..n
//	aggnode -listen 127.0.0.1:7002 -peers 127.0.0.1:7001 -value 20
//	aggnode -listen 127.0.0.1:7003 -peers 127.0.0.1:7001 -value 30
//
// Membership beyond the seed peers is discovered via piggybacked gossip;
// with -epoch the protocol restarts periodically so changing -value
// inputs (or SIGHUP-style reconfiguration in a real deployment) are
// picked up (§4 adaptivity).
//
// With -local N > 1 one process hosts N nodes on the sharded
// event-heap runtime: -workers sets the parallel pool size (default
// one per core), -batch the message coalescing window. This is the
// shape that scales a single process to 10⁵+ protocol participants:
//
//	aggnode -local 10000 -workers 4 -batch 2ms \
//	        -listen 127.0.0.1:7001 -peers otherhost:7001
//
// Observability: -ops ADDR starts the operational HTTP endpoint
// (Prometheus /metrics, /healthz, /varz, /debug/pprof/) with the
// aggregation-service API mounted beside it under /v1/ (SSE estimate
// streams, one-shot queries, value injection, fault injection — see
// package repro/serve and cmd/aggload), -trace N
// samples every N-th exchange per shard into a trace ring printed with
// each report, and the periodic report itself includes completion
// percentage, the observed convergence factor ρ̂, steal counts and
// per-worker balance:
//
//	aggnode -local 100000 -listen 127.0.0.1:7001 \
//	        -ops 127.0.0.1:9090 -trace 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggnode:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	peers := flag.String("peers", "", "comma-separated seed peer addresses (empty: wait to be contacted)")
	value := flag.Float64("value", 0, "this process's local value a_i (shared by all -local nodes)")
	cycle := flag.Duration("cycle", 500*time.Millisecond, "cycle length Δt")
	epochLen := flag.Duration("epoch", 0, "epoch length for periodic restarts (0 disables)")
	view := flag.Int("view", 8, "membership view capacity")
	report := flag.Duration("report", 2*time.Second, "interval between printed estimates")
	local := flag.Int("local", 1, "number of nodes hosted by this process (> 1 uses the event-heap runtime)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "heap runtime: parallel worker pool size")
	batch := flag.Duration("batch", 0, "heap runtime: message coalescing window (0: flush every scheduler round)")
	ops := flag.String("ops", "", "ops HTTP listen address serving /metrics, /healthz, /varz and /debug/pprof/ (empty disables)")
	trace := flag.Int("trace", 0, "record every n-th exchange per shard into the trace ring; each report prints the most recent records (0 disables)")
	flag.Parse()
	if *local < 1 {
		return fmt.Errorf("-local must be ≥ 1, got %d", *local)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	schema := repro.NewSummarySchema()
	opts := []repro.Option{
		repro.WithContext(ctx),
		repro.WithTCP(*listen, splitPeers(*peers)...),
		repro.WithSize(*local),
		repro.WithSchema(schema),
		repro.WithValue(*value),
		repro.WithCycleLength(*cycle),
		repro.WithMembershipView(*view),
		repro.WithSeed(uint64(time.Now().UnixNano())),
	}
	if *epochLen > 0 {
		opts = append(opts, repro.WithEpochLength(*epochLen))
	}
	if *workers > 0 {
		opts = append(opts, repro.WithWorkers(*workers))
	}
	if *batch > 0 {
		opts = append(opts, repro.WithBatchWindow(*batch))
	}
	if *ops != "" {
		opts = append(opts, repro.WithOps(*ops))
	}
	if *trace > 0 {
		opts = append(opts, repro.WithTraceSampling(*trace))
	}
	sys, err := repro.Open(opts...)
	if err != nil {
		return err
	}
	defer sys.Close()
	if *ops != "" {
		if _, err := serve.Attach(sys); err != nil {
			return err
		}
	}

	probe := sys.Nodes()[0]
	fmt.Printf("aggnode hosting %d node(s) on %d worker(s), first endpoint %s (value %g, Δt %v, batch window %v)\n",
		sys.Size(), max(sys.Workers(), 1), probe.Addr(), *value, *cycle, *batch)
	if addr := sys.OpsAddr(); addr != "" {
		fmt.Printf("ops endpoint on http://%s (/metrics /healthz /varz /debug/pprof/ /v1/)\n", addr)
	}

	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	var lastInitiated uint64
	lastReport := time.Now()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
			summary, err := repro.DecodeSummary(schema, probe.State())
			if err != nil {
				return err
			}
			tel := sys.Telemetry()
			s := tel.Stats
			now := time.Now()
			rate := float64(s.Initiated-lastInitiated) / now.Sub(lastReport).Seconds()
			lastInitiated, lastReport = s.Initiated, now
			perWorker := rate / float64(max(sys.Workers(), 1))
			fmt.Printf("epoch=%d avg=%.4f min=%.4f max=%.4f exchanges=%d/%d (%s) rate=%.0f/s (%.0f/s/worker) rho=%s timeouts=%d busy=%d steals=%d balance=%s\n",
				probe.Epoch(), summary.Mean, summary.Min, summary.Max,
				s.Replies, s.Initiated, percent(tel.Completion), rate, perWorker,
				rho(tel.Rho), s.Timeouts, s.PeerBusy, tel.Steals,
				balance(tel.ShardInitiated))
			if *trace > 0 {
				for _, r := range sys.Trace(3) {
					fmt.Printf("  trace %s\n", r)
				}
			}
		}
	}
}

// percent renders a completion ratio ("—" before the first exchange).
func percent(v float64) string {
	if v != v { // NaN
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

// rho renders the observed convergence factor ("—" until the tracker
// has seen two informative cycles).
func rho(v float64) string {
	if v != v { // NaN
		return "—"
	}
	return fmt.Sprintf("%.3f", v)
}

// balance summarizes per-worker load as min/max shares of the initiated
// exchanges ("n/a" for unsharded shapes or before any exchange).
func balance(shard []uint64) string {
	if len(shard) == 0 {
		return "n/a"
	}
	var total, lo, hi uint64
	lo = shard[0]
	for _, v := range shard {
		total += v
		lo = min(lo, v)
		hi = max(hi, v)
	}
	if total == 0 {
		return "n/a"
	}
	mean := float64(total) / float64(len(shard))
	return fmt.Sprintf("%.2f–%.2f×", float64(lo)/mean, float64(hi)/mean)
}

// splitPeers parses the -peers flag.
func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
