package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestScenarioModeGoldenCSV pins the end-to-end -scenario path: a JSON
// grid file from testdata runs through the scenario engine and must
// produce byte-identical CSV on every platform and run.
func TestScenarioModeGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := runScenario(context.Background(), filepath.Join("testdata", "mini-sweep.json"), "csv", "", 0, &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "mini-sweep.golden.csv")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("scenario CSV diverged from golden file;\ngot:\n%s", buf.Bytes())
	}
	// Sanity: 2 selectors × 2 loss probs × 2 reps × 4 rows (cycle 0-3)
	// plus the header.
	if lines := strings.Count(buf.String(), "\n"); lines != 1+2*2*2*4 {
		t.Fatalf("got %d lines, want %d", lines, 1+2*2*2*4)
	}
}

// TestScenarioAdversaryGoldenCSV pins the adversary axis end to end: a
// behavior × fraction sweep with the robust countermeasures enabled
// must be byte-identical run to run (deterministic adversary placement,
// RNG stream discipline and rejection accounting), with the Corruption
// and Rejected columns populated.
func TestScenarioAdversaryGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := runScenario(context.Background(), filepath.Join("testdata", "adversary-mini.json"), "csv", "", 0, &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "adversary-mini.golden.csv")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("adversary scenario CSV diverged from golden file;\ngot:\n%s", buf.Bytes())
	}
	// Sanity: 2 behaviors × 2 fractions × 2 reps × 4 rows (cycle 0-3)
	// plus the header.
	if lines := strings.Count(buf.String(), "\n"); lines != 1+2*2*2*4 {
		t.Fatalf("got %d lines, want %d", lines, 1+2*2*2*4)
	}
}

// TestScenarioModeJSONL smoke-tests the alternate format end to end.
func TestScenarioModeJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := runScenario(context.Background(), filepath.Join("testdata", "mini-sweep.json"), "jsonl", "", 0, &buf); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.HasPrefix(first, `{"scenario":"mini-sweep"`) {
		t.Fatalf("unexpected first row: %s", first)
	}
}

// TestScenarioModeRejectsUnknownFormat: flag validation reaches the
// caller as an error, not a panic.
func TestScenarioModeRejectsUnknownFormat(t *testing.T) {
	if err := runScenario(context.Background(), filepath.Join("testdata", "mini-sweep.json"), "xml", "", 0, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
