// Command aggsim runs one anti-entropy averaging simulation (the paper's
// algorithm AVG, Figure 2) and prints the per-cycle variance trajectory,
// the per-cycle reduction ratio and the comparison to the closed-form
// rate of §3.3.
//
// Usage:
//
//	aggsim -n 10000 -selector seq -topology complete -cycles 30
//	aggsim -n 100000 -selector rand -topology kregular -view 20 -loss 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var cfg repro.SimulationConfig
	flag.IntVar(&cfg.Size, "n", 10000, "network size")
	flag.StringVar(&cfg.Selector, "selector", "seq", "pair selector: pm, rand, seq, pmrand")
	flag.StringVar(&cfg.Topology, "topology", "complete", "overlay: complete, kregular, view, ring, smallworld, scalefree")
	flag.IntVar(&cfg.ViewSize, "view", 20, "degree of non-complete overlays")
	flag.IntVar(&cfg.Cycles, "cycles", 30, "AVG cycles to run")
	flag.Float64Var(&cfg.LossProbability, "loss", 0, "per-message drop probability")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()
	cfg.Seed = *seed

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "aggsim:", err)
		os.Exit(1)
	}
}

func run(cfg repro.SimulationConfig) error {
	res, err := repro.Simulate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# anti-entropy averaging: n=%d selector=%s topology=%s loss=%.2f seed=%d\n",
		cfg.Size, cfg.Selector, cfg.Topology, cfg.LossProbability, cfg.Seed)
	fmt.Println("# cycle\tvariance\treduction")
	for i, v := range res.Variances {
		if i == 0 {
			fmt.Printf("%d\t%.6g\t-\n", i, v)
			continue
		}
		prev := res.Variances[i-1]
		if prev > 0 {
			fmt.Printf("%d\t%.6g\t%.4f\n", i, v, v/prev)
		} else {
			fmt.Printf("%d\t%.6g\t-\n", i, v)
		}
	}
	fmt.Printf("\nfinal mean estimate : %.6g\n", res.FinalMean)
	fmt.Printf("per-cycle reduction : %.4f (geometric mean)\n", res.ReductionRate)
	if theory, ok := repro.TheoreticalRate(cfg.Selector); ok && cfg.LossProbability == 0 {
		fmt.Printf("theory (§3.3)       : %.4f on the complete graph\n", theory)
	}
	return nil
}
