// Command aggsim runs anti-entropy averaging simulations.
//
// In single-run mode it executes one instance of the paper's algorithm
// AVG (Figure 2) and prints the per-cycle variance trajectory, the
// per-cycle reduction ratio and the comparison to the closed-form rate
// of §3.3:
//
//	aggsim -n 10000 -selector seq -topology complete -cycles 30
//	aggsim -n 100000 -selector rand -topology kregular -view 20 -loss 0.05
//	aggsim -n 1000000 -selector seq -shards -1       # sharded paper-scale run
//
// In scenario mode it executes a declarative JSON scenario file — a
// single spec or a base spec crossed with swept axes (see
// internal/scenario and examples/scenarios/) — on the scenario
// engine's worker pool and streams per-cycle reduction rows as CSV or
// JSON-lines:
//
//	aggsim -scenario examples/scenarios/loss-sweep.json
//	aggsim -scenario sweep.json -format jsonl -out rows.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/scenario"
)

func main() {
	var cfg repro.SimulationConfig
	flag.IntVar(&cfg.Size, "n", 10000, "network size")
	flag.StringVar(&cfg.Selector, "selector", "seq", "pair selector: pm, rand, seq, pmrand")
	flag.StringVar(&cfg.Topology, "topology", "complete", "overlay: complete, kregular, view, ring, smallworld, scalefree")
	flag.IntVar(&cfg.ViewSize, "view", 20, "degree of non-complete overlays")
	flag.IntVar(&cfg.Cycles, "cycles", 30, "AVG cycles to run")
	flag.Float64Var(&cfg.LossProbability, "loss", 0, "per-message drop probability")
	flag.IntVar(&cfg.Shards, "shards", 0, "sharded executor: 0 = sequential, -1 = one shard per core")
	seed := flag.Uint64("seed", 42, "random seed")
	scenarioPath := flag.String("scenario", "", "run a JSON scenario file (spec or grid) instead of a single simulation")
	format := flag.String("format", "csv", "scenario output format: csv or jsonl")
	outPath := flag.String("out", "", "scenario output file (default stdout)")
	workers := flag.Int("workers", 0, "scenario worker pool size (0 = one per core)")
	flag.Parse()
	cfg.Seed = *seed

	var err error
	if *scenarioPath != "" {
		err = runScenario(*scenarioPath, *format, *outPath, *workers, os.Stdout)
	} else {
		err = run(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggsim:", err)
		os.Exit(1)
	}
}

// runScenario executes a scenario file and streams rows in the chosen
// format to outPath (or stdout when outPath is empty).
func runScenario(path, format, outPath string, workers int, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	grid, err := scenario.ParseFile(data)
	if err != nil {
		return err
	}
	out := stdout
	var file *os.File
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		file = f
		out = f
	}
	var w scenario.Writer
	switch format {
	case "csv":
		w = scenario.NewCSVWriter(out)
	case "jsonl":
		w = scenario.NewJSONLWriter(out)
	default:
		if file != nil {
			file.Close()
		}
		return fmt.Errorf("unknown format %q (want csv or jsonl)", format)
	}
	err = scenario.Runner{Workers: workers}.RunGrid(grid, w)
	if file != nil {
		// A close error after a successful flush still means truncated
		// output (write-back failures surface here on some filesystems);
		// it must not exit 0.
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func run(cfg repro.SimulationConfig) error {
	res, err := repro.Simulate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# anti-entropy averaging: n=%d selector=%s topology=%s loss=%.2f shards=%d seed=%d\n",
		cfg.Size, cfg.Selector, cfg.Topology, cfg.LossProbability, cfg.Shards, cfg.Seed)
	fmt.Println("# cycle\tvariance\treduction")
	for i, v := range res.Variances {
		if i == 0 {
			fmt.Printf("%d\t%.6g\t-\n", i, v)
			continue
		}
		prev := res.Variances[i-1]
		if prev > 0 {
			fmt.Printf("%d\t%.6g\t%.4f\n", i, v, v/prev)
		} else {
			fmt.Printf("%d\t%.6g\t-\n", i, v)
		}
	}
	fmt.Printf("\nfinal mean estimate : %.6g\n", res.FinalMean)
	fmt.Printf("per-cycle reduction : %.4f (geometric mean)\n", res.ReductionRate)
	if theory, ok := repro.TheoreticalRate(cfg.Selector); ok && cfg.LossProbability == 0 {
		fmt.Printf("theory (§3.3)       : %.4f on the complete graph\n", theory)
	}
	return nil
}
