// Command aggsim runs anti-entropy averaging simulations through the
// library's front door, repro.Run.
//
// In single-run mode it executes one instance of the paper's algorithm
// AVG (Figure 2) and prints the per-cycle variance trajectory, the
// per-cycle reduction ratio and the comparison to the closed-form rate
// of §3.3:
//
//	aggsim -n 10000 -selector seq -topology complete -cycles 30
//	aggsim -n 100000 -selector rand -topology kregular -view 20 -loss 0.05
//	aggsim -n 1000000 -selector seq -shards -1       # sharded paper-scale run
//
// In scenario mode it executes a declarative JSON scenario file — a
// single spec or a base spec crossed with swept axes (see the scenario
// package and examples/scenarios/) — on the scenario engine's worker
// pool and streams per-cycle reduction rows as CSV or JSON-lines:
//
//	aggsim -scenario examples/scenarios/loss-sweep.json
//	aggsim -scenario sweep.json -format jsonl -out rows.jsonl
//
// Ctrl-C cancels the run's context: mid-flight sweeps stop within one
// cycle per in-flight run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/scenario"
)

func main() {
	size := flag.Int("n", 10000, "network size")
	selector := flag.String("selector", "seq", "pair selector: pm, rand, seq, pmrand")
	topo := flag.String("topology", "complete", "overlay: complete, kregular, view, ring, smallworld, scalefree")
	view := flag.Int("view", 20, "degree of non-complete overlays")
	cycles := flag.Int("cycles", 30, "AVG cycles to run")
	loss := flag.Float64("loss", 0, "per-message drop probability")
	shards := flag.Int("shards", 0, "sharded executor: 0 = sequential, -1 = one shard per core")
	seed := flag.Uint64("seed", 42, "random seed")
	scenarioPath := flag.String("scenario", "", "run a JSON scenario file (spec or grid) instead of a single simulation")
	format := flag.String("format", "csv", "scenario output format: csv or jsonl")
	outPath := flag.String("out", "", "scenario output file (default stdout)")
	workers := flag.Int("workers", 0, "scenario worker pool size (0 = one per core)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var err error
	if *scenarioPath != "" {
		err = runScenario(ctx, *scenarioPath, *format, *outPath, *workers, os.Stdout)
	} else {
		err = run(ctx, *size, *selector, *topo, *view, *cycles, *loss, *shards, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggsim:", err)
		os.Exit(1)
	}
}

// runScenario executes a scenario file and streams rows in the chosen
// format to outPath (or stdout when outPath is empty).
func runScenario(ctx context.Context, path, format, outPath string, workers int, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	grid, err := scenario.ParseFile(data)
	if err != nil {
		return err
	}
	out := stdout
	var file *os.File
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		file = f
		out = f
	}
	var w scenario.Writer
	switch format {
	case "csv":
		w = scenario.NewCSVWriter(out)
	case "jsonl":
		w = scenario.NewJSONLWriter(out)
	default:
		if file != nil {
			file.Close()
		}
		return fmt.Errorf("unknown format %q (want csv or jsonl)", format)
	}
	err = scenario.Runner{Workers: workers}.RunGrid(ctx, grid, w)
	if file != nil {
		// A close error after a successful flush still means truncated
		// output (write-back failures surface here on some filesystems);
		// it must not exit 0.
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// run executes a single flag-assembled spec through repro.Run. The
// spec carries scenario.RawSeed(seed) so -seed N prints exactly what
// the historical Simulate-based CLI printed for the same seed.
func run(ctx context.Context, size int, selector, topo string, view, cycles int, loss float64, shards int, seed uint64) error {
	sel, err := scenario.ParseSelector(selector)
	if err != nil {
		return err
	}
	overlay, err := scenario.ParseTopology(topo)
	if err != nil {
		return err
	}
	res, err := repro.Run(ctx, scenario.Spec{
		Size:     size,
		Cycles:   cycles,
		Selector: sel,
		Topology: overlay,
		ViewSize: view,
		LossProb: loss,
		Shards:   shards,
		Seed:     scenario.RawSeed(seed),
	})
	if err != nil {
		return err
	}
	fmt.Printf("# anti-entropy averaging: n=%d selector=%s topology=%s loss=%.2f shards=%d sharded=%v seed=%d\n",
		size, res.Spec.Selector, res.Spec.Topology, loss, shards, res.Sharded, seed)
	fmt.Println("# cycle\tvariance\treduction")
	for i, v := range res.Variances {
		if i == 0 {
			fmt.Printf("%d\t%.6g\t-\n", i, v)
			continue
		}
		prev := res.Variances[i-1]
		if prev > 0 {
			fmt.Printf("%d\t%.6g\t%.4f\n", i, v, v/prev)
		} else {
			fmt.Printf("%d\t%.6g\t-\n", i, v)
		}
	}
	fmt.Printf("\nfinal mean estimate : %.6g\n", res.FinalMean)
	fmt.Printf("per-cycle reduction : %.4f (geometric mean)\n", res.ReductionRate)
	if theory, ok := repro.TheoreticalRate(res.Spec.Selector.String()); ok && loss == 0 {
		fmt.Printf("theory (§3.3)       : %.4f on the complete graph\n", theory)
	}
	return nil
}
