// Command aggload is the serve-layer load harness: it opens K
// concurrent SSE watchers against an aggregation service (self-hosted
// or remote), drives a write workload through POST /v1/values, and
// reports delivery rate, staleness percentiles, latest-wins drop
// counts and memory — the tool that demonstrates 10⁵ concurrent
// watchers on one box with bounded memory.
//
// Self-hosted (default) it opens an in-process repro.System and serves
// it; with -inproc the HTTP traffic runs over in-memory pipes instead
// of TCP sockets, so watcher counts are not limited by file
// descriptors (every stream is still real HTTP through the full
// net/http + serve handler stack):
//
//	aggload -selfhost 10000 -watchers 100000 -inproc -cycle 1s -duration 60s
//
// Against a remote service (aggnode -ops with the serve layer mounted):
//
//	aggload -url http://host:9090 -watchers 1000
//
// Exit status is non-zero when any watcher saw a hard error (broken
// stream, bad status — latest-wins skips are not errors) or when the
// post-load convergence check fails, which makes it CI-smokeable.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/serve"
)

func main() {
	var (
		urlFlag  = flag.String("url", "", "base URL of a remote serve endpoint; empty self-hosts a system in-process")
		selfhost = flag.Int("selfhost", 10000, "self-hosted system size (nodes)")
		inproc   = flag.Bool("inproc", false, "self-host over in-memory pipes instead of TCP (no file descriptors per watcher; required beyond ~5k watchers)")
		cycle    = flag.Duration("cycle", 200*time.Millisecond, "self-hosted system cycle length Δt")
		watchers = flag.Int("watchers", 1000, "concurrent SSE stream subscribers")
		field    = flag.String("field", "avg", "field to stream and write")
		writes   = flag.Float64("writes", 100, "value injections per second (0 disables the write workload)")
		batch    = flag.Int("batch", 100, "injections per POST /v1/values request")
		duration = flag.Duration("duration", 30*time.Second, "measurement window after all watchers are up")
		report   = flag.Duration("report", 5*time.Second, "progress report interval")
		tol      = flag.Float64("tol", 0.05, "post-load convergence check: require tracking_error ≤ tol (self-hosted only; negative disables)")
		settle   = flag.Duration("settle", 30*time.Second, "how long the post-load convergence check may take")
	)
	flag.Parse()

	var (
		sys  *repro.System
		dial func() (net.Conn, error)
		base = "aggload" // Host header / URL host for self-hosted modes
	)
	switch {
	case *urlFlag != "":
		u, err := url.Parse(*urlFlag)
		if err != nil || u.Host == "" {
			fatalf("bad -url %q: %v", *urlFlag, err)
		}
		base = u.Host
		dial = func() (net.Conn, error) { return net.Dial("tcp", u.Host) }
	case *inproc:
		sys = openSystem(*selfhost, *cycle, "")
		ln := newPipeListener()
		srv := &http.Server{Handler: serve.New(sys)}
		go func() { _ = srv.Serve(ln) }()
		defer func() { _ = srv.Close() }()
		dial = ln.Dial
	default:
		sys = openSystem(*selfhost, *cycle, "127.0.0.1:0")
		if _, err := serve.Attach(sys); err != nil {
			fatalf("attach serve: %v", err)
		}
		addr := sys.OpsAddr()
		base = addr
		dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if sys != nil {
		defer sys.Close()
	}

	httpc := &http.Client{Transport: &http.Transport{
		DialContext: func(context.Context, string, string) (net.Conn, error) { return dial() },
	}}

	st := &loadStats{}
	stop := make(chan struct{})

	// Ramp the watchers up. Each is one goroutine holding one HTTP
	// connection; with -inproc a "connection" is a synchronous in-memory
	// pipe, so 10⁵ of them cost goroutine stacks and buffers, not file
	// descriptors.
	var wg sync.WaitGroup
	fmt.Printf("aggload: opening %d watchers on %s/v1/stream/%s\n", *watchers, base, *field)
	rampStart := time.Now()
	for i := 0; i < *watchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			watch(dial, base, *field, st, stop)
		}()
	}
	for int(st.streamsUp.Load())+int(st.hardErrors.Load()) < *watchers {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("aggload: %d watchers up in %.1fs (%d failed to start)\n",
		st.streamsUp.Load(), time.Since(rampStart).Seconds(), st.hardErrors.Load())

	// Write workload: inject uniform values so the aggregate keeps
	// moving while the fan-out runs.
	writersDone := make(chan struct{})
	if *writes > 0 {
		go func() {
			defer close(writersDone)
			writeLoad(httpc, base, *field, sizeOf(sys, *selfhost), *writes, *batch, st, stop)
		}()
	} else {
		close(writersDone)
	}

	// Measurement window with periodic reports.
	start := time.Now()
	ticker := time.NewTicker(*report)
	deadline := time.After(*duration)
	var lastEvents uint64
	var lastAt = start
loop:
	for {
		select {
		case <-deadline:
			ticker.Stop()
			break loop
		case <-ticker.C:
			now := time.Now()
			ev := st.events.Load()
			rate := float64(ev-lastEvents) / now.Sub(lastAt).Seconds()
			lastEvents, lastAt = ev, now
			p50, p90, p99, maxMS := st.staleness.percentiles()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			fmt.Printf("t=%4.0fs streams=%d events=%d (%.0f/s) soft_drops=%d hard_errors=%d staleness_ms p50=%d p90=%d p99=%d max=%d heap=%dMB goroutines=%d\n",
				now.Sub(start).Seconds(), st.streamsUp.Load(), ev, rate,
				st.softDrops.Load(), st.hardErrors.Load(),
				p50, p90, p99, maxMS,
				ms.HeapAlloc>>20, runtime.NumGoroutine())
		}
	}
	close(stop)
	<-writersDone

	// Post-load convergence check: with the writers stopped, the
	// system's own telemetry must report the estimate tracking the true
	// mean of everything we injected.
	converged, trackErr := true, 0.0
	if *tol >= 0 && sys != nil {
		converged, trackErr = waitTracking(httpc, base, *tol, *settle)
	}

	wg.Wait()
	elapsed := time.Since(start).Seconds()
	p50, p90, p99, maxMS := st.staleness.percentiles()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	summary := map[string]any{
		"watchers":       *watchers,
		"events":         st.events.Load(),
		"events_per_s":   float64(st.events.Load()) / elapsed,
		"soft_drops":     st.softDrops.Load(),
		"hard_errors":    st.hardErrors.Load(),
		"values_written": st.valuesWritten.Load(),
		"staleness_ms":   map[string]int64{"p50": p50, "p90": p90, "p99": p99, "max": maxMS},
		"heap_mb":        ms.HeapAlloc >> 20,
		"tracking_error": trackErr,
		"converged":      converged,
	}
	out, _ := json.Marshal(summary)
	fmt.Printf("aggload summary: %s\n", out)

	if st.hardErrors.Load() > 0 {
		fatalf("%d hard stream errors", st.hardErrors.Load())
	}
	if !converged {
		fatalf("estimate did not track the injected values: tracking_error=%.4f > tol=%.4f after %s",
			trackErr, *tol, *settle)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aggload: "+format+"\n", args...)
	os.Exit(1)
}

func openSystem(size int, cycle time.Duration, ops string) *repro.System {
	opts := []repro.Option{
		repro.WithSize(size),
		repro.WithCycleLength(cycle),
		repro.WithValues(func(i int) float64 { return float64(i % 100) }),
		repro.WithSeed(1),
	}
	if ops != "" {
		opts = append(opts, repro.WithOps(ops))
	}
	sys, err := repro.Open(opts...)
	if err != nil {
		fatalf("open system: %v", err)
	}
	return sys
}

func sizeOf(sys *repro.System, fallback int) int {
	if sys != nil {
		return sys.Size()
	}
	return fallback
}

// loadStats aggregates the watcher fleet's counters lock-free.
type loadStats struct {
	streamsUp     atomic.Int64
	events        atomic.Uint64
	softDrops     atomic.Uint64 // latest-wins skips, summed from per-stream dropped cursors
	hardErrors    atomic.Uint64 // broken streams, bad statuses, oversize lines
	valuesWritten atomic.Uint64
	staleness     stalenessHist
}

// stalenessHist is a power-of-two-bucketed histogram of event staleness
// in milliseconds (receipt time minus the estimate's timestamp),
// updated with one atomic add per event.
type stalenessHist struct {
	buckets [24]atomic.Uint64 // bucket i counts staleness in [2^i, 2^(i+1)) ms; 0 → < 1 ms
}

func (h *stalenessHist) record(ms int64) {
	i := 0
	for v := ms; v > 0 && i < len(h.buckets)-1; v >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
}

// percentiles returns p50/p90/p99/max staleness as bucket upper bounds
// in milliseconds (0 when no events were recorded).
func (h *stalenessHist) percentiles() (p50, p90, p99, max int64) {
	var counts [24]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0, 0, 0, 0
	}
	bound := func(q float64) int64 {
		target := uint64(q * float64(total))
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum > target {
				return 1 << i // upper bound of bucket i in ms
			}
		}
		return 1 << (len(counts) - 1)
	}
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			max = 1 << i
			break
		}
	}
	return bound(0.50), bound(0.90), bound(0.99), max
}

// watch opens one SSE stream and consumes it until stop closes or the
// stream breaks. Per-watcher state is one goroutine, one connection and
// ~2 KB of buffers; events are parsed with zero allocations on the hot
// path (ReadSlice into the reader's own buffer).
func watch(dial func() (net.Conn, error), host, field string, st *loadStats, stop <-chan struct{}) {
	conn, err := dial()
	if err != nil {
		st.hardErrors.Add(1)
		return
	}
	defer conn.Close()
	// Closing the connection on stop unblocks the blocking read below;
	// errors after the stop signal are shutdown, not failures.
	stopped := make(chan struct{})
	defer close(stopped)
	go func() {
		select {
		case <-stop:
			conn.Close()
		case <-stopped:
		}
	}()
	if _, err := fmt.Fprintf(conn, "GET /v1/stream/%s HTTP/1.1\r\nHost: %s\r\n\r\n", field, host); err != nil {
		st.hardErrors.Add(1)
		return
	}
	br := bufio.NewReaderSize(conn, 1024)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		st.hardErrors.Add(1)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		st.hardErrors.Add(1)
		return
	}
	st.streamsUp.Add(1)
	defer st.streamsUp.Add(-1)

	body := bufio.NewReaderSize(resp.Body, 512)
	var lastDropped int64
	sawEnd := false
	for {
		line, err := body.ReadSlice('\n')
		if err != nil {
			select {
			case <-stop: // shutdown race: the closer beat the end event
				return
			default:
			}
			if !sawEnd {
				st.hardErrors.Add(1)
			}
			return
		}
		switch {
		case bytes.HasPrefix(line, keyData):
			if ts, ok := extractInt(line, keyTime); ok {
				if lag := time.Now().UnixMilli() - ts; lag >= 0 {
					st.staleness.record(lag)
				} else {
					st.staleness.record(0)
				}
				st.events.Add(1)
			}
			if d, ok := extractInt(line, keyDropped); ok && d > lastDropped {
				st.softDrops.Add(uint64(d - lastDropped))
				lastDropped = d
			}
		case bytes.HasPrefix(line, keyEnd):
			sawEnd = true // clean end of stream: server closing, not an error
		}
	}
}

// SSE line markers and JSON keys, precomputed so the per-event parse
// allocates nothing.
var (
	keyData    = []byte("data:")
	keyEnd     = []byte("event: end")
	keyTime    = []byte(`"time_unix_ms":`)
	keyDropped = []byte(`"dropped":`)
)

// extractInt scans line for key and parses the integer that follows —
// a few index operations instead of a JSON decode, which matters at
// 10⁵ watchers × events per second on one box.
func extractInt(line, key []byte) (int64, bool) {
	i := bytes.Index(line, key)
	if i < 0 {
		return 0, false
	}
	i += len(key)
	neg := false
	if i < len(line) && line[i] == '-' {
		neg = true
		i++
	}
	var v int64
	ok := false
	for ; i < len(line) && line[i] >= '0' && line[i] <= '9'; i++ {
		v = v*10 + int64(line[i]-'0')
		ok = true
	}
	if neg {
		v = -v
	}
	return v, ok
}

// writeLoad drives the injection workload: batches of uniform values to
// random nodes at the requested aggregate rate, until stop closes.
func writeLoad(httpc *http.Client, host, field string, size int, perSec float64, batch int, st *loadStats, stop <-chan struct{}) {
	if batch < 1 {
		batch = 1
	}
	interval := time.Duration(float64(batch) / perSec * float64(time.Second))
	if interval <= 0 {
		interval = time.Millisecond
	}
	rng := rand.New(rand.NewSource(42))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var sb strings.Builder
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		sb.Reset()
		fmt.Fprintf(&sb, `{"field":%q,"values":[`, field)
		for i := 0; i < batch; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `{"node":%d,"value":%.3f}`, rng.Intn(size), rng.Float64()*100)
		}
		sb.WriteString("]}")
		resp, err := httpc.Post("http://"+host+"/v1/values", "application/json", strings.NewReader(sb.String()))
		if err != nil {
			st.hardErrors.Add(1)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			st.hardErrors.Add(1)
		} else {
			st.valuesWritten.Add(uint64(batch))
		}
		resp.Body.Close()
	}
}

// waitTracking polls GET /v1/telemetry until tracking_error ≤ tol or
// the budget runs out.
func waitTracking(httpc *http.Client, host string, tol float64, budget time.Duration) (bool, float64) {
	deadline := time.Now().Add(budget)
	last := -1.0
	for {
		var tel struct {
			TrackingError *float64 `json:"tracking_error"`
		}
		resp, err := httpc.Get("http://" + host + "/v1/telemetry")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&tel)
			resp.Body.Close()
		}
		if err == nil && tel.TrackingError != nil {
			last = *tel.TrackingError
			if last <= tol {
				return true, last
			}
		}
		if time.Now().After(deadline) {
			return false, last
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// pipeListener is a net.Listener over synchronous in-memory pipes: Dial
// hands the server half to Accept and returns the client half. Zero
// file descriptors per connection, full net/http semantics on top —
// how one box holds 10⁵ concurrent SSE "sockets".
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

func (l *pipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "aggload-inproc" }
