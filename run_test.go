package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/scenario"
)

// fpBits renders a float's exact bit pattern.
func fpBits(v float64) string { return fmt.Sprintf("%016x", math.Float64bits(v)) }

// fpHash folds a float vector's exact bit patterns into an FNV-1a hash.
func fpHash(vs []float64) string {
	h := uint64(1469598103934665603)
	for _, v := range vs {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= 1099511628211
		}
	}
	return fmt.Sprintf("%016x", h)
}

// TestRunReproducesLegacySimulate pins Run — and the deprecated
// Simulate wrapper over it — to bit-exact outputs captured from the
// pre-redesign tree (the historical avg.Runner / sharded-kernel
// implementations), for every selector, several topologies, loss,
// supplied values and both executors. This is the equivalence contract
// of the API redesign: one declarative front door, byte-identical
// trajectories per fixed seed.
func TestRunReproducesLegacySimulate(t *testing.T) {
	cases := []struct {
		name                  string
		cfg                   SimulationConfig
		varHash, mean, values string
	}{
		{"seq", SimulationConfig{Size: 200, Cycles: 8, Seed: 42},
			"8d95e947df84200f", "bf99ee9f3cb6ca24", "9ba6cf85fa1bdd67"},
		{"pm", SimulationConfig{Size: 100, Selector: "pm", Cycles: 5, Seed: 9},
			"b8cf08996e4f27e6", "3fc0a7e6049fc531", "a4cd386fbf0ea3bf"},
		{"rand", SimulationConfig{Size: 150, Selector: "rand", Cycles: 6, Seed: 11},
			"7666694a4055b065", "3facd937fc35ae68", "b3d9000baf69baac"},
		{"pmrand", SimulationConfig{Size: 80, Selector: "pmrand", Cycles: 4, Seed: 12},
			"c96d93cfc2b403c8", "3faea7ea99e56618", "61a488d9fc4102a1"},
		{"kregular", SimulationConfig{Size: 300, Topology: "kregular", ViewSize: 10, Cycles: 7, Seed: 13},
			"dc487e3eed30baa2", "3f930023f1ebcf62", "a717ce1bc26022a4"},
		{"ring-loss", SimulationConfig{Size: 120, Topology: "ring", LossProbability: 0.2, Cycles: 5, Seed: 14},
			"7d93196cd2dd2cc4", "bf96e2ffcfd3331d", "8283761748b08f9b"},
		{"sharded-seq", SimulationConfig{Size: 512, Shards: 4, Cycles: 5, Seed: 3},
			"c5245e4c22dbc6d8", "bfba5120058f6fd0", "8da15842d40d6779"},
		{"sharded-pm", SimulationConfig{Size: 512, Selector: "pm", Shards: 4, Cycles: 5, Seed: 3},
			"794dff1c3a88c1e4", "bfba5120058f6fcd", "5ed2d6e5fb84c53b"},
		{"scalefree", SimulationConfig{Size: 200, Topology: "scalefree", Cycles: 5, Seed: 16},
			"0267f7a80d0d581f", "3f8f3cc576defb5d", "ec41c8471a838a05"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := Simulate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := tc.cfg.Spec()
			if err != nil {
				t.Fatal(err)
			}
			front, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, probe := range []struct {
				what, got, want string
			}{
				{"Simulate variances", fpHash(legacy.Variances), tc.varHash},
				{"Simulate mean", fpBits(legacy.FinalMean), tc.mean},
				{"Simulate values", fpHash(legacy.Values), tc.values},
				{"Run variances", fpHash(front.Variances), tc.varHash},
				{"Run mean", fpBits(front.FinalMean), tc.mean},
				{"Run values", fpHash(front.Values), tc.values},
			} {
				if probe.got != probe.want {
					t.Errorf("%s = %s, want %s (pre-redesign capture)", probe.what, probe.got, probe.want)
				}
			}
			if wantSharded := tc.cfg.Shards != 0; front.Sharded != wantSharded {
				t.Errorf("Sharded = %v, want %v", front.Sharded, wantSharded)
			}
		})
	}
	// Supplied values skip the normal draws in both paths.
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i * i)
	}
	res, err := Simulate(SimulationConfig{Size: 64, Values: vals, Cycles: 5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHash(res.Values); got != "73d8f2147b030325" {
		t.Errorf("supplied-values run = %s, want 73d8f2147b030325", got)
	}
}

// TestRunReproducesLegacySizeEstimation pins the §4 wrapper (and its
// Run equivalent) to bit-exact per-epoch reports captured from the
// pre-redesign tree.
func TestRunReproducesLegacySizeEstimation(t *testing.T) {
	cfg := SizeEstimationConfig{
		MinSize: 450, MaxSize: 550, OscillationPeriod: 100, Fluctuation: 5,
		EpochCycles: 30, TotalCycles: 150, Instances: 2, Seed: 7,
	}
	wantMeans := []string{
		"407e48d907a1b6df", "40808675c15953f6", "407c9749beac4a91",
		"407ca755497d7d69", "40807c4e0c49bb0b",
	}
	wantSizes := []int{548, 473, 468, 546, 503}

	legacy, err := EstimateSizeUnderChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := cfg.Spec()
	spec.Seed = scenario.RawSeed(cfg.Seed)
	front, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for name, reports := range map[string][]EpochReport{"EstimateSizeUnderChurn": legacy, "Run": front.Epochs} {
		if len(reports) != len(wantMeans) {
			t.Fatalf("%s: %d epochs, want %d", name, len(reports), len(wantMeans))
		}
		for i, r := range reports {
			if got := fpBits(r.EstimateMean); got != wantMeans[i] {
				t.Errorf("%s epoch %d mean = %s, want %s", name, i, got, wantMeans[i])
			}
			if r.SizeAtEnd != wantSizes[i] {
				t.Errorf("%s epoch %d size = %d, want %d", name, i, r.SizeAtEnd, wantSizes[i])
			}
		}
	}
}

// TestSimulateAsyncEquivalentToRun: the async wrapper is a thin veneer
// over Run — same variances, exchanges and mean — and both policies
// still hit their §3.3 rates (the seed-unification satellite changed
// the exact trajectory, not the statistics).
func TestSimulateAsyncEquivalentToRun(t *testing.T) {
	cfg := AsyncSimulationConfig{Size: 3000, Cycles: 8, Seed: 21, Exponential: true}
	legacy, err := SimulateAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := cfg.Spec()
	if err != nil {
		t.Fatal(err)
	}
	front, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if fpHash(legacy.Variances) != fpHash(front.Variances) {
		t.Error("wrapper variances diverge from Run")
	}
	if legacy.Exchanges != front.Exchanges || legacy.Exchanges == 0 {
		t.Errorf("exchanges: wrapper %d vs Run %d", legacy.Exchanges, front.Exchanges)
	}
	if fpBits(legacy.FinalMean) != fpBits(front.FinalMean) {
		t.Error("wrapper final mean diverges from Run")
	}
}

// TestAutoShardsFallsBackToSequential: AutoShards is a preference —
// unshardable combinations run sequentially with Sharded=false instead
// of erroring — while an explicit shard count still fails loudly.
func TestAutoShardsFallsBackToSequential(t *testing.T) {
	ctx := context.Background()
	for name, spec := range map[string]scenario.Spec{
		"size-estimation": {Size: 400, Cycles: 4, SizeEstimation: &scenario.SizeEstimationSpec{EpochCycles: 2}, Shards: AutoShards, Seed: 3},
		"ring-topology":   {Size: 400, Cycles: 2, Topology: scenario.TopologyRing, Shards: AutoShards, Seed: 2},
		"wait-mode":       {Size: 400, Cycles: 2, Wait: scenario.WaitConstant, Shards: AutoShards, Seed: 4},
	} {
		res, err := Run(ctx, spec)
		if err != nil {
			t.Errorf("%s: AutoShards did not fall back: %v", name, err)
			continue
		}
		if res.Sharded {
			t.Errorf("%s: reported sharded execution for an unshardable combination", name)
		}
		if res.Spec.Shards != 0 {
			t.Errorf("%s: normalized spec kept shards=%d", name, res.Spec.Shards)
		}
	}
	// The fallback also covers the deprecated wrapper.
	res, err := Simulate(SimulationConfig{Size: 400, Topology: "ring", Cycles: 2, Shards: AutoShards, Seed: 5})
	if err != nil {
		t.Fatalf("Simulate with AutoShards on the ring topology: %v", err)
	}
	if res.Sharded {
		t.Error("Simulate reported sharded execution after fallback")
	}
	// Shardable combinations still shard under an explicit count (and
	// under AutoShards whenever GOMAXPROCS > 1 — not asserted here so
	// single-core CI stays green). Every built-in selector shards.
	for name, spec := range map[string]scenario.Spec{
		"seq":    {Size: 4000, Cycles: 2, Shards: 4, Seed: 6},
		"rand":   {Size: 4000, Cycles: 2, Selector: scenario.SelectorRand, Shards: 4, Seed: 7},
		"pmrand": {Size: 4000, Cycles: 2, Selector: scenario.SelectorPMRand, Shards: 4, Seed: 8},
	} {
		if res, err := Run(ctx, spec); err != nil {
			t.Errorf("%s: explicit 4-shard spec: %v", name, err)
		} else if !res.Sharded {
			t.Errorf("explicit 4-shard %s spec did not run sharded", name)
		}
	}
	// ...and explicit shard counts on unsupported combinations error.
	if _, err := Run(ctx, scenario.Spec{Size: 401, Cycles: 2, Selector: scenario.SelectorPMRand, Shards: 4}); err == nil {
		t.Error("explicit shards with pmrand selector at odd size accepted")
	}
	if _, err := Simulate(SimulationConfig{Size: 401, Selector: "pmrand", Shards: 4}); err == nil {
		t.Error("Simulate with explicit shards and odd-size pmrand accepted")
	}
}

// TestRunGridStreamsAndCollects: RunGrid returns collected rows by
// default and streams through SweepOptions.Out when given one.
func TestRunGridStreamsAndCollects(t *testing.T) {
	grid := scenario.Grid{
		Base: scenario.Spec{Name: "grid", Size: 100, Cycles: 2, Seed: 4},
		Axes: []scenario.Axis{{Param: "selector", Strings: []string{"seq", "rand"}}},
	}
	rows, err := RunGrid(context.Background(), grid, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*3 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	var col scenario.Collector
	streamed, err := RunGrid(context.Background(), grid, SweepOptions{Out: &col})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != nil {
		t.Fatal("streaming mode also returned rows")
	}
	if len(col.Results()) != len(rows) {
		t.Fatalf("streamed %d rows, collected %d", len(col.Results()), len(rows))
	}
}

// TestRunCancellation: cancelling the context stops a long single run
// promptly with the context's error.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, scenario.Spec{Size: 200000, Cycles: 100000, Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunGridCancellation: cancelling mid-sweep aborts queued and
// in-flight cells promptly.
func TestRunGridCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	grid := scenario.Grid{
		Base: scenario.Spec{Size: 100000, Cycles: 10000, Repeats: 4, Seed: 2},
		Axes: []scenario.Axis{{Param: "loss_prob", Floats: []float64{0, 0.1, 0.2, 0.3}}},
	}
	start := time.Now()
	_, err := RunGrid(ctx, grid, SweepOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("sweep cancellation took %v", elapsed)
	}
}

// TestRunSizeEstimationCancellation: the §4 path honors the context
// too.
func TestRunSizeEstimationCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, scenario.Spec{
		Size:           100000,
		Cycles:         30000,
		SizeEstimation: &scenario.SizeEstimationSpec{EpochCycles: 30},
		Seed:           3,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
