package repro

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestSimulateDefaults(t *testing.T) {
	res, err := Simulate(SimulationConfig{Size: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variances) != 31 { // default 30 cycles + initial
		t.Fatalf("got %d variance points", len(res.Variances))
	}
	if res.Variances[len(res.Variances)-1] > 1e-10*res.Variances[0] {
		t.Fatal("default simulation did not converge")
	}
	want, _ := TheoreticalRate("seq")
	if math.Abs(res.ReductionRate-want) > 0.03 {
		t.Fatalf("reduction rate %.4f, want ≈ %.4f", res.ReductionRate, want)
	}
	if len(res.Values) != 1000 {
		t.Fatalf("final vector has %d entries", len(res.Values))
	}
}

func TestSimulateMassConservation(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	res, err := Simulate(SimulationConfig{Size: 100, Values: values, Cycles: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalMean-49.5) > 1e-9 {
		t.Fatalf("final mean %g, want 49.5", res.FinalMean)
	}
	// Every node's approximation converged to the true average (0.3⁴⁰ of
	// the initial spread is far below the 1e-6 check).
	for i, v := range res.Values {
		if math.Abs(v-49.5) > 1e-6 {
			t.Fatalf("node %d approximation %g", i, v)
		}
	}
}

func TestSimulateSelectorAndTopologyOptions(t *testing.T) {
	for _, sel := range []string{"pm", "rand", "seq", "pmrand"} {
		if _, err := Simulate(SimulationConfig{Size: 500, Selector: sel, Cycles: 3, Seed: 3}); err != nil {
			t.Errorf("selector %s: %v", sel, err)
		}
	}
	for _, topo := range []string{"complete", "kregular", "view", "ring", "smallworld", "scalefree"} {
		if _, err := Simulate(SimulationConfig{Size: 500, Topology: topo, Cycles: 3, Seed: 4}); err != nil {
			t.Errorf("topology %s: %v", topo, err)
		}
	}
}

func TestSimulateSharded(t *testing.T) {
	// The sharded executor must converge at the seq rate, conserve
	// mass, and — with the pm selector — reproduce the sequential
	// trajectory bit for bit.
	res, err := Simulate(SimulationConfig{Size: 2000, Shards: 4, Cycles: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := TheoreticalRate("seq")
	if math.Abs(res.ReductionRate-want) > 0.03 {
		t.Fatalf("sharded reduction rate %.4f, want ≈ %.4f", res.ReductionRate, want)
	}
	seqPM, err := Simulate(SimulationConfig{Size: 2000, Selector: "pm", Cycles: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	shardPM, err := Simulate(SimulationConfig{Size: 2000, Selector: "pm", Shards: 4, Cycles: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqPM.Variances {
		if seqPM.Variances[i] != shardPM.Variances[i] {
			t.Fatalf("pm cycle %d: sharded %g vs sequential %g", i, shardPM.Variances[i], seqPM.Variances[i])
		}
	}
	shardRand, err := Simulate(SimulationConfig{Size: 2000, Selector: "rand", Shards: 4, Cycles: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wantRand, _ := TheoreticalRate("rand")
	if math.Abs(shardRand.ReductionRate-wantRand) > 0.03 {
		t.Fatalf("sharded rand reduction rate %.4f, want ≈ %.4f", shardRand.ReductionRate, wantRand)
	}
	if _, err := Simulate(SimulationConfig{Size: 500, Shards: 4, Topology: "ring"}); err == nil {
		t.Error("sharded non-complete topology accepted")
	}
	if _, err := Simulate(SimulationConfig{Size: 500, Shards: AutoShards, Cycles: 2, Seed: 8}); err != nil {
		t.Errorf("AutoShards rejected: %v", err)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimulationConfig{Size: 1}); err == nil {
		t.Error("size 1 accepted")
	}
	if _, err := Simulate(SimulationConfig{Size: 100, Selector: "bogus"}); err == nil {
		t.Error("unknown selector accepted")
	}
	if _, err := Simulate(SimulationConfig{Size: 100, Topology: "bogus"}); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestSimulateWithLossStillConverges(t *testing.T) {
	res, err := Simulate(SimulationConfig{Size: 1000, LossProbability: 0.2, Cycles: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variances[30] > 1e-6*res.Variances[0] {
		t.Fatalf("lossy run did not converge: ratio %g", res.Variances[30]/res.Variances[0])
	}
	lossless, _ := Simulate(SimulationConfig{Size: 1000, Cycles: 30, Seed: 5})
	if res.ReductionRate <= lossless.ReductionRate {
		t.Fatal("loss did not slow convergence")
	}
}

func TestTheoreticalRateFacade(t *testing.T) {
	if r, ok := TheoreticalRate("pm"); !ok || r != 0.25 {
		t.Fatalf("pm rate = %g, %v", r, ok)
	}
	if _, ok := TheoreticalRate("nope"); ok {
		t.Fatal("unknown selector ok")
	}
}

func TestClusterQuickstartFlow(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		Size:         16,
		Schema:       NewAverageSchema(),
		Value:        func(i int) float64 { return float64(i) },
		CycleLength:  2 * time.Millisecond,
		ReplyTimeout: 200 * time.Millisecond,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start(context.Background())
	defer cluster.Stop()
	if _, ok, err := cluster.WaitConverged("avg", 1e-6, 5*time.Second); err != nil || !ok {
		t.Fatalf("converged=%v err=%v", ok, err)
	}
	est, err := cluster.Nodes()[0].Estimate("avg")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-7.5) > 0.1 {
		t.Fatalf("estimate %g, want ≈ 7.5", est)
	}
}

func TestSummarySchemaEndToEnd(t *testing.T) {
	schema := NewSummarySchema()
	st := schema.InitState(3)
	st2 := schema.InitState(5)
	merged := schema.Merge(st, st2)
	sum, err := DecodeSummary(schema, merged)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean != 4 || sum.Min != 3 || sum.Max != 5 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestEstimateSizeUnderChurnSmall(t *testing.T) {
	cfg := SizeEstimationConfig{
		MinSize:           450,
		MaxSize:           550,
		OscillationPeriod: 100,
		Fluctuation:       5,
		EpochCycles:       30,
		TotalCycles:       150,
		Instances:         1,
		Seed:              7,
	}
	reports, err := EstimateSizeUnderChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("got %d epochs", len(reports))
	}
	for _, r := range reports {
		relErr := math.Abs(r.EstimateMean-float64(r.SizeAtStart)) / float64(r.SizeAtStart)
		if relErr > 0.2 {
			t.Errorf("epoch %d: estimate %.0f vs %d", r.Epoch, r.EstimateMean, r.SizeAtStart)
		}
	}
}

func TestDefaultSizeEstimationConfigMatchesPaper(t *testing.T) {
	cfg := DefaultSizeEstimationConfig()
	if cfg.MinSize != 90000 || cfg.MaxSize != 110000 {
		t.Errorf("size band %d..%d", cfg.MinSize, cfg.MaxSize)
	}
	if cfg.EpochCycles != 30 || cfg.TotalCycles != 1000 || cfg.Fluctuation != 100 {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestTCPNodeFacade(t *testing.T) {
	epA, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := NewTCPEndpoint("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sA, err := NewStaticSampler([]string{epB.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := NewGossipSampler(epB.Addr(), 4, []string{epA.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	schema := NewAverageSchema()
	a, err := NewNode(NodeConfig{
		Schema: schema, Endpoint: epA, Sampler: sA,
		Value: 2, CycleLength: 5 * time.Millisecond, ReplyTimeout: 500 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(NodeConfig{
		Schema: schema, Endpoint: epB, Sampler: sB,
		Value: 4, CycleLength: 5 * time.Millisecond, ReplyTimeout: 500 * time.Millisecond, Wait: ExponentialWait, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ea, _ := a.Estimate("avg")
		eb, _ := b.Estimate("avg")
		if math.Abs(ea-3) < 1e-9 && math.Abs(eb-3) < 1e-9 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("TCP facade pair stuck at %g / %g", ea, eb)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSimulateAsyncWaitingPolicies(t *testing.T) {
	run := func(exponential bool) float64 {
		res, err := SimulateAsync(AsyncSimulationConfig{
			Size:        5000,
			Exponential: exponential,
			Cycles:      10,
			Seed:        20,
		})
		if err != nil {
			t.Fatal(err)
		}
		first, last := res.Variances[0], res.Variances[len(res.Variances)-1]
		return math.Pow(last/first, 0.1)
	}
	constant, exponential := run(false), run(true)
	seqRate, _ := TheoreticalRate("seq")
	randRate, _ := TheoreticalRate("rand")
	if math.Abs(constant-seqRate) > 0.03 {
		t.Errorf("constant-wait rate %.4f, want ≈ %.4f", constant, seqRate)
	}
	if math.Abs(exponential-randRate) > 0.03 {
		t.Errorf("exponential-wait rate %.4f, want ≈ %.4f", exponential, randRate)
	}
}

func TestSimulateAsyncValidation(t *testing.T) {
	if _, err := SimulateAsync(AsyncSimulationConfig{Size: 1}); err == nil {
		t.Error("size 1 accepted")
	}
	if _, err := SimulateAsync(AsyncSimulationConfig{Size: 100, Topology: "bogus"}); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestMomentsFacade(t *testing.T) {
	schema, err := NewMomentsSchema(4)
	if err != nil {
		t.Fatal(err)
	}
	a := schema.InitState(2)
	b := schema.InitState(4)
	merged := schema.Merge(a, b)
	m, err := DecodeMoments(schema, merged)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mean != 3 {
		t.Errorf("mean = %g, want 3", m.Mean)
	}
	if want := 10.0 - 9.0; math.Abs(m.Variance-want) > 1e-12 {
		t.Errorf("variance = %g, want %g", m.Variance, want)
	}
	if _, err := NewMomentsSchema(1); err == nil {
		t.Error("order 1 accepted")
	}
}

func TestGeometricFacade(t *testing.T) {
	schema := NewGeometricSchema()
	merged := schema.Merge(schema.InitState(2), schema.InitState(8))
	gm, err := DecodeGeometricMean(schema, merged)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gm-4) > 1e-12 {
		t.Fatalf("geometric mean = %g, want 4", gm)
	}
}
