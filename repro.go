// Package repro is a production-quality Go implementation of
// epidemic-style proactive aggregation in large overlay networks
// (Jelasity & Montresor, ICDCS 2004): anti-entropy gossip that gives
// every node a continuously maintained approximation of global
// aggregates — average, extrema, sums, variance and network size — with
// exponential convergence and no performance bottlenecks.
//
// The public API is the Run / Open / Watch triad:
//
//   - Run(ctx, spec) executes one declarative scenario.Spec — the
//     paper's theoretical model, the sharded paper-scale executor, the
//     asynchronous event-driven model or the §4 size estimator, routed
//     by the spec's axes — and materializes the outcome. RunGrid
//     sweeps a base spec crossed with axes and streams reduction rows.
//   - Open(opts...) assembles and starts a live aggregation System
//     from functional options: an in-memory cluster (goroutine or
//     event-heap scheduling), a 10⁵-node heap runtime over TCP, or one
//     deployable TCP node.
//   - System.Watch(ctx, field) streams one typed Estimate per cycle;
//     System.Reduce(ctx, field, reducer) folds over node states shard
//     by shard without materializing an N-length vector — aggregation
//     as a continuously queried service, not a batch run.
//
// The historical entry points — Simulate, SimulateAsync,
// EstimateSizeUnderChurn, NewCluster/NewNode/NewRuntime — remain as
// thin deprecated wrappers with byte-identical fixed-seed output; each
// config documents its Run/Open replacement.
//
// See DESIGN.md for the system inventory (including the public-API
// migration table) and EXPERIMENTS.md for the paper-versus-measured
// record.
package repro

import (
	"context"
	"fmt"

	"repro/internal/avg"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/epoch"
	"repro/internal/eventsim"
	"repro/internal/experiments"
	"repro/internal/membership"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/scenario"
)

// AutoShards, as SimulationConfig.Shards or scenario.Spec.Shards,
// selects one shard per GOMAXPROCS worker where the sharded executor
// applies, falling back to sequential execution elsewhere.
const AutoShards = sim.AutoShards

// Re-exported building blocks. These aliases are the supported public
// names for the library's rich types.
type (
	// Schema defines the set of fields gossiped together and how each
	// merges (see NewAverageSchema and NewSummarySchema).
	Schema = core.Schema
	// State is one node's vector of field approximations.
	State = core.State
	// Summary is the decoded result of a summary schema: mean, variance,
	// extrema, size and sum in one gossip instance.
	Summary = core.Summary
	// Node is one live protocol participant.
	Node = engine.Node
	// NodeConfig assembles a single Node (bring your own transport and
	// membership; most callers want Open with WithTCP instead).
	NodeConfig = engine.Config
	// Cluster is a locally running set of nodes over an in-memory fabric.
	Cluster = engine.Cluster
	// ClusterConfig assembles a Cluster (most callers want Open).
	ClusterConfig = engine.ClusterConfig
	// Runtime is the heap-mode live runtime: a sharded event-heap
	// scheduler multiplexing 10⁵–10⁶ nodes onto a small worker pool
	// with batched transports.
	Runtime = engine.Runtime
	// RuntimeConfig assembles a Runtime (bring your own endpoints for
	// TCP deployments; most callers want Open with WithTCP).
	RuntimeConfig = engine.RuntimeConfig
	// RuntimeMode selects goroutine-per-node or heap scheduling for a
	// Cluster or System (see WithMode).
	RuntimeMode = engine.RuntimeMode
	// NodeStats is a snapshot of a live node's protocol counters.
	NodeStats = engine.Stats
	// TraceRecord is one trace-sampled exchange (see WithTraceSampling
	// and System.Trace).
	TraceRecord = engine.TraceRecord
	// TraceOutcome is how a traced exchange resolved.
	TraceOutcome = engine.TraceOutcome
	// Endpoint is a node's transport attachment (see NewTCPEndpoint, or
	// build an in-memory fabric via NewCluster).
	Endpoint = transport.Endpoint
	// Sampler supplies random gossip partners (see NewStaticSampler and
	// NewGossipSampler).
	Sampler = membership.Sampler
	// EpochReport is one epoch's converged output of the size estimator.
	EpochReport = epoch.EpochReport
	// Series is an aggregated experiment curve (mean/stderr/min/max per
	// x-position).
	Series = stats.Series
)

// WaitPolicy selects how a live node draws its inter-exchange waiting
// time (§1.1): constant Δt or exponentially distributed with mean Δt.
type WaitPolicy = engine.WaitPolicy

// Waiting-time policies for the live engine (§1.1).
const (
	ConstantWait    = engine.ConstantWait
	ExponentialWait = engine.ExponentialWait
)

// Trace outcomes for TraceRecord.Outcome: the exchange's pull reply
// was merged, the peer declined while busy, or the reply deadline
// reaped it.
const (
	TraceCompleted = engine.TraceCompleted
	TraceNacked    = engine.TraceNacked
	TraceTimedOut  = engine.TraceTimedOut
)

// Runtime modes for ClusterConfig.Mode and WithMode: the parallel
// sharded event-heap scheduler that hosts 10⁵+ nodes per process (the
// default), or one goroutine pair per node (the historical default,
// kept as a scheduling cross-check).
const (
	ModeGoroutine = engine.ModeGoroutine
	ModeHeap      = engine.ModeHeap
)

// NewRuntime builds (but does not start) a heap-mode runtime hosting
// many nodes in one process.
//
// Deprecated: new code should use Open (WithMode(ModeHeap) in-memory,
// or WithTCP(listen, peers...) with WithSize(n) for the deployable
// multi-node shape); NewRuntime remains for callers supplying their
// own endpoints.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return engine.NewRuntime(cfg) }

// NewAverageSchema returns a schema gossiping the plain average of the
// nodes' local values — the protocol the paper analyzes.
func NewAverageSchema() *Schema { return core.AverageSchema() }

// NewSummarySchema returns a schema gossiping mean, second moment, min,
// max and a size indicator together, decodable with DecodeSummary.
func NewSummarySchema() *Schema { return core.SummarySchema() }

// DecodeSummary interprets a summary-schema state as a Summary.
func DecodeSummary(schema *Schema, st State) (Summary, error) {
	return core.DecodeSummary(schema, st)
}

// Moments is the decoded result of a moments schema: raw moments plus
// mean, variance, skewness and kurtosis.
type Moments = core.Moments

// NewMomentsSchema returns a schema gossiping the averages of v…v^order
// in one instance (order 2–8) — the paper's "any moments" remark (§1.1)
// made concrete. Decode with DecodeMoments.
func NewMomentsSchema(order int) (*Schema, error) { return core.MomentsSchema(order) }

// DecodeMoments interprets a moments-schema state.
func DecodeMoments(schema *Schema, st State) (Moments, error) {
	return core.DecodeMoments(schema, st)
}

// NewGeometricSchema returns a schema whose decoded result is the
// geometric mean of the (strictly positive) local values.
func NewGeometricSchema() *Schema { return core.GeometricSchema() }

// DecodeGeometricMean interprets a geometric-schema state.
func DecodeGeometricMean(schema *Schema, st State) (float64, error) {
	return core.DecodeGeometricMean(schema, st)
}

// NewCluster builds (but does not start) a local in-memory cluster.
//
// Deprecated: new code should use Open, which assembles and starts the
// system and adds the Watch/Reduce observation surface; NewCluster
// remains for callers that need the raw Cluster API (fabric injection,
// manual Start).
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return engine.NewCluster(cfg) }

// NewNode builds a single live node from an explicit configuration.
//
// Deprecated: new code should use Open with WithTCP, which assembles
// endpoint, membership and node in one call; NewNode remains for
// callers bringing their own transport or membership implementations.
func NewNode(cfg NodeConfig) (*Node, error) { return engine.NewNode(cfg) }

// NewTCPEndpoint listens on the given address ("127.0.0.1:0" for an
// ephemeral port) and returns a transport endpoint for NodeConfig.
func NewTCPEndpoint(listen string) (transport.Endpoint, error) {
	return transport.NewTCPEndpoint(listen)
}

// NewStaticSampler returns a membership sampler over a fixed peer list.
func NewStaticSampler(peers []string) (membership.Sampler, error) {
	return membership.NewStatic(peers)
}

// NewGossipSampler returns a Newscast-style membership sampler seeded
// with at least one known peer; the view then maintains itself from
// piggybacked gossip.
func NewGossipSampler(self string, capacity int, seeds []string) (membership.Sampler, error) {
	return membership.NewGossipSampler(self, capacity, seeds)
}

// SimulationConfig drives one run of the paper's theoretical model.
//
// Deprecated: new code should build a scenario.Spec and call Run; the
// Spec method renders the equivalent spec.
type SimulationConfig struct {
	// Size is the network size N (≥ 2).
	Size int
	// Selector is the GETPAIR implementation: "pm", "rand", "seq" or
	// "pmrand" (default "seq", the practical protocol).
	Selector string
	// Topology is the overlay: "complete" (default), "kregular", "view",
	// "ring", "smallworld" or "scalefree".
	Topology string
	// ViewSize is the degree parameter of non-complete overlays
	// (default 20, the paper's choice).
	ViewSize int
	// Cycles is how many AVG cycles to run (default 30).
	Cycles int
	// LossProbability drops each protocol message independently with
	// this probability (0 = lossless, the paper's assumption).
	LossProbability float64
	// Values supplies the initial vector; nil draws iid standard normal
	// values, the paper's uncorrelated starting point.
	Values []float64
	// Shards selects the executor: 0 (the default) runs the exact
	// sequential path, ≥ 2 the sharded tournament executor for
	// paper-scale runs, AutoShards one shard per GOMAXPROCS worker
	// (falling back to sequential for unshardable combinations).
	// Explicit sharding requires the complete topology with the "seq"
	// or "pm" selector.
	Shards int
	// Seed makes the run reproducible.
	Seed uint64
}

// Spec renders the configuration as the equivalent declarative
// scenario spec for Run. The spec's seed is scenario.RawSeed(Seed), so
// Run consumes exactly the random stream Simulate historically did and
// reproduces its output byte for byte.
func (cfg SimulationConfig) Spec() (scenario.Spec, error) {
	sel, err := scenario.ParseSelector(cfg.Selector)
	if err != nil {
		return scenario.Spec{}, fmt.Errorf("repro: %w", err)
	}
	topo, err := scenario.ParseTopology(cfg.Topology)
	if err != nil {
		return scenario.Spec{}, fmt.Errorf("repro: %w", err)
	}
	return scenario.Spec{
		Size:     cfg.Size,
		Cycles:   cfg.Cycles,
		Selector: sel,
		Topology: topo,
		ViewSize: cfg.ViewSize,
		LossProb: cfg.LossProbability,
		Values:   cfg.Values,
		Shards:   cfg.Shards,
		Seed:     scenario.RawSeed(cfg.Seed),
	}, nil
}

// SimulationResult reports one simulation run.
type SimulationResult struct {
	// Variances holds σ²ᵢ for i = 0..Cycles (index 0 is the initial
	// variance).
	Variances []float64
	// FinalMean is the vector mean after the last cycle; with lossless
	// exchanges it equals the initial mean up to rounding (mass
	// conservation, §3.2).
	FinalMean float64
	// ReductionRate is the geometric-mean per-cycle variance reduction —
	// compare with TheoreticalRate.
	ReductionRate float64
	// Values is the final vector (every node's approximation).
	Values []float64
	// Sharded reports whether the sharded executor actually ran (false
	// when AutoShards fell back to sequential execution).
	Sharded bool
}

// Simulate runs the paper's AVG algorithm once with the given
// configuration.
//
// Deprecated: use Run with cfg.Spec() — Simulate is a thin wrapper
// over it with byte-identical fixed-seed output.
func Simulate(cfg SimulationConfig) (*SimulationResult, error) {
	spec, err := cfg.Spec()
	if err != nil {
		return nil, err
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return &SimulationResult{
		Variances:     res.Variances,
		FinalMean:     res.FinalMean,
		ReductionRate: res.ReductionRate,
		Values:        res.Values,
		Sharded:       res.Sharded,
	}, nil
}

// AsyncSimulationConfig drives the discrete-event simulation of the
// asynchronous protocol: autonomous nodes waking on their own waiting
// times (§1.1), no global cycles — at 100 000-node scale.
//
// Deprecated: new code should build a scenario.Spec with a Wait policy
// and call Run; the Spec method renders the equivalent spec.
type AsyncSimulationConfig struct {
	// Size is the network size N (≥ 2).
	Size int
	// Topology and ViewSize mirror SimulationConfig (defaults:
	// "complete", 20).
	Topology string
	ViewSize int
	// Exponential switches GETWAITINGTIME from the constant Δt (the
	// practical protocol, seq-like rate 1/(2√e)) to exponential waits
	// with mean Δt (rand-like rate 1/e, §3.3.2).
	Exponential bool
	// Cycles is the horizon in units of Δt (default 30).
	Cycles int
	// LossProbability drops whole exchanges with this probability.
	LossProbability float64
	// Values supplies the initial vector; nil draws iid standard normal.
	Values []float64
	// Seed makes the run reproducible.
	Seed uint64
}

// Spec renders the configuration as the equivalent declarative
// scenario spec for Run, seeded with scenario.RawSeed(Seed) — one seed
// vocabulary across every runner (the historical SimulateAsync derived
// its event stream from Seed ^ 0xa5a5a5a5, a second ad-hoc derivation
// this redesign retires).
func (cfg AsyncSimulationConfig) Spec() (scenario.Spec, error) {
	topo, err := scenario.ParseTopology(cfg.Topology)
	if err != nil {
		return scenario.Spec{}, fmt.Errorf("repro: %w", err)
	}
	wait := scenario.WaitConstant
	if cfg.Exponential {
		wait = scenario.WaitExponential
	}
	return scenario.Spec{
		Size:     cfg.Size,
		Cycles:   cfg.Cycles,
		Topology: topo,
		ViewSize: cfg.ViewSize,
		Wait:     wait,
		LossProb: cfg.LossProbability,
		Values:   cfg.Values,
		Seed:     scenario.RawSeed(cfg.Seed),
	}, nil
}

// AsyncSimulationResult reports one event-driven run: variance sampled
// once per Δt, the exchange count and the (conserved) final mean.
type AsyncSimulationResult = eventsim.Result

// SimulateAsync runs the discrete-event model of the asynchronous
// protocol and returns the variance trajectory sampled once per Δt.
//
// Deprecated: use Run with cfg.Spec() — SimulateAsync is a thin
// wrapper over it. Note that this redesign unified the seed
// derivation: the whole run now consumes the single stream
// xrand.New(Seed) (overlay → values → events), retiring the historical
// Seed ^ 0xa5a5a5a5 side-channel, so trajectories differ from
// pre-redesign releases for the same seed (rates and all statistical
// properties are unchanged).
func SimulateAsync(cfg AsyncSimulationConfig) (*AsyncSimulationResult, error) {
	spec, err := cfg.Spec()
	if err != nil {
		return nil, err
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return &AsyncSimulationResult{
		Variances: res.Variances,
		Exchanges: res.Exchanges,
		FinalMean: res.FinalMean,
	}, nil
}

// TheoreticalRate returns the paper's closed-form per-cycle variance
// reduction rate E(2^{-φ}) for the named selector on the complete graph
// (1/4 for "pm", 1/e for "rand", 1/(2√e) for "seq" and "pmrand");
// ok is false for unknown selectors.
func TheoreticalRate(selector string) (rate float64, ok bool) {
	return avg.TheoreticalRate(selector)
}

// SizeEstimationConfig drives the §4 application: adaptive network size
// estimation with epoch restarts under churn (the Figure 4 scenario).
//
// Deprecated: new code should build a scenario.Spec with a
// SizeEstimation section and call Run (reports arrive in
// Result.Epochs); the config's Spec method renders the equivalent
// spec.
type SizeEstimationConfig = experiments.Fig4Config

// DefaultSizeEstimationConfig returns the paper's Figure 4 parameters
// (size oscillating 90 000–110 000, ±100 nodes per cycle, 30-cycle
// epochs, 1000 cycles).
func DefaultSizeEstimationConfig() SizeEstimationConfig {
	return experiments.DefaultFig4()
}

// EstimateSizeUnderChurn runs the size-estimation scenario and returns
// one report per epoch (converged estimate with min/max range versus
// actual size).
//
// Deprecated: use Run with a size-estimation spec (cfg.Spec() with
// Seed set to scenario.RawSeed(cfg.Seed) reproduces this function's
// output byte for byte; Result.Epochs carries the reports).
func EstimateSizeUnderChurn(cfg SizeEstimationConfig) ([]EpochReport, error) {
	return experiments.Fig4(context.Background(), cfg)
}
