// Package repro is a production-quality Go implementation of
// epidemic-style proactive aggregation in large overlay networks
// (Jelasity & Montresor, ICDCS 2004): anti-entropy gossip that gives
// every node a continuously maintained approximation of global
// aggregates — average, extrema, sums, variance and network size — with
// exponential convergence and no performance bottlenecks.
//
// The package exposes three layers:
//
//   - Simulate: the paper's theoretical model (algorithm AVG of Figure 2)
//     with the four pair selectors of §3.3, for analysis and for
//     regenerating the paper's figures.
//   - NewCluster / NewNode: the deployable asynchronous runtime
//     (goroutine per node, in-memory or TCP transport, epoch restarts,
//     Newscast-style membership).
//   - EstimateSizeUnderChurn: the §4 application — adaptive network size
//     estimation with epochs, under churn.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro

import (
	"fmt"
	"math"

	"repro/internal/avg"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/epoch"
	"repro/internal/eventsim"
	"repro/internal/experiments"
	"repro/internal/membership"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/xrand"
)

// AutoShards, as SimulationConfig.Shards, selects one shard per
// GOMAXPROCS worker.
const AutoShards = sim.AutoShards

// Re-exported building blocks. These aliases are the supported public
// names for the library's rich types.
type (
	// Schema defines the set of fields gossiped together and how each
	// merges (see NewAverageSchema and NewSummarySchema).
	Schema = core.Schema
	// State is one node's vector of field approximations.
	State = core.State
	// Summary is the decoded result of a summary schema: mean, variance,
	// extrema, size and sum in one gossip instance.
	Summary = core.Summary
	// Node is one live protocol participant.
	Node = engine.Node
	// NodeConfig assembles a single Node (bring your own transport and
	// membership, e.g. for TCP deployments).
	NodeConfig = engine.Config
	// Cluster is a locally running set of nodes over an in-memory fabric.
	Cluster = engine.Cluster
	// ClusterConfig assembles a Cluster.
	ClusterConfig = engine.ClusterConfig
	// Runtime is the heap-mode live runtime: a sharded event-heap
	// scheduler multiplexing 10⁵–10⁶ nodes onto a small worker pool
	// with batched transports.
	Runtime = engine.Runtime
	// RuntimeConfig assembles a Runtime (bring your own endpoints for
	// TCP deployments; nil endpoints use an in-memory fabric).
	RuntimeConfig = engine.RuntimeConfig
	// RuntimeMode selects goroutine-per-node or heap scheduling for a
	// Cluster.
	RuntimeMode = engine.RuntimeMode
	// NodeStats is a snapshot of a live node's protocol counters.
	NodeStats = engine.Stats
	// Endpoint is a node's transport attachment (see NewTCPEndpoint, or
	// build an in-memory fabric via NewCluster).
	Endpoint = transport.Endpoint
	// Sampler supplies random gossip partners (see NewStaticSampler and
	// NewGossipSampler).
	Sampler = membership.Sampler
	// EpochReport is one epoch's converged output of the size estimator.
	EpochReport = epoch.EpochReport
	// Series is an aggregated experiment curve (mean/stderr/min/max per
	// x-position).
	Series = stats.Series
)

// Waiting-time policies for the live engine (§1.1): constant Δt or
// exponentially distributed with mean Δt.
const (
	ConstantWait    = engine.ConstantWait
	ExponentialWait = engine.ExponentialWait
)

// Runtime modes for ClusterConfig.Mode: one goroutine pair per node
// (the historical default) or the sharded event-heap scheduler that
// hosts 10⁵+ nodes per process.
const (
	ModeGoroutine = engine.ModeGoroutine
	ModeHeap      = engine.ModeHeap
)

// NewRuntime builds (but does not start) a heap-mode runtime hosting
// many nodes in one process. Most callers want NewCluster with
// ClusterConfig.Mode = ModeHeap instead; NewRuntime is the explicit
// path for TCP deployments supplying their own endpoints.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return engine.NewRuntime(cfg) }

// NewAverageSchema returns a schema gossiping the plain average of the
// nodes' local values — the protocol the paper analyzes.
func NewAverageSchema() *Schema { return core.AverageSchema() }

// NewSummarySchema returns a schema gossiping mean, second moment, min,
// max and a size indicator together, decodable with DecodeSummary.
func NewSummarySchema() *Schema { return core.SummarySchema() }

// DecodeSummary interprets a summary-schema state as a Summary.
func DecodeSummary(schema *Schema, st State) (Summary, error) {
	return core.DecodeSummary(schema, st)
}

// Moments is the decoded result of a moments schema: raw moments plus
// mean, variance, skewness and kurtosis.
type Moments = core.Moments

// NewMomentsSchema returns a schema gossiping the averages of v…v^order
// in one instance (order 2–8) — the paper's "any moments" remark (§1.1)
// made concrete. Decode with DecodeMoments.
func NewMomentsSchema(order int) (*Schema, error) { return core.MomentsSchema(order) }

// DecodeMoments interprets a moments-schema state.
func DecodeMoments(schema *Schema, st State) (Moments, error) {
	return core.DecodeMoments(schema, st)
}

// NewGeometricSchema returns a schema whose decoded result is the
// geometric mean of the (strictly positive) local values.
func NewGeometricSchema() *Schema { return core.GeometricSchema() }

// DecodeGeometricMean interprets a geometric-schema state.
func DecodeGeometricMean(schema *Schema, st State) (float64, error) {
	return core.DecodeGeometricMean(schema, st)
}

// NewCluster builds (but does not start) a local in-memory cluster — the
// fastest way to run the live protocol at laptop scale.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return engine.NewCluster(cfg) }

// NewNode builds a single live node from an explicit configuration; use
// this with NewTCPEndpoint and NewGossipSampler for real deployments.
func NewNode(cfg NodeConfig) (*Node, error) { return engine.NewNode(cfg) }

// NewTCPEndpoint listens on the given address ("127.0.0.1:0" for an
// ephemeral port) and returns a transport endpoint for NodeConfig.
func NewTCPEndpoint(listen string) (transport.Endpoint, error) {
	return transport.NewTCPEndpoint(listen)
}

// NewStaticSampler returns a membership sampler over a fixed peer list.
func NewStaticSampler(peers []string) (membership.Sampler, error) {
	return membership.NewStatic(peers)
}

// NewGossipSampler returns a Newscast-style membership sampler seeded
// with at least one known peer; the view then maintains itself from
// piggybacked gossip.
func NewGossipSampler(self string, capacity int, seeds []string) (membership.Sampler, error) {
	return membership.NewGossipSampler(self, capacity, seeds)
}

// SimulationConfig drives one run of the paper's theoretical model.
type SimulationConfig struct {
	// Size is the network size N (≥ 2).
	Size int
	// Selector is the GETPAIR implementation: "pm", "rand", "seq" or
	// "pmrand" (default "seq", the practical protocol).
	Selector string
	// Topology is the overlay: "complete" (default), "kregular", "view",
	// "ring", "smallworld" or "scalefree".
	Topology string
	// ViewSize is the degree parameter of non-complete overlays
	// (default 20, the paper's choice).
	ViewSize int
	// Cycles is how many AVG cycles to run (default 30).
	Cycles int
	// LossProbability drops each protocol message independently with
	// this probability (0 = lossless, the paper's assumption).
	LossProbability float64
	// Values supplies the initial vector; nil draws iid standard normal
	// values, the paper's uncorrelated starting point.
	Values []float64
	// Shards selects the executor: 0 (the default) runs the exact
	// sequential path, ≥ 2 the sharded tournament executor for
	// paper-scale runs, AutoShards one shard per GOMAXPROCS worker.
	// Sharding requires the complete topology with the "seq" or "pm"
	// selector.
	Shards int
	// Seed makes the run reproducible.
	Seed uint64
}

// SimulationResult reports one simulation run.
type SimulationResult struct {
	// Variances holds σ²ᵢ for i = 0..Cycles (index 0 is the initial
	// variance).
	Variances []float64
	// FinalMean is the vector mean after the last cycle; with lossless
	// exchanges it equals the initial mean up to rounding (mass
	// conservation, §3.2).
	FinalMean float64
	// ReductionRate is the geometric-mean per-cycle variance reduction —
	// compare with TheoreticalRate.
	ReductionRate float64
	// Values is the final vector (every node's approximation).
	Values []float64
}

// Simulate runs the paper's AVG algorithm once with the given
// configuration.
func Simulate(cfg SimulationConfig) (*SimulationResult, error) {
	if cfg.Size < 2 {
		return nil, fmt.Errorf("repro: simulation needs Size ≥ 2, got %d", cfg.Size)
	}
	if cfg.Selector == "" {
		cfg.Selector = "seq"
	}
	if cfg.Topology == "" {
		cfg.Topology = "complete"
	}
	if cfg.ViewSize == 0 {
		cfg.ViewSize = 20
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = 30
	}
	rng := xrand.New(cfg.Seed)
	if cfg.Shards != 0 && cfg.Shards != 1 {
		return simulateSharded(cfg, rng)
	}
	graph, err := experiments.BuildTopology(experiments.TopologyKind(cfg.Topology), cfg.Size, cfg.ViewSize, rng)
	if err != nil {
		return nil, err
	}
	selector, err := avg.NewSelector(cfg.Selector)
	if err != nil {
		return nil, err
	}
	values := cfg.Values
	if values == nil {
		values = make([]float64, cfg.Size)
		for i := range values {
			values[i] = rng.NormFloat64()
		}
	}
	var opts []avg.Option
	if cfg.LossProbability > 0 {
		opts = append(opts, avg.WithLossProbability(cfg.LossProbability))
	}
	runner, err := avg.NewRunner(graph, selector, values, rng, opts...)
	if err != nil {
		return nil, err
	}
	variances := runner.Run(cfg.Cycles)
	res := &SimulationResult{
		Variances: variances,
		FinalMean: runner.Mean(),
		Values:    append([]float64(nil), runner.Values()...),
	}
	first, last := variances[0], variances[len(variances)-1]
	if first > 0 && last > 0 {
		res.ReductionRate = math.Pow(last/first, 1/float64(cfg.Cycles))
	}
	return res, nil
}

// simulateSharded routes a run through the kernel's sharded tournament
// executor — the paper-scale path. It supports the combinations the
// executor parallelizes: the complete overlay with the "seq" pairing
// (statistically equivalent to sequential execution) or "pm" pairing
// (bit-identical to it).
func simulateSharded(cfg SimulationConfig, rng *xrand.Rand) (*SimulationResult, error) {
	if cfg.Topology != "complete" {
		return nil, fmt.Errorf("repro: sharded simulation requires the complete topology, got %q", cfg.Topology)
	}
	var selector sim.Selector
	switch cfg.Selector {
	case "seq":
		// The sharded executor's built-in pair stream.
	case "pm":
		selector = sim.NewPM()
	default:
		return nil, fmt.Errorf("repro: sharded simulation supports the seq or pm selector, got %q", cfg.Selector)
	}
	values := cfg.Values
	if values == nil {
		values = make([]float64, cfg.Size)
		for i := range values {
			values[i] = rng.NormFloat64()
		}
	}
	var loss sim.LossModel
	if cfg.LossProbability > 0 {
		loss = sim.ReplyLoss{P: cfg.LossProbability}
	}
	kern, err := sim.New(sim.Config{
		Size:     cfg.Size,
		Selector: selector,
		Loss:     loss,
		Shards:   cfg.Shards,
		RNG:      rng,
	})
	if err != nil {
		return nil, err
	}
	if err := kern.SetValues(0, values); err != nil {
		return nil, err
	}
	variances := kern.Run(cfg.Cycles)
	res := &SimulationResult{
		Variances: variances,
		FinalMean: stats.Mean(kern.Column(0)),
		Values:    append([]float64(nil), kern.Column(0)...),
	}
	first, last := variances[0], variances[len(variances)-1]
	if first > 0 && last > 0 {
		res.ReductionRate = math.Pow(last/first, 1/float64(cfg.Cycles))
	}
	return res, nil
}

// AsyncSimulationConfig drives the discrete-event simulation of the
// asynchronous protocol: autonomous nodes waking on their own waiting
// times (§1.1), no global cycles — at 100 000-node scale.
type AsyncSimulationConfig struct {
	// Size is the network size N (≥ 2).
	Size int
	// Topology and ViewSize mirror SimulationConfig (defaults:
	// "complete", 20).
	Topology string
	ViewSize int
	// Exponential switches GETWAITINGTIME from the constant Δt (the
	// practical protocol, seq-like rate 1/(2√e)) to exponential waits
	// with mean Δt (rand-like rate 1/e, §3.3.2).
	Exponential bool
	// Cycles is the horizon in units of Δt (default 30).
	Cycles int
	// LossProbability drops whole exchanges with this probability.
	LossProbability float64
	// Values supplies the initial vector; nil draws iid standard normal.
	Values []float64
	// Seed makes the run reproducible.
	Seed uint64
}

// AsyncSimulationResult reports one event-driven run: variance sampled
// once per Δt, the exchange count and the (conserved) final mean.
type AsyncSimulationResult = eventsim.Result

// SimulateAsync runs the discrete-event model of the asynchronous
// protocol and returns the variance trajectory sampled once per Δt.
func SimulateAsync(cfg AsyncSimulationConfig) (*AsyncSimulationResult, error) {
	if cfg.Size < 2 {
		return nil, fmt.Errorf("repro: async simulation needs Size ≥ 2, got %d", cfg.Size)
	}
	if cfg.Topology == "" {
		cfg.Topology = "complete"
	}
	if cfg.ViewSize == 0 {
		cfg.ViewSize = 20
	}
	rng := xrand.New(cfg.Seed)
	graph, err := experiments.BuildTopology(experiments.TopologyKind(cfg.Topology), cfg.Size, cfg.ViewSize, rng)
	if err != nil {
		return nil, err
	}
	values := cfg.Values
	if values == nil {
		values = make([]float64, cfg.Size)
		for i := range values {
			values[i] = rng.NormFloat64()
		}
	}
	wait := eventsim.ConstantWait
	if cfg.Exponential {
		wait = eventsim.ExponentialWait
	}
	return eventsim.Run(eventsim.Config{
		Graph:    graph,
		Values:   values,
		Wait:     wait,
		Cycles:   cfg.Cycles,
		LossProb: cfg.LossProbability,
		Seed:     cfg.Seed ^ 0xa5a5a5a5,
	})
}

// TheoreticalRate returns the paper's closed-form per-cycle variance
// reduction rate E(2^{-φ}) for the named selector on the complete graph
// (1/4 for "pm", 1/e for "rand", 1/(2√e) for "seq" and "pmrand");
// ok is false for unknown selectors.
func TheoreticalRate(selector string) (rate float64, ok bool) {
	return avg.TheoreticalRate(selector)
}

// SizeEstimationConfig drives the §4 application: adaptive network size
// estimation with epoch restarts under churn (the Figure 4 scenario).
type SizeEstimationConfig = experiments.Fig4Config

// DefaultSizeEstimationConfig returns the paper's Figure 4 parameters
// (size oscillating 90 000–110 000, ±100 nodes per cycle, 30-cycle
// epochs, 1000 cycles).
func DefaultSizeEstimationConfig() SizeEstimationConfig {
	return experiments.DefaultFig4()
}

// EstimateSizeUnderChurn runs the size-estimation scenario and returns
// one report per epoch (converged estimate with min/max range versus
// actual size).
func EstimateSizeUnderChurn(cfg SizeEstimationConfig) ([]EpochReport, error) {
	return experiments.Fig4(cfg)
}
