package repro

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// -update regenerates api/metrics.txt from the live registry (the
// metric-name golden, TestMetricsNamesGolden).
var updateMetricsGolden = flag.Bool("update", false, "rewrite api/metrics.txt from the live metric-name set")

// TestWatchDroppedStalledSubscriber is the latest-wins observability
// regression: a subscriber that stops reading accumulates Dropped on
// the snapshots it eventually sees (and on the per-field hub counter),
// while a subscriber that keeps up stays at zero and keeps advancing.
func TestWatchDroppedStalledSubscriber(t *testing.T) {
	const cycle = 5 * time.Millisecond
	sys, err := Open(
		WithSize(8),
		WithCycleLength(cycle),
		WithSeed(31),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stalled, err := sys.Watch(ctx, "avg")
	if err != nil {
		t.Fatal(err)
	}
	active, err := sys.Watch(ctx, "avg")
	if err != nil {
		t.Fatal(err)
	}

	// Drain the active subscriber continuously, recording its last
	// snapshot; never touch the stalled one.
	var mu sync.Mutex
	var last Estimate
	var got int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for est := range active {
			mu.Lock()
			last = est
			got++
			mu.Unlock()
		}
	}()

	// Let the hub tick for a few dozen cycles: the stalled subscriber's
	// slot is replaced (one drop) on all but the first.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("active subscriber saw only %d snapshots in 10s", n)
		}
		time.Sleep(cycle)
	}

	est, ok := <-stalled
	if !ok {
		t.Fatal("stalled subscriber's channel closed early")
	}
	if est.Dropped == 0 {
		t.Errorf("stalled subscriber shows 0 drops after ~20 replaced snapshots")
	}
	if est.Seq == 0 {
		t.Errorf("stalled subscriber's slot was never replaced with a fresh snapshot")
	}
	mu.Lock()
	activeLast, activeGot := last, got
	mu.Unlock()
	if activeLast.Dropped != 0 {
		t.Errorf("active subscriber shows %d drops after %d prompt receives", activeLast.Dropped, activeGot)
	}
	if activeLast.Seq < est.Seq-1 {
		t.Errorf("active subscriber fell behind the stalled one: seq %d vs %d", activeLast.Seq, est.Seq)
	}

	// The per-field hub counter mirrors the per-subscriber counts.
	if v, found := scrapeValue(sys, `repro_watch_dropped_total{field="avg"}`); !found || v < float64(est.Dropped) {
		t.Errorf("repro_watch_dropped_total{field=avg} = %g, found=%v, want ≥ %d", v, found, est.Dropped)
	}
	cancel()
	<-done
}

// scrapeValue renders the system's registry and returns the named
// sample's value (series name including labels, exactly as exposed).
func scrapeValue(sys *System, series string) (float64, bool) {
	text := string(sys.metrics.AppendPrometheus(nil))
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			return v, err == nil
		}
	}
	return 0, false
}

// TestTelemetryRhoMatchesTheory is the convergence-tracker acceptance
// gate: on a live in-memory system running the constant-wait protocol,
// the observed per-cycle variance reduction factor ρ̂ must match the
// paper's seq-class prediction 1/(2√e) ≈ 0.3033 within the equivalence
// suite's tolerance band [0.27, 0.32].
func TestTelemetryRhoMatchesTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive live convergence measurement")
	}
	const n = 1024
	sys, err := Open(
		WithSize(n),
		WithMode(ModeHeap),
		WithValues(func(i int) float64 { return float64(i) }),
		WithCycleLength(30*time.Millisecond),
		WithReplyTimeout(time.Second),
		WithSeed(17),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ch := sys.WatchTelemetry(ctx)
	var tel Telemetry
	for tel.RhoCycles < 25 {
		var ok bool
		select {
		case tel, ok = <-ch:
			if !ok {
				t.Fatalf("telemetry stream ended at %.1f informative cycles", tel.RhoCycles)
			}
		case <-ctx.Done():
			t.Fatalf("only %.1f informative cycles after 60s (variance %g)", tel.RhoCycles, tel.Variance)
		}
	}
	if tel.RhoGeo < 0.27 || tel.RhoGeo > 0.32 {
		t.Errorf("observed ρ̂ (geometric mean over %.1f cycles) = %.4f, want within [0.27, 0.32] around 1/(2√e) ≈ 0.3033",
			tel.RhoCycles, tel.RhoGeo)
	}
	wantMean := float64(n-1) / 2
	if math.Abs(tel.TrueMean-wantMean) > 1e-9 {
		t.Errorf("TrueMean = %g, want %g", tel.TrueMean, wantMean)
	}
	// Mass conservation: after 25 cycles of reduction the estimate
	// tracks the true mean to well under one value-spacing unit.
	if !(tel.TrackingError < 1) {
		t.Errorf("TrackingError = %g after %.1f cycles", tel.TrackingError, tel.RhoCycles)
	}
	if tel.Nodes != n || tel.Field != "avg" {
		t.Errorf("telemetry identity: nodes=%d field=%q", tel.Nodes, tel.Field)
	}
	if tel.Stats.Initiated == 0 || math.IsNaN(tel.Completion) || tel.Completion <= 0.5 {
		t.Errorf("completion accounting: %+v completion=%g", tel.Stats, tel.Completion)
	}
	if len(tel.ShardInitiated) != sys.Workers() {
		t.Errorf("ShardInitiated has %d entries for %d workers", len(tel.ShardInitiated), sys.Workers())
	}

	// The scrape-time gauges mirror the tracker.
	if v, found := scrapeValue(sys, "repro_convergence_rho_geo"); !found || math.Abs(v-tel.RhoGeo) > 0.2 {
		t.Errorf("repro_convergence_rho_geo = %g (found=%v), tracker says %g", v, found, tel.RhoGeo)
	}
}

// TestTelemetrySynchronousBaseline: Telemetry before the tracker's
// first tick (hour-long cycles park the hub ticker) falls back to a
// fresh synchronous reduction with NaN convergence factors.
func TestTelemetrySynchronousBaseline(t *testing.T) {
	sys, err := Open(
		WithSize(16),
		WithValues(func(i int) float64 { return float64(i) }),
		WithCycleLength(time.Hour),
		WithSeed(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	tel := sys.Telemetry()
	if tel.Seq != -1 {
		t.Errorf("pre-tick telemetry Seq = %d, want -1", tel.Seq)
	}
	if tel.Nodes != 16 || math.Abs(tel.Mean-7.5) > 1e-9 {
		t.Errorf("baseline reduction: nodes=%d mean=%g", tel.Nodes, tel.Mean)
	}
	if !math.IsNaN(tel.Rho) || !math.IsNaN(tel.RhoGeo) {
		t.Errorf("pre-tick ρ̂ not NaN: %g / %g", tel.Rho, tel.RhoGeo)
	}
	if math.Abs(tel.TrueMean-7.5) > 1e-9 {
		t.Errorf("baseline TrueMean = %g, want 7.5", tel.TrueMean)
	}
}

// TestOpsEndpointEndToEnd drives the WithOps HTTP surface over real
// sockets: /metrics Prometheus exposition, /healthz and /varz JSON,
// pprof, and the trace ring behind WithTraceSampling.
func TestOpsEndpointEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real HTTP sockets")
	}
	sys, err := Open(
		WithSize(64),
		WithMode(ModeHeap),
		WithValues(func(i int) float64 { return float64(i % 7) }),
		WithCycleLength(5*time.Millisecond),
		WithReplyTimeout(time.Second),
		WithTraceSampling(2),
		WithOps("127.0.0.1:0"),
		WithSeed(12),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	addr := sys.OpsAddr()
	if addr == "" {
		t.Fatal("OpsAddr empty with WithOps configured")
	}

	// Let some exchanges complete so counters and the trace ring fill.
	deadline := time.Now().Add(10 * time.Second)
	for sys.Stats().Replies < 100 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if sys.Stats().Replies == 0 {
		t.Fatal("no exchanges completed")
	}

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE repro_engine_exchanges_initiated_total counter",
		`repro_engine_exchanges_initiated_total{shard="0"}`,
		"repro_convergence_rho",
		"repro_system_uptime_seconds",
		"repro_engine_exchange_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health["status"] != "ok" || health["nodes"] != float64(64) {
		t.Errorf("/healthz = %v", health)
	}

	code, body, _ = get("/varz")
	if code != http.StatusOK {
		t.Fatalf("/varz status %d", code)
	}
	var varz struct {
		Telemetry map[string]any     `json:"telemetry"`
		Metrics   map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &varz); err != nil {
		t.Fatalf("/varz not JSON: %v\n%s", err, body[:min(len(body), 400)])
	}
	if varz.Telemetry["field"] != "avg" {
		t.Errorf("/varz telemetry = %v", varz.Telemetry)
	}
	if len(varz.Metrics) == 0 {
		t.Error("/varz metrics empty")
	}

	if code, _, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	// Trace sampling: the ring holds resolved exchanges with in-range
	// endpoints and the public aliases resolve outcomes.
	recs := sys.Trace(10)
	if len(recs) == 0 {
		t.Fatal("trace ring empty with sampling enabled")
	}
	for _, r := range recs {
		if r.Outcome != TraceCompleted && r.Outcome != TraceNacked && r.Outcome != TraceTimedOut {
			t.Errorf("trace outcome %v", r.Outcome)
		}
	}

	// Close tears the ops listener down.
	sys.Close()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("ops server survived Close")
	}
}

// TestOpsScrapeLiveLargeSystem is the lock-free-scrape acceptance gate:
// /metrics on a live 10⁵-node heap system returns promptly while the
// workers run — the exposition reads only atomics, never a shard lock.
func TestOpsScrapeLiveLargeSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-node live system")
	}
	sys, err := Open(
		WithSize(100_000),
		WithMode(ModeHeap),
		WithValues(func(i int) float64 { return float64(i % 100) }),
		WithCycleLength(time.Second),
		WithOps("127.0.0.1:0"),
		WithSeed(13),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Workers are live (1-second cycles keep the load modest); scrape
	// repeatedly and require prompt, complete responses.
	deadline := time.Now().Add(20 * time.Second)
	for sys.Stats().Initiated < 1000 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 5; i++ {
		start := time.Now()
		resp, err := client.Get("http://" + sys.OpsAddr() + "/metrics")
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape %d: read: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("scrape %d took %v on a live 10⁵-node system", i, elapsed)
		}
		if !strings.Contains(string(body), "repro_engine_nodes 100000") {
			t.Fatalf("scrape %d incomplete (%d bytes)", i, len(body))
		}
	}
	if sys.Stats().Initiated == 0 {
		t.Fatal("system was not live during the scrapes")
	}
}

// TestMetricsNamesGolden pins the exposed metric-family name set for
// the canonical shape (in-memory heap runtime, trace sampling on, one
// watched field) in api/metrics.txt — like api/repro.txt for the API
// surface, any PR that changes the exposition renames explicitly.
// Regenerate with: go test -run TestMetricsNamesGolden -update .
func TestMetricsNamesGolden(t *testing.T) {
	sys, err := Open(
		WithSize(16),
		WithMode(ModeHeap),
		WithGossipMembership(),     // registers the membership families too
		WithCycleLength(time.Hour), // parked: names, not values
		WithTraceSampling(8),
		WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := sys.Watch(ctx, "avg"); err != nil { // registers the watch families
		t.Fatal(err)
	}
	got := strings.Join(sys.metrics.Names(), "\n") + "\n"

	const golden = "api/metrics.txt"
	if *updateMetricsGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d families)", golden, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("metric-name set drifted from %s (regenerate with -update after an intentional change):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// ExampleWithOps opens a system with the operational HTTP endpoint and
// scrapes its own Prometheus exposition — the WithOps quickstart.
func ExampleWithOps() {
	sys, err := Open(
		WithSize(32),
		WithValues(func(i int) float64 { return float64(i) }),
		WithCycleLength(5*time.Millisecond),
		WithOps("127.0.0.1:0"), // ephemeral port; see sys.OpsAddr()
	)
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	resp, err := http.Get("http://" + sys.OpsAddr() + "/metrics")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Contains(string(body), "repro_engine_nodes 32"))
	// Output: true
}
