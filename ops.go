package repro

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// opsServer is the operational HTTP endpoint behind WithOps: /metrics
// (Prometheus text exposition), /healthz, /varz (flat JSON) and
// net/http/pprof under /debug/pprof/. Every handler reads only atomics
// and per-cycle telemetry state, so scraping a busy 10⁵-node system
// never takes a shard lock.
type opsServer struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux // retained so System.Handle can mount the serve layer

	// bufs recycles scrape buffers so steady-state /metrics and /varz
	// responses allocate nothing for the exposition itself.
	bufs sync.Pool
}

// startOps binds the ops listener and starts serving. Called by Open;
// a bind failure fails Open.
func (s *System) startOps(addr string) error {
	s.ensureTelemetry()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("repro: ops listen %s: %w", addr, err)
	}
	ops := &opsServer{ln: ln}
	ops.bufs.New = func() any { b := make([]byte, 0, 16<<10); return &b }
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		bp := ops.bufs.Get().(*[]byte)
		buf := s.metrics.AppendPrometheus((*bp)[:0])
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf)
		*bp = buf[:0]
		ops.bufs.Put(bp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		tel := s.Telemetry()
		bp := ops.bufs.Get().(*[]byte)
		buf := appendHealthJSON((*bp)[:0], s, tel)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf)
		*bp = buf[:0]
		ops.bufs.Put(bp)
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, r *http.Request) {
		tel := s.Telemetry()
		bp := ops.bufs.Get().(*[]byte)
		buf := append((*bp)[:0], `{"telemetry":`...)
		buf = appendTelemetryJSON(buf, tel)
		buf = append(buf, `,"metrics":`...)
		buf = s.metrics.AppendJSON(buf)
		buf = append(buf, "}\n"...)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf)
		*bp = buf[:0]
		ops.bufs.Put(bp)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ops.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ops.mux = mux
	go func() { _ = ops.srv.Serve(ln) }()
	s.ops = ops
	return nil
}

// opsDrainTimeout bounds the graceful drain in stop. Streaming handlers
// end as soon as their Watch channels close (System.Close closes s.done
// first), so the bound only bites if a response write wedges.
const opsDrainTimeout = 5 * time.Second

// stop drains the ops server gracefully: the listener closes at once,
// and in-flight handlers — scrapes, and the serve layer's SSE streams,
// whose Watch channels the already-closed s.done has released — finish
// their final writes so clients see clean ends of stream rather than
// connection resets. Close is the fallback if the drain exceeds its
// timeout.
func (o *opsServer) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), opsDrainTimeout)
	defer cancel()
	if err := o.srv.Shutdown(ctx); err != nil {
		_ = o.srv.Close()
	}
}

// Handle mounts h on the ops mux under pattern (net/http ServeMux
// syntax), beside /metrics, /healthz, /varz and /debug/pprof/. This is
// how the serve package attaches its /v1/ API to the same listener.
// Errors when the system was opened without WithOps.
func (s *System) Handle(pattern string, h http.Handler) error {
	if s.ops == nil {
		return fmt.Errorf("repro: Handle requires WithOps")
	}
	s.ops.mux.Handle(pattern, h)
	return nil
}

// OpsAddr returns the ops HTTP server's bound address ("" when WithOps
// was not configured) — the base for /metrics, /healthz, /varz and
// /debug/pprof/ URLs. With WithOps("127.0.0.1:0") this is where the
// ephemeral port landed.
func (s *System) OpsAddr() string {
	if s.ops == nil {
		return ""
	}
	return s.ops.ln.Addr().String()
}

// appendHealthJSON renders the /healthz body: liveness plus the
// one-line convergence summary an operator checks first.
func appendHealthJSON(buf []byte, s *System, tel Telemetry) []byte {
	buf = append(buf, `{"status":"ok","nodes":`...)
	buf = strconv.AppendInt(buf, int64(tel.Nodes), 10)
	buf = append(buf, `,"uptime_seconds":`...)
	buf = appendJSONFloat(buf, time.Since(s.openedAt).Seconds())
	buf = append(buf, `,"variance":`...)
	buf = appendJSONFloat(buf, tel.Variance)
	buf = append(buf, `,"converged":`...)
	buf = strconv.AppendBool(buf, tel.Converged)
	buf = append(buf, `,"rho":`...)
	buf = appendJSONFloat(buf, tel.Rho)
	buf = append(buf, "}\n"...)
	return buf
}

// appendTelemetryJSON renders a Telemetry snapshot as one flat JSON
// object.
func appendTelemetryJSON(buf []byte, tel Telemetry) []byte {
	return tel.AppendJSON(buf)
}

// AppendJSON renders the snapshot as one flat JSON object, appended to
// buf. Hand-built because encoding/json rejects the NaNs that are
// legitimate "not yet known" values here (they render as null). Used by
// the /varz handler and the serve layer's GET /v1/telemetry.
func (tel Telemetry) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"field":`...)
	buf = strconv.AppendQuote(buf, tel.Field)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendInt(buf, int64(tel.Seq), 10)
	buf = append(buf, `,"nodes":`...)
	buf = strconv.AppendInt(buf, int64(tel.Nodes), 10)
	buf = append(buf, `,"workers":`...)
	buf = strconv.AppendInt(buf, int64(tel.Workers), 10)
	for _, f := range []struct {
		key string
		v   float64
	}{
		{"mean", tel.Mean}, {"variance", tel.Variance},
		{"min", tel.Min}, {"max", tel.Max},
		{"rho", tel.Rho}, {"rho_geo", tel.RhoGeo},
		{"true_mean", tel.TrueMean}, {"tracking_error", tel.TrackingError},
		{"corruption", tel.Corruption},
		{"completion", tel.Completion},
	} {
		buf = append(buf, ',', '"')
		buf = append(buf, f.key...)
		buf = append(buf, '"', ':')
		buf = appendJSONFloat(buf, f.v)
	}
	buf = append(buf, `,"rho_cycles":`...)
	buf = appendJSONFloat(buf, tel.RhoCycles)
	buf = append(buf, `,"converged":`...)
	buf = strconv.AppendBool(buf, tel.Converged)
	buf = append(buf, `,"serve_streams":`...)
	buf = strconv.AppendInt(buf, int64(tel.ServeStreams), 10)
	buf = append(buf, `,"serve_dropped":`...)
	buf = strconv.AppendUint(buf, tel.ServeDropped, 10)
	buf = append(buf, `,"adversary_nodes":`...)
	buf = strconv.AppendInt(buf, int64(tel.AdversaryNodes), 10)
	buf = append(buf, `,"robust_rejected":`...)
	buf = strconv.AppendUint(buf, tel.RobustRejected, 10)
	buf = append(buf, `,"steals":`...)
	buf = strconv.AppendUint(buf, tel.Steals, 10)
	buf = append(buf, `,"exchanges_initiated":`...)
	buf = strconv.AppendUint(buf, tel.Stats.Initiated, 10)
	buf = append(buf, `,"exchanges_completed":`...)
	buf = strconv.AppendUint(buf, tel.Stats.Replies, 10)
	buf = append(buf, `,"exchange_timeouts":`...)
	buf = strconv.AppendUint(buf, tel.Stats.Timeouts, 10)
	buf = append(buf, `,"shard_initiated":[`...)
	for i, v := range tel.ShardInitiated {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, v, 10)
	}
	buf = append(buf, ']', '}')
	return buf
}

// appendJSONFloat renders a float as JSON, mapping NaN and ±Inf (not
// representable in JSON) to null.
func appendJSONFloat(buf []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
