package repro

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/avg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/xrand"
	"repro/scenario"
)

// Benchmarks regenerate every figure of the paper at bench scale (sizes
// reduced ~10× so `go test -bench .` completes in minutes; run
// `cmd/figures -scale paper` for the full-size sweeps). Custom metrics
// carry the reproduction numbers:
//
//	reduction     one-cycle variance reduction σ₁²/σ₀² (Figure 3a)
//	rate          geometric-mean per-cycle reduction (Figure 3b)
//	theory-delta  |measured − closed form|
//	relerr        mean relative error of the size estimate (Figure 4)
//	cycles        cycles to reach the §5 accuracy target

// benchGaussian returns a fresh iid standard normal vector.
func benchGaussian(n int, rng *xrand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// BenchmarkFig3a measures the one-cycle variance reduction for each
// selector × topology combination the paper plots in Figure 3(a).
func BenchmarkFig3a(b *testing.B) {
	const n, view = 10000, 20
	for _, sel := range []string{"rand", "seq"} {
		for _, topo := range []experiments.TopologyKind{experiments.Complete, experiments.KRegular} {
			b.Run(fmt.Sprintf("selector=%s/topology=%s/n=%d", sel, topo, n), func(b *testing.B) {
				rng := xrand.New(42)
				// One overlay per sub-bench: graph construction is the
				// dominant setup cost and does not affect the measured
				// reduction statistics.
				g, err := experiments.BuildTopology(topo, n, view, rng)
				if err != nil {
					b.Fatal(err)
				}
				var acc stats.Running
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					selector, err := avg.NewSelector(sel)
					if err != nil {
						b.Fatal(err)
					}
					runner, err := avg.NewRunner(g, selector, benchGaussian(n, rng), rng)
					if err != nil {
						b.Fatal(err)
					}
					before := runner.Variance()
					b.StartTimer()
					after := runner.Cycle()
					acc.Add(after / before)
				}
				b.ReportMetric(acc.Mean(), "reduction")
				if theory, ok := avg.TheoreticalRate(sel); ok {
					b.ReportMetric(math.Abs(acc.Mean()-theory), "theory-delta")
				}
			})
		}
	}
}

// BenchmarkFig3b measures the geometric-mean per-cycle reduction while
// iterating AVG for 30 cycles (Figure 3(b); bench n = 20000, paper
// n = 100000 via cmd/figures).
func BenchmarkFig3b(b *testing.B) {
	const n, view, cycles = 20000, 20, 30
	for _, sel := range []string{"rand", "seq"} {
		for _, topo := range []experiments.TopologyKind{experiments.Complete, experiments.KRegular} {
			b.Run(fmt.Sprintf("selector=%s/topology=%s/n=%d", sel, topo, n), func(b *testing.B) {
				rng := xrand.New(43)
				g, err := experiments.BuildTopology(topo, n, view, rng)
				if err != nil {
					b.Fatal(err)
				}
				var acc stats.Running
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					selector, err := avg.NewSelector(sel)
					if err != nil {
						b.Fatal(err)
					}
					runner, err := avg.NewRunner(g, selector, benchGaussian(n, rng), rng)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					variances := runner.Run(cycles)
					first, last := variances[0], variances[len(variances)-1]
					if first > 0 && last > 0 {
						acc.Add(math.Pow(last/first, 1/float64(cycles)))
					}
				}
				b.ReportMetric(acc.Mean(), "rate")
			})
		}
	}
}

// BenchmarkFig4 runs the size-estimation-under-churn scenario (Figure 4)
// at bench scale (9k–11k oscillation; paper runs 90k–110k).
func BenchmarkFig4(b *testing.B) {
	cfg := SizeEstimationConfig{
		MinSize:           9000,
		MaxSize:           11000,
		OscillationPeriod: 400,
		Fluctuation:       10,
		EpochCycles:       30,
		TotalCycles:       300,
		Instances:         1,
	}
	var relErr stats.Running
	lostEpochs := 0
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		reports, err := EstimateSizeUnderChurn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			if math.IsNaN(r.EstimateMean) {
				// The single leader crashed before spreading any
				// indicator mass — the known single-instance failure
				// mode (§4); count it rather than poison the mean.
				lostEpochs++
				continue
			}
			relErr.Add(math.Abs(r.EstimateMean-float64(r.SizeAtStart)) / float64(r.SizeAtStart))
		}
	}
	b.ReportMetric(relErr.Mean(), "relerr")
	b.ReportMetric(float64(lostEpochs), "lost-epochs")
}

// BenchmarkRates reproduces the §3.3 closed-form table (E4): measured
// one-cycle reduction per selector on the complete graph versus theory.
func BenchmarkRates(b *testing.B) {
	const n = 10000
	for _, sel := range []string{"pm", "rand", "seq", "pmrand"} {
		b.Run("selector="+sel, func(b *testing.B) {
			rng := xrand.New(44)
			var acc stats.Running
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, err := topology.NewComplete(n)
				if err != nil {
					b.Fatal(err)
				}
				selector, err := avg.NewSelector(sel)
				if err != nil {
					b.Fatal(err)
				}
				runner, err := avg.NewRunner(g, selector, benchGaussian(n, rng), rng)
				if err != nil {
					b.Fatal(err)
				}
				before := runner.Variance()
				b.StartTimer()
				acc.Add(runner.Cycle() / before)
			}
			theory, _ := avg.TheoreticalRate(sel)
			b.ReportMetric(acc.Mean(), "reduction")
			b.ReportMetric(theory, "theory")
			b.ReportMetric(math.Abs(acc.Mean()-theory), "theory-delta")
		})
	}
}

// BenchmarkFig5Claim verifies the §5 efficiency claim (E5): the variance
// drops 99.9 % within ≈ ln(1000) ≈ 7 cycles even with getPair_rand.
func BenchmarkFig5Claim(b *testing.B) {
	const n = 10000
	for _, sel := range []string{"pm", "rand", "seq"} {
		b.Run("selector="+sel, func(b *testing.B) {
			rng := xrand.New(45)
			var cyclesAcc stats.Running
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, err := topology.NewComplete(n)
				if err != nil {
					b.Fatal(err)
				}
				selector, err := avg.NewSelector(sel)
				if err != nil {
					b.Fatal(err)
				}
				runner, err := avg.NewRunner(g, selector, benchGaussian(n, rng), rng)
				if err != nil {
					b.Fatal(err)
				}
				initial := runner.Variance()
				b.StartTimer()
				cycles := 0
				for runner.Variance() > 1e-3*initial && cycles < 50 {
					runner.Cycle()
					cycles++
				}
				cyclesAcc.Add(float64(cycles))
			}
			b.ReportMetric(cyclesAcc.Mean(), "cycles")
		})
	}
}

// BenchmarkAblationLoss sweeps message-loss probabilities (E6): rate and
// mean drift per loss level.
func BenchmarkAblationLoss(b *testing.B) {
	const n, cycles = 5000, 15
	for _, p := range []float64{0, 0.1, 0.2, 0.4} {
		b.Run(fmt.Sprintf("loss=%.2f", p), func(b *testing.B) {
			rng := xrand.New(46)
			var rate, drift stats.Running
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, err := topology.NewComplete(n)
				if err != nil {
					b.Fatal(err)
				}
				values := benchGaussian(n, rng)
				trueMean := stats.Mean(values)
				sd := math.Sqrt(stats.Variance(values))
				var opts []avg.Option
				if p > 0 {
					opts = append(opts, avg.WithLossProbability(p))
				}
				runner, err := avg.NewRunner(g, avg.NewSeq(), values, rng, opts...)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				variances := runner.Run(cycles)
				first, last := variances[0], variances[len(variances)-1]
				if first > 0 && last > 0 {
					rate.Add(math.Pow(last/first, 1/float64(cycles)))
				}
				drift.Add(math.Abs(runner.Mean()-trueMean) / sd)
			}
			b.ReportMetric(rate.Mean(), "rate")
			b.ReportMetric(drift.Mean(), "drift-sd")
		})
	}
}

// BenchmarkAblationCrash sweeps crash fractions (E6): survivors converge
// to a shifted mean; the metric is the shift in initial-stddev units.
func BenchmarkAblationCrash(b *testing.B) {
	const n, cycles = 5000, 15
	for _, f := range []float64{0, 0.1, 0.5} {
		b.Run(fmt.Sprintf("crash=%.2f", f), func(b *testing.B) {
			rng := xrand.New(47)
			var errAcc stats.Running
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				values := benchGaussian(n, rng)
				trueMean := stats.Mean(values)
				sd := math.Sqrt(stats.Variance(values))
				survivors := n - int(f*float64(n))
				perm := rng.Perm(n)
				kept := make([]float64, survivors)
				for k := 0; k < survivors; k++ {
					kept[k] = values[perm[k]]
				}
				g, err := topology.NewComplete(survivors)
				if err != nil {
					b.Fatal(err)
				}
				runner, err := avg.NewRunner(g, avg.NewSeq(), kept, rng)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				runner.Run(cycles)
				errAcc.Add(math.Abs(runner.Mean()-trueMean) / sd)
			}
			b.ReportMetric(errAcc.Mean(), "error-sd")
		})
	}
}

// BenchmarkAblationTopology compares the per-cycle rate across overlays —
// the sensitivity study for the paper's "random enough" assumption.
func BenchmarkAblationTopology(b *testing.B) {
	const n, view, cycles = 5000, 20, 15
	kinds := []experiments.TopologyKind{
		experiments.Complete, experiments.KRegular, experiments.RandomView,
		experiments.SmallWorld, experiments.ScaleFree, experiments.Ring,
	}
	for _, kind := range kinds {
		b.Run("topology="+string(kind), func(b *testing.B) {
			rng := xrand.New(48)
			g, err := experiments.BuildTopology(kind, n, view, rng)
			if err != nil {
				b.Fatal(err)
			}
			var rate stats.Running
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				runner, err := avg.NewRunner(g, avg.NewSeq(), benchGaussian(n, rng), rng)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				variances := runner.Run(cycles)
				first, last := variances[0], variances[len(variances)-1]
				if first > 0 && last > 0 {
					rate.Add(math.Pow(last/first, 1/float64(cycles)))
				}
			}
			b.ReportMetric(rate.Mean(), "rate")
		})
	}
}

// BenchmarkAblationViewSize sweeps the k-regular view size — how small
// the paper's fixed view of 20 could have been.
func BenchmarkAblationViewSize(b *testing.B) {
	const n, cycles = 5000, 15
	for _, k := range []int{2, 4, 8, 20, 40} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := xrand.New(49)
			g, err := topology.NewKRegular(n, k, rng)
			if err != nil {
				b.Fatal(err)
			}
			var rate stats.Running
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				runner, err := avg.NewRunner(g, avg.NewSeq(), benchGaussian(n, rng), rng)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				variances := runner.Run(cycles)
				first, last := variances[0], variances[len(variances)-1]
				if first > 0 && last > 0 {
					rate.Add(math.Pow(last/first, 1/float64(cycles)))
				}
			}
			b.ReportMetric(rate.Mean(), "rate")
		})
	}
}

// BenchmarkWaitingPolicy is DESIGN.md ablation 2 at event-simulator
// scale: the waiting-time distribution maps onto the paper's selector
// regimes (constant ≈ seq's 1/(2√e), exponential ≈ rand's 1/e).
func BenchmarkWaitingPolicy(b *testing.B) {
	const n, cycles = 20000, 10
	for _, exp := range []bool{false, true} {
		name := "wait=constant"
		if exp {
			name = "wait=exponential"
		}
		b.Run(name, func(b *testing.B) {
			var rate stats.Running
			for i := 0; i < b.N; i++ {
				res, err := SimulateAsync(AsyncSimulationConfig{
					Size:        n,
					Exponential: exp,
					Cycles:      cycles,
					Seed:        uint64(52 + i),
				})
				if err != nil {
					b.Fatal(err)
				}
				first, last := res.Variances[0], res.Variances[len(res.Variances)-1]
				if first > 0 && last > 0 {
					rate.Add(math.Pow(last/first, 1/float64(cycles)))
				}
			}
			b.ReportMetric(rate.Mean(), "rate")
		})
	}
}

// BenchmarkCycleThroughput is the simulator's hot path: elementary
// variance-reduction steps per second at N = 100000 (one b.N unit = one
// full AVG cycle = N steps).
func BenchmarkCycleThroughput(b *testing.B) {
	const n = 100000
	rng := xrand.New(50)
	g, err := topology.NewComplete(n)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := avg.NewRunner(g, avg.NewSeq(), benchGaussian(n, rng), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Cycle()
	}
	b.ReportMetric(float64(n), "steps/cycle")
}

// BenchmarkKernelMillionNode exercises the unified kernel's hot path —
// the sharded structure-of-arrays executor of internal/sim — with a
// 30-cycle average run at N = 10⁴, 10⁵ and 10⁶ nodes, single-shard
// versus one shard per GOMAXPROCS worker. One b.N unit is one full run
// (30·N elementary exchanges); custom metrics report the per-exchange
// cost and allocation rate, which must be ~0 in steady state (all
// kernel state is reused across cycles).
func BenchmarkKernelMillionNode(b *testing.B) {
	const cycles = 30
	shardCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		shardCounts = append(shardCounts, p)
	} else {
		// Single-core environment: still exercise the sharded executor.
		shardCounts = append(shardCounts, 4)
	}
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		rng := xrand.New(60)
		values := benchGaussian(n, rng)
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("n=%d/shards=%d", n, shards), func(b *testing.B) {
				kern, err := sim.New(sim.Config{Size: n, Shards: shards, RNG: xrand.New(61)})
				if err != nil {
					b.Fatal(err)
				}
				// Warm-up cycle so bucket capacities and goroutine stacks
				// are in steady state before measuring.
				if err := kern.SetValues(0, values); err != nil {
					b.Fatal(err)
				}
				kern.Cycle()
				b.ReportAllocs()
				var before runtime.MemStats
				runtime.ReadMemStats(&before)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := kern.SetValues(0, values); err != nil {
						b.Fatal(err)
					}
					for c := 0; c < cycles; c++ {
						kern.Cycle()
					}
				}
				b.StopTimer()
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				exchanges := float64(b.N) * float64(cycles) * float64(n)
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/exchanges, "ns/exchange")
				b.ReportMetric(float64(after.Mallocs-before.Mallocs)/exchanges, "allocs/exchange")
			})
		}
	}
}

// BenchmarkScenarioSweep measures a paper-scale declarative sweep
// (N = 10⁵, 10 cycles, 2 repeats) through the scenario engine,
// sequential versus sharded execution — the speedup `cmd/figures
// -shards -1` buys on multi-core machines. The sequential variant uses
// the engine's worker pool across repeats; the sharded variant gives
// the cores to the kernel's tournament executor instead.
func BenchmarkScenarioSweep(b *testing.B) {
	const n, cycles, repeats = 100_000, 10, 2
	for _, tc := range []struct {
		name    string
		shards  int
		workers int
	}{
		{"sequential", 0, 0},
		{"sharded", scenario.AutoShards, 1},
	} {
		b.Run(fmt.Sprintf("executor=%s/n=%d", tc.name, n), func(b *testing.B) {
			spec := scenario.Spec{
				Name:    "bench-sweep",
				Size:    n,
				Cycles:  cycles,
				Shards:  tc.shards,
				Repeats: repeats,
				Seed:    70,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var col scenario.Collector
				if err := (scenario.Runner{Workers: tc.workers}).Run(context.Background(), []scenario.Spec{spec}, &col); err != nil {
					b.Fatal(err)
				}
				if got := len(col.Results()); got != repeats*(cycles+1) {
					b.Fatalf("got %d rows, want %d", got, repeats*(cycles+1))
				}
			}
			exchanges := float64(b.N) * repeats * cycles * n
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/exchanges, "ns/exchange")
		})
	}
}

// BenchmarkSchemaMerge is the node-state hot path: one five-field
// summary merge.
func BenchmarkSchemaMerge(b *testing.B) {
	schema := core.SummarySchema()
	x := schema.InitState(3)
	y := schema.InitState(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		schema.MergeInto(x, y)
	}
}

// BenchmarkMessageCodec measures wire encode+decode of a typical
// five-field protocol message.
func BenchmarkMessageCodec(b *testing.B) {
	msg := transport.Message{
		Kind:   transport.KindPush,
		Epoch:  9,
		Seq:    12345,
		From:   "127.0.0.1:54321",
		Fields: []float64{1, 2, 3, 4, 5},
		Gossip: []string{"127.0.0.1:1111", "127.0.0.1:2222", "127.0.0.1:3333"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := msg.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var out transport.Message
		if err := out.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKRegularGeneration measures overlay construction at the
// paper's parameters (k = 20), the setup cost of every experiment run.
func BenchmarkKRegularGeneration(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(51)
			for i := 0; i < b.N; i++ {
				if _, err := topology.NewKRegular(n, 20, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
