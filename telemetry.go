package repro

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/transport"
)

// convergedTol is the variance threshold below which Telemetry reports
// the system converged: at 1e-9 every node's approximation agrees with
// the mean to ~5 significant digits for O(1)-scale values.
const convergedTol = 1e-9

// varianceFloor bounds the convergence-factor estimate away from
// floating-point noise: once variance falls below it, successive ratios
// measure rounding, not the protocol, so ρ̂ accumulation stops.
const varianceFloor = 1e-20

// Telemetry is one consolidated runtime health snapshot: the watched
// field's cross-node reduction, the observed per-cycle convergence
// factor ρ̂ (the paper predicts 1/(2√e) ≈ 0.3033 for the constant-wait
// protocol), exchange-completion accounting and scheduler balance.
// Taken with System.Telemetry or streamed with System.WatchTelemetry.
type Telemetry struct {
	// Field names the tracked schema field (the schema's first field).
	Field string
	// Seq is the convergence tracker's snapshot index; -1 when the
	// tracker has not ticked yet (the snapshot was taken synchronously).
	Seq int
	// Time is when the convergence fields were computed.
	Time time.Time
	// Nodes is how many locally hosted node states were folded; Workers
	// is the heap scheduler's shard count (0 for unsharded shapes).
	Nodes, Workers int
	// Mean, Variance, Min and Max reduce the tracked field across nodes.
	Mean, Variance, Min, Max float64
	// Rho is the most recent per-cycle variance reduction factor
	// σ²ᵢ₊₁/σ²ᵢ, normalized to one executed protocol cycle (exchanges
	// initiated per hosted node) so neither ticker drift nor CPU
	// starvation can skew it; RhoGeo is the geometric mean over the
	// RhoCycles protocol cycles observed so far. Both are NaN until
	// two informative snapshots exist, and freeze once variance
	// reaches floating-point noise.
	Rho, RhoGeo float64
	RhoCycles   float64
	// TrueMean is the live mean of the hosted nodes' local attribute
	// values — the target the aggregate should track; TrackingError is
	// |Mean − TrueMean|. NaN on TCP shapes, where remote peers hold part
	// of the truth.
	TrueMean, TrackingError float64
	// AdversaryNodes is how many hosted nodes currently act as Byzantine
	// adversaries (System.SetAdversaries); RobustRejected is the
	// cumulative count of exchange halves the robust trim gate refused.
	AdversaryNodes int
	RobustRejected uint64
	// Corruption is the adversary-induced estimate error: TrackingError
	// while adversaries are active, NaN otherwise (so dashboards can
	// distinguish attack-induced drift from ordinary tracking noise).
	Corruption float64
	// Converged reports Variance ≤ 1e-9.
	Converged bool
	// Stats sums every hosted node's protocol counters; Completion is
	// Replies/Initiated ∈ [0,1] (NaN before the first exchange).
	Stats      NodeStats
	Completion float64
	// Steals counts scheduler rounds run by a non-owner worker;
	// ShardInitiated is each shard's initiated-exchange counter, the
	// per-worker balance view. Both zero/nil for unsharded shapes.
	Steals         uint64
	ShardInitiated []uint64
	// ServeStreams is the service layer's live SSE stream count and
	// ServeDropped its cumulative latest-wins drops summed over
	// subscribers; both zero unless serve.New attached to the system
	// (System.SetServeStats).
	ServeStreams int
	ServeDropped uint64
}

// teleSub is one WatchTelemetry subscriber: a one-slot latest-wins
// channel, like Watch's.
type teleSub struct {
	ch  chan Telemetry
	ctx context.Context
}

// telemetryState is the system's convergence tracker. It starts lazily
// (first Telemetry, WatchTelemetry or ops-server use): one internal
// Watch subscription feeds ticks that fold the variance trajectory into
// ρ̂ and fan out to WatchTelemetry subscribers. Systems that never ask
// for telemetry never pay for it.
type telemetryState struct {
	once sync.Once

	mu       sync.Mutex
	cur      Telemetry // last tick (mu)
	have     bool      // cur holds a real tick
	prevVar  float64
	prevInit uint64  // Stats.Initiated at the previous tick
	logSum   float64 // Σ ln ρ per protocol cycle, for the geometric mean
	cycles   float64 // informative protocol cycles folded into logSum
	subs     []*teleSub

	// Scrape-time mirrors of the convergence gauges, stored as float64
	// bits (NaN before the first informative tick).
	rhoBits, rhoGeoBits, varBits, trackBits atomic.Uint64
}

// storeNaN initializes the gauge mirrors to NaN so scrapes before the
// tracker's first tick report "unknown", not a fake zero.
func (t *telemetryState) storeNaN() {
	nan := math.Float64bits(math.NaN())
	t.rhoBits.Store(nan)
	t.rhoGeoBits.Store(nan)
	t.varBits.Store(nan)
	t.trackBits.Store(nan)
}

// trackedField returns the schema field the convergence tracker watches.
func (s *System) trackedField() string { return s.schema.FieldNames()[0] }

// heapRuntime returns the sharded runtime behind the system, or nil for
// unsharded shapes (goroutine mode, the single TCP node).
func (s *System) heapRuntime() *engine.Runtime {
	switch {
	case s.rt != nil:
		return s.rt
	case s.cluster != nil:
		return s.cluster.Runtime()
	}
	return nil
}

// trueMean folds the hosted nodes' local attribute values — the truth
// the aggregate should track. ok is false on TCP shapes, where remote
// peers hold part of the population and the local fold is not the
// network mean.
func (s *System) trueMean() (mean float64, ok bool) {
	if s.cluster == nil {
		return math.NaN(), false
	}
	var n int
	var sum float64
	s.cluster.ReduceValues(func(v float64) { n++; sum += v })
	if n == 0 {
		return math.NaN(), false
	}
	return sum / float64(n), true
}

// ensureTelemetry starts the convergence tracker once. The tracker is
// an ordinary Watch subscriber: it shares the field's fan-out hub with
// user watchers, ends when the system closes, and its channel closing
// closes every WatchTelemetry subscriber.
func (s *System) ensureTelemetry() {
	s.tele.once.Do(func() {
		ch, err := s.Watch(context.Background(), s.trackedField())
		if err != nil {
			// The schema always has a first field; reaching here means the
			// system is closing. Leave the tracker unstarted.
			return
		}
		go s.trackConvergence(ch)
	})
}

// trackConvergence is the tracker goroutine: fold each per-cycle
// estimate into the convergence state, publish the gauge mirrors, fan
// out to WatchTelemetry subscribers.
func (s *System) trackConvergence(ch <-chan Estimate) {
	t := &s.tele
	for est := range ch {
		tm, ok := s.trueMean()
		tel := s.buildTelemetry(est.Seq, est.Time, est.Nodes,
			est.Mean, est.Variance, est.Min, est.Max)

		t.mu.Lock()
		// ρ̂ fold: the ratio of successive informative variances,
		// normalized by the protocol cycles actually executed between
		// ticks — exchanges initiated per hosted node, the paper's own
		// cycle unit. Not the tick count (a ticker falling behind under
		// load spans several cycles per tick) and not wall-clock Δt
		// units (a CPU-starved runtime executes fewer cycles per wall
		// second; both would misattribute the variance drop). Per-tick
		// skew between the reduce snapshot and this counter read
		// telescopes away in the RhoGeo aggregate.
		dc := float64(tel.Stats.Initiated-t.prevInit) / float64(len(s.nodes))
		if t.have && dc > 0 &&
			t.prevVar > varianceFloor && est.Variance > varianceFloor {
			logRho := math.Log(est.Variance/t.prevVar) / dc
			tel.Rho = math.Exp(logRho)
			t.logSum += logRho * dc
			t.cycles += dc
		} else if t.have {
			tel.Rho = t.cur.Rho // freeze at the noise floor
		} else {
			tel.Rho = math.NaN()
		}
		if t.cycles > 0 {
			tel.RhoGeo = math.Exp(t.logSum / t.cycles)
		} else {
			tel.RhoGeo = math.NaN()
		}
		tel.RhoCycles = t.cycles
		if ok {
			tel.TrueMean = tm
			tel.TrackingError = math.Abs(est.Mean - tm)
			if tel.AdversaryNodes > 0 {
				tel.Corruption = tel.TrackingError
			}
		} else {
			tel.TrueMean = math.NaN()
			tel.TrackingError = math.NaN()
		}
		t.prevVar = est.Variance
		t.prevInit = tel.Stats.Initiated
		t.cur = tel
		t.have = true
		t.rhoBits.Store(math.Float64bits(tel.Rho))
		t.rhoGeoBits.Store(math.Float64bits(tel.RhoGeo))
		t.varBits.Store(math.Float64bits(tel.Variance))
		t.trackBits.Store(math.Float64bits(tel.TrackingError))

		// Fan out latest-wins, pruning cancelled subscribers.
		live := t.subs[:0]
		for _, sub := range t.subs {
			if sub.ctx.Err() != nil {
				close(sub.ch)
				continue
			}
			live = append(live, sub)
			select {
			case sub.ch <- tel:
			default:
				select {
				case <-sub.ch:
				default:
				}
				select {
				case sub.ch <- tel:
				default:
				}
			}
		}
		for i := len(live); i < len(t.subs); i++ {
			t.subs[i] = nil
		}
		t.subs = live
		t.mu.Unlock()
	}
	// System closed: release the subscribers.
	t.mu.Lock()
	for _, sub := range t.subs {
		close(sub.ch)
	}
	t.subs = nil
	t.mu.Unlock()
}

// buildTelemetry assembles the cheap, always-fresh portion of a
// snapshot around the given convergence fields.
func (s *System) buildTelemetry(seq int, at time.Time, nodes int,
	mean, variance, min, max float64) Telemetry {
	st := s.Stats()
	tel := Telemetry{
		Field:    s.trackedField(),
		Seq:      seq,
		Time:     at,
		Nodes:    nodes,
		Workers:  s.Workers(),
		Mean:     mean,
		Variance: variance,
		Min:      min,
		Max:      max,
		Stats:    st,
	}
	tel.Converged = variance <= convergedTol
	tel.AdversaryNodes = s.AdversaryCount()
	tel.RobustRejected = s.RobustRejected()
	tel.Corruption = math.NaN()
	if st.Initiated > 0 {
		tel.Completion = float64(st.Replies) / float64(st.Initiated)
	} else {
		tel.Completion = math.NaN()
	}
	if rt := s.heapRuntime(); rt != nil {
		tel.Steals = rt.Steals()
		tel.ShardInitiated = rt.ShardInitiated()
	}
	if fn := s.serveStats.Load(); fn != nil {
		tel.ServeStreams, tel.ServeDropped = (*fn)()
	}
	return tel
}

// Telemetry returns a consolidated health snapshot. Counter and balance
// fields are read fresh; convergence fields (ρ̂, tracking error) come
// from the tracker's most recent per-cycle tick. The first call starts
// the tracker, so early calls — before its first tick — fall back to a
// synchronous reduction with Seq −1 and NaN convergence factors.
func (s *System) Telemetry() Telemetry {
	s.ensureTelemetry()
	s.tele.mu.Lock()
	if s.tele.have {
		cur := s.tele.cur
		s.tele.mu.Unlock()
		// Refresh the cheap counters around the tracked convergence state.
		tel := s.buildTelemetry(cur.Seq, cur.Time, cur.Nodes,
			cur.Mean, cur.Variance, cur.Min, cur.Max)
		tel.Rho = cur.Rho
		tel.RhoGeo = cur.RhoGeo
		tel.RhoCycles = cur.RhoCycles
		tel.TrueMean = cur.TrueMean
		tel.TrackingError = cur.TrackingError
		if tel.AdversaryNodes > 0 {
			tel.Corruption = tel.TrackingError
		}
		return tel
	}
	s.tele.mu.Unlock()

	// No tick yet: reduce synchronously for a baseline snapshot.
	est, err := s.snapshot(context.Background(), s.trackedField(), 0)
	if err != nil {
		est = Estimate{Mean: math.NaN(), Variance: math.NaN(),
			Min: math.NaN(), Max: math.NaN(), Time: time.Now()}
	}
	tel := s.buildTelemetry(-1, est.Time, est.Nodes,
		est.Mean, est.Variance, est.Min, est.Max)
	tel.Rho = math.NaN()
	tel.RhoGeo = math.NaN()
	tel.TrueMean = math.NaN()
	tel.TrackingError = math.NaN()
	if tm, ok := s.trueMean(); ok {
		tel.TrueMean = tm
		tel.TrackingError = math.Abs(est.Mean - tm)
		if tel.AdversaryNodes > 0 {
			tel.Corruption = tel.TrackingError
		}
	}
	return tel
}

// WatchTelemetry streams one Telemetry per cycle (the convergence
// tracker's tick rate) until ctx is cancelled or the system closes,
// then closes the channel. Delivery is latest-wins, like Watch.
func (s *System) WatchTelemetry(ctx context.Context) <-chan Telemetry {
	s.ensureTelemetry()
	sub := &teleSub{ch: make(chan Telemetry, 1), ctx: ctx}
	s.tele.mu.Lock()
	s.tele.subs = append(s.tele.subs, sub)
	s.tele.mu.Unlock()
	return sub.ch
}

// Trace returns up to max recent trace-sampled exchanges across all
// shards, oldest first (max ≤ 0 returns everything retained). Nil
// unless WithTraceSampling enabled sampling on a heap-runtime system.
func (s *System) Trace(max int) []TraceRecord {
	rt := s.heapRuntime()
	if rt == nil {
		return nil
	}
	return rt.Trace(max)
}

// registerSystemMetrics adds the system-level series: uptime, watch
// reduction count, the convergence gauges, and — for shapes whose
// engine did not self-register (goroutine mode, the single TCP node) —
// aggregate protocol counters folded over Stats at scrape time.
func (s *System) registerSystemMetrics(tcpEP *transport.TCPEndpoint) {
	reg := s.metrics
	s.tele.storeNaN()
	reg.GaugeFunc("repro_system_uptime_seconds", "Seconds since Open.",
		func() float64 { return time.Since(s.openedAt).Seconds() })
	reg.CounterFunc("repro_watch_reduces_total",
		"Cross-node field reductions performed (Watch hubs, Query, Reduce).",
		s.reduceCount.Load)
	for _, g := range []struct {
		name, help string
		bits       *atomic.Uint64
	}{
		{"repro_convergence_rho", "Observed per-cycle variance reduction factor ρ̂ (paper: 1/(2√e) ≈ 0.3033; NaN until the tracker ticks twice).", &s.tele.rhoBits},
		{"repro_convergence_rho_geo", "Geometric mean of ρ̂ over all informative cycles.", &s.tele.rhoGeoBits},
		{"repro_convergence_variance", "Cross-node variance of the tracked field at the last tick.", &s.tele.varBits},
		{"repro_convergence_tracking_error", "|estimate − true mean| at the last tick (NaN on TCP shapes).", &s.tele.trackBits},
	} {
		bits := g.bits
		reg.GaugeFunc(g.name, g.help, func() float64 {
			return math.Float64frombits(bits.Load())
		})
	}
	if s.heapRuntime() != nil {
		return // the runtime registered its own engine/transport series
	}

	// Fallback shapes: aggregate (unlabeled) engine counters folded over
	// the per-node atomics at scrape time.
	reg.GaugeFunc("repro_engine_nodes", "Hosted nodes.",
		func() float64 { return float64(len(s.nodes)) })
	reg.GaugeFunc("repro_adversary_nodes", "Hosted nodes currently acting as Byzantine adversaries.",
		func() float64 { return float64(s.AdversaryCount()) })
	reg.CounterFunc("repro_robust_rejected_total",
		"Exchange halves rejected by the robust trim gate.", s.RobustRejected)
	for _, c := range []struct {
		name, help string
		v          func(NodeStats) uint64
	}{
		{"repro_engine_exchanges_initiated_total", "Exchanges started by hosted nodes.", func(st NodeStats) uint64 { return st.Initiated }},
		{"repro_engine_exchanges_completed_total", "Exchanges whose pull reply was merged.", func(st NodeStats) uint64 { return st.Replies }},
		{"repro_engine_exchange_deadline_missed_total", "Exchanges reaped by the reply deadline.", func(st NodeStats) uint64 { return st.Timeouts }},
		{"repro_engine_late_replies_absorbed_total", "Post-deadline replies still merged to conserve mass.", func(st NodeStats) uint64 { return st.LateReplies }},
		{"repro_engine_exchanges_nacked_total", "Exchanges declined by a busy peer.", func(st NodeStats) uint64 { return st.PeerBusy }},
		{"repro_engine_pushes_served_total", "Inbound pushes merged and replied to.", func(st NodeStats) uint64 { return st.Served }},
		{"repro_engine_pushes_declined_total", "Inbound pushes nacked while busy.", func(st NodeStats) uint64 { return st.BusyDropped }},
		{"repro_engine_messages_stale_dropped_total", "Messages dropped for an out-of-sync epoch.", func(st NodeStats) uint64 { return st.StaleDropped }},
		{"repro_engine_epoch_restarts_total", "Node state reinitializations at epoch boundaries.", func(st NodeStats) uint64 { return st.EpochSwitches }},
		{"repro_engine_send_errors_total", "Sends that failed synchronously or via batch feedback.", func(st NodeStats) uint64 { return st.SendErrors }},
	} {
		field := c.v
		reg.CounterFunc(c.name, c.help, func() uint64 { return field(s.Stats()) })
	}
	if s.cluster != nil {
		if fab := s.cluster.Fabric(); fab != nil {
			reg.CounterFunc("repro_transport_fabric_loss_dropped_total",
				"Messages dropped by the fabric loss model or a partition filter.", fab.LossDropped)
			reg.CounterFunc("repro_transport_fabric_inbox_dropped_total",
				"Messages dropped on a full in-memory inbox.", fab.InboxDropped)
		}
	}
	if g := s.gsampler; g != nil {
		reg.GaugeFunc("repro_membership_view_entries", "Live entries in the gossip membership view.",
			func() float64 { return float64(g.ViewSize()) })
		reg.CounterFunc("repro_membership_observed_total", "Membership observations folded from inbound traffic.", g.ObservedTotal)
		reg.CounterFunc("repro_membership_forgotten_total", "Peers dropped from the view after failed exchanges.", g.ForgottenTotal)
		reg.CounterFunc("repro_membership_digest_dropped_total", "Digest entries refused by the per-sender insertion budget (eclipse hardening).", g.InsertsDroppedTotal)
	}
	if tcpEP != nil {
		reg.CounterFunc("repro_transport_tcp_dials_total", "Outbound TCP connections established.", tcpEP.Dials)
		reg.CounterFunc("repro_transport_tcp_bytes_sent_total", "Bytes written to TCP peers.", tcpEP.BytesSent)
		reg.CounterFunc("repro_transport_tcp_bytes_received_total", "Bytes read from TCP peers.", tcpEP.BytesReceived)
		reg.CounterFunc("repro_transport_tcp_inbox_dropped_total", "Inbound frames dropped on a full inbox.", tcpEP.InboxDropped)
	}
}
