#!/usr/bin/env sh
# Runs the repo's perf-gate benchmarks and emits a machine-readable
# record of the performance trajectory:
#
#	./scripts/bench.sh                     # full sweep (minutes, includes n=10⁶)
#	BENCH_QUICK=1 ./scripts/bench.sh       # CI smoke subset (n=10⁴ variants)
#	BENCH_MULTICORE=1 ./scripts/bench.sh   # multi-core scaling gate only
#	BENCH_OUT=custom.json ./scripts/bench.sh
#
# The output (default BENCH_PR10.json) is a JSON array with one object
# per benchmark result: name, n (parsed from the n=… sub-benchmark
# label, null when absent) and every reported metric — ns/op,
# allocs/op, exchanges/s, exchanges/s/worker, ns/exchange,
# allocs/exchange, completion, events/s, staleness percentiles, … CI
# runs the quick subset plus the
# multi-core scaling gate on every PR and uploads the files as
# artifacts, so the exchange-rate, allocation and parallel-scaling
# trajectory of the hot paths is recorded per commit instead of living
# only in PR descriptions.
#
# Covered gates:
#   BenchmarkKernelMillionNode        — sharded SoA simulation kernel
#   BenchmarkRuntimeExchange          — live runtime saturation throughput
#   BenchmarkRuntimeSustained         — sustained harness (asserts ≈0
#                                       allocs/exchange and completion floors)
#   BenchmarkRuntimeSustainedRobust   — sustained harness under 5% extreme-value
#                                       adversaries with clamp + trimmed merge
#                                       installed (asserts the same ≈0
#                                       allocs/exchange with the robust gate hot)
#   BenchmarkRuntimeSustainedScaling  — parallel shard workers 1→GOMAXPROCS
#                                       (asserts near-linear speedup when the
#                                       host has the cores; multi-core mode)
#   BenchmarkRuntimeMetricsOverhead   — telemetry-cost gate: registry + trace
#                                       sampling + live 20 Hz scraper vs bare
#                                       (asserts the paired throughput ratio)
#   BenchmarkSystemReduce             — streaming observation fold
#   BenchmarkServeFanOut              — SSE watcher fan-out through the
#                                       serve front end (events/s and
#                                       staleness percentiles)
set -eu
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR10.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# BENCH_MULTICORE=1 runs only the multi-core scaling gate — the CI
# bench-multicore step's shape, kept separate from the single-core
# smoke so the historical single-worker trajectory stays comparable.
if [ "${BENCH_MULTICORE:-0}" = "1" ]; then
	KERNEL=''
	EXCHANGE=''
	SUSTAINED=''
	ROBUST=''
	SCALING='BenchmarkRuntimeSustainedScaling'
	OVERHEAD=''
	REDUCE_TIME=''
	SERVE=''
elif [ "${BENCH_QUICK:-0}" = "1" ]; then
	KERNEL='BenchmarkKernelMillionNode/n=10000$'
	EXCHANGE='BenchmarkRuntimeExchange/mode=heap/n=10000$'
	SUSTAINED='BenchmarkRuntimeSustained/n=10000$'
	ROBUST='BenchmarkRuntimeSustainedRobust$'
	SCALING=''
	OVERHEAD='BenchmarkRuntimeMetricsOverhead'
	REDUCE_TIME='10x'
	SERVE='BenchmarkServeFanOut/watchers=100$'
else
	KERNEL='BenchmarkKernelMillionNode'
	EXCHANGE='BenchmarkRuntimeExchange'
	SUSTAINED='BenchmarkRuntimeSustained$'
	ROBUST='BenchmarkRuntimeSustainedRobust$'
	SCALING='BenchmarkRuntimeSustainedScaling'
	OVERHEAD='BenchmarkRuntimeMetricsOverhead'
	REDUCE_TIME='100x'
	SERVE='BenchmarkServeFanOut'
fi

# Run every gate even if an earlier one fails its assertions: the JSON
# below is written from whatever completed, so a failing run still
# leaves its partial perf record behind for the CI artifact — that is
# exactly the run someone will want numbers for. The script's exit
# status still reports the first failure. (No pipeline here: a
# `{...} | tee` group would run in a subshell and lose $status.)
status=0
bench() {
	if ! "$@" >>"$TMP" 2>&1; then
		status=1
	fi
}
if [ -n "$KERNEL" ]; then
	bench go test -run '^$' -bench "$KERNEL" -benchtime 1x -benchmem .
fi
if [ -n "$EXCHANGE" ]; then
	bench go test -run '^$' -bench "$EXCHANGE" -benchtime 1x -benchmem ./internal/engine
fi
if [ -n "$SUSTAINED" ]; then
	bench go test -run '^$' -bench "$SUSTAINED" -benchtime 1x -benchmem -timeout 30m ./internal/engine
fi
if [ -n "$ROBUST" ]; then
	bench go test -run '^$' -bench "$ROBUST" -benchtime 1x -benchmem -timeout 30m ./internal/engine
fi
if [ -n "$SCALING" ]; then
	bench go test -run '^$' -bench "$SCALING" -benchtime 1x -benchmem -timeout 60m ./internal/engine
fi
if [ -n "$OVERHEAD" ]; then
	bench go test -run '^$' -bench "$OVERHEAD" -benchtime 1x -benchmem -timeout 30m ./internal/engine
fi
if [ -n "$REDUCE_TIME" ]; then
	bench go test -run '^$' -bench 'BenchmarkSystemReduce$' -benchtime "$REDUCE_TIME" -benchmem .
fi
if [ -n "$SERVE" ]; then
	bench go test -run '^$' -bench "$SERVE" -benchtime 1x -timeout 30m ./serve
fi
cat "$TMP"

awk '
function key(unit) {
	if (unit == "ns/op") return "ns_per_op"
	if (unit == "B/op") return "bytes_per_op"
	if (unit == "allocs/op") return "allocs_per_op"
	if (unit == "exchanges/s") return "exchanges_per_s"
	if (unit == "exchanges/s/worker") return "exchanges_per_s_per_worker"
	if (unit == "ns/exchange") return "ns_per_exchange"
	if (unit == "allocs/exchange") return "allocs_per_exchange"
	if (unit == "replies/initiated") return "replies_per_initiated"
	if (unit == "completion") return "completion"
	if (unit == "steps/cycle") return "steps_per_cycle"
	if (unit == "base_exchanges/s") return "base_exchanges_per_s"
	if (unit == "telemetry_exchanges/s") return "telemetry_exchanges_per_s"
	if (unit == "telemetry_ratio") return "telemetry_ratio"
	if (unit == "events/s") return "events_per_s"
	if (unit == "staleness_p50_ms") return "staleness_p50_ms"
	if (unit == "staleness_p99_ms") return "staleness_p99_ms"
	return ""
}
BEGIN { print "["; first = 1 }
/^Benchmark/ && NF >= 4 {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	n = "null"
	if (match(name, /n=[0-9]+/)) n = substr(name, RSTART + 2, RLENGTH - 2)
	if (!first) printf ",\n"
	first = 0
	printf "  {\"name\":\"%s\",\"n\":%s,\"iterations\":%s", name, n, $2
	for (i = 3; i + 1 <= NF; i += 2) {
		k = key($(i + 1))
		if (k != "") printf ",\"%s\":%s", k, $i
	}
	printf "}"
}
END { print "\n]" }
' "$TMP" >"$OUT"
echo "wrote $OUT"
exit "$status"
