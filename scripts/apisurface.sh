#!/usr/bin/env sh
# Regenerates api/repro.txt — the checked-in golden of the exported API
# surface of the public packages (repro, repro/scenario, repro/serve).
#
# CI regenerates the file and fails on any diff, so every PR that
# changes the public API shows the change explicitly in api/repro.txt.
# After an intentional API change, run:
#
#	./scripts/apisurface.sh && git add api/repro.txt
#
# The surface is derived from `go doc -short`: the package index plus
# one expanded block per exported type (struct fields, methods,
# associated constructors), with comments stripped so prose edits do
# not churn the golden.
set -eu
cd "$(dirname "$0")/.."

surface() {
	pkg="$1"
	echo "# package $pkg"
	# Package index: exported consts, funcs, types (one line each).
	go doc -short "$pkg" | grep -v '^    '
	# One block per exported type: full declaration plus method set.
	go doc -short "$pkg" | sed -n 's/^type \([A-Za-z0-9_]*\).*/\1/p' | sort -u |
		while IFS= read -r t; do
			echo ""
			echo "## type $pkg.$t"
			go doc -short "$pkg.$t" |
				sed -e 's|[[:space:]]*//.*$||' | # strip comments
				grep -v '^    ' |                # strip prose
				grep -v '^[[:space:]]*$'         # strip blanks
		done
}

mkdir -p api
{
	surface repro
	echo ""
	surface repro/scenario
	echo ""
	surface repro/serve
} >api/repro.txt
echo "wrote api/repro.txt"
