// Package serve is the aggregation-service front end: an HTTP API over
// a live repro.System that streams Watch estimates to external clients
// (Server-Sent Events), answers one-shot reductions, feeds values into
// the running aggregate, and injects faults — the "millions of users"
// half of the system, layered on the same primitives the in-process API
// uses.
//
// Endpoints (all under /v1/):
//
//	GET  /v1/stream/{field}  SSE stream: one JSON estimate per cycle,
//	                         latest-wins per subscriber (a slow client
//	                         skips snapshots, counted in "dropped",
//	                         instead of slowing anyone else down).
//	GET  /v1/query/{field}   one-shot reduction: count/mean/sum/min/
//	                         max/variance of the field right now.
//	                         ?mom=N replaces the mean with a
//	                         median-of-means estimate over N buckets
//	                         (robust to Byzantine outliers).
//	GET  /v1/telemetry       the System.Telemetry() snapshot as JSON.
//	POST /v1/values          batched value injection via System.SetValue
//	                         ({"field":"avg","values":[{"node":0,
//	                         "value":3.5},…]}).
//	POST /v1/scenario        live fault and adversary injection:
//	                         {"loss":0.05,"fail":[1,2],"revive":[3],
//	                         "adversary":{"behavior":"extreme-value",
//	                         "fraction":0.05,"magnitude":1000},
//	                         "robust":{"clamp":true,"clamp_min":-100,
//	                         "clamp_max":100,"trim":true,"trim_k":8}}
//	                         — any subset.
//
// All subscribers of one field share the system's per-field watch hub:
// however many streams are open, the field is reduced once per cycle,
// and per-stream server state is O(1) (a reused scratch buffer and a
// drop cursor), which is what lets one process hold 10⁵+ concurrent
// watchers (see cmd/aggload).
//
// Attach mounts the API on the system's WithOps listener next to
// /metrics; New builds a standalone http.Handler for custom listeners.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro"
	"repro/internal/metrics"
)

// Server is the service front end over one repro.System. It implements
// http.Handler; build with New (standalone) or Attach (mounted on the
// system's ops listener).
type Server struct {
	sys *repro.System
	mux *http.ServeMux

	// activeStreams/droppedTotal back both the repro_serve_* gauges and
	// the Telemetry stamping hook (System.SetServeStats).
	activeStreams atomic.Int64
	droppedTotal  atomic.Uint64

	streamsOpened *metrics.Counter
	eventsSent    *metrics.Counter
	valuesSet     *metrics.Counter
	queries       *metrics.Counter
	scenarioOps   *metrics.Counter
}

// New builds the front end for sys, registers its repro_serve_* series
// in the system's metric registry, and installs the Telemetry stamping
// hook. The returned Server is a ready http.Handler; use Attach instead
// to also mount it on the system's WithOps listener.
func New(sys *repro.System) *Server {
	reg := sys.Metrics()
	s := &Server{
		sys: sys,
		mux: http.NewServeMux(),
		streamsOpened: reg.Counter("repro_serve_streams_opened_total",
			"SSE streams accepted by the serve layer."),
		eventsSent: reg.Counter("repro_serve_events_sent_total",
			"SSE estimate events written to subscribers."),
		valuesSet: reg.Counter("repro_serve_values_injected_total",
			"Node values injected through POST /v1/values."),
		queries: reg.Counter("repro_serve_queries_total",
			"One-shot reductions served by GET /v1/query."),
		scenarioOps: reg.Counter("repro_serve_scenario_ops_total",
			"Fault-injection operations applied through POST /v1/scenario."),
	}
	reg.GaugeFunc("repro_serve_active_streams",
		"SSE streams currently open.",
		func() float64 { return float64(s.activeStreams.Load()) })
	reg.CounterFunc("repro_serve_dropped_total",
		"Snapshots lost to latest-wins delivery across all SSE streams.",
		s.droppedTotal.Load)
	sys.SetServeStats(func() (int, uint64) {
		return int(s.activeStreams.Load()), s.droppedTotal.Load()
	})
	s.mux.HandleFunc("GET /v1/stream/{field}", s.handleStream)
	s.mux.HandleFunc("GET /v1/query/{field}", s.handleQuery)
	s.mux.HandleFunc("GET /v1/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("POST /v1/values", s.handleValues)
	s.mux.HandleFunc("POST /v1/scenario", s.handleScenario)
	return s
}

// Attach builds the front end and mounts it under /v1/ on the system's
// WithOps listener, beside /metrics and /healthz. Errors when the
// system was opened without WithOps — use New and your own listener in
// that case.
func Attach(sys *repro.System) (*Server, error) {
	s := New(sys)
	if err := sys.Handle("/v1/", s); err != nil {
		return nil, err
	}
	return s, nil
}

// ServeHTTP dispatches to the /v1/ routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleStream is GET /v1/stream/{field}: subscribe to the field's
// watch hub and relay each estimate as one SSE "data:" event until the
// client disconnects or the system closes. Per-stream state is O(1):
// one reused scratch buffer and the last seen drop count. Backpressure
// is latest-wins end to end — the hub replaces the undelivered snapshot
// in the subscriber's one-slot channel, so a stalled client costs one
// slot, never a goroutine pile-up, and its skips surface in the
// "dropped" field of the events it does receive.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	field := r.PathValue("field")
	ch, err := s.sys.Watch(r.Context(), field)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	s.streamsOpened.Inc()
	s.activeStreams.Add(1)
	defer s.activeStreams.Add(-1)

	buf := make([]byte, 0, 256)
	lastDropped := 0
	for est := range ch {
		buf = append(buf[:0], "data: "...)
		buf = appendEstimateJSON(buf, est)
		buf = append(buf, '\n', '\n')
		if _, err := w.Write(buf); err != nil {
			return // client gone; ctx cancellation unsubscribes the hub
		}
		fl.Flush()
		s.eventsSent.Inc()
		if est.Dropped > lastDropped {
			s.droppedTotal.Add(uint64(est.Dropped - lastDropped))
			lastDropped = est.Dropped
		}
	}
	// Channel closed: the system is closing (or our context was
	// cancelled and the hub pruned us). Mark the clean end of stream so
	// clients can tell shutdown from a broken connection.
	_, _ = w.Write([]byte("event: end\ndata: {}\n\n"))
	fl.Flush()
}

// handleQuery is GET /v1/query/{field}: one shared-nothing reduction,
// rendered as count/mean/sum/min/max/variance. ?mom=N swaps the mean
// for a median-of-means estimate over N buckets — the robust read path
// for clients that suspect Byzantine reporters.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var est repro.Estimate
	var err error
	if momStr := r.URL.Query().Get("mom"); momStr != "" {
		buckets, perr := strconv.Atoi(momStr)
		if perr != nil || buckets < 1 {
			http.Error(w, "mom must be a positive integer bucket count", http.StatusBadRequest)
			return
		}
		est, err = s.sys.QueryRobust(r.Context(), r.PathValue("field"), buckets)
	} else {
		est, err = s.sys.Query(r.Context(), r.PathValue("field"))
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.queries.Inc()
	buf := appendQueryJSON(make([]byte, 0, 256), est)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf)
}

// handleTelemetry is GET /v1/telemetry: the consolidated health
// snapshot (convergence factor, tracking error, protocol counters,
// serve-layer stream stats) as one flat JSON object.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	buf := s.sys.Telemetry().AppendJSON(make([]byte, 0, 1024))
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf)
}

// valuesRequest is the POST /v1/values body: a batch of node/value
// pairs injected into one field.
type valuesRequest struct {
	Field  string `json:"field"`
	Values []struct {
		Node  int     `json:"node"`
		Value float64 `json:"value"`
	} `json:"values"`
}

// handleValues is POST /v1/values: batched live value injection through
// System.SetValue. The whole batch is validated before any value is
// applied, so a 4xx means no partial writes.
func (s *Server) handleValues(w http.ResponseWriter, r *http.Request) {
	var req valuesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := s.sys.Schema().Index(req.Field); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	size := s.sys.Size()
	for _, v := range req.Values {
		if v.Node < 0 || v.Node >= size {
			http.Error(w, fmt.Sprintf("node %d out of range [0,%d)", v.Node, size), http.StatusBadRequest)
			return
		}
	}
	for _, v := range req.Values {
		if err := s.sys.SetValue(v.Node, req.Field, v.Value); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.valuesSet.Add(uint64(len(req.Values)))
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"applied\":%d}\n", len(req.Values))
}

// scenarioRequest is the POST /v1/scenario body; every axis is
// optional and any subset may be combined in one call.
type scenarioRequest struct {
	// Loss, when present, sets the in-memory fabric's per-message loss
	// probability (in-memory shapes only).
	Loss *float64 `json:"loss"`
	// Fail and Revive name node indices to crash / bring back.
	Fail   []int `json:"fail"`
	Revive []int `json:"revive"`
	// Adversary, when present, reconfigures a fraction of the hosted
	// nodes as Byzantine adversaries (fraction 0 restores honesty).
	Adversary *struct {
		Behavior  string  `json:"behavior"`
		Fraction  float64 `json:"fraction"`
		Magnitude float64 `json:"magnitude"`
		Target    float64 `json:"target"`
	} `json:"adversary"`
	// Robust, when present, installs (or with a zero value removes) the
	// robust-merge countermeasures on every hosted node.
	Robust *struct {
		Clamp    bool    `json:"clamp"`
		ClampMin float64 `json:"clamp_min"`
		ClampMax float64 `json:"clamp_max"`
		Trim     bool    `json:"trim"`
		TrimK    float64 `json:"trim_k"`
	} `json:"robust"`
}

// handleScenario is POST /v1/scenario: live fault injection against the
// running system — message loss, node crashes, node revivals.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	var req scenarioRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	size := s.sys.Size()
	for _, i := range append(append([]int(nil), req.Fail...), req.Revive...) {
		if i < 0 || i >= size {
			http.Error(w, fmt.Sprintf("node %d out of range [0,%d)", i, size), http.StatusBadRequest)
			return
		}
	}
	if req.Loss != nil {
		if err := s.sys.SetLoss(*req.Loss); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.scenarioOps.Inc()
	}
	for _, i := range req.Fail {
		if err := s.sys.FailNode(i); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.scenarioOps.Inc()
	}
	for _, i := range req.Revive {
		if err := s.sys.ReviveNode(i); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.scenarioOps.Inc()
	}
	// Adversaries before robust countermeasures: the trim gate seeds its
	// acceptance band from the honest population, which is only known
	// once the adversaries are marked.
	if a := req.Adversary; a != nil {
		if err := s.sys.SetAdversaries(a.Behavior, a.Fraction, a.Magnitude, a.Target); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.scenarioOps.Inc()
	}
	if rb := req.Robust; rb != nil {
		cfg := repro.RobustConfig{
			Clamp: rb.Clamp, ClampMin: rb.ClampMin, ClampMax: rb.ClampMax,
			Trim: rb.Trim, TrimK: rb.TrimK,
		}
		if err := s.sys.SetRobust(cfg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.scenarioOps.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"failed\":%d,\"revived\":%d,\"failed_now\":%d,\"adversaries_now\":%d}\n",
		len(req.Fail), len(req.Revive), s.sys.FailedNodes(), s.sys.AdversaryCount())
}

// appendEstimateJSON renders one Estimate as a flat JSON object,
// appended to buf. Hand-built (like the ops handlers) so the per-event
// hot path allocates nothing beyond the caller's reused buffer, and so
// NaN — legitimate before the first fold — renders as null.
func appendEstimateJSON(buf []byte, est repro.Estimate) []byte {
	buf = append(buf, `{"field":`...)
	buf = strconv.AppendQuote(buf, est.Field)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendInt(buf, int64(est.Seq), 10)
	buf = append(buf, `,"time_unix_ms":`...)
	buf = strconv.AppendInt(buf, est.Time.UnixMilli(), 10)
	buf = append(buf, `,"nodes":`...)
	buf = strconv.AppendInt(buf, int64(est.Nodes), 10)
	for _, f := range []struct {
		key string
		v   float64
	}{
		{"mean", est.Mean}, {"variance", est.Variance},
		{"min", est.Min}, {"max", est.Max},
	} {
		buf = append(buf, ',', '"')
		buf = append(buf, f.key...)
		buf = append(buf, '"', ':')
		buf = appendJSONFloat(buf, f.v)
	}
	buf = append(buf, `,"dropped":`...)
	buf = strconv.AppendInt(buf, int64(est.Dropped), 10)
	buf = append(buf, '}')
	return buf
}

// appendQueryJSON renders a query response: the estimate plus the
// derived sum and an explicit count alias.
func appendQueryJSON(buf []byte, est repro.Estimate) []byte {
	buf = append(buf, `{"field":`...)
	buf = strconv.AppendQuote(buf, est.Field)
	buf = append(buf, `,"count":`...)
	buf = strconv.AppendInt(buf, int64(est.Nodes), 10)
	for _, f := range []struct {
		key string
		v   float64
	}{
		{"mean", est.Mean}, {"sum", est.Mean * float64(est.Nodes)},
		{"min", est.Min}, {"max", est.Max}, {"variance", est.Variance},
	} {
		buf = append(buf, ',', '"')
		buf = append(buf, f.key...)
		buf = append(buf, '"', ':')
		buf = appendJSONFloat(buf, f.v)
	}
	buf = append(buf, `,"time_unix_ms":`...)
	buf = strconv.AppendInt(buf, est.Time.UnixMilli(), 10)
	buf = append(buf, '}', '\n')
	return buf
}

// appendJSONFloat renders a float as JSON, mapping NaN and ±Inf (not
// representable in JSON) to null.
func appendJSONFloat(buf []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
