package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/serve"
)

// Example mounts the service front end on a running system's ops
// listener, streams one estimate over SSE, injects a new value into
// every node over HTTP, and queries the moved aggregate. Exchanges
// conserve mass exactly, so with every node set to the same value the
// streamed and queried means are exact — the output is deterministic.
func Example() {
	sys, err := repro.Open(
		repro.WithSize(16),
		repro.WithValues(func(int) float64 { return 7 }),
		repro.WithCycleLength(2*time.Millisecond),
		repro.WithOps("127.0.0.1:0"),
		repro.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	if _, err := serve.Attach(sys); err != nil {
		panic(err)
	}
	base := "http://" + sys.OpsAddr()

	// Stream one estimate.
	resp, err := http.Get(base + "/v1/stream/avg")
	if err != nil {
		panic(err)
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			panic(err)
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Field string  `json:"field"`
			Nodes int     `json:"nodes"`
			Mean  float64 `json:"mean"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			panic(err)
		}
		fmt.Printf("stream %s: %d nodes, mean %g\n", ev.Field, ev.Nodes, ev.Mean)
		break
	}
	resp.Body.Close()

	// Inject a new value into every node, then query the aggregate.
	var body bytes.Buffer
	body.WriteString(`{"field":"avg","values":[`)
	for i := 0; i < 16; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, `{"node":%d,"value":3}`, i)
	}
	body.WriteString("]}")
	post, err := http.Post(base+"/v1/values", "application/json", &body)
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, post.Body)
	post.Body.Close()

	query, err := http.Get(base + "/v1/query/avg")
	if err != nil {
		panic(err)
	}
	var q struct {
		Count int     `json:"count"`
		Mean  float64 `json:"mean"`
	}
	if err := json.NewDecoder(query.Body).Decode(&q); err != nil {
		panic(err)
	}
	query.Body.Close()
	fmt.Printf("query: %d nodes, mean %g\n", q.Count, q.Mean)

	// Output:
	// stream avg: 16 nodes, mean 7
	// query: 16 nodes, mean 3
}
