package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/serve"
)

// openServed brings up a small system with the front end mounted on its
// ops listener and returns the system plus the http://host:port base.
func openServed(t *testing.T, opts ...repro.Option) (*repro.System, string) {
	t.Helper()
	sys, err := repro.Open(append([]repro.Option{
		repro.WithSize(32),
		repro.WithValues(func(i int) float64 { return float64(i) }),
		repro.WithCycleLength(5 * time.Millisecond),
		repro.WithOps("127.0.0.1:0"),
		repro.WithSeed(5),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if _, err := serve.Attach(sys); err != nil {
		t.Fatal(err)
	}
	return sys, "http://" + sys.OpsAddr()
}

// streamEvent is the decoded form of one SSE "data:" payload.
type streamEvent struct {
	Field   string   `json:"field"`
	Seq     uint64   `json:"seq"`
	Nodes   int      `json:"nodes"`
	Mean    *float64 `json:"mean"`
	Dropped int      `json:"dropped"`
}

// readEvent reads SSE lines until one data: payload arrives.
func readEvent(t *testing.T, br *bufio.Reader) streamEvent {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev streamEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		return ev
	}
}

// TestStreamDeliversEstimates: the SSE endpoint emits one JSON estimate
// per cycle with advancing sequence numbers, and an open stream is
// visible in telemetry and /metrics.
func TestStreamDeliversEstimates(t *testing.T) {
	sys, base := openServed(t)

	resp, err := http.Get(base + "/v1/stream/avg")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	br := bufio.NewReader(resp.Body)
	first := readEvent(t, br)
	if first.Field != "avg" || first.Nodes != 32 {
		t.Fatalf("first event %+v, want field avg over 32 nodes", first)
	}
	second := readEvent(t, br)
	if second.Seq <= first.Seq {
		t.Fatalf("sequence did not advance: %d then %d", first.Seq, second.Seq)
	}

	// The open stream shows up in Telemetry and in the Prometheus text.
	deadline := time.Now().Add(2 * time.Second)
	for sys.Telemetry().ServeStreams != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("ServeStreams = %d, want 1", sys.Telemetry().ServeStreams)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"repro_serve_active_streams 1",
		"repro_serve_streams_opened_total 1",
		"repro_serve_events_sent_total",
		"repro_serve_dropped_total",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestQueryAndValuesRoundTrip: POST /v1/values moves the aggregate and
// GET /v1/query reports the moved mean (count, sum and mean agree).
func TestQueryAndValuesRoundTrip(t *testing.T) {
	_, base := openServed(t)

	var body bytes.Buffer
	body.WriteString(`{"field":"avg","values":[`)
	for i := 0; i < 32; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, `{"node":%d,"value":10}`, i)
	}
	body.WriteString("]}")
	resp, err := http.Post(base+"/v1/values", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	applied, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(applied), `"applied":32`) {
		t.Fatalf("POST /v1/values: %d %s", resp.StatusCode, applied)
	}

	// Exchanges conserve the injected mass exactly, so the queried mean
	// is 10 as soon as the batch lands — no convergence wait needed.
	qresp, err := http.Get(base + "/v1/query/avg")
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var q struct {
		Field string  `json:"field"`
		Count int     `json:"count"`
		Mean  float64 `json:"mean"`
		Sum   float64 `json:"sum"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Field != "avg" || q.Count != 32 {
		t.Fatalf("query %+v, want avg over 32 nodes", q)
	}
	if math.Abs(q.Mean-10) > 1e-9 || math.Abs(q.Sum-320) > 1e-6 {
		t.Fatalf("query mean %v sum %v, want 10 and 320 (injected mass leaked)", q.Mean, q.Sum)
	}
}

// TestScenarioEndpoint: POST /v1/scenario fails and revives nodes and
// adjusts fabric loss, with the live population reflected in queries.
func TestScenarioEndpoint(t *testing.T) {
	sys, base := openServed(t)

	resp, err := http.Post(base+"/v1/scenario", "application/json",
		strings.NewReader(`{"loss":0.05,"fail":[0,1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"failed_now":4`) {
		t.Fatalf("POST /v1/scenario: %d %s", resp.StatusCode, out)
	}
	if got := sys.FailedNodes(); got != 4 {
		t.Fatalf("FailedNodes = %d, want 4", got)
	}

	qresp, err := http.Get(base + "/v1/query/avg")
	if err != nil {
		t.Fatal(err)
	}
	var q struct {
		Count int `json:"count"`
	}
	_ = json.NewDecoder(qresp.Body).Decode(&q)
	qresp.Body.Close()
	if q.Count != 28 {
		t.Fatalf("query count %d with 4 failed nodes, want 28", q.Count)
	}

	resp, err = http.Post(base+"/v1/scenario", "application/json",
		strings.NewReader(`{"loss":0,"revive":[0,1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(out), `"failed_now":0`) {
		t.Fatalf("revive response: %s", out)
	}
}

// TestScenarioAdversaryEndpoint: POST /v1/scenario turns a slice of the
// population Byzantine and installs the robust-merge countermeasures;
// GET /v1/query?mom= serves the median-of-means read path.
func TestScenarioAdversaryEndpoint(t *testing.T) {
	sys, base := openServed(t)

	resp, err := http.Post(base+"/v1/scenario", "application/json",
		strings.NewReader(`{"adversary":{"behavior":"extreme-value","fraction":0.1,"magnitude":1000},
			"robust":{"clamp":true,"clamp_min":-100,"clamp_max":100,"trim":true,"trim_k":8}}`))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"adversaries_now":3`) {
		t.Fatalf("POST /v1/scenario adversary: %d %s", resp.StatusCode, out)
	}
	if got := sys.AdversaryCount(); got != 3 {
		t.Fatalf("AdversaryCount = %d, want 3", got)
	}

	// The robust read path: ?mom=N swaps the mean for median-of-means.
	qresp, err := http.Get(base + "/v1/query/avg?mom=4")
	if err != nil {
		t.Fatal(err)
	}
	var q struct {
		Count int      `json:"count"`
		Mean  *float64 `json:"mean"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if q.Count != 29 || q.Mean == nil {
		t.Fatalf("robust query %+v, want 29 honest nodes and a non-null mean", q)
	}

	// Telemetry reports the attack surface.
	tresp, err := http.Get(base + "/v1/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	for _, want := range []string{`"adversary_nodes":3`, `"robust_rejected":`, `"corruption":`} {
		if !strings.Contains(string(tbody), want) {
			t.Fatalf("/v1/telemetry missing %s: %s", want, tbody)
		}
	}

	// Validation: bad mom values and unknown behaviors are 400s.
	for _, tc := range []struct{ method, url, body string }{
		{"GET", base + "/v1/query/avg?mom=0", ""},
		{"GET", base + "/v1/query/avg?mom=bogus", ""},
		{"POST", base + "/v1/scenario", `{"adversary":{"behavior":"gaslighting","fraction":0.1}}`},
		{"POST", base + "/v1/scenario", `{"adversary":{"behavior":"extreme-value","fraction":1.5}}`},
		{"POST", base + "/v1/scenario", `{"robust":{"clamp":true,"clamp_min":5,"clamp_max":-5}}`},
	} {
		var resp *http.Response
		var err error
		if tc.method == "GET" {
			resp, err = http.Get(tc.url)
		} else {
			resp, err = http.Post(tc.url, "application/json", strings.NewReader(tc.body))
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s %s: %d, want 400", tc.method, tc.url, tc.body, resp.StatusCode)
		}
	}

	// Fraction 0 restores honesty.
	resp, err = http.Post(base+"/v1/scenario", "application/json",
		strings.NewReader(`{"adversary":{"behavior":"extreme-value","fraction":0}}`))
	if err != nil {
		t.Fatal(err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(out), `"adversaries_now":0`) {
		t.Fatalf("restore response: %s", out)
	}
}

// TestErrorCases: unknown fields 404, malformed bodies and out-of-range
// nodes 400 — and a rejected batch applies nothing.
func TestErrorCases(t *testing.T) {
	sys, base := openServed(t)

	for _, url := range []string{base + "/v1/stream/nope", base + "/v1/query/nope"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", url, resp.StatusCode)
		}
	}

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"field":"nope","values":[{"node":0,"value":1}]}`, http.StatusNotFound},
		{`{"field":"avg","values":[{"node":99,"value":1},{"node":0,"value":1}]}`, http.StatusBadRequest},
		{`{not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(base+"/v1/values", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("POST /v1/values %q: %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	// The mixed batch above 400ed before applying anything: node 0 keeps
	// its original value, so the true mean is untouched.
	if tm := sys.Telemetry().TrueMean; math.Abs(tm-15.5) > 1e-9 {
		t.Fatalf("true mean %v after rejected batch, want 15.5 (partial write)", tm)
	}

	resp, err := http.Post(base+"/v1/scenario", "application/json",
		strings.NewReader(`{"fail":[99]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /v1/scenario out-of-range: %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(tbody), `"serve_streams":`) {
		t.Fatalf("/v1/telemetry missing serve_streams: %s", tbody)
	}
}

// TestCloseEndsStreamsCleanly: System.Close terminates in-flight SSE
// streams with an explicit "event: end" and a clean EOF — the drain in
// the ops stop path — rather than a connection reset mid-event.
func TestCloseEndsStreamsCleanly(t *testing.T) {
	sys, base := openServed(t)

	resp, err := http.Get(base + "/v1/stream/avg")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	readEvent(t, br) // stream is live

	closed := make(chan struct{})
	go func() { sys.Close(); close(closed) }()

	// Everything after this point must still parse as SSE frames and end
	// in the explicit terminator, then EOF with no transport error.
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("stream did not end cleanly: %v", err)
	}
	if !strings.Contains(string(rest), "event: end") {
		t.Fatalf("stream tail %q missing the end-of-stream event", rest)
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("System.Close wedged behind the open stream")
	}
}
