package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/serve"
)

// BenchmarkServeFanOut measures SSE fan-out through the full front end:
// W concurrent HTTP watchers on one field of a live system, all riding
// the field's single shared reduce. Reported metrics are the delivered
// event rate and event staleness (server stamp → client receipt)
// percentiles — the two numbers that bound how many watchers one box
// can serve and how fresh their view is. scripts/bench.sh records both
// in the perf trajectory.
func BenchmarkServeFanOut(b *testing.B) {
	for _, watchers := range []int{100, 1000} {
		b.Run(fmt.Sprintf("watchers=%d", watchers), func(b *testing.B) {
			benchmarkServeFanOut(b, watchers)
		})
	}
}

func benchmarkServeFanOut(b *testing.B, watchers int) {
	const cycle = 50 * time.Millisecond
	sys, err := repro.Open(
		repro.WithSize(256),
		repro.WithCycleLength(cycle),
		repro.WithOps("127.0.0.1:0"),
		repro.WithSeed(9),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if _, err := serve.Attach(sys); err != nil {
		b.Fatal(err)
	}
	url := "http://" + sys.OpsAddr() + "/v1/stream/avg"

	var (
		events  atomic.Uint64
		started atomic.Int64
		hist    [24]atomic.Uint64 // staleness histogram, 2^i ms buckets
		wg      sync.WaitGroup
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	keyTime := []byte(`"time_unix_ms":`)
	for i := 0; i < watchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			br := bufio.NewReaderSize(resp.Body, 512)
			first := true
			for {
				line, err := br.ReadSlice('\n')
				if err != nil {
					return
				}
				if !bytes.HasPrefix(line, []byte("data: ")) {
					continue
				}
				if first {
					first = false
					started.Add(1)
				}
				events.Add(1)
				if j := bytes.Index(line, keyTime); j >= 0 {
					rest := line[j+len(keyTime):]
					k := 0
					for k < len(rest) && rest[k] >= '0' && rest[k] <= '9' {
						k++
					}
					if ts, err := strconv.ParseInt(string(rest[:k]), 10, 64); err == nil {
						lag := time.Now().UnixMilli() - ts
						bucket := 0
						for b := 0; b < len(hist)-1; b++ {
							if lag < 1<<b {
								break
							}
							bucket = b + 1
						}
						hist[bucket].Add(1)
					}
				}
			}
		}()
	}

	// Let every stream deliver its first event before timing.
	for started.Load() < int64(watchers) {
		time.Sleep(10 * time.Millisecond)
	}

	b.ResetTimer()
	base := events.Load()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		time.Sleep(2 * time.Second)
	}
	delivered := events.Load() - base
	elapsed := time.Since(start)
	b.StopTimer()
	cancel()
	wg.Wait()

	b.ReportMetric(float64(delivered)/elapsed.Seconds(), "events/s")
	p50, p99 := histPercentile(&hist, 0.50), histPercentile(&hist, 0.99)
	b.ReportMetric(p50, "staleness_p50_ms")
	b.ReportMetric(p99, "staleness_p99_ms")
}

// histPercentile returns the upper bound (ms) of the bucket holding the
// q-quantile of the power-of-two staleness histogram.
func histPercentile(hist *[24]atomic.Uint64, q float64) float64 {
	var total uint64
	for i := range hist {
		total += hist[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var seen uint64
	for i := range hist {
		seen += hist[i].Load()
		if seen > rank {
			return float64(uint64(1) << i)
		}
	}
	return float64(uint64(1) << (len(hist) - 1))
}
