package repro_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/scenario"
)

// ExampleRun executes one declarative spec — the paper's AVG protocol
// on 64 nodes holding the values 0…63 — and reads the converged
// estimate off the materialized result.
func ExampleRun() {
	values := make([]float64, 64)
	for i := range values {
		values[i] = float64(i) // true average 31.5
	}
	res, err := repro.Run(context.Background(), scenario.Spec{
		Size:   64,
		Cycles: 20,
		Values: values,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("every node estimates %.1f after %d cycles\n",
		res.FinalMean, len(res.Variances)-1)
	// Output: every node estimates 31.5 after 20 cycles
}

// ExampleOpen opens a live in-memory aggregation system and watches
// typed per-cycle snapshots stream out of it until the cross-node
// variance vanishes — aggregation as a continuously queried service.
func ExampleOpen() {
	sys, err := repro.Open(
		repro.WithSize(16),
		repro.WithValues(func(i int) float64 { return float64(2 * i) }), // true average 15
		repro.WithCycleLength(2*time.Millisecond),
		repro.WithReplyTimeout(time.Second),
		repro.WithSeed(6),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	estimates, err := sys.Watch(ctx, "avg")
	if err != nil {
		log.Fatal(err)
	}
	for est := range estimates {
		if est.Variance <= 1e-9 {
			fmt.Printf("%d nodes converged near %.0f\n", est.Nodes, est.Mean)
			cancel() // the Watch channel closes within one cycle
		}
	}
	// Output: 16 nodes converged near 15
}

// ExampleSystem_Reduce folds every node's state shard by shard —
// without materializing an N-length vector — into a streaming
// accumulator.
func ExampleSystem_Reduce() {
	sys, err := repro.Open(
		repro.WithSize(256),
		repro.WithMode(repro.ModeHeap), // the 10⁵-nodes-per-process scheduler
		repro.WithValues(func(i int) float64 { return float64(i % 8) }), // mean 3.5
		repro.WithCycleLength(2*time.Millisecond),
		repro.WithReplyTimeout(time.Second),
		repro.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := sys.WaitConverged(ctx, "avg", 1e-9); err != nil {
		log.Fatal(err)
	}
	var run repro.Running
	if err := sys.Reduce(ctx, "avg", &run); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d mean=%.1f\n", run.N(), run.Mean())
	// Output: n=256 mean=3.5
}
