package repro

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"
)

// TestSetValueRoundTripsBothRuntimes: live value injection is
// mass-conserving in both runtimes — after every node's value is
// replaced mid-run, the re-converged estimate lands on the new
// population mean (not a half-injected one, which is what a
// push/mutate/merge interleaving would leave), and telemetry's true
// mean tracks the injected values. Cross-runtime equivalence-style:
// same shape and seed through both schedulers.
func TestSetValueRoundTripsBothRuntimes(t *testing.T) {
	for _, mode := range []RuntimeMode{ModeGoroutine, ModeHeap} {
		t.Run(mode.String(), func(t *testing.T) {
			const n = 24
			sys, err := Open(
				WithSize(n),
				WithMode(mode),
				WithValues(func(i int) float64 { return float64(i) }), // mean 11.5
				WithCycleLength(2*time.Millisecond),
				WithSeed(7),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			est, err := sys.WaitConverged(ctx, "avg", 1e-6)
			if err != nil {
				t.Fatalf("initial convergence: %v (last %+v)", err, est)
			}
			if math.Abs(est.Mean-11.5) > 0.05 {
				t.Fatalf("initial mean %v, want ≈ 11.5", est.Mean)
			}

			// Inject a full set of new values while exchanges are running:
			// node i's value doubles, so the population mean moves to 23.
			for i := 0; i < n; i++ {
				if err := sys.SetValue(i, "avg", float64(2*i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := sys.SetValue(0, "nope", 1); err == nil {
				t.Fatal("SetValue accepted an unknown field")
			}
			if err := sys.SetValue(n, "avg", 1); err == nil {
				t.Fatal("SetValue accepted an out-of-range node")
			}

			est, err = sys.WaitConverged(ctx, "avg", 1e-6)
			if err != nil {
				t.Fatalf("post-injection convergence: %v (last %+v)", err, est)
			}
			if math.Abs(est.Mean-23) > 0.05 {
				t.Fatalf("post-injection mean %v, want ≈ 23 (injected mass leaked)", est.Mean)
			}
			tel := sys.Telemetry()
			if math.Abs(tel.TrueMean-23) > 1e-9 {
				t.Fatalf("telemetry true mean %v, want 23", tel.TrueMean)
			}
		})
	}
}

// TestScenarioFailReviveLoss: live fault injection against a running
// system. Failed nodes leave the live population immediately (reduces
// and estimates skip them), peers keep converging among themselves,
// revived nodes rejoin as fresh joiners, and the in-memory fabric's
// loss probability is changeable mid-run.
func TestScenarioFailReviveLoss(t *testing.T) {
	for _, mode := range []RuntimeMode{ModeGoroutine, ModeHeap} {
		t.Run(mode.String(), func(t *testing.T) {
			const n = 32
			sys, err := Open(
				WithSize(n),
				WithMode(mode),
				WithValues(func(i int) float64 { return float64(i) }),
				WithCycleLength(2*time.Millisecond),
				WithSeed(3),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := sys.WaitConverged(ctx, "avg", 1e-6); err != nil {
				t.Fatalf("initial convergence: %v", err)
			}

			const failed = 8
			for i := 0; i < failed; i++ {
				if err := sys.FailNode(i); err != nil {
					t.Fatal(err)
				}
			}
			if err := sys.FailNode(n); err == nil {
				t.Fatal("FailNode accepted an out-of-range node")
			}
			if got := sys.FailedNodes(); got != failed {
				t.Fatalf("FailedNodes = %d, want %d", got, failed)
			}
			est, err := sys.Query(ctx, "avg")
			if err != nil {
				t.Fatal(err)
			}
			if est.Nodes != n-failed {
				t.Fatalf("estimate folds %d nodes after %d failures, want %d", est.Nodes, failed, n-failed)
			}

			// The survivors keep gossiping: still converged among
			// themselves, with the failed nodes contributing nothing new.
			if _, err := sys.WaitConverged(ctx, "avg", 1e-6); err != nil {
				t.Fatalf("convergence among survivors: %v", err)
			}

			// Live loss injection on the in-memory fabric.
			if err := sys.SetLoss(0.1); err != nil {
				t.Fatal(err)
			}
			if err := sys.SetLoss(1.5); err == nil {
				t.Fatal("SetLoss accepted p > 1")
			}
			if err := sys.SetLoss(0); err != nil {
				t.Fatal(err)
			}

			for i := 0; i < failed; i++ {
				if err := sys.ReviveNode(i); err != nil {
					t.Fatal(err)
				}
			}
			if got := sys.FailedNodes(); got != 0 {
				t.Fatalf("FailedNodes = %d after revival, want 0", got)
			}
			est, err = sys.Query(ctx, "avg")
			if err != nil {
				t.Fatal(err)
			}
			if est.Nodes != n {
				t.Fatalf("estimate folds %d nodes after revival, want %d", est.Nodes, n)
			}
			if _, err := sys.WaitConverged(ctx, "avg", 1e-6); err != nil {
				t.Fatalf("post-revival convergence: %v", err)
			}
		})
	}
}

// TestWatchHubScale100k is the fan-out scale gate behind the serve
// layer: 10⁵ subscribers on one field must cost one shared reduce per
// cycle, zero goroutines per subscriber and bounded memory; stalled
// subscribers see latest-wins snapshots with their drop counts; and
// unsubscribing releases everything. ~10 s of wall clock, so -short
// skips it (CI runs it in the full test job).
func TestWatchHubScale100k(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-subscriber fan-out gate is not a -short test")
	}
	const (
		subscribers = 100_000
		cycle       = 100 * time.Millisecond
	)
	sys, err := Open(
		WithSize(64),
		WithCycleLength(cycle),
		WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	goroutinesBefore := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chans := make([]<-chan Estimate, subscribers)
	for i := range chans {
		ch, err := sys.Watch(ctx, "avg")
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}

	// No per-subscriber goroutine: 10⁵ subscribers add one hub
	// goroutine, not 10⁵ of anything.
	if g := runtime.NumGoroutine(); g > goroutinesBefore+10 {
		t.Fatalf("%d goroutines after %d subscriptions (was %d); per-subscriber goroutines leak",
			g, subscribers, goroutinesBefore)
	}

	// Bounded memory: a subscriber is a one-slot channel plus a cursor —
	// O(100 B). Allow generous slack over the ~40 MB expected.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 256<<20 {
		t.Fatalf("heap grew %d MB for %d subscribers; per-subscriber state is not O(1)",
			grew>>20, subscribers)
	}

	// One shared reduce per cycle regardless of subscriber count: over a
	// window of W cycles the hub may reduce ~W times (3W bound absorbs
	// ticker jitter); per-subscriber reduction would be ≥ 10⁵·W.
	const window = 10
	before2 := sys.reduceCount.Load()
	time.Sleep(window * cycle)
	delta := sys.reduceCount.Load() - before2
	if delta == 0 {
		t.Fatal("hub performed no reductions during the window")
	}
	if delta > 3*window {
		t.Fatalf("%d reductions over %d cycles with %d subscribers; fan-out is not shared",
			delta, window, subscribers)
	}

	// Latest-wins to stalled subscribers: nobody has read anything, yet
	// every sampled channel holds the most recent snapshot (high Seq)
	// with its accumulated drop count, not a stale first tick.
	for _, i := range []int{0, subscribers / 2, subscribers - 1} {
		select {
		case est, ok := <-chans[i]:
			if !ok {
				t.Fatalf("subscriber %d: channel closed early", i)
			}
			if est.Seq < 2 {
				t.Fatalf("subscriber %d: stalled channel held Seq %d; delivery is not latest-wins", i, est.Seq)
			}
			if est.Dropped < 1 {
				t.Fatalf("subscriber %d: %d skipped snapshots went uncounted (Dropped %d)", i, est.Seq-1, est.Dropped)
			}
		default:
			t.Fatalf("subscriber %d: no snapshot buffered", i)
		}
	}

	// Unsubscribe everyone: within a few cycles the hub prunes, closes
	// every channel and exits; memory and goroutines return to baseline.
	cancel()
	deadline := time.Now().Add(30 * cycle)
	for {
		if _, ok := <-chans[subscribers-1]; !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber channels not closed after cancellation")
		}
	}
	sys.watchMu.Lock()
	hubs := len(sys.hubs)
	sys.watchMu.Unlock()
	if hubs != 0 {
		t.Fatalf("%d hubs still live after the last unsubscribe", hubs)
	}
	if g := runtime.NumGoroutine(); g > goroutinesBefore+10 {
		t.Fatalf("%d goroutines after unsubscribe (baseline %d); the hub leaked", g, goroutinesBefore)
	}
}
