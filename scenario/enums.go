package scenario

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// The spec's enumeration fields are small integer types whose zero
// value means "unset, use the paper's default". Each enum marshals to
// the lowercase name the historical stringly-typed Spec used, so every
// existing JSON scenario and golden file decodes — and re-encodes —
// unchanged. Unknown names are rejected at decode time, keeping the
// fail-loudly contract of ParseFile.

// Selector names a GETPAIR implementation (§3.3). The zero value
// defaults to SelectorSeq, the practical protocol.
type Selector uint8

// The §3.3 pair selectors.
const (
	// SelectorDefault leaves the choice to the spec default (seq).
	SelectorDefault Selector = iota
	// SelectorSeq is GETPAIR_SEQ, the practical protocol's pair stream.
	SelectorSeq
	// SelectorPM draws two perfect matchings per cycle (rate 1/4).
	SelectorPM
	// SelectorRand samples pairs independently (rate 1/e).
	SelectorRand
	// SelectorPMRand interleaves matching halves with random pairs.
	SelectorPMRand
)

// selectorNames is indexed by Selector; index 0 is the unset marker.
var selectorNames = []string{"", "seq", "pm", "rand", "pmrand"}

// String returns the selector's wire name ("" for the unset default).
func (s Selector) String() string { return enumString(selectorNames, uint8(s)) }

// ParseSelector maps a wire name to its Selector; the empty string is
// the unset default.
func ParseSelector(name string) (Selector, error) {
	v, err := enumParse("selector", selectorNames, name)
	return Selector(v), err
}

// MarshalJSON implements json.Marshaler.
func (s Selector) MarshalJSON() ([]byte, error) {
	return enumMarshal("selector", selectorNames, uint8(s))
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Selector) UnmarshalJSON(b []byte) error {
	v, err := enumUnmarshal("selector", selectorNames, b)
	*s = Selector(v)
	return err
}

// valid reports whether the value is one of the declared constants.
func (s Selector) valid() bool { return int(s) < len(selectorNames) }

// selector builds the kernel-side selector for single-shard cycle
// execution.
func (s Selector) selector() (sim.Selector, error) {
	return sim.NewSelector(s.String())
}

// Topology names an overlay family. The zero value defaults to
// TopologyComplete.
type Topology uint8

// The overlay families of topology.Build.
const (
	// TopologyDefault leaves the choice to the spec default (complete).
	TopologyDefault Topology = iota
	// TopologyComplete is the paper's ideal uniform peer sampling.
	TopologyComplete
	// TopologyKRegular is the k-regular random overlay the paper
	// evaluates.
	TopologyKRegular
	// TopologyView is a random fixed-view overlay.
	TopologyView
	// TopologyRing is the worst-case structured overlay.
	TopologyRing
	// TopologySmallWorld is a Watts–Strogatz small world.
	TopologySmallWorld
	// TopologyScaleFree is a Barabási–Albert scale-free overlay.
	TopologyScaleFree
)

// topologyNames is indexed by Topology; the strings are topology.Kind
// values, the shared vocabulary of specs, drivers and CLI flags.
var topologyNames = []string{"", "complete", "kregular", "view", "ring", "smallworld", "scalefree"}

// String returns the overlay's wire name ("" for the unset default).
func (t Topology) String() string { return enumString(topologyNames, uint8(t)) }

// ParseTopology maps a wire name to its Topology; the empty string is
// the unset default.
func ParseTopology(name string) (Topology, error) {
	v, err := enumParse("topology", topologyNames, name)
	return Topology(v), err
}

// MarshalJSON implements json.Marshaler.
func (t Topology) MarshalJSON() ([]byte, error) {
	return enumMarshal("topology", topologyNames, uint8(t))
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Topology) UnmarshalJSON(b []byte) error {
	v, err := enumUnmarshal("topology", topologyNames, b)
	*t = Topology(v)
	return err
}

// valid reports whether the value is one of the declared constants.
func (t Topology) valid() bool { return int(t) < len(topologyNames) }

// kind returns the internal topology vocabulary for a non-default
// value.
func (t Topology) kind() topology.Kind { return topology.Kind(t.String()) }

// Wait names a GETWAITINGTIME policy (§1.1). The zero value, WaitNone,
// keeps cycle-based execution; the other values switch the spec to
// event-based execution.
type Wait uint8

// The waiting-time policies.
const (
	// WaitNone runs synchronized cycles (no event-based execution).
	WaitNone Wait = iota
	// WaitConstant waits exactly Δt between initiations (seq-like
	// dynamics, rate 1/(2√e)).
	WaitConstant
	// WaitExponential draws Exp(mean Δt) waits (rand-like dynamics,
	// rate 1/e).
	WaitExponential
)

// waitNames is indexed by Wait; index 0 is cycle mode.
var waitNames = []string{"", "constant", "exponential"}

// String returns the policy's wire name ("" for cycle mode).
func (w Wait) String() string { return enumString(waitNames, uint8(w)) }

// ParseWait maps a wire name to its Wait; the empty string is cycle
// mode.
func ParseWait(name string) (Wait, error) {
	v, err := enumParse("wait", waitNames, name)
	return Wait(v), err
}

// MarshalJSON implements json.Marshaler.
func (w Wait) MarshalJSON() ([]byte, error) { return enumMarshal("wait", waitNames, uint8(w)) }

// UnmarshalJSON implements json.Unmarshaler.
func (w *Wait) UnmarshalJSON(b []byte) error {
	v, err := enumUnmarshal("wait", waitNames, b)
	*w = Wait(v)
	return err
}

// valid reports whether the value is one of the declared constants.
func (w Wait) valid() bool { return int(w) < len(waitNames) }

// policy returns the kernel wait policy for a non-WaitNone value.
func (w Wait) policy() sim.WaitPolicy {
	if w == WaitExponential {
		return sim.ExponentialWait{}
	}
	return sim.ConstantWait{}
}

// Loss names a message-loss model (§2, experiment E6). The zero value,
// LossAuto, picks the historical default of the execution mode when
// LossProb > 0: reply loss in cycle mode, symmetric loss in wait mode.
type Loss uint8

// The loss models.
const (
	// LossAuto defers to the execution mode's historical default.
	LossAuto Loss = iota
	// LossNone forces lossless exchanges regardless of LossProb.
	LossNone
	// LossSymmetric drops whole exchanges.
	LossSymmetric
	// LossReply drops pull replies — the deployed protocol's
	// asymmetric, mass-violating failure.
	LossReply
)

// lossNames is indexed by Loss; index 0 is the auto default.
var lossNames = []string{"", "none", "symmetric", "reply"}

// String returns the model's wire name ("" for the auto default).
func (l Loss) String() string { return enumString(lossNames, uint8(l)) }

// ParseLoss maps a wire name to its Loss; the empty string is the auto
// default.
func ParseLoss(name string) (Loss, error) {
	v, err := enumParse("loss", lossNames, name)
	return Loss(v), err
}

// MarshalJSON implements json.Marshaler.
func (l Loss) MarshalJSON() ([]byte, error) { return enumMarshal("loss", lossNames, uint8(l)) }

// UnmarshalJSON implements json.Unmarshaler.
func (l *Loss) UnmarshalJSON(b []byte) error {
	v, err := enumUnmarshal("loss", lossNames, b)
	*l = Loss(v)
	return err
}

// valid reports whether the value is one of the declared constants.
func (l Loss) valid() bool { return int(l) < len(lossNames) }

// Behavior names an adversary misbehavior (see AdversarySpec). The
// zero value defaults to BehaviorExtreme, the canonical poisoning
// attack on mass-conserving averaging.
type Behavior uint8

// The adversary behaviors.
const (
	// BehaviorDefault leaves the choice to the spec default
	// (extreme-value).
	BehaviorDefault Behavior = iota
	// BehaviorExtreme reports a fixed extreme magnitude every exchange.
	BehaviorExtreme
	// BehaviorColluding reports a shared fixed target, dragging the
	// estimate toward a coordinated value.
	BehaviorColluding
	// BehaviorSelectiveDrop acks exchanges but discards every merge,
	// silently absorbing the peers' correction mass.
	BehaviorSelectiveDrop
	// BehaviorEclipse floods victims' peer samples so their future
	// exchanges land on adversaries.
	BehaviorEclipse
)

// behaviorNames is indexed by Behavior; index 0 is the unset marker.
var behaviorNames = []string{"", "extreme-value", "colluding", "selective-drop", "eclipse"}

// String returns the behavior's wire name ("" for the unset default).
func (b Behavior) String() string { return enumString(behaviorNames, uint8(b)) }

// ParseBehavior maps a wire name to its Behavior; the empty string is
// the unset default.
func ParseBehavior(name string) (Behavior, error) {
	v, err := enumParse("behavior", behaviorNames, name)
	return Behavior(v), err
}

// MarshalJSON implements json.Marshaler.
func (b Behavior) MarshalJSON() ([]byte, error) {
	return enumMarshal("behavior", behaviorNames, uint8(b))
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Behavior) UnmarshalJSON(data []byte) error {
	v, err := enumUnmarshal("behavior", behaviorNames, data)
	*b = Behavior(v)
	return err
}

// valid reports whether the value is one of the declared constants.
func (b Behavior) valid() bool { return int(b) < len(behaviorNames) }

// behavior returns the kernel-side behavior for a normalized value.
func (b Behavior) behavior() sim.AdversaryBehavior {
	switch b {
	case BehaviorColluding:
		return sim.AdvColluding
	case BehaviorSelectiveDrop:
		return sim.AdvSelectiveDrop
	case BehaviorEclipse:
		return sim.AdvEclipse
	default:
		return sim.AdvExtreme
	}
}

// enumString renders value v against its name table.
func enumString(names []string, v uint8) string {
	if int(v) < len(names) {
		return names[v]
	}
	return fmt.Sprintf("invalid(%d)", v)
}

// enumParse resolves a wire name to its enum value.
func enumParse(kind string, names []string, name string) (uint8, error) {
	for v, n := range names {
		if n == name {
			return uint8(v), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown %s %q (want %s)", kind, name, enumOptions(names))
}

// enumMarshal encodes value v as its quoted wire name.
func enumMarshal(kind string, names []string, v uint8) ([]byte, error) {
	if int(v) >= len(names) {
		return nil, fmt.Errorf("scenario: cannot marshal invalid %s value %d", kind, v)
	}
	return []byte(`"` + names[v] + `"`), nil
}

// enumUnmarshal decodes a quoted wire name (or null, meaning unset),
// honoring JSON string escapes.
func enumUnmarshal(kind string, names []string, b []byte) (uint8, error) {
	if string(b) == "null" {
		return 0, nil
	}
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return 0, fmt.Errorf("scenario: %s must be a JSON string: %w", kind, err)
	}
	return enumParse(kind, names, name)
}

// enumOptions lists the non-empty names for error messages.
func enumOptions(names []string) string {
	out := ""
	for _, n := range names {
		if n == "" {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += n
	}
	return out
}
